// Tests for Algorithm 1 (DelaySample): marker semantics, the subset
// property that makes sampling tunable (Section 5.2), bias resistance
// structure (Section 5.1), and behaviour under loss (Section 5.3).
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "core/config.hpp"
#include "core/sampler.hpp"
#include "trace/synthetic_trace.hpp"

namespace vpm::core {
namespace {

using net::DigestEngine;
using net::Packet;
using net::Timestamp;

std::vector<Packet> make_trace(std::uint64_t seed = 1,
                               double pps = 20'000.0,
                               double secs = 1.0) {
  trace::TraceConfig cfg;
  cfg.prefixes = trace::default_prefix_pair();
  cfg.packets_per_second = pps;
  cfg.duration = net::seconds_f(secs);
  cfg.seed = seed;
  return trace::generate_trace(cfg);
}

void feed_all(DelaySampler& s, const std::vector<Packet>& trace) {
  for (const Packet& p : trace) {
    s.observe(p, p.origin_time);
  }
}

std::set<net::PacketDigest> ids_of(const std::vector<SampleRecord>& rs) {
  std::set<net::PacketDigest> out;
  for (const SampleRecord& r : rs) out.insert(r.pkt_id);
  return out;
}

ProtocolParams protocol() {
  ProtocolParams p;
  p.marker_rate = 1.0 / 200.0;  // frequent markers for short test traces
  return p;
}

TEST(DelaySampler, EveryMarkerIsSampled) {
  const ProtocolParams params = protocol();
  const DigestEngine engine = params.make_engine();
  DelaySampler s(engine, params.marker_threshold(),
                 sample_threshold_for(params, 0.02));
  const auto trace = make_trace();
  feed_all(s, trace);
  const auto samples = s.take_samples();

  std::size_t markers = 0;
  for (const SampleRecord& r : samples) {
    if (r.is_marker) ++markers;
  }
  EXPECT_EQ(markers, s.markers_seen());
  EXPECT_GT(markers, 50u);
  // Every marker in the trace must appear as a sampled marker record.
  std::set<net::PacketDigest> sampled_markers;
  for (const SampleRecord& r : samples) {
    if (r.is_marker) sampled_markers.insert(r.pkt_id);
  }
  for (const Packet& p : trace) {
    if (engine.marker_value(p) > params.marker_threshold()) {
      EXPECT_TRUE(sampled_markers.contains(engine.packet_id(p)));
    }
  }
}

TEST(DelaySampler, NothingEmittedBeforeFirstMarker) {
  const ProtocolParams params = protocol();
  const DigestEngine engine = params.make_engine();
  DelaySampler s(engine, params.marker_threshold(),
                 sample_threshold_for(params, 1.0));
  const auto trace = make_trace();
  // Feed packets only until just before the first marker.
  for (const Packet& p : trace) {
    if (engine.marker_value(p) > params.marker_threshold()) break;
    s.observe(p, p.origin_time);
  }
  // Bias resistance, structurally: until a marker arrives, no packet's
  // fate is decided, even at sampling rate 1.
  EXPECT_TRUE(s.take_samples().empty());
  EXPECT_GT(s.buffered(), 0u);
}

TEST(DelaySampler, BufferClearedAtMarker) {
  const ProtocolParams params = protocol();
  const DigestEngine engine = params.make_engine();
  DelaySampler s(engine, params.marker_threshold(),
                 sample_threshold_for(params, 0.05));
  const auto trace = make_trace();
  feed_all(s, trace);
  // After the full trace, the buffer only holds packets after the last
  // marker — far fewer than one mean marker gap.
  EXPECT_LT(s.buffered(), 3000u);
  EXPECT_GT(s.buffer_peak(), 10u);
}

TEST(DelaySampler, AchievedRateTracksTarget) {
  const ProtocolParams params = protocol();
  const DigestEngine engine = params.make_engine();
  const auto trace = make_trace(3, 50'000, 2.0);
  for (const double target : {0.01, 0.05, 0.10}) {
    DelaySampler s(engine, params.marker_threshold(),
                   sample_threshold_for(params, target));
    feed_all(s, trace);
    const auto samples = s.take_samples();
    const double achieved = static_cast<double>(samples.size()) /
                            static_cast<double>(trace.size());
    EXPECT_NEAR(achieved, target, target * 0.25 + 0.002) << target;
  }
}

TEST(DelaySampler, MinimumRateIsMarkerOnly) {
  const ProtocolParams params = protocol();
  const DigestEngine engine = params.make_engine();
  DelaySampler s(engine, params.marker_threshold(),
                 sample_threshold_for(params, params.marker_rate));
  const auto trace = make_trace();
  feed_all(s, trace);
  for (const SampleRecord& r : s.take_samples()) {
    EXPECT_TRUE(r.is_marker);
  }
}

TEST(DelaySampler, RejectsInfeasibleTargets) {
  const ProtocolParams params = protocol();
  EXPECT_THROW((void)sample_threshold_for(params, params.marker_rate / 2),
               std::invalid_argument);
  EXPECT_THROW((void)sample_threshold_for(params, 1.5),
               std::invalid_argument);
}

// Property: sigma2 < sigma1 => samples(sigma1) subset of samples(sigma2),
// over several traces and threshold pairs (Section 5.2's key claim).
class SamplerSubsetProperty
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, double,
                                                 double>> {};

TEST_P(SamplerSubsetProperty, HigherRateSamplesSuperset) {
  const auto [seed, low_rate, high_rate] = GetParam();
  ASSERT_LT(low_rate, high_rate);
  const ProtocolParams params = protocol();
  const DigestEngine engine = params.make_engine();
  const auto trace = make_trace(seed);

  DelaySampler coarse(engine, params.marker_threshold(),
                      sample_threshold_for(params, low_rate));
  DelaySampler fine(engine, params.marker_threshold(),
                    sample_threshold_for(params, high_rate));
  feed_all(coarse, trace);
  feed_all(fine, trace);

  const auto coarse_ids = ids_of(coarse.take_samples());
  const auto fine_ids = ids_of(fine.take_samples());
  EXPECT_TRUE(std::includes(fine_ids.begin(), fine_ids.end(),
                            coarse_ids.begin(), coarse_ids.end()))
      << "low-rate HOP sampled a packet the high-rate HOP missed";
  EXPECT_GT(fine_ids.size(), coarse_ids.size());
}

INSTANTIATE_TEST_SUITE_P(
    RatePairs, SamplerSubsetProperty,
    ::testing::Values(std::make_tuple(1ull, 0.01, 0.05),
                      std::make_tuple(2ull, 0.005, 0.01),
                      std::make_tuple(3ull, 0.02, 0.20),
                      std::make_tuple(4ull, 0.01, 0.02),
                      std::make_tuple(5ull, 0.05, 0.50)));

TEST(DelaySampler, IdenticalConfigSamplesIdentically) {
  // Two HOPs with the same sigma and no loss sample exactly the same set —
  // the premise of the delay computation in Section 4.
  const ProtocolParams params = protocol();
  const DigestEngine engine = params.make_engine();
  const auto trace = make_trace(7);
  DelaySampler a(engine, params.marker_threshold(),
                 sample_threshold_for(params, 0.01));
  DelaySampler b = a;
  feed_all(a, trace);
  // b sees the same packets at shifted times (as a downstream HOP would).
  for (const Packet& p : trace) {
    b.observe(p, p.origin_time + net::milliseconds(3));
  }
  EXPECT_EQ(ids_of(a.take_samples()), ids_of(b.take_samples()));
}

TEST(DelaySampler, MarkerLossDesynchronisesOnlyOneRound) {
  // Drop exactly one marker from the downstream HOP's view: common samples
  // are lost only for that round (Section 5.3).
  const ProtocolParams params = protocol();
  const DigestEngine engine = params.make_engine();
  const auto trace = make_trace(11);

  // Find the 3rd marker.
  net::PacketDigest dropped_marker = 0;
  int markers = 0;
  for (const Packet& p : trace) {
    if (engine.marker_value(p) > params.marker_threshold()) {
      if (++markers == 3) {
        dropped_marker = engine.packet_id(p);
        break;
      }
    }
  }
  ASSERT_NE(dropped_marker, 0u);

  DelaySampler up(engine, params.marker_threshold(),
                  sample_threshold_for(params, 0.05));
  DelaySampler down = up;
  feed_all(up, trace);
  for (const Packet& p : trace) {
    if (engine.packet_id(p) == dropped_marker) continue;
    down.observe(p, p.origin_time);
  }
  const auto up_samples = up.take_samples();
  const auto down_ids = ids_of(down.take_samples());

  // Count upstream samples missing downstream: should be a small fraction
  // (about one round's worth out of ~100 rounds).
  std::size_t missing = 0;
  for (const SampleRecord& r : up_samples) {
    if (!down_ids.contains(r.pkt_id)) ++missing;
  }
  const double missing_frac =
      static_cast<double>(missing) / static_cast<double>(up_samples.size());
  EXPECT_GT(missing, 0u);
  EXPECT_LT(missing_frac, 0.05);
}

TEST(DelaySampler, TakeSamplesDrains) {
  const ProtocolParams params = protocol();
  const DigestEngine engine = params.make_engine();
  DelaySampler s(engine, params.marker_threshold(),
                 sample_threshold_for(params, 0.05));
  feed_all(s, make_trace(13));
  EXPECT_FALSE(s.take_samples().empty());
  EXPECT_TRUE(s.take_samples().empty());
}

}  // namespace
}  // namespace vpm::core
