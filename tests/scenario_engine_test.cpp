// ScenarioConfig parsing/round-trip, run_scenario validation, the
// determinism contract, and the checked-in scenario data files.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>

#include "scenario_grid.hpp"
#include "sim/scenario_engine.hpp"

namespace vpm {
namespace {

using sim::parse_scenario;
using sim::run_scenario;
using sim::ScenarioConfig;
using sim::ScenarioOutcome;

std::string load_scenario_file(const std::string& name) {
  const std::string path = std::string(VPM_SCENARIO_DIR) + "/" + name;
  std::ifstream in(path);
  EXPECT_TRUE(in.is_open()) << path;
  std::ostringstream text;
  text << in.rdbuf();
  return std::move(text).str();
}

TEST(ScenarioConfig, DefaultsRoundTripToBareNameAndSeed) {
  const ScenarioConfig cfg;
  EXPECT_EQ(cfg.to_string(), "name=scenario seed=1");
  const ScenarioConfig back = parse_scenario(cfg.to_string());
  EXPECT_EQ(back.to_string(), cfg.to_string());
}

TEST(ScenarioConfig, EventfulConfigRoundTripsExactly) {
  const char* text =
      "name=everything seed=9 domains=A,B,C,D,E paths=5 rounds=9 "
      "round_us=40000 pps=9000 zipf=1.1 digest=single marker_rate=0.02 "
      "sample_rate=0.1 cut_rate=0.004 shards=2 max_diff_us=4000 "
      "domain_delay_us=700 link_delay_us=80 jitter_domain=C jitter_us=900 "
      "loss=ge loss_domain=B loss_rate=0.05 loss_burst=6 "
      "adversary.B=hide_loss adversary.C=cover shave_us=9000 "
      "fake_delay_us=700 link_down=2:3:1 route_flap=1:4:2 ttl_rounds=3 "
      "chunk_bytes=2048 fault_drop=0.01 fault_corrupt=0.02 "
      "fault_duplicate=0.03 fault_reorder=0.04 fault_delay=0.05 "
      "fault_max_delay_ticks=3 fault_seed=17 crash_every=3 gap_patience=5";
  const ScenarioConfig cfg = parse_scenario(text);
  EXPECT_EQ(cfg.domains.size(), 5u);
  EXPECT_EQ(cfg.adversaries.size(), 2u);
  EXPECT_EQ(cfg.round_length, net::microseconds(40'000));
  EXPECT_EQ(cfg.faults.max_delay_ticks, 3u);
  // to_string -> parse -> to_string is a fixed point.
  const ScenarioConfig back = parse_scenario(cfg.to_string());
  EXPECT_EQ(back.to_string(), cfg.to_string());
}

TEST(ScenarioConfig, FederationKeysRoundTripExactly) {
  const char* text =
      "name=fleet seed=4 paths=2 rounds=12 fed_domains=5 fed_shards=4 "
      "fed_backend=segment fed_segment_bytes=2048 fed_crash_every=4 "
      "fed_torn_tail=1 fed_join_round=2 fed_lag_every=3";
  const ScenarioConfig cfg = parse_scenario(text);
  EXPECT_EQ(cfg.fed_domains, 5u);
  EXPECT_EQ(cfg.fed_store_shards, 4u);
  EXPECT_TRUE(cfg.fed_segment_backend);
  EXPECT_EQ(cfg.fed_segment_bytes, 2048u);
  EXPECT_EQ(cfg.fed_crash_every, 4u);
  EXPECT_TRUE(cfg.fed_torn_tail);
  EXPECT_EQ(cfg.fed_join_round, 2u);
  EXPECT_EQ(cfg.fed_lag_every, 3u);
  const ScenarioConfig back = parse_scenario(cfg.to_string());
  EXPECT_EQ(back.to_string(), cfg.to_string());
}

TEST(ScenarioConfig, CommentsAndNewlinesAreOneGrammar) {
  const ScenarioConfig cfg = parse_scenario(
      "# a scenario file\n"
      "name=filed  # trailing comment\n"
      "seed=3\n"
      "loss=bernoulli\n");
  EXPECT_EQ(cfg.name, "filed");
  EXPECT_EQ(cfg.seed, 3u);
  EXPECT_EQ(cfg.loss, sim::LossKind::kBernoulli);
}

TEST(ScenarioConfig, RejectsMalformedInput) {
  EXPECT_THROW((void)parse_scenario("bogus_key=1"), std::invalid_argument);
  EXPECT_THROW((void)parse_scenario("seed"), std::invalid_argument);
  EXPECT_THROW((void)parse_scenario("seed=notanumber"),
               std::invalid_argument);
  EXPECT_THROW((void)parse_scenario("seed=1trailing"),
               std::invalid_argument);
  EXPECT_THROW((void)parse_scenario("loss=unknownkind"),
               std::invalid_argument);
  EXPECT_THROW((void)parse_scenario("digest=both"), std::invalid_argument);
  EXPECT_THROW((void)parse_scenario("adversary.X=perjury"),
               std::invalid_argument);
  EXPECT_THROW((void)parse_scenario("link_down=1:2"), std::invalid_argument);
  EXPECT_THROW((void)parse_scenario("domains=S,,D"), std::invalid_argument);
}

TEST(ScenarioEngine, ValidatesConfigs) {
  const auto cfg_of = [](const char* text) { return parse_scenario(text); };
  // Fewer than three domains: no transit domain to measure.
  EXPECT_THROW((void)run_scenario(cfg_of("domains=S,D")),
               std::invalid_argument);
  // Loss/jitter/adversary domains must name a transit domain.
  EXPECT_THROW((void)run_scenario(cfg_of("loss=bernoulli loss_domain=Q")),
               std::invalid_argument);
  EXPECT_THROW((void)run_scenario(cfg_of("loss=bernoulli loss_domain=S")),
               std::invalid_argument);
  EXPECT_THROW((void)run_scenario(cfg_of("jitter_domain=D jitter_us=100")),
               std::invalid_argument);
  EXPECT_THROW((void)run_scenario(cfg_of("adversary.S=hide_loss")),
               std::invalid_argument);
  // One strategy per domain.
  EXPECT_THROW(
      (void)run_scenario(parse_scenario(
          "domains=S,X,D adversary.X=hide_loss adversary.X=cover")),
      std::invalid_argument);
  // A route flap may not withdraw every path.
  EXPECT_THROW((void)run_scenario(cfg_of("paths=2 route_flap=2:1:1")),
               std::invalid_argument);
  // link_down index must name a real link.
  EXPECT_THROW((void)run_scenario(cfg_of("link_down=2:1:1")),
               std::invalid_argument);
  // Fault delays the gap patience cannot cover would deadlock waits.
  EXPECT_THROW((void)run_scenario(cfg_of(
                   "fault_delay=0.1 fault_max_delay_ticks=5 gap_patience=2")),
               std::invalid_argument);
}

// The determinism contract: identical config => bit-identical outcome,
// and the printed repro line reproduces the run exactly.
TEST(ScenarioEngine, DeterministicAndReproducible) {
  const ScenarioConfig cfg = parse_scenario(
      "name=det seed=12 domains=S,X,N,D loss=ge loss_rate=0.03 "
      "adversary.X=hide_loss fake_delay_us=500 fault_drop=0.03 "
      "crash_every=3 rounds=9 ttl_rounds=2 route_flap=1:3:2");
  const ScenarioOutcome a = run_scenario(cfg);
  const ScenarioOutcome b = run_scenario(cfg);
  EXPECT_EQ(a, b) << "same config diverged; repro: " << a.repro;
  const ScenarioOutcome c = run_scenario(parse_scenario(a.repro));
  EXPECT_EQ(a, c) << "repro line is not self-contained; repro: " << a.repro;
}

TEST(ScenarioEngine, HonestBaselineFile) {
  const ScenarioOutcome out =
      run_scenario(parse_scenario(load_scenario_file("honest_baseline.conf")));
  EXPECT_TRUE(test::is_clean(out));
  EXPECT_TRUE(test::conserves_receipts(out));
  EXPECT_TRUE(test::loss_tracks_truth(out, "X", 1e-9));
}

TEST(ScenarioEngine, HideLossFile) {
  const ScenarioOutcome out =
      run_scenario(parse_scenario(load_scenario_file("hide_loss.conf")));
  EXPECT_TRUE(test::only_implicates(out, "X", "N"));
  EXPECT_LE(out.estimated_loss("X"), 1e-9) << "repro: " << out.repro;
  EXPECT_GT(out.true_loss("X"), 0.0) << "repro: " << out.repro;
}

TEST(ScenarioEngine, CollusionCongestionFile) {
  const ScenarioOutcome out = run_scenario(
      parse_scenario(load_scenario_file("collusion_congestion.conf")));
  EXPECT_TRUE(test::blame_displaced(out, "X", "N", 1e-9));
  EXPECT_GT(out.true_loss("X"), 0.0) << "repro: " << out.repro;
}

TEST(ScenarioEngine, FaultyWireChurnFile) {
  const ScenarioOutcome out = run_scenario(
      parse_scenario(load_scenario_file("faulty_wire_churn.conf")));
  SCOPED_TRACE("repro: " + out.repro);
  // Graceful degradation: the wire destroyed envelopes and the damage is
  // RECORDED as gaps, not silently absorbed into findings.
  EXPECT_GT(out.envelopes_destroyed, 0u);
  std::size_t gap_count = 0;
  for (const auto& per_hop : out.gaps) gap_count += per_hop.size();
  EXPECT_GT(gap_count, 0u);
  EXPECT_GT(out.client_rebuilds, 0u);
  // Crash-restarts never double-deliver (acks are atomic with delivery)
  // and never leave the fleet stuck.
  EXPECT_EQ(out.ack_rejections, 0u);
  for (const std::size_t lag : out.consumer_lag_end) EXPECT_EQ(lag, 0u);
  EXPECT_EQ(out.store_envelopes_end, 0u);
  EXPECT_GT(out.store_gc_erased, 0u);
}

}  // namespace
}  // namespace vpm
