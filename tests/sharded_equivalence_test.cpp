// Sharded-vs-single-threaded equivalence: the tentpole proof obligation.
//
// Sharding is a pure scaling transform — it must not change a single
// receipt byte.  Bias resistance (§5.1) and the subset properties (§5.2,
// §6.2) are statements about WHICH packets get sampled/cut and what the
// receipts disclose, so the identity we pin is: the sharded collector's
// merged drain, wire-encoded, equals the single-threaded MonitoringCache's
// drain over the same trace, byte for byte.
//
// Coverage axes (the acceptance grid): ≥10 seeds, each with a different
// topology (path count 1..256, varying popularity skew), shard counts
// {1, 2, 4, 8}, BOTH digest modes, randomized observe_batch() slice
// boundaries on the sharded side, and both ingest modes (synchronous and
// SPSC-queue threaded with 1..3 producers).
#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "collector/monitoring_cache.hpp"
#include "collector/pipeline.hpp"
#include "collector/sharded_collector.hpp"
#include "sim/shard_scenario.hpp"
#include "trace/synthetic_trace.hpp"

namespace vpm::sim {
namespace {

/// Seed -> workload topology: vary path count across orders of magnitude
/// (1 path exercises 7 empty shards at shard_count 8) and the Zipf skew
/// (hot-path imbalance across shards).
ShardScenarioConfig topology_for(std::uint64_t seed) {
  static constexpr std::size_t kPathCounts[] = {1,  2,  3,  5,   8,
                                                16, 48, 97, 150, 256};
  static constexpr double kZipf[] = {0.5, 0.8, 1.0, 1.1, 1.3,
                                     1.4, 0.9, 1.2, 0.7, 1.0};
  ShardScenarioConfig cfg;
  cfg.seed = seed;
  cfg.path_count = kPathCounts[(seed - 1) % 10];
  cfg.zipf_s = kZipf[(seed - 1) % 10];
  return cfg;
}

class ShardedEquivalence : public ::testing::TestWithParam<net::DigestMode> {};

TEST_P(ShardedEquivalence, MergedStreamByteIdenticalAcrossSeedsAndShards) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    for (const std::size_t shards : {1u, 2u, 4u, 8u}) {
      ShardScenarioConfig cfg = topology_for(seed);
      cfg.digest_mode = GetParam();
      cfg.shard_count = shards;
      const ShardScenarioResult r = run_shard_scenario(cfg);

      ASSERT_GT(r.total_packets, 10'000u) << "degenerate trace";
      ASSERT_FALSE(r.single_bytes.empty());
      EXPECT_TRUE(r.byte_identical)
          << "seed " << seed << ", " << shards << " shards";
      // The cost model must shard losslessly too: same packets, same
      // hashes, same marker sweeps — just spread over workers.
      EXPECT_EQ(r.single_ops.memory_accesses, r.sharded_ops.memory_accesses);
      EXPECT_EQ(r.single_ops.hash_computations,
                r.sharded_ops.hash_computations);
      EXPECT_EQ(r.single_ops.marker_sweep_accesses,
                r.sharded_ops.marker_sweep_accesses);
      EXPECT_EQ(r.single_unknown, r.sharded_unknown);
    }
  }
}

TEST_P(ShardedEquivalence, ThreadedIngestMatchesReference) {
  for (const auto& [producers, shards] :
       {std::pair<std::size_t, std::size_t>{1, 4},
        std::pair<std::size_t, std::size_t>{2, 2},
        std::pair<std::size_t, std::size_t>{3, 8}}) {
    ShardScenarioConfig cfg = topology_for(7);
    cfg.digest_mode = GetParam();
    cfg.shard_count = shards;
    cfg.producer_count = producers;
    const ShardScenarioResult r = run_shard_scenario(cfg);
    EXPECT_TRUE(r.byte_identical)
        << producers << " producers, " << shards << " shards";
  }
}

INSTANTIATE_TEST_SUITE_P(Modes, ShardedEquivalence,
                         ::testing::Values(net::DigestMode::kSingle,
                                           net::DigestMode::kIndependent));

// ------------------------------------------------------------------------
// API-surface checks that the scenario driver does not exercise.

collector::ShardedCollector::Config sharded_config(std::size_t shards) {
  collector::ShardedCollector::Config cfg;
  cfg.cache.protocol.marker_rate = 1.0 / 500.0;
  cfg.cache.tuning = core::HopTuning{.sample_rate = 0.01, .cut_rate = 1e-3};
  cfg.shard_count = shards;
  return cfg;
}

TEST(ShardedCollector, SingleObserveReportsGlobalPathIndices) {
  trace::MultiPathConfig mcfg;
  mcfg.path_count = 37;
  mcfg.total_packets_per_second = 40'000;
  mcfg.duration = net::milliseconds(100);
  mcfg.seed = 4;
  const auto multi = trace::generate_multi_path(mcfg);

  collector::ShardedCollector sharded(sharded_config(4), multi.paths);
  for (std::size_t i = 0; i < multi.packets.size(); ++i) {
    ASSERT_EQ(sharded.observe(multi.packets[i], multi.packets[i].origin_time),
              multi.path_of[i]);
  }
  EXPECT_EQ(sharded.unknown_path_packets(), 0u);

  net::Packet alien;
  alien.header.src = net::Ipv4Address(1, 2, 3, 4);
  alien.header.dst = net::Ipv4Address(9, 9, 9, 9);
  EXPECT_EQ(sharded.observe(alien, net::Timestamp{}),
            collector::PathClassifier::npos);
  EXPECT_EQ(sharded.unknown_path_packets(), 1u);
}

TEST(ShardedCollector, Validation) {
  const std::vector<net::PrefixPair> one = {trace::default_prefix_pair()};
  EXPECT_THROW(
      collector::ShardedCollector(sharded_config(0), one),
      std::invalid_argument);
  EXPECT_THROW(collector::ShardedCollector(sharded_config(2),
                                           std::vector<net::PrefixPair>{}),
               std::invalid_argument);
  const std::vector<net::PrefixPair> mixed = {
      trace::default_prefix_pair(),
      net::PrefixPair{net::Prefix::parse("10.9.0.0/24"),
                      net::Prefix::parse("100.9.0.0/24")},
  };
  EXPECT_THROW(collector::ShardedCollector(sharded_config(2), mixed),
               std::invalid_argument);
  const std::vector<net::PrefixPair> dup = {trace::default_prefix_pair(),
                                            trace::default_prefix_pair()};
  EXPECT_THROW(collector::ShardedCollector(sharded_config(2), dup),
               std::invalid_argument);
}

TEST(ShardedCollector, ControlPlaneGuardsWhileRunning) {
  const std::vector<net::PrefixPair> one = {trace::default_prefix_pair()};
  collector::ShardedCollector sharded(sharded_config(2), one);
  EXPECT_THROW(sharded.feed(0, {}), std::logic_error);  // not started

  sharded.start(1);
  EXPECT_TRUE(sharded.running());
  net::Packet p;
  EXPECT_THROW(sharded.observe(p, net::Timestamp{}), std::logic_error);
  EXPECT_THROW(sharded.observe_batch({}), std::logic_error);
  EXPECT_THROW((void)sharded.drain(), std::logic_error);
  EXPECT_THROW(sharded.start(1), std::logic_error);
  sharded.stop();
  sharded.stop();  // idempotent
  EXPECT_FALSE(sharded.running());
  (void)sharded.drain(true);
}

TEST(ShardedCollector, PipelineElementFeedsShards) {
  trace::MultiPathConfig mcfg;
  mcfg.path_count = 16;
  mcfg.total_packets_per_second = 40'000;
  mcfg.duration = net::milliseconds(200);
  mcfg.seed = 11;
  const auto multi = trace::generate_multi_path(mcfg);

  auto element =
      std::make_unique<collector::ShardedVpmElement>(sharded_config(4),
                                                     multi.paths);
  collector::ShardedVpmElement* raw = element.get();
  collector::Pipeline pipe;
  pipe.append(std::move(element));
  for (const net::Packet& p : multi.packets) pipe.process(p, p.origin_time);
  EXPECT_EQ(pipe.forwarded(), multi.packets.size());

  std::uint64_t counted = 0;
  for (const core::IndexedPathDrain& d : raw->collector().drain(true)) {
    for (const core::AggregateReceipt& r : d.drain.aggregates) {
      counted += r.packet_count;
    }
  }
  EXPECT_EQ(counted, multi.packets.size());
}

}  // namespace
}  // namespace vpm::sim
