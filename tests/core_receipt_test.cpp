// Tests for receipts: combination operators (Section 4), the
// self-contained wire format, and the batched dissemination format whose
// marginal sizes drive the §7.1 bandwidth accounting.
#include <gtest/gtest.h>

#include <vector>

#include "core/receipt.hpp"
#include "core/receipt_batch.hpp"

namespace vpm::core {
namespace {

net::PathId test_path() {
  net::PathId p;
  p.prefixes = net::PrefixPair{net::Prefix::parse("10.1.0.0/16"),
                               net::Prefix::parse("172.16.0.0/16")};
  p.previous_hop = 4;
  p.next_hop = 6;
  p.max_diff = net::milliseconds(5);
  return p;
}

SampleReceipt sample_receipt(std::initializer_list<int> round_sizes) {
  SampleReceipt r;
  r.path = test_path();
  r.sample_threshold = 123456;
  r.marker_threshold = 654321;
  std::uint32_t id = 100;
  net::Timestamp t{1'000'000};
  for (const int followers : round_sizes) {
    for (int i = 0; i < followers; ++i) {
      r.samples.push_back(SampleRecord{id++, t, false});
      t += net::microseconds(250);
    }
    r.samples.push_back(SampleRecord{id++, t, true});
    t += net::microseconds(250);
  }
  return r;
}

AggregateReceipt agg_receipt(std::uint32_t first, std::uint32_t last,
                             std::uint32_t count, std::int64_t open_us,
                             std::int64_t close_us) {
  AggregateReceipt r;
  r.path = test_path();
  r.agg = AggId{first, last};
  r.packet_count = count;
  r.opened_at = net::Timestamp{open_us * 1000};
  r.closed_at = net::Timestamp{close_us * 1000};
  return r;
}

// ------------------------------------------------------------ Combination

TEST(ReceiptCombination, SamplesUnionInTimeOrder) {
  SampleReceipt a = sample_receipt({2});
  SampleReceipt b = sample_receipt({1});
  for (SampleRecord& s : b.samples) s.time += net::milliseconds(10);
  const SampleReceipt receipts[] = {b, a};  // deliberately out of order
  const SampleReceipt combined = combine_samples(receipts);
  EXPECT_EQ(combined.samples.size(), a.samples.size() + b.samples.size());
  for (std::size_t i = 1; i < combined.samples.size(); ++i) {
    EXPECT_LE(combined.samples[i - 1].time, combined.samples[i].time);
  }
}

TEST(ReceiptCombination, SamplesRejectMixedPathsOrThresholds) {
  SampleReceipt a = sample_receipt({1});
  SampleReceipt b = a;
  b.path.max_diff = net::milliseconds(99);
  const SampleReceipt mixed_path[] = {a, b};
  EXPECT_THROW((void)combine_samples(mixed_path), std::invalid_argument);
  SampleReceipt c = a;
  c.sample_threshold += 1;
  const SampleReceipt mixed_thresh[] = {a, c};
  EXPECT_THROW((void)combine_samples(mixed_thresh), std::invalid_argument);
  EXPECT_THROW((void)combine_samples({}), std::invalid_argument);
}

TEST(ReceiptCombination, AggregatesSumCountsAndSpanIds) {
  const AggregateReceipt rs[] = {
      agg_receipt(11, 19, 1000, 0, 900),
      agg_receipt(20, 29, 2000, 901, 1900),
      agg_receipt(30, 39, 500, 1901, 2500),
  };
  const AggregateReceipt combined = combine_aggregates(rs);
  EXPECT_EQ(combined.agg.first, 11u);
  EXPECT_EQ(combined.agg.last, 39u);
  EXPECT_EQ(combined.packet_count, 3500u);
  EXPECT_EQ(combined.opened_at, rs[0].opened_at);
  EXPECT_EQ(combined.closed_at, rs[2].closed_at);
}

TEST(ReceiptCombination, AggregatesRejectEmptyAndMixedPaths) {
  EXPECT_THROW((void)combine_aggregates({}), std::invalid_argument);
  AggregateReceipt a = agg_receipt(1, 2, 10, 0, 10);
  AggregateReceipt b = a;
  b.path.next_hop = 99;
  const AggregateReceipt mixed[] = {a, b};
  EXPECT_THROW((void)combine_aggregates(mixed), std::invalid_argument);
}

// ------------------------------------------------- Self-contained format

TEST(ReceiptWire, SampleRoundTrips) {
  const SampleReceipt r = sample_receipt({3, 0, 5});
  net::ByteWriter w;
  encode(r, w);
  net::ByteReader reader(w.view());
  const SampleReceipt back = decode_sample_receipt(reader, r.path);
  EXPECT_EQ(back, r);
  EXPECT_TRUE(reader.done());
}

TEST(ReceiptWire, AggregateRoundTripsWithTrans) {
  AggregateReceipt r = agg_receipt(42, 77, 12345, 10, 5000);
  r.trans.before = {1, 2, 3};
  r.trans.after = {4, 5};
  net::ByteWriter w;
  encode(r, w);
  net::ByteReader reader(w.view());
  const AggregateReceipt back = decode_aggregate_receipt(reader, r.path);
  EXPECT_EQ(back, r);
}

TEST(ReceiptWire, RejectsWrongTagAndPath) {
  const SampleReceipt s = sample_receipt({1});
  net::ByteWriter w;
  encode(s, w);
  net::ByteReader as_agg(w.view());
  EXPECT_THROW((void)decode_aggregate_receipt(as_agg, s.path),
               net::WireError);
  net::PathId other = s.path;
  other.prefixes.destination = net::Prefix::parse("192.168.0.0/16");
  net::ByteReader r2(w.view());
  EXPECT_THROW((void)decode_sample_receipt(r2, other), net::WireError);
}

TEST(ReceiptWire, RejectsTruncation) {
  const SampleReceipt s = sample_receipt({4});
  net::ByteWriter w;
  encode(s, w);
  const auto full = w.view();
  net::ByteReader r(full.subspan(0, full.size() - 3));
  EXPECT_THROW((void)decode_sample_receipt(r, s.path), net::WireError);
}

TEST(ReceiptWire, RejectsHugeClaimedCounts) {
  // A malicious receipt claiming 2^32-1 records but carrying none must be
  // rejected before any allocation.
  net::ByteWriter w;
  w.u8(0x01);
  w.u64(test_path().path_key());
  w.u32(0);
  w.u32(0);
  w.i64(0);
  w.u32(0xFFFFFFFFu);  // count
  net::ByteReader r(w.view());
  EXPECT_THROW((void)decode_sample_receipt(r, test_path()), net::WireError);
}

// ------------------------------------------------------------ Batch format

TEST(ReceiptBatch, SampleBatchRoundTrips) {
  const SampleReceipt r = sample_receipt({3, 0, 7, 1});
  net::ByteWriter w;
  encode_sample_batch(r, w);
  net::ByteReader reader(w.view());
  const SampleReceipt back = decode_sample_batch(reader, r.path);
  EXPECT_EQ(back.samples, r.samples);
  EXPECT_EQ(back.sample_threshold, r.sample_threshold);
  EXPECT_TRUE(reader.done());
}

TEST(ReceiptBatch, SampleMarginalCostIsSevenBytes) {
  // The paper's 7 B per record (4 B PktID + 3 B time): adding one
  // follower to a round grows the batch by exactly 7 bytes.
  const std::size_t small = sample_batch_size(sample_receipt({3}));
  const std::size_t bigger = sample_batch_size(sample_receipt({4}));
  EXPECT_EQ(bigger - small, kSampleRecordBytes);
}

TEST(ReceiptBatch, SampleBatchRejectsTrailingNonMarkers) {
  SampleReceipt r = sample_receipt({2});
  r.samples.push_back(SampleRecord{999, r.samples.back().time, false});
  net::ByteWriter w;
  EXPECT_THROW(encode_sample_batch(r, w), std::invalid_argument);
}

TEST(ReceiptBatch, AggregateBatchRoundTrips) {
  std::vector<AggregateReceipt> rs = {
      agg_receipt(11, 19, 1000, 0, 900),
      agg_receipt(20, 29, 2000, 901, 1900),
  };
  rs[0].trans.before = {7, 8};
  rs[0].trans.after = {20, 21};
  net::ByteWriter w;
  encode_aggregate_batch(rs, w);
  net::ByteReader reader(w.view());
  const auto back = decode_aggregate_batch(reader, rs[0].path);
  ASSERT_EQ(back.size(), rs.size());
  EXPECT_EQ(back[0], rs[0]);
  EXPECT_EQ(back[1], rs[1]);
}

TEST(ReceiptBatch, AggregateMarginalCostIs22Bytes) {
  // The paper quotes 22-byte receipts; our batch format lands on exactly
  // that marginal size for a basic (no-AggTrans) aggregate receipt.
  std::vector<AggregateReceipt> two = {
      agg_receipt(11, 19, 1000, 0, 900),
      agg_receipt(20, 29, 2000, 901, 1900),
  };
  std::vector<AggregateReceipt> three = two;
  three.push_back(agg_receipt(30, 39, 500, 1901, 2500));
  EXPECT_EQ(aggregate_batch_size(three) - aggregate_batch_size(two),
            kAggregateRecordBytes);
}

TEST(ReceiptBatch, RejectsOverlongSpan) {
  SampleReceipt r = sample_receipt({1});
  r.samples.back().time += net::seconds(20);  // beyond the 16.7 s u24 span
  net::ByteWriter w;
  EXPECT_THROW(encode_sample_batch(r, w), std::invalid_argument);
}

TEST(ReceiptBatch, RejectsEmptyAggregateBatch) {
  net::ByteWriter w;
  EXPECT_THROW(encode_aggregate_batch({}, w), std::invalid_argument);
}

}  // namespace
}  // namespace vpm::core
