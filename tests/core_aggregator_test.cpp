// Tests for Algorithm 2 (Partition) + the AggTrans extension: cut
// semantics, count conservation, the nested-cuts subset property
// (Section 6.2), and the reorder window machinery (Section 6.3).
#include <gtest/gtest.h>

#include <numeric>
#include <set>
#include <vector>

#include "core/aggregator.hpp"
#include "core/config.hpp"
#include "trace/synthetic_trace.hpp"

namespace vpm::core {
namespace {

using net::DigestEngine;
using net::Packet;

std::vector<Packet> make_trace(std::uint64_t seed = 1,
                               double pps = 20'000.0, double secs = 1.0) {
  trace::TraceConfig cfg;
  cfg.prefixes = trace::default_prefix_pair();
  cfg.packets_per_second = pps;
  cfg.duration = net::seconds_f(secs);
  cfg.seed = seed;
  return trace::generate_trace(cfg);
}

std::vector<AggregateData> run_all(Aggregator& a,
                                   const std::vector<Packet>& trace) {
  for (const Packet& p : trace) a.observe(p, p.origin_time);
  auto out = a.take_closed();
  if (auto last = a.flush_open(); last.has_value()) {
    auto tail = a.take_closed();  // pendings finalised by flush_open
    out.insert(out.end(), tail.begin(), tail.end());
    out.push_back(*last);
  }
  return out;
}

TEST(Aggregator, CountsConserveTraceSize) {
  const DigestEngine engine;
  Aggregator a(engine, cut_threshold_for(1e-3), net::milliseconds(10));
  const auto trace = make_trace();
  const auto aggs = run_all(a, trace);
  const std::uint64_t total = std::accumulate(
      aggs.begin(), aggs.end(), std::uint64_t{0},
      [](std::uint64_t acc, const AggregateData& d) {
        return acc + d.packet_count;
      });
  EXPECT_EQ(total, trace.size());
  EXPECT_GT(aggs.size(), 5u);
}

TEST(Aggregator, AggIdsChainCorrectly) {
  const DigestEngine engine;
  Aggregator a(engine, cut_threshold_for(1e-3), net::milliseconds(10));
  const auto trace = make_trace(3);
  const auto aggs = run_all(a, trace);
  // first id of aggregate k+1 is the cutting packet; the last id of
  // aggregate k is the packet observed just before it.
  EXPECT_EQ(aggs.front().agg.first, engine.packet_id(trace.front()));
  for (std::size_t k = 0; k + 1 < aggs.size(); ++k) {
    EXPECT_NE(aggs[k].agg.last, aggs[k + 1].agg.first);
    EXPECT_LE(aggs[k].closed_at, aggs[k + 1].opened_at);
  }
}

TEST(Aggregator, CutPacketsStartAggregates) {
  const DigestEngine engine;
  const std::uint32_t delta = cut_threshold_for(1e-3);
  Aggregator a(engine, delta, net::Duration{0});
  const auto trace = make_trace(5);
  const auto aggs = run_all(a, trace);
  // Every aggregate after the first starts with a packet whose cut value
  // exceeds delta.
  std::set<net::PacketDigest> cut_ids;
  for (const Packet& p : trace) {
    if (engine.cut_value(p) > delta) cut_ids.insert(engine.packet_id(p));
  }
  for (std::size_t k = 1; k < aggs.size(); ++k) {
    EXPECT_TRUE(cut_ids.contains(aggs[k].agg.first)) << k;
  }
}

TEST(Aggregator, AchievedAggregateSizeTracksCutRate) {
  const DigestEngine engine;
  const auto trace = make_trace(7, 50'000, 2.0);
  Aggregator a(engine, cut_threshold_for(1.0 / 5000.0),
               net::Duration{0});
  const auto aggs = run_all(a, trace);
  const double mean_size = static_cast<double>(trace.size()) /
                           static_cast<double>(aggs.size());
  EXPECT_NEAR(mean_size, 5000.0, 1500.0);
}

// Property: delta1 > delta2 => cuts(delta1) subset of cuts(delta2)
// (Section 6.2): the coarser HOP's boundaries all exist at the finer HOP.
class AggregatorSubsetProperty
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, double,
                                                 double>> {};

TEST_P(AggregatorSubsetProperty, CoarserCutsAreSubset) {
  const auto [seed, coarse_rate, fine_rate] = GetParam();
  ASSERT_LT(coarse_rate, fine_rate);
  const DigestEngine engine;
  const auto trace = make_trace(seed, 40'000, 1.0);

  Aggregator coarse(engine, cut_threshold_for(coarse_rate), net::Duration{0});
  Aggregator fine(engine, cut_threshold_for(fine_rate), net::Duration{0});
  const auto coarse_aggs = run_all(coarse, trace);
  const auto fine_aggs = run_all(fine, trace);
  EXPECT_GE(fine_aggs.size(), coarse_aggs.size());

  std::set<net::PacketDigest> fine_starts;
  for (const AggregateData& d : fine_aggs) fine_starts.insert(d.agg.first);
  for (const AggregateData& d : coarse_aggs) {
    EXPECT_TRUE(fine_starts.contains(d.agg.first))
        << "coarse boundary missing at fine HOP";
  }
}

INSTANTIATE_TEST_SUITE_P(
    CutRates, AggregatorSubsetProperty,
    ::testing::Values(std::make_tuple(1ull, 1e-4, 1e-3),
                      std::make_tuple(2ull, 5e-4, 5e-3),
                      std::make_tuple(3ull, 1e-3, 1e-2),
                      std::make_tuple(4ull, 2e-4, 2e-3)));

TEST(Aggregator, TransWindowSurroundsBoundary) {
  const DigestEngine engine;
  const net::Duration j = net::milliseconds(5);
  Aggregator a(engine, cut_threshold_for(1e-3), j);
  const auto trace = make_trace(9);
  for (const Packet& p : trace) a.observe(p, p.origin_time);
  const auto closed = a.take_closed();
  ASSERT_GT(closed.size(), 2u);

  // Index packets by id for time lookups.
  std::unordered_map<net::PacketDigest, net::Timestamp> when;
  for (const Packet& p : trace) {
    when.emplace(engine.packet_id(p), p.origin_time);
  }
  for (const AggregateData& d : closed) {
    ASSERT_FALSE(d.trans.after.empty());
    // The first 'after' id is the cutting packet; every windowed id lies
    // within J of it.
    const net::Timestamp boundary = when.at(d.trans.after.front());
    for (const net::PacketDigest id : d.trans.before) {
      const net::Duration gap = boundary - when.at(id);
      EXPECT_GE(gap, net::Duration{0});
      EXPECT_LE(gap, j);
    }
    for (const net::PacketDigest id : d.trans.after) {
      const net::Duration gap = when.at(id) - boundary;
      EXPECT_GE(gap, net::Duration{0});
      EXPECT_LE(gap, j);
    }
  }
}

TEST(Aggregator, ClosedAggregatesWaitForTrailingWindow) {
  const DigestEngine engine;
  const net::Duration j = net::milliseconds(10);
  Aggregator a(engine, cut_threshold_for(0.01), j);
  const auto trace = make_trace(11, 10'000, 0.5);

  // Every closure must happen strictly after its boundary + J: until then
  // the trailing AggTrans window is still filling.
  std::vector<net::Timestamp> boundaries;
  std::size_t closed_so_far = 0;
  for (const Packet& p : trace) {
    const std::uint64_t cuts_before = a.cuts_seen();
    a.observe(p, p.origin_time);
    if (a.cuts_seen() > cuts_before) boundaries.push_back(p.origin_time);
    for (const AggregateData& d : a.take_closed()) {
      (void)d;
      ASSERT_LT(closed_so_far, boundaries.size());
      EXPECT_GT(p.origin_time, boundaries[closed_so_far] + j);
      ++closed_so_far;
    }
  }
  EXPECT_GT(closed_so_far, 3u);
}

TEST(Aggregator, ZeroWindowKeepsNoTransState) {
  const DigestEngine engine;
  Aggregator a(engine, cut_threshold_for(1e-3), net::Duration{0});
  const auto trace = make_trace(13);
  const auto aggs = run_all(a, trace);
  for (const AggregateData& d : aggs) {
    EXPECT_TRUE(d.trans.empty());
  }
  EXPECT_EQ(a.window_buffer_peak(), 0u);
}

TEST(Aggregator, FlushOpenOnEmptyIsEmpty) {
  const DigestEngine engine;
  Aggregator a(engine, cut_threshold_for(1e-3), net::milliseconds(10));
  EXPECT_FALSE(a.flush_open().has_value());
  EXPECT_TRUE(a.take_closed().empty());
}

TEST(Aggregator, WindowPeakBoundedByRateTimesJ) {
  const DigestEngine engine;
  const net::Duration j = net::milliseconds(10);
  Aggregator a(engine, cut_threshold_for(1e-3), j);
  const auto trace = make_trace(15, 50'000, 1.0);
  for (const Packet& p : trace) a.observe(p, p.origin_time);
  // 50 kpps x 10 ms = 500 expected; MMPP bursts allow ~3x.
  EXPECT_LT(a.window_buffer_peak(), 2500u);
  EXPECT_GT(a.window_buffer_peak(), 100u);
}

}  // namespace
}  // namespace vpm::core
