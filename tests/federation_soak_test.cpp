// Crash-durability soak for the federated dissemination fleet (ISSUE 9).
//
// The oracle is run_federation_scenario itself: a segment-backed run in
// which the store process is killed every few rounds (optionally with a
// torn tail cut into the last segment file) must re-derive consumer feeds,
// per-path verifier analyses, and deduplicated gap reports BYTE-IDENTICAL
// to the same scenario on the volatile memory backend that never crashes.
// The matrix covers 10 seeds x {1,4} producer shards x {clean, torn}
// shutdowns; a 50-round churn run additionally pins that GC'd segments
// are actually unlinked from disk (bounded directory size).
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>

#include "helpers.hpp"
#include "sim/federation_scenario.hpp"
#include "sim/scenario_config.hpp"

namespace vpm {
namespace {

using sim::FederationScenarioResult;
using sim::ScenarioConfig;

std::size_t segment_files_on_disk(const std::filesystem::path& dir) {
  std::size_t n = 0;
  for (const auto& entry :
       std::filesystem::recursive_directory_iterator(dir)) {
    if (entry.is_regular_file() && entry.path().extension() == ".seg") ++n;
  }
  return n;
}

/// The fleet everyone runs: 3 domains (3 flows x 3 HOPs = 9 producer
/// streams), a moderately hostile wire, one late-joining flow, one
/// lagging flow.
ScenarioConfig base_config(std::uint64_t seed) {
  ScenarioConfig cfg;
  cfg.name = "federation";
  cfg.seed = seed;
  cfg.fed_domains = 3;
  cfg.paths = 2;
  cfg.rounds = 12;
  cfg.round_length = net::milliseconds(20);
  cfg.packets_per_second = 4000.0;
  cfg.marker_rate = 1.0 / 32.0;
  cfg.max_chunk_bytes = 2 * 1024;
  cfg.gap_patience_polls = 3;
  cfg.faults.drop_rate = 0.03;
  cfg.faults.delay_rate = 0.06;
  cfg.faults.reorder_rate = 0.05;
  cfg.faults.duplicate_rate = 0.04;
  cfg.faults.max_delay_ticks = 2;
  cfg.fault_seed = seed * 31 + 7;
  cfg.fed_join_round = 2;
  cfg.fed_lag_every = 2;
  cfg.fed_segment_bytes = 2 * 1024;
  return cfg;
}

void expect_identical(const FederationScenarioResult& run,
                      const FederationScenarioResult& ref,
                      const std::string& label) {
  ASSERT_EQ(run.flows, ref.flows) << label;
  for (std::size_t f = 0; f < run.flows; ++f) {
    for (std::size_t k = 0; k < 3; ++k) {
      EXPECT_EQ(run.feeds[f][k], ref.feeds[f][k])
          << label << ": delivered feed diverged, flow " << f << " hop " << k;
      EXPECT_EQ(run.gaps[f][k], ref.gaps[f][k])
          << label << ": gap report diverged, flow " << f << " hop " << k;
    }
    EXPECT_EQ(run.analyses[f], ref.analyses[f])
        << label << ": verifier analysis diverged, flow " << f;
  }
}

TEST(FederationSoak, CrashDurabilityMatrix) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    // The uninterrupted in-memory reference for this seed.
    const FederationScenarioResult ref =
        run_federation_scenario(base_config(seed), {});
    ASSERT_GT(ref.total_packets, 0u);
    for (std::size_t f = 0; f < ref.flows; ++f) {
      for (std::size_t k = 0; k < 3; ++k) {
        ASSERT_FALSE(ref.feeds[f][k].empty())
            << "seed " << seed << ": flow " << f << " hop " << k
            << " delivered nothing — the scenario is not exercising anything";
      }
    }

    for (const std::size_t shards : {std::size_t{1}, std::size_t{4}}) {
      for (const bool torn : {false, true}) {
        const std::string label = "seed " + std::to_string(seed) +
                                  " shards " + std::to_string(shards) +
                                  (torn ? " torn" : " clean");
        test::TempDir tmp("fed-soak");
        ScenarioConfig cfg = base_config(seed);
        cfg.fed_segment_backend = true;
        cfg.fed_store_shards = shards;
        cfg.fed_segment_bytes = 1024;
        cfg.fed_crash_every = 4;  // crashes at rounds 4 and 8
        cfg.fed_torn_tail = torn;
        const FederationScenarioResult run =
            run_federation_scenario(cfg, tmp.path());

        expect_identical(run, ref, label);

        EXPECT_EQ(run.store_crashes, 2u) << label;
        EXPECT_EQ(run.client_rebuilds, 2u * run.flows * 3) << label;
        if (torn) {
          // Every tear destroys at least the file's last record, which
          // the producer archive must restore on recovery.
          EXPECT_GE(run.torn_tails, 1u) << label;
          EXPECT_GE(run.reingest_accepted, run.torn_tails) << label;
        } else {
          // A clean shutdown loses nothing: every re-sent envelope is a
          // duplicate or floor-stale.
          EXPECT_EQ(run.torn_tails, 0u) << label;
          EXPECT_EQ(run.reingest_accepted, 0u) << label;
        }
        EXPECT_GT(run.reingest_rejected, 0u) << label;

        // GC must actually unlink segment files, and the directory must
        // hold exactly the live ones.
        EXPECT_GT(run.storage_end.segments_unlinked, 0u) << label;
        EXPECT_EQ(segment_files_on_disk(tmp.path()),
                  run.storage_end.segments_live)
            << label;
      }
    }
  }
}

TEST(FederationSoak, SegmentBackendWithoutCrashesMatchesMemory) {
  // Isolates the backend swap from the crash machinery: same fleet, disk
  // segments, no kills.
  const FederationScenarioResult ref =
      run_federation_scenario(base_config(3), {});
  test::TempDir tmp("fed-nocrash");
  ScenarioConfig cfg = base_config(3);
  cfg.fed_segment_backend = true;
  cfg.fed_store_shards = 4;
  const FederationScenarioResult run =
      run_federation_scenario(cfg, tmp.path());
  expect_identical(run, ref, "no-crash segment run");
  EXPECT_EQ(run.store_crashes, 0u);
  EXPECT_EQ(run.reingest_accepted + run.reingest_rejected, 0u);
  EXPECT_GT(run.storage_end.segments_unlinked, 0u);
}

TEST(FederationSoak, BoundedDirectoryAcrossChurn) {
  // 50 rounds of continuous traffic with periodic torn-tail crashes: the
  // segment directory must stay bounded — GC unlinks keep pace with
  // appends — while the delivered feeds still match the never-crashed
  // memory reference.
  ScenarioConfig cfg = base_config(99);
  cfg.rounds = 50;
  cfg.packets_per_second = 2500.0;
  const FederationScenarioResult ref = run_federation_scenario(cfg, {});

  test::TempDir tmp("fed-churn");
  cfg.fed_segment_backend = true;
  cfg.fed_store_shards = 4;
  cfg.fed_segment_bytes = 1024;
  cfg.fed_crash_every = 10;  // crashes at 10, 20, 30, 40
  cfg.fed_torn_tail = true;
  const FederationScenarioResult run = run_federation_scenario(cfg, tmp.path());

  expect_identical(run, ref, "churn");
  EXPECT_EQ(run.store_crashes, 4u);

  // Boundedness: the directory never held more than a fraction of all
  // segments ever created, and what is on disk at the end is exactly the
  // live set.
  const std::size_t total_created =
      run.storage_end.segments_unlinked + run.storage_end.segments_live;
  EXPECT_GT(run.storage_end.segments_unlinked, 0u);
  EXPECT_LT(run.segments_live_peak, total_created / 2)
      << "GC is not keeping up with segment creation";
  EXPECT_EQ(segment_files_on_disk(tmp.path()),
            run.storage_end.segments_live);
  EXPECT_GT(run.total_packets, 0u);
}

}  // namespace
}  // namespace vpm
