// Concurrency stress for the sharded collector (the CI TSan job runs
// exactly these suites): N producer threads feeding shard workers through
// the SPSC queues, asserting
//   * no receipt loss or duplication (drained aggregate counts reproduce
//     the per-path ground truth exactly),
//   * deterministic merged output across repeated runs,
//   * correctness under backpressure (tiny queue bounds force producers
//     to spin on full rings while workers drain them).
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "collector/spsc_queue.hpp"
#include "sim/shard_scenario.hpp"

namespace vpm::sim {
namespace {

ShardScenarioConfig stress_config() {
  ShardScenarioConfig cfg;
  cfg.seed = 23;
  cfg.path_count = 64;
  cfg.zipf_s = 1.1;
  cfg.total_packets_per_second = 60'000;
  cfg.duration = net::milliseconds(300);
  cfg.shard_count = 4;
  cfg.producer_count = 4;
  return cfg;
}

TEST(ShardedStress, DeterministicAndLosslessAcrossTenRuns) {
  const ShardScenarioResult first = run_shard_scenario(stress_config());
  ASSERT_GT(first.total_packets, 10'000u);

  // No loss, no duplication: every generated packet is accounted for in
  // exactly one aggregate receipt of its path.
  ASSERT_EQ(first.sharded.size(), first.path_packets.size());
  for (const core::IndexedPathDrain& d : first.sharded) {
    std::uint64_t counted = 0;
    for (const core::AggregateReceipt& r : d.drain.aggregates) {
      counted += r.packet_count;
    }
    EXPECT_EQ(counted, first.path_packets[d.path]) << "path " << d.path;
  }

  // Byte-identical to the single-threaded reference...
  EXPECT_TRUE(first.byte_identical);

  // ...and byte-identical across reruns: queue interleavings and thread
  // scheduling must never leak into the merged stream.
  for (int run = 1; run < 10; ++run) {
    const ShardScenarioResult again = run_shard_scenario(stress_config());
    ASSERT_EQ(again.sharded_bytes, first.sharded_bytes) << "run " << run;
  }
}

TEST(ShardedStress, BackpressureWithTinyQueues) {
  ShardScenarioConfig cfg = stress_config();
  cfg.queue_capacity = 2;  // producers must block on full rings
  cfg.max_batch = 64;      // many small batches -> many queue round-trips
  const ShardScenarioResult r = run_shard_scenario(cfg);
  EXPECT_TRUE(r.byte_identical);
}

TEST(ShardedStress, MoreProducersThanShards) {
  ShardScenarioConfig cfg = stress_config();
  cfg.producer_count = 6;
  cfg.shard_count = 2;
  const ShardScenarioResult r = run_shard_scenario(cfg);
  EXPECT_TRUE(r.byte_identical);
}

// ------------------------------------------------------------------------
// The SPSC queue itself.

TEST(ShardedSpscQueue, FifoAndCapacity) {
  collector::SpscQueue<int> q(4);
  EXPECT_EQ(q.capacity(), 4u);
  for (int i = 0; i < 4; ++i) {
    int v = i;
    EXPECT_TRUE(q.try_push(v));
  }
  int v = 99;
  EXPECT_FALSE(q.try_push(v));  // full
  int out = -1;
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(q.try_pop(out));
    EXPECT_EQ(out, i);
  }
  EXPECT_FALSE(q.try_pop(out));  // empty
}

TEST(ShardedSpscQueue, CloseIsObservedAfterLastItem) {
  collector::SpscQueue<int> q(8);
  int v = 7;
  ASSERT_TRUE(q.try_push(v));
  q.close();
  ASSERT_TRUE(q.closed());
  int out = 0;
  ASSERT_TRUE(q.try_pop(out));  // item pushed before close survives
  EXPECT_EQ(out, 7);
  EXPECT_FALSE(q.try_pop(out));
}

TEST(ShardedSpscQueue, TwoThreadHandoff) {
  collector::SpscQueue<std::uint64_t> q(16);
  constexpr std::uint64_t kCount = 200'000;
  std::uint64_t sum = 0;
  std::thread consumer([&] {
    std::uint64_t got = 0, v = 0;
    while (got < kCount) {
      if (q.try_pop(v)) {
        sum += v;
        ++got;
      } else {
        std::this_thread::yield();
      }
    }
  });
  for (std::uint64_t i = 1; i <= kCount; ++i) q.push(i);
  q.close();
  consumer.join();
  EXPECT_EQ(sum, kCount * (kCount + 1) / 2);
}

}  // namespace
}  // namespace vpm::sim
