// Cell builders and assertion helpers for the scenario detection-envelope
// grid: scenario classes x loss models x digest modes, each cell one
// run_scenario call.
//
// Every assertion helper returns a testing::AssertionResult whose failure
// message embeds the cell's one-line repro string
// (ScenarioOutcome::repro, which always carries name and seed): paste it
// into `example_scenario_run '<repro>'` and the exact failing run
// re-executes outside the test harness.
#ifndef VPM_TESTS_SCENARIO_GRID_HPP
#define VPM_TESTS_SCENARIO_GRID_HPP

#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "sim/scenario_engine.hpp"

namespace vpm::test {

inline const char* loss_tag(sim::LossKind k) {
  switch (k) {
    case sim::LossKind::kNone:
      return "none";
    case sim::LossKind::kBernoulli:
      return "bernoulli";
    case sim::LossKind::kGilbertElliott:
      return "ge";
    case sim::LossKind::kCongestion:
      return "congestion";
  }
  return "?";
}

inline const char* mode_tag(net::DigestMode m) {
  return m == net::DigestMode::kSingle ? "single" : "independent";
}

/// The loss models every scenario class crosses with.
inline constexpr sim::LossKind kGridLossKinds[] = {
    sim::LossKind::kBernoulli,
    sim::LossKind::kGilbertElliott,
    sim::LossKind::kCongestion,
};

inline constexpr net::DigestMode kGridModes[] = {
    net::DigestMode::kSingle,
    net::DigestMode::kIndependent,
};

/// Base cell: the S -> X -> N -> D chain with the configured loss process
/// inside X.  The congestion bottleneck is sized so every seed actually
/// drops (~10%); fake_delay equals the real traversal delay, the
/// plausible lie.
inline sim::ScenarioConfig grid_cell(const char* cls, sim::LossKind loss,
                                     net::DigestMode mode,
                                     std::uint64_t seed) {
  sim::ScenarioConfig cfg;
  cfg.name = std::string(cls) + "-" + loss_tag(loss) + "-" + mode_tag(mode);
  cfg.seed = seed;
  cfg.domains = {"S", "X", "N", "D"};
  cfg.digest_mode = mode;
  cfg.loss = loss;
  cfg.loss_rate = 0.03;
  cfg.loss_burst = 4.0;
  cfg.congestion_bps = 30e6;
  cfg.fake_delay = cfg.domain_delay;
  return cfg;
}

inline sim::ScenarioConfig honest_cell(sim::LossKind loss,
                                       net::DigestMode mode,
                                       std::uint64_t seed) {
  return grid_cell("honest", loss, mode, seed);
}

inline sim::ScenarioConfig hide_loss_cell(sim::LossKind loss,
                                          net::DigestMode mode,
                                          std::uint64_t seed) {
  sim::ScenarioConfig cfg = grid_cell("hide", loss, mode, seed);
  cfg.adversaries = {{"X", sim::AdversaryKind::kHideLoss}};
  return cfg;
}

inline sim::ScenarioConfig understate_cell(sim::LossKind loss,
                                           net::DigestMode mode,
                                           std::uint64_t seed) {
  sim::ScenarioConfig cfg = grid_cell("shave", loss, mode, seed);
  cfg.adversaries = {{"X", sim::AdversaryKind::kUnderstateDelay}};
  cfg.shave = net::milliseconds(10);  // > max_diff: over the Eq. 2 bound
  return cfg;
}

inline sim::ScenarioConfig collusion_cell(sim::LossKind loss,
                                          net::DigestMode mode,
                                          std::uint64_t seed) {
  sim::ScenarioConfig cfg = grid_cell("collude", loss, mode, seed);
  cfg.adversaries = {{"X", sim::AdversaryKind::kHideLoss},
                     {"N", sim::AdversaryKind::kCoverUpstream}};
  return cfg;
}

inline sim::ScenarioConfig link_down_cell(sim::LossKind loss,
                                          net::DigestMode mode,
                                          std::uint64_t seed) {
  sim::ScenarioConfig cfg = grid_cell("linkdown", loss, mode, seed);
  cfg.link_down = {.link = 1, .round = 2, .duration_rounds = 2};  // X -> N
  return cfg;
}

inline sim::ScenarioConfig jitter_cell(sim::LossKind loss,
                                       net::DigestMode mode,
                                       std::uint64_t seed) {
  sim::ScenarioConfig cfg = grid_cell("jitter", loss, mode, seed);
  cfg.jitter_domain = "N";  // reorder in the honest downstream neighbour
  cfg.jitter = net::milliseconds(3);
  return cfg;
}

// ---------------------------------------------------------------- asserts

/// Zero false positives: every link consistent, every round delivered.
inline testing::AssertionResult is_clean(const sim::ScenarioOutcome& out) {
  if (out.honest_clean()) return testing::AssertionSuccess();
  auto result = testing::AssertionFailure();
  for (const auto& [up, down] : out.implicated_links()) {
    result << "implicated " << up << "->" << down << "; ";
  }
  for (const auto& per_hop : out.gaps) {
    for (const core::RoundGap& g : per_hop) {
      result << "gap " << g.producer << " seq [" << g.first_sequence << ","
             << g.last_sequence << "]; ";
    }
  }
  return result << "repro: " << out.repro;
}

/// Receipt conservation: every packet a HOP observed is counted by
/// exactly one wire-delivered aggregate (honest, fault-free runs).
inline testing::AssertionResult conserves_receipts(
    const sim::ScenarioOutcome& out) {
  for (std::size_t h = 0; h < out.observed_packets.size(); ++h) {
    for (std::size_t p = 0; p < out.observed_packets[h].size(); ++p) {
      if (out.observed_packets[h][p] != out.wire_packets[h][p]) {
        return testing::AssertionFailure()
               << "hop " << h + 1 << " path " << p << ": observed "
               << out.observed_packets[h][p] << " != wire "
               << out.wire_packets[h][p] << "; repro: " << out.repro;
      }
    }
  }
  return testing::AssertionSuccess();
}

/// Loss localisation: the receipt-estimated loss through `domain` is
/// within `tol` of the simulator's ground truth.
inline testing::AssertionResult loss_tracks_truth(
    const sim::ScenarioOutcome& out, const std::string& domain, double tol) {
  const double est = out.estimated_loss(domain);
  const double truth = out.true_loss(domain);
  if (std::abs(est - truth) <= tol) return testing::AssertionSuccess();
  return testing::AssertionFailure()
         << "domain " << domain << ": estimated " << est << " vs true "
         << truth << " (tol " << tol << "); repro: " << out.repro;
}

/// Detection: exactly the (up, down) link is implicated, nothing else.
inline testing::AssertionResult only_implicates(
    const sim::ScenarioOutcome& out, const std::string& up,
    const std::string& down) {
  const auto links = out.implicated_links();
  if (links.size() == 1 && links[0] == std::make_pair(up, down)) {
    return testing::AssertionSuccess();
  }
  auto result = testing::AssertionFailure()
                << "want exactly " << up << "->" << down << ", got [";
  for (const auto& [u, d] : links) result << u << "->" << d << " ";
  return result << "]; repro: " << out.repro;
}

/// The §3.1 collusion outcome: no link implicated, the covering domain
/// absorbs the upstream liar's loss onto its own books.
inline testing::AssertionResult blame_displaced(
    const sim::ScenarioOutcome& out, const std::string& liar,
    const std::string& cover, double tol) {
  if (!out.honest_clean()) {
    return testing::AssertionFailure()
           << "collusion should be invisible at the covered link; repro: "
           << out.repro;
  }
  const double liar_est = out.estimated_loss(liar);
  const double displaced = out.estimated_loss(cover);
  const double hidden = out.true_loss(liar);
  if (liar_est <= tol && std::abs(displaced - hidden) <= tol) {
    return testing::AssertionSuccess();
  }
  return testing::AssertionFailure()
         << liar << " shows " << liar_est << " (want ~0), " << cover
         << " shows " << displaced << " (want ~" << hidden
         << "); repro: " << out.repro;
}

// ----------------------------------------------------------- cell checks

enum class GridClass {
  kHonest,
  kHideLoss,
  kUnderstate,
  kCollusion,
  kLinkDown,
  kJitter,
};

inline constexpr GridClass kGridClasses[] = {
    GridClass::kHonest,   GridClass::kHideLoss, GridClass::kUnderstate,
    GridClass::kCollusion, GridClass::kLinkDown, GridClass::kJitter,
};

inline sim::ScenarioConfig build_cell(GridClass cls, sim::LossKind loss,
                                      net::DigestMode mode,
                                      std::uint64_t seed) {
  switch (cls) {
    case GridClass::kHonest:
      return honest_cell(loss, mode, seed);
    case GridClass::kHideLoss:
      return hide_loss_cell(loss, mode, seed);
    case GridClass::kUnderstate:
      return understate_cell(loss, mode, seed);
    case GridClass::kCollusion:
      return collusion_cell(loss, mode, seed);
    case GridClass::kLinkDown:
      return link_down_cell(loss, mode, seed);
    case GridClass::kJitter:
      return jitter_cell(loss, mode, seed);
  }
  return honest_cell(loss, mode, seed);
}

/// Run one grid cell and assert its class's slice of the detection
/// envelope.  Loss estimates are count-exact in this engine (receipts
/// count every packet, honest fault-free joins are complete), so the
/// localisation bound is tight.
inline void check_cell(GridClass cls, sim::LossKind loss,
                       net::DigestMode mode, std::uint64_t seed) {
  const sim::ScenarioConfig cfg = build_cell(cls, loss, mode, seed);
  const sim::ScenarioOutcome out = sim::run_scenario(cfg);
  SCOPED_TRACE("repro: " + out.repro);
  constexpr double kLossTol = 1e-9;

  // Every cell's loss process must actually bite, or the adversary
  // classes assert detection of a lie never told.
  EXPECT_GT(out.true_loss("X"), 0.0) << "vacuous cell; repro: " << out.repro;

  switch (cls) {
    case GridClass::kHonest:
    case GridClass::kJitter:
      EXPECT_TRUE(is_clean(out));
      EXPECT_TRUE(conserves_receipts(out));
      EXPECT_TRUE(loss_tracks_truth(out, "X", kLossTol));
      EXPECT_TRUE(loss_tracks_truth(out, "N", kLossTol));
      break;
    case GridClass::kHideLoss:
      EXPECT_TRUE(only_implicates(out, "X", "N"));
      // The lie works on X's own books: its receipts claim zero loss.
      EXPECT_LE(out.estimated_loss("X"), kLossTol)
          << "repro: " << out.repro;
      break;
    case GridClass::kUnderstate:
      EXPECT_TRUE(only_implicates(out, "X", "N"));
      // Aggregates are untouched by the delay lie: loss stays exact.
      EXPECT_TRUE(loss_tracks_truth(out, "X", kLossTol));
      break;
    case GridClass::kCollusion:
      EXPECT_TRUE(blame_displaced(out, "X", "N", kLossTol));
      break;
    case GridClass::kLinkDown:
      // Packets die ON the link: both ends report honestly and the link
      // is implicated without either domain lying (§3.1: the verifier
      // cannot tell a lying neighbour from a faulty link — it names the
      // pair).  Loss INSIDE X is still localised exactly.
      EXPECT_TRUE(only_implicates(out, "X", "N"));
      EXPECT_TRUE(loss_tracks_truth(out, "X", kLossTol));
      break;
  }
}

}  // namespace vpm::test

#endif  // VPM_TESTS_SCENARIO_GRID_HPP
