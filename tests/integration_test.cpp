// Integration tests: miniature versions of the paper's experiments wired
// end-to-end (trace -> simulator -> monitors -> serialized receipts ->
// verifier), asserting the headline properties the benches report.
#include <gtest/gtest.h>

#include <vector>

#include "core/receipt_batch.hpp"
#include "core/verifier.hpp"
#include "helpers.hpp"
#include "loss/gilbert_elliott.hpp"
#include "sim/congestion.hpp"
#include "sim/path_run.hpp"
#include "stats/delay_accuracy.hpp"
#include "trace/synthetic_trace.hpp"

namespace vpm {
namespace {

struct MiniFig2 {
  double accuracy_ms = 0.0;
  std::size_t samples = 0;
};

MiniFig2 mini_fig2(double sample_rate, double loss_rate, std::uint64_t seed) {
  trace::TraceConfig tcfg;
  tcfg.prefixes = trace::default_prefix_pair();
  tcfg.packets_per_second = 50'000;
  tcfg.duration = net::seconds(5);
  tcfg.burst_multiplier = 1.2;
  tcfg.burst_fraction = 0.2;
  tcfg.seed = seed;
  const auto trace = trace::generate_trace(tcfg);

  sim::CongestionConfig ccfg;
  ccfg.udp.peak_bps = 450e6;
  ccfg.udp.mean_on = net::milliseconds(30);
  ccfg.udp.mean_off = net::milliseconds(150);
  ccfg.seed = seed + 1;
  const auto congestion = sim::simulate_congestion(ccfg, trace);

  auto ge = loss::GilbertElliott::with_target_loss(loss_rate, 10.0, seed + 2);
  sim::PathEnvironment env;
  env.domains.resize(3);
  env.links.resize(2);
  env.seed = seed + 3;
  env.domains[1].delay_of = [&congestion](sim::PacketIndex i) {
    return congestion.outcomes[i].delay;
  };
  if (loss_rate > 0) env.domains[1].loss = &ge;
  const auto run = sim::run_path(trace, env);

  const auto protocol = test::test_protocol();
  const core::HopTuning tunings[] = {
      core::HopTuning{.sample_rate = sample_rate, .cut_rate = 1e-4}};
  core::PathVerifier v = test::monitor_path(trace, run, protocol, tunings);

  const auto truth_pairs = sim::true_domain_delays_ms(run, env, 1);
  std::vector<double> truth;
  truth.reserve(truth_pairs.size());
  for (const auto& [pkt, ms] : truth_pairs) truth.push_back(ms);

  const auto delay = v.domain_delay(2, 3);
  if (!delay.usable()) return MiniFig2{};
  const double quantiles[] = {0.5, 0.75, 0.9, 0.95};
  const auto score = stats::score_delay_estimate(
      truth, delay.sample_delays_ms, 0.95, quantiles);
  return MiniFig2{.accuracy_ms = score.worst_abs_error,
                  .samples = delay.common_samples};
}

TEST(IntegrationFig2, AccuracySubMillisecondAtHighRateNoLoss) {
  const MiniFig2 r = mini_fig2(0.05, 0.0, 11);
  EXPECT_GT(r.samples, 5000u);
  EXPECT_LT(r.accuracy_ms, 1.0);
}

TEST(IntegrationFig2, AccuracyFewMsAtLowRateHighLoss) {
  // The paper's headline robustness claim: 1% sampling + 25% loss still
  // estimates delay within ~2 ms.
  const MiniFig2 r = mini_fig2(0.01, 0.25, 13);
  EXPECT_GT(r.samples, 300u);
  EXPECT_LT(r.accuracy_ms, 3.0);
}

TEST(IntegrationFig2, AccuracyDegradesWithLoss) {
  double acc_low = 0.0;
  double acc_high = 0.0;
  for (int t = 0; t < 3; ++t) {
    acc_low += mini_fig2(0.01, 0.0, 17 + static_cast<std::uint64_t>(t)).accuracy_ms;
    acc_high +=
        mini_fig2(0.01, 0.50, 17 + static_cast<std::uint64_t>(t)).accuracy_ms;
  }
  EXPECT_LT(acc_low, acc_high);
}

TEST(IntegrationFig3, GranularityGrowsWithLossLikeInverseSurvival) {
  auto granularity_at = [](double loss_rate, std::uint64_t seed) {
    trace::TraceConfig tcfg;
    tcfg.prefixes = trace::default_prefix_pair();
    tcfg.packets_per_second = 20'000;
    tcfg.duration = net::seconds(20);
    tcfg.seed = seed;
    const auto trace = trace::generate_trace(tcfg);
    auto ge =
        loss::GilbertElliott::with_target_loss(loss_rate, 10.0, seed + 1);
    sim::PathEnvironment env;
    env.domains.resize(3);
    env.links.resize(2);
    env.seed = seed + 2;
    if (loss_rate > 0) env.domains[1].loss = &ge;
    const auto run = sim::run_path(trace, env);
    const auto protocol = test::test_protocol();
    const core::HopTuning tunings[] = {core::HopTuning{
        .sample_rate = 0.01, .cut_rate = 1.0 / 20'000.0}};
    core::PathVerifier v = test::monitor_path(trace, run, protocol, tunings);
    return v.domain_loss(2, 3).mean_granularity_s;
  };
  // Average over seeds: one 20 s run yields only ~20 aggregates, so a
  // single draw of the cut-survival process is noisy.
  auto averaged = [&](double loss_rate) {
    double sum = 0.0;
    for (std::uint64_t s = 0; s < 4; ++s) {
      sum += granularity_at(loss_rate, 101 + 10 * s);
    }
    return sum / 4.0;
  };
  const double g0 = averaged(0.0);
  const double g25 = averaged(0.25);
  const double g50 = averaged(0.50);
  // ~1 s nominal; grows roughly like 1/(1-loss).
  EXPECT_NEAR(g0, 1.0, 0.5);
  EXPECT_GT(g25, g0);
  EXPECT_GT(g50, g25);
  EXPECT_LT(g50, 4.0);
}

TEST(IntegrationWire, ReceiptsSurviveSerializationEndToEnd) {
  // Full loop: monitors -> batch wire encode -> decode -> verifier; the
  // verdicts must be identical to the in-memory path.
  auto cfg = test::small_trace_config(211);
  const auto trace = trace::generate_trace(cfg);
  loss::GilbertElliott ge = loss::GilbertElliott::with_target_loss(0.1, 5, 7);
  sim::PathEnvironment env;
  env.domains.resize(3);
  env.links.resize(2);
  env.domains[1].loss = &ge;
  env.seed = 212;
  const auto run = sim::run_path(trace, env);

  const auto protocol = test::test_protocol();
  const core::HopTuning tunings[] = {
      core::HopTuning{.sample_rate = 0.05, .cut_rate = 1e-3}};
  core::PathVerifier direct =
      test::monitor_path(trace, run, protocol, tunings);

  // Re-monitor, shipping everything through the batch wire format.
  core::PathVerifier via_wire;
  for (std::size_t pos = 0; pos < run.hop_observations.size(); ++pos) {
    const auto hop_id = static_cast<net::HopId>(pos + 1);
    auto monitor = test::make_monitor(
        protocol, tunings[0], hop_id,
        pos == 0 ? net::kNoHop : hop_id - 1,
        pos + 1 == run.hop_observations.size() ? net::kNoHop : hop_id + 1);
    test::feed(monitor, trace, run.hop_observations[pos]);
    const core::SampleReceipt samples = monitor.collect_samples();
    const auto aggs = monitor.collect_aggregates(true);

    net::ByteWriter wire;
    core::encode_sample_batch(samples, wire);
    core::encode_aggregate_batch(aggs, wire);
    net::ByteReader reader(wire.view());
    core::HopReceipts receipts;
    receipts.hop = hop_id;
    receipts.samples = core::decode_sample_batch(reader, samples.path);
    receipts.aggregates =
        core::decode_aggregate_batch(reader, samples.path);
    ASSERT_TRUE(reader.done());
    via_wire.add_hop(std::move(receipts));
  }

  const auto direct_loss = direct.domain_loss(2, 3);
  const auto wire_loss = via_wire.domain_loss(2, 3);
  EXPECT_EQ(direct_loss.offered, wire_loss.offered);
  EXPECT_EQ(direct_loss.delivered, wire_loss.delivered);

  const auto direct_delay = direct.domain_delay(2, 3);
  const auto wire_delay = via_wire.domain_delay(2, 3);
  EXPECT_EQ(direct_delay.common_samples, wire_delay.common_samples);
  ASSERT_TRUE(wire_delay.usable());
  // Wire timestamps quantise to 1 us; quantiles agree to that precision.
  for (std::size_t i = 0; i < direct_delay.quantiles.size(); ++i) {
    EXPECT_NEAR(wire_delay.quantiles[i].value,
                direct_delay.quantiles[i].value, 0.002);
  }

  const auto link = via_wire.check_link(3, 4);
  EXPECT_TRUE(link.consistent());
}

TEST(IntegrationPartialDeployment, LoneDeployerStillProducesVerifiableData) {
  // Section 8: X deploys alone; its receipts exist and are well-formed,
  // and once neighbours deploy later, the same receipts check out.
  auto cfg = test::small_trace_config(301);
  const auto trace = trace::generate_trace(cfg);
  sim::PathEnvironment env;
  env.domains.resize(3);
  env.links.resize(2);
  env.seed = 302;
  const auto run = sim::run_path(trace, env);
  const auto protocol = test::test_protocol();
  const core::HopTuning tuning{.sample_rate = 0.02, .cut_rate = 1e-3};

  core::PathVerifier v;
  for (const std::size_t pos : {1u, 2u}) {  // only X's two HOPs
    auto monitor = test::make_monitor(protocol, tuning,
                                      static_cast<net::HopId>(pos + 1),
                                      static_cast<net::HopId>(pos),
                                      static_cast<net::HopId>(pos + 2));
    test::feed(monitor, trace, run.hop_observations[pos]);
    v.add_hop(core::HopReceipts{
        .hop = static_cast<net::HopId>(pos + 1),
        .samples = monitor.collect_samples(),
        .aggregates = monitor.collect_aggregates(true)});
  }
  const auto loss = v.domain_loss(2, 3);
  EXPECT_EQ(loss.offered, loss.delivered);
  const auto delay = v.domain_delay(2, 3);
  EXPECT_TRUE(delay.usable());
}

}  // namespace
}  // namespace vpm
