// Old-vs-new equivalence for the single-hash data-plane fast path.
//
// The refactor (one DigestEngine::decide() pass feeding sampler and
// aggregator, arena/ring storage, batch dispatch) must not change a single
// receipt byte: bias resistance (§5.1) and the subset properties (§5.2,
// §6.2) are properties of WHICH packets get sampled/cut, so the proof
// obligation is byte-identical SampleReceipt/AggregateReceipt streams.
// The reference implementations below replicate the pre-refactor observe
// LOOPS (per-role scalar digest calls, deque-backed reorder window,
// grow-as-needed buffers) verbatim; the suite runs a ~200k-packet
// synthetic trace through both and compares wire encodings in both digest
// modes.
//
// Scope of the claim.  The references call the engine's scalar accessors,
// so what this file proves is that batching/arena/ring/decide() plumbing
// never changes a receipt, for whatever role derivation the engine
// defines.  In kSingle mode that derivation is unchanged from the seed
// (one digest for all roles — the pinned-digest test in
// digest_fastpath_test.cpp guards the hash itself), so kSingle receipts
// are byte-identical to pre-refactor builds.  kIndependent deliberately
// changed its marker/cut derivation (seeded mixers over the single hash
// instead of re-hashing per role), so its receipts differ from seed
// builds by design; here the mode checks pipeline equivalence, not
// derivation stability.
#include <gtest/gtest.h>

#include <deque>
#include <optional>
#include <vector>

#include "collector/monitoring_cache.hpp"
#include "core/config.hpp"
#include "core/hop_monitor.hpp"
#include "core/receipt.hpp"
#include "helpers.hpp"
#include "net/digest.hpp"
#include "net/wire.hpp"
#include "trace/synthetic_trace.hpp"

namespace vpm::core {
namespace {

using net::DigestEngine;
using net::Packet;
using net::Timestamp;

// ------------------------------------------------------------------------
// Pre-refactor reference implementations (seed-state observe loops).

/// Algorithm 1 exactly as the seed implemented it: one scalar digest call
/// per role per packet, grow-as-needed temp buffer.
class ReferenceSampler {
 public:
  ReferenceSampler(const DigestEngine& engine, std::uint32_t marker_threshold,
                   std::uint32_t sample_threshold)
      : engine_(engine),
        marker_threshold_(marker_threshold),
        sample_threshold_(sample_threshold) {}

  void observe(const Packet& p, Timestamp when) {
    const net::PacketDigest id = engine_.packet_id(p);
    if (engine_.marker_value(p) > marker_threshold_) {
      for (const Buffered& q : buffer_) {
        if (DigestEngine::sample_value(q.id, id) > sample_threshold_) {
          emitted_.push_back(SampleRecord{
              .pkt_id = q.id, .time = q.time, .is_marker = false});
        }
      }
      buffer_.clear();
      emitted_.push_back(
          SampleRecord{.pkt_id = id, .time = when, .is_marker = true});
      return;
    }
    buffer_.push_back(Buffered{id, when});
  }

  [[nodiscard]] std::vector<SampleRecord> take_samples() {
    std::vector<SampleRecord> out;
    out.swap(emitted_);
    return out;
  }

 private:
  struct Buffered {
    net::PacketDigest id;
    Timestamp time;
  };
  DigestEngine engine_;
  std::uint32_t marker_threshold_;
  std::uint32_t sample_threshold_;
  std::vector<Buffered> buffer_;
  std::vector<SampleRecord> emitted_;
};

/// Algorithm 2 + AggTrans exactly as the seed implemented it, including
/// the deque-backed recent window and per-cut allocations.
class ReferenceAggregator {
 public:
  ReferenceAggregator(const DigestEngine& engine, std::uint32_t cut_threshold,
                      net::Duration j_window)
      : engine_(engine), cut_threshold_(cut_threshold), j_window_(j_window) {}

  void observe(const Packet& p, Timestamp when) {
    const net::PacketDigest id = engine_.packet_id(p);
    const bool is_cut =
        open_.has_value() && engine_.cut_value(p) > cut_threshold_;

    finalize_due(when);

    if (is_cut) {
      if (j_window_ > net::Duration{0}) {
        Pending pend;
        pend.boundary = when;
        pend.data.agg = open_->agg;
        pend.data.packet_count = open_->count;
        pend.data.opened_at = open_->opened_at;
        pend.data.closed_at = open_->last_at;
        for (const Recent& r : recent_) {
          if (r.time + j_window_ >= when) {
            pend.data.trans.before.push_back(r.id);
          }
        }
        pending_.push_back(std::move(pend));
      } else {
        closed_.push_back(AggregateData{.agg = open_->agg,
                                        .packet_count = open_->count,
                                        .trans = {},
                                        .opened_at = open_->opened_at,
                                        .closed_at = open_->last_at});
      }
      open_.reset();
    }

    for (Pending& pend : pending_) {
      pend.data.trans.after.push_back(id);
    }

    if (!open_) {
      open_ = Open{.agg = AggId{.first = id, .last = id},
                   .count = 1,
                   .opened_at = when,
                   .last_at = when};
    } else {
      open_->agg.last = id;
      ++open_->count;
      open_->last_at = when;
    }

    if (j_window_ > net::Duration{0}) {
      recent_.push_back(Recent{id, when});
      while (!recent_.empty() && recent_.front().time + j_window_ < when) {
        recent_.pop_front();
      }
    }
  }

  [[nodiscard]] std::vector<AggregateData> take_closed() {
    std::vector<AggregateData> out;
    out.swap(closed_);
    return out;
  }

  [[nodiscard]] std::optional<AggregateData> flush_open() {
    for (Pending& pend : pending_) {
      closed_.push_back(std::move(pend.data));
    }
    pending_.clear();
    if (!open_) return std::nullopt;
    AggregateData d;
    d.agg = open_->agg;
    d.packet_count = open_->count;
    d.opened_at = open_->opened_at;
    d.closed_at = open_->last_at;
    open_.reset();
    return d;
  }

 private:
  struct Recent {
    net::PacketDigest id;
    Timestamp time;
  };
  struct Open {
    AggId agg;
    std::uint32_t count = 0;
    Timestamp opened_at;
    Timestamp last_at;
  };
  struct Pending {
    AggregateData data;
    Timestamp boundary;
  };

  void finalize_due(Timestamp now) {
    auto it = pending_.begin();
    while (it != pending_.end()) {
      if (it->boundary + j_window_ >= now) {
        ++it;
      } else {
        closed_.push_back(std::move(it->data));
        it = pending_.erase(it);
      }
    }
  }

  DigestEngine engine_;
  std::uint32_t cut_threshold_;
  net::Duration j_window_;
  std::optional<Open> open_;
  std::deque<Recent> recent_;
  std::vector<Pending> pending_;
  std::vector<AggregateData> closed_;
};

// ------------------------------------------------------------------------

std::vector<Packet> big_trace(std::uint64_t seed) {
  trace::TraceConfig cfg;
  cfg.prefixes = trace::default_prefix_pair();
  cfg.packets_per_second = 100'000;
  cfg.duration = net::seconds(2);  // ~200k packets
  cfg.seed = seed;
  return trace::generate_trace(cfg);
}

ProtocolParams protocol_for(net::DigestMode mode) {
  ProtocolParams p;
  p.marker_rate = 1e-3;
  p.digest_mode = mode;
  p.reorder_window_j = net::milliseconds(10);
  return p;
}

std::vector<std::byte> encode_samples(const SampleReceipt& r) {
  net::ByteWriter w;
  encode(r, w);
  return std::move(w).take();
}

std::vector<std::byte> encode_aggregates(
    const std::vector<AggregateReceipt>& rs) {
  net::ByteWriter w;
  for (const AggregateReceipt& r : rs) encode(r, w);
  return std::move(w).take();
}

class FastPathEquivalence : public ::testing::TestWithParam<net::DigestMode> {
};

TEST_P(FastPathEquivalence, ReceiptStreamsAreByteIdentical) {
  const ProtocolParams params = protocol_for(GetParam());
  const DigestEngine engine = params.make_engine();
  const auto trace = big_trace(21);
  ASSERT_GT(trace.size(), 190'000u);

  const std::uint32_t mu = params.marker_threshold();
  const std::uint32_t sigma = sample_threshold_for(params, 0.01);
  const std::uint32_t delta = cut_threshold_for(1e-4);

  // New fast path: HopMonitor drives sampler+aggregator off one decide().
  HopMonitorConfig mc;
  mc.protocol = params;
  mc.tuning = HopTuning{.sample_rate = 0.01, .cut_rate = 1e-4};
  mc.path = net::PathId{
      .header_spec_id = params.header_spec.id(),
      .prefixes = trace::default_prefix_pair(),
      .previous_hop = 1,
      .next_hop = 3,
      .max_diff = net::milliseconds(5),
  };
  HopMonitor monitor(mc);

  // Pre-refactor reference, fed the same observations.
  ReferenceSampler ref_sampler(engine, mu, sigma);
  ReferenceAggregator ref_agg(engine, delta, params.reorder_window_j);

  for (const Packet& p : trace) {
    monitor.observe(p, p.origin_time);
    ref_sampler.observe(p, p.origin_time);
    ref_agg.observe(p, p.origin_time);
  }

  // --- samples: byte-identical wire encodings.
  SampleReceipt fast_samples = monitor.collect_samples();
  SampleReceipt ref_samples;
  ref_samples.path = mc.path;
  ref_samples.sample_threshold = sigma;
  ref_samples.marker_threshold = mu;
  ref_samples.samples = ref_sampler.take_samples();
  ASSERT_FALSE(fast_samples.samples.empty());
  EXPECT_EQ(encode_samples(fast_samples), encode_samples(ref_samples));

  // --- aggregates: byte-identical wire encodings, including the flushed
  // tail (take_closed drains finalized windows first, matching
  // HopMonitor::collect_aggregates' flush ordering).
  std::vector<AggregateReceipt> fast_aggs =
      monitor.collect_aggregates(/*flush_open=*/true);
  auto stamp = [&](const AggregateData& d) {
    return AggregateReceipt{.path = mc.path,
                            .agg = d.agg,
                            .packet_count = d.packet_count,
                            .trans = d.trans,
                            .opened_at = d.opened_at,
                            .closed_at = d.closed_at};
  };
  std::vector<AggregateReceipt> ref_aggs;
  for (const AggregateData& d : ref_agg.take_closed()) {
    ref_aggs.push_back(stamp(d));
  }
  auto last = ref_agg.flush_open();
  for (const AggregateData& d : ref_agg.take_closed()) {
    ref_aggs.push_back(stamp(d));
  }
  if (last.has_value()) ref_aggs.push_back(stamp(*last));
  ASSERT_GT(fast_aggs.size(), 10u);
  EXPECT_EQ(fast_aggs.size(), ref_aggs.size());
  EXPECT_EQ(encode_aggregates(fast_aggs), encode_aggregates(ref_aggs));
}

TEST_P(FastPathEquivalence, DecideAgreesWithScalarAccessors) {
  const ProtocolParams params = protocol_for(GetParam());
  const DigestEngine engine = params.make_engine();
  for (const Packet& p : big_trace(5)) {
    const net::PacketDecisions d = engine.decide(p);
    ASSERT_EQ(d.id, engine.packet_id(p));
    ASSERT_EQ(d.marker_value, engine.marker_value(p));
    ASSERT_EQ(d.cut_value, engine.cut_value(p));
  }
}

INSTANTIATE_TEST_SUITE_P(Modes, FastPathEquivalence,
                         ::testing::Values(net::DigestMode::kSingle,
                                           net::DigestMode::kIndependent));

// ------------------------------------------------------------------------
// Batch dispatch must match packet-at-a-time dispatch exactly.

TEST(MonitoringCacheBatch, MatchesScalarObserve) {
  trace::MultiPathConfig mcfg;
  mcfg.path_count = 64;
  mcfg.total_packets_per_second = 100'000;
  mcfg.duration = net::seconds(1);
  mcfg.seed = 9;
  const auto multi = trace::generate_multi_path(mcfg);

  collector::MonitoringCache::Config ccfg;
  ccfg.protocol = test::test_protocol();
  ccfg.tuning = HopTuning{.sample_rate = 0.01, .cut_rate = 1e-3};

  collector::MonitoringCache scalar(ccfg, multi.paths);
  collector::MonitoringCache batch(ccfg, multi.paths);

  for (const Packet& p : multi.packets) scalar.observe(p, p.origin_time);
  batch.observe_batch(multi.packets);

  EXPECT_EQ(scalar.unknown_path_packets(), batch.unknown_path_packets());
  EXPECT_EQ(scalar.ops().memory_accesses, batch.ops().memory_accesses);
  EXPECT_EQ(scalar.ops().hash_computations, batch.ops().hash_computations);
  EXPECT_EQ(scalar.ops().marker_sweep_accesses,
            batch.ops().marker_sweep_accesses);

  for (std::size_t path = 0; path < multi.paths.size(); ++path) {
    EXPECT_EQ(encode_samples(scalar.collect_samples(path)),
              encode_samples(batch.collect_samples(path)))
        << "path " << path;
    EXPECT_EQ(encode_aggregates(scalar.collect_aggregates(path, true)),
              encode_aggregates(batch.collect_aggregates(path, true)))
        << "path " << path;
  }
}

TEST(MonitoringCacheBatch, ExplicitTimestampsOverload) {
  const std::vector<net::PrefixPair> paths = {trace::default_prefix_pair()};
  collector::MonitoringCache::Config ccfg;
  ccfg.protocol = test::test_protocol();
  ccfg.tuning = HopTuning{.sample_rate = 0.01, .cut_rate = 1e-3};
  collector::MonitoringCache a(ccfg, paths);
  collector::MonitoringCache b(ccfg, paths);

  auto cfg = test::small_trace_config(31);
  cfg.duration = net::milliseconds(500);
  const auto trace = trace::generate_trace(cfg);
  std::vector<Timestamp> shifted;
  shifted.reserve(trace.size());
  for (const Packet& p : trace) {
    shifted.push_back(p.origin_time + net::milliseconds(2));
  }

  for (std::size_t i = 0; i < trace.size(); ++i) {
    a.observe(trace[i], shifted[i]);
  }
  b.observe_batch(trace, shifted);
  EXPECT_EQ(encode_samples(a.collect_samples(0)),
            encode_samples(b.collect_samples(0)));

  EXPECT_THROW(b.observe_batch(trace, std::span<const Timestamp>{}),
               std::invalid_argument);
}

// One hash per packet, in BOTH digest modes — the §7.1 budget the tentpole
// restores (the pre-refactor data plane recomputed the hash up to 4x).
TEST(MonitoringCacheOps, OneHashPerPacketInBothModes) {
  for (const auto mode :
       {net::DigestMode::kSingle, net::DigestMode::kIndependent}) {
    const std::vector<net::PrefixPair> paths = {trace::default_prefix_pair()};
    collector::MonitoringCache::Config ccfg;
    ccfg.protocol = test::test_protocol();
    ccfg.protocol.digest_mode = mode;
    ccfg.tuning = HopTuning{.sample_rate = 0.01, .cut_rate = 1e-3};
    collector::MonitoringCache cache(ccfg, paths);

    auto cfg = test::small_trace_config(17);
    cfg.duration = net::milliseconds(500);
    const auto trace = trace::generate_trace(cfg);
    cache.observe_batch(trace);

    EXPECT_EQ(cache.ops().hash_computations, trace.size());
    EXPECT_EQ(cache.ops().memory_accesses, trace.size() * 3);
    EXPECT_EQ(cache.ops().timestamp_reads, trace.size());
    // Markers swept the temp buffer: every non-marker packet is buffered
    // once and swept at most once.
    EXPECT_GT(cache.ops().marker_sweep_accesses, 0u);
    EXPECT_LE(cache.ops().marker_sweep_accesses, trace.size());
  }
}

}  // namespace
}  // namespace vpm::core
