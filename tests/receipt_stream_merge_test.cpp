// Streaming receipt merge: the iterator-based counterpart of
// merge_path_drains must yield the exact same stream with at most one
// drain per shard in memory, pulled lazily — plus the ShardedCollector
// entry point that streams a multi-shard drain without materializing any
// shard's full drain first.
#include <gtest/gtest.h>

#include <cstddef>
#include <memory>
#include <random>
#include <vector>

#include "collector/sharded_collector.hpp"
#include "core/receipt_merge.hpp"
#include "sim/shard_scenario.hpp"
#include "trace/synthetic_trace.hpp"

namespace vpm::core {
namespace {

/// A fabricated drain for path `p` with recognizable contents.
IndexedPathDrain fake_drain(std::size_t p) {
  IndexedPathDrain d;
  d.path = p;
  d.drain.samples.sample_threshold = static_cast<std::uint32_t>(p * 3 + 1);
  d.drain.samples.samples.push_back(SampleRecord{
      .pkt_id = static_cast<net::PacketDigest>(p * 7 + 5),
      .time = net::Timestamp{static_cast<std::int64_t>(p) * 1000},
      .is_marker = (p % 2) == 0});
  return d;
}

/// Partition paths {0..n-1} round-robin into k ascending shard streams.
std::vector<std::vector<IndexedPathDrain>> fake_shards(std::size_t n,
                                                       std::size_t k) {
  std::vector<std::vector<IndexedPathDrain>> shards(k);
  for (std::size_t p = 0; p < n; ++p) {
    shards[p % k].push_back(fake_drain(p));
  }
  return shards;
}

TEST(StreamingDrainMerge, MatchesMaterializedMerge) {
  for (const auto [paths, shards] :
       {std::pair<std::size_t, std::size_t>{0, 1},
        std::pair<std::size_t, std::size_t>{1, 4},
        std::pair<std::size_t, std::size_t>{17, 3},
        std::pair<std::size_t, std::size_t>{100, 8}}) {
    const std::vector<IndexedPathDrain> expected =
        merge_path_drains(fake_shards(paths, shards));

    StreamingDrainMerge merge = StreamingDrainMerge::over(
        fake_shards(paths, shards));
    std::vector<IndexedPathDrain> streamed;
    while (auto d = merge.next()) streamed.push_back(std::move(*d));
    EXPECT_TRUE(merge.done());
    EXPECT_FALSE(merge.next().has_value());  // exhausted stays exhausted
    EXPECT_EQ(streamed, expected) << paths << " paths, " << shards
                                  << " shards";
  }
}

TEST(StreamingDrainMerge, PullsSourcesLazily) {
  // Two sources of 4 drains each.  Construction pulls NOTHING (an
  // abandoned merge must not consume destructive sources); after k
  // next() calls no source may have been pulled more than k + 1 times
  // (its head) — the merge never materializes ahead of consumption.
  std::vector<std::size_t> pulls(2, 0);
  std::vector<DrainSource> sources;
  for (std::size_t s = 0; s < 2; ++s) {
    sources.push_back([s, &pulls, i = std::size_t{0}]() mutable
                      -> std::optional<IndexedPathDrain> {
      ++pulls[s];
      if (i == 4) return std::nullopt;
      return fake_drain(s + 2 * i++);
    });
  }
  StreamingDrainMerge merge{std::move(sources)};
  EXPECT_EQ(pulls[0] + pulls[1], 0u);  // nothing consumed yet
  std::size_t consumed = 0;
  while (auto d = merge.next()) {
    ++consumed;
    EXPECT_LE(pulls[0], consumed + 1);
    EXPECT_LE(pulls[1], consumed + 1);
  }
  EXPECT_EQ(consumed, 8u);
}

TEST(ShardedDrainStream, AbandonedStreamLosesNoReceipts) {
  // drain_stream() then discarding the merge unconsumed must leave every
  // receipt available to a subsequent drain().
  trace::MultiPathConfig mcfg;
  mcfg.path_count = 13;
  mcfg.total_packets_per_second = 40'000;
  mcfg.duration = net::milliseconds(100);
  mcfg.seed = 9;
  const auto multi = trace::generate_multi_path(mcfg);

  collector::ShardedCollector::Config scfg;
  scfg.cache.protocol.marker_rate = 1.0 / 500.0;
  scfg.cache.tuning =
      core::HopTuning{.sample_rate = 0.01, .cut_rate = 1e-3};
  scfg.shard_count = 4;
  collector::ShardedCollector a(scfg, multi.paths);
  collector::ShardedCollector b(scfg, multi.paths);
  a.observe_batch(multi.packets);
  b.observe_batch(multi.packets);

  { auto abandoned = b.drain_stream(true); }  // constructed, never pulled
  EXPECT_EQ(b.drain(true), a.drain(true));
}

TEST(StreamingDrainMerge, RejectsNonAscendingSource) {
  std::vector<std::vector<IndexedPathDrain>> shards(1);
  shards[0].push_back(fake_drain(3));
  shards[0].push_back(fake_drain(2));
  StreamingDrainMerge merge = StreamingDrainMerge::over(std::move(shards));
  // The violation surfaces on the pull that reveals it.
  EXPECT_THROW((void)merge.next(), std::invalid_argument);
}

TEST(StreamingDrainMerge, RejectsDuplicatePathAcrossSources) {
  std::vector<std::vector<IndexedPathDrain>> shards(2);
  shards[0].push_back(fake_drain(5));
  shards[1].push_back(fake_drain(5));
  StreamingDrainMerge merge = StreamingDrainMerge::over(std::move(shards));
  EXPECT_THROW((void)merge.next(), std::invalid_argument);
}

TEST(StreamingDrainMerge, EmptySourceSetIsDone) {
  StreamingDrainMerge merge{std::vector<DrainSource>{}};
  EXPECT_TRUE(merge.done());
  EXPECT_FALSE(merge.next().has_value());
}

// ------------------------------------------------------------------------

TEST(ShardedDrainStream, YieldsExactlyTheMaterializedDrain) {
  trace::MultiPathConfig mcfg;
  mcfg.path_count = 61;
  mcfg.total_packets_per_second = 60'000;
  mcfg.duration = net::milliseconds(200);
  mcfg.seed = 23;
  const auto multi = trace::generate_multi_path(mcfg);

  collector::ShardedCollector::Config scfg;
  scfg.cache.protocol.marker_rate = 1.0 / 500.0;
  scfg.cache.tuning =
      core::HopTuning{.sample_rate = 0.01, .cut_rate = 1e-3};
  scfg.shard_count = 4;

  // Two identically-fed collectors: one drains materialized, one streams.
  collector::ShardedCollector a(scfg, multi.paths);
  collector::ShardedCollector b(scfg, multi.paths);
  a.observe_batch(multi.packets);
  b.observe_batch(multi.packets);

  const std::vector<IndexedPathDrain> materialized = a.drain(true);

  StreamingDrainMerge stream = b.drain_stream(true);
  std::vector<IndexedPathDrain> streamed;
  while (auto d = stream.next()) streamed.push_back(std::move(*d));

  ASSERT_EQ(streamed.size(), multi.paths.size());
  EXPECT_EQ(streamed, materialized);
  EXPECT_EQ(sim::encode_drain_stream(streamed),
            sim::encode_drain_stream(materialized));
}

TEST(ShardedDrainStream, GuardedWhileRunning) {
  const std::vector<net::PrefixPair> one = {trace::default_prefix_pair()};
  collector::ShardedCollector::Config scfg;
  scfg.cache.protocol.marker_rate = 1.0 / 500.0;
  scfg.cache.tuning =
      core::HopTuning{.sample_rate = 0.01, .cut_rate = 1e-3};
  scfg.shard_count = 2;
  collector::ShardedCollector sharded(scfg, one);
  sharded.start(1);
  EXPECT_THROW((void)sharded.drain_stream(), std::logic_error);
  sharded.stop();
  (void)sharded.drain_stream(true);
}

}  // namespace
}  // namespace vpm::core
