// Route-flap regression (ISSUE 7 satellite): a mid-epoch path-table
// rebuild under the PR-5 lifecycle machinery must not orphan open
// receipts (every observed packet still reaches the verifier through
// exactly one wire-delivered aggregate) or corrupt consumer cursors
// (no ack rejections, no residual lag, the store drains).
#include <gtest/gtest.h>

#include "scenario_grid.hpp"
#include "sim/scenario_engine.hpp"

namespace vpm {
namespace {

sim::ScenarioConfig flap_config(std::uint64_t seed) {
  sim::ScenarioConfig cfg = sim::parse_scenario(
      "name=route-flap seed=1 domains=S,X,N,D paths=4 rounds=12 "
      "ttl_rounds=2 route_flap=2:4:4 loss=bernoulli loss_rate=0.02");
  cfg.seed = seed;
  return cfg;
}

TEST(RouteFlap, RebuildOrphansNothing) {
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    const sim::ScenarioOutcome out = sim::run_scenario(flap_config(seed));
    SCOPED_TRACE("repro: " + out.repro);

    // Receipt conservation across both table rebuilds: the flush at the
    // flap boundary shipped every open receipt, the rebuilt collectors
    // resumed every path, and nothing was counted twice.
    EXPECT_TRUE(test::conserves_receipts(out));

    // The flap is an honest event: no liar findings, no gaps, and loss
    // estimates still track ground truth exactly for traffic that ran.
    EXPECT_TRUE(test::is_clean(out));
    EXPECT_TRUE(test::loss_tracks_truth(out, "X", 1e-9));
    EXPECT_TRUE(test::loss_tracks_truth(out, "N", 1e-9));

    // Cursor integrity: the fleet acked everything it consumed, nothing
    // is stuck in the store, and the GC floor advanced behind the acks.
    EXPECT_EQ(out.ack_rejections, 0u);
    for (const std::size_t lag : out.consumer_lag_end) EXPECT_EQ(lag, 0u);
    EXPECT_EQ(out.store_envelopes_end, 0u);
    EXPECT_EQ(out.store_rejected, 0u);
    EXPECT_GT(out.store_gc_erased, 0u);

    // The withdrawn paths' traffic stopped (fewer packets than the
    // always-up run) but every injected packet is accounted for.
    EXPECT_GT(out.total_packets, 0u);
    EXPECT_LE(out.delivered_packets, out.total_packets);
  }
}

TEST(RouteFlap, FlapWindowIsDeterministic) {
  const sim::ScenarioOutcome a = sim::run_scenario(flap_config(5));
  const sim::ScenarioOutcome b = sim::run_scenario(flap_config(5));
  EXPECT_EQ(a, b) << "repro: " << a.repro;
}

// The TTL eviction path and the flap rebuild compose: with idle paths
// evicted between flaps, conservation must still hold (eviction drains
// ship the tail receipts before the slot dies).
TEST(RouteFlap, LifecycleEvictionKeepsConservation) {
  sim::ScenarioConfig cfg = flap_config(7);
  cfg.ttl_rounds = 1;  // aggressive: evict after one idle round
  const sim::ScenarioOutcome out = sim::run_scenario(cfg);
  SCOPED_TRACE("repro: " + out.repro);
  EXPECT_TRUE(test::conserves_receipts(out));
  EXPECT_TRUE(test::is_clean(out));
  // The withdrawn paths actually went idle long enough to be evicted.
  EXPECT_GT(out.evicted_paths, 0u);
}

}  // namespace
}  // namespace vpm
