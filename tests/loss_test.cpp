// Unit tests for the loss models (Gilbert-Elliott per the paper's §7.2
// methodology, plus the Bernoulli baseline).
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "loss/bernoulli.hpp"
#include "loss/gilbert_elliott.hpp"

namespace vpm::loss {
namespace {

double measured_loss(LossModel& model, std::size_t n) {
  std::size_t drops = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (model.should_drop()) ++drops;
  }
  return static_cast<double>(drops) / static_cast<double>(n);
}

TEST(GilbertElliott, HitsTargetLossRate) {
  for (const double target : {0.05, 0.10, 0.25, 0.50}) {
    auto model = GilbertElliott::with_target_loss(target, 10.0, 1);
    EXPECT_NEAR(model.expected_loss_rate(), target, 1e-12);
    EXPECT_NEAR(measured_loss(model, 2'000'000), target, 0.01)
        << "target " << target;
  }
}

TEST(GilbertElliott, ZeroTargetNeverDrops) {
  auto model = GilbertElliott::with_target_loss(0.0, 10.0, 1);
  EXPECT_EQ(measured_loss(model, 100'000), 0.0);
}

TEST(GilbertElliott, LossesAreBursty) {
  // With mean burst 20, consecutive drops must be far likelier than under
  // Bernoulli at the same rate.
  auto model = GilbertElliott::with_target_loss(0.2, 20.0, 7);
  std::size_t drops = 0;
  std::size_t consecutive_pairs = 0;
  bool prev = false;
  constexpr std::size_t kN = 1'000'000;
  for (std::size_t i = 0; i < kN; ++i) {
    const bool d = model.should_drop();
    if (d) {
      ++drops;
      if (prev) ++consecutive_pairs;
    }
    prev = d;
  }
  const double p_cons_given_drop =
      static_cast<double>(consecutive_pairs) / static_cast<double>(drops);
  // Bernoulli would give ~= 0.2; bursts of mean 20 give ~= 0.95.
  EXPECT_GT(p_cons_given_drop, 0.7);
}

TEST(GilbertElliott, MeanBurstLengthMatchesParameter) {
  auto model = GilbertElliott::with_target_loss(0.25, 10.0, 3);
  std::vector<std::size_t> bursts;
  std::size_t current = 0;
  for (std::size_t i = 0; i < 2'000'000; ++i) {
    if (model.should_drop()) {
      ++current;
    } else if (current > 0) {
      bursts.push_back(current);
      current = 0;
    }
  }
  double mean = 0.0;
  for (const std::size_t b : bursts) mean += static_cast<double>(b);
  mean /= static_cast<double>(bursts.size());
  EXPECT_NEAR(mean, 10.0, 1.0);
}

TEST(GilbertElliott, ResetReproducesSequence) {
  auto model = GilbertElliott::with_target_loss(0.3, 5.0, 99);
  std::vector<bool> first;
  for (int i = 0; i < 1000; ++i) first.push_back(model.should_drop());
  model.reset();
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(model.should_drop(), first[static_cast<std::size_t>(i)]) << i;
  }
}

TEST(GilbertElliott, ValidatesParameters) {
  EXPECT_THROW(GilbertElliott::with_target_loss(-0.1, 10, 1),
               std::invalid_argument);
  EXPECT_THROW(GilbertElliott::with_target_loss(1.0, 10, 1),
               std::invalid_argument);
  EXPECT_THROW(GilbertElliott::with_target_loss(0.1, 0.5, 1),
               std::invalid_argument);
  EXPECT_THROW(
      GilbertElliott(GilbertElliott::Params{.p_good_to_bad = 1.5}, 1),
      std::invalid_argument);
  EXPECT_THROW(GilbertElliott(GilbertElliott::Params{.p_good_to_bad = 0.1,
                                                     .p_bad_to_good = 0.0},
                              1),
               std::invalid_argument);
}

TEST(GilbertElliott, ExpectedRateFormulaMatchesParams) {
  const GilbertElliott model{GilbertElliott::Params{.p_good_to_bad = 0.02,
                                                    .p_bad_to_good = 0.18,
                                                    .loss_good = 0.0,
                                                    .loss_bad = 0.5},
                             1};
  // pi_bad = 0.02/0.2 = 0.1; loss = 0.1*0.5 = 0.05.
  EXPECT_NEAR(model.expected_loss_rate(), 0.05, 1e-12);
}

TEST(GilbertElliott, MeasuredRateConvergesToExpected) {
  // expected_loss_rate() is the stationary-chain formula; the realised
  // long-run rate of a general two-state chain (lossy GOOD state too)
  // must converge to it.
  GilbertElliott model{GilbertElliott::Params{.p_good_to_bad = 0.02,
                                              .p_bad_to_good = 0.3,
                                              .loss_good = 0.01,
                                              .loss_bad = 0.8},
                       11};
  EXPECT_NEAR(measured_loss(model, 2'000'000), model.expected_loss_rate(),
              0.003);
}

TEST(GilbertElliott, WithTargetLossRoundTripsParameters) {
  const double target = 0.07;
  const double burst = 6.0;
  const auto model = GilbertElliott::with_target_loss(target, burst, 2);
  const GilbertElliott::Params& p = model.params();
  // Classic GE: GOOD never drops, BAD always drops, so the mean BAD
  // sojourn is the burst length and the stationary BAD share is the
  // target rate.
  EXPECT_EQ(p.loss_good, 0.0);
  EXPECT_EQ(p.loss_bad, 1.0);
  EXPECT_NEAR(p.p_bad_to_good, 1.0 / burst, 1e-12);
  const double pi_bad =
      p.p_good_to_bad / (p.p_good_to_bad + p.p_bad_to_good);
  EXPECT_NEAR(pi_bad, target, 1e-12);
  EXPECT_NEAR(model.expected_loss_rate(), target, 1e-12);
  // And rebuilding a model from the extracted parameters reproduces the
  // drop sequence exactly (same seed, same chain).
  GilbertElliott a = model;
  GilbertElliott b{p, 2};
  a.reset();
  for (int i = 0; i < 10'000; ++i) {
    ASSERT_EQ(a.should_drop(), b.should_drop()) << "at packet " << i;
  }
}

TEST(GilbertElliott, BurstLengthsAreGeometric) {
  // BAD sojourns of the classic chain are geometric with mean L: the
  // length-1 share is ~1/L and the empirical CDF at L is ~1-(1-1/L)^L.
  const double burst = 8.0;
  auto model = GilbertElliott::with_target_loss(0.2, burst, 13);
  std::vector<std::size_t> lengths;
  std::size_t run = 0;
  for (std::size_t i = 0; i < 2'000'000; ++i) {
    if (model.should_drop()) {
      ++run;
    } else if (run != 0) {
      lengths.push_back(run);
      run = 0;
    }
  }
  ASSERT_GT(lengths.size(), 10'000u);
  std::size_t ones = 0;
  std::size_t within_mean = 0;
  double sum = 0.0;
  for (const std::size_t len : lengths) {
    sum += static_cast<double>(len);
    if (len == 1) ++ones;
    if (static_cast<double>(len) <= burst) ++within_mean;
  }
  const double n = static_cast<double>(lengths.size());
  EXPECT_NEAR(sum / n, burst, 0.15);
  EXPECT_NEAR(static_cast<double>(ones) / n, 1.0 / burst, 0.01);
  EXPECT_NEAR(static_cast<double>(within_mean) / n,
              1.0 - std::pow(1.0 - 1.0 / burst, burst), 0.01);
}

TEST(GilbertElliott, DegeneratesToBernoulliWhenStatesMatch) {
  // With equal per-state drop probabilities the hidden state is
  // irrelevant: the chain IS a Bernoulli process at that rate.
  const double rate = 0.08;
  GilbertElliott ge{GilbertElliott::Params{.p_good_to_bad = 0.3,
                                           .p_bad_to_good = 0.4,
                                           .loss_good = rate,
                                           .loss_bad = rate},
                    17};
  EXPECT_NEAR(ge.expected_loss_rate(), rate, 1e-12);
  BernoulliLoss bernoulli(rate, 17);
  EXPECT_NEAR(measured_loss(ge, 1'000'000),
              measured_loss(bernoulli, 1'000'000), 0.002);
}

TEST(BernoulliLoss, HitsTargetRate) {
  BernoulliLoss model(0.1, 5);
  EXPECT_NEAR(measured_loss(model, 1'000'000), 0.1, 0.005);
}

TEST(BernoulliLoss, RejectsBadRate) {
  EXPECT_THROW(BernoulliLoss(-0.01, 1), std::invalid_argument);
  EXPECT_THROW(BernoulliLoss(1.01, 1), std::invalid_argument);
}

TEST(NoLoss, NeverDrops) {
  NoLoss model;
  EXPECT_EQ(measured_loss(model, 10'000), 0.0);
  EXPECT_EQ(model.expected_loss_rate(), 0.0);
}

}  // namespace
}  // namespace vpm::loss
