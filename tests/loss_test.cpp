// Unit tests for the loss models (Gilbert-Elliott per the paper's §7.2
// methodology, plus the Bernoulli baseline).
#include <gtest/gtest.h>

#include <vector>

#include "loss/bernoulli.hpp"
#include "loss/gilbert_elliott.hpp"

namespace vpm::loss {
namespace {

double measured_loss(LossModel& model, std::size_t n) {
  std::size_t drops = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (model.should_drop()) ++drops;
  }
  return static_cast<double>(drops) / static_cast<double>(n);
}

TEST(GilbertElliott, HitsTargetLossRate) {
  for (const double target : {0.05, 0.10, 0.25, 0.50}) {
    auto model = GilbertElliott::with_target_loss(target, 10.0, 1);
    EXPECT_NEAR(model.expected_loss_rate(), target, 1e-12);
    EXPECT_NEAR(measured_loss(model, 2'000'000), target, 0.01)
        << "target " << target;
  }
}

TEST(GilbertElliott, ZeroTargetNeverDrops) {
  auto model = GilbertElliott::with_target_loss(0.0, 10.0, 1);
  EXPECT_EQ(measured_loss(model, 100'000), 0.0);
}

TEST(GilbertElliott, LossesAreBursty) {
  // With mean burst 20, consecutive drops must be far likelier than under
  // Bernoulli at the same rate.
  auto model = GilbertElliott::with_target_loss(0.2, 20.0, 7);
  std::size_t drops = 0;
  std::size_t consecutive_pairs = 0;
  bool prev = false;
  constexpr std::size_t kN = 1'000'000;
  for (std::size_t i = 0; i < kN; ++i) {
    const bool d = model.should_drop();
    if (d) {
      ++drops;
      if (prev) ++consecutive_pairs;
    }
    prev = d;
  }
  const double p_cons_given_drop =
      static_cast<double>(consecutive_pairs) / static_cast<double>(drops);
  // Bernoulli would give ~= 0.2; bursts of mean 20 give ~= 0.95.
  EXPECT_GT(p_cons_given_drop, 0.7);
}

TEST(GilbertElliott, MeanBurstLengthMatchesParameter) {
  auto model = GilbertElliott::with_target_loss(0.25, 10.0, 3);
  std::vector<std::size_t> bursts;
  std::size_t current = 0;
  for (std::size_t i = 0; i < 2'000'000; ++i) {
    if (model.should_drop()) {
      ++current;
    } else if (current > 0) {
      bursts.push_back(current);
      current = 0;
    }
  }
  double mean = 0.0;
  for (const std::size_t b : bursts) mean += static_cast<double>(b);
  mean /= static_cast<double>(bursts.size());
  EXPECT_NEAR(mean, 10.0, 1.0);
}

TEST(GilbertElliott, ResetReproducesSequence) {
  auto model = GilbertElliott::with_target_loss(0.3, 5.0, 99);
  std::vector<bool> first;
  for (int i = 0; i < 1000; ++i) first.push_back(model.should_drop());
  model.reset();
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(model.should_drop(), first[static_cast<std::size_t>(i)]) << i;
  }
}

TEST(GilbertElliott, ValidatesParameters) {
  EXPECT_THROW(GilbertElliott::with_target_loss(-0.1, 10, 1),
               std::invalid_argument);
  EXPECT_THROW(GilbertElliott::with_target_loss(1.0, 10, 1),
               std::invalid_argument);
  EXPECT_THROW(GilbertElliott::with_target_loss(0.1, 0.5, 1),
               std::invalid_argument);
  EXPECT_THROW(
      GilbertElliott(GilbertElliott::Params{.p_good_to_bad = 1.5}, 1),
      std::invalid_argument);
  EXPECT_THROW(GilbertElliott(GilbertElliott::Params{.p_good_to_bad = 0.1,
                                                     .p_bad_to_good = 0.0},
                              1),
               std::invalid_argument);
}

TEST(GilbertElliott, ExpectedRateFormulaMatchesParams) {
  const GilbertElliott model{GilbertElliott::Params{.p_good_to_bad = 0.02,
                                                    .p_bad_to_good = 0.18,
                                                    .loss_good = 0.0,
                                                    .loss_bad = 0.5},
                             1};
  // pi_bad = 0.02/0.2 = 0.1; loss = 0.1*0.5 = 0.05.
  EXPECT_NEAR(model.expected_loss_rate(), 0.05, 1e-12);
}

TEST(BernoulliLoss, HitsTargetRate) {
  BernoulliLoss model(0.1, 5);
  EXPECT_NEAR(measured_loss(model, 1'000'000), 0.1, 0.005);
}

TEST(BernoulliLoss, RejectsBadRate) {
  EXPECT_THROW(BernoulliLoss(-0.01, 1), std::invalid_argument);
  EXPECT_THROW(BernoulliLoss(1.01, 1), std::invalid_argument);
}

TEST(NoLoss, NeverDrops) {
  NoLoss model;
  EXPECT_EQ(measured_loss(model, 10'000), 0.0);
  EXPECT_EQ(model.expected_loss_rate(), 0.0);
}

}  // namespace
}  // namespace vpm::loss
