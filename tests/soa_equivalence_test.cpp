// SoA-vs-pre-refactor equivalence: the tentpole proof obligation of the
// structure-of-arrays path-state refactor.
//
// Flattening 100k heap-allocated per-path monitors into contiguous
// PathSlot records is a pure layout transform — it must not change a
// single receipt byte.  The reference implementations below replicate the
// PRE-SoA per-path objects verbatim (one DelaySampler + one Aggregator
// per path, each with grow-as-needed vector buffer / power-of-two ring /
// stable_partition pending list, behind a vector of unique_ptrs — the
// pointer-chasing layout the refactor removed), and the suite pins the
// identity: wire-encoded receipt streams from the SoA MonitoringCache and
// the ShardedCollector equal the reference's, byte for byte, across
// 10 seeds x both digest modes x shard counts {1, 4} x randomized
// observe_batch() slice boundaries, including a mid-stream drain.
//
// Also covered: observe() vs observe_batch() parity above the staged
// prefetch threshold (the >4k-path loop), 0/1-path edge cases, the
// PathHot size/contiguity budget, and hashes/packet == 1 in both modes.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <memory>
#include <optional>
#include <random>
#include <vector>

#include "collector/monitoring_cache.hpp"
#include "collector/sharded_collector.hpp"
#include "core/config.hpp"
#include "core/path_state.hpp"
#include "core/receipt_merge.hpp"
#include "sim/shard_scenario.hpp"
#include "trace/synthetic_trace.hpp"

namespace vpm::collector {
namespace {

using core::AggId;
using core::AggregateData;
using core::AggregateReceipt;
using core::IndexedPathDrain;
using core::PathDrain;
using core::SampleReceipt;
using core::SampleRecord;
using net::DigestEngine;
using net::Packet;
using net::Timestamp;

// ------------------------------------------------------------------------
// Pre-SoA reference: the per-path monitor exactly as PR 1 left it (heap
// objects, per-path engine copies, per-object buffers).

class RefSampler {
 public:
  RefSampler(const DigestEngine& engine, std::uint32_t marker_threshold,
             std::uint32_t sample_threshold)
      : engine_(engine),
        marker_threshold_(marker_threshold),
        sample_threshold_(sample_threshold) {}

  std::size_t observe(const net::PacketDecisions& d, Timestamp when) {
    if (d.marker_value > marker_threshold_) {
      const std::size_t swept = buffer_.size();
      for (const Buffered& q : buffer_) {
        if (DigestEngine::sample_value(q.id, d.id) > sample_threshold_) {
          emitted_.push_back(SampleRecord{
              .pkt_id = q.id, .time = q.time, .is_marker = false});
        }
      }
      buffer_.clear();
      emitted_.push_back(
          SampleRecord{.pkt_id = d.id, .time = when, .is_marker = true});
      return swept;
    }
    buffer_.push_back(Buffered{d.id, when});
    return 0;
  }

  [[nodiscard]] std::vector<SampleRecord> take_samples() {
    std::vector<SampleRecord> out;
    out.swap(emitted_);
    return out;
  }

 private:
  struct Buffered {
    net::PacketDigest id;
    Timestamp time;
  };
  DigestEngine engine_;  // the per-path copy the refactor removed
  std::uint32_t marker_threshold_;
  std::uint32_t sample_threshold_;
  std::vector<Buffered> buffer_;
  std::vector<SampleRecord> emitted_;
};

class RefAggregator {
 public:
  RefAggregator(const DigestEngine& engine, std::uint32_t cut_threshold,
                net::Duration j_window)
      : engine_(engine), cut_threshold_(cut_threshold), j_window_(j_window) {
    if (j_window_ > net::Duration{0}) ring_.resize(64);
  }

  void observe(const net::PacketDecisions& d, Timestamp when) {
    const net::PacketDigest id = d.id;
    const bool is_cut = open_.has_value() && d.cut_value > cut_threshold_;

    if (!pending_.empty()) finalize_due(when);

    if (is_cut) {
      if (j_window_ > net::Duration{0}) {
        Pending pend;
        pend.boundary = when;
        pend.data.agg = open_->agg;
        pend.data.packet_count = open_->count;
        pend.data.opened_at = open_->opened_at;
        pend.data.closed_at = open_->last_at;
        const std::size_t mask = ring_.size() - 1;
        for (std::size_t i = 0; i < ring_size_; ++i) {
          const Recent& r = ring_[(ring_head_ + i) & mask];
          if (r.time + j_window_ >= when) {
            pend.data.trans.before.push_back(r.id);
          }
        }
        pending_.push_back(std::move(pend));
      } else {
        closed_.push_back(AggregateData{.agg = open_->agg,
                                        .packet_count = open_->count,
                                        .trans = {},
                                        .opened_at = open_->opened_at,
                                        .closed_at = open_->last_at});
      }
      open_.reset();
    }

    for (Pending& pend : pending_) {
      pend.data.trans.after.push_back(id);
    }

    if (!open_) {
      open_ = Open{.agg = AggId{.first = id, .last = id},
                   .count = 1,
                   .opened_at = when,
                   .last_at = when};
    } else {
      open_->agg.last = id;
      ++open_->count;
      open_->last_at = when;
    }

    if (j_window_ > net::Duration{0}) {
      if (ring_size_ == ring_.size()) ring_grow();
      ring_[(ring_head_ + ring_size_) & (ring_.size() - 1)] =
          Recent{id, when};
      ++ring_size_;
      const std::size_t mask = ring_.size() - 1;
      while (ring_size_ != 0 &&
             ring_[ring_head_ & mask].time + j_window_ < when) {
        ring_head_ = (ring_head_ + 1) & mask;
        --ring_size_;
      }
    }
  }

  [[nodiscard]] std::vector<AggregateData> take_closed() {
    std::vector<AggregateData> out;
    out.swap(closed_);
    return out;
  }

  [[nodiscard]] std::optional<AggregateData> flush_open() {
    for (Pending& pend : pending_) closed_.push_back(std::move(pend.data));
    pending_.clear();
    if (!open_) return std::nullopt;
    AggregateData d;
    d.agg = open_->agg;
    d.packet_count = open_->count;
    d.opened_at = open_->opened_at;
    d.closed_at = open_->last_at;
    open_.reset();
    return d;
  }

 private:
  struct Recent {
    net::PacketDigest id;
    Timestamp time;
  };
  struct Open {
    AggId agg;
    std::uint32_t count = 0;
    Timestamp opened_at;
    Timestamp last_at;
  };
  struct Pending {
    AggregateData data;
    Timestamp boundary;
  };

  void ring_grow() {
    std::vector<Recent> bigger(ring_.size() * 2);
    const std::size_t mask = ring_.size() - 1;
    for (std::size_t i = 0; i < ring_size_; ++i) {
      bigger[i] = ring_[(ring_head_ + i) & mask];
    }
    ring_.swap(bigger);
    ring_head_ = 0;
  }

  void finalize_due(Timestamp now) {
    auto still_pending = [&](const Pending& p) {
      return p.boundary + j_window_ >= now;
    };
    auto it = std::stable_partition(pending_.begin(), pending_.end(),
                                    still_pending);
    for (auto done = it; done != pending_.end(); ++done) {
      closed_.push_back(std::move(done->data));
    }
    pending_.erase(it, pending_.end());
  }

  DigestEngine engine_;  // the per-path copy the refactor removed
  std::uint32_t cut_threshold_;
  net::Duration j_window_;
  std::optional<Open> open_;
  std::vector<Recent> ring_;
  std::size_t ring_head_ = 0;
  std::size_t ring_size_ = 0;
  std::vector<Pending> pending_;
  std::vector<AggregateData> closed_;
};

/// One heap-allocated per-path monitor, as the pre-SoA cache stored them.
struct RefPathMonitor {
  RefPathMonitor(const net::PathId& id, const DigestEngine& engine,
                 const core::PathParams& params)
      : path(id),
        sampler(engine, params.marker_threshold, params.sample_threshold),
        aggregator(engine, params.cut_threshold, params.j_window),
        sample_threshold(params.sample_threshold),
        marker_threshold(params.marker_threshold) {}

  void observe(const net::PacketDecisions& d, Timestamp when) {
    (void)sampler.observe(d, when);
    aggregator.observe(d, when);
  }

  [[nodiscard]] PathDrain drain(bool flush_open) {
    PathDrain out;
    out.samples.path = path;
    out.samples.sample_threshold = sample_threshold;
    out.samples.marker_threshold = marker_threshold;
    out.samples.samples = sampler.take_samples();
    auto stamp = [this](const AggregateData& d) {
      return AggregateReceipt{.path = path,
                              .agg = d.agg,
                              .packet_count = d.packet_count,
                              .trans = d.trans,
                              .opened_at = d.opened_at,
                              .closed_at = d.closed_at};
    };
    if (flush_open) {
      auto last = aggregator.flush_open();
      for (const AggregateData& d : aggregator.take_closed()) {
        out.aggregates.push_back(stamp(d));
      }
      if (last.has_value()) out.aggregates.push_back(stamp(*last));
    } else {
      for (const AggregateData& d : aggregator.take_closed()) {
        out.aggregates.push_back(stamp(d));
      }
    }
    return out;
  }

  net::PathId path;
  RefSampler sampler;
  RefAggregator aggregator;
  std::uint32_t sample_threshold;
  std::uint32_t marker_threshold;
};

/// The pre-SoA monitoring cache: classifier + unique_ptr-per-path.
class RefCache {
 public:
  RefCache(const MonitoringCache::Config& cfg,
           std::span<const net::PrefixPair> paths)
      : classifier_(paths), engine_(cfg.protocol.make_engine()) {
    const core::PathParams params{
        .marker_threshold = cfg.protocol.marker_threshold(),
        .sample_threshold =
            core::sample_threshold_for(cfg.protocol, cfg.tuning.sample_rate),
        .cut_threshold = core::cut_threshold_for(cfg.tuning.cut_rate),
        .j_window = cfg.protocol.reorder_window_j,
    };
    monitors_.reserve(paths.size());
    for (const net::PrefixPair& pair : paths) {
      const net::PathId id{
          .header_spec_id = cfg.protocol.header_spec.id(),
          .prefixes = pair,
          .previous_hop = cfg.previous_hop,
          .next_hop = cfg.next_hop,
          .max_diff = cfg.max_diff,
      };
      monitors_.push_back(
          std::make_unique<RefPathMonitor>(id, engine_, params));
    }
  }

  void observe(const Packet& p, Timestamp when) {
    const std::size_t path = classifier_.classify(p.header);
    if (path == PathClassifier::npos) return;
    monitors_[path]->observe(engine_.decide(p), when);
  }

  [[nodiscard]] std::vector<IndexedPathDrain> drain_all(bool flush_open) {
    std::vector<IndexedPathDrain> out;
    out.reserve(monitors_.size());
    for (std::size_t p = 0; p < monitors_.size(); ++p) {
      out.push_back(IndexedPathDrain{.path = p,
                                     .drain = monitors_[p]->drain(flush_open)});
    }
    return out;
  }

 private:
  PathClassifier classifier_;
  DigestEngine engine_;
  std::vector<std::unique_ptr<RefPathMonitor>> monitors_;
};

// ------------------------------------------------------------------------

MonitoringCache::Config cache_config(net::DigestMode mode) {
  MonitoringCache::Config cfg;
  cfg.protocol.marker_rate = 1.0 / 500.0;
  cfg.protocol.digest_mode = mode;
  cfg.protocol.reorder_window_j = net::milliseconds(10);
  cfg.tuning = core::HopTuning{.sample_rate = 0.01, .cut_rate = 1e-3};
  cfg.previous_hop = 1;
  cfg.next_hop = 3;
  return cfg;
}

trace::MultiPathTrace trace_for(std::uint64_t seed) {
  static constexpr std::size_t kPathCounts[] = {1,  2,  3,  7,   16,
                                                33, 64, 97, 150, 256};
  trace::MultiPathConfig mcfg;
  mcfg.path_count = kPathCounts[(seed - 1) % 10];
  mcfg.total_packets_per_second = 60'000;
  mcfg.duration = net::milliseconds(300);
  mcfg.seed = seed;
  return trace::generate_multi_path(mcfg);
}

/// Feed `packets` through observe_batch in slices with seeded random
/// boundaries, draining mid-stream at `drain_at` (a packet index every
/// collector under test sees at exactly the same position).
template <typename ObserveBatch, typename Drain>
std::vector<std::byte> run_sliced(std::span<const Packet> packets,
                                  std::size_t drain_at, std::uint64_t seed,
                                  ObserveBatch&& observe_batch,
                                  Drain&& drain) {
  std::mt19937_64 rng(seed * 977 + 11);
  std::uniform_int_distribution<std::size_t> batch_len(1, 2048);
  std::vector<std::byte> bytes;
  auto run_range = [&](std::size_t begin, std::size_t end) {
    std::size_t i = begin;
    while (i < end) {
      const std::size_t n = std::min(batch_len(rng), end - i);
      observe_batch(packets.subspan(i, n));
      i += n;
    }
  };
  run_range(0, drain_at);
  {
    auto mid = drain(false);
    bytes.insert(bytes.end(), mid.begin(), mid.end());
  }
  run_range(drain_at, packets.size());
  auto fin = drain(true);
  bytes.insert(bytes.end(), fin.begin(), fin.end());
  return bytes;
}

class SoaGoldenEquivalence
    : public ::testing::TestWithParam<net::DigestMode> {};

TEST_P(SoaGoldenEquivalence, ReceiptStreamsMatchPreRefactorReference) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const auto multi = trace_for(seed);
    const MonitoringCache::Config ccfg = cache_config(GetParam());
    const std::size_t drain_at = multi.packets.size() / 3;

    // Reference: packet-at-a-time pre-SoA monitors.
    RefCache ref(ccfg, multi.paths);
    std::vector<std::byte> ref_bytes;
    for (std::size_t i = 0; i < drain_at; ++i) {
      ref.observe(multi.packets[i], multi.packets[i].origin_time);
    }
    {
      auto mid = sim::encode_drain_stream(ref.drain_all(false));
      ref_bytes.insert(ref_bytes.end(), mid.begin(), mid.end());
    }
    for (std::size_t i = drain_at; i < multi.packets.size(); ++i) {
      ref.observe(multi.packets[i], multi.packets[i].origin_time);
    }
    {
      auto fin = sim::encode_drain_stream(ref.drain_all(true));
      ref_bytes.insert(ref_bytes.end(), fin.begin(), fin.end());
    }
    ASSERT_FALSE(ref_bytes.empty());

    // SoA cache, randomized batch slicing.
    MonitoringCache cache(ccfg, multi.paths);
    const std::vector<std::byte> cache_bytes = run_sliced(
        multi.packets, drain_at, seed,
        [&](std::span<const Packet> slice) { cache.observe_batch(slice); },
        [&](bool flush) {
          std::vector<IndexedPathDrain> stream;
          auto drains = cache.drain_all(flush);
          for (std::size_t p = 0; p < drains.size(); ++p) {
            stream.push_back(IndexedPathDrain{
                .path = p, .drain = std::move(drains[p])});
          }
          return sim::encode_drain_stream(stream);
        });
    EXPECT_EQ(cache_bytes, ref_bytes) << "cache, seed " << seed;
    // The single-hash budget survives the refactor.
    EXPECT_EQ(cache.ops().hash_computations,
              multi.packets.size() - cache.unknown_path_packets())
        << "hashes/packet != 1 at seed " << seed;

    // Sharded collectors, randomized batch slicing (different slice RNG
    // offsets per shard count come from the same seeded generator).
    for (const std::size_t shards : {1u, 4u}) {
      ShardedCollector::Config scfg;
      scfg.cache = ccfg;
      scfg.shard_count = shards;
      ShardedCollector sharded(scfg, multi.paths);
      const std::vector<std::byte> sharded_bytes = run_sliced(
          multi.packets, drain_at, seed + shards,
          [&](std::span<const Packet> slice) {
            sharded.observe_batch(slice);
          },
          [&](bool flush) {
            return sim::encode_drain_stream(sharded.drain(flush));
          });
      EXPECT_EQ(sharded_bytes, ref_bytes)
          << "sharded x" << shards << ", seed " << seed;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Modes, SoaGoldenEquivalence,
                         ::testing::Values(net::DigestMode::kSingle,
                                           net::DigestMode::kIndependent));

// ------------------------------------------------------------------------
// observe() vs observe_batch() parity ABOVE the staged-prefetch threshold
// (the >4k-path chunked loop is a different code path than the small-table
// loop the rest of the suite exercises).

TEST(SoaBatchParity, StagedLoopMatchesScalarAboveThreshold) {
  trace::MultiPathConfig mcfg;
  mcfg.path_count = 5000;  // > kStagedThreshold
  mcfg.total_packets_per_second = 120'000;
  mcfg.duration = net::milliseconds(300);
  mcfg.seed = 77;
  const auto multi = trace::generate_multi_path(mcfg);

  const MonitoringCache::Config ccfg =
      cache_config(net::DigestMode::kIndependent);
  MonitoringCache scalar(ccfg, multi.paths);
  MonitoringCache batched(ccfg, multi.paths);

  for (const Packet& p : multi.packets) scalar.observe(p, p.origin_time);
  batched.observe_batch(multi.packets);

  EXPECT_EQ(scalar.ops().hash_computations, batched.ops().hash_computations);
  EXPECT_EQ(scalar.ops().marker_sweep_accesses,
            batched.ops().marker_sweep_accesses);
  for (std::size_t p = 0; p < multi.paths.size(); ++p) {
    ASSERT_EQ(scalar.drain_path(p, true), batched.drain_path(p, true))
        << "path " << p;
  }
}

// ------------------------------------------------------------------------
// Edge cases and the layout budget itself.

TEST(SoaEdgeCases, ZeroPathsThrows) {
  EXPECT_THROW(
      MonitoringCache(cache_config(net::DigestMode::kIndependent),
                      std::vector<net::PrefixPair>{}),
      std::invalid_argument);
  ShardedCollector::Config scfg;
  scfg.cache = cache_config(net::DigestMode::kIndependent);
  scfg.shard_count = 2;
  EXPECT_THROW(ShardedCollector(scfg, std::vector<net::PrefixPair>{}),
               std::invalid_argument);
}

TEST(SoaEdgeCases, SinglePathMatchesReference) {
  const std::vector<net::PrefixPair> paths = {trace::default_prefix_pair()};
  trace::TraceConfig tcfg;
  tcfg.prefixes = paths[0];
  tcfg.packets_per_second = 20'000;
  tcfg.duration = net::milliseconds(400);
  tcfg.seed = 5;
  const auto trace = trace::generate_trace(tcfg);

  const MonitoringCache::Config ccfg =
      cache_config(net::DigestMode::kSingle);
  RefCache ref(ccfg, paths);
  MonitoringCache cache(ccfg, paths);
  for (const Packet& p : trace) {
    ref.observe(p, p.origin_time);
    cache.observe(p, p.origin_time);
  }
  auto ref_stream = ref.drain_all(true);
  std::vector<IndexedPathDrain> soa_stream;
  soa_stream.push_back(
      IndexedPathDrain{.path = 0, .drain = cache.drain_path(0, true)});
  EXPECT_EQ(sim::encode_drain_stream(soa_stream),
            sim::encode_drain_stream(ref_stream));

  // A 1-path cache that saw no traffic drains cleanly too.
  MonitoringCache idle(ccfg, paths);
  const PathDrain empty = idle.drain_path(0, true);
  EXPECT_TRUE(empty.samples.samples.empty());
  EXPECT_TRUE(empty.aggregates.empty());
}

TEST(SoaLayout, HotRecordFitsTheBudgetAndIsContiguous) {
  // The acceptance bound: hot per-path state is one contiguous record of
  // at most 32 bytes (also enforced at compile time in path_state.hpp).
  EXPECT_LE(sizeof(core::PathHot), 32u);
  EXPECT_EQ(sizeof(core::PathSlot), 64u);  // hot + warm share one line
  EXPECT_TRUE(std::is_trivially_copyable_v<core::PathHot>);

  const std::vector<net::PrefixPair> paths = {trace::default_prefix_pair()};
  MonitoringCache cache(cache_config(net::DigestMode::kIndependent), paths);
  EXPECT_EQ(cache.modeled_cache_bytes(),
            cache.path_count() * sizeof(core::PathHot));
  // The SoA block is one slot array: consecutive paths are adjacent.
  trace::MultiPathConfig mcfg;
  mcfg.path_count = 8;
  mcfg.total_packets_per_second = 10'000;
  mcfg.duration = net::milliseconds(10);
  const auto multi = trace::generate_multi_path(mcfg);
  MonitoringCache wide(cache_config(net::DigestMode::kIndependent),
                       multi.paths);
  const auto& slots = wide.state().slots;
  for (std::size_t p = 1; p < slots.size(); ++p) {
    EXPECT_EQ(reinterpret_cast<const std::byte*>(&slots[p]) -
                  reinterpret_cast<const std::byte*>(&slots[p - 1]),
              static_cast<std::ptrdiff_t>(sizeof(core::PathSlot)));
  }
}

}  // namespace
}  // namespace vpm::collector
