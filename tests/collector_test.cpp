// Tests for the collector library: path classification, the multi-path
// monitoring cache, the §7.1 resource model, and the router pipeline.
#include <gtest/gtest.h>

#include <vector>

#include "collector/monitoring_cache.hpp"
#include "collector/pipeline.hpp"
#include "collector/resource_model.hpp"
#include "collector/sharded_collector.hpp"
#include "helpers.hpp"
#include "trace/synthetic_trace.hpp"

namespace vpm::collector {
namespace {

MonitoringCache::Config cache_config() {
  MonitoringCache::Config cfg;
  cfg.protocol = test::test_protocol();
  cfg.tuning = core::HopTuning{.sample_rate = 0.01, .cut_rate = 1e-3};
  cfg.self = 4;
  cfg.previous_hop = 3;
  cfg.next_hop = 5;
  return cfg;
}

TEST(PathClassifier, MapsPacketsToTheirPaths) {
  trace::MultiPathConfig mcfg;
  mcfg.path_count = 100;
  mcfg.total_packets_per_second = 50'000;
  mcfg.duration = net::milliseconds(200);
  const auto multi = trace::generate_multi_path(mcfg);
  PathClassifier classifier(multi.paths);
  for (std::size_t i = 0; i < multi.packets.size(); i += 11) {
    EXPECT_EQ(classifier.classify(multi.packets[i].header),
              multi.path_of[i]);
  }
}

TEST(PathClassifier, UnknownPacketsReturnNpos) {
  const std::vector<net::PrefixPair> paths = {trace::default_prefix_pair()};
  PathClassifier classifier(paths);
  net::PacketHeader h;
  h.src = net::Ipv4Address(1, 2, 3, 4);
  h.dst = net::Ipv4Address(5, 6, 7, 8);
  EXPECT_EQ(classifier.classify(h), PathClassifier::npos);
}

TEST(PathClassifier, Validation) {
  EXPECT_THROW(PathClassifier(std::vector<net::PrefixPair>{}),
               std::invalid_argument);
  const std::vector<net::PrefixPair> mixed = {
      trace::default_prefix_pair(),
      net::PrefixPair{net::Prefix::parse("10.9.0.0/24"),
                      net::Prefix::parse("100.9.0.0/24")},
  };
  EXPECT_THROW(PathClassifier{mixed}, std::invalid_argument);
  const std::vector<net::PrefixPair> dup = {trace::default_prefix_pair(),
                                            trace::default_prefix_pair()};
  EXPECT_THROW(PathClassifier{dup}, std::invalid_argument);
}

TEST(MonitoringCache, TracksPerPathStateIndependently) {
  trace::MultiPathConfig mcfg;
  mcfg.path_count = 20;
  mcfg.total_packets_per_second = 100'000;
  mcfg.duration = net::seconds(1);
  const auto multi = trace::generate_multi_path(mcfg);

  MonitoringCache cache(cache_config(), multi.paths);
  std::vector<std::uint64_t> per_path(multi.paths.size(), 0);
  for (std::size_t i = 0; i < multi.packets.size(); ++i) {
    const std::size_t path =
        cache.observe(multi.packets[i], multi.packets[i].origin_time);
    ASSERT_EQ(path, multi.path_of[i]);
    ++per_path[path];
  }
  EXPECT_EQ(cache.unknown_path_packets(), 0u);

  // Aggregate receipts per path must count exactly that path's packets.
  for (std::size_t p = 0; p < multi.paths.size(); ++p) {
    const auto aggs = cache.collect_aggregates(p, true);
    std::uint64_t counted = 0;
    for (const auto& r : aggs) counted += r.packet_count;
    EXPECT_EQ(counted, per_path[p]) << "path " << p;
  }
}

TEST(MonitoringCache, CountsUnknownTraffic) {
  const std::vector<net::PrefixPair> paths = {trace::default_prefix_pair()};
  MonitoringCache cache(cache_config(), paths);
  net::Packet alien;
  alien.header.src = net::Ipv4Address(1, 2, 3, 4);
  alien.header.dst = net::Ipv4Address(9, 9, 9, 9);
  EXPECT_EQ(cache.observe(alien, net::Timestamp{}), PathClassifier::npos);
  EXPECT_EQ(cache.unknown_path_packets(), 1u);
}

TEST(MonitoringCache, OpsAccountingMatchesCostModel) {
  const std::vector<net::PrefixPair> paths = {trace::default_prefix_pair()};
  MonitoringCache cache(cache_config(), paths);
  auto cfg = test::small_trace_config(3);
  cfg.duration = net::milliseconds(200);
  const auto trace = trace::generate_trace(cfg);
  for (const auto& p : trace) cache.observe(p, p.origin_time);
  const DataPlaneOps& ops = cache.ops();
  EXPECT_EQ(ops.memory_accesses, trace.size() * 3);
  EXPECT_EQ(ops.hash_computations, trace.size());
  EXPECT_EQ(ops.timestamp_reads, trace.size());
}

// ---------------------------------------------------------- ResourceModel

TEST(ResourceModel, PaperMemoryNumbers) {
  // "if a HOP observes traffic from 100,000 paths at the same time, it
  // needs a 2MB monitoring cache" (§7.1).
  EXPECT_EQ(monitoring_cache_bytes(100'000), 2'000'000u);

  // OC-192 at 400 B packets: 3.125 Mpps; J = 10 ms; 2J window of 7 B
  // records = ~437 KB (the paper quotes 436 KB).
  const double pps = link_pps(10e9, 400.0);
  EXPECT_NEAR(pps, 3.125e6, 1e3);
  const std::size_t buf = temp_buffer_bytes(pps, net::milliseconds(10));
  EXPECT_NEAR(static_cast<double>(buf), 437'500.0, 2'000.0);

  // Worst case: 64 B packets -> ~2.7-2.8 MB (paper: 2.8 MB at 20 Mpps).
  const std::size_t worst =
      temp_buffer_bytes(link_pps(10e9, 64.0), net::milliseconds(10));
  EXPECT_GT(worst, 2'500'000u);
  EXPECT_LT(worst, 3'000'000u);
}

TEST(ResourceModel, PaperBandwidthNumbers) {
  // The paper's configuration: 10-domain path, 1000 packets/aggregate,
  // 1% sampling, 400 B packets -> ~0.2 B per packet and <0.1% overhead.
  BandwidthParams params;
  const BandwidthOverhead o = bandwidth_overhead(params);
  // Per HOP: 22/1000 + 7*0.01 + header amortisation ~= 0.12 B/packet.
  EXPECT_NEAR(o.bytes_per_packet_per_hop, 0.12, 0.03);
  EXPECT_LT(o.fraction_of_traffic, 0.01);
  EXPECT_GT(o.fraction_of_traffic, 0.001);
}

TEST(ResourceModel, OverheadScalesWithKnobs) {
  BandwidthParams base;
  BandwidthParams more_sampling = base;
  more_sampling.sample_rate = 0.10;
  EXPECT_GT(bandwidth_overhead(more_sampling).bytes_per_packet_per_hop,
            bandwidth_overhead(base).bytes_per_packet_per_hop);
  BandwidthParams coarser = base;
  coarser.packets_per_aggregate = 100'000;
  EXPECT_LT(bandwidth_overhead(coarser).bytes_per_packet_per_hop,
            bandwidth_overhead(base).bytes_per_packet_per_hop);
}

// --------------------------------------------------------------- Pipeline

TEST(Pipeline, ForwardsGoodTrafficAndDropsBad) {
  Pipeline pipe;
  pipe.append(std::make_unique<CheckHeaderElement>());
  pipe.append(std::make_unique<RouteLookupElement>(
      RouteLookupElement::synthetic_table(64, 5)));

  auto cfg = test::small_trace_config(7);
  cfg.duration = net::milliseconds(100);
  const auto trace = trace::generate_trace(cfg);
  for (const auto& p : trace) pipe.process(p, p.origin_time);
  EXPECT_EQ(pipe.forwarded(), trace.size());  // default route catches all

  net::Packet bad;  // zero addresses
  EXPECT_FALSE(pipe.process(bad, net::Timestamp{}));
  EXPECT_EQ(pipe.dropped(), 1u);
}

TEST(Pipeline, RouteLookupPrefersLongestPrefix) {
  std::vector<RouteLookupElement::Route> routes = {
      {net::Prefix::parse("10.0.0.0/8"), 1},
      {net::Prefix::parse("10.20.0.0/16"), 2},
      {net::Prefix::parse("0.0.0.0/0"), 0},
  };
  RouteLookupElement lookup(std::move(routes));
  net::Packet p;
  p.header.src = net::Ipv4Address(1, 1, 1, 1);
  p.header.total_length = 40;
  p.header.dst = net::Ipv4Address(10, 20, 3, 4);
  ASSERT_TRUE(lookup.process(p, net::Timestamp{}));
  EXPECT_EQ(lookup.last_next_hop(), 2u);
  p.header.dst = net::Ipv4Address(10, 99, 3, 4);
  ASSERT_TRUE(lookup.process(p, net::Timestamp{}));
  EXPECT_EQ(lookup.last_next_hop(), 1u);
  p.header.dst = net::Ipv4Address(99, 99, 3, 4);
  ASSERT_TRUE(lookup.process(p, net::Timestamp{}));
  EXPECT_EQ(lookup.last_next_hop(), 0u);
}

TEST(Pipeline, VpmElementFeedsCache) {
  const std::vector<net::PrefixPair> paths = {trace::default_prefix_pair()};
  auto vpm = std::make_unique<VpmElement>(cache_config(), paths);
  VpmElement* raw = vpm.get();
  Pipeline pipe;
  pipe.append(std::move(vpm));

  auto cfg = test::small_trace_config(9);
  cfg.duration = net::milliseconds(200);
  const auto trace = trace::generate_trace(cfg);
  for (const auto& p : trace) pipe.process(p, p.origin_time);
  const auto aggs = raw->cache().collect_aggregates(0, true);
  std::uint64_t counted = 0;
  for (const auto& r : aggs) counted += r.packet_count;
  EXPECT_EQ(counted, trace.size());
}

TEST(Pipeline, RouteLookupValidation) {
  EXPECT_THROW(RouteLookupElement({}), std::invalid_argument);
}

// ------------------------------------------------- observe_batch boundaries

TEST(MonitoringCacheBatchBoundary, EmptyBatchIsANoOp) {
  const std::vector<net::PrefixPair> paths = {trace::default_prefix_pair()};
  MonitoringCache cache(cache_config(), paths);

  cache.observe_batch(std::span<const net::Packet>{});
  cache.observe_batch(std::span<const net::Packet>{},
                      std::span<const net::Timestamp>{});
  EXPECT_EQ(cache.ops().memory_accesses, 0u);
  EXPECT_EQ(cache.ops().hash_computations, 0u);
  EXPECT_EQ(cache.unknown_path_packets(), 0u);

  // Also a no-op mid-stream: counters and receipts unchanged.
  auto cfg = test::small_trace_config(3);
  cfg.duration = net::milliseconds(300);
  const auto trace = trace::generate_trace(cfg);
  cache.observe_batch(trace);
  const DataPlaneOps before = cache.ops();
  cache.observe_batch(std::span<const net::Packet>{});
  EXPECT_EQ(cache.ops().hash_computations, before.hash_computations);
  EXPECT_EQ(cache.ops().memory_accesses, before.memory_accesses);

  // An empty sharded batch is equally inert.
  ShardedCollector::Config scfg;
  scfg.cache = cache_config();
  scfg.shard_count = 4;
  ShardedCollector sharded(scfg, paths);
  sharded.observe_batch(std::span<const net::Packet>{});
  EXPECT_EQ(sharded.ops().hash_computations, 0u);
}

TEST(MonitoringCacheBatchBoundary, SinglePacketBatchesMatchScalar) {
  const std::vector<net::PrefixPair> paths = {trace::default_prefix_pair()};
  auto cfg = test::small_trace_config(19);
  cfg.duration = net::milliseconds(500);
  const auto trace = trace::generate_trace(cfg);

  MonitoringCache scalar(cache_config(), paths);
  MonitoringCache batched(cache_config(), paths);
  for (const net::Packet& p : trace) {
    scalar.observe(p, p.origin_time);
    batched.observe_batch(std::span<const net::Packet>{&p, 1});
  }
  EXPECT_EQ(scalar.drain_path(0, true), batched.drain_path(0, true));
  EXPECT_EQ(scalar.ops().hash_computations, batched.ops().hash_computations);
}

TEST(MonitoringCacheBatchBoundary, BatchSpanningJWindowDrainMatchesScalar) {
  // Split the trace right after a cutting packet: the closed aggregate's
  // J-window is still pending when the next batch starts, so the second
  // batch finalizes a window opened by the first — the cross-batch drain
  // path that was previously untested.
  const std::vector<net::PrefixPair> paths = {trace::default_prefix_pair()};
  const MonitoringCache::Config ccfg = cache_config();
  auto cfg = test::small_trace_config(37);
  const auto trace = trace::generate_trace(cfg);

  const net::DigestEngine engine = ccfg.protocol.make_engine();
  const std::uint32_t delta = core::cut_threshold_for(ccfg.tuning.cut_rate);
  // Find a cut in the middle third (so both batches are substantial) and
  // a packet inside its J-window, giving two interesting split points.
  std::size_t cut = 0;
  for (std::size_t i = trace.size() / 3; i < 2 * trace.size() / 3; ++i) {
    if (engine.decide(trace[i]).cut_value > delta) {
      cut = i;
      break;
    }
  }
  ASSERT_GT(cut, 0u) << "trace contains no cut in the middle third";
  std::size_t inside_window = cut + 1;
  while (inside_window < trace.size() &&
         trace[inside_window].origin_time - trace[cut].origin_time <
             ccfg.protocol.reorder_window_j / 2) {
    ++inside_window;
  }

  MonitoringCache scalar(ccfg, paths);
  for (const net::Packet& p : trace) scalar.observe(p, p.origin_time);
  const core::PathDrain reference = scalar.drain_path(0, true);
  ASSERT_GT(reference.aggregates.size(), 2u);

  for (const std::size_t split : {cut, cut + 1, inside_window}) {
    MonitoringCache split_cache(ccfg, paths);
    const std::span<const net::Packet> all(trace);
    split_cache.observe_batch(all.first(split));
    split_cache.observe_batch(all.subspan(split));
    EXPECT_EQ(split_cache.drain_path(0, true), reference)
        << "split at " << split;
  }
}

}  // namespace
}  // namespace vpm::collector
