// The churn-soak acceptance matrix (ISSUE 5): ≥50 reporting rounds with
// ≥30% path turnover through the full epoch lifecycle — TTL eviction +
// arena compaction at the collectors, cursor-GC'd dissemination, and the
// round-fed incremental verifier — while continuously-live paths' receipts
// and PathAnalysis findings stay IDENTICAL to the non-evicting,
// non-GC'd, materialized reference, and resident bytes plateau.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>

#include "sim/churn_scenario.hpp"

namespace vpm {
namespace {

sim::ChurnScenarioConfig matrix_config(std::uint64_t seed,
                                       net::DigestMode mode,
                                       std::size_t shards) {
  sim::ChurnScenarioConfig cfg;
  cfg.seed = seed;
  cfg.digest_mode = mode;
  cfg.shard_count = shards;
  cfg.total_packets_per_second = 25'000.0;
  // Defaults already satisfy the acceptance shape: 52 rounds, 36-path
  // table, 12 stable + 6 churning live (33% of the live set churns).
  return cfg;
}

/// The equality half of the acceptance criterion.
void assert_live_paths_identical(const sim::ChurnScenarioResult& r,
                                 const char* what) {
  ASSERT_GE(r.per_round.size(), 50u);
  ASSERT_GT(r.total_packets, 0u);
  for (std::size_t h = 0; h < r.churn_concat.size(); ++h) {
    for (std::size_t p = 0; p < r.stable_paths; ++p) {
      ASSERT_EQ(r.churn_concat[h][p], r.ref_concat[h][p])
          << what << ": hop " << h << " path " << p
          << ": recovered wire stream diverged from the reference drain";
    }
  }
  for (std::size_t p = 0; p < r.stable_paths; ++p) {
    ASSERT_EQ(r.churn_analysis[p], r.ref_analysis[p])
        << what << ": path " << p
        << ": incremental findings diverged from the materialized verifier";
    // The findings are non-trivial: delay samples matched and traffic
    // accounted.
    ASSERT_EQ(r.churn_analysis[p].domains.size(), 1u);
    ASSERT_EQ(r.churn_analysis[p].links.size(), 1u);
    EXPECT_GT(r.churn_analysis[p].domains[0].delay.common_samples, 0u)
        << what << ": path " << p;
    EXPECT_GT(r.churn_analysis[p].domains[0].loss.offered, 0u);
  }
  EXPECT_EQ(r.verifier_expired_unmatched, 0u)
      << "in-window reporting must never expire unmatched state";
  EXPECT_GT(r.lifecycle_totals.evicted_paths, 0u)
      << "the churn schedule must actually exercise eviction";
}

std::size_t max_over(const std::vector<sim::ChurnRoundMetrics>& rounds,
                     std::size_t begin, std::size_t end,
                     std::size_t (*get)(const sim::ChurnRoundMetrics&)) {
  std::size_t m = 0;
  for (std::size_t i = begin; i < end; ++i) m = std::max(m, get(rounds[i]));
  return m;
}

/// The plateau half.  Resident arena bytes are "bounded by live work":
/// (1) garbage never exceeds the compaction watermark at any sampled
/// round (the exact post-lifecycle invariant), (2) the total plateaus up
/// to the slow burst-peak ratcheting of LIVE slice capacities (a stable
/// path's buffer/ring doubles on a rare deep burst — real live memory the
/// reference pays too), and (3) the grow-only reference pulls away.
/// Store bytes and the verifier working set plateau tightly.
void assert_plateau(const sim::ChurnScenarioResult& r,
                    double garbage_watermark) {
  const auto& rounds = r.per_round;
  const std::size_t n = rounds.size();
  const std::size_t third = n / 3;

  for (std::size_t i = 0; i < n; ++i) {
    const auto& m = rounds[i];
    const double garbage = static_cast<double>(m.churn_arena_bytes -
                                               m.churn_arena_live_bytes);
    EXPECT_LE(garbage, garbage_watermark *
                               static_cast<double>(m.churn_arena_bytes) +
                           64.0)
        << "round " << i
        << ": post-lifecycle garbage must sit at or below the watermark";
  }

  const auto plateau = [&](std::size_t (*get)(const sim::ChurnRoundMetrics&),
                           std::size_t slack_percent, const char* what) {
    const std::size_t mid = max_over(rounds, third, 2 * third, get);
    const std::size_t last = max_over(rounds, 2 * third, n, get);
    EXPECT_LE(last, mid + mid * slack_percent / 100 + 4096)
        << what << " must plateau (middle-third max " << mid
        << ", last-third max " << last << ")";
  };
  plateau([](const sim::ChurnRoundMetrics& m) { return m.churn_arena_bytes; },
          50, "resident arena bytes");
  plateau(
      [](const sim::ChurnRoundMetrics& m) { return m.store_payload_bytes; },
      10, "retained store bytes");
  plateau([](const sim::ChurnRoundMetrics& m) {
            return m.verifier_tail_receipts + m.verifier_pending;
          },
          10, "verifier working set");

  // The reference run, by construction, keeps history: dead paths' arena
  // slices and every envelope ever shipped.
  const auto& last = rounds.back();
  EXPECT_LT(static_cast<double>(last.churn_arena_bytes),
            0.6 * static_cast<double>(last.ref_arena_bytes))
      << "evicting + compacting must clearly beat the grow-only reference";
  EXPECT_LT(last.store_payload_bytes, last.ref_store_payload_bytes / 4)
      << "cursor GC must retain a small fraction of the full stream";
  EXPECT_GT(r.store_gc_erased, 0u);

  // Eviction keeps firing as churned paths expire (not just once).
  EXPECT_GT(rounds.back().evicted_cumulative,
            rounds[n / 2].evicted_cumulative);
}

TEST(ChurnSoak, PlateauAndLifecycleUnderDefaultLoad) {
  sim::ChurnScenarioConfig cfg;  // 50 kpps, 52 rounds
  cfg.seed = 1;
  cfg.shard_count = 4;
  const sim::ChurnScenarioResult r = sim::run_churn_scenario(cfg);
  assert_live_paths_identical(r, "default");
  assert_plateau(r, cfg.compact_garbage_fraction);
  EXPECT_GT(r.lifecycle_totals.compactions, 0u)
      << "eviction garbage must cross the compaction watermark";
  EXPECT_GT(r.lifecycle_totals.reclaimed_arena_bytes, 0u);
}

// The acceptance matrix: 10 seeds × both digest modes × sharded {1,4}.
// Split across cases so ctest can parallelize.
void run_matrix(net::DigestMode mode, std::size_t shards) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const sim::ChurnScenarioResult r =
        sim::run_churn_scenario(matrix_config(seed, mode, shards));
    assert_live_paths_identical(
        r, (std::string("seed ") + std::to_string(seed)).c_str());
    assert_plateau(r, matrix_config(seed, mode, shards)
                          .compact_garbage_fraction);
  }
}

TEST(ChurnSoakMatrix, SingleDigestOneShard) {
  run_matrix(net::DigestMode::kSingle, 1);
}
TEST(ChurnSoakMatrix, SingleDigestFourShards) {
  run_matrix(net::DigestMode::kSingle, 4);
}
TEST(ChurnSoakMatrix, IndependentDigestOneShard) {
  run_matrix(net::DigestMode::kIndependent, 1);
}
TEST(ChurnSoakMatrix, IndependentDigestFourShards) {
  run_matrix(net::DigestMode::kIndependent, 4);
}

}  // namespace
}  // namespace vpm
