// Tests for the §3.5 extension: content sketches that detect in-flight
// traffic modification on top of the aggregation component.
#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "core/aggregator.hpp"
#include "core/config.hpp"
#include "sketch/content_sketch.hpp"
#include "sketch/sketch_aggregator.hpp"
#include "trace/synthetic_trace.hpp"

namespace vpm::sketch {
namespace {

TEST(ContentSketch, IdenticalStreamsGiveZeroDifference) {
  ContentSketch a(64);
  ContentSketch b(64);
  std::mt19937_64 rng(1);
  for (int i = 0; i < 10'000; ++i) {
    const auto id = static_cast<net::PacketDigest>(rng());
    a.add(id);
    b.add(id);
  }
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.difference(b).squared_norm(), 0.0);
}

TEST(ContentSketch, OrderInvariant) {
  ContentSketch a(64);
  ContentSketch b(64);
  const std::vector<net::PacketDigest> ids = {5, 9, 1, 7, 3};
  for (const auto id : ids) a.add(id);
  for (auto it = ids.rbegin(); it != ids.rend(); ++it) b.add(*it);
  EXPECT_EQ(a, b);
}

TEST(ContentSketch, EstimatesSymmetricDifference) {
  // Expectation of the difference norm equals the number of differing
  // items; average over trials to beat the variance.
  std::mt19937_64 rng(2);
  constexpr int kDiffer = 40;
  double total = 0.0;
  constexpr int kTrials = 30;
  for (int t = 0; t < kTrials; ++t) {
    ContentSketch a(128);
    ContentSketch b(128);
    for (int i = 0; i < 5'000; ++i) {
      const auto id = static_cast<net::PacketDigest>(rng());
      a.add(id);
      b.add(id);
    }
    for (int i = 0; i < kDiffer; ++i) {
      a.add(static_cast<net::PacketDigest>(rng()));
    }
    total += a.difference(b).squared_norm();
  }
  EXPECT_NEAR(total / kTrials, kDiffer, kDiffer * 0.4);
}

TEST(ContentSketch, Validation) {
  EXPECT_THROW(ContentSketch{0}, std::invalid_argument);
  ContentSketch a(16);
  ContentSketch b(32);
  EXPECT_THROW((void)a.difference(b), std::invalid_argument);
}

TEST(ModificationCheck, LossAloneIsNotModification) {
  std::mt19937_64 rng(3);
  ContentSketch up(128);
  ContentSketch down(128);
  std::uint64_t up_n = 0;
  std::uint64_t down_n = 0;
  std::bernoulli_distribution dropped(0.1);
  for (int i = 0; i < 20'000; ++i) {
    const auto id = static_cast<net::PacketDigest>(rng());
    up.add(id);
    ++up_n;
    if (!dropped(rng)) {
      down.add(id);
      ++down_n;
    }
  }
  const ModificationCheck check =
      check_modification(up, up_n, down, down_n, /*tolerance=*/16.0);
  EXPECT_FALSE(check.modification_suspected)
      << "modified estimate " << check.modified_estimate;
  // The symmetric difference itself matches the loss.
  EXPECT_NEAR(check.symmetric_difference,
              static_cast<double>(up_n - down_n),
              0.3 * static_cast<double>(up_n - down_n));
}

TEST(ModificationCheck, ModificationIsDetected) {
  std::mt19937_64 rng(4);
  ContentSketch up(128);
  ContentSketch down(128);
  constexpr int kModified = 100;
  for (int i = 0; i < 20'000; ++i) {
    const auto id = static_cast<net::PacketDigest>(rng());
    up.add(id);
    // The first kModified packets get rewritten in flight: their digests
    // change, counts stay identical.
    down.add(i < kModified ? static_cast<net::PacketDigest>(rng()) : id);
  }
  const ModificationCheck check =
      check_modification(up, 20'000, down, 20'000, 16.0);
  EXPECT_TRUE(check.modification_suspected);
  EXPECT_NEAR(check.modified_estimate, kModified, kModified * 0.5);
}

// ---------------------------------------------------- SketchAggregator

std::vector<net::Packet> make_trace(std::uint64_t seed) {
  trace::TraceConfig cfg;
  cfg.prefixes = trace::default_prefix_pair();
  cfg.packets_per_second = 20'000;
  cfg.duration = net::seconds(2);
  cfg.seed = seed;
  return trace::generate_trace(cfg);
}

std::vector<SketchReceipt> run_sketches(const std::vector<net::Packet>& pkts,
                                        const net::DigestEngine& engine,
                                        std::uint32_t cut_threshold) {
  SketchAggregator agg(engine, cut_threshold, 64);
  for (const auto& p : pkts) agg.observe(p);
  auto out = agg.take_closed();
  if (auto last = agg.flush_open(); last.has_value()) {
    out.push_back(std::move(*last));
  }
  return out;
}

TEST(SketchAggregator, BoundariesMatchCoreAggregator) {
  const auto trace = make_trace(5);
  const net::DigestEngine engine;
  const std::uint32_t threshold = core::cut_threshold_for(1e-3);
  const auto sketches = run_sketches(trace, engine, threshold);

  core::Aggregator core_agg(engine, threshold, net::Duration{0});
  for (const auto& p : trace) core_agg.observe(p, p.origin_time);
  auto core_closed = core_agg.take_closed();
  if (auto last = core_agg.flush_open(); last.has_value()) {
    core_closed.push_back(*last);
  }
  ASSERT_EQ(sketches.size(), core_closed.size());
  for (std::size_t i = 0; i < sketches.size(); ++i) {
    EXPECT_EQ(sketches[i].agg.first, core_closed[i].agg.first);
    EXPECT_EQ(sketches[i].packet_count, core_closed[i].packet_count);
  }
}

TEST(SketchAggregator, CleanPathReportsNoModification) {
  const auto trace = make_trace(7);
  const net::DigestEngine engine;
  const std::uint32_t threshold = core::cut_threshold_for(1e-3);
  const auto up = run_sketches(trace, engine, threshold);
  const auto down = run_sketches(trace, engine, threshold);
  const ModificationReport report = check_path_modification(up, down);
  EXPECT_GT(report.aggregates_checked, 5u);
  EXPECT_TRUE(report.clean());
}

TEST(SketchAggregator, InFlightPayloadRewriteIsCaught) {
  const auto trace = make_trace(9);
  std::vector<net::Packet> tampered = trace;
  // The middleman rewrites the payload of every 50th packet.
  std::size_t rewritten = 0;
  for (std::size_t i = 0; i < tampered.size(); i += 50) {
    tampered[i].payload_prefix ^= 0xDEADBEEFull;
    ++rewritten;
  }
  const net::DigestEngine engine;
  const std::uint32_t threshold = core::cut_threshold_for(1e-3);
  const auto up = run_sketches(trace, engine, threshold);
  const auto down = run_sketches(tampered, engine, threshold);
  const ModificationReport report = check_path_modification(up, down, 2.0);
  EXPECT_FALSE(report.clean());
  EXPECT_NEAR(report.total_modified_estimate,
              static_cast<double>(rewritten),
              static_cast<double>(rewritten) * 0.6);
}

TEST(SketchAggregator, CountLyingCannotHideFromSketch) {
  // An adversary matching PktCnt but not content: inflate the downstream
  // count claim while packets differ.  The count check alone passes; the
  // sketch check does not.
  const auto trace = make_trace(11);
  const net::DigestEngine engine;
  const std::uint32_t threshold = core::cut_threshold_for(1e-3);
  std::vector<net::Packet> substituted = trace;
  for (std::size_t i = 0; i < 200; ++i) {
    // +1 skips index 0: modifying an aggregate's opening packet changes
    // its AggId and the receipts pair differently (the join handles that
    // case; this test isolates the pure content-swap one).  The swapped
    // payload must also not flip the packet's cutting-point status, or the
    // two HOPs partition differently and counts diverge for that honest
    // reason instead — pick the first candidate payload that keeps the
    // packet on the same side of the cut threshold.
    net::Packet& victim = substituted[1 + i * 3];
    const bool was_cut = engine.cut_value(victim) > threshold;
    for (std::uint64_t candidate = i;; candidate += 1000) {
      victim.payload_prefix = candidate;
      if ((engine.cut_value(victim) > threshold) == was_cut) break;
    }
  }
  const auto up = run_sketches(trace, engine, threshold);
  const auto down = run_sketches(substituted, engine, threshold);
  for (std::size_t i = 0; i < up.size() && i < down.size(); ++i) {
    EXPECT_EQ(up[i].packet_count, down[i].packet_count);
  }
  EXPECT_FALSE(check_path_modification(up, down, 2.0).clean());
}

}  // namespace
}  // namespace vpm::sketch
