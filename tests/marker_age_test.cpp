// Time-keyed marker rule (ProtocolParams::marker_max_age).
//
// The OVH-M temp buffer grows between markers; with digest-driven markers
// alone a low-rate path can go arbitrarily long without one, so at 100k
// paths the aggregate temp footprint is unbounded in time.  The rule makes
// a packet act as a marker whenever the OLDEST buffered record has aged
// past marker_max_age, bounding every path's buffer by
// (path packet rate x marker_max_age) — the J-window-style bound the
// roadmap promised.  This suite pins:
//
//   * the bound actually holds (peak records ~ age/spacing, not trace
//     length), and disappears when the rule is off;
//   * a forced marker is a REAL marker: the sweep emits buffered samples
//     and the forcing packet is recorded as a marker record;
//   * the batch fast path (chunked pipeline + sweep-imminent prefetch)
//     produces receipts byte-identical to packet-at-a-time observe with
//     the rule active;
//   * marker_max_age_us survives the scenario-config round trip.
#include <gtest/gtest.h>

#include <vector>

#include "collector/monitoring_cache.hpp"
#include "core/config.hpp"
#include "core/receipt.hpp"
#include "helpers.hpp"
#include "net/wire.hpp"
#include "sim/scenario_config.hpp"
#include "trace/synthetic_trace.hpp"

namespace vpm {
namespace {

using net::Packet;

std::vector<std::byte> encode_samples(const core::SampleReceipt& r) {
  net::ByteWriter w;
  encode(r, w);
  return std::move(w).take();
}

std::vector<std::byte> encode_aggregates(
    const std::vector<core::AggregateReceipt>& rs) {
  net::ByteWriter w;
  for (const core::AggregateReceipt& r : rs) encode(r, w);
  return std::move(w).take();
}

/// Protocol where digest-driven markers are effectively never chosen, so
/// only the time-keyed rule can close a buffer.
core::ProtocolParams no_natural_markers() {
  core::ProtocolParams p;
  p.marker_rate = 1e-12;
  p.reorder_window_j = net::milliseconds(10);
  return p;
}

/// ~1 ms spaced single-path trace (spacing is Poisson around 1 ms).
std::vector<Packet> paced_trace(net::Duration duration, std::uint64_t seed) {
  trace::TraceConfig cfg;
  cfg.prefixes = trace::default_prefix_pair();
  cfg.packets_per_second = 1000.0;
  cfg.duration = duration;
  cfg.flow_count = 50;
  cfg.burst_multiplier = 1.0;  // plain Poisson: keep spacing near the mean
  cfg.seed = seed;
  return trace::generate_trace(cfg);
}

TEST(MarkerMaxAge, BoundsTempBufferPeak) {
  const auto trace = paced_trace(net::seconds(20), 3);
  ASSERT_GT(trace.size(), 15'000u);
  const std::vector<net::PrefixPair> paths = {trace::default_prefix_pair()};

  collector::MonitoringCache::Config unbounded_cfg;
  unbounded_cfg.protocol = no_natural_markers();
  unbounded_cfg.tuning = core::HopTuning{.sample_rate = 0.5, .cut_rate = 1e-3};

  collector::MonitoringCache::Config bounded_cfg = unbounded_cfg;
  bounded_cfg.protocol.marker_max_age = net::milliseconds(50);

  collector::MonitoringCache unbounded(unbounded_cfg, paths);
  collector::MonitoringCache bounded(bounded_cfg, paths);
  unbounded.observe_batch(trace);
  bounded.observe_batch(trace);

  // Without the rule the buffer tracks the whole trace; with it the peak
  // is ~ age / spacing = 50 records (x4 slack for Poisson clumping).
  EXPECT_GT(unbounded.temp_buffer_peak_records(), trace.size() / 2);
  EXPECT_LE(bounded.temp_buffer_peak_records(), 200u);
  EXPECT_GE(bounded.temp_buffer_peak_records(), 10u);
}

TEST(MarkerMaxAge, ForcedMarkerSweepsAndRecordsMarker) {
  const auto trace = paced_trace(net::seconds(5), 11);
  const std::vector<net::PrefixPair> paths = {trace::default_prefix_pair()};

  collector::MonitoringCache::Config cfg;
  cfg.protocol = no_natural_markers();
  cfg.protocol.marker_max_age = net::milliseconds(100);
  cfg.tuning = core::HopTuning{.sample_rate = 0.5, .cut_rate = 1e-3};

  collector::MonitoringCache cache(cfg, paths);
  cache.observe_batch(trace);

  // Natural markers are off; every emitted record below comes from the
  // time-keyed rule, so the sweep machinery demonstrably ran.
  const core::SampleReceipt receipt = cache.collect_samples(0);
  std::size_t markers = 0;
  std::size_t swept = 0;
  for (const core::SampleRecord& r : receipt.samples) {
    r.is_marker ? ++markers : ++swept;
  }
  // ~5 s / 100 ms forced sweeps, each also sampling ~half its buffer.
  EXPECT_GE(markers, 20u);
  EXPECT_GE(swept, markers);
}

TEST(MarkerMaxAge, BatchMatchesScalarObserve) {
  trace::MultiPathConfig mcfg;
  mcfg.path_count = 32;
  mcfg.total_packets_per_second = 50'000;
  mcfg.duration = net::seconds(2);
  mcfg.seed = 29;
  const auto multi = trace::generate_multi_path(mcfg);

  collector::MonitoringCache::Config cfg;
  cfg.protocol = test::test_protocol();
  cfg.protocol.marker_max_age = net::milliseconds(20);
  cfg.tuning = core::HopTuning{.sample_rate = 0.05, .cut_rate = 1e-3};

  collector::MonitoringCache scalar(cfg, multi.paths);
  collector::MonitoringCache batch(cfg, multi.paths);
  for (const Packet& p : multi.packets) scalar.observe(p, p.origin_time);
  batch.observe_batch(multi.packets);

  EXPECT_EQ(scalar.temp_buffer_peak_records(),
            batch.temp_buffer_peak_records());
  for (std::size_t path = 0; path < multi.paths.size(); ++path) {
    ASSERT_EQ(encode_samples(scalar.collect_samples(path)),
              encode_samples(batch.collect_samples(path)))
        << "path " << path;
    ASSERT_EQ(encode_aggregates(scalar.collect_aggregates(path, true)),
              encode_aggregates(batch.collect_aggregates(path, true)))
        << "path " << path;
  }
}

TEST(MarkerMaxAge, ScenarioConfigRoundTrip) {
  sim::ScenarioConfig cfg;
  cfg.marker_max_age = net::milliseconds(1500);
  const std::string text = cfg.to_string();
  EXPECT_NE(text.find("marker_max_age_us=1500000"), std::string::npos) << text;
  const sim::ScenarioConfig back = sim::parse_scenario(text);
  EXPECT_EQ(back.marker_max_age, cfg.marker_max_age);
  EXPECT_EQ(back.to_string(), text);
}

}  // namespace
}  // namespace vpm
