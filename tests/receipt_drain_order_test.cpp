// Receipt drain ordering and stream merging (groundwork for the
// wire-format ROADMAP item: dissemination batches require time-ordered
// per-path streams, and the batch encoder rejects unordered input).
//
// Pinned properties:
//   * periodic control-plane drains concatenate into exactly the stream a
//     single end-of-run drain yields (draining early never reorders,
//     drops, or duplicates receipts);
//   * drained receipts are monotonically time-ordered per path;
//   * interleaved drains from two caches merge stably by open time
//     (ties keep stream order), and the merge rejects unordered input.
#include <gtest/gtest.h>

#include <vector>

#include "collector/monitoring_cache.hpp"
#include "core/receipt_merge.hpp"
#include "helpers.hpp"
#include "trace/synthetic_trace.hpp"

namespace vpm::core {
namespace {

collector::MonitoringCache::Config cache_config() {
  collector::MonitoringCache::Config cfg;
  cfg.protocol = test::test_protocol();
  cfg.tuning = HopTuning{.sample_rate = 0.02, .cut_rate = 1e-3};
  return cfg;
}

/// Feed `trace` in `chunks` slices, draining (without flush) after each;
/// returns the concatenated drains plus a final flushed drain.
PathDrain periodic_drain(collector::MonitoringCache& cache,
                         std::span<const net::Packet> trace,
                         std::size_t chunks) {
  PathDrain all;
  const std::size_t step = trace.size() / chunks + 1;
  for (std::size_t i = 0; i < trace.size(); i += step) {
    cache.observe_batch(trace.subspan(i, std::min(step, trace.size() - i)));
    PathDrain d = cache.drain_path(0, /*flush_open=*/false);
    all.samples.path = d.samples.path;
    all.samples.sample_threshold = d.samples.sample_threshold;
    all.samples.marker_threshold = d.samples.marker_threshold;
    all.samples.samples.insert(all.samples.samples.end(),
                               d.samples.samples.begin(),
                               d.samples.samples.end());
    all.aggregates.insert(all.aggregates.end(), d.aggregates.begin(),
                          d.aggregates.end());
  }
  PathDrain tail = cache.drain_path(0, /*flush_open=*/true);
  all.samples.samples.insert(all.samples.samples.end(),
                             tail.samples.samples.begin(),
                             tail.samples.samples.end());
  all.aggregates.insert(all.aggregates.end(), tail.aggregates.begin(),
                        tail.aggregates.end());
  return all;
}

void expect_monotone(const PathDrain& d) {
  for (std::size_t i = 1; i < d.samples.samples.size(); ++i) {
    EXPECT_GE(d.samples.samples[i].time, d.samples.samples[i - 1].time)
        << "sample " << i;
  }
  for (std::size_t i = 0; i < d.aggregates.size(); ++i) {
    EXPECT_LE(d.aggregates[i].opened_at, d.aggregates[i].closed_at)
        << "aggregate " << i;
    if (i > 0) {
      EXPECT_GE(d.aggregates[i].opened_at, d.aggregates[i - 1].opened_at);
      EXPECT_GE(d.aggregates[i].closed_at, d.aggregates[i - 1].closed_at);
    }
  }
}

TEST(ReceiptDrainOrder, PeriodicDrainsConcatenateToTheFullDrain) {
  const std::vector<net::PrefixPair> paths = {trace::default_prefix_pair()};
  auto tcfg = test::small_trace_config(13);
  const auto trace = trace::generate_trace(tcfg);

  collector::MonitoringCache periodic(cache_config(), paths);
  const PathDrain chunked = periodic_drain(periodic, trace, 9);

  collector::MonitoringCache oneshot(cache_config(), paths);
  oneshot.observe_batch(trace);
  const PathDrain full = oneshot.drain_path(0, /*flush_open=*/true);

  ASSERT_FALSE(full.samples.samples.empty());
  ASSERT_GT(full.aggregates.size(), 5u);
  EXPECT_EQ(chunked, full);
}

TEST(ReceiptDrainOrder, DrainedReceiptsAreMonotonePerPath) {
  const std::vector<net::PrefixPair> paths = {trace::default_prefix_pair()};
  auto tcfg = test::small_trace_config(29);
  const auto trace = trace::generate_trace(tcfg);
  collector::MonitoringCache cache(cache_config(), paths);
  const PathDrain all = periodic_drain(cache, trace, 7);
  ASSERT_GT(all.aggregates.size(), 5u);
  expect_monotone(all);
}

TEST(ReceiptDrainOrder, InterleavedDrainsFromTwoCachesMergeStably) {
  // Two caches over different paths, drained at interleaved (co-prime)
  // periods.  The merged aggregate stream must be time-ordered, contain
  // every receipt exactly once, and match the merge of the same caches'
  // one-shot drains (early draining must not perturb the merged stream).
  auto tcfg_a = test::small_trace_config(5);
  const auto trace_a = trace::generate_trace(tcfg_a);
  auto tcfg_b = test::small_trace_config(6);
  tcfg_b.prefixes = net::PrefixPair{net::Prefix::parse("99.1.0.0/16"),
                                    net::Prefix::parse("99.2.0.0/16")};
  const auto trace_b = trace::generate_trace(tcfg_b);

  const std::vector<net::PrefixPair> paths_a = {tcfg_a.prefixes};
  const std::vector<net::PrefixPair> paths_b = {tcfg_b.prefixes};

  collector::MonitoringCache a(cache_config(), paths_a);
  collector::MonitoringCache b(cache_config(), paths_b);
  const PathDrain drain_a = periodic_drain(a, trace_a, 7);
  const PathDrain drain_b = periodic_drain(b, trace_b, 11);

  const std::vector<std::vector<AggregateReceipt>> streams = {
      drain_a.aggregates, drain_b.aggregates};
  const std::vector<AggregateReceipt> merged =
      merge_aggregate_streams(streams);
  ASSERT_EQ(merged.size(), drain_a.aggregates.size() +
                               drain_b.aggregates.size());
  for (std::size_t i = 1; i < merged.size(); ++i) {
    EXPECT_GE(merged[i].opened_at, merged[i - 1].opened_at);
  }

  // Same merge from one-shot drains: identical stream.
  collector::MonitoringCache a2(cache_config(), paths_a);
  a2.observe_batch(trace_a);
  collector::MonitoringCache b2(cache_config(), paths_b);
  b2.observe_batch(trace_b);
  const std::vector<std::vector<AggregateReceipt>> oneshot = {
      a2.drain_path(0, true).aggregates, b2.drain_path(0, true).aggregates};
  EXPECT_EQ(merged, merge_aggregate_streams(oneshot));
}

// ------------------------------------------------------------ merge rules

AggregateReceipt agg_at(std::int64_t opened_ms, std::uint32_t count) {
  AggregateReceipt r;
  r.agg = AggId{.first = count, .last = count + 1};
  r.packet_count = count;
  r.opened_at = net::Timestamp{} + net::milliseconds(opened_ms);
  r.closed_at = r.opened_at + net::milliseconds(1);
  return r;
}

TEST(ReceiptMerge, TiesKeepStreamOrder) {
  const std::vector<std::vector<AggregateReceipt>> streams = {
      {agg_at(1, 10), agg_at(5, 11)},
      {agg_at(1, 20), agg_at(5, 21)},
  };
  const auto merged = merge_aggregate_streams(streams);
  ASSERT_EQ(merged.size(), 4u);
  EXPECT_EQ(merged[0].packet_count, 10u);  // stream 0 wins the tie at t=1
  EXPECT_EQ(merged[1].packet_count, 20u);
  EXPECT_EQ(merged[2].packet_count, 11u);  // and the tie at t=5
  EXPECT_EQ(merged[3].packet_count, 21u);
}

TEST(ReceiptMerge, RejectsUnorderedInputStreams) {
  const std::vector<std::vector<AggregateReceipt>> bad = {
      {agg_at(5, 1), agg_at(1, 2)},
  };
  EXPECT_THROW((void)merge_aggregate_streams(bad), std::invalid_argument);

  const std::vector<std::vector<SampleRecord>> bad_samples = {
      {SampleRecord{.pkt_id = 1,
                    .time = net::Timestamp{} + net::milliseconds(9)},
       SampleRecord{.pkt_id = 2, .time = net::Timestamp{}}},
  };
  EXPECT_THROW((void)merge_sample_records(bad_samples),
               std::invalid_argument);
}

TEST(ReceiptMerge, SampleRecordsMergeByTime) {
  const std::vector<std::vector<SampleRecord>> streams = {
      {SampleRecord{.pkt_id = 1, .time = net::Timestamp{1000}},
       SampleRecord{.pkt_id = 3, .time = net::Timestamp{3000}}},
      {SampleRecord{.pkt_id = 2, .time = net::Timestamp{2000}}},
  };
  const auto merged = merge_sample_records(streams);
  ASSERT_EQ(merged.size(), 3u);
  EXPECT_EQ(merged[0].pkt_id, 1u);
  EXPECT_EQ(merged[1].pkt_id, 2u);
  EXPECT_EQ(merged[2].pkt_id, 3u);
}

TEST(ReceiptMerge, PathDrainMergeRejectsDuplicatesAndDisorder) {
  auto drain_for = [](std::size_t path) {
    return IndexedPathDrain{.path = path, .drain = {}};
  };
  // Duplicate path index across shards.
  std::vector<std::vector<IndexedPathDrain>> dup;
  dup.push_back({drain_for(0), drain_for(2)});
  dup.push_back({drain_for(2)});
  EXPECT_THROW((void)merge_path_drains(std::move(dup)),
               std::invalid_argument);
  // Out-of-order shard stream.
  std::vector<std::vector<IndexedPathDrain>> unordered;
  unordered.push_back({drain_for(3), drain_for(1)});
  EXPECT_THROW((void)merge_path_drains(std::move(unordered)),
               std::invalid_argument);
  // Well-formed: global ascending order restored from shard streams.
  std::vector<std::vector<IndexedPathDrain>> ok;
  ok.push_back({drain_for(1), drain_for(4)});
  ok.push_back({drain_for(0), drain_for(2), drain_for(3)});
  const auto merged = merge_path_drains(std::move(ok));
  ASSERT_EQ(merged.size(), 5u);
  for (std::size_t i = 0; i < merged.size(); ++i) {
    EXPECT_EQ(merged[i].path, i);
  }
}

}  // namespace
}  // namespace vpm::core
