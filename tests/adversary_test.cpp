// Adversary tests: every lying strategy from the threat model must be
// caught by the consistency machinery — and the collusion cascade must
// push the inconsistency to the liar's far edge, exposing it there
// (Section 3.1's exposure argument).
#include <gtest/gtest.h>

#include <unordered_set>
#include <vector>

#include "adversary/strategies.hpp"
#include "baseline/trajectory_sampling.hpp"
#include "core/consistency.hpp"
#include "core/sampler.hpp"
#include "core/verifier.hpp"
#include "helpers.hpp"
#include "loss/bernoulli.hpp"
#include "sim/topology.hpp"
#include "stats/quantile.hpp"
#include "trace/synthetic_trace.hpp"

namespace vpm::adversary {
namespace {

using core::HopReceipts;
using core::InconsistencyKind;
using core::LinkReport;
using core::PathVerifier;
using test::figure_one_layout;
using test::test_protocol;

/// Figure-1 run where X drops `x_loss_rate` of its traffic; returns the
/// truthful receipts of all 8 HOPs.
struct FigOneRun {
  std::vector<net::Packet> trace;
  sim::PathRunResult run;
  std::vector<HopReceipts> receipts;  // index = hop position (hop id - 1)
};

FigOneRun honest_run(double x_loss_rate, std::uint64_t seed) {
  FigOneRun out;
  auto cfg = test::small_trace_config(seed);
  out.trace = trace::generate_trace(cfg);
  const sim::PathTopology topo = sim::PathTopology::figure_one();
  sim::PathEnvironment env = topo.make_environment(seed + 1);
  loss::BernoulliLoss x_loss(x_loss_rate, seed + 2);
  if (x_loss_rate > 0) env.domains[2].loss = &x_loss;
  env.domains[2].delay_of = [](sim::PacketIndex) {
    return net::milliseconds(2);
  };
  out.run = sim::run_path(out.trace, env);

  const auto protocol = test_protocol();
  const core::HopTuning tuning{.sample_rate = 0.05, .cut_rate = 1e-3};
  for (std::size_t pos = 0; pos < out.run.hop_observations.size(); ++pos) {
    auto monitor = test::make_monitor(
        protocol, tuning, static_cast<net::HopId>(pos + 1),
        pos == 0 ? net::kNoHop : static_cast<net::HopId>(pos),
        pos + 1 == out.run.hop_observations.size()
            ? net::kNoHop
            : static_cast<net::HopId>(pos + 2));
    test::feed(monitor, out.trace, out.run.hop_observations[pos]);
    HopReceipts r;
    r.hop = static_cast<net::HopId>(pos + 1);
    r.samples = monitor.collect_samples();
    r.aggregates = monitor.collect_aggregates(true);
    out.receipts.push_back(std::move(r));
  }
  return out;
}

PathVerifier verifier_with(const std::vector<HopReceipts>& receipts) {
  PathVerifier v;
  for (const HopReceipts& r : receipts) v.add_hop(r);
  return v;
}

TEST(Adversary, HidingLossMakesLinkInconsistent) {
  FigOneRun run = honest_run(0.10, 61);
  // X (hops 4,5) lies at its egress: claims it delivered everything.
  std::vector<HopReceipts> published = run.receipts;
  published[4].samples = hide_loss_samples(
      run.receipts[4].samples, run.receipts[3].samples, net::milliseconds(2));
  published[4].aggregates = hide_loss_aggregates(run.receipts[4].aggregates,
                                                 run.receipts[3].aggregates);

  PathVerifier v = verifier_with(published);
  const auto analysis = v.analyze(figure_one_layout());

  // X now *looks* lossless from its own receipts...
  const auto x_loss = v.domain_loss(4, 5);
  EXPECT_EQ(x_loss.offered, x_loss.delivered);
  // ...but the X->N link screams: N never received what X claims it sent.
  const LinkReport link = v.check_link(5, 6);
  ASSERT_FALSE(link.consistent());
  std::size_t missing = 0;
  for (const auto& viol : link.samples.violations) {
    if (viol.kind == InconsistencyKind::kMissingDownstream ||
        viol.kind == InconsistencyKind::kMarkerMissing) {
      ++missing;
    }
  }
  EXPECT_GT(missing, 0u);
  EXPECT_FALSE(link.aggregates.consistent());
  // Exposure: the X-N pair is implicated; all other links stay clean.
  for (const auto& l : analysis.links) {
    if (l.upstream_domain == "X" && l.downstream_domain == "N") {
      EXPECT_TRUE(l.implicates_pair());
    } else {
      EXPECT_FALSE(l.implicates_pair()) << l.upstream_domain << "->"
                                        << l.downstream_domain;
    }
  }
}

TEST(Adversary, UnderstatingDelayTripsMaxDiff) {
  FigOneRun run = honest_run(0.0, 67);
  std::vector<HopReceipts> published = run.receipts;
  // X shaves 10 ms off its egress timestamps (MaxDiff is 5 ms).
  published[4].samples =
      understate_delay(run.receipts[4].samples, net::milliseconds(10));

  PathVerifier v = verifier_with(published);
  const LinkReport link = v.check_link(5, 6);
  ASSERT_FALSE(link.samples.consistent());
  std::size_t delay_violations = 0;
  for (const auto& viol : link.samples.violations) {
    if (viol.kind == InconsistencyKind::kDelayBound) {
      ++delay_violations;
      EXPECT_NEAR(viol.magnitude, 5.0, 1.0);  // 10 ms shave - 5 ms MaxDiff
    }
  }
  EXPECT_GT(delay_violations, 0u);
}

TEST(Adversary, SmallShaveWithinMaxDiffIsUndetectableButBounded) {
  // Shaving less than MaxDiff - link_delay stays undetected — the paper's
  // implicit bound on delay lies.  Verify both sides of it.
  FigOneRun run = honest_run(0.0, 71);
  std::vector<HopReceipts> published = run.receipts;
  published[4].samples =
      understate_delay(run.receipts[4].samples, net::milliseconds(4));
  PathVerifier v = verifier_with(published);
  EXPECT_TRUE(v.check_link(5, 6).samples.consistent());
  // The lie's benefit is bounded by MaxDiff: X's estimated delay shrank by
  // only 4 ms.
  const auto delay = v.domain_delay(4, 5);
  ASSERT_TRUE(delay.usable());
  EXPECT_LT(delay.quantiles.front().value, 2.0);
}

TEST(Adversary, CollusionPushesInconsistencyDownstream) {
  FigOneRun run = honest_run(0.10, 73);
  std::vector<HopReceipts> published = run.receipts;
  // X lies at its egress...
  published[4].samples = hide_loss_samples(
      run.receipts[4].samples, run.receipts[3].samples, net::milliseconds(2));
  // ...and N covers at its ingress (hop 6), fabricating receptions.
  published[5].samples = cover_neighbor_samples(
      run.receipts[5].samples, published[4].samples, net::microseconds(50));

  PathVerifier v = verifier_with(published);
  // The X->N link now looks consistent: the cover-up worked locally...
  EXPECT_TRUE(v.check_link(5, 6).samples.consistent());
  // ...but N's own domain now shows the loss (it "received" packets that
  // never left it), so N absorbed X's blame.
  const auto n_loss_delay = v.domain_delay(6, 7);
  ASSERT_TRUE(n_loss_delay.usable());
  // Packets N claims to have received but never delivered: N's intra
  // -domain sample consistency breaks down — check via link N->D staying
  // clean while N's ingress has extra samples that die inside N.
  const auto n_ingress = published[5].samples.samples.size();
  const auto n_egress = published[6].samples.samples.size();
  EXPECT_GT(n_ingress, n_egress);
}

TEST(Adversary, BiasAttackFoolsTrajectorySamplingOnly) {
  // Setup: congested-ish delays (bimodal); the adversary prioritises
  // predictable samples.  Under TS++ it predicts everything; under VPM
  // only markers.
  auto cfg = test::small_trace_config(79);
  cfg.packets_per_second = 50'000;
  const auto trace = trace::generate_trace(cfg);

  // Honest delays: 10% of packets see a 20 ms spike, rest 1 ms.
  std::vector<net::Duration> honest(trace.size());
  std::mt19937_64 rng(81);
  std::bernoulli_distribution spike(0.10);
  for (auto& d : honest) {
    d = spike(rng) ? net::milliseconds(20) : net::milliseconds(1);
  }
  const double true_p95 = 20.0;

  const auto protocol = test_protocol();
  const net::DigestEngine engine = protocol.make_engine();
  const std::uint32_t ts_threshold = net::rate_to_threshold(0.02);

  auto estimated_p95 = [&](const SamplePredictor& predictable,
                           auto&& sampled_filter) {
    const auto biased =
        bias_delays(trace, honest, predictable, net::microseconds(100));
    stats::QuantileEstimator est;
    for (std::size_t i = 0; i < trace.size(); ++i) {
      if (sampled_filter(trace[i])) {
        est.add(biased[i].milliseconds());
      }
    }
    return est.estimate(0.95).value;
  };

  // Trajectory Sampling ++: the sampled set IS the predictable set.
  baseline::TrajectorySampler ts(engine, ts_threshold);
  const double ts_p95 = estimated_p95(
      trajectory_predictor(engine, ts_threshold),
      [&](const net::Packet& p) { return ts.would_sample(p); });

  // VPM: the adversary can only predict markers; the sampled set is
  // decided by future traffic.  Approximate the sampled set by running the
  // real sampler.
  core::DelaySampler sampler(engine, protocol.marker_threshold(),
                             core::sample_threshold_for(protocol, 0.02));
  std::unordered_set<net::PacketDigest> sampled_ids;
  for (const auto& p : trace) sampler.observe(p, p.origin_time);
  for (const auto& s : sampler.take_samples()) sampled_ids.insert(s.pkt_id);
  const double vpm_p95 = estimated_p95(
      vpm_marker_predictor(engine, protocol.marker_threshold()),
      [&](const net::Packet& p) {
        return sampled_ids.contains(engine.packet_id(p));
      });

  // TS++ is fully fooled: estimated p95 collapses to the preferred delay.
  EXPECT_LT(ts_p95, 1.0);
  // VPM's estimate stays near the truth (markers are a small minority).
  EXPECT_GT(vpm_p95, 0.8 * true_p95);
}

TEST(Adversary, BiasDelaysOnlyLowersPredictablePackets) {
  auto cfg = test::small_trace_config(83);
  cfg.duration = net::milliseconds(200);
  const auto trace = trace::generate_trace(cfg);
  std::vector<net::Duration> honest(trace.size(), net::milliseconds(5));
  const auto protocol = test_protocol();
  const net::DigestEngine engine = protocol.make_engine();
  const auto predictor =
      vpm_marker_predictor(engine, protocol.marker_threshold());
  const auto biased =
      bias_delays(trace, honest, predictor, net::milliseconds(1));
  for (std::size_t i = 0; i < trace.size(); ++i) {
    if (predictor(trace[i])) {
      EXPECT_EQ(biased[i], net::milliseconds(1));
    } else {
      EXPECT_EQ(biased[i], net::milliseconds(5));
    }
  }
}

}  // namespace
}  // namespace vpm::adversary
