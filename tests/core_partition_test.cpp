// Tests for the partition lattice (Section 6.1): Table 1's worked
// examples, the coarser/finer relation, and Join's lattice properties.
#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "core/partition.hpp"

namespace vpm::core {
namespace {

// Table 1 partitions of S = {p1, p2, p3, p4} (indices 0..3).
const Partition A1{4, {0, 1, 2, 3}};      // all singletons
const Partition A2{4, {0, 2}};            // {{p1,p2},{p3,p4}}
const Partition A3{4, {0, 1, 3}};         // {{p1},{p2,p3},{p4}}
const Partition A3p{4, {0, 1, 2}};        // {{p1},{p2},{p3,p4}}
const Partition A4{4, {0}};               // {{p1..p4}}

TEST(Partition, TableOneCoarserRelations) {
  EXPECT_TRUE(A2.coarser_or_equal(A1));
  EXPECT_TRUE(A3.coarser_or_equal(A1));
  // A2 is coarser than A3' ({{p1,p2},{p3,p4}} unions {{p1},{p2},{p3,p4}}),
  // which is why Table 1 reports Join(A2, A3') = A2.
  EXPECT_TRUE(A2.coarser_or_equal(A3p));
  EXPECT_FALSE(A3p.coarser_or_equal(A2));
  EXPECT_TRUE(A4.coarser_or_equal(A2));
  EXPECT_TRUE(A4.coarser_or_equal(A3));
  // "we cannot say that A2 >= A3 nor that A3 >= A2"
  EXPECT_FALSE(A2.coarser_or_equal(A3));
  EXPECT_FALSE(A3.coarser_or_equal(A2));
}

TEST(Partition, TableOneJoins) {
  const Partition partitions_a[] = {A1, A2};
  EXPECT_EQ(Partition::join(partitions_a), A2);  // Join(A1,A2) = A2
  const Partition partitions_b[] = {A2, A3};
  EXPECT_EQ(Partition::join(partitions_b), A4);  // Join(A2,A3) = A4
  const Partition partitions_c[] = {A2, A3p};
  EXPECT_EQ(Partition::join(partitions_c), A2);  // Join(A2,A3') = A2
}

TEST(Partition, AggregatesExpandCorrectly) {
  const auto aggs = A3.aggregates();
  ASSERT_EQ(aggs.size(), 3u);
  EXPECT_EQ(aggs[0], std::make_pair(std::size_t{0}, std::size_t{1}));
  EXPECT_EQ(aggs[1], std::make_pair(std::size_t{1}, std::size_t{3}));
  EXPECT_EQ(aggs[2], std::make_pair(std::size_t{3}, std::size_t{4}));
}

TEST(Partition, TrivialAndFinestFactories) {
  EXPECT_EQ(Partition::trivial(4), A4);
  EXPECT_EQ(Partition::finest(4), A1);
  EXPECT_TRUE(Partition::trivial(4).coarser_or_equal(Partition::finest(4)));
}

TEST(Partition, Validation) {
  EXPECT_THROW(Partition(0, {0}), std::invalid_argument);
  EXPECT_THROW(Partition(4, {}), std::invalid_argument);
  EXPECT_THROW(Partition(4, {1, 2}), std::invalid_argument);   // missing 0
  EXPECT_THROW(Partition(4, {0, 2, 1}), std::invalid_argument);  // unsorted
  EXPECT_THROW(Partition(4, {0, 2, 2}), std::invalid_argument);  // dup
  EXPECT_THROW(Partition(4, {0, 4}), std::invalid_argument);     // beyond n
  EXPECT_THROW(A1.coarser_or_equal(Partition::trivial(5)),
               std::invalid_argument);
  const Partition mixed[] = {A1, Partition::trivial(5)};
  EXPECT_THROW((void)Partition::join(mixed), std::invalid_argument);
  EXPECT_THROW((void)Partition::join({}), std::invalid_argument);
}

// ---- Lattice properties over random partitions ---------------------------

Partition random_partition(std::size_t n, double cut_prob,
                           std::mt19937_64& rng) {
  std::vector<std::size_t> cuts = {0};
  std::bernoulli_distribution cut(cut_prob);
  for (std::size_t i = 1; i < n; ++i) {
    if (cut(rng)) cuts.push_back(i);
  }
  return Partition{n, std::move(cuts)};
}

class PartitionLatticeProperty : public ::testing::TestWithParam<int> {};

TEST_P(PartitionLatticeProperty, JoinIsCoarserThanInputsAndIdempotent) {
  std::mt19937_64 rng(static_cast<std::uint64_t>(GetParam()));
  constexpr std::size_t n = 64;
  const Partition a = random_partition(n, 0.3, rng);
  const Partition b = random_partition(n, 0.3, rng);
  const Partition c = random_partition(n, 0.1, rng);

  const Partition parts[] = {a, b, c};
  const Partition j = Partition::join(parts);

  // Coarser than every input.
  EXPECT_TRUE(j.coarser_or_equal(a));
  EXPECT_TRUE(j.coarser_or_equal(b));
  EXPECT_TRUE(j.coarser_or_equal(c));

  // Idempotent: joining the join back in changes nothing.
  const Partition parts2[] = {a, b, c, j};
  EXPECT_EQ(Partition::join(parts2), j);

  // Commutative: order of inputs is irrelevant.
  const Partition parts3[] = {c, a, b};
  EXPECT_EQ(Partition::join(parts3), j);

  // Finest-coarser-than-all: any partition coarser than all inputs is
  // coarser than (or equal to) the join.  Check with the trivial one.
  EXPECT_TRUE(Partition::trivial(n).coarser_or_equal(j));
}

TEST_P(PartitionLatticeProperty, NestedPartitionsJoinToCoarser) {
  // If a's cuts are a subset of b's (a coarser), Join(a,b) == a — the
  // situation Section 6.2 engineers via threshold nesting.
  std::mt19937_64 rng(static_cast<std::uint64_t>(GetParam()) + 1000);
  constexpr std::size_t n = 64;
  const Partition fine = random_partition(n, 0.4, rng);
  // Thin out fine's cuts to build a genuinely coarser partition.
  std::vector<std::size_t> coarse_cuts;
  std::bernoulli_distribution keep(0.4);
  for (const std::size_t c : fine.cuts()) {
    if (c == 0 || keep(rng)) coarse_cuts.push_back(c);
  }
  const Partition coarse{n, coarse_cuts};
  const Partition parts[] = {coarse, fine};
  EXPECT_EQ(Partition::join(parts), coarse);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PartitionLatticeProperty,
                         ::testing::Range(1, 11));

}  // namespace
}  // namespace vpm::core
