// Property tests for shard routing.
//
// The routing function is the load-bearing contract of the sharded
// collector: every path key must map to exactly one shard, the mapping
// must be a pure function of (key, shard count) — stable across path-table
// rebuilds and resizes — and it must spread real path keys evenly enough
// that shards stay balanced (within 10% of uniform over 100k paths).
#include <gtest/gtest.h>

#include <bit>
#include <random>
#include <vector>

#include "collector/sharded_collector.hpp"
#include "trace/synthetic_trace.hpp"

namespace vpm::collector {
namespace {

using Sharded = ShardedCollector;

ShardedCollector::Config config_for(std::size_t shards) {
  ShardedCollector::Config cfg;
  cfg.cache.protocol.marker_rate = 1.0 / 500.0;
  cfg.cache.tuning = core::HopTuning{.sample_rate = 0.01, .cut_rate = 1e-3};
  cfg.shard_count = shards;
  return cfg;
}

TEST(ShardRouting, EveryPathMapsToExactlyOneShard) {
  trace::MultiPathConfig mcfg;
  mcfg.path_count = 211;  // prime: not aligned with any shard count
  mcfg.total_packets_per_second = 30'000;
  mcfg.duration = net::milliseconds(100);
  mcfg.seed = 2;
  const auto multi = trace::generate_multi_path(mcfg);

  for (const std::size_t shards : {1u, 2u, 4u, 8u}) {
    ShardedCollector sharded(config_for(shards), multi.paths);
    // Partition: every path is on some shard, and the shard sizes sum to
    // the path count (no path lost, none duplicated).
    std::size_t total = 0;
    for (std::size_t s = 0; s < shards; ++s) {
      total += sharded.shard_path_count(s);
    }
    EXPECT_EQ(total, multi.paths.size());

    // Construction-time partition and packet-time routing agree: each
    // path's packets route to the shard whose cache owns the path.
    for (std::size_t i = 0; i < multi.packets.size(); i += 17) {
      const std::size_t s = sharded.shard_of(multi.packets[i].header);
      const net::PrefixPair& pair = multi.paths[multi.path_of[i]];
      EXPECT_EQ(s, Sharded::shard_of_key(PathClassifier::key_of(pair),
                                         shards));
      ASSERT_NE(sharded.shard_cache(s), nullptr);
      EXPECT_NE(
          sharded.shard_cache(s)->classifier().classify(
              multi.packets[i].header),
          PathClassifier::npos);
    }
  }
}

TEST(ShardRouting, MaskedHostBitsDoNotAffectRouting) {
  const std::vector<net::PrefixPair> paths = {trace::default_prefix_pair()};
  ShardedCollector sharded(config_for(8), paths);
  net::PacketHeader a;
  a.src = net::Ipv4Address(
      paths[0].source.network().value() | 0x0000ABCDu);
  a.dst = net::Ipv4Address(
      paths[0].destination.network().value() | 0x00001234u);
  net::PacketHeader b = a;
  b.src = net::Ipv4Address(paths[0].source.network().value() | 0x000000FFu);
  b.dst = net::Ipv4Address(paths[0].destination.network().value());
  EXPECT_EQ(sharded.key_of(a), sharded.key_of(b));
  EXPECT_EQ(sharded.shard_of(a), sharded.shard_of(b));
}

TEST(ShardRouting, StableUnderTableRebuildAndResize) {
  // Routing must depend on (key, shard count) alone: growing the path
  // table — which rebuilds every per-shard classifier at a new size —
  // must not move any existing path between shards.
  trace::MultiPathConfig small_cfg;
  small_cfg.path_count = 64;
  small_cfg.total_packets_per_second = 20'000;
  small_cfg.duration = net::milliseconds(50);
  small_cfg.seed = 3;
  const auto small = trace::generate_multi_path(small_cfg);

  trace::MultiPathConfig big_cfg = small_cfg;
  big_cfg.path_count = 512;  // superset workload: 8x the table size
  const auto big = trace::generate_multi_path(big_cfg);

  for (const std::size_t shards : {2u, 4u, 8u}) {
    ShardedCollector before(config_for(shards), small.paths);
    ShardedCollector after(config_for(shards), big.paths);
    for (const net::PrefixPair& pair : small.paths) {
      // The same path present in both tables routes to the same shard...
      net::PacketHeader h;
      h.src = pair.source.network();
      h.dst = pair.destination.network();
      const std::size_t s = before.shard_of(h);
      EXPECT_EQ(s, after.shard_of(h));
      // ...and that shard's (rebuilt, larger) classifier still owns it —
      // the path did not silently migrate during the resize.
      ASSERT_NE(after.shard_cache(s), nullptr);
      EXPECT_NE(after.shard_cache(s)->classifier().classify(h),
                PathClassifier::npos);
    }
  }
}

TEST(ShardRouting, DistributionWithinTenPercentOfUniform) {
  // 100k random origin-prefix-pair keys (masked /16 halves, the key shape
  // real paths produce).  Every shard's load must sit within 10% of the
  // uniform share.
  constexpr std::size_t kPaths = 100'000;
  std::mt19937_64 rng(1234);
  std::vector<std::uint64_t> keys;
  keys.reserve(kPaths);
  for (std::size_t i = 0; i < kPaths; ++i) {
    const std::uint64_t src = rng() & 0xFFFF0000u;
    const std::uint64_t dst = rng() & 0xFFFF0000u;
    keys.push_back((src << 32) | dst);
  }

  for (const std::size_t shards : {2u, 4u, 8u}) {
    std::vector<std::size_t> load(shards, 0);
    for (const std::uint64_t key : keys) {
      ++load[Sharded::shard_of_key(key, shards)];
    }
    const double uniform = static_cast<double>(kPaths) / shards;
    for (std::size_t s = 0; s < shards; ++s) {
      EXPECT_NEAR(static_cast<double>(load[s]), uniform, 0.10 * uniform)
          << shards << " shards, shard " << s;
    }
  }
}

TEST(ShardRouting, ShardedKeysStillSpreadAcrossClassifierSlots) {
  // Sharding stacks a second hash decision on every key, so the keys one
  // shard's classifier sees are a hash-selected subset.  That subset must
  // still spread across the classifier's slot space — if the shard mixer
  // and the slot hash shared bits, each shard's keys would collapse onto
  // a stride of slots and probe chains would blow up.  (This test also
  // pins the slot-hash fix: the index is drawn from the TOP product bits;
  // the former bits 32..47 were blind to high src-prefix bits, so the
  // 10.x/16 -> 172.1/16 family below collided into ONE probe chain even
  // before sharding.)
  constexpr std::size_t kShards = 8;
  std::vector<net::PrefixPair> shard0;
  const net::Prefix dst = net::Prefix::parse("172.1.0.0/16");
  for (std::uint32_t i = 0; i < 4096 && shard0.size() < 256; ++i) {
    const net::Prefix src{net::Ipv4Address((10u << 24) + (i << 16)), 16};
    const net::PrefixPair pair{src, dst};
    if (Sharded::shard_of_key(PathClassifier::key_of(pair), kShards) == 0) {
      shard0.push_back(pair);
    }
  }
  ASSERT_GE(shard0.size(), 64u);

  // Replicate slot_of for the table PathClassifier would build over these
  // paths: bit_ceil(2 * n) slots, index = top bits of the golden-ratio
  // product.
  const std::size_t slots = std::bit_ceil(shard0.size() * 2);
  const unsigned shift =
      64 - static_cast<unsigned>(std::bit_width(slots - 1));
  std::vector<bool> slot_used(slots, false);
  std::size_t distinct = 0;
  for (const net::PrefixPair& pair : shard0) {
    const std::uint64_t key = PathClassifier::key_of(pair);
    const auto slot =
        static_cast<std::size_t>((key * 0x9E3779B97F4A7C15ull) >> shift);
    if (!slot_used[slot]) {
      slot_used[slot] = true;
      ++distinct;
    }
  }
  // With a sound hash, collisions among n keys in 2n+ slots are few;
  // catastrophic clustering would leave `distinct` near 1.
  EXPECT_GE(distinct, shard0.size() / 2)
      << "shard-0 keys cluster in classifier slots";
}

}  // namespace
}  // namespace vpm::collector
