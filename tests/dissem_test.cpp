// Tests for the Assumption-#2 dissemination substrate: authenticated
// envelopes and the per-producer receipt store, including the full loop of
// shipping real receipt batches through the store.
#include <gtest/gtest.h>

#include <cstdlib>
#include <vector>

#include "core/receipt_batch.hpp"
#include "dissem/envelope.hpp"
#include "dissem/receipt_store.hpp"
#include "helpers.hpp"
#include "sim/path_run.hpp"
#include "trace/synthetic_trace.hpp"

namespace vpm::dissem {
namespace {

std::vector<std::byte> bytes_of(const char* s) {
  std::vector<std::byte> out;
  for (const char* p = s; *p; ++p) out.push_back(static_cast<std::byte>(*p));
  return out;
}

TEST(Envelope, SealVerifyRoundTrip) {
  const Envelope e = seal(7, 1, bytes_of("receipts"), 0xfeedface);
  EXPECT_TRUE(verify(e, 0xfeedface));
  EXPECT_FALSE(verify(e, 0xfeedfacf));
}

TEST(Envelope, PayloadTamperDetected) {
  Envelope e = seal(7, 1, bytes_of("receipts"), 42);
  e.payload[3] ^= static_cast<std::byte>(0x01);
  EXPECT_FALSE(verify(e, 42));
}

TEST(Envelope, HeaderTamperDetected) {
  Envelope e = seal(7, 1, bytes_of("receipts"), 42);
  e.producer = 8;  // re-attributing the receipts must break the MAC
  EXPECT_FALSE(verify(e, 42));
  e.producer = 7;
  e.sequence = 99;  // replaying under a new sequence too
  EXPECT_FALSE(verify(e, 42));
}

TEST(Envelope, WireRoundTrip) {
  const Envelope e = seal(1234, 56789, bytes_of("hello receipts"), 77);
  net::ByteWriter w;
  encode(e, w);
  net::ByteReader r(w.view());
  const Envelope back = decode_envelope(r);
  EXPECT_EQ(back, e);
  EXPECT_TRUE(verify(back, 77));
}

TEST(Envelope, DecodeRejectsGarbage) {
  net::ByteWriter w;
  w.u8(0x99);
  net::ByteReader r(w.view());
  EXPECT_THROW((void)decode_envelope(r), net::WireError);

  // Absurd length claim.
  net::ByteWriter w2;
  w2.u8(0x21);
  w2.u32(1);
  w2.u64(1);
  w2.u32(0xFFFFFFFFu);
  net::ByteReader r2(w2.view());
  EXPECT_THROW((void)decode_envelope(r2), net::WireError);
}

TEST(ReceiptStore, AcceptsOnlyRegisteredAndAuthentic) {
  ReceiptStore store;
  store.register_producer(5, 0xabc);
  EXPECT_EQ(store.ingest(seal(5, 1, bytes_of("a"), 0xabc)),
            IngestResult::kAccepted);
  EXPECT_EQ(store.ingest(seal(6, 1, bytes_of("b"), 0xabc)),
            IngestResult::kUnknownProducer);
  EXPECT_EQ(store.ingest(seal(5, 2, bytes_of("c"), 0xdef)),
            IngestResult::kBadAuthenticator);
  EXPECT_EQ(store.accepted_count(), 1u);
  EXPECT_EQ(store.rejected_count(), 2u);
}

TEST(ReceiptStore, DedupesReplayAndFilesReorderedArrivals) {
  ReceiptStore store;
  store.register_producer(5, 1);
  EXPECT_EQ(store.ingest(seal(5, 10, bytes_of("x"), 1)),
            IngestResult::kAccepted);
  // Replay of a retained envelope dedupes (idempotent no-op)...
  const IngestOutcome dup = store.ingest(seal(5, 10, bytes_of("x"), 1));
  EXPECT_EQ(dup, IngestResult::kDuplicate);
  EXPECT_EQ(dup.got_sequence, 10u);
  // ...while a lower NEVER-SEEN sequence is a reordered arrival, not a
  // rollback: it files into place (ISSUE 6 — reordering must not become
  // loss).  Rollback rejection is the GC-floor test, pinned by
  // StoreCursor.StaleSequenceRejectionSurvivesGc.
  EXPECT_EQ(store.ingest(seal(5, 9, bytes_of("y"), 1)),
            IngestResult::kAccepted);
  EXPECT_EQ(store.ingest(seal(5, 11, bytes_of("z"), 1)),
            IngestResult::kAccepted);
  const auto payloads = store.payloads_from(5);
  ASSERT_EQ(payloads.size(), 3u);
  EXPECT_EQ(payloads[0], bytes_of("y")) << "sequence order, not arrival";
}

TEST(ReceiptStore, PayloadsReturnedInSequenceOrder) {
  ReceiptStore store;
  store.register_producer(3, 9);
  ASSERT_EQ(store.ingest(seal(3, 2, bytes_of("two"), 9)),
            IngestResult::kAccepted);
  ASSERT_EQ(store.ingest(seal(3, 5, bytes_of("five"), 9)),
            IngestResult::kAccepted);
  const auto payloads = store.payloads_from(3);
  ASSERT_EQ(payloads.size(), 2u);
  EXPECT_EQ(payloads[0].size(), 3u);
  EXPECT_EQ(payloads[1].size(), 4u);
  EXPECT_TRUE(store.payloads_from(99).empty());
}

// Regression for the span-lifetime hazard: payloads_from used to return
// spans into the stored envelopes, views whose validity silently depended
// on the store's container internals surviving later ingest.  It now
// returns owning copies — results must stay intact however much is
// ingested afterwards — and streaming consumers use for_each_payload,
// whose spans are documented valid only during the visit.
TEST(ReceiptStore, PayloadsFromSurvivesLaterIngest) {
  ReceiptStore store;
  store.register_producer(3, 9);
  ASSERT_EQ(store.ingest(seal(3, 1, bytes_of("first payload"), 9)),
            IngestResult::kAccepted);
  const auto before = store.payloads_from(3);
  ASSERT_EQ(before.size(), 1u);

  // Hammer the store: many new producers (rehashes the outer maps) and a
  // long run of further envelopes for the same producer.
  for (DomainId producer = 100; producer < 200; ++producer) {
    store.register_producer(producer, producer);
    ASSERT_EQ(store.ingest(seal(producer, 1, bytes_of("x"), producer)),
              IngestResult::kAccepted);
  }
  for (std::uint64_t seq = 2; seq <= 64; ++seq) {
    ASSERT_EQ(store.ingest(seal(3, seq, bytes_of("later"), 9)),
              IngestResult::kAccepted);
  }

  auto after = store.payloads_from(3);
  ASSERT_EQ(after.size(), 64u);
  EXPECT_EQ(before.front(), after.front());
  EXPECT_EQ(before.front(), bytes_of("first payload"));
}

TEST(ReceiptStore, ForEachPayloadVisitsInSequenceOrder) {
  ReceiptStore store;
  store.register_producer(4, 1);
  ASSERT_EQ(store.ingest(seal(4, 5, bytes_of("bb"), 1)),
            IngestResult::kAccepted);
  ASSERT_EQ(store.ingest(seal(4, 9, bytes_of("cccc"), 1)),
            IngestResult::kAccepted);
  std::vector<std::size_t> sizes;
  store.for_each_payload(4, [&](std::span<const std::byte> payload) {
    sizes.push_back(payload.size());
  });
  EXPECT_EQ(sizes, (std::vector<std::size_t>{2, 4}));
  store.for_each_payload(99, [&](std::span<const std::byte>) { FAIL(); });
}

TEST(ReceiptStore, KeyRotationInvalidatesOldKey) {
  ReceiptStore store;
  store.register_producer(5, 111);
  EXPECT_EQ(store.ingest(seal(5, 1, bytes_of("a"), 111)),
            IngestResult::kAccepted);
  store.register_producer(5, 222);
  EXPECT_EQ(store.ingest(seal(5, 2, bytes_of("b"), 111)),
            IngestResult::kBadAuthenticator);
  EXPECT_EQ(store.ingest(seal(5, 2, bytes_of("b"), 222)),
            IngestResult::kAccepted);
}

TEST(ReceiptStore, EndToEndReceiptBatchDelivery) {
  // A HOP produces real receipts, seals them into an envelope, publishes
  // to the store; the verifier-side consumer fetches, verifies, decodes.
  auto cfg = test::small_trace_config(401);
  const auto trace = trace::generate_trace(cfg);
  sim::PathEnvironment env;
  env.domains.resize(2);
  env.links.resize(1);
  env.seed = 402;
  const auto run = sim::run_path(trace, env);

  const auto protocol = test::test_protocol();
  auto monitor = test::make_monitor(
      protocol, core::HopTuning{.sample_rate = 0.02, .cut_rate = 1e-3}, 1,
      net::kNoHop, 2);
  test::feed(monitor, trace, run.hop_observations[0]);
  const core::SampleReceipt samples = monitor.collect_samples();
  const auto aggs = monitor.collect_aggregates(true);

  net::ByteWriter payload;
  core::encode_sample_batch(samples, payload);
  core::encode_aggregate_batch(aggs, payload);

  ReceiptStore store;
  store.register_producer(1, 0xC0FFEE);
  ASSERT_EQ(store.ingest(seal(1, 1,
                              std::vector<std::byte>(payload.view().begin(),
                                                     payload.view().end()),
                              0xC0FFEE)),
            IngestResult::kAccepted);

  const auto payloads = store.payloads_from(1);
  ASSERT_EQ(payloads.size(), 1u);
  net::ByteReader reader(payloads[0]);
  const core::SampleReceipt got_samples =
      core::decode_sample_batch(reader, samples.path);
  const auto got_aggs = core::decode_aggregate_batch(reader, samples.path);
  EXPECT_TRUE(reader.done());
  // Times quantise to 1 us on the wire; everything else is exact.
  ASSERT_EQ(got_samples.samples.size(), samples.samples.size());
  for (std::size_t i = 0; i < samples.samples.size(); ++i) {
    EXPECT_EQ(got_samples.samples[i].pkt_id, samples.samples[i].pkt_id);
    EXPECT_EQ(got_samples.samples[i].is_marker,
              samples.samples[i].is_marker);
    EXPECT_LE(
        std::abs((got_samples.samples[i].time - samples.samples[i].time)
                     .nanoseconds()),
        1000);
  }
  EXPECT_EQ(got_aggs.size(), aggs.size());
}

}  // namespace
}  // namespace vpm::dissem
