// The fault-soak acceptance matrix (ISSUE 6): the three-hop dissemination
// pipeline driven through FaultyTransport and a crash-restarted
// FetchClient fleet, 10 seeds × both digest modes × four fault plans —
// asserting that fully delivered rounds yield findings IDENTICAL to a
// fault-free run over the same rounds, that every induced loss surfaces
// as an explicitly reported RoundGap anchored at a destroyed sequence,
// that no cursor sticks, and that the store's GC floor advances to the
// head.  Excluded from the default ctest sweep (like ChurnSoak); CI runs
// it as a dedicated ASan+UBSan step, and the concurrent-fetch probe runs
// under TSan.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstddef>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "dissem/envelope.hpp"
#include "dissem/receipt_store.hpp"
#include "sim/fault_scenario.hpp"

namespace vpm {
namespace {

enum class PlanKind { kDropOnly, kDupReorder, kCrashResume, kKitchenSink };

sim::FaultScenarioConfig soak_config(std::uint64_t seed,
                                     net::DigestMode mode, PlanKind kind) {
  sim::FaultScenarioConfig cfg;
  cfg.seed = seed;
  cfg.fault_seed = seed * 7919 + 17;
  cfg.digest_mode = mode;
  switch (kind) {
    case PlanKind::kDropOnly:
      cfg.plan.drop_rate = 0.06;
      break;
    case PlanKind::kDupReorder:
      cfg.plan.duplicate_rate = 0.15;
      cfg.plan.reorder_rate = 0.15;
      cfg.plan.delay_rate = 0.10;
      break;
    case PlanKind::kCrashResume:
      // Lossless wire, crashing fleet: the pure crash-resume exercise —
      // divergence here is a cursor/replay bug, nothing else.
      cfg.plan.duplicate_rate = 0.10;
      cfg.plan.reorder_rate = 0.10;
      cfg.plan.delay_rate = 0.10;
      cfg.crash_every_rounds = 5;
      break;
    case PlanKind::kKitchenSink:
      cfg.plan.drop_rate = 0.04;
      cfg.plan.corrupt_rate = 0.03;
      cfg.plan.duplicate_rate = 0.10;
      cfg.plan.reorder_rate = 0.10;
      cfg.plan.delay_rate = 0.10;
      cfg.crash_every_rounds = 7;
      break;
  }
  return cfg;
}

/// Invariants every run must satisfy, faults or not: cursors caught up,
/// store drained by GC, every ack accepted, nothing expired out of the
/// verifiers' retention window.
void assert_no_stuck_state(const sim::FaultScenarioResult& r,
                           const std::string& what) {
  ASSERT_GT(r.total_packets, 0u) << what;
  std::uint64_t delivered_groups = 0;
  for (std::size_t h = 0; h < r.consumer_lag_end.size(); ++h) {
    EXPECT_EQ(r.consumer_lag_end[h], 0u)
        << what << ": hop " << h << ": consumer cursor stuck behind head";
    EXPECT_EQ(r.client_stats[h].ack_rejections, 0u)
        << what << ": hop " << h << ": a boundary ack was rejected";
    delivered_groups += r.client_stats[h].groups_delivered;
  }
  EXPECT_GT(delivered_groups, 0u) << what;
  EXPECT_EQ(r.store_envelopes_end, 0u)
      << what << ": acked envelopes must be garbage-collected";
  EXPECT_GT(r.gc_erased, 0u) << what << ": the GC floor never advanced";
  EXPECT_EQ(r.fault_expired_unmatched, 0u) << what;
  EXPECT_EQ(r.ref_expired_unmatched, 0u) << what;
}

/// The gap-exactness half: reported gaps anchor at destroyed sequences
/// and cover every destroyed sequence — reordering/delay/duplication
/// alone never degrade into a gap.
void assert_gaps_exact(const sim::FaultScenarioResult& r,
                       const std::string& what) {
  for (std::size_t h = 0; h < r.gaps.size(); ++h) {
    const std::set<std::uint64_t> lost(r.lost_sequences[h].begin(),
                                       r.lost_sequences[h].end());
    for (const core::RoundGap& g : r.gaps[h]) {
      EXPECT_LE(g.first_sequence, g.last_sequence) << what;
      EXPECT_TRUE(lost.contains(g.first_sequence))
          << what << ": hop " << h << ": gap [" << g.first_sequence << ", "
          << g.last_sequence
          << "] is not anchored at a destroyed sequence (phantom gap)";
    }
    for (const std::uint64_t seq : lost) {
      const bool covered = std::any_of(
          r.gaps[h].begin(), r.gaps[h].end(), [&](const core::RoundGap& g) {
            return g.first_sequence <= seq && seq <= g.last_sequence;
          });
      EXPECT_TRUE(covered) << what << ": hop " << h << ": destroyed seq "
                           << seq << " was never reported as a gap";
    }
    if (lost.empty()) {
      EXPECT_TRUE(r.gaps[h].empty())
          << what << ": hop " << h << ": gap reported on a lossless wire";
    } else {
      EXPECT_FALSE(r.gaps[h].empty()) << what << ": hop " << h;
    }
  }
}

/// The findings half.  Lossless runs must match the reference EXACTLY
/// (operator==, gaps empty both sides); lossy runs must match on every
/// finding while the gap vectors carry the difference.
void assert_findings(const sim::FaultScenarioResult& r, bool lossless,
                     const std::string& what) {
  for (std::size_t p = 0; p < r.fault_analysis.size(); ++p) {
    const core::PathAnalysis& fa = r.fault_analysis[p];
    const core::PathAnalysis& ra = r.ref_analysis[p];
    EXPECT_TRUE(ra.complete()) << what << ": reference grew gaps";
    if (lossless) {
      ASSERT_EQ(fa, ra) << what << ": path " << p
                        << ": findings diverged on a lossless wire";
      EXPECT_TRUE(fa.complete()) << what << ": path " << p;
      // The equality is non-trivial: delays matched, traffic accounted.
      ASSERT_EQ(fa.domains.size(), 1u) << what;
      ASSERT_EQ(fa.links.size(), 1u) << what;
      EXPECT_GT(fa.domains[0].delay.common_samples, 0u) << what;
      EXPECT_GT(fa.domains[0].loss.offered, 0u) << what;
    } else {
      ASSERT_EQ(fa.domains, ra.domains)
          << what << ": path " << p
          << ": delivered rounds must verify identically to the "
             "fault-free reference over the same rounds";
      ASSERT_EQ(fa.links, ra.links) << what << ": path " << p;
    }
  }
}

void run_one(std::uint64_t seed, net::DigestMode mode, PlanKind kind) {
  const sim::FaultScenarioConfig cfg = soak_config(seed, mode, kind);
  const sim::FaultScenarioResult r = sim::run_fault_scenario(cfg);
  const std::string what = "seed " + std::to_string(seed) +
                           (mode == net::DigestMode::kSingle ? " single"
                                                             : " indep");
  assert_no_stuck_state(r, what);
  assert_gaps_exact(r, what);
  assert_findings(r, cfg.plan.lossless(), what);

  std::size_t destroyed = 0;
  std::size_t duplicated = 0;
  std::size_t reordered_or_delayed = 0;
  for (const dissem::FaultStats& t : r.transport) {
    destroyed += t.dropped + t.corrupted;
    duplicated += t.duplicated;
    reordered_or_delayed += t.reordered + t.delayed;
  }
  switch (kind) {
    case PlanKind::kDropOnly:
      EXPECT_GT(destroyed, 0u) << what << ": plan induced no loss";
      break;
    case PlanKind::kDupReorder:
      EXPECT_EQ(destroyed, 0u);
      EXPECT_GT(duplicated, 0u) << what;
      EXPECT_GT(reordered_or_delayed, 0u) << what;
      EXPECT_GT(r.store_rejected, 0u)
          << what << ": duplicate copies must be rejected, not re-applied";
      break;
    case PlanKind::kCrashResume:
      EXPECT_EQ(destroyed, 0u);
      EXPECT_GT(r.client_rebuilds, 0u) << what;
      break;
    case PlanKind::kKitchenSink:
      EXPECT_GT(destroyed, 0u) << what;
      EXPECT_GT(r.client_rebuilds, 0u) << what;
      EXPECT_GT(r.store_rejected, 0u)
          << what << ": corrupted envelopes must die at the MAC check";
      break;
  }
}

// The acceptance matrix: 10 seeds × both digest modes per plan, split
// across cases so ctest can parallelize.
void run_matrix(PlanKind kind) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    run_one(seed, net::DigestMode::kSingle, kind);
    run_one(seed, net::DigestMode::kIndependent, kind);
  }
}

TEST(FaultSoakMatrix, DropOnly) { run_matrix(PlanKind::kDropOnly); }
TEST(FaultSoakMatrix, DuplicateAndReorder) {
  run_matrix(PlanKind::kDupReorder);
}
TEST(FaultSoakMatrix, CrashResume) { run_matrix(PlanKind::kCrashResume); }
TEST(FaultSoakMatrix, KitchenSink) { run_matrix(PlanKind::kKitchenSink); }

// Concurrent cursor fetches are read-only: a fleet of consumers draining
// the same producer from distinct cursors must not race (TSan target).
TEST(FaultSoak, ConcurrentFetchAcrossConsumersIsRaceFree) {
  constexpr dissem::DomainKey kKey = 0x7E57;
  constexpr dissem::DomainId kProducer = 9;
  constexpr std::size_t kConsumers = 4;
  constexpr std::uint64_t kEnvelopes = 64;

  dissem::ReceiptStore store;
  store.register_producer(kProducer, kKey);
  for (std::size_t c = 0; c < kConsumers; ++c) {
    store.register_consumer("c" + std::to_string(c));
  }
  for (std::uint64_t seq = 1; seq <= kEnvelopes; ++seq) {
    std::vector<std::byte> payload(16 + seq % 7,
                                   static_cast<std::byte>(seq & 0xFF));
    ASSERT_EQ(store.ingest(dissem::seal(kProducer, seq, std::move(payload),
                                        kKey)),
              dissem::IngestResult::kAccepted);
  }
  // Stagger the cursors so the threads walk different suffixes.
  for (std::size_t c = 1; c < kConsumers; ++c) {
    ASSERT_EQ(store.ack("c" + std::to_string(c), kProducer,
                        static_cast<std::uint64_t>(c) * 4),
              dissem::AckResult::kAcked);
  }

  std::array<std::uint64_t, kConsumers> seen{};
  std::array<std::uint64_t, kConsumers> bytes{};
  {
    std::vector<std::thread> threads;
    threads.reserve(kConsumers);
    for (std::size_t c = 0; c < kConsumers; ++c) {
      threads.emplace_back([&store, &seen, &bytes, c] {
        store.fetch_from("c" + std::to_string(c), kProducer,
                         [&](std::uint64_t seq,
                             std::span<const std::byte> payload) {
                           seen[c] = seq;
                           bytes[c] += payload.size();
                         });
      });
    }
    for (std::thread& t : threads) t.join();
  }
  for (std::size_t c = 0; c < kConsumers; ++c) {
    EXPECT_EQ(seen[c], kEnvelopes);
    EXPECT_GT(bytes[c], 0u);
    // Serial acks afterwards: every consumer saw through the head.
    EXPECT_EQ(store.ack("c" + std::to_string(c), kProducer, kEnvelopes),
              dissem::AckResult::kAcked);
  }
  EXPECT_EQ(store.stored_envelopes(), 0u)
      << "all consumers acked the head; GC must drain the store";
}

}  // namespace
}  // namespace vpm
