// Tests for the Section-3 baselines: the strawman's exactness, Trajectory
// Sampling ++'s predictability (its fatal flaw), and Difference
// Aggregator ++'s average-only delay plus its loss/reorder fragility.
#include <gtest/gtest.h>

#include <vector>

#include "baseline/diff_aggregator.hpp"
#include "baseline/strawman.hpp"
#include "baseline/trajectory_sampling.hpp"
#include "core/config.hpp"
#include "helpers.hpp"
#include "loss/bernoulli.hpp"
#include "sim/path_run.hpp"
#include "trace/synthetic_trace.hpp"

namespace vpm::baseline {
namespace {

struct TwoHopRun {
  std::vector<net::Packet> trace;
  sim::PathRunResult run;
};

TwoHopRun two_hops(loss::LossModel* domain_loss, net::Duration jitter,
                   net::Duration delay, std::uint64_t seed) {
  TwoHopRun out;
  auto cfg = test::small_trace_config(seed);
  out.trace = trace::generate_trace(cfg);
  sim::PathEnvironment env;
  env.domains.resize(3);
  env.links.resize(2);
  env.seed = seed + 1;
  env.domains[1].loss = domain_loss;
  env.domains[1].jitter = jitter;
  env.domains[1].delay_of = [delay](sim::PacketIndex) { return delay; };
  out.run = sim::run_path(out.trace, env);
  return out;
}

TEST(Strawman, ExactLossAndDelay) {
  loss::BernoulliLoss loss(0.15, 3);
  const TwoHopRun r = two_hops(&loss, net::Duration{0},
                               net::milliseconds(4), 1);
  const net::DigestEngine engine;
  StrawmanMonitor in(engine);
  StrawmanMonitor out(engine);
  for (const sim::Obs& o : r.run.hop_observations[1]) {
    in.observe(r.trace[o.pkt], o.when);
  }
  for (const sim::Obs& o : r.run.hop_observations[2]) {
    out.observe(r.trace[o.pkt], o.when);
  }
  const StrawmanDomainStats stats =
      strawman_domain_stats(in.records(), out.records());
  EXPECT_EQ(stats.offered, r.run.hop_observations[1].size());
  EXPECT_EQ(stats.delivered, r.run.hop_observations[2].size());
  for (const double ms : stats.delays_ms) {
    EXPECT_NEAR(ms, 4.0, 1e-6);
  }
  // Per-packet state is the strawman's downfall: 7 B per packet per HOP.
  EXPECT_EQ(in.state_bytes(), stats.offered * 7);
}

TEST(TrajectorySampler, SamplesPredictably) {
  // The attacker property: would_sample() is decidable per packet at
  // observation time, before forwarding.
  const net::DigestEngine engine;
  const std::uint32_t threshold = net::rate_to_threshold(0.05);
  TrajectorySampler sampler(engine, threshold);
  auto cfg = test::small_trace_config(5);
  cfg.duration = net::milliseconds(500);
  const auto trace = trace::generate_trace(cfg);
  std::size_t predicted = 0;
  for (const auto& p : trace) {
    if (sampler.would_sample(p)) ++predicted;
    sampler.observe(p, p.origin_time);
  }
  const auto records = sampler.take_records();
  EXPECT_EQ(records.size(), predicted);
  EXPECT_NEAR(static_cast<double>(records.size()) /
                  static_cast<double>(trace.size()),
              0.05, 0.02);
}

TEST(TrajectorySampler, SameThresholdSameSamples) {
  const net::DigestEngine engine;
  const std::uint32_t threshold = net::rate_to_threshold(0.03);
  TrajectorySampler a(engine, threshold);
  TrajectorySampler b(engine, threshold);
  auto cfg = test::small_trace_config(7);
  cfg.duration = net::milliseconds(300);
  const auto trace = trace::generate_trace(cfg);
  for (const auto& p : trace) {
    a.observe(p, p.origin_time);
    b.observe(p, p.origin_time + net::milliseconds(1));
  }
  const auto ra = a.take_records();
  const auto rb = b.take_records();
  ASSERT_EQ(ra.size(), rb.size());
  for (std::size_t i = 0; i < ra.size(); ++i) {
    EXPECT_EQ(ra[i].pkt_id, rb[i].pkt_id);
  }
}

std::vector<LdaAggregate> run_lda(const std::vector<net::Packet>& trace,
                                  const sim::ObsSeq& obs, double cut_rate) {
  const net::DigestEngine engine;
  DiffAggregator agg(engine, net::rate_to_threshold(cut_rate));
  for (const sim::Obs& o : obs) agg.observe(trace[o.pkt], o.when);
  auto closed = agg.take_closed();
  if (auto last = agg.flush_open(); last.has_value()) {
    closed.push_back(*last);
  }
  return closed;
}

TEST(DiffAggregator, ExactAverageDelayWithoutLossOrReorder) {
  const TwoHopRun r = two_hops(nullptr, net::Duration{0},
                               net::milliseconds(6), 9);
  const auto in = run_lda(r.trace, r.run.hop_observations[1], 1e-3);
  const auto out = run_lda(r.trace, r.run.hop_observations[2], 1e-3);
  const LdaDomainStats stats = lda_domain_stats(in, out);
  EXPECT_EQ(stats.offered, r.trace.size());
  EXPECT_EQ(stats.loss_rate(), 0.0);
  EXPECT_GT(stats.usable_aggregates, 5u);
  ASSERT_TRUE(stats.avg_delay_ms.has_value());
  EXPECT_NEAR(*stats.avg_delay_ms, 6.0, 0.01);
}

TEST(DiffAggregator, LossPoisonsDelayInformation) {
  // §3.3's complaint #2, operationalised: aggregates that lost packets
  // contribute no delay information (their sums no longer cancel).
  loss::BernoulliLoss loss(0.10, 13);
  const TwoHopRun r = two_hops(&loss, net::Duration{0},
                               net::milliseconds(6), 11);
  const auto in = run_lda(r.trace, r.run.hop_observations[1], 2e-3);
  const auto out = run_lda(r.trace, r.run.hop_observations[2], 2e-3);
  const LdaDomainStats stats = lda_domain_stats(in, out);
  // At 10% loss and ~500-packet aggregates nearly every aggregate loses
  // at least one packet, so almost none remain usable.
  EXPECT_GT(stats.unusable_aggregates, stats.usable_aggregates);
  // Loss totals remain computable (counts still add up).
  EXPECT_NEAR(stats.loss_rate(), 0.10, 0.03);
}

TEST(DiffAggregator, ReorderingBreaksAggregateAlignment) {
  // §3.3's complaint #1: with reordering and no AggTrans, the two HOPs'
  // aggregates disagree near boundaries, producing phantom loss.
  const TwoHopRun r = two_hops(nullptr, net::microseconds(400),
                               net::milliseconds(2), 15);
  const auto in = run_lda(r.trace, r.run.hop_observations[1], 2e-3);
  const auto out = run_lda(r.trace, r.run.hop_observations[2], 2e-3);
  const LdaDomainStats stats = lda_domain_stats(in, out);
  // Nothing was lost, yet some aggregates are unusable.
  EXPECT_GT(stats.unusable_aggregates, 0u);
}

TEST(DiffAggregator, CutRateControlsGranularityLikeVpm) {
  const TwoHopRun r = two_hops(nullptr, net::Duration{0},
                               net::milliseconds(1), 17);
  const auto coarse = run_lda(r.trace, r.run.hop_observations[1], 1e-4);
  const auto fine = run_lda(r.trace, r.run.hop_observations[1], 1e-2);
  EXPECT_LT(coarse.size(), fine.size());
}

}  // namespace
}  // namespace vpm::baseline
