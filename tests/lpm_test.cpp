// Tests for the LPM trie (router-FIB substrate behind the pipeline's route
// lookup), including a property check against a brute-force oracle.
#include <gtest/gtest.h>

#include <optional>
#include <random>
#include <vector>

#include "net/lpm.hpp"

namespace vpm::net {
namespace {

TEST(LpmTable, EmptyTableMissesEverything) {
  const LpmTable t;
  EXPECT_FALSE(t.lookup(Ipv4Address(1, 2, 3, 4)).has_value());
  EXPECT_EQ(t.size(), 0u);
}

TEST(LpmTable, LongestMatchWins) {
  LpmTable t;
  t.insert(Prefix::parse("10.0.0.0/8"), 1);
  t.insert(Prefix::parse("10.20.0.0/16"), 2);
  t.insert(Prefix::parse("10.20.30.0/24"), 3);
  EXPECT_EQ(t.lookup(Ipv4Address(10, 20, 30, 40)), std::optional<std::uint32_t>(3));
  EXPECT_EQ(t.lookup(Ipv4Address(10, 20, 99, 1)), std::optional<std::uint32_t>(2));
  EXPECT_EQ(t.lookup(Ipv4Address(10, 99, 1, 1)), std::optional<std::uint32_t>(1));
  EXPECT_FALSE(t.lookup(Ipv4Address(11, 0, 0, 1)).has_value());
}

TEST(LpmTable, DefaultRouteCatchesAll) {
  LpmTable t;
  t.insert(Prefix::parse("0.0.0.0/0"), 99);
  t.insert(Prefix::parse("10.0.0.0/8"), 1);
  EXPECT_EQ(t.lookup(Ipv4Address(200, 1, 1, 1)), std::optional<std::uint32_t>(99));
  EXPECT_EQ(t.lookup(Ipv4Address(10, 1, 1, 1)), std::optional<std::uint32_t>(1));
}

TEST(LpmTable, HostRoutes) {
  LpmTable t;
  t.insert(Prefix::parse("10.0.0.1/32"), 7);
  EXPECT_EQ(t.lookup(Ipv4Address(10, 0, 0, 1)), std::optional<std::uint32_t>(7));
  EXPECT_FALSE(t.lookup(Ipv4Address(10, 0, 0, 2)).has_value());
}

TEST(LpmTable, OverwriteKeepsSizeStable) {
  LpmTable t;
  t.insert(Prefix::parse("10.0.0.0/8"), 1);
  t.insert(Prefix::parse("10.0.0.0/8"), 2);
  EXPECT_EQ(t.size(), 1u);
  EXPECT_EQ(t.lookup(Ipv4Address(10, 1, 1, 1)), std::optional<std::uint32_t>(2));
}

TEST(LpmTable, ExactFetchIgnoresCovering) {
  LpmTable t;
  t.insert(Prefix::parse("10.0.0.0/8"), 1);
  EXPECT_EQ(t.exact(Prefix::parse("10.0.0.0/8")), std::optional<std::uint32_t>(1));
  EXPECT_FALSE(t.exact(Prefix::parse("10.20.0.0/16")).has_value());
}

TEST(LpmTable, AgreesWithBruteForceOracle) {
  std::mt19937_64 rng(13);
  std::vector<std::pair<Prefix, std::uint32_t>> table;
  LpmTable t;
  for (std::uint32_t i = 0; i < 300; ++i) {
    const auto len = static_cast<std::uint8_t>(8 + (rng() % 17));  // 8..24
    const std::uint32_t mask =
        len == 0 ? 0 : ~std::uint32_t{0} << (32 - len);
    const Prefix p{Ipv4Address{static_cast<std::uint32_t>(rng()) & mask}, len};
    table.emplace_back(p, i);
    t.insert(p, i);
  }
  auto oracle = [&](Ipv4Address a) -> std::optional<std::uint32_t> {
    std::optional<std::uint32_t> best;
    int best_len = -1;
    for (const auto& [p, v] : table) {
      // >= so the LAST inserted among duplicates wins, matching insert's
      // overwrite semantics.
      if (p.contains(a) && static_cast<int>(p.length()) >= best_len) {
        best = v;
        best_len = p.length();
      }
    }
    return best;
  };
  for (int i = 0; i < 20'000; ++i) {
    const Ipv4Address addr{static_cast<std::uint32_t>(rng())};
    EXPECT_EQ(t.lookup(addr), oracle(addr)) << addr.to_string();
  }
}

}  // namespace
}  // namespace vpm::net
