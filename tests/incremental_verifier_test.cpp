// The round-fed verifier against the materialized reference.
//
// Incremental alignment: consumed prefix + tail must reproduce batch
// align_aggregates over arbitrary feed slicings, including patch-up
// migrations whose shift straddles a consumed seam.  Incremental
// verification: IncrementalPathVerifier fed rounds with realistic shipping
// lag (downstream HOPs ship a round late) must produce analyze() findings
// identical to PathVerifier over the concatenated receipts — violations
// included.
#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <vector>

#include "core/alignment.hpp"
#include "core/incremental_verifier.hpp"
#include "core/verifier.hpp"
#include "net/path_id.hpp"

namespace vpm::core {
namespace {

net::PathId test_path() {
  net::PathId id;
  id.max_diff = net::milliseconds(5);
  return id;
}

AggregateReceipt agg(net::PacketDigest first, std::uint32_t count,
                     std::int64_t opened_ms, std::int64_t closed_ms) {
  AggregateReceipt r;
  r.path = test_path();
  r.agg = AggId{.first = first, .last = first + 7};
  r.packet_count = count;
  r.opened_at = net::Timestamp{net::milliseconds(opened_ms).nanoseconds()};
  r.closed_at = net::Timestamp{net::milliseconds(closed_ms).nanoseconds()};
  return r;
}

// --- incremental alignment ------------------------------------------------

// Random upstream sequence; downstream merges random runs of it (coarser
// cuts / lost cutting packets).  Feeding the two sides at different paces
// with per-step consumption must reproduce the batch alignment exactly.
TEST(IncrementalAlignment, ConsumedPrefixPlusTailEqualsBatch) {
  std::mt19937_64 rng(7);
  for (int trial = 0; trial < 20; ++trial) {
    std::uniform_int_distribution<std::uint32_t> count_dist(50, 150);
    std::uniform_int_distribution<int> run_dist(1, 3);
    const std::size_t n = 40;
    std::vector<AggregateReceipt> up;
    for (std::size_t i = 0; i < n; ++i) {
      up.push_back(agg(1000 + 10 * static_cast<net::PacketDigest>(i),
                       count_dist(rng), static_cast<std::int64_t>(i) * 10,
                       static_cast<std::int64_t>(i) * 10 + 9));
    }
    std::vector<AggregateReceipt> down;
    for (std::size_t i = 0; i < n;) {
      const std::size_t run =
          std::min<std::size_t>(static_cast<std::size_t>(run_dist(rng)),
                                n - i);
      AggregateReceipt merged = up[i];
      for (std::size_t k = 1; k < run; ++k) {
        merged.packet_count += up[i + k].packet_count;
        merged.agg.last = up[i + k].agg.last;
        merged.closed_at = up[i + k].closed_at;
      }
      down.push_back(merged);
      i += run;
    }

    const AlignmentResult batch = align_aggregates(up, down, true);

    AggregateTail tail;
    std::vector<AlignedAggregate> consumed;
    std::size_t consumed_migrations = 0;
    std::size_t ui = 0;
    std::size_t di = 0;
    std::uniform_int_distribution<std::size_t> chunk(1, 5);
    while (ui < up.size() || di < down.size()) {
      const std::size_t un = std::min(chunk(rng), up.size() - ui);
      tail.up.insert(tail.up.end(), up.begin() + ui, up.begin() + ui + un);
      ui += un;
      const std::size_t dn = std::min(chunk(rng), down.size() - di);
      tail.down.insert(tail.down.end(), down.begin() + di,
                       down.begin() + di + dn);
      di += dn;
      consumed_migrations +=
          consume_aligned_prefix(tail, 2, consumed).migrations;
    }
    const AlignmentResult rest = align_tail(tail);
    std::vector<AlignedAggregate> all = consumed;
    all.insert(all.end(), rest.aligned.begin(), rest.aligned.end());

    ASSERT_EQ(all, batch.aligned) << "trial " << trial;
    EXPECT_EQ(consumed_migrations + rest.migrations, batch.migrations);
    EXPECT_LT(tail.receipt_count(), up.size() + down.size())
        << "the tail must actually have consumed receipts";
  }
}

// A patch-up migration at the consumed seam boundary: its shift into the
// consumed group applies immediately, the mirror shift rides the carry
// into the next tail alignment.
TEST(IncrementalAlignment, SeamMigrationCarriesAcrossConsumption) {
  const net::PacketDigest b1 = 2000;
  const net::PacketDigest b2 = 3000;
  const net::PacketDigest wanderer = 4242;

  std::vector<AggregateReceipt> up = {agg(1000, 100, 0, 9),
                                      agg(b1, 100, 10, 19),
                                      agg(b2, 100, 20, 29)};
  std::vector<AggregateReceipt> down = up;
  // The upstream HOP saw `wanderer` after the b2 cut; the downstream HOP
  // counted it before — §6.3 migrates it down[1] -> down[2].
  up[1].trans.after = {b2, wanderer};
  down[1].trans.after = {b2};
  down[1].trans.before = {wanderer};

  const AlignmentResult batch = align_aggregates(up, down, true);
  ASSERT_EQ(batch.migrations, 1u);
  ASSERT_EQ(batch.aligned.size(), 3u);
  ASSERT_EQ(batch.aligned[1].down_count, 99u);
  ASSERT_EQ(batch.aligned[2].down_count, 101u);

  // Margin 0 forces consumption right through the migrated boundary.
  AggregateTail tail;
  tail.up = up;
  tail.down = down;
  std::vector<AlignedAggregate> consumed;
  const TailConsumeStats stats = consume_aligned_prefix(tail, 0, consumed);
  ASSERT_EQ(stats.groups, 2u);
  EXPECT_EQ(stats.migrations, 1u);
  EXPECT_EQ(tail.down_carry, 1) << "the +1 into down[2] rides the carry";

  const AlignmentResult rest = align_tail(tail);
  std::vector<AlignedAggregate> all = consumed;
  all.insert(all.end(), rest.aligned.begin(), rest.aligned.end());
  EXPECT_EQ(all, batch.aligned);
  EXPECT_EQ(stats.migrations + rest.migrations, batch.migrations);
}

// --- the round-fed verifier ----------------------------------------------

/// Crafted three-HOP rounds (A,B alpha; C beta) with shipping lag: HOP 2
/// ships each sampling round one reporting round late, HOP 3 two late.
/// Round `bad_delay_round` adds 10 ms to HOP 3's times (link delay-bound
/// violations); round `bad_count_round` under-counts HOP 3's aggregate
/// (count-mismatch violation).
struct CraftedRun {
  static constexpr std::size_t kRounds = 8;
  PathLayout layout{.hops = {1, 2, 3},
                    .domain_of = {"alpha", "alpha", "beta"}};

  [[nodiscard]] PathDrain round_data(std::size_t hop_pos,
                                     std::size_t r) const {
    const std::int64_t base_ns =
        net::milliseconds(static_cast<std::int64_t>(r)).nanoseconds();
    std::int64_t shift_ns =
        net::microseconds(200 * static_cast<std::int64_t>(hop_pos))
            .nanoseconds();
    if (hop_pos == 2 && r == 3) {
      shift_ns += net::milliseconds(10).nanoseconds();  // past MaxDiff
    }
    PathDrain d;
    d.samples.path = test_path();
    for (std::uint32_t k = 0; k < 5; ++k) {
      d.samples.samples.push_back(SampleRecord{
          .pkt_id = static_cast<net::PacketDigest>(100 * r + k + 1),
          .time = net::Timestamp{base_ns + shift_ns + k * 10'000},
          .is_marker = false});
    }
    d.samples.samples.push_back(SampleRecord{
        .pkt_id = static_cast<net::PacketDigest>(90'000 + r),
        .time = net::Timestamp{base_ns + shift_ns + 500'000},
        .is_marker = true});

    std::uint32_t count = 1000;
    if (hop_pos == 2 && r == 5) count = 997;  // link count mismatch
    d.aggregates.push_back(
        agg(static_cast<net::PacketDigest>(5000 + r), count,
            static_cast<std::int64_t>(r), static_cast<std::int64_t>(r)));
    return d;
  }

  /// The drain HOP `hop_pos` ships at reporting round `t` (lag applied),
  /// or an empty drain when it has nothing yet.
  [[nodiscard]] PathDrain shipped(std::size_t hop_pos, std::size_t t) const {
    if (t >= hop_pos && t - hop_pos < kRounds) {
      return round_data(hop_pos, t - hop_pos);
    }
    PathDrain empty;
    empty.samples.path = test_path();
    return empty;
  }
};

TEST(IncrementalVerifier, MatchesMaterializedVerifierWithShippingLag) {
  const CraftedRun run;
  IncrementalPathVerifier incremental(IncrementalPathVerifier::Config{
      .layout = run.layout, .retain_rounds = 4, .margin_boundaries = 2});
  PathVerifier reference;

  std::size_t max_tail = 0;
  for (std::size_t t = 0; t < CraftedRun::kRounds + 2; ++t) {
    for (std::size_t pos = 0; pos < 3; ++pos) {
      PathDrain d = run.shipped(pos, t);
      reference.add_round(run.layout.hops[pos], d);
      incremental.add_round(run.layout.hops[pos], std::move(d));
    }
    // analyze() is a non-destructive view — callable every round.
    (void)incremental.analyze();
    max_tail = std::max(max_tail,
                        incremental.resident_stats().tail_aggregate_receipts);
  }

  const PathAnalysis batch = reference.analyze(run.layout);
  const PathAnalysis live = incremental.analyze();
  ASSERT_EQ(live.domains.size(), 1u);
  ASSERT_EQ(live.links.size(), 1u);

  // The crafted defects must actually show up...
  EXPECT_GT(live.domains[0].delay.common_samples, 0u);
  EXPECT_FALSE(live.links[0].report.samples.consistent())
      << "round 3's 10 ms shift must violate the delay bound";
  EXPECT_FALSE(live.links[0].report.aggregates.consistent())
      << "round 5's under-count must violate count consistency";
  EXPECT_TRUE(live.domains[0].loss.offered > 0);

  // ...and be identical to the materialized analysis, field for field.
  EXPECT_EQ(live, batch);

  // Bounded retention: the alignment tails never held everything.
  EXPECT_LT(max_tail, 2 * 2 * CraftedRun::kRounds)
      << "tails must stay a window, not history";
  EXPECT_EQ(incremental.resident_stats().expired_unmatched, 0u);
}

TEST(IncrementalVerifier, MissingHopYieldsEmptyFindings) {
  const CraftedRun run;
  IncrementalPathVerifier incremental(
      IncrementalPathVerifier::Config{.layout = run.layout});
  PathVerifier reference;
  for (std::size_t r = 0; r < 3; ++r) {
    PathDrain d = run.round_data(0, r);
    reference.add_round(1, d);
    incremental.add_round(1, std::move(d));
  }
  // HOPs 2 and 3 never reported: both verifiers emit empty findings.
  EXPECT_EQ(incremental.analyze(), reference.analyze(run.layout));
}

TEST(IncrementalVerifier, ValidatesConfigAndHops) {
  PathLayout bad{.hops = {1, 2}, .domain_of = {"a"}};
  EXPECT_THROW(
      IncrementalPathVerifier(IncrementalPathVerifier::Config{.layout = bad}),
      std::invalid_argument);

  PathLayout ok{.hops = {1, 2}, .domain_of = {"a", "a"}};
  EXPECT_THROW(IncrementalPathVerifier(IncrementalPathVerifier::Config{
                   .layout = ok, .retain_rounds = 0}),
               std::invalid_argument);

  IncrementalPathVerifier v(
      IncrementalPathVerifier::Config{.layout = ok});
  EXPECT_THROW(v.add_round(42, PathDrain{}), std::invalid_argument);
  EXPECT_EQ(v.rounds_ingested(1), 0u);
  v.add_round(1, PathDrain{});
  EXPECT_EQ(v.rounds_ingested(1), 1u);
}

}  // namespace
}  // namespace vpm::core
