// Tests for the synthetic-trace substrate (the CAIDA stand-in): rates,
// size mix, flow structure, Zipf popularity, digest entropy.
#include <gtest/gtest.h>

#include <random>
#include <unordered_set>

#include "net/digest.hpp"
#include "trace/flow_generator.hpp"
#include "trace/synthetic_trace.hpp"
#include "trace/trace_stats.hpp"

namespace vpm::trace {
namespace {

TEST(ZipfSampler, Validation) {
  EXPECT_THROW(ZipfSampler(0, 1.0), std::invalid_argument);
  EXPECT_THROW(ZipfSampler(5, -1.0), std::invalid_argument);
}

TEST(ZipfSampler, ZeroExponentIsUniform) {
  ZipfSampler z(4, 0.0);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(z.probability(i), 0.25, 1e-12);
  }
}

TEST(ZipfSampler, SkewFavoursLowIndices) {
  ZipfSampler z(100, 1.2);
  EXPECT_GT(z.probability(0), 10 * z.probability(50));
  std::mt19937_64 rng(1);
  std::size_t first_hits = 0;
  constexpr std::size_t kN = 100'000;
  for (std::size_t i = 0; i < kN; ++i) {
    if (z.sample(rng) == 0) ++first_hits;
  }
  EXPECT_NEAR(static_cast<double>(first_hits) / kN, z.probability(0), 0.01);
}

TEST(FlowGenerator, HostsStayInsidePrefixes) {
  const net::PrefixPair pair = default_prefix_pair();
  FlowGenerator gen(pair, 64, 1.0, 7);
  for (int i = 0; i < 1000; ++i) {
    const net::PacketHeader h = gen.next_header(400);
    EXPECT_TRUE(pair.source.contains(h.src));
    EXPECT_TRUE(pair.destination.contains(h.dst));
    EXPECT_EQ(h.total_length, 400);
  }
}

TEST(FlowGenerator, IpIdAdvancesPerFlow) {
  // With a single flow, consecutive packets must have consecutive IP-IDs.
  FlowGenerator gen(default_prefix_pair(), 1, 1.0, 7);
  const auto h1 = gen.next_header(100);
  const auto h2 = gen.next_header(100);
  EXPECT_EQ(static_cast<std::uint16_t>(h1.ip_id + 1), h2.ip_id);
}

TEST(FlowGenerator, RejectsZeroFlows) {
  EXPECT_THROW(FlowGenerator(default_prefix_pair(), 0, 1.0, 7),
               std::invalid_argument);
}

TEST(SyntheticTrace, RateAndDurationRoughlyHonoured) {
  TraceConfig cfg;
  cfg.prefixes = default_prefix_pair();
  cfg.packets_per_second = 50'000;
  cfg.duration = net::seconds(2);
  cfg.seed = 3;
  const auto trace = generate_trace(cfg);
  const net::DigestEngine engine;
  const TraceSummary s = summarize(trace, engine);
  EXPECT_NEAR(s.packets_per_second, 50'000, 5'000);
  EXPECT_NEAR(s.duration_s, 2.0, 0.1);
  // Tri-modal default mix has mean ~440 B, near the paper's 400 B figure.
  EXPECT_NEAR(s.mean_size_bytes, 440.0, 40.0);
}

TEST(SyntheticTrace, TimestampsMonotonicallyIncrease) {
  const auto trace = generate_trace([] {
    TraceConfig cfg;
    cfg.prefixes = default_prefix_pair();
    cfg.packets_per_second = 10'000;
    cfg.duration = net::seconds(1);
    return cfg;
  }());
  for (std::size_t i = 1; i < trace.size(); ++i) {
    EXPECT_GE(trace[i].origin_time, trace[i - 1].origin_time);
    EXPECT_EQ(trace[i].sequence, trace[i - 1].sequence + 1);
  }
}

TEST(SyntheticTrace, DigestsAreNearlyCollisionFree) {
  TraceConfig cfg;
  cfg.prefixes = default_prefix_pair();
  cfg.packets_per_second = 50'000;
  cfg.duration = net::seconds(2);
  const auto trace = generate_trace(cfg);
  const net::DigestEngine engine;
  const TraceSummary s = summarize(trace, engine);
  // 100k packets over a 32-bit digest: expect ~1 collision per 2^32/1e10.
  EXPECT_GT(s.digest_distinct_fraction, 0.999);
}

TEST(SyntheticTrace, DigestsAreUniform) {
  // The property the paper relies on for the Bob hash [19]: digests of
  // real-looking traffic spread uniformly, so thresholds hit their rates.
  TraceConfig cfg;
  cfg.prefixes = default_prefix_pair();
  cfg.packets_per_second = 50'000;
  cfg.duration = net::seconds(2);
  const auto trace = generate_trace(cfg);
  const net::DigestEngine engine;
  const double chi2 = digest_chi_squared(trace, engine, 64);
  // chi2(63) has mean 63, stddev ~11.2; 150 is > 7 sigma.
  EXPECT_LT(chi2, 150.0);
}

TEST(SyntheticTrace, DeterministicPerSeed) {
  TraceConfig cfg;
  cfg.prefixes = default_prefix_pair();
  cfg.packets_per_second = 10'000;
  cfg.duration = net::seconds(1);
  cfg.seed = 9;
  const auto a = generate_trace(cfg);
  const auto b = generate_trace(cfg);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].header.src, b[i].header.src);
    EXPECT_EQ(a[i].payload_prefix, b[i].payload_prefix);
    EXPECT_EQ(a[i].origin_time, b[i].origin_time);
  }
  cfg.seed = 10;
  const auto c = generate_trace(cfg);
  EXPECT_NE(a.front().payload_prefix, c.front().payload_prefix);
}

TEST(SyntheticTrace, ValidatesConfig) {
  TraceConfig cfg;
  cfg.prefixes = default_prefix_pair();
  cfg.packets_per_second = 0;
  EXPECT_THROW(generate_trace(cfg), std::invalid_argument);
  cfg.packets_per_second = 1000;
  cfg.duration = net::Duration{0};
  EXPECT_THROW(generate_trace(cfg), std::invalid_argument);
  cfg.duration = net::seconds(1);
  cfg.sizes.clear();
  EXPECT_THROW(generate_trace(cfg), std::invalid_argument);
  cfg = TraceConfig{};
  cfg.prefixes = default_prefix_pair();
  cfg.burst_multiplier = 6.0;
  cfg.burst_fraction = 0.2;  // 6 * 0.2 >= 1: off-state rate would be negative
  EXPECT_THROW(generate_trace(cfg), std::invalid_argument);
}

TEST(SyntheticTrace, BurstinessRaisesShortScaleVariance) {
  TraceConfig smooth;
  smooth.prefixes = default_prefix_pair();
  smooth.packets_per_second = 20'000;
  smooth.duration = net::seconds(5);
  smooth.burst_multiplier = 1.0;
  smooth.burst_fraction = 0.5;
  TraceConfig bursty = smooth;
  bursty.burst_multiplier = 3.0;
  bursty.burst_fraction = 0.2;

  auto counts_per_10ms = [](const std::vector<net::Packet>& t) {
    std::vector<double> counts;
    std::size_t i = 0;
    for (double start = 0.0; start < 4.9; start += 0.01) {
      std::size_t c = 0;
      while (i < t.size() && t[i].origin_time.seconds() < start + 0.01) {
        ++c;
        ++i;
      }
      counts.push_back(static_cast<double>(c));
    }
    return counts;
  };
  auto variance = [](const std::vector<double>& xs) {
    double mean = 0;
    for (double x : xs) mean += x;
    mean /= static_cast<double>(xs.size());
    double v = 0;
    for (double x : xs) v += (x - mean) * (x - mean);
    return v / static_cast<double>(xs.size());
  };
  const double v_smooth = variance(counts_per_10ms(generate_trace(smooth)));
  const double v_bursty = variance(counts_per_10ms(generate_trace(bursty)));
  EXPECT_GT(v_bursty, 2.0 * v_smooth);
}

TEST(MultiPathTrace, CoversRequestedPaths) {
  MultiPathConfig cfg;
  cfg.path_count = 50;
  cfg.total_packets_per_second = 100'000;
  cfg.duration = net::seconds(1);
  cfg.zipf_s = 0.8;
  const MultiPathTrace t = generate_multi_path(cfg);
  EXPECT_EQ(t.paths.size(), 50u);
  EXPECT_EQ(t.packets.size(), t.path_of.size());
  EXPECT_NEAR(static_cast<double>(t.packets.size()), 100'000, 10'000);

  std::unordered_set<std::uint32_t> seen(t.path_of.begin(), t.path_of.end());
  EXPECT_GT(seen.size(), 40u);  // nearly all paths active

  // Every packet's header must match its claimed path's prefixes.
  for (std::size_t i = 0; i < t.packets.size(); i += 97) {
    const net::PrefixPair& pair = t.paths[t.path_of[i]];
    EXPECT_TRUE(pair.source.contains(t.packets[i].header.src));
    EXPECT_TRUE(pair.destination.contains(t.packets[i].header.dst));
  }
}

TEST(MultiPathTrace, PathPrefixesAreDistinct) {
  MultiPathConfig cfg;
  cfg.path_count = 300;
  cfg.total_packets_per_second = 1000;
  cfg.duration = net::milliseconds(100);
  const MultiPathTrace t = generate_multi_path(cfg);
  std::unordered_set<std::uint64_t> keys;
  for (const net::PrefixPair& p : t.paths) {
    keys.insert((static_cast<std::uint64_t>(p.source.network().value()) << 32) |
                p.destination.network().value());
  }
  EXPECT_EQ(keys.size(), t.paths.size());
}

TEST(MultiPathTrace, Validation) {
  MultiPathConfig cfg;
  cfg.path_count = 0;
  EXPECT_THROW(generate_multi_path(cfg), std::invalid_argument);
  cfg.path_count = 1;
  cfg.total_packets_per_second = -1;
  EXPECT_THROW(generate_multi_path(cfg), std::invalid_argument);
}

}  // namespace
}  // namespace vpm::trace
