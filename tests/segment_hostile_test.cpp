// Hostile-input hardening for the disk segment format (ISSUE 9): segment
// files come back from a crash — or from an attacker with filesystem
// access — so the recovery parser must treat them as untrusted bytes,
// exactly like the receipt wire decoders treat theirs.  This suite
// truncates a valid segment image at EVERY byte offset, flips every byte,
// plants absurd length fields, and corrupts the cursor log — proving
// strict scans raise typed net::WireError (transient for clean
// truncation, fatal for structural damage), recovery scans truncate at
// the exact record boundary, and nothing ever over-reads (the ASan+UBSan
// CI job runs this suite, mirroring receipt_wire_hostile_test).
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <span>
#include <vector>

#include "dissem/envelope.hpp"
#include "dissem/receipt_store.hpp"
#include "dissem/segment_store.hpp"
#include "helpers.hpp"
#include "net/wire.hpp"

namespace vpm {
namespace {

constexpr dissem::DomainId kProducer = 7;
constexpr dissem::DomainKey kKey = 42;

struct Image {
  std::vector<std::byte> bytes;
  std::vector<dissem::Envelope> envelopes;
  /// Valid truncation points: the header end and every record end.
  std::vector<std::size_t> boundaries;
};

Image make_image(std::size_t records = 5) {
  net::ByteWriter w;
  dissem::write_segment_header(kProducer, w);
  Image img;
  img.boundaries.push_back(dissem::kSegmentHeaderBytes);
  const std::size_t payload_sizes[] = {1, 17, 64, 3, 129, 40, 8};
  for (std::size_t i = 0; i < records; ++i) {
    const std::size_t n = payload_sizes[i % std::size(payload_sizes)];
    std::vector<std::byte> payload(n, std::byte{static_cast<unsigned char>(
                                          0x30 + i)});
    dissem::Envelope e = dissem::seal(kProducer, i + 1, payload, kKey);
    dissem::append_segment_record(e, w);
    img.envelopes.push_back(std::move(e));
    img.boundaries.push_back(w.size());
  }
  img.bytes = std::move(w).take();
  return img;
}

/// Largest valid boundary <= len.
std::size_t boundary_before(const Image& img, std::size_t len) {
  std::size_t best = img.boundaries.front();
  for (const std::size_t b : img.boundaries) {
    if (b <= len) best = b;
  }
  return best;
}

bool is_boundary(const Image& img, std::size_t len) {
  for (const std::size_t b : img.boundaries) {
    if (b == len) return true;
  }
  return false;
}

std::size_t records_through(const Image& img, std::size_t valid_bytes) {
  std::size_t n = 0;
  for (std::size_t i = 1; i < img.boundaries.size(); ++i) {
    if (img.boundaries[i] <= valid_bytes) n = i;
  }
  return n;
}

// --- the clean image ------------------------------------------------------

TEST(SegmentHostile, FullImageParsesExactly) {
  const Image img = make_image();
  for (const bool recover : {false, true}) {
    const dissem::SegmentScan scan = dissem::scan_segment(img.bytes, recover);
    EXPECT_EQ(scan.producer, kProducer);
    EXPECT_FALSE(scan.torn);
    EXPECT_EQ(scan.valid_bytes, img.bytes.size());
    ASSERT_EQ(scan.records.size(), img.envelopes.size());
    for (std::size_t i = 0; i < scan.records.size(); ++i) {
      const dissem::SegmentRecordRef& r = scan.records[i];
      EXPECT_EQ(r.sequence, img.envelopes[i].sequence);
      ASSERT_LE(r.payload_offset + r.payload_size, img.bytes.size());
      const std::span<const std::byte> payload(
          img.bytes.data() + r.payload_offset, r.payload_size);
      EXPECT_TRUE(std::equal(payload.begin(), payload.end(),
                             img.envelopes[i].payload.begin(),
                             img.envelopes[i].payload.end()));
      EXPECT_EQ(r.record_end, img.boundaries[i + 1]);
    }
  }
}

TEST(SegmentHostile, HeaderOnlyImageIsAValidEmptySegment) {
  net::ByteWriter w;
  dissem::write_segment_header(kProducer, w);
  const std::vector<std::byte> bytes = std::move(w).take();
  for (const bool recover : {false, true}) {
    const dissem::SegmentScan scan = dissem::scan_segment(bytes, recover);
    EXPECT_TRUE(scan.records.empty());
    EXPECT_FALSE(scan.torn);
    EXPECT_EQ(scan.valid_bytes, bytes.size());
  }
}

// --- truncation at every byte offset --------------------------------------

TEST(SegmentHostile, StrictTruncationAtEveryOffsetThrowsTransient) {
  const Image img = make_image();
  for (std::size_t len = 0; len < img.bytes.size(); ++len) {
    const auto prefix = std::span<const std::byte>(img.bytes).first(len);
    if (is_boundary(img, len)) {
      // A prefix ending exactly at a record boundary IS a valid (shorter)
      // segment file — strict mode accepts it whole.
      const dissem::SegmentScan scan = dissem::scan_segment(prefix, false);
      EXPECT_EQ(scan.valid_bytes, len) << "boundary length " << len;
      EXPECT_EQ(scan.records.size(), records_through(img, len));
      continue;
    }
    try {
      (void)dissem::scan_segment(prefix, false);
      FAIL() << "prefix length " << len << " must throw";
    } catch (const net::WireError& e) {
      // Clean truncation is retryable damage, never structural.
      EXPECT_TRUE(e.transient()) << "prefix length " << len;
    }
  }
}

TEST(SegmentHostile, RecoveryTruncationAtEveryOffsetKeepsTheExactPrefix) {
  const Image img = make_image();
  for (std::size_t len = dissem::kSegmentHeaderBytes; len < img.bytes.size();
       ++len) {
    const auto prefix = std::span<const std::byte>(img.bytes).first(len);
    const dissem::SegmentScan scan = dissem::scan_segment(prefix, true);
    const std::size_t keep = boundary_before(img, len);
    EXPECT_EQ(scan.valid_bytes, keep) << "prefix length " << len;
    EXPECT_EQ(scan.torn, keep != len) << "prefix length " << len;
    EXPECT_EQ(scan.records.size(), records_through(img, keep))
        << "prefix length " << len;
  }
  // Below the header both modes throw: the file is not a segment at all.
  for (std::size_t len = 0; len < dissem::kSegmentHeaderBytes; ++len) {
    const auto prefix = std::span<const std::byte>(img.bytes).first(len);
    EXPECT_THROW((void)dissem::scan_segment(prefix, true), net::WireError)
        << "prefix length " << len;
  }
}

// --- single-byte corruption -----------------------------------------------

TEST(SegmentHostile, SingleByteCorruptionNeverOverReads) {
  const Image img = make_image();
  for (std::size_t i = 0; i < img.bytes.size(); ++i) {
    std::vector<std::byte> mutated = img.bytes;
    mutated[i] ^= std::byte{0xFF};
    // Strict: throw or parse — never crash or read past the buffer.
    try {
      (void)dissem::scan_segment(mutated, false);
    } catch (const net::WireError&) {
    }
    // Recovery: magic/version damage throws (not a segment file); a
    // flipped producer field or record damage stops the scan instead.
    if (i < 5) {  // magic u32 + version u8
      EXPECT_THROW((void)dissem::scan_segment(mutated, true), net::WireError)
          << "header byte " << i;
    } else if (i < dissem::kSegmentHeaderBytes) {
      // Producer field: every record now "belongs to a foreign producer".
      const dissem::SegmentScan scan = dissem::scan_segment(mutated, true);
      EXPECT_TRUE(scan.torn) << "producer byte " << i;
      EXPECT_TRUE(scan.records.empty());
    } else {
      const dissem::SegmentScan scan = dissem::scan_segment(mutated, true);
      EXPECT_LE(scan.valid_bytes, mutated.size()) << "byte " << i;
      EXPECT_GE(scan.valid_bytes, dissem::kSegmentHeaderBytes);
    }
  }
}

TEST(SegmentHostile, ChecksumFlipIsFatalStrictAndTruncatesRecovery) {
  const Image img = make_image();
  // Corrupt the CRC of the middle record (its last 4 bytes).
  const std::size_t victim = img.envelopes.size() / 2;
  const std::size_t crc_at = img.boundaries[victim + 1] - 4;
  for (std::size_t i = crc_at; i < crc_at + 4; ++i) {
    std::vector<std::byte> mutated = img.bytes;
    mutated[i] ^= std::byte{0x01};
    try {
      (void)dissem::scan_segment(mutated, false);
      FAIL() << "corrupt CRC byte " << i << " must throw";
    } catch (const net::WireError& e) {
      EXPECT_FALSE(e.transient()) << "CRC damage is structural";
    }
    const dissem::SegmentScan scan = dissem::scan_segment(mutated, true);
    EXPECT_TRUE(scan.torn);
    EXPECT_EQ(scan.valid_bytes, img.boundaries[victim]);
    EXPECT_EQ(scan.records.size(), victim);
  }
}

TEST(SegmentHostile, PayloadFlipIsCaughtByTheChecksum) {
  const Image img = make_image();
  // Flip the first record's payload byte (len u32 + 17-byte envelope
  // prefix puts it right here): CRC mismatch, fatal.
  const std::size_t at = img.boundaries[0] + 4 + 17;
  std::vector<std::byte> mutated = img.bytes;
  mutated[at] ^= std::byte{0x80};
  try {
    (void)dissem::scan_segment(mutated, false);
    FAIL() << "payload flip must throw";
  } catch (const net::WireError& e) {
    EXPECT_FALSE(e.transient());
  }
  const dissem::SegmentScan scan = dissem::scan_segment(mutated, true);
  EXPECT_TRUE(scan.torn);
  EXPECT_EQ(scan.valid_bytes, img.boundaries.front());
  EXPECT_TRUE(scan.records.empty());
}

// --- absurd lengths -------------------------------------------------------

TEST(SegmentHostile, AbsurdLengthFieldsAreRejectedBeforeAnyRead) {
  for (const std::uint32_t len :
       {std::uint32_t{0}, dissem::kMaxSegmentRecordBytes + 1, 0xFFFFFFFFu}) {
    net::ByteWriter w;
    dissem::write_segment_header(kProducer, w);
    w.u32(len);
    // A few garbage bytes — far fewer than the claimed length.  The scan
    // must bound-check the length BEFORE allocating or reading.
    w.u32(0xDEADBEEF);
    const std::vector<std::byte> bytes = std::move(w).take();
    try {
      (void)dissem::scan_segment(bytes, false);
      FAIL() << "length " << len << " must throw";
    } catch (const net::WireError& e) {
      EXPECT_FALSE(e.transient()) << "absurd length is structural damage";
    }
    const dissem::SegmentScan scan = dissem::scan_segment(bytes, true);
    EXPECT_TRUE(scan.torn);
    EXPECT_EQ(scan.valid_bytes, dissem::kSegmentHeaderBytes);
    EXPECT_TRUE(scan.records.empty());
  }
}

TEST(SegmentHostile, OversizedButLegalLengthIsTornNotFatal) {
  // A length within bounds but past the remaining bytes is a torn write
  // (the crash interrupted the append) — transient in strict mode.
  const Image img = make_image(2);
  std::vector<std::byte> mutated = img.bytes;
  const std::size_t len_at = img.boundaries[0];
  const std::uint32_t claim = dissem::kMaxSegmentRecordBytes - 1;
  mutated[len_at + 0] = std::byte{static_cast<unsigned char>(claim)};
  mutated[len_at + 1] = std::byte{static_cast<unsigned char>(claim >> 8)};
  mutated[len_at + 2] = std::byte{static_cast<unsigned char>(claim >> 16)};
  mutated[len_at + 3] = std::byte{static_cast<unsigned char>(claim >> 24)};
  try {
    (void)dissem::scan_segment(mutated, false);
    FAIL() << "torn body must throw";
  } catch (const net::WireError& e) {
    EXPECT_TRUE(e.transient());
  }
  const dissem::SegmentScan scan = dissem::scan_segment(mutated, true);
  EXPECT_TRUE(scan.torn);
  EXPECT_EQ(scan.valid_bytes, dissem::kSegmentHeaderBytes);
}

// --- header damage --------------------------------------------------------

TEST(SegmentHostile, MagicAndVersionDamageIsFatalInBothModes) {
  const Image img = make_image(1);
  for (std::size_t i = 0; i < 5; ++i) {  // magic u32 + version u8
    std::vector<std::byte> mutated = img.bytes;
    mutated[i] ^= std::byte{0xFF};
    for (const bool recover : {false, true}) {
      try {
        (void)dissem::scan_segment(mutated, recover);
        FAIL() << "header byte " << i << " recover=" << recover;
      } catch (const net::WireError& e) {
        EXPECT_FALSE(e.transient()) << "a wrong magic is not retryable";
      }
    }
  }
}

TEST(SegmentHostile, RecordFromAForeignProducerIsStructuralDamage) {
  // Valid CRC, valid envelope — but sealed by a different producer than
  // the file header claims.  That is filesystem-level tampering.
  net::ByteWriter w;
  dissem::write_segment_header(kProducer, w);
  dissem::append_segment_record(
      dissem::seal(kProducer + 1, 1, std::vector<std::byte>(9, std::byte{1}),
                   kKey),
      w);
  const std::vector<std::byte> bytes = std::move(w).take();
  try {
    (void)dissem::scan_segment(bytes, false);
    FAIL() << "foreign producer must throw";
  } catch (const net::WireError& e) {
    EXPECT_FALSE(e.transient());
  }
  const dissem::SegmentScan scan = dissem::scan_segment(bytes, true);
  EXPECT_TRUE(scan.torn);
  EXPECT_TRUE(scan.records.empty());
}

// --- the cursor log -------------------------------------------------------

TEST(SegmentHostile, TornCursorLogRecoversTheDurablePrefix) {
  test::TempDir tmp("seg-hostile-cursor");
  dissem::SegmentStoreConfig cfg;
  cfg.directory = tmp.path();
  const auto seal_seq = [&](std::uint64_t seq) {
    return dissem::seal(kProducer, seq, std::vector<std::byte>(21, std::byte{2}),
                        kKey);
  };
  {
    dissem::ReceiptStore store(dissem::make_segment_storage(cfg));
    store.register_producer(kProducer, kKey);
    store.register_consumer("c");
    for (std::uint64_t s = 1; s <= 8; ++s) {
      ASSERT_EQ(store.ingest(seal_seq(s)), dissem::IngestResult::kAccepted);
    }
    ASSERT_EQ(store.ack("c", kProducer, 5), dissem::AckResult::kAcked);
  }
  // Tear bytes off the cursor log: the trailing ack record is damaged and
  // must be dropped; the registration prefix survives.
  const std::filesystem::path log = tmp.path() / "cursors.log";
  ASSERT_TRUE(std::filesystem::exists(log));
  const std::uintmax_t size = std::filesystem::file_size(log);
  ASSERT_GT(size, 3u);
  std::filesystem::resize_file(log, size - 3);
  {
    dissem::ReceiptStore store(dissem::make_segment_storage(cfg));
    store.register_producer(kProducer, kKey);
    // The torn record was the ack: the consumer rewinds to an earlier
    // cursor (at-least-once is the durable guarantee) but stays
    // registered, and re-acking works.
    EXPECT_LT(store.cursor("c", kProducer), 5u);
    EXPECT_EQ(store.ack("c", kProducer, 5), dissem::AckResult::kAcked);
    EXPECT_EQ(store.cursor("c", kProducer), 5u);
  }
}

TEST(SegmentHostile, CorruptCursorLogMidRecordDropsTheDamagedSuffix) {
  test::TempDir tmp("seg-hostile-cursor2");
  dissem::SegmentStoreConfig cfg;
  cfg.directory = tmp.path();
  {
    dissem::ReceiptStore store(dissem::make_segment_storage(cfg));
    store.register_producer(kProducer, kKey);
    store.register_consumer("a");
    store.register_consumer("b");
  }
  const std::filesystem::path log = tmp.path() / "cursors.log";
  std::vector<char> raw;
  {
    std::ifstream in(log, std::ios::binary);
    raw.assign(std::istreambuf_iterator<char>(in), {});
  }
  ASSERT_GT(raw.size(), 8u);
  // Flip a byte inside the LAST record ("b"'s registration): its CRC
  // fails, recovery truncates, "a" survives.
  raw[raw.size() - 2] ^= 0x55;
  {
    std::ofstream out(log, std::ios::binary | std::ios::trunc);
    out.write(raw.data(), static_cast<std::streamsize>(raw.size()));
  }
  {
    dissem::ReceiptStore store(dissem::make_segment_storage(cfg));
    store.register_producer(kProducer, kKey);
    EXPECT_NO_THROW((void)store.cursor("a", kProducer));
    EXPECT_THROW((void)store.cursor("b", kProducer), std::invalid_argument);
  }
}

}  // namespace
}  // namespace vpm
