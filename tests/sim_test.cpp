// Tests for the discrete-event simulator substrate: event queue, bottleneck
// queue, background flows, congestion scenarios, and HOP-path propagation.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "loss/bernoulli.hpp"
#include "sim/bottleneck_link.hpp"
#include "sim/congestion.hpp"
#include "sim/event_queue.hpp"
#include "sim/path_run.hpp"
#include "sim/tcp_flow.hpp"
#include "sim/topology.hpp"
#include "sim/udp_flow.hpp"
#include "trace/synthetic_trace.hpp"

namespace vpm::sim {
namespace {

using net::Duration;
using net::Timestamp;
using net::milliseconds;
using net::microseconds;
using net::seconds;

// -------------------------------------------------------------- EventQueue

TEST(EventQueue, ExecutesInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(Timestamp{30}, [&] { order.push_back(3); });
  q.schedule(Timestamp{10}, [&] { order.push_back(1); });
  q.schedule(Timestamp{20}, [&] { order.push_back(2); });
  q.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, FifoTieBreakAtSameInstant) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(Timestamp{5}, [&] { order.push_back(1); });
  q.schedule(Timestamp{5}, [&] { order.push_back(2); });
  q.schedule(Timestamp{5}, [&] { order.push_back(3); });
  q.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, HandlersMayScheduleMore) {
  EventQueue q;
  int fired = 0;
  q.schedule(Timestamp{1}, [&] {
    ++fired;
    q.schedule_in(Duration{1}, [&] { ++fired; });
  });
  q.run();
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(q.executed(), 2u);
}

TEST(EventQueue, RunUntilStopsAtHorizon) {
  EventQueue q;
  int fired = 0;
  q.schedule(Timestamp{10}, [&] { ++fired; });
  q.schedule(Timestamp{20}, [&] { ++fired; });
  q.run_until(Timestamp{15});
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(q.now(), Timestamp{15});
  EXPECT_EQ(q.pending(), 1u);
}

TEST(EventQueue, RejectsPastScheduling) {
  EventQueue q;
  q.schedule(Timestamp{10}, [] {});
  q.run();
  EXPECT_THROW(q.schedule(Timestamp{5}, [] {}), std::invalid_argument);
}

// --------------------------------------------------------- BottleneckLink

TEST(BottleneckLink, SinglePacketSeesTransmissionPlusPropagation) {
  EventQueue q;
  // 1 Mbps, 1 ms propagation: a 1250-byte packet takes 10 ms to transmit.
  BottleneckLink link(q, 1e6, 100'000, milliseconds(1));
  Timestamp delivered;
  ASSERT_TRUE(link.offer(1250, [&](Timestamp t) { delivered = t; }));
  q.run();
  EXPECT_EQ(delivered, Timestamp{0} + milliseconds(11));
}

TEST(BottleneckLink, BackToBackPacketsQueue) {
  EventQueue q;
  BottleneckLink link(q, 1e6, 100'000, Duration{0});
  std::vector<Timestamp> deliveries;
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(link.offer(1250, [&](Timestamp t) { deliveries.push_back(t); }));
  }
  q.run();
  ASSERT_EQ(deliveries.size(), 3u);
  EXPECT_EQ(deliveries[0], Timestamp{0} + milliseconds(10));
  EXPECT_EQ(deliveries[1], Timestamp{0} + milliseconds(20));
  EXPECT_EQ(deliveries[2], Timestamp{0} + milliseconds(30));
}

TEST(BottleneckLink, DropsWhenBufferFull) {
  EventQueue q;
  BottleneckLink link(q, 1e6, 2500, Duration{0});  // room for 2 packets
  EXPECT_TRUE(link.offer(1250, nullptr));
  EXPECT_TRUE(link.offer(1250, nullptr));
  EXPECT_FALSE(link.offer(1250, nullptr));
  EXPECT_EQ(link.drops(), 1u);
  q.run();
  // After drain there is room again.
  EXPECT_TRUE(link.offer(1250, nullptr));
}

TEST(BottleneckLink, BacklogDelayTracksQueue) {
  EventQueue q;
  BottleneckLink link(q, 1e6, 100'000, Duration{0});
  EXPECT_EQ(link.current_backlog_delay(), Duration{0});
  ASSERT_TRUE(link.offer(1250, nullptr));
  EXPECT_EQ(link.current_backlog_delay(), milliseconds(10));
}

TEST(BottleneckLink, Validation) {
  EventQueue q;
  EXPECT_THROW(BottleneckLink(q, 0.0, 100, Duration{0}),
               std::invalid_argument);
  EXPECT_THROW(BottleneckLink(q, 1e6, 0, Duration{0}), std::invalid_argument);
}

// ------------------------------------------------------------------ Flows

TEST(UdpOnOffFlow, SendsAtDutyCycledRate) {
  EventQueue q;
  BottleneckLink link(q, 1e9, 10'000'000, Duration{0});
  UdpOnOffFlow::Config cfg;
  cfg.peak_bps = 100e6;
  cfg.packet_bytes = 1250;
  cfg.mean_on = milliseconds(100);
  cfg.mean_off = milliseconds(100);
  cfg.seed = 5;
  UdpOnOffFlow flow(q, link, cfg);
  flow.start(Timestamp{0});
  q.run_until(Timestamp{0} + seconds(10));
  // 50% duty cycle at 10 kpps peak => ~5 kpps * 10 s = ~50k packets.
  EXPECT_NEAR(static_cast<double>(flow.sent()), 50'000.0, 15'000.0);
}

TEST(UdpOnOffFlow, Validation) {
  EventQueue q;
  BottleneckLink link(q, 1e9, 1'000'000, Duration{0});
  UdpOnOffFlow::Config cfg;
  cfg.peak_bps = 0;
  EXPECT_THROW(UdpOnOffFlow(q, link, cfg), std::invalid_argument);
}

TEST(TcpFlow, GrowsWindowAndSaturates) {
  EventQueue q;
  BottleneckLink link(q, 10e6, 60'000, Duration{0});
  TcpFlow::Config cfg;
  cfg.base_rtt = milliseconds(20);
  TcpFlow flow(q, link, cfg);
  flow.start(Timestamp{0});
  q.run_until(Timestamp{0} + seconds(20));
  // 10 Mbps / 1460 B ~= 856 pps; over 20 s the flow should move a
  // substantial fraction of link capacity.
  EXPECT_GT(flow.packets_acked(), 8'000u);
  EXPECT_GT(flow.packets_lost(), 0u);  // it must have probed past capacity
  EXPECT_GT(flow.cwnd(), 1.0);
}

TEST(TcpFlow, LossHalvesWindow) {
  EventQueue q;
  // Tiny buffer forces an early drop.
  BottleneckLink link(q, 1e6, 4'500, Duration{0});
  TcpFlow::Config cfg;
  cfg.base_rtt = milliseconds(10);
  cfg.initial_ssthresh = 1e9;  // stay in slow start until the first loss
  TcpFlow flow(q, link, cfg);
  flow.start(Timestamp{0});
  q.run_until(Timestamp{0} + seconds(5));
  EXPECT_GT(flow.packets_lost(), 0u);
  // After losses the window must sit near the pipe size, far below the
  // slow-start trajectory.
  EXPECT_LT(flow.cwnd(), 64.0);
}

// ------------------------------------------------------------- Congestion

std::vector<net::Packet> foreground(double pps, double secs,
                                    std::uint64_t seed) {
  trace::TraceConfig cfg;
  cfg.prefixes = trace::default_prefix_pair();
  cfg.packets_per_second = pps;
  cfg.duration = net::seconds_f(secs);
  cfg.seed = seed;
  // Keep the monitored sequence near-Poisson: congestion (and its delay
  // variance) comes from the background flows, per the §7.2 scenario.
  cfg.burst_multiplier = 1.2;
  cfg.burst_fraction = 0.2;
  return trace::generate_trace(cfg);
}

TEST(Congestion, NoBackgroundMeansNearConstantDelay) {
  const auto fg = foreground(20'000, 1.0, 11);
  CongestionConfig cfg;
  cfg.kind = CongestionKind::kNone;
  const CongestionResult r = simulate_congestion(cfg, fg);
  EXPECT_EQ(r.foreground_drops, 0u);
  // Transmission of <=1500 B at 500 Mbps is 24 us; plus 200 us propagation.
  EXPECT_LT(r.max_delay, milliseconds(1));
}

TEST(Congestion, BurstyUdpCreatesDelaySpikes) {
  const auto fg = foreground(50'000, 2.0, 13);
  CongestionConfig cfg;
  cfg.kind = CongestionKind::kBurstyUdp;
  // The 50 kpps test foreground is ~176 Mbps; push the UDP peak high
  // enough that ON periods oversubscribe the 500 Mbps bottleneck.
  cfg.udp.peak_bps = 450e6;
  cfg.seed = 2;
  const CongestionResult r = simulate_congestion(cfg, fg);
  EXPECT_EQ(r.foreground_drops, 0u) << "buffer must absorb the foreground";
  EXPECT_GT(r.max_delay, milliseconds(5)) << "no spikes -> no experiment";
  // Delay must be bimodal-ish: median far below max.
  auto delays = delay_series_ms(r);
  std::sort(delays.begin(), delays.end());
  const double median = delays[delays.size() / 2];
  EXPECT_GT(r.max_delay.milliseconds(), 4 * median);
}

TEST(Congestion, MixedKindAddsTcp) {
  const auto fg = foreground(20'000, 1.0, 17);
  CongestionConfig cfg;
  cfg.kind = CongestionKind::kMixed;
  const CongestionResult r = simulate_congestion(cfg, fg);
  EXPECT_GT(r.background_sent, 0u);
}

TEST(Congestion, RejectsEmptyForeground) {
  CongestionConfig cfg;
  const std::vector<net::Packet> none;
  EXPECT_THROW(simulate_congestion(cfg, none), std::invalid_argument);
}

// --------------------------------------------------------------- PathRun

PathEnvironment two_transit_env() {
  // S -> A -> B -> D: 4 domains, 6 HOPs.
  PathEnvironment env;
  env.domains.resize(4);
  env.links.resize(3);
  env.seed = 21;
  return env;
}

TEST(PathRun, AllHopsSeeAllPacketsWithoutLoss) {
  const auto fg = foreground(10'000, 0.5, 23);
  const PathEnvironment env = two_transit_env();
  const PathRunResult r = run_path(fg, env);
  ASSERT_EQ(r.hop_observations.size(), 6u);
  for (const ObsSeq& seq : r.hop_observations) {
    EXPECT_EQ(seq.size(), fg.size());
  }
  EXPECT_EQ(r.delivered, fg.size());
}

TEST(PathRun, LossInsideDomainHidesPacketsDownstreamOnly) {
  const auto fg = foreground(10'000, 0.5, 29);
  PathEnvironment env = two_transit_env();
  loss::BernoulliLoss loss(0.2, 31);
  env.domains[1].loss = &loss;  // first transit domain drops 20%
  const PathRunResult r = run_path(fg, env);
  // Ingress of domain 1 sees everything; egress sees ~80%.
  EXPECT_EQ(r.hop_observations[1].size(), fg.size());
  EXPECT_NEAR(static_cast<double>(r.hop_observations[2].size()),
              0.8 * static_cast<double>(fg.size()),
              0.03 * static_cast<double>(fg.size()));
  // Downstream HOPs see exactly what the egress saw.
  EXPECT_EQ(r.hop_observations[3].size(), r.hop_observations[2].size());
}

TEST(PathRun, LinkLossDropsBetweenDomains) {
  const auto fg = foreground(10'000, 0.5, 37);
  PathEnvironment env = two_transit_env();
  loss::BernoulliLoss loss(0.5, 41);
  env.links[1].loss = &loss;  // link between the two transit domains
  const PathRunResult r = run_path(fg, env);
  EXPECT_EQ(r.hop_observations[2].size(), fg.size());
  EXPECT_NEAR(static_cast<double>(r.hop_observations[3].size()),
              0.5 * static_cast<double>(fg.size()),
              0.05 * static_cast<double>(fg.size()));
}

TEST(PathRun, DomainDelayAppliedBetweenIngressAndEgress) {
  const auto fg = foreground(5'000, 0.5, 43);
  PathEnvironment env = two_transit_env();
  env.domains[1].delay_of = [](PacketIndex) { return milliseconds(7); };
  const PathRunResult r = run_path(fg, env);
  const auto delays = true_domain_delays_ms(r, env, 1);
  ASSERT_EQ(delays.size(), fg.size());
  for (const auto& [pkt, ms] : delays) {
    EXPECT_NEAR(ms, 7.0, 1e-6);
  }
}

TEST(PathRun, ClockOffsetsShiftObservationsNotTruth) {
  const auto fg = foreground(5'000, 0.2, 47);
  PathEnvironment env = two_transit_env();
  env.clock_offsets.assign(env.hop_count(), Duration{0});
  env.clock_offsets[1] = milliseconds(100);  // domain 1 ingress clock ahead
  const PathRunResult r = run_path(fg, env);
  // Raw observation at hop 1 is shifted...
  const Obs& o = r.hop_observations[1].front();
  const Obs& o0 = r.hop_observations[0].front();
  EXPECT_GT((o.when - o0.when), milliseconds(99));
  // ...but ground-truth delay (offset-corrected) is not.
  const auto delays = true_domain_delays_ms(r, env, 1);
  EXPECT_LT(delays.front().second, 50.0);
}

TEST(PathRun, JitterReordersNearbyPacketsOnly) {
  const auto fg = foreground(50'000, 0.5, 53);  // 20 us mean spacing
  PathEnvironment env = two_transit_env();
  env.domains[1].jitter = microseconds(200);
  const PathRunResult r = run_path(fg, env);
  const ObsSeq& egress = r.hop_observations[2];
  // Some inversions relative to trace order must exist...
  std::size_t inversions = 0;
  for (std::size_t i = 1; i < egress.size(); ++i) {
    if (egress[i].pkt < egress[i - 1].pkt) ++inversions;
  }
  EXPECT_GT(inversions, 0u);
  // ...but observation times are sorted (a HOP sees arrival order).
  for (std::size_t i = 1; i < egress.size(); ++i) {
    EXPECT_GE(egress[i].when, egress[i - 1].when);
  }
}

TEST(PathRun, TargetedDropRemovesExactlyMatchingPackets) {
  const auto fg = foreground(10'000, 0.2, 59);
  PathEnvironment env = two_transit_env();
  env.domains[1].targeted_drop = [](const net::Packet& p) {
    return p.sequence % 10 == 0;
  };
  const PathRunResult r = run_path(fg, env);
  for (const Obs& o : r.hop_observations[2]) {
    EXPECT_NE(fg[o.pkt].sequence % 10, 0u);
  }
}

TEST(PathRun, ValidatesEnvironment) {
  const auto fg = foreground(1'000, 0.1, 61);
  PathEnvironment env;
  env.domains.resize(1);
  EXPECT_THROW(run_path(fg, env), std::invalid_argument);
  env.domains.resize(3);
  env.links.resize(1);  // needs 2
  EXPECT_THROW(run_path(fg, env), std::invalid_argument);
  env.links.resize(2);
  env.clock_offsets.resize(3);  // needs 4 (= hop count) or 0
  EXPECT_THROW(run_path(fg, env), std::invalid_argument);
}

// --------------------------------------------------------------- Topology

TEST(Topology, FigureOneShape) {
  const PathTopology topo = PathTopology::figure_one();
  EXPECT_EQ(topo.domain_count(), 5u);
  EXPECT_EQ(topo.hop_count(), 8u);
  EXPECT_EQ(topo.domain_name(2), "X");
  // HOPs 4 and 5 (paper numbering) belong to X (domain index 2).
  EXPECT_EQ(topo.domain_of_hop(3), 2u);
  EXPECT_EQ(topo.domain_of_hop(4), 2u);
  EXPECT_TRUE(PathTopology::is_ingress(3));
  EXPECT_FALSE(PathTopology::is_ingress(4));
}

TEST(Topology, EnvironmentSkeletonIsConsistent) {
  const PathTopology topo = PathTopology::figure_one();
  const PathEnvironment env = topo.make_environment(77);
  EXPECT_EQ(env.domains.size(), 5u);
  EXPECT_EQ(env.links.size(), 4u);
  EXPECT_EQ(env.clock_offsets.size(), 8u);
  const auto fg = foreground(1'000, 0.1, 63);
  EXPECT_NO_THROW(run_path(fg, env));
}

TEST(Topology, Validation) {
  EXPECT_THROW(PathTopology({"only"}), std::invalid_argument);
  const PathTopology topo = PathTopology::figure_one();
  EXPECT_THROW((void)topo.hop_id(8), std::out_of_range);
  EXPECT_THROW((void)topo.domain_of_hop(8), std::out_of_range);
}

}  // namespace
}  // namespace vpm::sim
