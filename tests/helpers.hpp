// Shared test fixtures/helpers for the VPM test suite.
#ifndef VPM_TESTS_HELPERS_HPP
#define VPM_TESTS_HELPERS_HPP

#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <span>
#include <string>
#include <system_error>
#include <vector>

#include "core/hop_monitor.hpp"
#include "core/verifier.hpp"
#include "net/packet.hpp"
#include "sim/path_run.hpp"
#include "trace/synthetic_trace.hpp"

namespace vpm::test {

/// RAII scratch directory under the system temp root, removed (with
/// contents) on destruction even when the test fails.  All names share
/// the `vpm-test-` prefix so the CI tmpdir-hygiene step can assert that
/// no test leaves segment files behind.
class TempDir {
 public:
  explicit TempDir(const std::string& tag) {
    static std::atomic<unsigned> counter{0};
    path_ = std::filesystem::temp_directory_path() /
            ("vpm-test-" + tag + "-" + std::to_string(::getpid()) + "-" +
             std::to_string(counter.fetch_add(1)));
    std::filesystem::remove_all(path_);
    std::filesystem::create_directories(path_);
  }
  TempDir(const TempDir&) = delete;
  TempDir& operator=(const TempDir&) = delete;
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);  // best effort; never throws
  }
  [[nodiscard]] const std::filesystem::path& path() const noexcept {
    return path_;
  }

 private:
  std::filesystem::path path_;
};

/// A small, fast default trace (override fields as needed).
inline trace::TraceConfig small_trace_config(std::uint64_t seed = 42) {
  trace::TraceConfig cfg;
  cfg.prefixes = trace::default_prefix_pair();
  cfg.packets_per_second = 20'000.0;
  cfg.duration = net::seconds(2);
  cfg.flow_count = 200;
  cfg.seed = seed;
  return cfg;
}

/// Default protocol parameters used across tests: marker every ~500
/// packets so even short traces contain many rounds.
inline core::ProtocolParams test_protocol() {
  core::ProtocolParams p;
  p.marker_rate = 1.0 / 500.0;
  p.reorder_window_j = net::milliseconds(10);
  return p;
}

/// Feed a HOP's observation sequence into a monitor.
inline void feed(core::HopMonitor& monitor, std::span<const net::Packet> trace,
                 const sim::ObsSeq& observations) {
  for (const sim::Obs& o : observations) {
    monitor.observe(trace[o.pkt], o.when);
  }
}

/// Build a monitor for hop position `pos` with the given tuning.
inline core::HopMonitor make_monitor(const core::ProtocolParams& protocol,
                                     const core::HopTuning& tuning,
                                     net::HopId self, net::HopId prev,
                                     net::HopId next,
                                     net::Duration max_diff =
                                         net::milliseconds(5)) {
  core::HopMonitorConfig cfg;
  cfg.protocol = protocol;
  cfg.tuning = tuning;
  cfg.path = net::PathId{
      .header_spec_id = protocol.header_spec.id(),
      .prefixes = trace::default_prefix_pair(),
      .previous_hop = prev,
      .next_hop = next,
      .max_diff = max_diff,
  };
  return core::HopMonitor{cfg};
}

/// Run monitors over every HOP of a path and collect receipts into a
/// verifier.  HOP ids are hop position + 1 (paper numbering).
inline core::PathVerifier monitor_path(
    std::span<const net::Packet> trace, const sim::PathRunResult& run,
    const core::ProtocolParams& protocol,
    std::span<const core::HopTuning> tuning_per_hop,
    net::Duration max_diff = net::milliseconds(5)) {
  core::PathVerifier verifier;
  const std::size_t hops = run.hop_observations.size();
  for (std::size_t pos = 0; pos < hops; ++pos) {
    const net::HopId self = static_cast<net::HopId>(pos + 1);
    const net::HopId prev = pos == 0 ? net::kNoHop
                                     : static_cast<net::HopId>(pos);
    const net::HopId next = pos + 1 == hops
                                ? net::kNoHop
                                : static_cast<net::HopId>(pos + 2);
    core::HopMonitor monitor = make_monitor(
        protocol, tuning_per_hop[pos % tuning_per_hop.size()], self, prev,
        next, max_diff);
    feed(monitor, trace, run.hop_observations[pos]);
    core::HopReceipts receipts;
    receipts.hop = self;
    receipts.samples = monitor.collect_samples();
    receipts.aggregates = monitor.collect_aggregates(/*flush_open=*/true);
    verifier.add_hop(std::move(receipts));
  }
  return verifier;
}

/// The Fig.-1 PathLayout for a 5-domain run (HOPs 1..8).
inline core::PathLayout figure_one_layout() {
  return core::PathLayout{
      .hops = {1, 2, 3, 4, 5, 6, 7, 8},
      .domain_of = {"S", "L", "L", "X", "X", "N", "N", "D"},
  };
}

}  // namespace vpm::test

#endif  // VPM_TESTS_HELPERS_HPP
