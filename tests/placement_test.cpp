// Placement levers (collector/placement.hpp) and their ShardedCollector
// integration: pinning, L2-aware queue sizing, producer-side handoff
// coalescing, and NUMA first-touch construction.
//
// Placement is pure mechanism — it moves WHERE work runs and WHEN batches
// cross a queue, never WHAT a shard computes.  So the core obligation
// here is the same as the sharding tentpole's: every placement knob on,
// receipts identical to the monolithic cache.  The helper functions also
// get direct unit coverage because they silently degrade (that's the
// contract) and a regression to "always the fallback" would otherwise be
// invisible.
#include <gtest/gtest.h>

#include <algorithm>
#include <thread>
#include <vector>

#include "collector/monitoring_cache.hpp"
#include "collector/placement.hpp"
#include "collector/sharded_collector.hpp"
#include "helpers.hpp"
#include "trace/synthetic_trace.hpp"

namespace vpm::collector {
namespace {

using net::Packet;

// ------------------------------------------------------------------------
// Helper units.

TEST(Placement, OnlineCpusAtLeastOne) {
  EXPECT_GE(online_cpus(), 1u);
  EXPECT_LE(online_cpus(), 4096u);  // sanity, not a real bound
}

TEST(Placement, ResolveQueueCapacity) {
  // Nonzero requests pass through untouched.
  EXPECT_EQ(resolve_queue_capacity(7, 64), 7u);
  EXPECT_EQ(resolve_queue_capacity(4096, 0), 4096u);

  // Auto-size without a batch hint falls back to the default depth.
  EXPECT_EQ(resolve_queue_capacity(0, 0), 256u);

  // Auto-size with a hint is clamped to [16, 1024] whatever the host L2,
  // and never larger for bigger batches than for smaller ones.
  const std::size_t small = resolve_queue_capacity(0, 64);
  const std::size_t big = resolve_queue_capacity(0, 1 << 20);
  EXPECT_GE(small, 16u);
  EXPECT_LE(small, 1024u);
  EXPECT_GE(big, 16u);
  EXPECT_LE(big, small);
  if (l2_cache_bytes() != 0) {
    EXPECT_EQ(big, 16u);  // a megapacket batch dwarfs any L2
  } else {
    EXPECT_EQ(small, 256u);
  }
}

TEST(Placement, PinCurrentThreadReportsLandingCpu) {
  // Pin from a scratch thread so the gtest main thread keeps its mask.
  int pinned = -2;
  int seen = -2;
  int wrapped = -2;
  std::thread t([&] {
    pinned = pin_current_thread(0);
    seen = current_cpu();
    // Index arithmetic is mod online_cpus(): one full wrap lands on the
    // same CPU as index 0.
    wrapped = pin_current_thread(online_cpus());
  });
  t.join();
  if (pinned >= 0) {
    EXPECT_EQ(pinned, seen);
    EXPECT_EQ(pinned, wrapped);
  } else {
    // Degraded host: the helper must report failure, not lie.
    EXPECT_EQ(pinned, -1);
  }
}

// ------------------------------------------------------------------------
// ShardedCollector integration.

ShardedCollector::Config base_config(std::size_t shards) {
  ShardedCollector::Config cfg;
  cfg.cache.protocol.marker_rate = 1.0 / 500.0;
  cfg.cache.tuning = core::HopTuning{.sample_rate = 0.01, .cut_rate = 1e-3};
  cfg.shard_count = shards;
  return cfg;
}

trace::MultiPathTrace workload() {
  trace::MultiPathConfig mcfg;
  mcfg.path_count = 48;
  mcfg.total_packets_per_second = 60'000;
  mcfg.duration = net::seconds(1);
  mcfg.seed = 77;
  return trace::generate_multi_path(mcfg);
}

TEST(ShardedPlacement, QueueCapacityAutoSizesFromL2) {
  const auto multi = workload();

  ShardedCollector::Config cfg = base_config(2);
  cfg.queue_capacity = 0;
  cfg.handoff_batch_packets = 128;
  ShardedCollector sharded(cfg, multi.paths);
  EXPECT_EQ(sharded.queue_capacity(), resolve_queue_capacity(0, 128));
  EXPECT_GE(sharded.queue_capacity(), 16u);
  EXPECT_LE(sharded.queue_capacity(), 1024u);

  ShardedCollector::Config explicit_cfg = base_config(2);
  explicit_cfg.queue_capacity = 33;
  ShardedCollector fixed(explicit_cfg, multi.paths);
  EXPECT_EQ(fixed.queue_capacity(), 33u);
}

TEST(ShardedPlacement, AllKnobsOnReceiptsUnchangedThreaded) {
  const auto multi = workload();

  // Reference: monolithic cache over the same paths.
  MonitoringCache mono(base_config(1).cache, multi.paths);
  mono.observe_batch(multi.packets);

  ShardedCollector::Config cfg = base_config(4);
  cfg.queue_capacity = 0;                     // L2 auto-size
  cfg.handoff_batch_packets = 256;            // producer coalescing
  cfg.placement.pin_workers = true;           // worker pinning
  cfg.placement.numa_first_touch = true;      // build caches on workers
  ShardedCollector sharded(cfg, multi.paths);

  sharded.start(/*producer_count=*/1);
  // Feed in slices far below the coalescing threshold so correctness
  // depends on accumulate + flush, not on batches arriving full.
  const std::size_t kSlice = 37;
  for (std::size_t at = 0; at < multi.packets.size(); at += kSlice) {
    const std::size_t n = std::min(kSlice, multi.packets.size() - at);
    sharded.feed(0, std::span<const Packet>(multi.packets.data() + at, n));
  }
  sharded.flush(0);
  sharded.wait_idle();

  EXPECT_THROW((void)sharded.worker_cpus(), std::logic_error);
  sharded.stop();

  const std::vector<int> cpus = sharded.worker_cpus();
  ASSERT_EQ(cpus.size(), 4u);
  for (const int c : cpus) {
    EXPECT_GE(c, -1);  // -1 only when pinning is unsupported
  }

  EXPECT_EQ(sharded.unknown_path_packets(), mono.unknown_path_packets());
  EXPECT_EQ(sharded.ops().hash_computations, mono.ops().hash_computations);
  const auto sharded_drain = sharded.drain(/*flush_open=*/true);
  const auto mono_drain = mono.drain_all(/*flush_open=*/true);
  ASSERT_EQ(sharded_drain.size(), mono_drain.size());
  for (std::size_t i = 0; i < sharded_drain.size(); ++i) {
    EXPECT_EQ(sharded_drain[i].path, i);
    EXPECT_EQ(sharded_drain[i].drain, mono_drain[i]) << "drain entry " << i;
  }
}

TEST(ShardedPlacement, FirstTouchSynchronousIngestStillWorks) {
  const auto multi = workload();

  MonitoringCache mono(base_config(1).cache, multi.paths);
  mono.observe_batch(multi.packets);

  // numa_first_touch defers cache construction; synchronous observe must
  // build each shard cache on first use, transparently.
  ShardedCollector::Config cfg = base_config(4);
  cfg.placement.numa_first_touch = true;
  ShardedCollector sharded(cfg, multi.paths);
  sharded.observe_batch(multi.packets);

  const auto sharded_drain = sharded.drain(true);
  const auto mono_drain = mono.drain_all(true);
  ASSERT_EQ(sharded_drain.size(), mono_drain.size());
  for (std::size_t i = 0; i < sharded_drain.size(); ++i) {
    EXPECT_EQ(sharded_drain[i].drain, mono_drain[i]) << "drain entry " << i;
  }
}

TEST(ShardedPlacement, FirstTouchDrainWithoutTraffic) {
  // Deferred shards that never saw a packet still owe their (empty)
  // per-path drains — the merged stream's path set must not depend on
  // which shards got traffic.
  const auto multi = workload();

  ShardedCollector::Config cfg = base_config(4);
  cfg.placement.numa_first_touch = true;
  ShardedCollector sharded(cfg, multi.paths);

  const auto drains = sharded.drain(true);
  ASSERT_EQ(drains.size(), multi.paths.size());
  for (std::size_t i = 0; i < drains.size(); ++i) {
    EXPECT_EQ(drains[i].path, i);
    EXPECT_TRUE(drains[i].drain.samples.samples.empty());
  }
}

TEST(ShardedPlacement, FlushContract) {
  const auto multi = workload();
  ShardedCollector::Config cfg = base_config(2);
  cfg.handoff_batch_packets = 1 << 20;  // never fills: only flush delivers
  ShardedCollector sharded(cfg, multi.paths);

  EXPECT_THROW(sharded.flush(0), std::logic_error);  // not started

  sharded.start(1);
  sharded.feed(0, std::span<const Packet>(multi.packets.data(), 100));
  sharded.flush(0);
  sharded.wait_idle();
  // stop() flushes remainders too: feed again and stop without flushing.
  sharded.feed(0, std::span<const Packet>(multi.packets.data() + 100, 100));
  sharded.stop();

  // All 200 packets were applied (none lost in a pending accumulator):
  // one hash per observed packet, unknowns route but never hash.
  EXPECT_EQ(sharded.ops().hash_computations + sharded.unknown_path_packets(),
            200u);
}

TEST(ShardedPlacement, HandoffZeroFlushIsNoOp) {
  const auto multi = workload();
  ShardedCollector sharded(base_config(2), multi.paths);
  sharded.start(1);
  sharded.feed(0, std::span<const Packet>(multi.packets.data(), 64));
  sharded.flush(0);  // no coalescing configured: must be a harmless no-op
  sharded.wait_idle();
  sharded.stop();
  EXPECT_EQ(sharded.ops().hash_computations + sharded.unknown_path_packets(),
            64u);
}

}  // namespace
}  // namespace vpm::collector
