// Per-consumer cursor semantics on the ReceiptStore: ack idempotence,
// rejected out-of-order/regressing/ahead acks, GC gated on ALL registered
// consumers, late registration at the GC floor, and the kStaleSequence
// replay rejection surviving garbage collection.
#include <gtest/gtest.h>

#include <cstddef>
#include <span>
#include <vector>

#include "dissem/envelope.hpp"
#include "dissem/receipt_store.hpp"
#include "dissem/wire_exporter.hpp"

namespace vpm::dissem {
namespace {

constexpr DomainId kProducer = 5;
constexpr DomainKey kKey = 0xabc;

std::vector<std::byte> payload(std::size_t n) {
  return std::vector<std::byte>(n, std::byte{0x42});
}

ReceiptStore store_with(std::uint64_t sequences_through) {
  ReceiptStore store;
  store.register_producer(kProducer, kKey);
  for (std::uint64_t s = 1; s <= sequences_through; ++s) {
    EXPECT_EQ(store.ingest(seal(kProducer, s, payload(8 + s), kKey)),
              IngestResult::kAccepted);
  }
  return store;
}

std::vector<std::uint64_t> fetch_sequences(const ReceiptStore& store,
                                           const std::string& consumer) {
  std::vector<std::uint64_t> out;
  store.fetch_from(consumer, kProducer,
                   [&](std::uint64_t seq, std::span<const std::byte>) {
                     out.push_back(seq);
                   });
  return out;
}

TEST(StoreCursor, FetchResumesAfterAck) {
  ReceiptStore store = store_with(3);
  store.register_consumer("v");

  EXPECT_EQ(fetch_sequences(store, "v"),
            (std::vector<std::uint64_t>{1, 2, 3}));
  // Fetch does not advance the cursor (at-least-once).
  EXPECT_EQ(fetch_sequences(store, "v"),
            (std::vector<std::uint64_t>{1, 2, 3}));

  EXPECT_EQ(store.ack("v", kProducer, 2), AckResult::kAcked);
  EXPECT_EQ(store.cursor("v", kProducer), 2u);
  EXPECT_EQ(fetch_sequences(store, "v"), (std::vector<std::uint64_t>{3}));
}

TEST(StoreCursor, AckValidation) {
  ReceiptStore store = store_with(3);
  store.register_consumer("v");

  EXPECT_EQ(store.ack("nobody", kProducer, 1), AckResult::kUnknownConsumer);
  EXPECT_EQ(store.ack("v", 99, 1), AckResult::kUnknownProducer);
  EXPECT_EQ(store.ack("v", kProducer, 7), AckResult::kAhead)
      << "cannot ack sequences the store never served";

  EXPECT_EQ(store.ack("v", kProducer, 2), AckResult::kAcked);
  EXPECT_EQ(store.ack("v", kProducer, 2), AckResult::kAcked)
      << "re-acking the cursor is idempotent";
  EXPECT_EQ(store.cursor("v", kProducer), 2u);
  EXPECT_EQ(store.ack("v", kProducer, 1), AckResult::kRegressed)
      << "cursors never move backwards";
  EXPECT_EQ(store.cursor("v", kProducer), 2u);

  // Acking a gap sequence (rejected envelope never stored) is fine: the
  // cursor covers "everything at or below".
  ReceiptStore gappy;
  gappy.register_producer(kProducer, kKey);
  ASSERT_EQ(gappy.ingest(seal(kProducer, 2, payload(4), kKey)),
            IngestResult::kAccepted);
  ASSERT_EQ(gappy.ingest(seal(kProducer, 5, payload(4), kKey)),
            IngestResult::kAccepted);
  gappy.register_consumer("v");
  EXPECT_EQ(gappy.ack("v", kProducer, 3), AckResult::kAcked);
  EXPECT_EQ(fetch_sequences(gappy, "v"), (std::vector<std::uint64_t>{5}));
}

TEST(StoreCursor, AckLagCountsRetainedAfterItsOwnCollection) {
  // The lag an ack reports is the backlog the consumer still has to work
  // through — computed AFTER the collection this very ack triggered, and
  // always equal to a fresh consumer_lag() call.  (It used to count the
  // pre-GC retained set, over-reporting by the envelopes just erased.)
  ReceiptStore store = store_with(6);
  store.register_consumer("v");

  const AckOutcome out = store.ack("v", kProducer, 4);
  ASSERT_EQ(out, AckResult::kAcked);
  EXPECT_EQ(store.stored_envelopes(), 2u) << "1..4 collected by this ack";
  EXPECT_EQ(out.consumer_lag, 2u) << "lag must not count what it erased";
  EXPECT_EQ(out.consumer_lag, store.consumer_lag("v", kProducer));

  // With a second gating consumer holding the floor down, the ack erases
  // nothing — lag is still the post-collection (== unchanged) count.
  store.register_consumer("slow");
  ASSERT_EQ(store.ingest(seal(kProducer, 7, payload(4), kKey)),
            IngestResult::kAccepted);
  const AckOutcome ahead = store.ack("v", kProducer, 7);
  ASSERT_EQ(ahead, AckResult::kAcked);
  EXPECT_EQ(ahead.consumer_lag, 0u);
  EXPECT_EQ(store.consumer_lag("slow", kProducer), 3u);
  EXPECT_EQ(store.stored_envelopes(), 3u) << "\"slow\" still gates 5..7";
}

TEST(StoreCursor, GcFiresOnlyAfterAllConsumersAck) {
  ReceiptStore store = store_with(3);
  store.register_consumer("fast");
  store.register_consumer("slow");
  const std::size_t bytes_before = store.stored_payload_bytes();

  EXPECT_EQ(store.ack("fast", kProducer, 3), AckResult::kAcked);
  EXPECT_EQ(store.stored_envelopes(), 3u)
      << "one consumer's ack must not collect what the other still needs";
  EXPECT_EQ(store.gc_floor(kProducer), 0u);

  EXPECT_EQ(store.ack("slow", kProducer, 2), AckResult::kAcked);
  EXPECT_EQ(store.gc_floor(kProducer), 2u);
  EXPECT_EQ(store.stored_envelopes(), 1u);
  EXPECT_EQ(store.gc_erased_count(), 2u);
  EXPECT_LT(store.stored_payload_bytes(), bytes_before);
  EXPECT_EQ(fetch_sequences(store, "slow"),
            (std::vector<std::uint64_t>{3}));
}

TEST(StoreCursor, NoConsumersMeansNoGc) {
  ReceiptStore store = store_with(4);
  EXPECT_EQ(store.stored_envelopes(), 4u);
  EXPECT_EQ(store.gc_floor(kProducer), 0u);
  EXPECT_EQ(store.payloads_from(kProducer).size(), 4u);
}

TEST(StoreCursor, LateConsumerStartsAtGcFloor) {
  ReceiptStore store = store_with(3);
  store.register_consumer("v");
  ASSERT_EQ(store.ack("v", kProducer, 2), AckResult::kAcked);
  ASSERT_EQ(store.gc_floor(kProducer), 2u);

  // The collected envelopes cannot be served to a late registrant: its
  // cursor starts at the floor (documented), and acking below it
  // regresses.
  store.register_consumer("late");
  EXPECT_EQ(store.cursor("late", kProducer), 2u);
  EXPECT_EQ(fetch_sequences(store, "late"),
            (std::vector<std::uint64_t>{3}));
  EXPECT_EQ(store.ack("late", kProducer, 1), AckResult::kRegressed);

  // The late consumer now gates further GC from its floor cursor.
  ASSERT_EQ(store.ingest(seal(kProducer, 4, payload(4), kKey)),
            IngestResult::kAccepted);
  ASSERT_EQ(store.ack("v", kProducer, 4), AckResult::kAcked);
  EXPECT_EQ(store.gc_floor(kProducer), 2u);
  ASSERT_EQ(store.ack("late", kProducer, 3), AckResult::kAcked);
  EXPECT_EQ(store.gc_floor(kProducer), 3u);
}

TEST(StoreCursor, StaleSequenceRejectionSurvivesGc) {
  ReceiptStore store = store_with(3);
  store.register_consumer("v");
  ASSERT_EQ(store.ack("v", kProducer, 3), AckResult::kAcked);
  ASSERT_EQ(store.stored_envelopes(), 0u) << "everything collected";

  // A replayed (even authentically sealed) old envelope must still be
  // rejected: the sequence history outlives the envelopes.
  EXPECT_EQ(store.ingest(seal(kProducer, 2, payload(4), kKey)),
            IngestResult::kStaleSequence);
  EXPECT_EQ(store.ingest(seal(kProducer, 3, payload(4), kKey)),
            IngestResult::kStaleSequence);
  EXPECT_EQ(store.ingest(seal(kProducer, 4, payload(4), kKey)),
            IngestResult::kAccepted);
  EXPECT_EQ(fetch_sequences(store, "v"), (std::vector<std::uint64_t>{4}));
}

TEST(StoreCursor, SequenceZeroIsBelowTheCursorFloor) {
  // Cursor 0 means "nothing acked": an envelope with sequence 0 could
  // never be fetched through a cursor nor acked, so ingest rejects it.
  ReceiptStore store;
  store.register_producer(kProducer, kKey);
  EXPECT_EQ(store.ingest(seal(kProducer, 0, payload(4), kKey)),
            IngestResult::kStaleSequence);
  EXPECT_EQ(store.ingest(seal(kProducer, 1, payload(4), kKey)),
            IngestResult::kAccepted);
}

TEST(StoreCursor, ExporterRejectsSequenceZeroStart) {
  EXPECT_THROW(WireExporter(WireExporter::Config{.producer = kProducer,
                                                 .key = kKey,
                                                 .first_sequence = 0},
                            [](Envelope&&) {}),
               std::invalid_argument);
}

TEST(StoreCursor, AckInsideFetchWalkIsSafe) {
  // A cursor consumer's natural loop acks mid-walk (FetchClient acks at
  // every round boundary while fetch_from is still iterating).  The ack's
  // GC erases the map node just visited; the walk must re-find its
  // successor by key, not step through the freed node.  Regression test
  // for a release-build use-after-free the fault soak exposed.
  ReceiptStore store = store_with(5);
  store.register_consumer("v");
  std::vector<std::uint64_t> visited;
  store.fetch_from("v", kProducer,
                   [&](std::uint64_t seq, std::span<const std::byte> p) {
                     EXPECT_FALSE(p.empty());
                     visited.push_back(seq);
                     EXPECT_EQ(store.ack("v", kProducer, seq),
                               AckResult::kAcked);
                   });
  EXPECT_EQ(visited, (std::vector<std::uint64_t>{1, 2, 3, 4, 5}));
  EXPECT_EQ(store.stored_envelopes(), 0u)
      << "every visited envelope was acked and collected during the walk";
  EXPECT_EQ(store.cursor("v", kProducer), 5u);

  // Ingest from inside the walk (a different producer's feedback loop
  // writing into the same store) must not derail the walk either.
  ReceiptStore busy = store_with(3);
  busy.register_consumer("v");
  std::vector<std::uint64_t> seen;
  busy.fetch_from("v", kProducer,
                  [&](std::uint64_t seq, std::span<const std::byte>) {
                    seen.push_back(seq);
                    if (seq == 1) {
                      EXPECT_EQ(busy.ingest(seal(kProducer + 1, 1, payload(4),
                                                 kKey)),
                                IngestResult::kUnknownProducer);
                      busy.register_producer(kProducer + 1, kKey);
                      EXPECT_EQ(busy.ingest(seal(kProducer + 1, 1, payload(4),
                                                 kKey)),
                                IngestResult::kAccepted);
                    }
                  });
  EXPECT_EQ(seen, (std::vector<std::uint64_t>{1, 2, 3}));
}

TEST(StoreCursor, UnregisteredConsumerFetchThrows) {
  const ReceiptStore store;
  EXPECT_THROW(
      store.fetch_from("ghost", kProducer,
                       [](std::uint64_t, std::span<const std::byte>) {}),
      std::invalid_argument);
  EXPECT_THROW((void)store.cursor("ghost", kProducer), std::invalid_argument);
}

}  // namespace
}  // namespace vpm::dissem
