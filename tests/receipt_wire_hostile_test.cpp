// Hostile-input hardening for the receipt wire formats: receipts cross
// trust boundaries (§4), so every decoder must treat its input as
// attacker-controlled.  This suite truncates valid encodings at EVERY byte
// offset, corrupts counts and times, and walks the exporter's chunk
// framing with the same malice — proving each malformed input raises
// net::WireError (or std::invalid_argument at encode time) and never
// over-reads or corrupts state (the ASan+UBSan CI job runs this suite).
#include <gtest/gtest.h>

#include <cstddef>
#include <span>
#include <stdexcept>
#include <vector>

#include "core/receipt_batch.hpp"
#include "core/receipt_sink.hpp"
#include "dissem/envelope.hpp"
#include "dissem/receipt_store.hpp"
#include "dissem/wire_exporter.hpp"
#include "dissem/wire_importer.hpp"
#include "net/wire.hpp"
#include "trace/synthetic_trace.hpp"

namespace vpm {
namespace {

net::PathId test_path() {
  net::PathId id{};
  id.prefixes = trace::default_prefix_pair();
  id.previous_hop = 1;
  id.next_hop = 3;
  return id;
}

core::SampleReceipt valid_samples(std::size_t rounds = 3,
                                  std::size_t followers = 2) {
  core::SampleReceipt r;
  r.path = test_path();
  r.sample_threshold = 1000;
  r.marker_threshold = 2000;
  net::Timestamp t{};
  std::uint32_t pkt = 1;
  for (std::size_t round = 0; round < rounds; ++round) {
    for (std::size_t i = 0; i <= followers; ++i) {
      r.samples.push_back(core::SampleRecord{
          .pkt_id = pkt++, .time = t, .is_marker = i == followers});
      t += net::microseconds(50);
    }
  }
  return r;
}

std::vector<core::AggregateReceipt> valid_aggregates(std::size_t n = 3) {
  std::vector<core::AggregateReceipt> out;
  net::Timestamp t{};
  std::uint32_t pkt = 100;
  for (std::size_t i = 0; i < n; ++i) {
    core::AggregateReceipt r;
    r.path = test_path();
    r.agg = core::AggId{.first = pkt++, .last = pkt++};
    r.packet_count = 10 + static_cast<std::uint32_t>(i);
    r.opened_at = t;
    r.closed_at = t + net::milliseconds(1);
    r.trans.before = {pkt++, pkt++};
    r.trans.after = {pkt++};
    out.push_back(r);
    t += net::milliseconds(2);
  }
  return out;
}

std::vector<std::byte> encode_sample(const core::SampleReceipt& r) {
  net::ByteWriter w;
  core::encode_sample_batch(r, w);
  return std::move(w).take();
}

std::vector<std::byte> encode_aggregates(
    std::span<const core::AggregateReceipt> rs) {
  net::ByteWriter w;
  core::encode_aggregate_batch(rs, w);
  return std::move(w).take();
}

// --- truncation at every byte offset ------------------------------------

TEST(ReceiptWireHostile, SampleBatchTruncationAtEveryOffsetThrows) {
  const auto bytes = encode_sample(valid_samples());
  const net::PathId id = test_path();
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    net::ByteReader in(std::span<const std::byte>(bytes).first(len));
    EXPECT_THROW((void)core::decode_sample_batch(in, id), net::WireError)
        << "prefix length " << len;
  }
  net::ByteReader whole(bytes);
  EXPECT_EQ(core::decode_sample_batch(whole, id), valid_samples());
  EXPECT_TRUE(whole.done());
}

TEST(ReceiptWireHostile, AggregateBatchTruncationAtEveryOffsetThrows) {
  const auto aggs = valid_aggregates();
  const auto bytes = encode_aggregates(aggs);
  const net::PathId id = test_path();
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    net::ByteReader in(std::span<const std::byte>(bytes).first(len));
    EXPECT_THROW((void)core::decode_aggregate_batch(in, id), net::WireError)
        << "prefix length " << len;
  }
  net::ByteReader whole(bytes);
  EXPECT_EQ(core::decode_aggregate_batch(whole, id), aggs);
}

TEST(ReceiptWireHostile, EnvelopeTruncationAtEveryOffsetThrows) {
  const dissem::Envelope e =
      dissem::seal(9, 4, std::vector<std::byte>(37, std::byte{0x5A}), 123);
  net::ByteWriter w;
  dissem::encode(e, w);
  const std::vector<std::byte> bytes = std::move(w).take();
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    net::ByteReader in(std::span<const std::byte>(bytes).first(len));
    EXPECT_THROW((void)dissem::decode_envelope(in), net::WireError)
        << "prefix length " << len;
  }
}

// --- corrupted counts and fields ----------------------------------------

// Flip every byte of a valid batch: the decoder must either throw
// WireError/still parse — never crash or over-read (ASan enforces the
// latter).  Parsed-but-different results are fine; authenticity is the
// envelope MAC's job, not the batch parser's.
TEST(ReceiptWireHostile, SampleBatchSingleByteCorruptionNeverOverReads) {
  const auto bytes = encode_sample(valid_samples());
  const net::PathId id = test_path();
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    std::vector<std::byte> mutated = bytes;
    mutated[i] ^= std::byte{0xFF};
    net::ByteReader in(mutated);
    try {
      (void)core::decode_sample_batch(in, id);
    } catch (const net::WireError&) {
    }
  }
}

TEST(ReceiptWireHostile, AggregateBatchSingleByteCorruptionNeverOverReads) {
  const auto bytes = encode_aggregates(valid_aggregates());
  const net::PathId id = test_path();
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    std::vector<std::byte> mutated = bytes;
    mutated[i] ^= std::byte{0xFF};
    net::ByteReader in(mutated);
    try {
      (void)core::decode_aggregate_batch(in, id);
    } catch (const net::WireError&) {
    }
  }
}

TEST(ReceiptWireHostile, AbsurdCountsThrowInsteadOfAllocatingOrOverReading) {
  // Sample batch claiming 2^32-1 rounds: must hit truncation, not loop.
  {
    net::ByteWriter w;
    core::SampleReceipt empty;
    empty.path = test_path();
    core::encode_sample_batch(empty, w);
    std::vector<std::byte> bytes = std::move(w).take();
    // round count is the last u32 of the empty encoding.
    for (std::size_t i = bytes.size() - 4; i < bytes.size(); ++i) {
      bytes[i] = std::byte{0xFF};
    }
    net::ByteReader in(bytes);
    EXPECT_THROW((void)core::decode_sample_batch(in, test_path()),
                 net::WireError);
  }
  // Aggregate batch claiming 2^32-1 receipts likewise.
  {
    const auto aggs = valid_aggregates(1);
    std::vector<std::byte> bytes = encode_aggregates(aggs);
    // receipt count: u32 after tag(1) + key(8) + epoch(8).
    for (std::size_t i = 17; i < 21; ++i) bytes[i] = std::byte{0xFF};
    net::ByteReader in(bytes);
    EXPECT_THROW((void)core::decode_aggregate_batch(in, test_path()),
                 net::WireError);
  }
  // AggTrans id counts of 0xFFFF each with no bytes behind them.
  {
    const auto aggs = valid_aggregates(1);
    std::vector<std::byte> bytes = encode_aggregates(aggs);
    // trans counts: two u16s after tag+key+epoch+count(4)+agg(8)+cnt(4)+
    // open(3)+close(3) = 21 + 18 = offset 39.
    bytes[39] = bytes[40] = bytes[41] = bytes[42] = std::byte{0xFF};
    net::ByteReader in(bytes);
    EXPECT_THROW((void)core::decode_aggregate_batch(in, test_path()),
                 net::WireError);
  }
}

// --- non-monotone times --------------------------------------------------

TEST(ReceiptWireHostile, EncodeRejectsNonMonotoneTimes) {
  core::SampleReceipt r = valid_samples();
  r.samples[1].time = r.samples[0].time - net::microseconds(10);
  net::ByteWriter w;
  EXPECT_THROW(core::encode_sample_batch(r, w), std::invalid_argument);

  auto aggs = valid_aggregates();
  aggs[1].opened_at = aggs[0].opened_at - net::milliseconds(1);
  net::ByteWriter w2;
  EXPECT_THROW(core::encode_aggregate_batch(aggs, w2), std::invalid_argument);
}

TEST(ReceiptWireHostile, DecodeRejectsTimeInversions) {
  // Hand-craft a sample batch whose second record steps backwards.
  net::ByteWriter w;
  w.u8(0x11);
  w.u64(test_path().path_key());
  w.u32(1000);
  w.u32(2000);
  w.i64(0);   // epoch
  w.u32(1);   // one round
  w.u16(1);   // one follower + marker
  w.u32(1);   // follower pkt id
  w.u24(500); // follower at +500 µs
  w.u32(2);   // marker pkt id
  w.u24(100); // marker at +100 µs — before its follower
  net::ByteReader in(w.view());
  EXPECT_THROW((void)core::decode_sample_batch(in, test_path()),
               net::WireError);

  // And an aggregate that closes before it opens.
  net::ByteWriter w2;
  w2.u8(0x12);
  w2.u64(test_path().path_key());
  w2.i64(0);   // epoch
  w2.u32(1);   // one receipt
  w2.u32(1);   // agg.first
  w2.u32(2);   // agg.last
  w2.u32(10);  // packet count
  w2.u24(900); // opened at +900 µs
  w2.u24(100); // closed at +100 µs
  w2.u16(0);
  w2.u16(0);
  net::ByteReader in2(w2.view());
  EXPECT_THROW((void)core::decode_aggregate_batch(in2, test_path()),
               net::WireError);
}

TEST(ReceiptWireHostile, DecodeRejectsWrongPathKeyAndTag) {
  const auto bytes = encode_sample(valid_samples());
  net::PathId other = test_path();
  other.prefixes.source = net::Prefix(net::Ipv4Address(0x0B000000), 16);
  net::ByteReader in(bytes);
  EXPECT_THROW((void)core::decode_sample_batch(in, other), net::WireError);

  net::ByteReader in2(bytes);
  EXPECT_THROW((void)core::decode_aggregate_batch(in2, test_path()),
               net::WireError);
}

// --- the exporter/importer chunk framing ---------------------------------

class ChunkHostile : public ::testing::Test {
 protected:
  /// One sealed chunk carrying a real one-path drain.
  std::vector<std::byte> valid_chunk_payload() {
    std::vector<std::byte> payload;
    dissem::WireExporter exporter(
        dissem::WireExporter::Config{.producer = 1, .key = 2},
        [&payload](dissem::Envelope&& e) { payload = std::move(e.payload); });
    core::PathDrain drain;
    drain.samples = valid_samples();
    drain.aggregates = valid_aggregates();
    core::emit_drain(exporter, 0, drain);
    exporter.finish();
    return payload;
  }

  void expect_import_throws(std::span<const std::byte> payload) {
    dissem::ReceiptStore store;
    store.register_producer(1, 2);
    ASSERT_EQ(store.ingest(dissem::seal(
                  1, 1, std::vector<std::byte>(payload.begin(), payload.end()),
                  2)),
              dissem::IngestResult::kAccepted);
    const dissem::WireImporter importer({test_path()});
    core::NullSink sink;
    EXPECT_THROW(importer.import_into(store, 1, sink), net::WireError);
  }
};

TEST_F(ChunkHostile, TruncationAtEveryOffsetThrows) {
  const auto payload = valid_chunk_payload();
  ASSERT_FALSE(payload.empty());
  for (std::size_t len = 0; len < payload.size(); ++len) {
    expect_import_throws(std::span<const std::byte>(payload).first(len));
  }
}

TEST_F(ChunkHostile, UnknownPathKeySectionKindAndChunkTagThrow) {
  auto payload = valid_chunk_payload();
  // Chunk tag.
  {
    auto p = payload;
    p[0] = std::byte{0x7F};
    expect_import_throws(p);
  }
  // First section kind (offset: tag 1 + count 4).
  {
    auto p = payload;
    p[5] = std::byte{0x7F};
    expect_import_throws(p);
  }
  // First section path key (offset 6..13).
  {
    auto p = payload;
    p[6] ^= std::byte{0xFF};
    expect_import_throws(p);
  }
}

TEST_F(ChunkHostile, SectionLengthMismatchThrows) {
  auto payload = valid_chunk_payload();
  // Section length field sits after kind(1) + key(8) at offset 14..17;
  // shrinking it makes the decoded batch overrun the declared length.
  payload[14] = std::byte{static_cast<unsigned char>(
      std::to_integer<unsigned>(payload[14]) - 1)};
  expect_import_throws(payload);
}

TEST_F(ChunkHostile, AggregateSectionBeforeSamplesThrows) {
  // Build a chunk whose first (and only) section is an aggregate batch.
  net::ByteWriter batch;
  core::encode_aggregate_batch(valid_aggregates(), batch);
  net::ByteWriter payload;
  payload.u8(dissem::kChunkTag);
  payload.u32(1);
  payload.u8(dissem::kAggregateSectionKind);
  payload.u64(test_path().path_key());
  payload.u32(static_cast<std::uint32_t>(batch.size()));
  payload.bytes(batch.view());
  expect_import_throws(payload.view());
}

TEST_F(ChunkHostile, AggregateSectionRevisitingAClosedPathThrows) {
  // Path A's sections, then path B's, then an AGGREGATE section claiming
  // to continue A: a revisit may only open a new reporting round, and a
  // round must start with the path's sample batch.
  net::PathId path_b = test_path();
  path_b.prefixes.source = net::Prefix(net::Ipv4Address(0x0B000000), 16);

  net::ByteWriter empty_a, empty_b, aggs_a;
  core::SampleReceipt sa;
  sa.path = test_path();
  core::encode_sample_batch(sa, empty_a);
  core::SampleReceipt sb;
  sb.path = path_b;
  core::encode_sample_batch(sb, empty_b);
  core::encode_aggregate_batch(valid_aggregates(), aggs_a);

  struct Section {
    std::uint8_t kind;
    std::uint64_t key;
    const net::ByteWriter* batch;
  };
  const Section sections[] = {
      {dissem::kSampleSectionKind, test_path().path_key(), &empty_a},
      {dissem::kSampleSectionKind, path_b.path_key(), &empty_b},
      {dissem::kAggregateSectionKind, test_path().path_key(), &aggs_a}};
  net::ByteWriter payload;
  payload.u8(dissem::kChunkTag);
  payload.u32(3);
  for (const Section& s : sections) {
    payload.u8(s.kind);
    payload.u64(s.key);
    payload.u32(static_cast<std::uint32_t>(s.batch->size()));
    payload.bytes(s.batch->view());
  }

  dissem::ReceiptStore store;
  store.register_producer(1, 2);
  ASSERT_EQ(store.ingest(dissem::seal(
                1, 1,
                std::vector<std::byte>(payload.view().begin(),
                                       payload.view().end()),
                2)),
            dissem::IngestResult::kAccepted);
  const dissem::WireImporter importer({test_path(), path_b});
  core::NullSink sink;
  EXPECT_THROW(importer.import_into(store, 1, sink), net::WireError);
}

TEST_F(ChunkHostile, SeamTimeInversionAcrossSplitBatchesThrows) {
  // Each section is internally monotone, but the seam steps backwards —
  // the reassembled stream must be rejected just like an in-batch
  // inversion would be.
  const auto make_samples = [](std::int64_t first_us) {
    core::SampleReceipt r;
    r.path = test_path();
    r.sample_threshold = 1000;
    r.marker_threshold = 2000;
    r.samples.push_back(core::SampleRecord{
        .pkt_id = 1,
        .time = net::Timestamp{} + net::microseconds(first_us),
        .is_marker = true});
    return r;
  };
  const auto make_agg = [](std::int64_t open_us) {
    core::AggregateReceipt r;
    r.path = test_path();
    r.opened_at = net::Timestamp{} + net::microseconds(open_us);
    r.closed_at = r.opened_at + net::microseconds(10);
    return r;
  };
  const auto build = [](std::initializer_list<
                         std::pair<std::uint8_t, const net::ByteWriter*>>
                            sections) {
    net::ByteWriter payload;
    payload.u8(dissem::kChunkTag);
    payload.u32(static_cast<std::uint32_t>(sections.size()));
    for (const auto& [kind, batch] : sections) {
      payload.u8(kind);
      payload.u64(test_path().path_key());
      payload.u32(static_cast<std::uint32_t>(batch->size()));
      payload.bytes(batch->view());
    }
    return std::vector<std::byte>(payload.view().begin(),
                                  payload.view().end());
  };

  // Split sample batches: [500 µs] then [100 µs].
  {
    net::ByteWriter b1, b2;
    core::encode_sample_batch(make_samples(500), b1);
    core::encode_sample_batch(make_samples(100), b2);
    expect_import_throws(build({{dissem::kSampleSectionKind, &b1},
                                {dissem::kSampleSectionKind, &b2}}));
  }
  // Split aggregate batches: opens at 300 µs then 100 µs.
  {
    net::ByteWriter s, b1, b2;
    core::SampleReceipt empty;
    empty.path = test_path();
    core::encode_sample_batch(empty, s);
    const auto a1 = make_agg(300);
    const auto a2 = make_agg(100);
    core::encode_aggregate_batch({&a1, 1}, b1);
    core::encode_aggregate_batch({&a2, 1}, b2);
    expect_import_throws(build({{dissem::kSampleSectionKind, &s},
                                {dissem::kAggregateSectionKind, &b1},
                                {dissem::kAggregateSectionKind, &b2}}));
  }
}

// --- duplicated / reordered envelope sequences ---------------------------
//
// The transport between producer and store is attacker-adjacent too: a
// middlebox (or the FaultyTransport soak) can replay and reorder whole
// sealed envelopes.  The store's sequence discipline must dedupe retained
// replays, file reordered arrivals into place, and reject post-collection
// replays — and the decoded stream must come out IDENTICAL to an in-order
// ingest, never with a round applied twice.
class EnvelopeSequenceHostile : public ::testing::Test {
 protected:
  /// A two-round, two-path exporter stream chunked small enough to span
  /// several envelopes.
  std::vector<dissem::Envelope> make_stream() {
    std::vector<dissem::Envelope> envelopes;
    dissem::WireExporter exporter(
        dissem::WireExporter::Config{
            .producer = 1, .key = 2, .max_chunk_bytes = 160},
        [&envelopes](dissem::Envelope&& e) {
          envelopes.push_back(std::move(e));
        });
    net::PathId path_b = test_path();
    path_b.prefixes.source = net::Prefix(net::Ipv4Address(0x0B000000), 16);
    for (int round = 0; round < 2; ++round) {
      core::PathDrain a;
      a.samples = valid_samples();
      a.aggregates = valid_aggregates();
      core::PathDrain b = a;
      b.samples.path = path_b;
      for (auto& agg : b.aggregates) agg.path = path_b;
      core::emit_drain(exporter, 0, a);
      core::emit_drain(exporter, 1, b);
      exporter.end_round();
      exporter.flush();
    }
    exporter.finish();
    return envelopes;
  }

  dissem::WireImporter importer_for_stream() {
    net::PathId path_b = test_path();
    path_b.prefixes.source = net::Prefix(net::Ipv4Address(0x0B000000), 16);
    return dissem::WireImporter({test_path(), path_b});
  }

  std::vector<core::IndexedPathDrain> import_stream(
      const dissem::ReceiptStore& store) {
    const dissem::WireImporter importer = importer_for_stream();
    core::VectorSink sink;
    importer.import_into(store, 1, sink);
    return std::move(sink).take();
  }

  /// The stream as an in-order ingest decodes it — the double-apply
  /// oracle.
  std::vector<core::IndexedPathDrain> reference_stream(
      const std::vector<dissem::Envelope>& envelopes) {
    dissem::ReceiptStore store;
    store.register_producer(1, 2);
    for (const dissem::Envelope& e : envelopes) {
      EXPECT_EQ(store.ingest(e), dissem::IngestResult::kAccepted);
    }
    return import_stream(store);
  }
};

TEST_F(EnvelopeSequenceHostile, DuplicatedEnvelopesNeverDoubleApplyARound) {
  const auto envelopes = make_stream();
  ASSERT_GT(envelopes.size(), 3u) << "stream must span several envelopes";
  const auto reference = reference_stream(envelopes);

  dissem::ReceiptStore store;
  store.register_producer(1, 2);
  // Replay each envelope immediately after its original...
  for (const dissem::Envelope& e : envelopes) {
    EXPECT_EQ(store.ingest(e), dissem::IngestResult::kAccepted);
    EXPECT_EQ(store.ingest(e), dissem::IngestResult::kDuplicate);
  }
  // ...and the whole stream once more at the end.
  for (const dissem::Envelope& e : envelopes) {
    EXPECT_EQ(store.ingest(e), dissem::IngestResult::kDuplicate);
  }
  EXPECT_EQ(store.stored_envelopes(), envelopes.size());
  EXPECT_EQ(store.accepted_count(), envelopes.size());
  EXPECT_EQ(store.rejected_count(), 2 * envelopes.size());
  EXPECT_EQ(import_stream(store), reference)
      << "a replayed envelope must not contribute a second copy of its round";
}

TEST_F(EnvelopeSequenceHostile, ReorderedEnvelopesReassembleTheIdenticalStream) {
  const auto envelopes = make_stream();
  ASSERT_GT(envelopes.size(), 3u);
  const auto reference = reference_stream(envelopes);

  // Fully reversed arrival — the worst reordering a transport can do.
  dissem::ReceiptStore reversed;
  reversed.register_producer(1, 2);
  for (auto it = envelopes.rbegin(); it != envelopes.rend(); ++it) {
    EXPECT_EQ(reversed.ingest(*it), dissem::IngestResult::kAccepted);
  }
  EXPECT_EQ(import_stream(reversed), reference);

  // An interleaved swap pattern (1,0,3,2,...) with a duplicate riding
  // along mid-stream.
  dissem::ReceiptStore swapped;
  swapped.register_producer(1, 2);
  for (std::size_t i = 0; i + 1 < envelopes.size(); i += 2) {
    EXPECT_EQ(swapped.ingest(envelopes[i + 1]),
              dissem::IngestResult::kAccepted);
    EXPECT_EQ(swapped.ingest(envelopes[i]), dissem::IngestResult::kAccepted);
    EXPECT_EQ(swapped.ingest(envelopes[i + 1]),
              dissem::IngestResult::kDuplicate);
  }
  if (envelopes.size() % 2 != 0) {
    EXPECT_EQ(swapped.ingest(envelopes.back()),
              dissem::IngestResult::kAccepted);
  }
  EXPECT_EQ(import_stream(swapped), reference);
}

TEST_F(EnvelopeSequenceHostile, ReplayAfterCollectionIsRejectedAsStale) {
  const auto envelopes = make_stream();
  dissem::ReceiptStore store;
  store.register_producer(1, 2);
  for (const dissem::Envelope& e : envelopes) {
    ASSERT_EQ(store.ingest(e), dissem::IngestResult::kAccepted);
  }
  store.register_consumer("v");
  ASSERT_EQ(store.ack("v", 1, envelopes.back().sequence),
            dissem::AckResult::kAcked);
  ASSERT_EQ(store.stored_envelopes(), 0u);

  // The envelopes are collected, but their sequences are not forgotten:
  // an authentic replay cannot rewind the stream.
  for (const dissem::Envelope& e : envelopes) {
    EXPECT_EQ(store.ingest(e), dissem::IngestResult::kStaleSequence);
  }
  EXPECT_TRUE(import_stream(store).empty());
}

TEST_F(ChunkHostile, StoreRejectsTamperedChunkBeforeItReachesTheDecoder) {
  auto payload = valid_chunk_payload();
  dissem::Envelope env = dissem::seal(1, 1, payload, 2);
  env.payload[20] ^= std::byte{0x01};
  dissem::ReceiptStore store;
  store.register_producer(1, 2);
  EXPECT_EQ(store.ingest(std::move(env)),
            dissem::IngestResult::kBadAuthenticator);
  EXPECT_EQ(store.accepted_count(), 0u);
}

}  // namespace
}  // namespace vpm
