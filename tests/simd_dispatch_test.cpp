// SIMD dispatch-shim equivalence: the scalar and AVX2 tiers must be
// byte-identical at every observable layer.
//
// The dispatch contract (net/simd_dispatch.hpp) is that one binary serves
// every host — cpuid picks the tier, VPM_SIMD or force_tier() overrides it
// — and that the tier NEVER changes a receipt.  This suite pins that
// contract bottom-up:
//
//   * decide_batch across both tiers, every chunk remainder 0-7, both the
//     identity and idx forms, both digest modes;
//   * the classifier's hash_slots_batch / classify_batch phase A kernel;
//   * whole MonitoringCache receipt streams on a ~200k-packet multi-path
//     trace (paths straddle the internal chunk boundaries), wire-encoded
//     and compared byte for byte in both digest modes.
//
// On hosts without AVX2 (or builds without the -mavx2 TU) force_tier
// clamps to scalar, so every comparison degenerates to scalar-vs-scalar:
// the suite still runs and passes, it just stops being a cross-tier
// check.  CI's x86-64-v3 leg is where both tiers are genuinely exercised.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <numeric>
#include <string>
#include <vector>

#include "collector/monitoring_cache.hpp"
#include "core/config.hpp"
#include "core/path_state.hpp"
#include "core/receipt.hpp"
#include "helpers.hpp"
#include "net/digest.hpp"
#include "net/sample_batch.hpp"
#include "net/simd_dispatch.hpp"
#include "net/window_batch.hpp"
#include "net/wire.hpp"
#include "trace/synthetic_trace.hpp"

namespace vpm {
namespace {

using net::DigestEngine;
using net::DigestMode;
using net::Packet;
using net::PacketDecisions;
namespace simd = net::simd;

/// Restores cpuid/VPM_SIMD selection when a test scope ends, so a failing
/// assertion can't leak a forced tier into later tests.
struct TierGuard {
  TierGuard() = default;
  explicit TierGuard(simd::Tier t) { simd::force_tier(t); }
  ~TierGuard() { simd::clear_forced_tier(); }
  TierGuard(const TierGuard&) = delete;
  TierGuard& operator=(const TierGuard&) = delete;
};

bool cross_tier_host() {
  return simd::detected_tier() == simd::Tier::kAvx2;
}

std::vector<std::byte> encode_samples(const core::SampleReceipt& r) {
  net::ByteWriter w;
  encode(r, w);
  return std::move(w).take();
}

std::vector<std::byte> encode_aggregates(
    const std::vector<core::AggregateReceipt>& rs) {
  net::ByteWriter w;
  for (const core::AggregateReceipt& r : rs) encode(r, w);
  return std::move(w).take();
}

core::ProtocolParams protocol_for(DigestMode mode) {
  core::ProtocolParams p;
  p.marker_rate = 1e-3;
  p.digest_mode = mode;
  p.reorder_window_j = net::milliseconds(10);
  return p;
}

// ------------------------------------------------------------------------
// Selection mechanics.

TEST(SimdDispatch, TierSelectionContract) {
  // detected is one of the two tiers, and AVX2 detection implies the AVX2
  // translation unit made it into this binary.
  const simd::Tier det = simd::detected_tier();
  ASSERT_TRUE(det == simd::Tier::kScalar || det == simd::Tier::kAvx2);
  if (det == simd::Tier::kAvx2) {
    EXPECT_TRUE(simd::avx2_compiled());
  }

  EXPECT_STREQ(simd::tier_name(simd::Tier::kScalar), "scalar");
  EXPECT_STREQ(simd::tier_name(simd::Tier::kAvx2), "avx2");

  // Forcing scalar always takes effect; forcing AVX2 clamps to detected
  // (never selects instructions the host can't run).
  {
    TierGuard g(simd::Tier::kScalar);
    EXPECT_EQ(simd::active_tier(), simd::Tier::kScalar);
  }
  {
    TierGuard g(simd::Tier::kAvx2);
    EXPECT_EQ(simd::active_tier(), det);
  }
  // Guard destructors dropped the override; active is back to the
  // VPM_SIMD/cpuid choice, which never exceeds detected.
  EXPECT_LE(static_cast<int>(simd::active_tier()), static_cast<int>(det));
}

// ------------------------------------------------------------------------
// decide_batch: every remainder, both forms, both modes.

class DecideBatchTiers : public ::testing::TestWithParam<DigestMode> {};

TEST_P(DecideBatchTiers, AllRemaindersBothForms) {
  const DigestEngine engine = protocol_for(GetParam()).make_engine();
  const auto trace = trace::generate_trace(test::small_trace_config(17));
  ASSERT_GE(trace.size(), 64u);

  // Sizes 0..23 cover every chunk remainder mod 8 at least twice, plus
  // the empty batch.
  for (std::size_t n = 0; n <= 23; ++n) {
    std::vector<PacketDecisions> scalar_out(n + 1);
    std::vector<PacketDecisions> simd_out(n + 1);
    // Poison the one-past slot to catch out-of-bounds writes.
    scalar_out[n] = simd_out[n] =
        PacketDecisions{.id = 0xDEADBEEFu, .marker_value = 1, .cut_value = 2};

    // Identity form (idx == nullptr).
    {
      TierGuard g(simd::Tier::kScalar);
      engine.decide_batch(trace.data(), nullptr, n, scalar_out.data());
    }
    {
      TierGuard g(simd::Tier::kAvx2);
      engine.decide_batch(trace.data(), nullptr, n, simd_out.data());
    }
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(scalar_out[i], simd_out[i]) << "identity n=" << n << " i=" << i;
      ASSERT_EQ(scalar_out[i], engine.decide(trace[i]))
          << "identity vs decide() n=" << n << " i=" << i;
    }
    ASSERT_EQ(scalar_out[n], simd_out[n]) << "overwrote out[n], n=" << n;
    ASSERT_EQ(scalar_out[n].id, 0xDEADBEEFu) << "overwrote out[n], n=" << n;

    // idx form: a strided, non-monotonic gather.
    std::vector<std::uint32_t> idx(n);
    for (std::size_t i = 0; i < n; ++i) {
      idx[i] = static_cast<std::uint32_t>((i * 7 + 3) % trace.size());
    }
    {
      TierGuard g(simd::Tier::kScalar);
      engine.decide_batch(trace.data(), idx.data(), n, scalar_out.data());
    }
    {
      TierGuard g(simd::Tier::kAvx2);
      engine.decide_batch(trace.data(), idx.data(), n, simd_out.data());
    }
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(scalar_out[i], simd_out[i]) << "idx n=" << n << " i=" << i;
      ASSERT_EQ(scalar_out[i], engine.decide(trace[idx[i]]))
          << "idx vs decide() n=" << n << " i=" << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Modes, DecideBatchTiers,
                         ::testing::Values(DigestMode::kSingle,
                                           DigestMode::kIndependent));

// ------------------------------------------------------------------------
// Classifier phase A (the multiply-hash kernel behind the shim).

TEST(SimdDispatch, ClassifierTiersMatch) {
  trace::MultiPathConfig mcfg;
  mcfg.path_count = 100;
  mcfg.total_packets_per_second = 50'000;
  mcfg.duration = net::seconds(1);
  mcfg.seed = 23;
  const auto multi = trace::generate_multi_path(mcfg);
  const collector::PathClassifier cls(multi.paths);

  for (std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{5},
                        std::size_t{8}, std::size_t{13}, std::size_t{64},
                        multi.packets.size()}) {
    ASSERT_LE(n, multi.packets.size());
    std::vector<std::uint64_t> keys_a(n), keys_b(n);
    std::vector<std::uint32_t> slots_a(n), slots_b(n);
    std::vector<std::uint32_t> out_a(n), out_b(n);
    {
      TierGuard g(simd::Tier::kScalar);
      cls.hash_slots_batch(multi.packets.data(), n, keys_a.data(),
                           slots_a.data());
      cls.classify_batch(multi.packets.data(), n, out_a.data());
    }
    {
      TierGuard g(simd::Tier::kAvx2);
      cls.hash_slots_batch(multi.packets.data(), n, keys_b.data(),
                           slots_b.data());
      cls.classify_batch(multi.packets.data(), n, out_b.data());
    }
    ASSERT_EQ(keys_a, keys_b) << "n=" << n;
    ASSERT_EQ(slots_a, slots_b) << "n=" << n;
    ASSERT_EQ(out_a, out_b) << "n=" << n;
    // And the batch result agrees with the scalar one-at-a-time probe.
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t one = cls.classify(multi.packets[i].header);
      const std::uint32_t want = one == collector::PathClassifier::npos
                                     ? collector::PathClassifier::kNoPath
                                     : static_cast<std::uint32_t>(one);
      ASSERT_EQ(out_a[i], want) << "n=" << n << " i=" << i;
    }
  }
}

// ------------------------------------------------------------------------
// Protocol kernels (marker sweep-select, J-window scans): scalar vs AVX2
// over every remainder 0..23 plus multi-group sizes, with poison
// sentinels pinning the "never writes out[n] / past the last mask word"
// contract.  On scalar-only hosts the AVX2 entry points are null and the
// loops degenerate to scalar-vs-reference.

std::vector<core::TimedDigest> synthetic_records(std::size_t n,
                                                 std::uint64_t seed,
                                                 std::int64_t cutoff_ns) {
  std::vector<core::TimedDigest> recs(n);
  std::uint64_t x = seed * 2 + 1;
  for (std::size_t i = 0; i < n; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    recs[i].id = static_cast<net::PacketDigest>(x);
    // Times cluster around the cutoff (including exact hits, the >= edge)
    // with occasional far outliers.
    const std::int64_t delta = static_cast<std::int64_t>((x >> 32) % 9) - 4;
    recs[i].time = net::Timestamp{
        (x >> 40) % 7 == 0 ? cutoff_ns + delta * 1'000'000 : cutoff_ns + delta};
  }
  return recs;
}

const std::byte* bytes_of(const core::TimedDigest* p) {
  return reinterpret_cast<const std::byte*>(p);
}

TEST(SimdDispatch, SweepSelectKernelTiersMatch) {
  const net::detail::SweepSelectFn avx2 = net::detail::sweep_select_avx2();
  if (cross_tier_host()) {
    ASSERT_NE(avx2, nullptr);
  }
  constexpr std::size_t kStride = sizeof(core::TimedDigest);
  constexpr std::uint32_t kPoison = 0xDEADBEEFu;

  std::vector<std::size_t> sizes(24);
  std::iota(sizes.begin(), sizes.end(), 0);
  sizes.push_back(64);
  sizes.push_back(1000);

  for (const std::size_t n : sizes) {
    const auto recs = synthetic_records(n, n + 1, 0);
    for (const std::uint32_t marker : {0u, 0x1234ABCDu}) {
      for (const std::uint32_t thr : {0u, 1u << 30, 0xFFFFFFFFu}) {
        std::vector<std::uint32_t> ref;
        for (std::size_t i = 0; i < n; ++i) {
          if (DigestEngine::sample_value(recs[i].id, marker) > thr) {
            ref.push_back(static_cast<std::uint32_t>(i));
          }
        }

        std::vector<std::uint32_t> got(n + 1, kPoison);
        const std::size_t m = net::detail::sweep_select_scalar(
            bytes_of(recs.data()), kStride, n, marker, thr, got.data());
        ASSERT_EQ(m, ref.size()) << "scalar n=" << n << " thr=" << thr;
        ASSERT_TRUE(std::equal(ref.begin(), ref.end(), got.begin()))
            << "scalar n=" << n << " thr=" << thr;
        ASSERT_EQ(got[n], kPoison) << "scalar wrote out[n], n=" << n;

        if (avx2 == nullptr || !cross_tier_host()) continue;
        std::vector<std::uint32_t> vec(n + 1, kPoison);
        const std::size_t mv = avx2(bytes_of(recs.data()), kStride, n, marker,
                                    thr, vec.data());
        ASSERT_EQ(mv, ref.size()) << "avx2 n=" << n << " thr=" << thr;
        ASSERT_TRUE(std::equal(ref.begin(), ref.end(), vec.begin()))
            << "avx2 n=" << n << " thr=" << thr;
        ASSERT_EQ(vec[n], kPoison) << "avx2 wrote out[n], n=" << n;
      }
    }
  }
}

TEST(SimdDispatch, WindowCollectKernelTiersMatch) {
  const net::detail::WindowCollectFn avx2 = net::detail::window_collect_avx2();
  if (cross_tier_host()) {
    ASSERT_NE(avx2, nullptr);
  }
  constexpr std::size_t kStride = sizeof(core::TimedDigest);
  constexpr std::size_t kTimeOff = offsetof(core::TimedDigest, time);
  constexpr std::uint32_t kPoison = 0xDEADBEEFu;
  const std::int64_t cutoff = 987'654'321'000;

  std::vector<std::size_t> sizes(24);
  std::iota(sizes.begin(), sizes.end(), 0);
  sizes.push_back(64);
  sizes.push_back(1000);

  for (const std::size_t n : sizes) {
    const auto recs = synthetic_records(n, 31 * n + 7, cutoff);
    std::vector<std::uint32_t> ref;
    for (std::size_t i = 0; i < n; ++i) {
      if (recs[i].time.nanoseconds() >= cutoff) ref.push_back(recs[i].id);
    }

    std::vector<std::uint32_t> got(n + 1, kPoison);
    const std::size_t m = net::detail::window_collect_scalar(
        bytes_of(recs.data()), kStride, kTimeOff, n, cutoff, got.data());
    ASSERT_EQ(m, ref.size()) << "scalar n=" << n;
    ASSERT_TRUE(std::equal(ref.begin(), ref.end(), got.begin()))
        << "scalar n=" << n;
    ASSERT_EQ(got[n], kPoison) << "scalar wrote out[n], n=" << n;

    if (avx2 == nullptr || !cross_tier_host()) continue;
    std::vector<std::uint32_t> vec(n + 1, kPoison);
    const std::size_t mv = avx2(bytes_of(recs.data()), kStride, kTimeOff, n,
                                cutoff, vec.data());
    ASSERT_EQ(mv, ref.size()) << "avx2 n=" << n;
    ASSERT_TRUE(std::equal(ref.begin(), ref.end(), vec.begin()))
        << "avx2 n=" << n;
    ASSERT_EQ(vec[n], kPoison) << "avx2 wrote out[n], n=" << n;
  }
}

TEST(SimdDispatch, TimeGeMaskKernelTiersMatch) {
  const net::detail::TimeGeMaskFn avx2 = net::detail::time_ge_mask_avx2();
  if (cross_tier_host()) {
    ASSERT_NE(avx2, nullptr);
  }
  constexpr std::size_t kStride = sizeof(core::TimedDigest);
  constexpr std::size_t kTimeOff = offsetof(core::TimedDigest, time);
  constexpr std::uint64_t kPoison = 0xFEEDFACECAFEBEEFull;
  const std::int64_t cutoff = -123'456'789;  // negative cutoffs are legal

  std::vector<std::size_t> sizes(24);
  std::iota(sizes.begin(), sizes.end(), 0);
  sizes.push_back(64);
  sizes.push_back(77);
  sizes.push_back(1000);

  for (const std::size_t n : sizes) {
    const auto recs = synthetic_records(n, 17 * n + 3, cutoff);
    const std::size_t words = (n + 63) / 64;

    std::vector<std::uint64_t> want(words, 0);
    for (std::size_t i = 0; i < n; ++i) {
      if (recs[i].time.nanoseconds() >= cutoff) {
        want[i >> 6] |= std::uint64_t{1} << (i & 63);
      }
    }

    // One poison word past the contract's (n + 63) / 64 zero-filled words:
    // the kernels must leave it untouched.
    std::vector<std::uint64_t> got(words + 1, kPoison);
    net::detail::time_ge_mask_scalar(bytes_of(recs.data()), kStride, kTimeOff,
                                     n, cutoff, got.data());
    for (std::size_t w = 0; w < words; ++w) {
      ASSERT_EQ(got[w], want[w]) << "scalar n=" << n << " word=" << w;
    }
    ASSERT_EQ(got[words], kPoison) << "scalar wrote past mask, n=" << n;

    if (avx2 == nullptr || !cross_tier_host()) continue;
    std::vector<std::uint64_t> vec(words + 1, kPoison);
    avx2(bytes_of(recs.data()), kStride, kTimeOff, n, cutoff, vec.data());
    for (std::size_t w = 0; w < words; ++w) {
      ASSERT_EQ(vec[w], want[w]) << "avx2 n=" << n << " word=" << w;
    }
    ASSERT_EQ(vec[words], kPoison) << "avx2 wrote past mask, n=" << n;
  }
}

// ------------------------------------------------------------------------
// Whole-cache receipt streams across tiers, ~200k packets, both modes.

class CacheTierEquivalence : public ::testing::TestWithParam<DigestMode> {};

TEST_P(CacheTierEquivalence, ReceiptsByteIdenticalAcrossTiers) {
  trace::MultiPathConfig mcfg;
  mcfg.path_count = 64;
  mcfg.total_packets_per_second = 200'000;
  mcfg.duration = net::seconds(1);
  mcfg.seed = 41;
  const auto multi = trace::generate_multi_path(mcfg);
  ASSERT_GT(multi.packets.size(), 190'000u);

  collector::MonitoringCache::Config ccfg;
  ccfg.protocol = protocol_for(GetParam());
  ccfg.tuning = core::HopTuning{.sample_rate = 0.01, .cut_rate = 1e-3};

  collector::MonitoringCache scalar_cache(ccfg, multi.paths);
  collector::MonitoringCache simd_cache(ccfg, multi.paths);

  // Feed in uneven batch slices so multi-path runs straddle both the
  // batch edges and the internal 8-packet chunk boundaries.
  const std::size_t cuts[] = {1, 7, 8, 9, 63, 1000, 4097};
  auto feed = [&](collector::MonitoringCache& cache) {
    std::size_t at = 0, pick = 0;
    while (at < multi.packets.size()) {
      const std::size_t want = cuts[pick++ % std::size(cuts)];
      const std::size_t n = std::min(want, multi.packets.size() - at);
      cache.observe_batch(
          std::span<const Packet>(multi.packets.data() + at, n));
      at += n;
    }
  };
  {
    TierGuard g(simd::Tier::kScalar);
    feed(scalar_cache);
  }
  {
    TierGuard g(simd::Tier::kAvx2);
    feed(simd_cache);
  }

  EXPECT_EQ(scalar_cache.unknown_path_packets(),
            simd_cache.unknown_path_packets());
  EXPECT_EQ(scalar_cache.ops().hash_computations,
            simd_cache.ops().hash_computations);

  bool any_samples = false;
  for (std::size_t path = 0; path < multi.paths.size(); ++path) {
    const core::SampleReceipt s = scalar_cache.collect_samples(path);
    any_samples = any_samples || !s.samples.empty();
    ASSERT_EQ(encode_samples(s),
              encode_samples(simd_cache.collect_samples(path)))
        << "path " << path;
    ASSERT_EQ(encode_aggregates(scalar_cache.collect_aggregates(path, true)),
              encode_aggregates(simd_cache.collect_aggregates(path, true)))
        << "path " << path;
  }
  EXPECT_TRUE(any_samples);

  if (!cross_tier_host()) {
    GTEST_LOG_(INFO) << "host detected tier is scalar; comparison was "
                        "scalar-vs-scalar";
  }
}

INSTANTIATE_TEST_SUITE_P(Modes, CacheTierEquivalence,
                         ::testing::Values(DigestMode::kSingle,
                                           DigestMode::kIndependent));

// ------------------------------------------------------------------------
// Time-keyed marker bound x vectorized sweep: with marker_max_age set well
// below the trace span, most sweeps are forced (age-triggered) rather than
// digest-triggered, and the swept slices stop at the bound instead of the
// ~1/marker_rate expectation.  Receipts must stay byte-identical across
// tiers on that path too, and the per-tier sweep-kernel counters must
// attribute the work to the tier that ran it.

class ForcedMarkerTierEquivalence
    : public ::testing::TestWithParam<DigestMode> {};

TEST_P(ForcedMarkerTierEquivalence, ReceiptsByteIdenticalAcrossTiers) {
  trace::MultiPathConfig mcfg;
  mcfg.path_count = 64;
  mcfg.total_packets_per_second = 200'000;
  mcfg.duration = net::seconds(1);
  mcfg.seed = 59;
  const auto multi = trace::generate_multi_path(mcfg);
  ASSERT_GT(multi.packets.size(), 190'000u);

  collector::MonitoringCache::Config ccfg;
  ccfg.protocol = protocol_for(GetParam());
  // Per-path inter-arrival is ~320us (200kpps over 64 paths), so a 20ms
  // bound forces a sweep roughly every 62 buffered records — far more
  // often than the 1e-3 marker rate's ~1000-record expectation.
  ccfg.protocol.marker_max_age = net::milliseconds(20);
  ccfg.tuning = core::HopTuning{.sample_rate = 0.01, .cut_rate = 1e-3};

  collector::MonitoringCache scalar_cache(ccfg, multi.paths);
  collector::MonitoringCache simd_cache(ccfg, multi.paths);

  const std::size_t cuts[] = {3, 8, 11, 64, 513, 4096};
  auto feed = [&](collector::MonitoringCache& cache) {
    std::size_t at = 0, pick = 0;
    while (at < multi.packets.size()) {
      const std::size_t want = cuts[pick++ % std::size(cuts)];
      const std::size_t n = std::min(want, multi.packets.size() - at);
      cache.observe_batch(
          std::span<const Packet>(multi.packets.data() + at, n));
      at += n;
    }
  };
  {
    TierGuard g(simd::Tier::kScalar);
    feed(scalar_cache);
  }
  {
    TierGuard g(simd::Tier::kAvx2);
    feed(simd_cache);
  }

  // The bound actually fired: markers outnumber the digest-triggered
  // expectation (~200 naturally at 1e-3 over 200k packets) by a wide
  // margin, and every sweep ran through the tier that was forced.
  std::uint64_t markers = 0;
  for (std::size_t path = 0; path < multi.paths.size(); ++path) {
    markers += scalar_cache.path_stats(path).markers;
  }
  EXPECT_GT(markers, 1000u);
  EXPECT_GT(scalar_cache.ops().sweep_kernel_scalar, 0u);
  EXPECT_EQ(scalar_cache.ops().sweep_kernel_avx2, 0u);
  if (cross_tier_host()) {
    EXPECT_GT(simd_cache.ops().sweep_kernel_avx2, 0u);
    EXPECT_EQ(simd_cache.ops().sweep_kernel_scalar, 0u);
  }

  bool any_samples = false;
  for (std::size_t path = 0; path < multi.paths.size(); ++path) {
    const core::SampleReceipt s = scalar_cache.collect_samples(path);
    any_samples = any_samples || !s.samples.empty();
    ASSERT_EQ(encode_samples(s),
              encode_samples(simd_cache.collect_samples(path)))
        << "path " << path;
    ASSERT_EQ(encode_aggregates(scalar_cache.collect_aggregates(path, true)),
              encode_aggregates(simd_cache.collect_aggregates(path, true)))
        << "path " << path;
  }
  EXPECT_TRUE(any_samples);
}

INSTANTIATE_TEST_SUITE_P(Modes, ForcedMarkerTierEquivalence,
                         ::testing::Values(DigestMode::kSingle,
                                           DigestMode::kIndependent));

}  // namespace
}  // namespace vpm
