// The coarse scenario detection-envelope grid (one seed per cell):
// scenario classes x loss models x digest modes, asserting the §6
// envelope — honest runs produce zero liar findings, every adversary
// strategy is detected, loss localisation stays exact.  The deep version
// of the same grid (many seeds per cell) lives in scenario_grid_full.cpp
// behind `ctest -L scenario-full`.
#include <gtest/gtest.h>

#include "scenario_grid.hpp"

namespace vpm {
namespace {

TEST(ScenarioGrid, CoarseEnvelope) {
  std::uint64_t seed = 100;
  for (const test::GridClass cls : test::kGridClasses) {
    for (const sim::LossKind loss : test::kGridLossKinds) {
      for (const net::DigestMode mode : test::kGridModes) {
        test::check_cell(cls, loss, mode, ++seed);
      }
    }
  }
}

}  // namespace
}  // namespace vpm
