// Edge coverage for the digest-derived decision machinery: the
// rate<->threshold conversions at their extremes, the kSingle-mode
// invariant, and pinned digest values guarding the protocol definition
// (every HOP must compute bit-identical digests — a silent change to
// hash_fields/bob_hash would break cross-HOP receipt comparison).
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>

#include "net/digest.hpp"
#include "net/packet.hpp"

namespace vpm::net {
namespace {

Packet test_packet() {
  Packet p;
  p.header.src = Ipv4Address(10, 1, 2, 3);
  p.header.dst = Ipv4Address(100, 4, 5, 6);
  p.header.src_port = 4242;
  p.header.dst_port = 80;
  p.header.ip_id = 777;
  p.header.total_length = 400;
  p.header.protocol = IpProto::kTcp;
  p.payload_prefix = 0x0123456789abcdefull;
  return p;
}

TEST(RateThreshold, EdgeRates) {
  // rate 0: nothing may exceed the threshold.
  EXPECT_EQ(rate_to_threshold(0.0), std::numeric_limits<std::uint32_t>::max());
  EXPECT_EQ(threshold_to_rate(rate_to_threshold(0.0)), 0.0);

  // rate 1: everything except value 0 exceeds the threshold — the closest
  // representable cutoff under the strict `value > threshold` rule.
  EXPECT_EQ(rate_to_threshold(1.0), 0u);

  // The smallest nonzero representable rate: exactly one digest value
  // (UINT32_MAX) passes.
  const double tiny = 1.0 / 4294967296.0;  // 2^-32
  EXPECT_EQ(rate_to_threshold(tiny), 0xFFFFFFFEu);
  EXPECT_DOUBLE_EQ(threshold_to_rate(0xFFFFFFFEu), tiny);

  // Out-of-range rates are rejected.
  EXPECT_THROW((void)rate_to_threshold(-0.01), std::invalid_argument);
  EXPECT_THROW((void)rate_to_threshold(1.01), std::invalid_argument);
}

TEST(RateThreshold, EdgeThresholdsRoundTrip) {
  // threshold 0: all values but 0 pass.
  EXPECT_DOUBLE_EQ(threshold_to_rate(0), (4294967296.0 - 1.0) / 4294967296.0);
  // threshold UINT32_MAX: nothing passes.
  EXPECT_DOUBLE_EQ(threshold_to_rate(0xFFFFFFFFu), 0.0);

  // Round-trip through representable rates is exact at the edges and
  // within one digest quantum everywhere else.
  for (const std::uint32_t t :
       {0u, 1u, 1u << 16, 1u << 31, 0xFFFFFFFEu, 0xFFFFFFFFu}) {
    const double rate = threshold_to_rate(t);
    const std::uint32_t back = rate_to_threshold(rate);
    EXPECT_NEAR(static_cast<double>(back), static_cast<double>(t), 1.0) << t;
  }
}

TEST(DigestEngine, SingleModeInvariant) {
  const DigestEngine engine{HeaderSpec{}, DigestMode::kSingle};
  const Packet p = test_packet();
  const PacketDecisions d = engine.decide(p);
  // kSingle: one digest value serves every role (paper-faithful).
  EXPECT_EQ(d.id, d.marker_value);
  EXPECT_EQ(d.id, d.cut_value);
  EXPECT_EQ(engine.packet_id(p), engine.marker_value(p));
  EXPECT_EQ(engine.packet_id(p), engine.cut_value(p));
  EXPECT_EQ(d.id, engine.packet_id(p));
}

TEST(DigestEngine, IndependentModeDecorrelatesRoles) {
  const DigestEngine engine{HeaderSpec{}, DigestMode::kIndependent};
  const PacketDecisions d = engine.decide(test_packet());
  EXPECT_NE(d.id, d.marker_value);
  EXPECT_NE(d.id, d.cut_value);
  EXPECT_NE(d.marker_value, d.cut_value);
}

TEST(DigestEngine, PinnedProtocolDigests) {
  // Golden values, computed from the seed implementation.  The PktID is
  // part of the protocol: if these change, receipts from old and new HOPs
  // no longer match and every deployment must upgrade in lockstep.
  const DigestEngine engine{HeaderSpec{}, DigestMode::kSingle};
  const Packet p = test_packet();
  EXPECT_EQ(engine.packet_id(p), 0x96e88046u);

  Packet q = p;
  q.payload_prefix ^= 1;  // one payload bit flips the digest
  EXPECT_NE(engine.packet_id(q), engine.packet_id(p));
}

}  // namespace
}  // namespace vpm::net
