// FederatedStore + SegmentStore behaviour suite (ISSUE 9): splitmix64
// producer routing, shard isolation, disk recovery (torn tails, torn
// creates, whole-segment GC unlink), durable cursors with log compaction,
// and the concurrency matrix (many producers ingesting while many
// consumers fetch/ack through the locked API) that the TSan CI job runs.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "collector/sharded_collector.hpp"
#include "dissem/envelope.hpp"
#include "dissem/federated_store.hpp"
#include "dissem/receipt_store.hpp"
#include "dissem/segment_store.hpp"
#include "helpers.hpp"

namespace vpm {
namespace {

constexpr dissem::DomainKey kKey = 0xABCDEF;

dissem::Envelope make_env(dissem::DomainId producer, std::uint64_t seq,
                          std::size_t payload_bytes = 24) {
  return dissem::seal(
      producer, seq,
      std::vector<std::byte>(payload_bytes,
                             std::byte{static_cast<unsigned char>(seq)}),
      kKey);
}

std::size_t segment_files_on_disk(const std::filesystem::path& dir) {
  std::size_t n = 0;
  for (const auto& entry :
       std::filesystem::recursive_directory_iterator(dir)) {
    if (entry.is_regular_file() && entry.path().extension() == ".seg") ++n;
  }
  return n;
}

// --- routing --------------------------------------------------------------

TEST(FederatedStore, RoutingMatchesTheShardedCollectorDiscipline) {
  // Same finalizer, same modulus: a producer id must land on the same
  // shard index the collector would pick for an equal 64-bit key.
  for (const std::size_t shards : {1u, 2u, 4u, 7u, 16u}) {
    for (std::uint32_t p = 0; p < 500; ++p) {
      EXPECT_EQ(dissem::FederatedStore::shard_of(p, shards),
                collector::ShardedCollector::shard_of_key(p, shards))
          << "producer " << p << " shards " << shards;
    }
  }
}

TEST(FederatedStore, RoutingSpreadsProducersAcrossShards) {
  constexpr std::size_t kShards = 4;
  std::vector<std::size_t> load(kShards, 0);
  for (std::uint32_t p = 1; p <= 1000; ++p) {
    ++load[dissem::FederatedStore::shard_of(p, kShards)];
  }
  for (std::size_t s = 0; s < kShards; ++s) {
    EXPECT_GT(load[s], 150u) << "shard " << s << " starved";
    EXPECT_LT(load[s], 350u) << "shard " << s << " overloaded";
  }
}

TEST(FederatedStore, ShardForAndLockedApiAgree) {
  dissem::FederatedStoreConfig cfg;
  cfg.shards = 4;
  dissem::FederatedStore fed(cfg);
  for (dissem::DomainId p = 1; p <= 12; ++p) {
    fed.register_producer(p, kKey);
    ASSERT_EQ(fed.ingest(make_env(p, 1)), dissem::IngestResult::kAccepted);
    EXPECT_EQ(fed.last_sequence(p), 1u);
    EXPECT_EQ(fed.shard_for(p).last_sequence(p), 1u);
    EXPECT_EQ(&fed.shard_for(p), &fed.shard(fed.shard_index(p)));
  }
  EXPECT_EQ(fed.stored_envelopes(), 12u);
  EXPECT_EQ(fed.accepted_count(), 12u);
}

// --- consumer gating across shards ----------------------------------------

TEST(FederatedStore, RegisterConsumerGatesEveryShardSubscribeGatesOne) {
  dissem::FederatedStoreConfig cfg;
  cfg.shards = 4;
  dissem::FederatedStore fed(cfg);
  // Pick producers on distinct shards.
  std::vector<dissem::DomainId> producers;
  std::set<std::size_t> used;
  for (dissem::DomainId p = 1; producers.size() < 3; ++p) {
    if (used.insert(fed.shard_index(p)).second) producers.push_back(p);
  }
  for (const dissem::DomainId p : producers) fed.register_producer(p, kKey);

  fed.register_consumer("everything");
  fed.subscribe("one", producers[0]);
  for (const dissem::DomainId p : producers) {
    for (std::uint64_t s = 1; s <= 4; ++s) {
      ASSERT_EQ(fed.ingest(make_env(p, s)), dissem::IngestResult::kAccepted);
    }
  }
  // "everything" holds the floor on all three producers...
  ASSERT_EQ(fed.ack("one", producers[0], 4), dissem::AckResult::kAcked);
  EXPECT_EQ(fed.gc_floor(producers[0]), 0u);
  EXPECT_EQ(fed.stored_envelopes(), 12u);
  // ...and once it acks, only its own cursor gates: producer 0 (both
  // consumers at 4) collects, the others (gated only by "everything")
  // collect too.
  for (const dissem::DomainId p : producers) {
    ASSERT_EQ(fed.ack("everything", p, 4), dissem::AckResult::kAcked);
  }
  EXPECT_EQ(fed.gc_floor(producers[0]), 4u);
  EXPECT_EQ(fed.stored_envelopes(), 0u);
  // The subscriber's cursor never existed on other shards: asking for it
  // there throws (it was only registered on producers[0]'s shard).
  EXPECT_EQ(fed.cursor("one", producers[0]), 4u);
  EXPECT_THROW((void)fed.cursor("one", producers[1]), std::invalid_argument);
}

// --- disk-backed shards ---------------------------------------------------

TEST(FederatedStore, DiskReopenRecoversCursorsEnvelopesAndHeads) {
  test::TempDir tmp("fed-reopen");
  dissem::FederatedStoreConfig cfg;
  cfg.shards = 4;
  cfg.directory = tmp.path();
  const std::vector<dissem::DomainId> producers = {3, 7, 11, 19};
  {
    dissem::FederatedStore fed(cfg);
    for (const dissem::DomainId p : producers) fed.register_producer(p, kKey);
    fed.register_consumer("c");
    for (const dissem::DomainId p : producers) {
      for (std::uint64_t s = 1; s <= 6; ++s) {
        ASSERT_EQ(fed.ingest(make_env(p, s)), dissem::IngestResult::kAccepted);
      }
      ASSERT_EQ(fed.ack("c", p, 2 + p % 3), dissem::AckResult::kAcked);
    }
  }
  dissem::FederatedStore fed(cfg);
  for (const dissem::DomainId p : producers) fed.register_producer(p, kKey);
  for (const dissem::DomainId p : producers) {
    EXPECT_EQ(fed.last_sequence(p), 6u) << "producer " << p;
    EXPECT_EQ(fed.cursor("c", p), 2 + p % 3) << "producer " << p;
    // Unacked envelopes survive and fetch resumes mid-stream...
    std::vector<std::uint64_t> seqs;
    fed.fetch_from("c", p,
                   [&seqs](std::uint64_t s, std::span<const std::byte>) {
                     seqs.push_back(s);
                   });
    ASSERT_FALSE(seqs.empty());
    EXPECT_EQ(seqs.front(), 2 + p % 3 + 1);
    EXPECT_EQ(seqs.back(), 6u);
    // ...replays of durable envelopes are rejected as duplicates, and
    // pre-floor replays as stale.
    EXPECT_EQ(fed.ingest(make_env(p, 6)), dissem::IngestResult::kDuplicate);
    EXPECT_EQ(fed.ingest(make_env(p, 7)), dissem::IngestResult::kAccepted);
  }
}

TEST(FederatedStore, LateSubscriberBaselineHoldsTheFloorAcrossReopen) {
  // A consumer that subscribes after GC has run starts at the floor; that
  // baseline must be durable.  Recovery recomputes floors from persisted
  // acks, so an ack-less late subscriber used to rewind the recovered
  // floor to zero — un-collecting sequences it never owned, so collected
  // envelopes could re-ingest and be re-served after a restart.
  test::TempDir tmp("fed-baseline");
  dissem::FederatedStoreConfig cfg;
  cfg.shards = 2;
  cfg.directory = tmp.path();
  constexpr dissem::DomainId kP = 6;
  {
    dissem::FederatedStore fed(cfg);
    fed.register_producer(kP, kKey);
    fed.subscribe("auditor", kP);
    for (std::uint64_t s = 1; s <= 8; ++s) {
      ASSERT_EQ(fed.ingest(make_env(kP, s)), dissem::IngestResult::kAccepted);
    }
    ASSERT_EQ(fed.ack("auditor", kP, 5), dissem::AckResult::kAcked);
    ASSERT_EQ(fed.gc_floor(kP), 5u);
    fed.subscribe("late", kP);  // joins at the floor, never acks
    EXPECT_EQ(fed.cursor("late", kP), 5u);
  }
  dissem::FederatedStore fed(cfg);
  fed.register_producer(kP, kKey);
  EXPECT_EQ(fed.gc_floor(kP), 5u)
      << "the late subscriber's baseline must gate from the floor, not 0";
  EXPECT_EQ(fed.cursor("late", kP), 5u);
  EXPECT_EQ(fed.ingest(make_env(kP, 3)), dissem::IngestResult::kStaleSequence)
      << "a collected sequence must never re-ingest after recovery";
}

TEST(FederatedStore, ReopenWithDifferentShardCountRefuses) {
  test::TempDir tmp("fed-reshard");
  dissem::FederatedStoreConfig cfg;
  cfg.shards = 4;
  cfg.directory = tmp.path();
  { dissem::FederatedStore fed(cfg); }
  cfg.shards = 2;
  EXPECT_THROW(dissem::FederatedStore{cfg}, std::runtime_error);
  cfg.shards = 4;
  EXPECT_NO_THROW(dissem::FederatedStore{cfg});
}

// --- SegmentStore on real files -------------------------------------------

TEST(SegmentStoreDisk, RollsSegmentsAndUnlinksWholeFilesAtTheFloor) {
  test::TempDir tmp("seg-roll");
  dissem::SegmentStoreConfig cfg;
  cfg.directory = tmp.path();
  cfg.max_segment_bytes = 256;  // a few records per file
  dissem::SegmentStore store(cfg);
  constexpr dissem::DomainId kP = 5;
  for (std::uint64_t s = 1; s <= 40; ++s) store.append(make_env(kP, s));

  const dissem::StorageStats before = store.stats();
  EXPECT_GT(before.segments_live, 4u) << "must have rolled several files";
  EXPECT_EQ(segment_files_on_disk(tmp.path()), before.segments_live);
  EXPECT_EQ(before.envelopes, 40u);

  // A floor of 20 unlinks exactly the files whose max sequence <= 20; the
  // file straddling the floor is retained whole (over-retention is
  // invisible: reads start above the cursor).
  store.erase_through(kP, 20);
  const dissem::StorageStats after = store.stats();
  EXPECT_GT(after.segments_unlinked, 0u);
  EXPECT_EQ(segment_files_on_disk(tmp.path()), after.segments_live);
  EXPECT_LT(after.segments_live, before.segments_live);
  for (std::uint64_t s = 21; s <= 40; ++s) {
    EXPECT_TRUE(store.contains(kP, s)) << "sequence " << s;
  }
  std::vector<std::uint64_t> seqs;
  store.visit_after(kP, 20,
                    [&seqs](std::uint64_t s, std::span<const std::byte>) {
                      seqs.push_back(s);
                    });
  ASSERT_EQ(seqs.size(), 20u);
  EXPECT_EQ(seqs.front(), 21u);
  EXPECT_EQ(seqs.back(), 40u);
  EXPECT_EQ(store.count_after(kP, 20), 20u);

  // Everything collected: the whole chain's files go away.
  store.erase_through(kP, 40);
  EXPECT_EQ(store.stats().segments_live, 0u);
  EXPECT_EQ(segment_files_on_disk(tmp.path()), 0u);
}

TEST(SegmentStoreDisk, ReopenRecoversTornTailAndServesThePrefix) {
  test::TempDir tmp("seg-torn");
  dissem::SegmentStoreConfig cfg;
  cfg.directory = tmp.path();
  constexpr dissem::DomainId kP = 9;
  std::vector<dissem::Envelope> written;
  {
    dissem::SegmentStore store(cfg);
    for (std::uint64_t s = 1; s <= 6; ++s) {
      written.push_back(make_env(kP, s, 30 + s));
      store.append(written.back());
    }
  }
  // Tear mid-record: the last record loses its CRC and a payload byte.
  ASSERT_EQ(segment_files_on_disk(tmp.path()), 1u);
  std::filesystem::path seg;
  for (const auto& e : std::filesystem::directory_iterator(tmp.path())) {
    if (e.path().extension() == ".seg") seg = e.path();
  }
  const std::uintmax_t size = std::filesystem::file_size(seg);
  std::filesystem::resize_file(seg, size - 5);

  dissem::SegmentStore store(cfg);
  // One record = len(4) + envelope(17 + payload + mac 8) + crc(4).
  EXPECT_EQ(std::filesystem::file_size(seg),
            size - (written.back().payload.size() + 33))
      << "recovery must resize to the last whole record";
  EXPECT_FALSE(store.contains(kP, 6));
  for (std::uint64_t s = 1; s <= 5; ++s) {
    EXPECT_TRUE(store.contains(kP, s)) << "sequence " << s;
  }
  // The payload bytes of survivors are intact.
  store.visit_after(kP, 0,
                    [&](std::uint64_t s, std::span<const std::byte> payload) {
                      const auto& want = written[s - 1].payload;
                      ASSERT_EQ(payload.size(), want.size());
                      EXPECT_TRUE(std::equal(payload.begin(), payload.end(),
                                             want.begin(), want.end()));
                    });
  // Appending continues after the tear point with fresh sequences.
  store.append(make_env(kP, 6, 36));
  EXPECT_TRUE(store.contains(kP, 6));
}

TEST(SegmentStoreDisk, TornCreateAndHeaderOnlyFilesAreUnlinkedForeignNamesThrow) {
  test::TempDir tmp("seg-junk");
  // A 3-byte torn create and a header-only segment: both removed on open.
  {
    std::ofstream torn(tmp.path() / "p00000001-0000000000000000.seg",
                       std::ios::binary);
    torn << "VS";
  }
  {
    net::ByteWriter w;
    dissem::write_segment_header(2, w);
    std::ofstream header_only(tmp.path() / "p00000002-0000000000000000.seg",
                              std::ios::binary);
    header_only.write(reinterpret_cast<const char*>(w.view().data()),
                      static_cast<std::streamsize>(w.view().size()));
  }
  // Non-.seg litter is ignored, but a .seg file with a foreign name is
  // refused loudly — silently skipping it could hide real data.
  { std::ofstream notes(tmp.path() / "notes.txt"); notes << "hi"; }
  dissem::SegmentStoreConfig cfg;
  cfg.directory = tmp.path();
  {
    dissem::SegmentStore store(cfg);
    EXPECT_EQ(store.stats().segments_live, 0u);
    EXPECT_EQ(segment_files_on_disk(tmp.path()), 0u);
  }
  { std::ofstream bogus(tmp.path() / "bogus.seg"); bogus << "???"; }
  EXPECT_THROW(dissem::SegmentStore{cfg}, std::runtime_error);
}

TEST(SegmentStorageDisk, CursorLogCompactsAndRecoversTheLatestState) {
  test::TempDir tmp("seg-compact");
  dissem::SegmentStoreConfig cfg;
  cfg.directory = tmp.path();
  cfg.cursor_snapshot_every = 8;  // force many compactions
  constexpr dissem::DomainId kP = 4;
  const std::filesystem::path log = tmp.path() / "cursors.log";
  std::uintmax_t log_after_burst = 0;
  {
    dissem::ReceiptStore store(dissem::make_segment_storage(cfg));
    store.register_producer(kP, kKey);
    store.register_consumer("c");
    for (std::uint64_t s = 1; s <= 200; ++s) {
      ASSERT_EQ(store.ingest(make_env(kP, s, 8)),
                dissem::IngestResult::kAccepted);
      ASSERT_EQ(store.ack("c", kP, s), dissem::AckResult::kAcked);
    }
    log_after_burst = std::filesystem::file_size(log);
  }
  // 200 acks at snapshot_every=8 without compaction would be ~200
  // records; the compacted log holds a snapshot plus at most one window.
  EXPECT_LT(log_after_burst, 1024u)
      << "cursor log must compact, not grow with ack count";
  dissem::ReceiptStore store(dissem::make_segment_storage(cfg));
  store.register_producer(kP, kKey);
  EXPECT_EQ(store.cursor("c", kP), 200u);
  EXPECT_EQ(store.gc_floor(kP), 200u);
  EXPECT_EQ(store.ingest(make_env(kP, 150, 8)),
            dissem::IngestResult::kStaleSequence);
  EXPECT_EQ(store.ingest(make_env(kP, 201, 8)),
            dissem::IngestResult::kAccepted);
}

// --- concurrency (the TSan matrix) ----------------------------------------

class FederatedStoreConcurrency
    : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FederatedStoreConcurrency, ProducersIngestWhileConsumersFetchAndAck) {
  const std::size_t shards = GetParam();
  test::TempDir tmp("fed-tsan");
  dissem::FederatedStoreConfig cfg;
  cfg.shards = shards;
  cfg.directory = tmp.path();  // disk-backed: the file paths race too
  cfg.max_segment_bytes = 2 * 1024;
  dissem::FederatedStore fed(cfg);

  constexpr std::size_t kProducers = 6;
  constexpr std::uint64_t kPerProducer = 120;
  for (dissem::DomainId p = 1; p <= kProducers; ++p) {
    fed.register_producer(p, kKey);
  }
  // One all-producer consumer per worker thread: each gates GC
  // everywhere, so concurrent acks drive concurrent erase_through against
  // concurrent appends and walks.
  constexpr std::size_t kConsumers = 3;
  for (std::size_t c = 0; c < kConsumers; ++c) {
    fed.register_consumer("c" + std::to_string(c));
  }

  std::vector<std::thread> threads;
  threads.reserve(kProducers + kConsumers);
  for (dissem::DomainId p = 1; p <= kProducers; ++p) {
    threads.emplace_back([&fed, p] {
      for (std::uint64_t s = 1; s <= kPerProducer; ++s) {
        ASSERT_EQ(fed.ingest(make_env(p, s, 16)),
                  dissem::IngestResult::kAccepted);
      }
    });
  }
  for (std::size_t c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&fed, c] {
      const std::string name = "c" + std::to_string(c);
      std::vector<std::uint64_t> cursor(kProducers + 1, 0);
      bool all_done = false;
      while (!all_done) {
        all_done = true;
        for (dissem::DomainId p = 1; p <= kProducers; ++p) {
          std::uint64_t contiguous = cursor[p];
          fed.fetch_from(name, p,
                         [&contiguous](std::uint64_t s,
                                       std::span<const std::byte> payload) {
                           ASSERT_FALSE(payload.empty());
                           if (s == contiguous + 1) contiguous = s;
                         });
          if (contiguous > cursor[p]) {
            ASSERT_EQ(fed.ack(name, p, contiguous),
                      dissem::AckResult::kAcked);
            cursor[p] = contiguous;
          }
          if (cursor[p] < kPerProducer) all_done = false;
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(fed.accepted_count(), kProducers * kPerProducer);
  // Every consumer drained everything, so every envelope was collected.
  EXPECT_EQ(fed.stored_envelopes(), 0u);
  EXPECT_EQ(fed.gc_erased_count(), kProducers * kPerProducer);
  for (dissem::DomainId p = 1; p <= kProducers; ++p) {
    EXPECT_EQ(fed.gc_floor(p), kPerProducer);
  }
}

INSTANTIATE_TEST_SUITE_P(Shards, FederatedStoreConcurrency,
                         ::testing::Values(1, 4));

}  // namespace
}  // namespace vpm
