// Tests for receipt consistency checking (Section 4): the MaxDiff rules
// (Eq. 1-2), omission detection via disclosed thresholds, marker-loss
// exposure (§5.3), and aggregate count checks across a link.
#include <gtest/gtest.h>

#include <vector>

#include "core/consistency.hpp"
#include "core/config.hpp"
#include "core/hop_monitor.hpp"
#include "helpers.hpp"
#include "loss/bernoulli.hpp"
#include "sim/path_run.hpp"
#include "trace/synthetic_trace.hpp"

namespace vpm::core {
namespace {

using test::feed;
using test::make_monitor;
using test::test_protocol;

struct LinkFixture {
  std::vector<net::Packet> trace;
  SampleReceipt up_samples;
  SampleReceipt down_samples;
  std::vector<AggregateReceipt> up_aggs;
  std::vector<AggregateReceipt> down_aggs;
};

/// Two HOPs facing each other across a link with `link_loss` and fixed
/// 50 us link delay; same tuning on both sides.
LinkFixture make_link(double sample_rate, loss::LossModel* link_loss,
                      std::uint64_t seed,
                      net::Duration max_diff = net::milliseconds(5)) {
  LinkFixture f;
  auto cfg = test::small_trace_config(seed);
  f.trace = trace::generate_trace(cfg);

  sim::PathEnvironment env;
  env.domains.resize(2);  // source domain + destination domain: 2 HOPs
  env.links.resize(1);
  env.links[0].loss = link_loss;
  env.seed = seed + 1;
  const sim::PathRunResult run = sim::run_path(f.trace, env);

  const core::ProtocolParams protocol = test_protocol();
  core::HopTuning tuning;
  tuning.sample_rate = sample_rate;
  tuning.cut_rate = 1e-3;

  auto up = make_monitor(protocol, tuning, 5, net::kNoHop, 6, max_diff);
  auto down = make_monitor(protocol, tuning, 6, 5, net::kNoHop, max_diff);
  feed(up, f.trace, run.hop_observations[0]);
  feed(down, f.trace, run.hop_observations[1]);
  f.up_samples = up.collect_samples();
  f.down_samples = down.collect_samples();
  f.up_aggs = up.collect_aggregates(true);
  f.down_aggs = down.collect_aggregates(true);
  return f;
}

TEST(LinkSamples, HonestLinkIsConsistent) {
  LinkFixture f = make_link(0.05, nullptr, 1);
  const LinkSampleCheck check =
      check_link_samples(f.up_samples, f.down_samples);
  EXPECT_TRUE(check.consistent());
  EXPECT_GT(check.rounds_matched, 10u);
  EXPECT_GT(check.common_samples, 100u);
  // Link residence times hover at the 50 us link delay.
  for (const double ms : check.link_delays_ms) {
    EXPECT_NEAR(ms, 0.05, 0.01);
  }
}

TEST(LinkSamples, MaxDiffMismatchFlagged) {
  LinkFixture f = make_link(0.05, nullptr, 2);
  f.down_samples.path.max_diff = net::milliseconds(50);
  const LinkSampleCheck check =
      check_link_samples(f.up_samples, f.down_samples);
  ASSERT_FALSE(check.consistent());
  EXPECT_EQ(check.violations.front().kind,
            InconsistencyKind::kMaxDiffMismatch);
}

TEST(LinkSamples, DelayBoundViolationFlagged) {
  // Shrink MaxDiff below the link delay: every common sample violates
  // Eq. 2 (equivalently, a liar shaving timestamps trips the same check).
  LinkFixture f = make_link(0.05, nullptr, 3, net::microseconds(10));
  const LinkSampleCheck check =
      check_link_samples(f.up_samples, f.down_samples);
  ASSERT_FALSE(check.consistent());
  std::size_t delay_violations = 0;
  for (const Inconsistency& v : check.violations) {
    if (v.kind == InconsistencyKind::kDelayBound) {
      ++delay_violations;
      EXPECT_GT(v.magnitude, 0.0);
    }
  }
  EXPECT_EQ(delay_violations, check.common_samples);
}

TEST(LinkSamples, LinkLossShowsAsMissingDownstreamOrMarkers) {
  loss::BernoulliLoss loss(0.1, 77);
  LinkFixture f = make_link(0.05, &loss, 4);
  const LinkSampleCheck check =
      check_link_samples(f.up_samples, f.down_samples);
  // A lossy link is NOT consistent — that is the paper's point: the
  // neighbours are notified and must debug the link.
  ASSERT_FALSE(check.consistent());
  std::size_t missing = 0;
  std::size_t markers = 0;
  for (const Inconsistency& v : check.violations) {
    if (v.kind == InconsistencyKind::kMissingDownstream) ++missing;
    if (v.kind == InconsistencyKind::kMarkerMissing) ++markers;
  }
  EXPECT_GT(missing + markers, 0u);
  // Roughly 10% of upstream samples should be implicated.
  const double frac =
      static_cast<double>(missing + markers) /
      static_cast<double>(f.up_samples.samples.size());
  EXPECT_NEAR(frac, 0.1, 0.05);
}

TEST(LinkSamples, FabricatedDownstreamRecordFlaggedAsMissingUpstream) {
  LinkFixture f = make_link(0.05, nullptr, 5);
  // Invent a record downstream inside an existing round, with an id the
  // upstream HOP "should" have sampled.  Find a real round's marker and
  // craft an id passing the upstream sigma check.
  net::PacketDigest marker_id = 0;
  std::size_t marker_pos = 0;
  for (std::size_t i = 0; i < f.down_samples.samples.size(); ++i) {
    if (f.down_samples.samples[i].is_marker) {
      marker_id = f.down_samples.samples[i].pkt_id;
      marker_pos = i;
      break;
    }
  }
  ASSERT_NE(marker_id, 0u);
  net::PacketDigest fake_id = 424242;
  while (net::DigestEngine::sample_value(fake_id, marker_id) <=
         f.up_samples.sample_threshold) {
    ++fake_id;
  }
  SampleRecord fake{fake_id,
                    f.down_samples.samples[marker_pos].time -
                        net::microseconds(1),
                    false};
  f.down_samples.samples.insert(
      f.down_samples.samples.begin() +
          static_cast<std::ptrdiff_t>(marker_pos),
      fake);

  const LinkSampleCheck check =
      check_link_samples(f.up_samples, f.down_samples);
  ASSERT_FALSE(check.consistent());
  bool found = false;
  for (const Inconsistency& v : check.violations) {
    if (v.kind == InconsistencyKind::kMissingUpstream &&
        v.pkt_id == fake_id) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(LinkSamples, DownstreamLowerRateIsNotAViolation) {
  // Downstream samples at 1%, upstream at 5%: most upstream samples are
  // legitimately absent downstream; the subset property means no
  // violations are raised (downstream's sigma says "not my job").
  auto cfg = test::small_trace_config(6);
  const auto trace = trace::generate_trace(cfg);
  sim::PathEnvironment env;
  env.domains.resize(2);
  env.links.resize(1);
  env.seed = 7;
  const sim::PathRunResult run = sim::run_path(trace, env);

  const core::ProtocolParams protocol = test_protocol();
  core::HopTuning up_tuning{.sample_rate = 0.05, .cut_rate = 1e-3};
  core::HopTuning down_tuning{.sample_rate = 0.01, .cut_rate = 1e-3};
  auto up = make_monitor(protocol, up_tuning, 5, net::kNoHop, 6);
  auto down = make_monitor(protocol, down_tuning, 6, 5, net::kNoHop);
  feed(up, trace, run.hop_observations[0]);
  feed(down, trace, run.hop_observations[1]);

  const LinkSampleCheck check =
      check_link_samples(up.collect_samples(), down.collect_samples());
  EXPECT_TRUE(check.consistent());
  EXPECT_GT(check.common_samples, 0u);
}

TEST(LinkAggregates, HonestLinkCountsMatch) {
  LinkFixture f = make_link(0.02, nullptr, 8);
  const LinkAggregateCheck check =
      check_link_aggregates(f.up_aggs, f.down_aggs);
  EXPECT_TRUE(check.consistent());
  EXPECT_GT(check.aggregates_checked, 5u);
}

TEST(LinkAggregates, LossyLinkFlagsCountMismatch) {
  loss::BernoulliLoss loss(0.05, 13);
  LinkFixture f = make_link(0.02, &loss, 9);
  const LinkAggregateCheck check =
      check_link_aggregates(f.up_aggs, f.down_aggs);
  ASSERT_FALSE(check.consistent());
  for (const Inconsistency& v : check.violations) {
    EXPECT_EQ(v.kind, InconsistencyKind::kCountMismatch);
    EXPECT_GT(v.magnitude, 0.0);
  }
}

TEST(LinkAggregates, InflatedDownstreamCountFlagsNegativeLoss) {
  LinkFixture f = make_link(0.02, nullptr, 10);
  ASSERT_FALSE(f.down_aggs.empty());
  f.down_aggs.front().packet_count += 5;  // claims packets from nowhere
  const LinkAggregateCheck check =
      check_link_aggregates(f.up_aggs, f.down_aggs);
  ASSERT_FALSE(check.consistent());
  EXPECT_EQ(check.violations.front().kind,
            InconsistencyKind::kNegativeLoss);
}

TEST(ConsistencyToString, CoversAllKinds) {
  for (const auto kind :
       {InconsistencyKind::kMaxDiffMismatch, InconsistencyKind::kDelayBound,
        InconsistencyKind::kMissingDownstream,
        InconsistencyKind::kMissingUpstream,
        InconsistencyKind::kMarkerMissing, InconsistencyKind::kCountMismatch,
        InconsistencyKind::kNegativeLoss}) {
    EXPECT_FALSE(to_string(kind).empty());
    EXPECT_NE(to_string(kind), "unknown");
  }
}

}  // namespace
}  // namespace vpm::core
