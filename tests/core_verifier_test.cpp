// End-to-end verifier tests over the Figure-1 topology: S-L-X-N-D with
// HOPs 1..8, receipts produced by real monitors over simulated traffic,
// analysed purely from receipts.
#include <gtest/gtest.h>

#include <vector>

#include "core/verifier.hpp"
#include "helpers.hpp"
#include "loss/bernoulli.hpp"
#include "loss/gilbert_elliott.hpp"
#include "sim/topology.hpp"
#include "stats/quantile.hpp"
#include "trace/synthetic_trace.hpp"

namespace vpm::core {
namespace {

using test::figure_one_layout;
using test::monitor_path;
using test::test_protocol;

struct Scenario {
  std::vector<net::Packet> trace;
  sim::PathRunResult run;
  sim::PathEnvironment env;
};

Scenario run_figure_one(loss::LossModel* x_loss, net::Duration x_delay,
                        net::Duration x_jitter, std::uint64_t seed) {
  Scenario s;
  auto cfg = test::small_trace_config(seed);
  s.trace = trace::generate_trace(cfg);
  const sim::PathTopology topo = sim::PathTopology::figure_one();
  s.env = topo.make_environment(seed + 1);
  s.env.domains[2].loss = x_loss;  // X is domain index 2
  s.env.domains[2].delay_of = [x_delay](sim::PacketIndex) { return x_delay; };
  s.env.domains[2].jitter = x_jitter;
  s.run = sim::run_path(s.trace, s.env);
  return s;
}

TEST(PathVerifier, HonestPathFullyConsistent) {
  Scenario s = run_figure_one(nullptr, net::milliseconds(2),
                              net::Duration{0}, 31);
  const core::HopTuning tuning{.sample_rate = 0.05, .cut_rate = 1e-3};
  const core::HopTuning tunings[] = {tuning};
  PathVerifier v = monitor_path(s.trace, s.run, test_protocol(), tunings);

  const PathAnalysis analysis = v.analyze(figure_one_layout());
  EXPECT_EQ(analysis.domains.size(), 3u);  // L, X, N
  EXPECT_EQ(analysis.links.size(), 4u);    // S-L, L-X, X-N, N-D
  EXPECT_TRUE(analysis.all_links_consistent());
  for (const DomainFinding& d : analysis.domains) {
    EXPECT_EQ(d.loss.offered, d.loss.delivered) << d.domain;
  }
}

TEST(PathVerifier, EstimatesConstantDomainDelayAccurately) {
  Scenario s = run_figure_one(nullptr, net::milliseconds(7),
                              net::Duration{0}, 37);
  const core::HopTuning tunings[] = {
      core::HopTuning{.sample_rate = 0.05, .cut_rate = 1e-3}};
  PathVerifier v = monitor_path(s.trace, s.run, test_protocol(), tunings);

  const DomainDelayReport delay = v.domain_delay(4, 5);
  ASSERT_TRUE(delay.usable());
  EXPECT_GT(delay.common_samples, 500u);
  for (const stats::QuantileEstimate& q : delay.quantiles) {
    EXPECT_NEAR(q.value, 7.0, 0.05) << "quantile " << q.quantile;
  }
}

TEST(PathVerifier, ComputesExactLossFromReceipts) {
  loss::BernoulliLoss x_loss(0.08, 41);
  Scenario s = run_figure_one(&x_loss, net::milliseconds(1),
                              net::Duration{0}, 43);
  const core::HopTuning tunings[] = {
      core::HopTuning{.sample_rate = 0.02, .cut_rate = 1e-3}};
  PathVerifier v = monitor_path(s.trace, s.run, test_protocol(), tunings);

  // Ground truth: X's ingress (hop pos 3) vs egress (hop pos 4) counts.
  const std::uint64_t offered = s.run.hop_observations[3].size();
  const std::uint64_t delivered = s.run.hop_observations[4].size();

  const DomainLossReport loss = v.domain_loss(4, 5);
  EXPECT_EQ(loss.offered, offered);
  EXPECT_EQ(loss.delivered, delivered);
  EXPECT_NEAR(loss.loss_rate(), 0.08, 0.02);
  EXPECT_GT(loss.joined_aggregates, 5u);

  // The other domains lost nothing.
  EXPECT_EQ(v.domain_loss(2, 3).offered, v.domain_loss(2, 3).delivered);
  EXPECT_EQ(v.domain_loss(6, 7).offered, v.domain_loss(6, 7).delivered);
}

TEST(PathVerifier, DelayQuantilesTrackTruthUnderJitter) {
  Scenario s = run_figure_one(nullptr, net::milliseconds(3),
                              net::microseconds(2000), 47);
  const core::HopTuning tunings[] = {
      core::HopTuning{.sample_rate = 0.05, .cut_rate = 1e-3}};
  PathVerifier v = monitor_path(s.trace, s.run, test_protocol(), tunings);

  const auto truth = sim::true_domain_delays_ms(s.run, s.env, 2);
  std::vector<double> truth_ms;
  truth_ms.reserve(truth.size());
  for (const auto& [pkt, ms] : truth) truth_ms.push_back(ms);

  const DomainDelayReport delay = v.domain_delay(4, 5);
  ASSERT_TRUE(delay.usable());
  const auto report =
      stats::score_delay_estimate(truth_ms, delay.sample_delays_ms);
  EXPECT_LT(report.worst_abs_error, 0.2);  // ms
}

TEST(PathVerifier, DifferentNeighborRatesStillVerifiable) {
  // X samples at 5%, N at 1%: L can still verify X's delay from N's
  // receipts, just with fewer common samples (Section 7.2,
  // "Verifiability").
  Scenario s = run_figure_one(nullptr, net::milliseconds(2),
                              net::Duration{0}, 53);
  const core::HopTuning tunings[] = {
      core::HopTuning{.sample_rate = 0.05, .cut_rate = 1e-3},  // odd hops
      core::HopTuning{.sample_rate = 0.01, .cut_rate = 1e-3},  // even hops
  };
  PathVerifier v = monitor_path(s.trace, s.run, test_protocol(), tunings);
  const PathAnalysis analysis = v.analyze(figure_one_layout());
  EXPECT_TRUE(analysis.all_links_consistent());
  // Delay across X measured between hops with different rates: the common
  // sample count is governed by the lower rate.
  const DomainDelayReport d45 = v.domain_delay(4, 5);
  ASSERT_TRUE(d45.usable());
}

TEST(PathVerifier, PartialDeploymentYieldsEmptyFindings) {
  Scenario s = run_figure_one(nullptr, net::milliseconds(2),
                              net::Duration{0}, 59);
  const core::HopTuning tunings[] = {
      core::HopTuning{.sample_rate = 0.05, .cut_rate = 1e-3}};
  // Only X's HOPs deploy VPM.
  PathVerifier v;
  const auto protocol = test_protocol();
  for (const std::size_t pos : {3u, 4u}) {
    auto monitor = test::make_monitor(
        protocol, tunings[0], static_cast<net::HopId>(pos + 1),
        static_cast<net::HopId>(pos), static_cast<net::HopId>(pos + 2));
    test::feed(monitor, s.trace, s.run.hop_observations[pos]);
    HopReceipts r;
    r.hop = static_cast<net::HopId>(pos + 1);
    r.samples = monitor.collect_samples();
    r.aggregates = monitor.collect_aggregates(true);
    v.add_hop(std::move(r));
  }
  const PathAnalysis analysis = v.analyze(figure_one_layout());
  // X's own performance is still *reportable* (its pair of HOPs deployed).
  bool found_x = false;
  for (const DomainFinding& d : analysis.domains) {
    if (d.domain == "X") {
      found_x = true;
      EXPECT_TRUE(d.delay.usable());
    } else {
      EXPECT_FALSE(d.delay.usable());
    }
  }
  EXPECT_TRUE(found_x);
}

TEST(PathVerifier, RejectsDuplicateAndUnknownHops) {
  PathVerifier v;
  HopReceipts r;
  r.hop = 4;
  v.add_hop(r);
  HopReceipts dup;
  dup.hop = 4;
  EXPECT_THROW(v.add_hop(dup), std::invalid_argument);
  EXPECT_THROW((void)v.domain_delay(4, 99), std::out_of_range);
  EXPECT_THROW((void)v.domain_loss(99, 4), std::out_of_range);
}

TEST(PathVerifier, AnalyzeValidatesLayout) {
  PathVerifier v;
  PathLayout bad;
  bad.hops = {1, 2};
  bad.domain_of = {"A"};
  EXPECT_THROW((void)v.analyze(bad), std::invalid_argument);
}

}  // namespace
}  // namespace vpm::core
