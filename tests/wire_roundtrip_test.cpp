// Byte-level receipt egress round trip: collector drain -> WireExporter
// (receipt_batch sections, size-capped chunks, sealed envelopes) ->
// ReceiptStore -> WireImporter -> recovered drains `==` the direct drain.
//
// The wire format carries times as 3-byte microsecond offsets (§7.1), so
// the harness quantizes every observation time to 1 µs — after which the
// round trip must be EXACT, over seeds × digest modes × shard counts,
// chunk caps small enough to straddle paths across chunks, and workloads
// long enough to roll batch epochs.
#include <gtest/gtest.h>

#include <cstddef>
#include <utility>
#include <vector>

#include "collector/sharded_collector.hpp"
#include "core/receipt_sink.hpp"
#include "dissem/receipt_store.hpp"
#include "dissem/wire_exporter.hpp"
#include "dissem/wire_importer.hpp"
#include "trace/synthetic_trace.hpp"

namespace vpm {
namespace {

constexpr dissem::DomainId kProducer = 7;
constexpr dissem::DomainKey kKey = 0xFEEDFACE;

std::vector<net::Packet> quantize_us(std::vector<net::Packet> packets) {
  for (net::Packet& p : packets) {
    p.origin_time =
        net::Timestamp{p.origin_time.nanoseconds() / 1000 * 1000};
  }
  return packets;
}

/// The consumer's PathId table: same construction as MonitoringCache's.
std::vector<net::PathId> path_table(
    const collector::MonitoringCache::Config& cfg,
    const std::vector<net::PrefixPair>& paths) {
  std::vector<net::PathId> out;
  out.reserve(paths.size());
  for (const net::PrefixPair& pair : paths) {
    out.push_back(net::PathId{
        .header_spec_id = cfg.protocol.header_spec.id(),
        .prefixes = pair,
        .previous_hop = cfg.previous_hop,
        .next_hop = cfg.next_hop,
        .max_diff = cfg.max_diff,
    });
  }
  return out;
}

struct RoundTrip {
  std::vector<core::IndexedPathDrain> direct;
  std::vector<core::IndexedPathDrain> recovered;
  dissem::WireExporter::Stats stats;
  std::size_t accepted = 0;
  std::size_t rejected = 0;
};

RoundTrip run_round_trip(std::uint64_t seed, net::DigestMode mode,
                         std::size_t shard_count,
                         std::size_t max_chunk_bytes,
                         std::size_t path_count = 32,
                         std::size_t producer_threads = 0) {
  trace::MultiPathConfig mcfg;
  mcfg.path_count = path_count;
  mcfg.total_packets_per_second = 30'000.0;
  mcfg.duration = net::milliseconds(250);
  mcfg.seed = seed;
  trace::MultiPathTrace multi = trace::generate_multi_path(mcfg);
  multi.packets = quantize_us(std::move(multi.packets));

  collector::ShardedCollector::Config scfg;
  scfg.cache.protocol.digest_mode = mode;
  scfg.cache.protocol.marker_rate = 1.0 / 200.0;
  scfg.cache.tuning = core::HopTuning{.sample_rate = 0.02, .cut_rate = 1e-3};
  scfg.shard_count = shard_count;

  // Twin collectors over the identical observation sequence: drains are
  // destructive, so the direct reference and the exported stream each get
  // their own producer.
  collector::ShardedCollector direct(scfg, multi.paths);
  collector::ShardedCollector exported(scfg, multi.paths);
  if (producer_threads == 0) {
    direct.observe_batch(multi.packets);
    exported.observe_batch(multi.packets);
  } else {
    // Threaded ingest, then a stopped-worker export — the TSan coverage
    // for "exporter draining while shard workers stopped".  One producer
    // per collector keeps per-path FIFO order trivially.
    for (collector::ShardedCollector* c : {&direct, &exported}) {
      c->start(producer_threads);
      c->feed(0, multi.packets);
      c->stop();
    }
  }

  RoundTrip r;
  r.direct = direct.drain(/*flush_open=*/true);

  dissem::ReceiptStore store;
  store.register_producer(kProducer, kKey);
  dissem::WireExporter exporter(
      dissem::WireExporter::Config{.producer = kProducer,
                                   .key = kKey,
                                   .max_chunk_bytes = max_chunk_bytes},
      [&store](dissem::Envelope&& e) { store.ingest(std::move(e)); });
  exported.drain(exporter, /*flush_open=*/true);
  exporter.finish();
  r.stats = exporter.stats();
  r.accepted = store.accepted_count();
  r.rejected = store.rejected_count();

  const dissem::WireImporter importer(path_table(scfg.cache, multi.paths));
  r.recovered = importer.import(store, kProducer);
  return r;
}

// The acceptance matrix: ≥10 seeds × both digest modes × sharded {1,4}.
TEST(WireRoundTrip, RecoveredDrainsEqualDirectDrains) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    for (const net::DigestMode mode :
         {net::DigestMode::kSingle, net::DigestMode::kIndependent}) {
      for (const std::size_t shards : {std::size_t{1}, std::size_t{4}}) {
        const RoundTrip r = run_round_trip(seed, mode, shards, 64 * 1024);
        ASSERT_EQ(r.rejected, 0u);
        ASSERT_GE(r.accepted, 1u);
        EXPECT_EQ(r.recovered, r.direct)
            << "seed " << seed << " mode " << static_cast<int>(mode)
            << " shards " << shards;
        EXPECT_EQ(r.stats.paths, r.direct.size());
      }
    }
  }
}

// A chunk cap far below one drain forces many chunks and paths whose
// sections straddle chunk boundaries; the stream must still reassemble
// exactly, with dense envelope sequences.
TEST(WireRoundTrip, TinyChunksStraddlePathsAndStillRoundTrip) {
  const RoundTrip r =
      run_round_trip(3, net::DigestMode::kIndependent, 4, /*chunk=*/192);
  EXPECT_EQ(r.recovered, r.direct);
  // ~2 sections per path against a cap of 1-2 sections per chunk: the
  // stream must shatter into roughly one chunk per path, which straddles
  // most paths' sections across chunk boundaries.
  EXPECT_GT(r.stats.chunks, r.direct.size() / 2)
      << "a 192 B cap must split the drain into many chunks";
  EXPECT_EQ(r.rejected, 0u);
  EXPECT_EQ(r.accepted, r.stats.chunks);
}

TEST(WireRoundTripSharded, ThreadedIngestThenExportRoundTrips) {
  const RoundTrip r = run_round_trip(5, net::DigestMode::kIndependent,
                                     /*shards=*/4, 4 * 1024,
                                     /*paths=*/32, /*producers=*/2);
  EXPECT_EQ(r.recovered, r.direct);
  EXPECT_EQ(r.rejected, 0u);
}

// The constant-memory claim, measured: the exporter's resident buffer is
// bounded by the chunk cap (+ one section), independent of path count.
TEST(WireRoundTrip, ExporterBufferBoundedByChunkCapNotPathCount) {
  constexpr std::size_t kCap = 2048;
  const RoundTrip small = run_round_trip(6, net::DigestMode::kIndependent, 4,
                                         kCap, /*paths=*/64);
  const RoundTrip large = run_round_trip(6, net::DigestMode::kIndependent, 4,
                                         kCap, /*paths=*/512);
  EXPECT_EQ(small.recovered, small.direct);
  EXPECT_EQ(large.recovered, large.direct);
  EXPECT_GT(large.stats.chunks, small.stats.chunks);
  // Both peaks sit at/under the cap unless a single section overflows it
  // (none does at this tuning), so 8x the paths must not move the bound.
  EXPECT_EQ(small.stats.oversized_sections, 0u);
  EXPECT_EQ(large.stats.oversized_sections, 0u);
  EXPECT_LE(small.stats.peak_buffer_bytes, kCap);
  EXPECT_LE(large.stats.peak_buffer_bytes, kCap);
}

// Drains spanning more than one 3-byte epoch range (16.7 s of µs offsets)
// must split batches at round/receipt boundaries and still round-trip.
TEST(WireRoundTrip, EpochRollOverLongDrains) {
  net::PathId id{};
  id.prefixes = trace::default_prefix_pair();

  core::PathDrain drain;
  drain.samples.path = id;
  drain.samples.sample_threshold = 100;
  drain.samples.marker_threshold = 200;
  // 8 rounds of 3 records, 5 s apart: ~35 s of span, >2 epoch ranges.
  net::Timestamp t{};
  std::uint32_t pkt = 1;
  for (int round = 0; round < 8; ++round) {
    for (int i = 0; i < 3; ++i) {
      drain.samples.samples.push_back(core::SampleRecord{
          .pkt_id = pkt++, .time = t, .is_marker = i == 2});
      t += net::milliseconds(1);
    }
    t += net::seconds(5);
  }
  // 6 aggregates opening 5 s apart, each 1 s long.
  net::Timestamp open{net::seconds(100).nanoseconds()};
  for (int i = 0; i < 6; ++i) {
    core::AggregateReceipt agg;
    agg.path = id;
    agg.agg = core::AggId{.first = pkt++, .last = pkt++};
    agg.packet_count = 50 + static_cast<std::uint32_t>(i);
    agg.opened_at = open;
    agg.closed_at = open + net::seconds(1);
    drain.aggregates.push_back(agg);
    open += net::seconds(5);
  }

  dissem::ReceiptStore store;
  store.register_producer(kProducer, kKey);
  dissem::WireExporter exporter(
      dissem::WireExporter::Config{.producer = kProducer, .key = kKey},
      [&store](dissem::Envelope&& e) { store.ingest(std::move(e)); });
  core::emit_drain(exporter, 0, drain);
  exporter.finish();
  EXPECT_GT(exporter.stats().epoch_splits, 0u);
  EXPECT_GT(exporter.stats().sample_batches, 1u);
  EXPECT_GT(exporter.stats().aggregate_batches, 1u);

  const dissem::WireImporter importer({id});
  const auto recovered = importer.import(store, kProducer);
  ASSERT_EQ(recovered.size(), 1u);
  EXPECT_EQ(recovered[0].path, 0u);
  EXPECT_EQ(recovered[0].drain, drain);
}

// Periodic reporting: several drains shipped through one envelope
// sequence import as one round per drain, and the recovered stream
// equals the concatenation of the direct per-period drains.
TEST(WireRoundTrip, PeriodicDrainsImportAsRounds) {
  trace::MultiPathConfig mcfg;
  mcfg.path_count = 24;
  mcfg.total_packets_per_second = 30'000.0;
  mcfg.duration = net::milliseconds(300);
  mcfg.seed = 17;
  trace::MultiPathTrace multi = trace::generate_multi_path(mcfg);
  multi.packets = quantize_us(std::move(multi.packets));
  const std::size_t half = multi.packets.size() / 2;
  const std::span<const net::Packet> first(multi.packets.data(), half);
  const std::span<const net::Packet> second(multi.packets.data() + half,
                                            multi.packets.size() - half);

  collector::ShardedCollector::Config scfg;
  scfg.cache.tuning = core::HopTuning{.sample_rate = 0.02, .cut_rate = 1e-3};
  scfg.shard_count = 4;
  collector::ShardedCollector direct(scfg, multi.paths);
  collector::ShardedCollector exported(scfg, multi.paths);

  dissem::ReceiptStore store;
  store.register_producer(kProducer, kKey);
  dissem::WireExporter exporter(
      dissem::WireExporter::Config{.producer = kProducer, .key = kKey},
      [&store](dissem::Envelope&& e) { store.ingest(std::move(e)); });

  std::vector<core::IndexedPathDrain> expected;
  for (const std::span<const net::Packet> period : {first, second}) {
    direct.observe_batch(period);
    exported.observe_batch(period);
    const bool last = period.data() == second.data();
    for (core::IndexedPathDrain& d : direct.drain(last)) {
      expected.push_back(std::move(d));
    }
    exported.drain(exporter, last);
  }
  exporter.finish();
  ASSERT_EQ(store.rejected_count(), 0u);

  const dissem::WireImporter importer(path_table(scfg.cache, multi.paths));
  const auto recovered = importer.import(store, kProducer);
  ASSERT_EQ(recovered.size(), 2 * multi.paths.size());
  EXPECT_EQ(recovered, expected);
}

core::PathDrain single_path_drain(const net::PathId& id,
                                  std::int64_t base_us,
                                  bool with_aggregate) {
  core::PathDrain d;
  d.samples.path = id;
  d.samples.sample_threshold = 10;
  d.samples.marker_threshold = 20;
  d.samples.samples.push_back(core::SampleRecord{
      .pkt_id = static_cast<net::PacketDigest>(base_us),
      .time = net::Timestamp{} + net::microseconds(base_us),
      .is_marker = true});
  if (with_aggregate) {
    core::AggregateReceipt agg;
    agg.path = id;
    agg.agg = core::AggId{.first = 1, .last = 2};
    agg.packet_count = 5;
    agg.opened_at = net::Timestamp{} + net::microseconds(base_us + 100);
    agg.closed_at = agg.opened_at + net::microseconds(50);
    d.aggregates.push_back(agg);
  }
  return d;
}

// A SINGLE-path producer reporting periodically: the first path key of
// round N+1 immediately repeats round N's, so round detection cannot rely
// on a key change.  With aggregates in the round the importer's fallback
// (sample section after the path's aggregates = new round) applies even
// without an explicit mark.
TEST(WireRoundTrip, SinglePathPeriodicRoundsImportSeparately) {
  net::PathId id{};
  id.prefixes = trace::default_prefix_pair();
  const auto d1 = single_path_drain(id, 100, /*with_aggregate=*/true);
  const auto d2 = single_path_drain(id, 1000, /*with_aggregate=*/true);

  dissem::ReceiptStore store;
  store.register_producer(kProducer, kKey);
  dissem::WireExporter exporter(
      dissem::WireExporter::Config{.producer = kProducer, .key = kKey},
      [&store](dissem::Envelope&& e) { store.ingest(std::move(e)); });
  core::emit_drain(exporter, 0, d1);  // no end_round(): fallback path
  core::emit_drain(exporter, 0, d2);
  exporter.finish();

  const dissem::WireImporter importer({id});
  const auto recovered = importer.import(store, kProducer);
  ASSERT_EQ(recovered.size(), 2u);
  EXPECT_EQ(recovered[0].drain, d1);
  EXPECT_EQ(recovered[1].drain, d2);

  // import_hop concatenates the rounds for the verifier.
  const core::HopReceipts hop = importer.import_hop(store, kProducer, 2);
  EXPECT_EQ(hop.samples.samples.size(), 2u);
  EXPECT_EQ(hop.aggregates.size(), 2u);
}

// Sample-only rounds carry no in-round cue at all, so the round boundary
// must be marked explicitly (end_round(), or a per-period exporter whose
// finish() writes the mark); unmarked they merge — the documented wire
// ambiguity with an epoch split.
TEST(WireRoundTrip, SampleOnlyRoundsNeedExplicitRoundMarks) {
  net::PathId id{};
  id.prefixes = trace::default_prefix_pair();
  const auto d1 = single_path_drain(id, 100, /*with_aggregate=*/false);
  const auto d2 = single_path_drain(id, 1000, /*with_aggregate=*/false);
  const dissem::WireImporter importer({id});

  {
    dissem::ReceiptStore store;
    store.register_producer(kProducer, kKey);
    dissem::WireExporter exporter(
        dissem::WireExporter::Config{.producer = kProducer, .key = kKey},
        [&store](dissem::Envelope&& e) { store.ingest(std::move(e)); });
    core::emit_drain(exporter, 0, d1);
    exporter.end_round();
    core::emit_drain(exporter, 0, d2);
    exporter.finish();
    const auto recovered = importer.import(store, kProducer);
    ASSERT_EQ(recovered.size(), 2u);
    EXPECT_EQ(recovered[0].drain, d1);
    EXPECT_EQ(recovered[1].drain, d2);
  }
  {
    dissem::ReceiptStore store;
    store.register_producer(kProducer, kKey);
    dissem::WireExporter exporter(
        dissem::WireExporter::Config{.producer = kProducer, .key = kKey},
        [&store](dissem::Envelope&& e) { store.ingest(std::move(e)); });
    core::emit_drain(exporter, 0, d1);  // no mark: indistinguishable from
    core::emit_drain(exporter, 0, d2);  // an epoch split, merges
    exporter.finish();
    const auto recovered = importer.import(store, kProducer);
    ASSERT_EQ(recovered.size(), 1u);
    EXPECT_EQ(recovered[0].drain.samples.samples.size(), 2u);
  }
}

// A successor exporter continuing the envelope sequence starts after the
// predecessor's closing round mark, so per-period exporters need no
// manual end_round() calls at all.
TEST(WireRoundTrip, PerPeriodExportersChainThroughSequenceNumbers) {
  net::PathId id{};
  id.prefixes = trace::default_prefix_pair();
  const auto d1 = single_path_drain(id, 100, /*with_aggregate=*/false);
  const auto d2 = single_path_drain(id, 1000, /*with_aggregate=*/false);

  dissem::ReceiptStore store;
  store.register_producer(kProducer, kKey);
  const auto ship = [&store](dissem::Envelope&& e) {
    store.ingest(std::move(e));
  };
  dissem::WireExporter first(
      dissem::WireExporter::Config{.producer = kProducer, .key = kKey},
      ship);
  core::emit_drain(first, 0, d1);
  first.finish();
  dissem::WireExporter second(
      dissem::WireExporter::Config{.producer = kProducer,
                                   .key = kKey,
                                   .first_sequence = first.next_sequence()},
      ship);
  core::emit_drain(second, 0, d2);
  second.finish();
  ASSERT_EQ(store.rejected_count(), 0u);

  const dissem::WireImporter importer({id});
  const auto recovered = importer.import(store, kProducer);
  ASSERT_EQ(recovered.size(), 2u);
  EXPECT_EQ(recovered[0].drain, d1);
  EXPECT_EQ(recovered[1].drain, d2);
}

// import_hop rebuilds a single-path producer's receipts for the verifier.
TEST(WireRoundTrip, ImportHopRebuildsHopReceipts) {
  net::PathId id{};
  id.prefixes = trace::default_prefix_pair();
  core::PathDrain drain;
  drain.samples.path = id;
  drain.samples.sample_threshold = 5;
  drain.samples.marker_threshold = 7;
  drain.samples.samples.push_back(core::SampleRecord{
      .pkt_id = 9, .time = net::Timestamp{1000}, .is_marker = true});

  dissem::ReceiptStore store;
  store.register_producer(kProducer, kKey);
  dissem::WireExporter exporter(
      dissem::WireExporter::Config{.producer = kProducer, .key = kKey},
      [&store](dissem::Envelope&& e) { store.ingest(std::move(e)); });
  core::emit_drain(exporter, 0, drain);
  exporter.finish();

  const dissem::WireImporter importer({id});
  const core::HopReceipts hop = importer.import_hop(store, kProducer, 4);
  EXPECT_EQ(hop.hop, 4u);
  EXPECT_EQ(hop.samples, drain.samples);
  EXPECT_TRUE(hop.aggregates.empty());
}

}  // namespace
}  // namespace vpm
