// Epoch lifecycle at the collector layer: TTL eviction drains receipts
// through the normal sink path, arena compaction is receipt-invisible, the
// config is validated, and the sharded collector's lifecycle pass emits
// eviction drains in ascending global path order — with receipts for
// never-evicted paths byte-identical to a lifecycle-free cache.
#include <gtest/gtest.h>

#include <limits>
#include <vector>

#include "collector/monitoring_cache.hpp"
#include "collector/sharded_collector.hpp"
#include "core/path_state.hpp"
#include "core/receipt_sink.hpp"
#include "helpers.hpp"
#include "trace/synthetic_trace.hpp"

namespace vpm {
namespace {

collector::MonitoringCache::Config cache_config() {
  collector::MonitoringCache::Config cfg;
  cfg.protocol = test::test_protocol();
  cfg.protocol.marker_rate = 1.0 / 100.0;
  cfg.tuning = core::HopTuning{.sample_rate = 0.05, .cut_rate = 1e-3};
  return cfg;
}

/// A multi-path workload plus shifted-time copies for later phases.
struct Workload {
  trace::MultiPathTrace multi;
  std::vector<net::Packet> phase(net::Duration shift,
                                 std::size_t only_paths_below) const {
    std::vector<net::Packet> out;
    for (std::size_t i = 0; i < multi.packets.size(); ++i) {
      if (multi.path_of[i] >= only_paths_below) continue;
      net::Packet p = multi.packets[i];
      p.origin_time += shift;
      out.push_back(p);
    }
    return out;
  }
};

Workload make_workload(std::uint64_t seed, std::size_t paths = 8) {
  trace::MultiPathConfig mcfg;
  mcfg.path_count = paths;
  mcfg.total_packets_per_second = 40'000.0;
  mcfg.duration = net::milliseconds(200);
  mcfg.seed = seed;
  return Workload{trace::generate_multi_path(mcfg)};
}

TEST(Lifecycle, ConfigValidation) {
  const Workload w = make_workload(1);
  auto cfg = cache_config();

  cfg.lifecycle = collector::LifecycleConfig{.evict_idle = true,
                                             .idle_ttl = net::Duration{0}};
  EXPECT_THROW(collector::MonitoringCache(cfg, w.multi.paths),
               std::invalid_argument)
      << "zero TTL with eviction enabled must be rejected";

  cfg.lifecycle = collector::LifecycleConfig{
      .evict_idle = true, .idle_ttl = net::milliseconds(-5)};
  EXPECT_THROW(collector::MonitoringCache(cfg, w.multi.paths),
               std::invalid_argument)
      << "negative TTL must be rejected";

  cfg.lifecycle = collector::LifecycleConfig{
      .compact_garbage_fraction = 1.5};
  EXPECT_THROW(collector::MonitoringCache(cfg, w.multi.paths),
               std::invalid_argument)
      << "a garbage watermark above capacity could never fire";

  cfg.lifecycle = collector::LifecycleConfig{
      .compact_garbage_fraction = -0.1};
  EXPECT_THROW(collector::MonitoringCache(cfg, w.multi.paths),
               std::invalid_argument);

  cfg.lifecycle = collector::LifecycleConfig{
      .compact_garbage_fraction = std::numeric_limits<double>::quiet_NaN()};
  EXPECT_THROW(collector::MonitoringCache(cfg, w.multi.paths),
               std::invalid_argument);

  // Disabled eviction with a zero TTL is the valid default.
  cfg.lifecycle = collector::LifecycleConfig{};
  EXPECT_NO_THROW(collector::MonitoringCache(cfg, w.multi.paths));
}

TEST(Lifecycle, ArenaAccountingSplitsLiveAndGarbage) {
  const Workload w = make_workload(2);
  collector::MonitoringCache cache(cache_config(), w.multi.paths);
  cache.observe_batch(w.multi.packets);

  const core::PathStateSoA& soa = cache.state();
  EXPECT_EQ(soa.arena_live_bytes() + soa.arena_garbage_bytes(),
            soa.arena_bytes());
  // Slice growth relocates: a real workload leaves relocation garbage.
  EXPECT_GT(soa.arena_bytes(), 0u);
  EXPECT_GT(soa.arena_garbage_bytes(), 0u);
  EXPECT_GT(soa.arena_live_bytes(), 0u);
}

TEST(Lifecycle, CompactionReclaimsGarbageAndPreservesReceipts) {
  const Workload w = make_workload(3);
  collector::MonitoringCache compacted(cache_config(), w.multi.paths);
  collector::MonitoringCache plain(cache_config(), w.multi.paths);

  // Feed in two halves with a mid-stream compaction on one cache.
  const std::size_t half = w.multi.packets.size() / 2;
  const std::span<const net::Packet> all{w.multi.packets};
  compacted.observe_batch(all.subspan(0, half));
  plain.observe_batch(all.subspan(0, half));

  const std::size_t before = compacted.state().arena_bytes();
  const std::size_t garbage = compacted.arena_garbage_bytes();
  ASSERT_GT(garbage, 0u);
  const std::size_t reclaimed = compacted.compact_arenas();
  EXPECT_EQ(reclaimed, garbage) << "compaction reclaims exactly the garbage";
  EXPECT_EQ(compacted.state().arena_bytes(), before - reclaimed);
  EXPECT_EQ(compacted.arena_garbage_bytes(), 0u);

  compacted.observe_batch(all.subspan(half));
  plain.observe_batch(all.subspan(half));

  EXPECT_EQ(compacted.drain_all(/*flush_open=*/true),
            plain.drain_all(/*flush_open=*/true))
      << "compaction must be receipt-invisible";
}

TEST(Lifecycle, TtlEvictionDrainsReceiptsThenReclaims) {
  const Workload w = make_workload(4);
  auto cfg = cache_config();
  cfg.lifecycle = collector::LifecycleConfig{
      .evict_idle = true,
      .idle_ttl = net::milliseconds(300),
      .compact_garbage_fraction = 0.0,  // compact at any garbage
  };
  collector::MonitoringCache cache(cfg, w.multi.paths);
  cache.observe_batch(w.multi.packets);

  const std::uint64_t observed_before =
      cache.state().path_observed_packets(0);

  // Not yet idle: nothing happens.
  core::VectorSink early;
  const collector::LifecycleReport none = cache.run_lifecycle(
      net::Timestamp{net::milliseconds(250).nanoseconds()}, early);
  EXPECT_EQ(none.evicted_paths, 0u);
  EXPECT_TRUE(early.stream().empty());

  // Far past the horizon: every path with state evicts, draining its
  // receipts (ascending index), and the all-garbage arenas compact away.
  core::VectorSink sink;
  const collector::LifecycleReport report =
      cache.run_lifecycle(net::Timestamp{net::seconds(2).nanoseconds()},
                          sink);
  EXPECT_GT(report.evicted_paths, 0u);
  EXPECT_EQ(report.compactions, 1u);
  EXPECT_EQ(cache.state().arena_bytes(), 0u)
      << "all slices were evicted, so compaction must empty the arenas";
  const auto& stream = sink.stream();
  ASSERT_EQ(stream.size(), report.evicted_paths);
  for (std::size_t i = 1; i < stream.size(); ++i) {
    EXPECT_LT(stream[i - 1].path, stream[i].path)
        << "eviction drains ascend by path index";
  }
  // The observed-packet derivation stays honest across the dropped
  // temp-buffer records.
  EXPECT_EQ(cache.state().path_observed_packets(0), observed_before);
  EXPECT_EQ(report.dropped_buffered_records,
            cache.lifecycle_totals().dropped_buffered_records);

  // A second pass finds nothing left.
  core::VectorSink again;
  EXPECT_EQ(cache
                .run_lifecycle(net::Timestamp{net::seconds(3).nanoseconds()},
                               again)
                .evicted_paths,
            0u);

  // Revival: an evicted path monitors again from scratch.
  cache.observe_batch(w.phase(net::seconds(3), w.multi.paths.size()));
  EXPECT_GT(cache.state().arena_bytes(), 0u);
  const auto drains = cache.drain_all(/*flush_open=*/true);
  std::size_t records = 0;
  for (const core::PathDrain& d : drains) records += d.samples.samples.size();
  EXPECT_GT(records, 0u) << "revived paths must produce receipts again";
}

// Paths kept alive across a lifecycle pass must ship byte-identical
// receipts to a lifecycle-free cache; expired paths' receipts all appear
// (in the eviction drain), just earlier.
TEST(Lifecycle, EvictionPreservesConcatenatedReceiptStreams) {
  const Workload w = make_workload(5);
  auto cfg = cache_config();
  cfg.lifecycle = collector::LifecycleConfig{
      .evict_idle = true, .idle_ttl = net::milliseconds(300)};
  collector::MonitoringCache lifecycle(cfg, w.multi.paths);
  collector::MonitoringCache plain(cache_config(), w.multi.paths);

  // Phase 1: every path.  Keepalive: paths 0..3 at +500 ms.  Lifecycle at
  // 700 ms evicts paths 4..7 (idle 500 ms) but keeps 0..3 (idle 200 ms).
  lifecycle.observe_batch(w.multi.packets);
  plain.observe_batch(w.multi.packets);
  const auto keepalive = w.phase(net::milliseconds(500), 4);
  ASSERT_FALSE(keepalive.empty());
  lifecycle.observe_batch(keepalive);
  plain.observe_batch(keepalive);

  core::VectorSink evicted;
  const collector::LifecycleReport report = lifecycle.run_lifecycle(
      net::Timestamp{net::milliseconds(700).nanoseconds()}, evicted);
  EXPECT_EQ(report.evicted_paths, 4u);

  // Phase 2 on the surviving paths, then drain everything.
  const auto phase2 = w.phase(net::milliseconds(800), 4);
  lifecycle.observe_batch(phase2);
  plain.observe_batch(phase2);

  const auto lifecycle_final = lifecycle.drain_all(/*flush_open=*/true);
  const auto plain_final = plain.drain_all(/*flush_open=*/true);
  ASSERT_EQ(lifecycle_final.size(), plain_final.size());

  // Surviving paths: byte-identical.  Evicted paths: eviction drain +
  // final drain concatenate to the lifecycle-free stream (receipts moved
  // earlier, none lost — the open aggregate closed at eviction with the
  // same content it would close with at the end, no packets intervening).
  for (std::size_t p = 0; p < 4; ++p) {
    EXPECT_EQ(lifecycle_final[p], plain_final[p]) << "live path " << p;
  }
  for (const core::IndexedPathDrain& d : evicted.stream()) {
    core::PathDrain combined = d.drain;
    const core::PathDrain& later = lifecycle_final[d.path];
    combined.samples.samples.insert(combined.samples.samples.end(),
                                    later.samples.samples.begin(),
                                    later.samples.samples.end());
    combined.aggregates.insert(combined.aggregates.end(),
                               later.aggregates.begin(),
                               later.aggregates.end());
    EXPECT_EQ(combined, plain_final[d.path])
        << "evicted path " << d.path << " must conserve its receipts";
  }
}

// A path whose receipts were all drained earlier still holds arena caps;
// evicting it must reclaim them WITHOUT shipping an empty drain group (an
// empty eviction group on the wire would read as an extra reporting round
// for that path and age round-fed verifier state early).
TEST(Lifecycle, EmptyEvictionDrainsShipNothing) {
  const Workload w = make_workload(7);
  auto cfg = cache_config();
  cfg.lifecycle = collector::LifecycleConfig{
      .evict_idle = true, .idle_ttl = net::milliseconds(300)};
  collector::MonitoringCache cache(cfg, w.multi.paths);
  cache.observe_batch(w.multi.packets);
  (void)cache.drain_all(/*flush_open=*/true);  // everything disclosed

  core::VectorSink sink;
  const collector::LifecycleReport report = cache.run_lifecycle(
      net::Timestamp{net::seconds(2).nanoseconds()}, sink);
  EXPECT_GT(report.evicted_paths, 0u);
  EXPECT_TRUE(sink.stream().empty())
      << "already-drained paths have nothing left to disclose";
  EXPECT_EQ(cache.arena_live_bytes(), 0u);
}

// Live-capacity decay: a burst grows slices past the initial caps; quiet
// lifecycle passes then halve them back toward the floor, the released
// halves become compactable garbage, and receipts never change.
TEST(Lifecycle, DecayHalvesLowOccupancySlicesReceiptInvisibly) {
  const Workload w = make_workload(8);
  auto cfg = cache_config();
  cfg.lifecycle.decay_low_occupancy_drains = 2;
  collector::MonitoringCache cache(cfg, w.multi.paths);
  collector::MonitoringCache plain(cache_config(), w.multi.paths);
  cache.observe_batch(w.multi.packets);
  plain.observe_batch(w.multi.packets);

  const std::size_t live_before = cache.arena_live_bytes();
  ASSERT_GT(live_before, 0u);

  // Pass 1 only arms the streak counters (threshold 2): nothing halves.
  const auto first = cache.run_decay_pass();
  EXPECT_EQ(first.halved_slices, 0u);
  EXPECT_EQ(first.released_bytes, 0u);

  // Pass 2 halves every slice that stayed under a quarter occupancy.
  const auto second = cache.run_decay_pass();
  ASSERT_GT(second.halved_slices, 0u)
      << "burst-grown slices sit nearly empty and must decay";
  EXPECT_EQ(cache.arena_live_bytes(), live_before - second.released_bytes);
  EXPECT_EQ(cache.state().arena_bytes(),
            cache.arena_live_bytes() + cache.arena_garbage_bytes());
  EXPECT_EQ(cache.lifecycle_totals().decayed_slices, second.halved_slices);
  EXPECT_EQ(cache.lifecycle_totals().decayed_arena_bytes,
            second.released_bytes);

  // Sustained quiet decays to the initial-cap floor and stops there.
  for (int i = 0; i < 40; ++i) (void)cache.run_decay_pass();
  const auto settled = cache.run_decay_pass();
  EXPECT_EQ(settled.halved_slices, 0u)
      << "decay must reach a fixed point, not oscillate";
  const std::size_t floor_live = cache.arena_live_bytes();
  EXPECT_LT(floor_live, live_before);
  for (const core::PathSlot& s : cache.state().slots) {
    if (s.warm.buf_cap != 0) {
      EXPECT_GE(s.warm.buf_cap, 16u);
    }
    if (s.warm.ring_cap != 0) {
      EXPECT_GE(s.warm.ring_cap, 8u);
      EXPECT_EQ(s.warm.ring_cap & (s.warm.ring_cap - 1), 0u)
          << "ring capacity must stay a power of two";
    }
    EXPECT_LE(s.hot.buf_size, s.warm.buf_cap);
    EXPECT_LE(s.hot.ring_size, s.warm.ring_cap);
  }

  // The released halves are garbage; compaction reclaims them for real.
  const std::size_t garbage = cache.arena_garbage_bytes();
  ASSERT_GT(garbage, 0u);
  EXPECT_EQ(cache.compact_arenas(), garbage);
  EXPECT_EQ(cache.state().arena_bytes(), floor_live);

  // Receipt-invisible: the decayed cache keeps monitoring and drains a
  // stream byte-identical to the never-decayed cache's.
  cache.observe_batch(w.phase(net::milliseconds(250), w.multi.paths.size()));
  plain.observe_batch(w.phase(net::milliseconds(250), w.multi.paths.size()));
  EXPECT_EQ(cache.drain_all(/*flush_open=*/true),
            plain.drain_all(/*flush_open=*/true));
}

// The sharded collector's decay pass must make the identical per-path
// decisions the single cache makes (decay state is per path, not per
// shard).
TEST(ShardedLifecycle, DecayMatchesSingleCache) {
  const Workload w = make_workload(9);
  auto cfg = cache_config();
  cfg.lifecycle.decay_low_occupancy_drains = 2;

  collector::MonitoringCache single(cfg, w.multi.paths);
  collector::ShardedCollector::Config scfg;
  scfg.cache = cfg;
  scfg.shard_count = 4;
  collector::ShardedCollector sharded(scfg, w.multi.paths);

  single.observe_batch(w.multi.packets);
  sharded.observe_batch(w.multi.packets);

  const net::Timestamp now{net::milliseconds(250).nanoseconds()};
  core::NullSink null;
  for (int pass = 0; pass < 3; ++pass) {
    const collector::LifecycleReport s1 = single.run_lifecycle(now, null);
    const collector::LifecycleReport s2 = sharded.run_lifecycle(now, null);
    EXPECT_EQ(s2.decayed_slices, s1.decayed_slices) << "pass " << pass;
    EXPECT_EQ(s2.decayed_arena_bytes, s1.decayed_arena_bytes)
        << "pass " << pass;
  }
  EXPECT_EQ(sharded.arena_live_bytes(), single.arena_live_bytes());
}

TEST(ShardedLifecycle, MatchesSingleCacheLifecycle) {
  const Workload w = make_workload(6);
  auto cfg = cache_config();
  cfg.lifecycle = collector::LifecycleConfig{
      .evict_idle = true,
      .idle_ttl = net::milliseconds(300),
      .compact_garbage_fraction = 0.0,
  };

  collector::MonitoringCache single(cfg, w.multi.paths);
  collector::ShardedCollector::Config scfg;
  scfg.cache = cfg;
  scfg.shard_count = 4;
  collector::ShardedCollector sharded(scfg, w.multi.paths);

  single.observe_batch(w.multi.packets);
  sharded.observe_batch(w.multi.packets);

  // Drain the periodic round first (both), then run the lifecycle pass.
  core::VectorSink single_drain;
  single.drain_all(single_drain, /*flush_open=*/false);
  core::VectorSink sharded_drain;
  sharded.drain(sharded_drain, /*flush_open=*/false);
  ASSERT_EQ(sharded_drain.stream(), single_drain.stream());

  const net::Timestamp now{net::seconds(2).nanoseconds()};
  core::VectorSink single_evicted;
  const collector::LifecycleReport single_report =
      single.run_lifecycle(now, single_evicted);
  core::VectorSink sharded_evicted;
  const collector::LifecycleReport sharded_report =
      sharded.run_lifecycle(now, sharded_evicted);

  EXPECT_EQ(sharded_report.evicted_paths, single_report.evicted_paths);
  EXPECT_EQ(sharded_report.dropped_buffered_records,
            single_report.dropped_buffered_records);
  EXPECT_EQ(sharded_evicted.stream(), single_evicted.stream())
      << "sharded eviction drains must match the single cache's, in "
         "ascending global order";
  EXPECT_EQ(sharded.arena_bytes(), 0u);
  EXPECT_EQ(sharded.arena_garbage_bytes(), 0u);
}

}  // namespace
}  // namespace vpm
