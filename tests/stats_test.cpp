// Unit + property tests for the statistics substrate: quantile estimation
// with binomial confidence intervals (the Sommers-style estimator VPM uses
// for delay quantiles) and the Figure-2 accuracy scoring.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <random>
#include <vector>

#include "stats/binomial.hpp"
#include "stats/delay_accuracy.hpp"
#include "stats/quantile.hpp"
#include "stats/summary.hpp"

namespace vpm::stats {
namespace {

TEST(ZValue, KnownCriticalValues) {
  EXPECT_NEAR(z_value(0.95), 1.9600, 1e-3);
  EXPECT_NEAR(z_value(0.99), 2.5758, 1e-3);
  EXPECT_NEAR(z_value(0.90), 1.6449, 1e-3);
}

TEST(ZValue, RejectsDegenerateConfidence) {
  EXPECT_THROW((void)z_value(0.0), std::invalid_argument);
  EXPECT_THROW((void)z_value(1.0), std::invalid_argument);
}

TEST(QuantileIndexInterval, ClampsToValidIndices) {
  const auto iv = quantile_index_interval(10, 0.99, 0.95);
  EXPECT_LT(iv.hi, 10u);
  EXPECT_LE(iv.lo, iv.hi);
  const auto iv0 = quantile_index_interval(0, 0.5, 0.95);
  EXPECT_EQ(iv0.lo, 0u);
  EXPECT_EQ(iv0.hi, 0u);
}

TEST(QuantileIndexInterval, WidensWithConfidence) {
  const auto narrow = quantile_index_interval(10'000, 0.9, 0.80);
  const auto wide = quantile_index_interval(10'000, 0.9, 0.99);
  EXPECT_GE(narrow.lo, wide.lo);
  EXPECT_LE(narrow.hi, wide.hi);
}

TEST(WilsonInterval, CoversTrueProportion) {
  std::mt19937_64 rng(5);
  const double p = 0.07;
  int covered = 0;
  constexpr int kTrials = 300;
  for (int t = 0; t < kTrials; ++t) {
    std::size_t successes = 0;
    constexpr std::size_t kN = 2000;
    for (std::size_t i = 0; i < kN; ++i) {
      if (std::uniform_real_distribution<double>(0, 1)(rng) < p) ++successes;
    }
    const auto iv = wilson_interval(successes, kN, 0.95);
    if (iv.lower <= p && p <= iv.upper) ++covered;
  }
  // 95% nominal coverage; allow slack for randomness.
  EXPECT_GT(covered, kTrials * 0.90);
}

TEST(WilsonInterval, EdgeCases) {
  const auto zero = wilson_interval(0, 100, 0.95);
  EXPECT_EQ(zero.estimate, 0.0);
  EXPECT_EQ(zero.lower, 0.0);
  EXPECT_GT(zero.upper, 0.0);
  const auto all = wilson_interval(100, 100, 0.95);
  EXPECT_EQ(all.estimate, 1.0);
  EXPECT_EQ(all.upper, 1.0);
  EXPECT_THROW((void)wilson_interval(5, 4, 0.95), std::invalid_argument);
}

TEST(SortedQuantile, NearestRankSemantics) {
  const std::vector<double> v = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  EXPECT_EQ(sorted_quantile(v, 0.0), 1.0);
  EXPECT_EQ(sorted_quantile(v, 0.1), 1.0);
  EXPECT_EQ(sorted_quantile(v, 0.5), 5.0);
  EXPECT_EQ(sorted_quantile(v, 0.91), 10.0);
  EXPECT_EQ(sorted_quantile(v, 1.0), 10.0);
}

TEST(SortedQuantile, Validation) {
  const std::vector<double> empty;
  EXPECT_THROW((void)sorted_quantile(empty, 0.5), std::logic_error);
  const std::vector<double> one = {3.0};
  EXPECT_THROW((void)sorted_quantile(one, 1.5), std::invalid_argument);
  EXPECT_EQ(sorted_quantile(one, 0.99), 3.0);
}

TEST(QuantileEstimator, EstimateMatchesTruthOnLargeSamples) {
  std::mt19937_64 rng(17);
  std::lognormal_distribution<double> dist(1.0, 0.5);
  QuantileEstimator est;
  for (int i = 0; i < 100'000; ++i) est.add(dist(rng));
  const double true_median = std::exp(1.0);
  const auto q = est.estimate(0.5, 0.95);
  EXPECT_NEAR(q.value, true_median, 0.05);
  EXPECT_LE(q.lower, q.value);
  EXPECT_GE(q.upper, q.value);
  EXPECT_LT(q.accuracy(), 0.05);
}

TEST(QuantileEstimator, IntervalShrinksWithSampleSize) {
  std::mt19937_64 rng(23);
  std::normal_distribution<double> dist(10.0, 2.0);
  QuantileEstimator small;
  QuantileEstimator large;
  for (int i = 0; i < 500; ++i) small.add(dist(rng));
  for (int i = 0; i < 50'000; ++i) large.add(dist(rng));
  EXPECT_GT(small.estimate(0.9).accuracy(), large.estimate(0.9).accuracy());
}

TEST(QuantileEstimator, ConfidenceIntervalCoverage) {
  // Property: the 95% CI on the 0.9-quantile should cover the true value
  // in >= ~90% of repeated experiments.
  std::mt19937_64 rng(29);
  std::exponential_distribution<double> dist(0.25);
  const double truth = -std::log(0.1) / 0.25;
  int covered = 0;
  constexpr int kTrials = 200;
  for (int t = 0; t < kTrials; ++t) {
    QuantileEstimator est;
    for (int i = 0; i < 1000; ++i) est.add(dist(rng));
    const auto q = est.estimate(0.9, 0.95);
    if (q.lower <= truth && truth <= q.upper) ++covered;
  }
  EXPECT_GT(covered, kTrials * 0.88);
}

TEST(QuantileEstimator, ThrowsWithNoSamples) {
  QuantileEstimator est;
  EXPECT_THROW((void)est.estimate(0.5), std::logic_error);
}

TEST(QuantileEstimator, AddAfterEstimateReflectsNewData) {
  QuantileEstimator est;
  for (int i = 1; i <= 10; ++i) est.add(i);
  EXPECT_EQ(est.estimate(1.0).value, 10.0);
  est.add(100.0);
  EXPECT_EQ(est.estimate(1.0).value, 100.0);
}

TEST(DelayAccuracy, PerfectSamplesGiveTinyError) {
  std::mt19937_64 rng(31);
  std::gamma_distribution<double> dist(2.0, 3.0);
  std::vector<double> truth;
  for (int i = 0; i < 50'000; ++i) truth.push_back(dist(rng));
  const auto report = score_delay_estimate(truth, truth);
  EXPECT_EQ(report.worst_abs_error, 0.0);
  EXPECT_EQ(report.samples_used, truth.size());
  EXPECT_EQ(report.per_quantile.size(), kDelayQuantiles.size());
}

TEST(DelayAccuracy, ErrorGrowsAsSamplesShrink) {
  std::mt19937_64 rng(37);
  std::gamma_distribution<double> dist(2.0, 3.0);
  std::vector<double> truth;
  for (int i = 0; i < 200'000; ++i) truth.push_back(dist(rng));

  auto subsample = [&](double rate) {
    std::vector<double> out;
    std::bernoulli_distribution keep(rate);
    for (const double d : truth) {
      if (keep(rng)) out.push_back(d);
    }
    return out;
  };
  // Average over a few trials to keep the comparison stable.
  double err_big = 0.0;
  double err_small = 0.0;
  for (int t = 0; t < 5; ++t) {
    err_big += score_delay_estimate(truth, subsample(0.05)).worst_abs_error;
    err_small += score_delay_estimate(truth, subsample(0.0005)).worst_abs_error;
  }
  EXPECT_LT(err_big, err_small);
}

TEST(DelayAccuracy, RejectsEmptyInputs) {
  const std::vector<double> some = {1.0, 2.0};
  const std::vector<double> none;
  EXPECT_THROW(score_delay_estimate(none, some), std::invalid_argument);
  EXPECT_THROW(score_delay_estimate(some, none), std::invalid_argument);
}

TEST(OnlineSummary, MatchesDirectComputation) {
  OnlineSummary s;
  const std::vector<double> xs = {1, 2, 3, 4, 5, 6, 7, 8};
  for (const double x : xs) s.add(x);
  EXPECT_EQ(s.count(), xs.size());
  EXPECT_NEAR(s.mean(), 4.5, 1e-12);
  EXPECT_NEAR(s.variance(), 6.0, 1e-12);  // sample variance of 1..8
  EXPECT_EQ(s.min(), 1.0);
  EXPECT_EQ(s.max(), 8.0);
  EXPECT_NEAR(s.sum(), 36.0, 1e-9);
}

TEST(OnlineSummary, EmptyIsSafe) {
  const OnlineSummary s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 0.0);
  EXPECT_EQ(s.max(), 0.0);
}

}  // namespace
}  // namespace vpm::stats
