// The streaming receipt-egress API: ReceiptSink contract, the VectorSink
// adapter the legacy vector drains are built on, and the sink-based drain
// entry points at every layer (MonitoringCache, ShardedCollector,
// Pipeline::report) — pinned byte-identical to the legacy vector drains.
#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <vector>

#include "collector/pipeline.hpp"
#include "collector/sharded_collector.hpp"
#include "core/receipt_sink.hpp"
#include "sim/shard_scenario.hpp"
#include "trace/synthetic_trace.hpp"

namespace vpm {
namespace {

core::SampleReceipt sample_receipt_with(net::PathId path, std::size_t n) {
  core::SampleReceipt r;
  r.path = path;
  r.sample_threshold = 7;
  r.marker_threshold = 9;
  for (std::size_t i = 0; i < n; ++i) {
    r.samples.push_back(core::SampleRecord{
        .pkt_id = static_cast<net::PacketDigest>(i),
        .time = net::Timestamp{} + net::microseconds(static_cast<int>(i)),
        .is_marker = i + 1 == n});
  }
  return r;
}

TEST(ReceiptSink, VectorSinkCollectsStreamInOrder) {
  core::VectorSink sink;
  const net::PathId id{};
  sink.begin_path(3, id);
  sink.on_samples(sample_receipt_with(id, 2));
  core::AggregateReceipt agg;
  agg.path = id;
  agg.packet_count = 11;
  sink.on_aggregate(agg);
  sink.on_aggregate(agg);
  sink.end_path();
  sink.begin_path(5, id);
  sink.on_samples(sample_receipt_with(id, 0));
  sink.end_path();

  const auto& stream = sink.stream();
  ASSERT_EQ(stream.size(), 2u);
  EXPECT_EQ(stream[0].path, 3u);
  EXPECT_EQ(stream[0].drain.samples.samples.size(), 2u);
  EXPECT_EQ(stream[0].drain.aggregates.size(), 2u);
  EXPECT_EQ(stream[1].path, 5u);
  EXPECT_TRUE(stream[1].drain.aggregates.empty());
}

TEST(ReceiptSink, VectorSinkRejectsContractViolations) {
  core::VectorSink sink;
  const net::PathId id{};
  EXPECT_THROW(sink.on_samples(core::SampleReceipt{}), std::logic_error);
  EXPECT_THROW(sink.on_aggregate(core::AggregateReceipt{}), std::logic_error);
  EXPECT_THROW(sink.end_path(), std::logic_error);
  sink.begin_path(0, id);
  EXPECT_THROW(sink.begin_path(1, id), std::logic_error);
}

TEST(ReceiptSink, EmitDrainReplaysMaterializedDrains) {
  const net::PathId id{};
  core::PathDrain drain;
  drain.samples = sample_receipt_with(id, 3);
  drain.aggregates.resize(2);
  drain.aggregates[0].path = id;
  drain.aggregates[1].path = id;

  core::VectorSink sink;
  core::emit_drain(sink, 42, drain);
  ASSERT_EQ(sink.stream().size(), 1u);
  EXPECT_EQ(sink.stream()[0].path, 42u);
  EXPECT_EQ(sink.stream()[0].drain, drain);
}

// The sink-based drain is the primary API and the vector drain a
// VectorSink adapter over it; this pins the two byte-identical on a real
// workload, for both the single cache and the sharded collector.
TEST(ReceiptSink, CacheSinkDrainMatchesVectorDrain) {
  trace::MultiPathConfig mcfg;
  mcfg.path_count = 37;
  mcfg.total_packets_per_second = 40'000.0;
  mcfg.duration = net::milliseconds(300);
  mcfg.seed = 11;
  const auto multi = trace::generate_multi_path(mcfg);

  collector::MonitoringCache::Config ccfg;
  ccfg.tuning = core::HopTuning{.sample_rate = 0.02, .cut_rate = 1e-3};

  // Twin caches over the same trace: drains are destructive, so the two
  // entry points each get their own producer.
  collector::MonitoringCache a(ccfg, multi.paths);
  collector::MonitoringCache b(ccfg, multi.paths);
  a.observe_batch(multi.packets);
  b.observe_batch(multi.packets);

  core::VectorSink sink;
  a.drain_all(sink, /*flush_open=*/true);
  const std::vector<core::PathDrain> legacy =
      b.drain_all(/*flush_open=*/true);

  ASSERT_EQ(sink.stream().size(), legacy.size());
  for (std::size_t p = 0; p < legacy.size(); ++p) {
    EXPECT_EQ(sink.stream()[p].path, p);
    EXPECT_EQ(sink.stream()[p].drain, legacy[p]) << "path " << p;
  }
}

TEST(ReceiptSink, ShardedSinkDrainMatchesVectorDrain) {
  trace::MultiPathConfig mcfg;
  mcfg.path_count = 61;
  mcfg.total_packets_per_second = 40'000.0;
  mcfg.duration = net::milliseconds(300);
  mcfg.seed = 12;
  const auto multi = trace::generate_multi_path(mcfg);

  collector::ShardedCollector::Config scfg;
  scfg.cache.tuning = core::HopTuning{.sample_rate = 0.02, .cut_rate = 1e-3};
  scfg.shard_count = 4;

  collector::ShardedCollector a(scfg, multi.paths);
  collector::ShardedCollector b(scfg, multi.paths);
  a.observe_batch(multi.packets);
  b.observe_batch(multi.packets);

  core::VectorSink sink;
  a.drain(sink, /*flush_open=*/true);
  const auto legacy = b.drain(/*flush_open=*/true);
  EXPECT_EQ(sink.stream(), legacy);
}

TEST(ReceiptSink, PipelineReportStreamsEveryCollectorElement) {
  trace::TraceConfig tcfg;
  tcfg.prefixes = trace::default_prefix_pair();
  tcfg.packets_per_second = 20'000.0;
  tcfg.duration = net::milliseconds(400);
  tcfg.seed = 13;
  const auto trace = trace::generate_trace(tcfg);
  const std::vector<net::PrefixPair> paths = {tcfg.prefixes};

  collector::MonitoringCache::Config ccfg;
  ccfg.tuning = core::HopTuning{.sample_rate = 0.02, .cut_rate = 1e-3};

  collector::Pipeline pipeline;
  pipeline.append(std::make_unique<collector::CheckHeaderElement>());
  pipeline.append(std::make_unique<collector::VpmElement>(ccfg, paths));
  for (const net::Packet& p : trace) {
    pipeline.process(p, p.origin_time);
  }

  // Reference: a twin cache fed identically.
  collector::MonitoringCache twin(ccfg, paths);
  for (const net::Packet& p : trace) {
    twin.observe(p, p.origin_time);
  }

  core::VectorSink sink;
  pipeline.report(sink, /*flush_open=*/true);
  const auto expected = twin.drain_all(/*flush_open=*/true);
  ASSERT_EQ(sink.stream().size(), expected.size());
  EXPECT_EQ(sink.stream()[0].drain, expected[0]);

  // Non-collector elements contribute nothing; a second report after the
  // drain yields the path again, now empty of receipts.
  core::NullSink again;
  pipeline.report(again, /*flush_open=*/true);
  EXPECT_EQ(again.paths(), 1u);
  EXPECT_EQ(again.sample_records(), 0u);
  EXPECT_EQ(again.aggregates(), 0u);
}

}  // namespace
}  // namespace vpm
