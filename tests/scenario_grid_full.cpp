// The full detection-envelope grid: every scenario class x loss model x
// digest mode cell at five independent seeds.  Built as its own binary
// (vpm_scenario_grid) and labelled `scenario-full` so the tier-1 sweep
// skips it (`ctest -LE scenario-full`) and CI runs it as a dedicated
// step (`ctest -L scenario-full`).
#include <gtest/gtest.h>

#include "scenario_grid.hpp"

namespace vpm {
namespace {

class ScenarioGridFull
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(ScenarioGridFull, Envelope) {
  const auto [loss_i, mode_i] = GetParam();
  const sim::LossKind loss = test::kGridLossKinds[loss_i];
  const net::DigestMode mode = test::kGridModes[mode_i];
  for (const test::GridClass cls : test::kGridClasses) {
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
      test::check_cell(cls, loss, mode, seed);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllCells, ScenarioGridFull,
    ::testing::Combine(::testing::Range(0, 3), ::testing::Range(0, 2)),
    [](const ::testing::TestParamInfo<std::tuple<int, int>>& info) {
      return std::string(vpm::test::loss_tag(
                 vpm::test::kGridLossKinds[std::get<0>(info.param)])) +
             "_" +
             vpm::test::mode_tag(
                 vpm::test::kGridModes[std::get<1>(info.param)]);
    });

}  // namespace
}  // namespace vpm
