// Tests for the receipt-level join and reorder patch-up (Section 6.3):
// hand-built scenarios mirroring the paper's worked examples, plus
// end-to-end checks driven by real aggregators over simulated reordering.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "core/aggregator.hpp"
#include "core/alignment.hpp"
#include "core/config.hpp"
#include "loss/bernoulli.hpp"
#include "sim/path_run.hpp"
#include "trace/synthetic_trace.hpp"

namespace vpm::core {
namespace {

AggregateReceipt make_agg(std::uint32_t first, std::uint32_t last,
                          std::uint32_t count, double open_s, double close_s) {
  AggregateReceipt r;
  r.agg = AggId{first, last};
  r.packet_count = count;
  r.opened_at = net::Timestamp{} + net::seconds_f(open_s);
  r.closed_at = net::Timestamp{} + net::seconds_f(close_s);
  return r;
}

// ------------------------------------------------------- hand-built cases

TEST(Alignment, IdenticalSequencesAlignOneToOne) {
  const std::vector<AggregateReceipt> up = {
      make_agg(1, 9, 100, 0.0, 0.9),
      make_agg(10, 19, 200, 1.0, 1.9),
      make_agg(20, 29, 150, 2.0, 2.9),
  };
  const AlignmentResult r = align_aggregates(up, up, false);
  ASSERT_EQ(r.aligned.size(), 3u);
  EXPECT_EQ(r.boundaries_matched, 2u);
  for (const AlignedAggregate& a : r.aligned) {
    EXPECT_EQ(a.lost(), 0);
    EXPECT_EQ(a.up_receipts, 1u);
  }
  EXPECT_NEAR(r.aligned[0].duration_s(), 0.9, 1e-9);
}

TEST(Alignment, NestedPartitionsJoinToCoarser) {
  // Upstream coarse: [1..19][20..29]; downstream finer, extra cut at 10.
  const std::vector<AggregateReceipt> up = {
      make_agg(1, 19, 300, 0.0, 1.9),
      make_agg(20, 29, 150, 2.0, 2.9),
  };
  const std::vector<AggregateReceipt> down = {
      make_agg(1, 9, 100, 0.0, 0.9),
      make_agg(10, 19, 200, 1.0, 1.9),
      make_agg(20, 29, 150, 2.0, 2.9),
  };
  const AlignmentResult r = align_aggregates(up, down, false);
  ASSERT_EQ(r.aligned.size(), 2u);
  EXPECT_EQ(r.aligned[0].up_count, 300u);
  EXPECT_EQ(r.aligned[0].down_count, 300u);
  EXPECT_EQ(r.aligned[0].down_receipts, 2u);
  EXPECT_EQ(r.boundaries_merged_down, 1u);
}

TEST(Alignment, LostCutPacketMergesUpstreamBoundary) {
  // Paper §6.3's loss example: downstream misses the cut at packet 20, so
  // its aggregates merge across it and the join coarsens.
  const std::vector<AggregateReceipt> up = {
      make_agg(1, 19, 300, 0.0, 1.9),
      make_agg(20, 29, 150, 2.0, 2.9),   // cut id 20 lost downstream
      make_agg(30, 39, 100, 3.0, 3.9),
  };
  // Downstream never observed the cut at id 20, so its first aggregate
  // absorbed the survivors of [20..29] (449 = 300 + 150 - 1 lost).
  const std::vector<AggregateReceipt> down = {
      make_agg(1, 29, 449, 0.0, 2.9),
      make_agg(30, 39, 100, 3.0, 3.9),
  };
  const AlignmentResult r = align_aggregates(up, down, false);
  ASSERT_EQ(r.aligned.size(), 2u);
  // Joined aggregate 1 spans up receipts 1+2: 450 offered, 449 delivered.
  EXPECT_EQ(r.aligned[0].up_count, 450u);
  EXPECT_EQ(r.aligned[0].down_count, 449u);
  EXPECT_EQ(r.aligned[0].lost(), 1);
  EXPECT_EQ(r.boundaries_merged_up, 1u);
  EXPECT_NEAR(r.aligned[0].duration_s(), 2.9, 1e-9);  // 0.0 .. 2.9
  // The surviving boundary at id 30 still aligns exactly.
  EXPECT_EQ(r.aligned[1].lost(), 0);
  EXPECT_EQ(r.boundaries_matched, 1u);
}

TEST(Alignment, PaperReorderExampleMigration) {
  // Section 6.3: original sequence p1..p8, HOP-up partitions
  // {p1..p4}{p5..p8}; HOP-down observed <p1,p2,p3,p5,p4,p6,p7,p8> so its
  // receipts put p4 in the second aggregate.  Patch-up migrates p4 back.
  std::vector<AggregateReceipt> up = {
      make_agg(1, 4, 4, 0.0, 0.3),
      make_agg(5, 8, 4, 0.4, 0.7),
  };
  up[0].trans.before = {3, 4};
  up[0].trans.after = {5, 6};

  std::vector<AggregateReceipt> down = {
      make_agg(1, 3, 3, 0.0, 0.25),
      make_agg(5, 8, 5, 0.35, 0.7),
  };
  down[0].trans.before = {2, 3};
  down[0].trans.after = {5, 4};  // p4 observed after the cut

  const PatchupResult patched = patch_up(up, down);
  EXPECT_EQ(patched.migrations, 1u);
  EXPECT_EQ(patched.down[0].packet_count, 4u);
  EXPECT_EQ(patched.down[1].packet_count, 4u);

  const AlignmentResult r = align_aggregates(up, down, true);
  ASSERT_EQ(r.aligned.size(), 2u);
  EXPECT_EQ(r.aligned[0].lost(), 0);
  EXPECT_EQ(r.aligned[1].lost(), 0);
  EXPECT_EQ(r.migrations, 1u);
}

TEST(Alignment, MigrationInOppositeDirection) {
  // Downstream saw a packet BEFORE the cut that upstream saw after it.
  std::vector<AggregateReceipt> up = {
      make_agg(1, 3, 3, 0.0, 0.25),
      make_agg(5, 8, 5, 0.35, 0.7),
  };
  up[0].trans.before = {2, 3};
  up[0].trans.after = {5, 4};

  std::vector<AggregateReceipt> down = {
      make_agg(1, 4, 4, 0.0, 0.3),
      make_agg(5, 8, 4, 0.4, 0.7),
  };
  down[0].trans.before = {3, 4};
  down[0].trans.after = {5, 6};

  const PatchupResult patched = patch_up(up, down);
  EXPECT_EQ(patched.migrations, 1u);
  EXPECT_EQ(patched.down[0].packet_count, 3u);
  EXPECT_EQ(patched.down[1].packet_count, 5u);
}

TEST(Alignment, PatchupIgnoresUnmatchedBoundaries) {
  std::vector<AggregateReceipt> up = {
      make_agg(1, 4, 4, 0.0, 0.3),
      make_agg(9, 12, 4, 0.4, 0.7),  // boundary id 9
  };
  up[0].trans.after = {9};
  std::vector<AggregateReceipt> down = {
      make_agg(1, 4, 4, 0.0, 0.3),
      make_agg(20, 23, 4, 0.4, 0.7),  // different boundary id
  };
  down[0].trans.after = {20};
  const PatchupResult patched = patch_up(up, down);
  EXPECT_EQ(patched.migrations, 0u);
}

TEST(Alignment, EmptyInputsYieldNoAggregates) {
  const std::vector<AggregateReceipt> some = {make_agg(1, 2, 10, 0, 1)};
  const std::vector<AggregateReceipt> none;
  EXPECT_TRUE(align_aggregates(none, some).aligned.empty());
  EXPECT_TRUE(align_aggregates(some, none).aligned.empty());
}

// ------------------------------------------------ end-to-end via sim/core

struct TwoHopReceipts {
  std::vector<AggregateReceipt> up;
  std::vector<AggregateReceipt> down;
  std::size_t trace_size = 0;
  std::uint64_t delivered = 0;
};

TwoHopReceipts run_two_hops(double cut_rate, net::Duration j,
                            net::Duration jitter, loss::LossModel* loss,
                            std::uint64_t seed) {
  trace::TraceConfig tcfg;
  tcfg.prefixes = trace::default_prefix_pair();
  tcfg.packets_per_second = 20'000;
  tcfg.duration = net::seconds(2);
  tcfg.seed = seed;
  const auto trace = trace::generate_trace(tcfg);

  sim::PathEnvironment env;
  env.domains.resize(3);
  env.links.resize(2);
  env.seed = seed + 1;
  env.domains[1].loss = loss;
  env.domains[1].jitter = jitter;
  const sim::PathRunResult run = sim::run_path(trace, env);

  const net::DigestEngine engine;
  auto collect = [&](const sim::ObsSeq& obs) {
    Aggregator agg(engine, cut_threshold_for(cut_rate), j);
    for (const sim::Obs& o : obs) agg.observe(trace[o.pkt], o.when);
    auto closed = agg.take_closed();
    if (auto last = agg.flush_open(); last.has_value()) {
      auto tail = agg.take_closed();
      closed.insert(closed.end(), tail.begin(), tail.end());
      closed.push_back(*last);
    }
    std::vector<AggregateReceipt> receipts;
    receipts.reserve(closed.size());
    for (const AggregateData& d : closed) {
      AggregateReceipt r;
      r.agg = d.agg;
      r.packet_count = d.packet_count;
      r.trans = d.trans;
      r.opened_at = d.opened_at;
      r.closed_at = d.closed_at;
      receipts.push_back(std::move(r));
    }
    return receipts;
  };

  TwoHopReceipts out;
  out.up = collect(run.hop_observations[1]);    // domain 1 ingress
  out.down = collect(run.hop_observations[2]);  // domain 1 egress
  out.trace_size = trace.size();
  out.delivered = run.hop_observations[2].size();
  return out;
}

TEST(AlignmentEndToEnd, ExactLossRecoveredUnderGilbertLoss) {
  loss::BernoulliLoss loss(0.1, 99);
  const TwoHopReceipts r = run_two_hops(1e-3, net::milliseconds(10),
                                        net::Duration{0}, &loss, 5);
  const AlignmentResult aligned = align_aggregates(r.up, r.down, true);
  std::uint64_t offered = 0;
  std::uint64_t delivered = 0;
  for (const AlignedAggregate& a : aligned.aligned) {
    offered += a.up_count;
    delivered += a.down_count;
    EXPECT_GE(a.lost(), 0);
  }
  // The join must account for every packet exactly.
  EXPECT_EQ(offered, r.trace_size);
  EXPECT_EQ(delivered, r.delivered);
}

TEST(AlignmentEndToEnd, ReorderWithoutPatchupMiscounts) {
  // With jitter-induced reordering and patch-up disabled, some joined
  // aggregates show phantom loss or negative loss; patch-up repairs them.
  const net::Duration jitter = net::microseconds(400);
  const TwoHopReceipts r = run_two_hops(2e-3, net::milliseconds(10), jitter,
                                        nullptr, 7);
  const AlignmentResult raw = align_aggregates(r.up, r.down, false);
  const AlignmentResult fixed = align_aggregates(r.up, r.down, true);

  auto miscounted = [](const AlignmentResult& a) {
    std::size_t bad = 0;
    for (const AlignedAggregate& x : a.aligned) {
      if (x.lost() != 0) ++bad;
    }
    return bad;
  };
  // No packets were lost: every non-zero entry is a reorder artefact.
  EXPECT_GT(miscounted(raw), 0u) << "jitter did not straddle any boundary";
  EXPECT_EQ(miscounted(fixed), 0u);
  EXPECT_GT(fixed.migrations, 0u);
}

TEST(AlignmentEndToEnd, CountsConservedEvenWithoutPatchup) {
  const TwoHopReceipts r = run_two_hops(2e-3, net::milliseconds(10),
                                        net::microseconds(400), nullptr, 11);
  const AlignmentResult raw = align_aggregates(r.up, r.down, false);
  std::uint64_t up_total = 0;
  std::uint64_t down_total = 0;
  for (const AlignedAggregate& a : raw.aligned) {
    up_total += a.up_count;
    down_total += a.down_count;
  }
  EXPECT_EQ(up_total, r.trace_size);
  EXPECT_EQ(down_total, r.delivered);
}

}  // namespace
}  // namespace vpm::core
