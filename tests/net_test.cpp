// Unit tests for the net substrate: Bob hash, prefixes, digests, PathId,
// and the wire primitives.
#include <gtest/gtest.h>

#include <array>
#include <cstddef>
#include <random>
#include <set>
#include <vector>

#include "net/bob_hash.hpp"
#include "net/digest.hpp"
#include "net/packet.hpp"
#include "net/path_id.hpp"
#include "net/prefix.hpp"
#include "net/wire.hpp"

namespace vpm::net {
namespace {

std::vector<std::byte> bytes_of(const std::string& s) {
  std::vector<std::byte> out(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    out[i] = static_cast<std::byte>(s[i]);
  }
  return out;
}

// ---------------------------------------------------------------- BobHash

TEST(BobHash, DeterministicAcrossCalls) {
  const auto data = bytes_of("four score and seven years ago");
  EXPECT_EQ(bob_hash(data, 0), bob_hash(data, 0));
  EXPECT_EQ(bob_hash(data, 17), bob_hash(data, 17));
}

TEST(BobHash, SeedChangesOutput) {
  const auto data = bytes_of("four score and seven years ago");
  EXPECT_NE(bob_hash(data, 0), bob_hash(data, 1));
}

TEST(BobHash, EmptyInputHasStableValue) {
  const std::vector<std::byte> empty;
  EXPECT_EQ(bob_hash(empty, 0), bob_hash(empty, 0));
  EXPECT_NE(bob_hash(empty, 0), bob_hash(empty, 99));
}

TEST(BobHash, AllLengthsUpTo64AreDistinctish) {
  // Consecutive-length prefixes of the same buffer should not collide —
  // a weak but effective smoke test of the tail handling.
  std::vector<std::byte> buf(64);
  for (std::size_t i = 0; i < buf.size(); ++i) {
    buf[i] = static_cast<std::byte>(i * 37 + 1);
  }
  std::set<std::uint32_t> seen;
  for (std::size_t len = 0; len <= 64; ++len) {
    seen.insert(bob_hash({buf.data(), len}, 0));
  }
  EXPECT_EQ(seen.size(), 65u);
}

TEST(BobHash, AvalancheSingleBitFlip) {
  // Flipping one input bit should flip roughly half the output bits.
  std::mt19937_64 rng(7);
  double total_flipped = 0.0;
  int trials = 0;
  for (int t = 0; t < 200; ++t) {
    std::array<std::byte, 12> data{};
    for (auto& b : data) b = static_cast<std::byte>(rng() & 0xFF);
    const std::uint32_t base = bob_hash(data, 0);
    const std::size_t byte_i = rng() % data.size();
    const unsigned bit = static_cast<unsigned>(rng() % 8);
    data[byte_i] ^= static_cast<std::byte>(1u << bit);
    const std::uint32_t flipped = bob_hash(data, 0);
    total_flipped += __builtin_popcount(base ^ flipped);
    ++trials;
  }
  const double mean_flipped = total_flipped / trials;
  EXPECT_GT(mean_flipped, 12.0);
  EXPECT_LT(mean_flipped, 20.0);
}

TEST(BobHash, WordVariantMatchesItself) {
  const std::array<std::uint32_t, 3> words = {1u, 2u, 3u};
  EXPECT_EQ(bob_hash_words(words, 5), bob_hash_words(words, 5));
  EXPECT_NE(bob_hash_words(words, 5), bob_hash_words(words, 6));
}

TEST(BobHash, PairHelperEquivalentToWords) {
  const std::array<std::uint32_t, 2> words = {0xAABBCCDDu, 0x11223344u};
  EXPECT_EQ(bob_hash_pair(words[0], words[1], 9),
            bob_hash_words(words, 9));
}

TEST(BobHash, UniformityOverRandomKeys) {
  // Chi-squared over 64 bins for 64k random 16-byte keys; expect a value
  // around 63, certainly below 120.
  std::mt19937_64 rng(11);
  constexpr std::size_t kBins = 64;
  std::array<std::size_t, kBins> counts{};
  constexpr std::size_t kN = 65536;
  for (std::size_t i = 0; i < kN; ++i) {
    std::array<std::byte, 16> key{};
    for (auto& b : key) b = static_cast<std::byte>(rng() & 0xFF);
    counts[bob_hash(key, 0) >> 26] += 1;  // top 6 bits
  }
  const double expected = static_cast<double>(kN) / kBins;
  double chi2 = 0.0;
  for (const std::size_t c : counts) {
    const double d = static_cast<double>(c) - expected;
    chi2 += d * d / expected;
  }
  EXPECT_LT(chi2, 120.0);
}

// ----------------------------------------------------------------- Prefix

TEST(Ipv4Address, ParseAndFormatRoundTrip) {
  const auto a = Ipv4Address::parse("192.168.7.41");
  EXPECT_EQ(a.to_string(), "192.168.7.41");
  EXPECT_EQ(a, Ipv4Address(192, 168, 7, 41));
}

TEST(Ipv4Address, RejectsMalformedInput) {
  EXPECT_THROW(Ipv4Address::parse("1.2.3"), std::invalid_argument);
  EXPECT_THROW(Ipv4Address::parse("1.2.3.4.5"), std::invalid_argument);
  EXPECT_THROW(Ipv4Address::parse("1.2.3.256"), std::invalid_argument);
  EXPECT_THROW(Ipv4Address::parse("a.b.c.d"), std::invalid_argument);
  EXPECT_THROW(Ipv4Address::parse(""), std::invalid_argument);
}

TEST(Prefix, ContainsAddressesInsideOnly) {
  const auto p = Prefix::parse("10.20.0.0/16");
  EXPECT_TRUE(p.contains(Ipv4Address(10, 20, 0, 0)));
  EXPECT_TRUE(p.contains(Ipv4Address(10, 20, 255, 255)));
  EXPECT_FALSE(p.contains(Ipv4Address(10, 21, 0, 0)));
  EXPECT_FALSE(p.contains(Ipv4Address(11, 20, 0, 0)));
}

TEST(Prefix, ContainsNestedPrefixes) {
  const auto outer = Prefix::parse("10.0.0.0/8");
  const auto inner = Prefix::parse("10.20.0.0/16");
  EXPECT_TRUE(outer.contains(inner));
  EXPECT_FALSE(inner.contains(outer));
}

TEST(Prefix, ZeroLengthMatchesEverything) {
  const auto all = Prefix::parse("0.0.0.0/0");
  EXPECT_TRUE(all.contains(Ipv4Address(255, 255, 255, 255)));
  EXPECT_TRUE(all.contains(Ipv4Address(0, 0, 0, 1)));
}

TEST(Prefix, RejectsHostBitsAndBadLength) {
  EXPECT_THROW(Prefix(Ipv4Address(10, 0, 0, 1), 16), std::invalid_argument);
  EXPECT_THROW(Prefix(Ipv4Address(10, 0, 0, 0), 33), std::invalid_argument);
  EXPECT_THROW(Prefix::parse("10.0.0.0"), std::invalid_argument);
  EXPECT_THROW(Prefix::parse("10.0.0.0/40"), std::invalid_argument);
}

TEST(PrefixPair, OrderingAndHashUsable) {
  const PrefixPair a{Prefix::parse("10.0.0.0/16"), Prefix::parse("20.0.0.0/16")};
  const PrefixPair b{Prefix::parse("10.0.0.0/16"), Prefix::parse("20.1.0.0/16")};
  EXPECT_NE(a, b);
  EXPECT_NE(std::hash<PrefixPair>{}(a), std::hash<PrefixPair>{}(b));
}

// ----------------------------------------------------------------- Digest

Packet test_packet(std::uint32_t salt = 0) {
  Packet p;
  p.header.src = Ipv4Address(10, 1, 2, 3);
  p.header.dst = Ipv4Address(172, 16, 9, 8);
  p.header.src_port = 4242;
  p.header.dst_port = 80;
  p.header.ip_id = static_cast<std::uint16_t>(100 + salt);
  p.header.total_length = 400;
  p.header.protocol = IpProto::kTcp;
  p.payload_prefix = 0xDEADBEEFCAFEF00Dull + salt;
  return p;
}

TEST(DigestEngine, DeterministicPerPacket) {
  const DigestEngine engine;
  const Packet p = test_packet();
  EXPECT_EQ(engine.packet_id(p), engine.packet_id(p));
  EXPECT_EQ(engine.marker_value(p), engine.marker_value(p));
  EXPECT_EQ(engine.cut_value(p), engine.cut_value(p));
}

TEST(DigestEngine, IndependentModeDecorrelatesRoles) {
  const DigestEngine engine{HeaderSpec{}, DigestMode::kIndependent};
  const Packet p = test_packet();
  EXPECT_NE(engine.packet_id(p), engine.marker_value(p));
  EXPECT_NE(engine.packet_id(p), engine.cut_value(p));
}

TEST(DigestEngine, SingleModeUsesOneValue) {
  const DigestEngine engine{HeaderSpec{}, DigestMode::kSingle};
  const Packet p = test_packet();
  EXPECT_EQ(engine.packet_id(p), engine.marker_value(p));
  EXPECT_EQ(engine.packet_id(p), engine.cut_value(p));
}

TEST(DigestEngine, HeaderSpecControlsInputs) {
  HeaderSpec no_ports;
  no_ports.ports = false;
  const DigestEngine with{HeaderSpec{}};
  const DigestEngine without{no_ports};
  Packet a = test_packet();
  Packet b = test_packet();
  b.header.src_port = 9999;
  EXPECT_NE(with.packet_id(a), with.packet_id(b));
  EXPECT_EQ(without.packet_id(a), without.packet_id(b));
}

TEST(DigestEngine, HeaderSpecIdRoundTrips) {
  HeaderSpec spec;
  spec.ports = false;
  spec.length = true;
  const HeaderSpec back = HeaderSpec::from_id(spec.id());
  EXPECT_EQ(back, spec);
}

TEST(DigestEngine, SampleValueSymmetricInputsDiffer) {
  EXPECT_NE(DigestEngine::sample_value(1, 2), DigestEngine::sample_value(2, 1));
  EXPECT_EQ(DigestEngine::sample_value(7, 9), DigestEngine::sample_value(7, 9));
}

TEST(RateThreshold, RoundTripsAcrossRange) {
  for (const double rate : {0.0, 1e-5, 1e-3, 0.01, 0.1, 0.5, 0.9, 1.0}) {
    const std::uint32_t t = rate_to_threshold(rate);
    EXPECT_NEAR(threshold_to_rate(t), rate, 1e-6) << "rate " << rate;
  }
}

TEST(RateThreshold, RejectsOutOfRange) {
  EXPECT_THROW((void)rate_to_threshold(-0.1), std::invalid_argument);
  EXPECT_THROW((void)rate_to_threshold(1.1), std::invalid_argument);
}

TEST(RateThreshold, EmpiricalRateMatchesOnUniformValues) {
  std::mt19937_64 rng(3);
  const std::uint32_t t = rate_to_threshold(0.05);
  std::size_t hits = 0;
  constexpr std::size_t kN = 200'000;
  for (std::size_t i = 0; i < kN; ++i) {
    if (static_cast<std::uint32_t>(rng()) > t) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / kN, 0.05, 0.005);
}

// ----------------------------------------------------------------- PathId

TEST(PathId, PathKeyIgnoresReporterFields) {
  PathId a;
  a.prefixes = PrefixPair{Prefix::parse("10.0.0.0/16"),
                          Prefix::parse("20.0.0.0/16")};
  PathId b = a;
  b.previous_hop = 4;
  b.next_hop = 6;
  b.max_diff = milliseconds(3);
  EXPECT_EQ(a.path_key(), b.path_key());
}

TEST(PathId, PathKeyDistinguishesPaths) {
  PathId a;
  a.prefixes = PrefixPair{Prefix::parse("10.0.0.0/16"),
                          Prefix::parse("20.0.0.0/16")};
  PathId b = a;
  b.prefixes.destination = Prefix::parse("20.1.0.0/16");
  EXPECT_NE(a.path_key(), b.path_key());
}

// ------------------------------------------------------------------- Wire

TEST(Wire, RoundTripsAllWidths) {
  ByteWriter w;
  w.u8(0xAB);
  w.u16(0xBEEF);
  w.u24(0x123456);
  w.u32(0xDEADBEEF);
  w.u64(0x0123456789ABCDEFull);
  w.i64(-42);

  ByteReader r(w.view());
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u16(), 0xBEEF);
  EXPECT_EQ(r.u24(), 0x123456u);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(r.i64(), -42);
  EXPECT_TRUE(r.done());
}

TEST(Wire, U24MasksHighBits) {
  ByteWriter w;
  w.u24(0xFF123456);
  ByteReader r(w.view());
  EXPECT_EQ(r.u24(), 0x123456u);
}

TEST(Wire, TruncatedReadThrows) {
  ByteWriter w;
  w.u16(7);
  ByteReader r(w.view());
  EXPECT_THROW((void)r.u32(), WireError);
}

TEST(Wire, ExpectAtLeastGuards) {
  ByteWriter w;
  w.u32(1);
  ByteReader r(w.view());
  EXPECT_NO_THROW(r.expect_at_least(4));
  EXPECT_THROW(r.expect_at_least(5), WireError);
}

}  // namespace
}  // namespace vpm::net
