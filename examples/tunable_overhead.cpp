// Tunability walk-through (Section 2.2's third requirement): one domain
// dials its sampling/aggregation rates up and down and sees exactly what
// it buys — estimation quality against resource spend — with no
// coordination with anyone else on the path.
#include <cstdio>
#include <vector>

#include "collector/resource_model.hpp"
#include "core/hop_monitor.hpp"
#include "core/receipt_batch.hpp"
#include "core/verifier.hpp"
#include "sim/congestion.hpp"
#include "sim/path_run.hpp"
#include "stats/delay_accuracy.hpp"
#include "trace/synthetic_trace.hpp"

using namespace vpm;

int main() {
  std::printf("== Tunability: quality vs resources, chosen locally ==\n\n");

  // One congested domain X, as in Figure 2.
  trace::TraceConfig tcfg;
  tcfg.prefixes = trace::default_prefix_pair();
  tcfg.packets_per_second = 100'000;
  tcfg.duration = net::seconds(10);
  tcfg.burst_multiplier = 1.2;
  tcfg.burst_fraction = 0.2;
  tcfg.seed = 11;
  const auto trace = trace::generate_trace(tcfg);

  sim::CongestionConfig ccfg;
  ccfg.seed = 12;
  const auto congestion = sim::simulate_congestion(ccfg, trace);
  sim::PathEnvironment env;
  env.domains.resize(3);
  env.links.resize(2);
  env.domains[1].delay_of = [&congestion](sim::PacketIndex i) {
    return congestion.outcomes[i].delay;
  };
  const sim::PathRunResult run = sim::run_path(trace, env);
  const auto truth_pairs = sim::true_domain_delays_ms(run, env, 1);
  std::vector<double> truth;
  truth.reserve(truth_pairs.size());
  for (const auto& [pkt, ms] : truth_pairs) truth.push_back(ms);

  std::printf("%9s %10s %14s %14s %13s %12s\n", "sample%", "agg/sec",
              "accuracy[ms]", "receiptKB/s", "buffer[KB]", "samples");
  for (const auto& [sample_rate, aggs_per_s] :
       std::vector<std::pair<double, double>>{
           {0.05, 10.0}, {0.01, 2.0}, {0.005, 1.0}, {0.001, 0.2}}) {
    core::ProtocolParams protocol;
    core::HopTuning tuning;
    tuning.sample_rate = sample_rate;
    tuning.cut_rate = aggs_per_s / tcfg.packets_per_second;

    core::PathVerifier verifier;
    std::size_t receipt_bytes = 0;
    std::size_t buffer_peak = 0;
    for (const auto& [pos, hop] :
         std::vector<std::pair<std::size_t, net::HopId>>{{1, 2}, {2, 3}}) {
      core::HopMonitor monitor(core::HopMonitorConfig{
          .protocol = protocol,
          .tuning = tuning,
          .path = net::PathId{.header_spec_id = protocol.header_spec.id(),
                              .prefixes = tcfg.prefixes,
                              .previous_hop = hop - 1,
                              .next_hop = hop + 1,
                              .max_diff = net::milliseconds(5)},
      });
      for (const sim::Obs& o : run.hop_observations[pos]) {
        monitor.observe(trace[o.pkt], o.when);
      }
      buffer_peak = std::max(buffer_peak, monitor.sampler().buffer_peak());
      core::HopReceipts r;
      r.hop = hop;
      r.samples = monitor.collect_samples();
      r.aggregates = monitor.collect_aggregates(true);
      receipt_bytes += core::sample_batch_size(r.samples);
      receipt_bytes += core::aggregate_batch_size(r.aggregates);
      verifier.add_hop(std::move(r));
    }

    const auto delay = verifier.domain_delay(2, 3);
    const auto score = stats::score_delay_estimate(truth,
                                                   delay.sample_delays_ms);
    std::printf("%9.2f %10.1f %14.3f %14.2f %13.1f %12zu\n",
                sample_rate * 100.0, aggs_per_s, score.worst_abs_error,
                static_cast<double>(receipt_bytes) / 10.0 / 1e3,
                static_cast<double>(buffer_peak * 7) / 1e3,
                delay.common_samples);
  }

  std::printf(
      "\nEach row is a choice X makes alone: lower rates cut receipt\n"
      "bandwidth and buffer memory, and the estimate degrades gracefully\n"
      "(Section 2.2, Tunability).  Other domains on the path are\n"
      "unaffected: the subset property keeps their receipts joinable with\n"
      "X's no matter what X picks.\n");
  return 0;
}
