// Run one declarative scenario and print the verifier's findings next to
// the simulator's ground truth.
//
//   example_scenario_run 'name=demo seed=3 loss=ge loss_rate=0.03'
//   example_scenario_run @tests/scenarios/hide_loss.conf
//
// The argument is either a one-line key=value config (the format every
// failing grid cell prints) or @<file> to load a scenario data file.
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "sim/scenario_engine.hpp"

namespace {

std::string load_arg(const std::string& arg) {
  if (arg.empty() || arg[0] != '@') return arg;
  std::ifstream in(arg.substr(1));
  if (!in) {
    throw std::invalid_argument("cannot open " + arg.substr(1));
  }
  std::ostringstream text;
  text << in.rdbuf();
  return std::move(text).str();
}

}  // namespace

int main(int argc, char** argv) {
  std::string text = "name=demo seed=1 loss=bernoulli loss_rate=0.02";
  if (argc > 1) {
    try {
      text = load_arg(argv[1]);
    } catch (const std::exception& e) {
      std::cerr << "error: " << e.what() << "\n";
      return 1;
    }
  }

  vpm::sim::ScenarioConfig cfg;
  try {
    cfg = vpm::sim::parse_scenario(text);
  } catch (const std::exception& e) {
    std::cerr << "bad scenario: " << e.what() << "\n";
    return 1;
  }

  const vpm::sim::ScenarioOutcome out = vpm::sim::run_scenario(cfg);

  std::cout << "repro: " << out.repro << "\n";
  std::cout << "packets: " << out.delivered_packets << "/"
            << out.total_packets << " delivered\n";
  for (const std::string& d : out.transit_domains) {
    std::cout << "domain " << d << ": true loss " << out.true_loss(d)
              << ", receipt-estimated " << out.estimated_loss(d) << "\n";
  }
  std::cout << (out.honest_clean() ? "all links consistent, all rounds intact"
                                   : "violations present")
            << "\n";
  for (const auto& [up, down] : out.implicated_links()) {
    std::cout << "implicated link: " << up << " -> " << down << "\n";
  }
  std::size_t gap_count = 0;
  for (const auto& per_hop : out.gaps) gap_count += per_hop.size();
  if (gap_count != 0) {
    std::cout << gap_count << " dissemination gap(s) reported\n";
  }
  if (out.evicted_paths != 0) {
    std::cout << out.evicted_paths << " lifecycle eviction(s)\n";
  }
  return 0;
}
