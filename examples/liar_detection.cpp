// Liar detection: the Section 3.1 exposure story, end to end, on the
// Figure-1 path S - L - X - N - D.
//
// Act 1: X silently drops 10% of traffic and publishes honest receipts —
//        everyone sees X's loss; no inconsistencies anywhere.
// Act 2: X publishes doctored receipts ("we delivered everything") —
//        the X->N link turns inconsistent and the X-N pair is implicated;
//        N knows X is the liar.
// Act 3: N colludes and covers for X — the X->N link is clean again, but
//        the blame has moved inside N: N now eats the loss, or must lie
//        to D and be exposed there.  Lies only travel downstream.
#include <cstdio>
#include <vector>

#include "adversary/strategies.hpp"
#include "core/hop_monitor.hpp"
#include "core/verifier.hpp"
#include "loss/bernoulli.hpp"
#include "sim/topology.hpp"
#include "trace/synthetic_trace.hpp"

using namespace vpm;

namespace {

std::vector<core::HopReceipts> honest_receipts(
    const std::vector<net::Packet>& trace, const sim::PathRunResult& run) {
  core::ProtocolParams protocol;
  core::HopTuning tuning{.sample_rate = 0.05, .cut_rate = 1e-4};
  std::vector<core::HopReceipts> receipts;
  for (std::size_t pos = 0; pos < run.hop_observations.size(); ++pos) {
    const auto hop = static_cast<net::HopId>(pos + 1);
    core::HopMonitor monitor(core::HopMonitorConfig{
        .protocol = protocol,
        .tuning = tuning,
        .path =
            net::PathId{.header_spec_id = protocol.header_spec.id(),
                        .prefixes = trace::default_prefix_pair(),
                        .previous_hop = pos == 0 ? net::kNoHop : hop - 1,
                        .next_hop = pos + 1 == run.hop_observations.size()
                                        ? net::kNoHop
                                        : hop + 1,
                        .max_diff = net::milliseconds(5)},
    });
    for (const sim::Obs& o : run.hop_observations[pos]) {
      monitor.observe(trace[o.pkt], o.when);
    }
    receipts.push_back(core::HopReceipts{
        .hop = hop,
        .samples = monitor.collect_samples(),
        .aggregates = monitor.collect_aggregates(true)});
  }
  return receipts;
}

void report(const char* act, const std::vector<core::HopReceipts>& receipts) {
  core::PathVerifier v;
  for (const auto& r : receipts) v.add_hop(r);
  const core::PathLayout layout{
      .hops = {1, 2, 3, 4, 5, 6, 7, 8},
      .domain_of = {"S", "L", "L", "X", "X", "N", "N", "D"}};
  const core::PathAnalysis analysis = v.analyze(layout);

  std::printf("%s\n", act);
  for (const auto& d : analysis.domains) {
    std::printf("  domain %-2s loss %6.2f%%  (%llu offered, %llu delivered)\n",
                d.domain.c_str(), d.loss.loss_rate() * 100.0,
                static_cast<unsigned long long>(d.loss.offered),
                static_cast<unsigned long long>(d.loss.delivered));
  }
  for (const auto& l : analysis.links) {
    std::printf("  link %s->%-2s %s", l.upstream_domain.c_str(),
                l.downstream_domain.c_str(),
                l.report.consistent() ? "consistent" : "INCONSISTENT");
    if (!l.report.consistent()) {
      std::printf("  (%zu violations -> the %s/%s pair is implicated; the "
                  "implicated neighbour knows who lied)",
                  l.report.violation_count(), l.upstream_domain.c_str(),
                  l.downstream_domain.c_str());
    }
    std::printf("\n");
  }
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf("== Liar detection on the Figure-1 path ==\n\n");

  trace::TraceConfig tcfg;
  tcfg.prefixes = trace::default_prefix_pair();
  tcfg.packets_per_second = 50'000;
  tcfg.duration = net::seconds(5);
  tcfg.seed = 77;
  const auto trace = trace::generate_trace(tcfg);

  const sim::PathTopology topo = sim::PathTopology::figure_one();
  sim::PathEnvironment env = topo.make_environment(78);
  loss::BernoulliLoss x_loss(0.10, 79);
  env.domains[2].loss = &x_loss;  // X drops 10%
  env.domains[2].delay_of = [](sim::PacketIndex) {
    return net::milliseconds(2);
  };
  const sim::PathRunResult run = sim::run_path(trace, env);
  const auto truth = honest_receipts(trace, run);

  report("Act 1: X drops 10% but reports honestly", truth);

  auto lying = truth;
  lying[4].samples = adversary::hide_loss_samples(
      truth[4].samples, truth[3].samples, net::milliseconds(2));
  lying[4].aggregates = adversary::hide_loss_aggregates(truth[4].aggregates,
                                                        truth[3].aggregates);
  report("Act 2: X doctors its egress receipts (claims zero loss)", lying);

  auto collusion = lying;
  collusion[5].samples = adversary::cover_neighbor_samples(
      truth[5].samples, lying[4].samples, net::microseconds(50));
  collusion[5].aggregates = adversary::cover_neighbor_aggregates(
      truth[5].aggregates, lying[4].aggregates, net::microseconds(50));
  report("Act 3: N covers for X (fabricates matching ingress receipts)",
         collusion);

  std::printf(
      "Act 3 shows the §3.1 cascade: the X->N link is clean again, but the\n"
      "fabricated packets now vanish inside N — N has taken X's loss onto\n"
      "its own books.  Covering for a liar means absorbing the blame or\n"
      "re-lying to the next domain; the lie cannot escape the path.\n");
  return 0;
}
