// Quickstart: the smallest end-to-end VPM deployment.
//
// Three domains (S - X - D) exchange traffic; both of X's HOPs run VPM
// monitors; a verifier collects their receipts and reports X's loss and
// delay — using nothing but the receipts.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "core/hop_monitor.hpp"
#include "core/verifier.hpp"
#include "loss/gilbert_elliott.hpp"
#include "sim/path_run.hpp"
#include "trace/synthetic_trace.hpp"

using namespace vpm;

int main() {
  std::printf("== VPM quickstart: S -> X -> D ==\n\n");

  // 1. Traffic: a synthetic packet sequence for one origin-prefix pair.
  trace::TraceConfig tcfg;
  tcfg.prefixes = trace::default_prefix_pair();
  tcfg.packets_per_second = 50'000;
  tcfg.duration = net::seconds(5);
  const auto trace = trace::generate_trace(tcfg);
  std::printf("Generated %zu packets (%.0f kpps, 5 s) on path %s\n\n",
              trace.size(), tcfg.packets_per_second / 1000.0,
              tcfg.prefixes.to_string().c_str());

  // 2. The network: transit domain X adds 3 ms and drops 5% (bursty).
  auto x_loss = loss::GilbertElliott::with_target_loss(0.05, 10.0, 42);
  sim::PathEnvironment env;
  env.domains.resize(3);
  env.links.resize(2);
  env.domains[1].delay_of = [](sim::PacketIndex) {
    return net::milliseconds(3);
  };
  env.domains[1].loss = &x_loss;
  const sim::PathRunResult run = sim::run_path(trace, env);

  // 3. Monitoring: X's ingress (HOP 2) and egress (HOP 3) both run VPM.
  //    Protocol parameters are system-wide; the tuning is X's own choice.
  core::ProtocolParams protocol;           // defaults: mu=1e-3, J=10ms
  core::HopTuning tuning;
  tuning.sample_rate = 0.02;               // 2% delay samples
  tuning.cut_rate = 1.0 / 25'000.0;        // one aggregate per ~0.5 s

  auto make_monitor = [&](net::HopId self, net::HopId prev, net::HopId next) {
    return core::HopMonitor(core::HopMonitorConfig{
        .protocol = protocol,
        .tuning = tuning,
        .path = net::PathId{.header_spec_id = protocol.header_spec.id(),
                            .prefixes = tcfg.prefixes,
                            .previous_hop = prev,
                            .next_hop = next,
                            .max_diff = net::milliseconds(5)},
    });
  };
  core::HopMonitor ingress = make_monitor(2, 1, 3);
  core::HopMonitor egress = make_monitor(3, 2, 4);
  for (const sim::Obs& o : run.hop_observations[1]) {
    ingress.observe(trace[o.pkt], o.when);
  }
  for (const sim::Obs& o : run.hop_observations[2]) {
    egress.observe(trace[o.pkt], o.when);
  }

  // 4. Receipts out, verdicts in.
  core::PathVerifier verifier;
  verifier.add_hop(core::HopReceipts{
      .hop = 2,
      .samples = ingress.collect_samples(),
      .aggregates = ingress.collect_aggregates(true)});
  verifier.add_hop(core::HopReceipts{
      .hop = 3,
      .samples = egress.collect_samples(),
      .aggregates = egress.collect_aggregates(true)});

  const core::DomainLossReport loss = verifier.domain_loss(2, 3);
  std::printf("Loss through X (from receipts):\n");
  std::printf("  offered %llu, delivered %llu -> %.2f%% loss "
              "(injected: 5%%)\n",
              static_cast<unsigned long long>(loss.offered),
              static_cast<unsigned long long>(loss.delivered),
              loss.loss_rate() * 100.0);
  std::printf("  computable every %.2f s (joined aggregates: %zu)\n\n",
              loss.mean_granularity_s, loss.joined_aggregates);

  const core::DomainDelayReport delay = verifier.domain_delay(2, 3);
  std::printf("Delay through X (from %zu commonly sampled packets):\n",
              delay.common_samples);
  for (const auto& q : delay.quantiles) {
    std::printf("  p%-4.0f = %6.3f ms   (95%% CI +/- %.3f ms)\n",
                q.quantile * 100.0, q.value, q.accuracy());
  }
  std::printf("\n(True delay was a constant 3 ms; every quantile should "
              "sit on it.)\n");
  return 0;
}
