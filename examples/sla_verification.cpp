// SLA verification: the paper's motivating workflow (§1).  A customer
// domain holds provider X to an SLA — p95 delay below a bound, monthly
// loss below a rate — and uses VPM receipts to decide, with confidence
// intervals, whether X complied.
//
// SLA terms are modelled on backbone SLAs of the era (Sprint's, cited as
// [1]): intra-domain delay promised in the tens of milliseconds and loss
// well under a percent.
#include <cstdio>
#include <vector>

#include "core/hop_monitor.hpp"
#include "core/verifier.hpp"
#include "loss/gilbert_elliott.hpp"
#include "sim/congestion.hpp"
#include "sim/path_run.hpp"
#include "trace/synthetic_trace.hpp"

using namespace vpm;

namespace {

struct SlaTerms {
  double p95_delay_ms = 15.0;
  double max_loss_rate = 0.005;  // 0.5% per period
};

struct Verdict {
  bool delay_ok = false;
  bool delay_conclusive = false;
  bool loss_ok = false;
};

Verdict check_sla(const core::DomainDelayReport& delay,
                  const core::DomainLossReport& loss, const SlaTerms& terms) {
  Verdict v;
  for (const auto& q : delay.quantiles) {
    if (q.quantile == 0.95) {
      // Conclusive only if the whole confidence interval sits on one side.
      v.delay_ok = q.upper <= terms.p95_delay_ms;
      v.delay_conclusive = q.upper <= terms.p95_delay_ms ||
                           q.lower > terms.p95_delay_ms;
    }
  }
  v.loss_ok = loss.loss_rate() <= terms.max_loss_rate;
  return v;
}

void run_scenario(const char* label, double injected_loss,
                  sim::CongestionKind congestion, const SlaTerms& terms,
                  std::uint64_t seed) {
  trace::TraceConfig tcfg;
  tcfg.prefixes = trace::default_prefix_pair();
  tcfg.packets_per_second = 100'000;
  tcfg.duration = net::seconds(10);
  tcfg.burst_multiplier = 1.2;
  tcfg.burst_fraction = 0.2;
  tcfg.seed = seed;
  const auto trace = trace::generate_trace(tcfg);

  sim::CongestionConfig ccfg;
  ccfg.kind = congestion;
  ccfg.seed = seed + 1;
  const auto result = sim::simulate_congestion(ccfg, trace);

  auto x_loss =
      loss::GilbertElliott::with_target_loss(injected_loss, 10.0, seed + 2);
  sim::PathEnvironment env;
  env.domains.resize(3);
  env.links.resize(2);
  env.domains[1].delay_of = [&result](sim::PacketIndex i) {
    return result.outcomes[i].delay;
  };
  if (injected_loss > 0) env.domains[1].loss = &x_loss;
  const sim::PathRunResult run = sim::run_path(trace, env);

  core::ProtocolParams protocol;
  core::HopTuning tuning{.sample_rate = 0.01, .cut_rate = 1e-5};
  core::PathVerifier verifier;
  for (const auto& [pos, hop] : std::vector<std::pair<std::size_t, net::HopId>>{
           {1, 2}, {2, 3}}) {
    core::HopMonitor monitor(core::HopMonitorConfig{
        .protocol = protocol,
        .tuning = tuning,
        .path = net::PathId{.header_spec_id = protocol.header_spec.id(),
                            .prefixes = tcfg.prefixes,
                            .previous_hop = hop - 1,
                            .next_hop = hop + 1,
                            .max_diff = net::milliseconds(5)},
    });
    for (const sim::Obs& o : run.hop_observations[pos]) {
      monitor.observe(trace[o.pkt], o.when);
    }
    verifier.add_hop(core::HopReceipts{
        .hop = hop,
        .samples = monitor.collect_samples(),
        .aggregates = monitor.collect_aggregates(true)});
  }

  const auto delay = verifier.domain_delay(2, 3);
  const auto loss = verifier.domain_loss(2, 3);
  const Verdict v = check_sla(delay, loss, terms);

  std::printf("%s\n", label);
  for (const auto& q : delay.quantiles) {
    if (q.quantile == 0.95) {
      std::printf("  p95 delay: %.2f ms (CI [%.2f, %.2f])  SLA <= %.0f ms"
                  "  -> %s\n",
                  q.value, q.lower, q.upper, terms.p95_delay_ms,
                  !v.delay_conclusive ? "INCONCLUSIVE"
                  : v.delay_ok        ? "COMPLIANT"
                                      : "VIOLATED");
    }
  }
  std::printf("  loss: %.3f%% over %zu aggregates  SLA <= %.2f%%  -> %s\n\n",
              loss.loss_rate() * 100.0, loss.joined_aggregates,
              terms.max_loss_rate * 100.0,
              v.loss_ok ? "COMPLIANT" : "VIOLATED");
}

}  // namespace

int main() {
  std::printf("== SLA verification from VPM receipts ==\n");
  std::printf("Terms: p95 delay <= 15 ms, loss <= 0.5%% per period.\n\n");

  const SlaTerms terms;
  run_scenario("Scenario 1: healthy provider (uncongested, lossless)", 0.0,
               sim::CongestionKind::kNone, terms, 100);
  run_scenario("Scenario 2: congested provider (bursty UDP cross-traffic)",
               0.0, sim::CongestionKind::kBurstyUdp, terms, 200);
  run_scenario("Scenario 3: lossy provider (2% bursty loss, uncongested)",
               0.02, sim::CongestionKind::kNone, terms, 300);
  std::printf(
      "The verdicts come with confidence intervals: a customer only files\n"
      "an SLA claim when the interval is conclusively on the wrong side\n"
      "(the [20]-style guarantee VPM's sampling preserves).\n");
  return 0;
}
