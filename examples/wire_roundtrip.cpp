// Receipt egress end-to-end: the first byte-level round trip
//
//   sharded collector --drain(sink)--> WireExporter (receipt_batch chunks,
//   sealed envelopes) --> ReceiptStore (authenticity + replay checks) -->
//   WireImporter --> PathVerifier
//
// run side-by-side with the in-memory path (collector drain handed to the
// verifier directly).  Every finding — delay quantiles, loss, link
// consistency — must MATCH: what a remote domain computes from the
// disseminated wire bytes is exactly what the producing domain computes
// from its own receipts.  Observation times are quantized to 1 µs before
// monitoring, the wire format's resolution (§7.1's 3-byte timestamps), so
// the comparison is exact rather than within-tolerance.
#include <cstdio>
#include <cstdlib>
#include <utility>
#include <vector>

#include "collector/sharded_collector.hpp"
#include "core/receipt_sink.hpp"
#include "core/verifier.hpp"
#include "dissem/receipt_store.hpp"
#include "dissem/wire_exporter.hpp"
#include "dissem/wire_importer.hpp"
#include "loss/gilbert_elliott.hpp"
#include "sim/congestion.hpp"
#include "sim/path_run.hpp"
#include "trace/synthetic_trace.hpp"

using namespace vpm;

namespace {

int g_failures = 0;

void check(bool ok, const char* what) {
  std::printf("  [%s] %s\n", ok ? "ok" : "MISMATCH", what);
  if (!ok) ++g_failures;
}

net::Timestamp quantize_us(net::Timestamp t) {
  return net::Timestamp{t.nanoseconds() / 1000 * 1000};
}

}  // namespace

int main() {
  std::printf("== Receipt egress round trip: collector -> wire -> store -> "
              "verifier ==\n\n");

  // One monitored path through provider X (HOPs 2 and 3), congested and
  // mildly lossy so the findings are non-trivial.
  trace::TraceConfig tcfg;
  tcfg.prefixes = trace::default_prefix_pair();
  tcfg.packets_per_second = 50'000;
  tcfg.duration = net::seconds(4);
  tcfg.seed = 7;
  const auto trace = trace::generate_trace(tcfg);

  sim::CongestionConfig cong;
  cong.kind = sim::CongestionKind::kBurstyUdp;
  cong.seed = 8;
  const auto congested = sim::simulate_congestion(cong, trace);

  auto x_loss = loss::GilbertElliott::with_target_loss(0.01, 10.0, 9);
  sim::PathEnvironment env;
  env.domains.resize(3);
  env.links.resize(2);
  env.domains[1].delay_of = [&congested](sim::PacketIndex i) {
    return congested.outcomes[i].delay;
  };
  env.domains[1].loss = &x_loss;
  const sim::PathRunResult run = sim::run_path(trace, env);

  core::ProtocolParams protocol;
  core::HopTuning tuning{.sample_rate = 0.01, .cut_rate = 1e-4};
  const std::vector<net::PrefixPair> paths = {tcfg.prefixes};

  core::PathVerifier in_memory;  // receipts handed over directly
  core::PathVerifier from_wire;  // receipts recovered from the store
  dissem::ReceiptStore store;

  for (const auto& [pos, hop] :
       std::vector<std::pair<std::size_t, net::HopId>>{{1, 2}, {2, 3}}) {
    // Each HOP runs a sharded collector over the path table (2 shards:
    // the deployment shape, even though this demo monitors one path).
    collector::ShardedCollector::Config scfg;
    scfg.cache.protocol = protocol;
    scfg.cache.tuning = tuning;
    scfg.cache.self = hop;
    scfg.cache.previous_hop = hop - 1;
    scfg.cache.next_hop = hop + 1;
    scfg.shard_count = 2;
    collector::ShardedCollector hop_collector(scfg, paths);

    std::vector<net::Packet> pkts;
    std::vector<net::Timestamp> when;
    pkts.reserve(run.hop_observations[pos].size());
    when.reserve(run.hop_observations[pos].size());
    for (const sim::Obs& o : run.hop_observations[pos]) {
      pkts.push_back(trace[o.pkt]);
      when.push_back(quantize_us(o.when));
    }
    hop_collector.observe_batch(pkts, when);

    // ONE drain, streamed into a VectorSink; the wire path replays the
    // same stream through the exporter (drains are destructive).
    core::VectorSink drained;
    hop_collector.drain(drained, /*flush_open=*/true);

    // In-memory path: hand the receipts straight to the verifier.
    in_memory.add_hop(core::HopReceipts{
        .hop = hop,
        .samples = drained.stream()[0].drain.samples,
        .aggregates = drained.stream()[0].drain.aggregates});

    // Wire path: HOP = producer domain; encode, seal, publish.
    const dissem::DomainId producer = hop;
    const dissem::DomainKey key = 0xC0FFEE00 + hop;
    store.register_producer(producer, key);
    dissem::WireExporter exporter(
        dissem::WireExporter::Config{
            .producer = producer, .key = key, .max_chunk_bytes = 16 * 1024},
        [&store](dissem::Envelope&& e) { store.ingest(std::move(e)); });
    core::emit_stream(exporter, std::move(drained).take());
    exporter.finish();

    const auto& st = exporter.stats();
    std::printf("HOP %u exported %llu sample records + %llu aggregates as "
                "%llu chunk(s), %llu wire bytes\n",
                hop, static_cast<unsigned long long>(st.sample_records),
                static_cast<unsigned long long>(st.aggregate_receipts),
                static_cast<unsigned long long>(st.chunks),
                static_cast<unsigned long long>(st.envelope_bytes));

    // Consumer side: recover this producer's receipts from the store.
    const dissem::WireImporter importer({net::PathId{
        .header_spec_id = protocol.header_spec.id(),
        .prefixes = tcfg.prefixes,
        .previous_hop = scfg.cache.previous_hop,
        .next_hop = scfg.cache.next_hop,
        .max_diff = scfg.cache.max_diff}});
    from_wire.add_hop(importer.import_hop(store, producer, hop));
  }

  std::printf("\nStore: %zu envelopes accepted, %zu rejected\n\n",
              store.accepted_count(), store.rejected_count());

  // The findings a customer would hold provider X to, computed twice.
  const auto delay_a = in_memory.domain_delay(2, 3);
  const auto delay_b = from_wire.domain_delay(2, 3);
  const auto loss_a = in_memory.domain_loss(2, 3);
  const auto loss_b = from_wire.domain_loss(2, 3);
  const auto link_a = in_memory.check_link(2, 3);
  const auto link_b = from_wire.check_link(2, 3);

  for (const auto& q : delay_b.quantiles) {
    if (q.quantile == 0.95) {
      std::printf("From the wire: p95 delay %.2f ms (CI [%.2f, %.2f]) over "
                  "%zu common samples; loss %.3f%% over %zu aggregates\n\n",
                  q.value, q.lower, q.upper, delay_b.common_samples,
                  loss_b.loss_rate() * 100.0, loss_b.joined_aggregates);
    }
  }

  std::printf("In-memory vs wire-recovered findings:\n");
  check(delay_a.common_samples == delay_b.common_samples,
        "delay: same common-sample count");
  check(delay_a.sample_delays_ms == delay_b.sample_delays_ms,
        "delay: identical per-packet delays");
  check(delay_a.quantiles.size() == delay_b.quantiles.size(),
        "delay: same quantile set");
  for (std::size_t i = 0; i < delay_a.quantiles.size(); ++i) {
    if (delay_a.quantiles[i].value != delay_b.quantiles[i].value ||
        delay_a.quantiles[i].lower != delay_b.quantiles[i].lower ||
        delay_a.quantiles[i].upper != delay_b.quantiles[i].upper) {
      check(false, "delay: quantile estimate differs");
    }
  }
  check(loss_a.offered == loss_b.offered, "loss: same offered count");
  check(loss_a.delivered == loss_b.delivered, "loss: same delivered count");
  check(loss_a.joined_aggregates == loss_b.joined_aggregates,
        "loss: same joined aggregates");
  check(link_a.consistent() == link_b.consistent(),
        "link 2-3: same consistency verdict");
  check(link_a.violation_count() == link_b.violation_count(),
        "link 2-3: same violation count");

  if (g_failures != 0) {
    std::printf("\n%d finding(s) diverged between the two paths.\n",
                g_failures);
    return EXIT_FAILURE;
  }
  std::printf(
      "\nEvery finding computed from the disseminated wire bytes matches\n"
      "the in-memory receipts: the egress pipeline is lossless end-to-end.\n");
  return EXIT_SUCCESS;
}
