// CLICK — the §7.1 Click-router experiment, transposed: "we measured the
// router's performance with and without our VPM modules loaded and saw no
// difference (in both cases, the server routed 25 Gbps ... bottlenecked at
// the I/O, whereas our VPM modules burden the CPU)".
//
// We cannot reproduce the NIC-bound 8-core server; instead we measure the
// CPU cost the VPM element adds to a software forwarding path — the
// quantity that determines whether an I/O-bound router notices VPM at all.
// The bench reports pps for the pipeline with and without the VPM element;
// the EXPERIMENTS.md entry converts that to headroom against 25 Gbps.
#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "collector/pipeline.hpp"
#include "core/config.hpp"
#include "trace/synthetic_trace.hpp"

namespace {

using namespace vpm;

const trace::MultiPathTrace& shared_workload() {
  static const trace::MultiPathTrace multi = [] {
    trace::MultiPathConfig cfg;
    cfg.path_count = 1000;
    cfg.total_packets_per_second = 500'000;
    cfg.duration = net::seconds(1);
    cfg.seed = 17;
    return trace::generate_multi_path(cfg);
  }();
  return multi;
}

collector::Pipeline make_pipeline(bool with_vpm) {
  const auto& multi = shared_workload();
  collector::Pipeline pipe;
  pipe.append(std::make_unique<collector::CheckHeaderElement>());
  pipe.append(std::make_unique<collector::RouteLookupElement>(
      collector::RouteLookupElement::synthetic_table(256, 3)));
  if (with_vpm) {
    collector::MonitoringCache::Config ccfg;
    ccfg.protocol.marker_rate = 1e-3;
    ccfg.tuning = core::HopTuning{.sample_rate = 0.01, .cut_rate = 1e-5};
    pipe.append(
        std::make_unique<collector::VpmElement>(ccfg, multi.paths));
  }
  return pipe;
}

void run_pipeline(benchmark::State& state, bool with_vpm) {
  const auto& multi = shared_workload();
  collector::Pipeline pipe = make_pipeline(with_vpm);
  // Local time stays monotone across trace replays so the VPM element's
  // reorder windows drain normally (see bench/collector_fastpath.cpp).
  net::Duration offset{0};
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        pipe.process(multi.packets[i], multi.packets[i].origin_time + offset));
    if (++i == multi.packets.size()) {
      i = 0;
      offset += net::seconds(1);
    }
  }
  state.SetItemsProcessed(state.iterations());
  // 400 B average packets: pps * 3200 = bps forwarded per core.
  state.counters["est_gbps_per_core"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * 3200.0 / 1e9,
      benchmark::Counter::kIsRate);
}

void BM_RouterWithoutVpm(benchmark::State& state) {
  run_pipeline(state, false);
}
BENCHMARK(BM_RouterWithoutVpm);

void BM_RouterWithVpm(benchmark::State& state) { run_pipeline(state, true); }
BENCHMARK(BM_RouterWithVpm);

}  // namespace

BENCHMARK_MAIN();
