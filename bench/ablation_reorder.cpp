// ABL-REORDER — the Section 6.3 design choice: AggTrans patch-up windows.
// We sweep the reordering intensity (intra-domain jitter) and compare the
// verifier's loss computation with patch-up enabled vs disabled, plus the
// DA++ baseline (which has no patch-up at all, §3.3).
#include <cstdio>
#include <vector>

#include "baseline/diff_aggregator.hpp"
#include "core/aggregator.hpp"
#include "core/alignment.hpp"
#include "core/verifier.hpp"
#include "experiment.hpp"
#include "sim/path_run.hpp"
#include "trace/synthetic_trace.hpp"

namespace {

using namespace vpm;

struct Row {
  double phantom_loss_no_patchup = 0.0;  ///< joined aggs with bogus loss
  double phantom_loss_patchup = 0.0;
  std::size_t migrations = 0;
  double lda_unusable_frac = 0.0;
};

Row run_row(net::Duration jitter, std::uint64_t seed) {
  trace::TraceConfig tcfg;
  tcfg.prefixes = trace::default_prefix_pair();
  tcfg.packets_per_second = 50'000;
  tcfg.duration = net::seconds(5);
  tcfg.seed = seed;
  const auto trace = trace::generate_trace(tcfg);

  sim::PathEnvironment env;
  env.domains.resize(3);
  env.links.resize(2);
  env.seed = seed + 1;
  env.domains[1].jitter = jitter;  // reordering, no loss at all
  const sim::PathRunResult run = sim::run_path(trace, env);

  const auto protocol = bench::bench_protocol();
  const net::DigestEngine engine = protocol.make_engine();
  const double cut_rate = 1e-3;

  auto vpm_receipts = [&](std::size_t pos) {
    core::Aggregator agg(engine, core::cut_threshold_for(cut_rate),
                         protocol.reorder_window_j);
    for (const sim::Obs& o : run.hop_observations[pos]) {
      agg.observe(trace[o.pkt], o.when);
    }
    auto closed = agg.take_closed();
    if (auto last = agg.flush_open(); last.has_value()) {
      auto tail = agg.take_closed();
      closed.insert(closed.end(), tail.begin(), tail.end());
      closed.push_back(*last);
    }
    std::vector<core::AggregateReceipt> rs;
    for (const auto& d : closed) {
      rs.push_back(core::AggregateReceipt{.path = {},
                                          .agg = d.agg,
                                          .packet_count = d.packet_count,
                                          .trans = d.trans,
                                          .opened_at = d.opened_at,
                                          .closed_at = d.closed_at});
    }
    return rs;
  };
  const auto up = vpm_receipts(1);
  const auto down = vpm_receipts(2);

  auto phantom_frac = [](const core::AlignmentResult& r) {
    if (r.aligned.empty()) return 0.0;
    std::size_t bad = 0;
    for (const auto& a : r.aligned) {
      if (a.lost() != 0) ++bad;
    }
    return static_cast<double>(bad) / static_cast<double>(r.aligned.size());
  };
  const auto raw = core::align_aggregates(up, down, false);
  const auto patched = core::align_aggregates(up, down, true);

  // DA++ baseline.
  auto lda_receipts = [&](std::size_t pos) {
    baseline::DiffAggregator agg(engine, core::cut_threshold_for(cut_rate));
    for (const sim::Obs& o : run.hop_observations[pos]) {
      agg.observe(trace[o.pkt], o.when);
    }
    auto closed = agg.take_closed();
    if (auto last = agg.flush_open(); last.has_value()) closed.push_back(*last);
    return closed;
  };
  const auto lda_stats =
      baseline::lda_domain_stats(lda_receipts(1), lda_receipts(2));
  const double lda_total = static_cast<double>(lda_stats.usable_aggregates +
                                               lda_stats.unusable_aggregates);

  return Row{
      .phantom_loss_no_patchup = phantom_frac(raw),
      .phantom_loss_patchup = phantom_frac(patched),
      .migrations = patched.migrations,
      .lda_unusable_frac =
          lda_total == 0.0
              ? 0.0
              : static_cast<double>(lda_stats.unusable_aggregates) / lda_total,
  };
}

}  // namespace

int main() {
  std::printf("ABL-REORDER: AggTrans patch-up under packet reordering\n");
  std::printf(
      "Setup: lossless domain with uniform jitter (reorders packets closer\n"
      "than the jitter), ~50-packet reorder window at the highest setting;\n"
      "'phantom loss' = fraction of joined aggregates whose counts\n"
      "disagree although nothing was lost.\n\n");

  std::printf("%12s %18s %15s %12s %15s\n", "jitter[us]", "no-patchup[%]",
              "patchup[%]", "migrations", "DA++unusable[%]");
  vpm::bench::rule(78);
  for (const std::int64_t jitter_us : {0ll, 100ll, 200ll, 400ll, 800ll}) {
    const Row r = run_row(net::microseconds(jitter_us), 7000);
    std::printf("%12lld %18.1f %15.1f %12zu %15.1f\n",
                static_cast<long long>(jitter_us),
                r.phantom_loss_no_patchup * 100.0,
                r.phantom_loss_patchup * 100.0, r.migrations,
                r.lda_unusable_frac * 100.0);
  }
  std::printf(
      "\nShape checks: without patch-up, phantom loss grows with jitter;\n"
      "with AggTrans it stays at zero (§6.3).  DA++ (no window at all)\n"
      "loses usable aggregates the same way (§3.3).\n");
  return 0;
}
