// OVH-M / OVH-B — regenerates the Section 7.1 overhead arithmetic from
// the implementation: memory (monitoring cache, temp packet buffer),
// receipt wire sizes, and receipt-dissemination bandwidth.
//
// Every "measured" number below is computed from live data structures or
// the actual serializer — the paper's figures are printed alongside.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <utility>
#include <vector>

#include "collector/monitoring_cache.hpp"
#include "core/path_state.hpp"
#include "net/sample_batch.hpp"
#include "net/simd_dispatch.hpp"
#include "dissem/envelope.hpp"
#include "dissem/federated_store.hpp"
#include "collector/resource_model.hpp"
#include "core/receipt_batch.hpp"
#include "core/receipt_sink.hpp"
#include "dissem/wire_exporter.hpp"
#include "experiment.hpp"
#include "sim/churn_scenario.hpp"
#include "trace/synthetic_trace.hpp"

namespace {

using namespace vpm;

void memory_section() {
  std::printf("== Memory (paper section 7.1) ==\n\n");

  std::printf("Monitoring cache (open-receipt state per active path):\n");
  std::printf("  paper:    100,000 paths -> 2 MB (~20 B/path)\n");
  std::printf("  model:    100,000 paths -> %.2f MB (%zu B/path)\n",
              static_cast<double>(collector::monitoring_cache_bytes(100'000)) /
                  1e6,
              collector::kOpenReceiptBytes);

  // Measured: build a real cache over 10,000 paths and read the ACTUAL
  // structure-of-arrays footprint (one contiguous 32 B PathHot record per
  // path, warm addressing alongside, arenas on demand) against the
  // paper's 20 B/path estimate.
  trace::MultiPathConfig mcfg;
  mcfg.path_count = 10'000;
  mcfg.total_packets_per_second = 500'000;
  mcfg.duration = net::milliseconds(500);
  const auto multi = trace::generate_multi_path(mcfg);
  collector::MonitoringCache::Config ccfg;
  ccfg.protocol = bench::bench_protocol();
  ccfg.tuning = core::HopTuning{.sample_rate = 0.01, .cut_rate = 1e-5};
  collector::MonitoringCache cache(ccfg, multi.paths);
  cache.observe_batch(multi.packets);
  const core::PathStateSoA& soa = cache.state();
  std::printf(
      "  measured: %zu live paths -> %.2f MB hot-array SRAM (%zu B/path;\n"
      "            + %.2f MB warm arena addressing, %.2f MB arenas\n"
      "            resident after the workload)\n\n",
      cache.path_count(),
      static_cast<double>(cache.modeled_cache_bytes()) / 1e6,
      sizeof(core::PathHot),
      static_cast<double>(soa.slot_bytes() - soa.hot_bytes()) / 1e6,
      static_cast<double>(soa.arena_bytes()) / 1e6);

  std::printf("Temporary packet buffer (7 B per packet within 2J, J=10ms):\n");
  const double pps400 = collector::link_pps(10e9, 400.0);
  const double pps64 = collector::link_pps(10e9, 64.0);
  std::printf("  paper:    OC-192 @400 B avg -> 436 KB;  @64 B worst -> 2.8 MB\n");
  std::printf("  model:    OC-192 @400 B avg -> %.0f KB; @64 B worst -> %.1f MB\n",
              static_cast<double>(collector::temp_buffer_bytes(
                  pps400, net::milliseconds(10))) / 1e3,
              static_cast<double>(collector::temp_buffer_bytes(
                  pps64, net::milliseconds(10))) / 1e6);
  std::printf(
      "  measured: sum of per-path buffer peaks on the 500 kpps workload\n"
      "            above: %zu records -> %.0f KB\n",
      cache.temp_buffer_peak_records(),
      static_cast<double>(cache.temp_buffer_peak_records() *
                          collector::kTempRecordBytes) / 1e3);
  std::printf(
      "  REPRODUCTION FINDING: Algorithm 1 holds per-packet state until\n"
      "  the path's NEXT MARKER, i.e. ~1/marker_rate packets per path\n"
      "  regardless of path rate.  The paper's 436 KB figure implicitly\n"
      "  assumes marker gaps ~ J in *time*, which holds for one busy\n"
      "  path per interface but not for many slow paths: with 100k slow\n"
      "  paths the buffer bound is paths x 1/marker_rate x 7 B, far\n"
      "  above the J-window estimate.  See EXPERIMENTS.md (OVH-M).\n\n");
}

// Dissemination-store retention (measured): a disk-backed FederatedStore
// under six producer streams with consumers of different speeds.  What a
// domain keeps on disk is bounded by its SLOWEST gating consumer — the
// floor frees whole segment files, so bytes lag the floor by at most one
// partially-covered segment per producer.
void dissemination_block() {
  constexpr dissem::DomainKey kKey = 0x0eecd;
  constexpr std::size_t kProducers = 6;
  constexpr std::uint64_t kSeqs = 3000;
  constexpr std::size_t kPayload = 256;

  bench::ScratchDir scratch("overhead-dissem");
  dissem::FederatedStoreConfig cfg;
  cfg.shards = 4;
  cfg.directory = scratch.path();
  cfg.max_segment_bytes = 64 * 1024;
  dissem::FederatedStore fed(cfg);
  // Three consumer speeds: "fast" drains everything, "slow" trails the
  // head by 500 sequences on every stream, and a per-stream auditor of
  // producer 3 trails by 1500 — producer 3's disk shows the price of one
  // laggard.
  fed.register_consumer("fast");
  fed.register_consumer("slow");
  for (std::size_t p = 1; p <= kProducers; ++p) {
    fed.register_producer(static_cast<dissem::DomainId>(p), kKey);
  }
  fed.subscribe("auditor", 3);
  for (std::size_t p = 1; p <= kProducers; ++p) {
    const auto producer = static_cast<dissem::DomainId>(p);
    for (std::uint64_t s = 1; s <= kSeqs; ++s) {
      std::vector<std::byte> payload(kPayload,
                                     static_cast<std::byte>(s & 0xFF));
      (void)fed.ingest(dissem::seal(producer, s, std::move(payload), kKey));
    }
    (void)fed.ack("fast", producer, kSeqs);
    (void)fed.ack("slow", producer, kSeqs - 500);
    if (p == 3) (void)fed.ack("auditor", producer, kSeqs - 1500);
  }

  std::printf("Dissemination store (disk segments, 4 shards, %zu-byte"
              " payloads, %llu seq/stream):\n",
              kPayload, static_cast<unsigned long long>(kSeqs));
  std::printf("  producer   floor   slowest-lag   segments live/gc'd"
              "   bytes on disk\n");
  for (std::size_t p = 1; p <= kProducers; ++p) {
    const auto producer = static_cast<dissem::DomainId>(p);
    const dissem::StorageStats s = fed.producer_storage_stats(producer);
    std::size_t lag = std::max(fed.consumer_lag("fast", producer),
                               fed.consumer_lag("slow", producer));
    if (p == 3) lag = std::max(lag, fed.consumer_lag("auditor", producer));
    std::printf("  %8zu %7llu %13zu %10zu / %-5zu %11.1f KB\n", p,
                static_cast<unsigned long long>(fed.gc_floor(producer)), lag,
                s.segments_live, s.segments_unlinked,
                static_cast<double>(s.bytes_on_disk) / 1e3);
  }
  const dissem::StorageStats total = fed.storage_stats();
  std::printf("  total: %.1f KB on disk for %zu retained envelopes"
              " (%zu collected); the slowest\n"
              "  gating consumer bounds retention — whole segment files"
              " free at the floor.\n\n",
              static_cast<double>(total.bytes_on_disk) / 1e3,
              total.envelopes, total.erased);
}

void lifecycle_section() {
  std::printf("== Long-running operation (epoch lifecycle, measured) ==\n\n");

  // Arena accounting on the 10k-path workload above: live slice capacity
  // vs relocation garbage, then a TTL pass that retires half the paths.
  trace::MultiPathConfig mcfg;
  mcfg.path_count = 10'000;
  mcfg.total_packets_per_second = 500'000;
  mcfg.duration = net::milliseconds(500);
  const auto multi = trace::generate_multi_path(mcfg);
  collector::MonitoringCache::Config ccfg;
  ccfg.protocol = bench::bench_protocol();
  ccfg.tuning = core::HopTuning{.sample_rate = 0.01, .cut_rate = 1e-5};
  ccfg.lifecycle = collector::LifecycleConfig{
      .evict_idle = true,
      .idle_ttl = net::milliseconds(250),
      .compact_garbage_fraction = 0.25,
  };
  collector::MonitoringCache cache(ccfg, multi.paths);
  cache.observe_batch(multi.packets);

  std::printf("Arena accounting after the 500 ms x 500 kpps workload:\n");
  std::printf("  resident %.2f MB = live slices %.2f MB + garbage %.2f MB"
              " (%.1f%%)\n",
              static_cast<double>(cache.state().arena_bytes()) / 1e6,
              static_cast<double>(cache.arena_live_bytes()) / 1e6,
              static_cast<double>(cache.arena_garbage_bytes()) / 1e6,
              100.0 * static_cast<double>(cache.arena_garbage_bytes()) /
                  static_cast<double>(cache.state().arena_bytes()));

  // Keep the busiest half alive, let the rest idle past the TTL, run the
  // lifecycle pass: evicted paths drain through the sink first, then the
  // all-garbage slices compact away.
  std::vector<net::Packet> keepalive;
  for (std::size_t i = 0; i < multi.packets.size(); ++i) {
    if (multi.path_of[i] >= multi.paths.size() / 2) continue;
    net::Packet p = multi.packets[i];
    p.origin_time += net::milliseconds(500);
    keepalive.push_back(p);
  }
  cache.observe_batch(keepalive);
  core::NullSink sink;
  const collector::LifecycleReport report = cache.run_lifecycle(
      net::Timestamp{net::milliseconds(1000).nanoseconds()}, sink);
  std::printf("Lifecycle pass (TTL 250 ms, watermark 25%%):\n");
  std::printf("  evicted %zu idle paths (drained %zu receipts first),\n"
              "  compacted %zu B away -> resident %.2f MB"
              " (garbage %.1f%%)\n\n",
              report.evicted_paths,
              sink.sample_records() + sink.aggregates(),
              report.reclaimed_arena_bytes,
              static_cast<double>(cache.state().arena_bytes()) / 1e6,
              cache.state().arena_bytes() == 0
                  ? 0.0
                  : 100.0 *
                        static_cast<double>(cache.arena_garbage_bytes()) /
                        static_cast<double>(cache.state().arena_bytes()));

  // The end-to-end bounded-memory claim: a 52-round churn scenario
  // (collector lifecycle + store cursors/GC + incremental verifier)
  // against its grow-only reference.
  sim::ChurnScenarioConfig scfg;
  scfg.shard_count = 4;
  const sim::ChurnScenarioResult churn = sim::run_churn_scenario(scfg);
  const sim::ChurnRoundMetrics& final_round = churn.per_round.back();
  std::printf("Churn soak (52 rounds, 33%% of live paths churning):\n");
  std::printf("  collector arenas:  %6.1f KB churn-run plateau vs %6.1f KB"
              " grow-only reference\n",
              static_cast<double>(final_round.churn_arena_bytes) / 1e3,
              static_cast<double>(final_round.ref_arena_bytes) / 1e3);
  std::printf("  receipt store:     %6.1f KB retained (slowest-consumer"
              " lag) vs %6.1f KB shipped\n",
              static_cast<double>(final_round.store_payload_bytes) / 1e3,
              static_cast<double>(final_round.ref_store_payload_bytes) /
                  1e3);
  std::printf("  verifier tails:    %zu raw receipts + %zu pending entries"
              " (O(retained window))\n",
              final_round.verifier_tail_receipts,
              final_round.verifier_pending);
  std::printf("  lifecycle totals:  %zu evictions, %zu compactions,"
              " %.1f KB reclaimed\n\n",
              churn.lifecycle_totals.evicted_paths,
              churn.lifecycle_totals.compactions,
              static_cast<double>(
                  churn.lifecycle_totals.reclaimed_arena_bytes) / 1e3);

  dissemination_block();
}

void receipt_size_section() {
  std::printf("== Receipt wire sizes (measured from the serializer) ==\n\n");

  // Build a real scenario and serialize the receipts it produced.
  bench::XDomainConfig cfg;
  cfg.packets_per_second = 20'000;
  cfg.duration_s = 5.0;
  cfg.congestion = sim::CongestionKind::kNone;
  const bench::XDomainScenario s = bench::make_x_scenario(cfg);
  const auto protocol = bench::bench_protocol();
  core::HopTuning tuning{.sample_rate = 0.01, .cut_rate = 1e-3};
  const core::HopReceipts hop =
      bench::collect_hop(s, 1, 2, 1, 3, protocol, tuning);

  const std::size_t sample_bytes = core::sample_batch_size(hop.samples);
  std::size_t trans_ids = 0;
  for (const auto& a : hop.aggregates) {
    trans_ids += a.trans.before.size() + a.trans.after.size();
  }
  const std::size_t agg_bytes = core::aggregate_batch_size(hop.aggregates);

  std::printf("  paper:    receipt size 22 B; temp records 7 B\n");
  std::printf("  measured: aggregate-receipt marginal %zu B (+4 B/AggTrans id);\n",
              core::kAggregateRecordBytes);
  std::printf("            sample-record marginal %zu B\n",
              core::kSampleRecordBytes);
  std::printf("  whole-batch check over a real 5 s x 20 kpps run:\n");
  std::printf("    samples:    %zu records -> %zu B (%.2f B/record w/ header)\n",
              hop.samples.samples.size(), sample_bytes,
              static_cast<double>(sample_bytes) /
                  static_cast<double>(hop.samples.samples.size()));
  std::printf("    aggregates: %zu receipts (%zu AggTrans ids) -> %zu B\n\n",
              hop.aggregates.size(), trans_ids, agg_bytes);
}

void receipt_egress_section() {
  std::printf("== Receipt egress (measured from the wire exporter) ==\n\n");

  // A real 10k-path workload drained straight through dissem::WireExporter:
  // every byte counted below is an ACTUAL shipped byte — receipt_batch
  // records, batch headers, chunk/section framing and envelope
  // authentication included — against the modeled per-record arithmetic
  // the bandwidth section uses.
  trace::MultiPathConfig mcfg;
  mcfg.path_count = 10'000;
  mcfg.total_packets_per_second = 500'000;
  mcfg.duration = net::milliseconds(500);
  const auto multi = trace::generate_multi_path(mcfg);
  collector::MonitoringCache::Config ccfg;
  ccfg.protocol = bench::bench_protocol();
  ccfg.tuning = core::HopTuning{.sample_rate = 0.01, .cut_rate = 1e-5};
  collector::MonitoringCache cache(ccfg, multi.paths);
  cache.observe_batch(multi.packets);

  dissem::WireExporter exporter(
      dissem::WireExporter::Config{.producer = 1,
                                   .key = 0xC0FFEE,
                                   .max_chunk_bytes = 64 * 1024},
      [](dissem::Envelope&& e) { (void)e; });
  cache.drain_all(exporter, /*flush_open=*/true);
  exporter.finish();
  const dissem::WireExporter::Stats& st = exporter.stats();

  const double packets = static_cast<double>(multi.packets.size());
  const double modeled =
      static_cast<double>(st.sample_records * core::kSampleRecordBytes +
                          st.aggregate_receipts * core::kAggregateRecordBytes) /
      packets;
  const double measured = static_cast<double>(st.envelope_bytes) / packets;
  std::printf("  workload: %zu pkts over %zu paths -> %llu sample records,"
              " %llu aggregates\n",
              multi.packets.size(), cache.path_count(),
              static_cast<unsigned long long>(st.sample_records),
              static_cast<unsigned long long>(st.aggregate_receipts));
  std::printf("  shipped:  %llu chunks, %llu payload B, %llu wire B"
              " (peak buffer %zu B)\n",
              static_cast<unsigned long long>(st.chunks),
              static_cast<unsigned long long>(st.payload_bytes),
              static_cast<unsigned long long>(st.envelope_bytes),
              st.peak_buffer_bytes);
  std::printf("  budget:   modeled %.3f B/pkt (%zu B/sample + %zu B/agg"
              " marginals, §7.1)\n",
              modeled, core::kSampleRecordBytes, core::kAggregateRecordBytes);
  std::printf("  measured: %.3f B/pkt on the wire -> +%.3f B/pkt"
              " (%.1f%%) framing delta\n",
              measured, measured - modeled,
              modeled > 0 ? (measured - modeled) / modeled * 100.0 : 0.0);
  std::printf(
      "  (The delta is batch headers amortized over few records per path\n"
      "  at this drain cadence, plus %zu B/section + %zu B/chunk +\n"
      "  %zu B/envelope framing.  Longer reporting periods or busier\n"
      "  paths amortize it toward the modeled marginal.)\n\n",
      dissem::kSectionHeaderBytes, dissem::kChunkHeaderBytes,
      dissem::kEnvelopeOverheadBytes);
}

void bandwidth_section() {
  std::printf("== Bandwidth (paper section 7.1) ==\n\n");
  std::printf(
      "Config: 10-domain path (20 HOPs), 1000 pkts/aggregate, 1%% sampling,\n"
      "400 B average packets.\n");
  collector::BandwidthParams params;
  const collector::BandwidthOverhead o = collector::bandwidth_overhead(params);
  std::printf("  paper:    ~0.2 B/packet for the path -> 0.046%% overhead\n");
  std::printf("  measured: %.3f B/packet/HOP, %.2f B/packet path-wide ->"
              " %.3f%% overhead\n",
              o.bytes_per_packet_per_hop, o.bytes_per_packet_path,
              o.fraction_of_traffic * 100.0);
  std::printf(
      "  (Our per-HOP marginal is 22 B/1000-pkt aggregate + 7 B x 1%%\n"
      "  samples = 0.12 B; the paper's 0.2 B/pkt corresponds to one 22 B\n"
      "  receipt per sampled packet counted once for the path, not per\n"
      "  HOP.  Summed over all 20 HOPs we get ~2.4 B/pkt = 0.6%% — still\n"
      "  negligible against the traffic it reports on.)\n\n");

  std::printf("With AggTrans enabled (reorder patch-up, J=10ms @100kpps):\n");
  collector::BandwidthParams with_trans = params;
  with_trans.trans_ids_per_aggregate = 2000.0;  // 2J x 100 kpps
  with_trans.packets_per_aggregate = 100'000.0; // paper's Fig-3 setting
  const auto ot = collector::bandwidth_overhead(with_trans);
  std::printf("  measured: %.3f B/packet/HOP -> %.3f%% path overhead\n",
              ot.bytes_per_packet_per_hop, ot.fraction_of_traffic * 100.0);
  std::printf(
      "  (AggTrans adds 4 B x window ids per aggregate; with minutes-long\n"
      "  aggregates this stays far below per-packet state, §6.3.)\n\n");
}

void processing_section() {
  std::printf("== Processing (paper section 7.1) ==\n\n");
  const collector::PerPacketOps ops = collector::per_packet_ops();
  std::printf(
      "  paper:    3 memory accesses + 1 hash + 1 timestamp per packet,\n"
      "            +1 amortised access at marker sweeps\n");
  std::printf("  model:    %d + %d hash + %d timestamp, +%.1f sweep access\n",
              ops.memory_accesses, ops.hash_computations, ops.timestamp_reads,
              ops.sweep_accesses);

  // Measured: drive a real cache and read its DataPlaneOps counters — the
  // single-hash fast path makes hash_computations == packets by
  // construction (DigestEngine::decide feeds sampler and aggregator).
  trace::TraceConfig tcfg;
  tcfg.prefixes = trace::default_prefix_pair();
  tcfg.packets_per_second = 100'000;
  tcfg.duration = net::seconds(1);
  const auto trace = trace::generate_trace(tcfg);
  const std::vector<net::PrefixPair> paths = {tcfg.prefixes};
  collector::MonitoringCache::Config ccfg;
  ccfg.protocol = bench::bench_protocol();
  ccfg.tuning = core::HopTuning{.sample_rate = 0.01, .cut_rate = 1e-5};
  collector::MonitoringCache cache(ccfg, paths);
  cache.observe_batch(trace);
  const collector::DataPlaneOps& live = cache.ops();
  const double n = static_cast<double>(trace.size());
  std::printf(
      "  measured: %.2f + %.2f hash + %.2f timestamp, +%.2f sweep access\n"
      "            per packet over %zu packets\n",
      static_cast<double>(live.memory_accesses) / n,
      static_cast<double>(live.hash_computations) / n,
      static_cast<double>(live.timestamp_reads) / n,
      static_cast<double>(live.marker_sweep_accesses) / n, trace.size());

  // Protocol kernels: the marker sweep (sample_value over every buffered
  // record) is the one super-linear piece of the per-packet pipeline, so
  // report its per-record cost on each tier next to how the driven cache
  // above attributed its sweeps.
  {
    std::vector<core::TimedDigest> slice(4096);
    std::uint64_t x = 0x9E3779B97F4A7C15ull;
    for (auto& r : slice) {
      x ^= x << 13;
      x ^= x >> 7;
      x ^= x << 17;
      r.id = static_cast<net::PacketDigest>(x);
      r.time = net::Timestamp{static_cast<std::int64_t>(x >> 32)};
    }
    std::vector<std::uint32_t> idx(slice.size() + 1);
    const auto ns_per_record = [&](net::detail::SweepSelectFn fn) {
      const auto* bytes = reinterpret_cast<const std::byte*>(slice.data());
      double best = 0.0;
      for (int rep = 0; rep < 5; ++rep) {
        const auto t0 = std::chrono::steady_clock::now();
        constexpr int kInner = 64;
        std::size_t sink = 0;
        for (int k = 0; k < kInner; ++k) {
          sink += fn(bytes, sizeof(core::TimedDigest), slice.size(),
                     0xABCD1234u + static_cast<std::uint32_t>(k), 1u << 31,
                     idx.data());
        }
        const auto t1 = std::chrono::steady_clock::now();
        const double ns =
            std::chrono::duration<double, std::nano>(t1 - t0).count() /
            (static_cast<double>(kInner) * static_cast<double>(slice.size()));
        if (sink != 0 && (rep == 0 || ns < best)) best = ns;
      }
      return best;
    };
    namespace simd = net::simd;
    std::printf("  kernels:  sweep-select %.2f ns/record scalar",
                ns_per_record(&net::detail::sweep_select_scalar));
    const net::detail::SweepSelectFn avx2 = net::detail::sweep_select_avx2();
    if (avx2 != nullptr && simd::detected_tier() == simd::Tier::kAvx2) {
      std::printf(", %.2f ns/record avx2", ns_per_record(avx2));
    }
    std::printf(" (active tier: %s)\n", simd::tier_name(simd::active_tier()));
    std::printf(
        "            driven cache: %llu scalar / %llu avx2 sweep-kernel\n"
        "            calls, emitted peak %zu records/path\n",
        static_cast<unsigned long long>(live.sweep_kernel_scalar),
        static_cast<unsigned long long>(live.sweep_kernel_avx2),
        cache.emitted_peak_records());
  }
  std::printf("  latency:  see bench/collector_fastpath (ns/packet).\n");
}

}  // namespace

int main() {
  std::printf("OVERHEAD REPORT — regenerating the Section 7.1 numbers\n");
  vpm::bench::rule(64);
  std::printf("\n");
  memory_section();
  lifecycle_section();
  receipt_size_section();
  receipt_egress_section();
  bandwidth_section();
  processing_section();
  return 0;
}
