// Receipt-egress throughput: the wire exporter and importer over real
// collector drains.
//
//   * BM_WireExport — replay a materialized drain stream through
//     dissem::WireExporter (receipt_batch sections, size-capped chunks,
//     sealed envelopes).  Reports wire bytes/s and the measured
//     bytes-per-packet-observed — the number the §7.1 bandwidth budget is
//     about (the overhead_report binary prints the comparison).
//   * BM_WireImport — decode the same sealed chunk stream back out of a
//     ReceiptStore into a NullSink (parse + validate cost, no consumer
//     work).
//
// One iteration = one full drain's worth of receipts.  The drain is
// materialized once up front so iterations are repeatable (collector
// drains are destructive) and the timed region is purely the egress path.
#include <benchmark/benchmark.h>

#include <cstddef>
#include <map>
#include <utility>
#include <vector>

#include "collector/monitoring_cache.hpp"
#include "core/receipt_sink.hpp"
#include "dissem/receipt_store.hpp"
#include "dissem/wire_exporter.hpp"
#include "dissem/wire_importer.hpp"
#include "experiment.hpp"
#include "trace/synthetic_trace.hpp"

namespace {

using namespace vpm;

struct DrainFixture {
  std::vector<core::IndexedPathDrain> stream;
  std::vector<net::PathId> table;
  std::size_t packets = 0;
};

/// One drain of a `paths`-path cache after ~1 s of 400 kpps traffic.
const DrainFixture& shared_drain(std::size_t paths) {
  static std::map<std::size_t, DrainFixture> cache;
  if (const auto it = cache.find(paths); it != cache.end()) {
    return it->second;
  }
  trace::MultiPathConfig mcfg;
  mcfg.path_count = paths;
  mcfg.total_packets_per_second = 400'000;
  mcfg.duration = net::seconds(1);
  mcfg.seed = 21;
  const auto multi = trace::generate_multi_path(mcfg);

  collector::MonitoringCache::Config ccfg;
  ccfg.protocol = bench::bench_protocol();
  ccfg.tuning = core::HopTuning{.sample_rate = 0.01, .cut_rate = 1e-4};
  collector::MonitoringCache collector(ccfg, multi.paths);
  collector.observe_batch(multi.packets);

  DrainFixture f;
  f.packets = multi.packets.size();
  core::VectorSink sink;
  collector.drain_all(sink, /*flush_open=*/true);
  f.stream = std::move(sink).take();
  f.table.reserve(paths);
  for (std::size_t p = 0; p < paths; ++p) {
    f.table.push_back(net::PathId{
        .header_spec_id = ccfg.protocol.header_spec.id(),
        .prefixes = multi.paths[p],
        .previous_hop = ccfg.previous_hop,
        .next_hop = ccfg.next_hop,
        .max_diff = ccfg.max_diff});
  }
  return cache.emplace(paths, std::move(f)).first->second;
}

void BM_WireExport(benchmark::State& state) {
  const auto paths = static_cast<std::size_t>(state.range(0));
  const DrainFixture& f = shared_drain(paths);

  dissem::WireExporter::Stats last{};
  for (auto _ : state) {
    dissem::WireExporter exporter(
        dissem::WireExporter::Config{.producer = 1, .key = 2},
        [](dissem::Envelope&& e) { benchmark::DoNotOptimize(e.mac); });
    core::emit_stream(exporter, f.stream);
    exporter.finish();
    last = exporter.stats();
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(last.envelope_bytes) *
      static_cast<std::int64_t>(state.iterations()));
  state.counters["wire_B_per_pkt"] =
      static_cast<double>(last.envelope_bytes) /
      static_cast<double>(f.packets);
  state.counters["chunks"] = static_cast<double>(last.chunks);
  state.counters["peak_buffer_B"] =
      static_cast<double>(last.peak_buffer_bytes);
}
BENCHMARK(BM_WireExport)->Arg(1024)->Arg(8192)->Unit(benchmark::kMillisecond);

void BM_WireImport(benchmark::State& state) {
  const auto paths = static_cast<std::size_t>(state.range(0));
  const DrainFixture& f = shared_drain(paths);

  dissem::ReceiptStore store;
  store.register_producer(1, 2);
  dissem::WireExporter exporter(
      dissem::WireExporter::Config{.producer = 1, .key = 2},
      [&store](dissem::Envelope&& e) { store.ingest(std::move(e)); });
  core::emit_stream(exporter, f.stream);
  exporter.finish();
  const std::uint64_t wire_bytes = exporter.stats().envelope_bytes;

  const dissem::WireImporter importer(f.table);
  for (auto _ : state) {
    core::NullSink sink;
    importer.import_into(store, 1, sink);
    benchmark::DoNotOptimize(sink.sample_records());
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(wire_bytes) *
      static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_WireImport)->Arg(1024)->Arg(8192)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
