#include "experiment.hpp"

#include "net/simd_dispatch.hpp"

namespace vpm::bench {

XDomainScenario make_x_scenario(const XDomainConfig& cfg) {
  XDomainScenario s;
  s.requested_loss = cfg.loss_rate;

  trace::TraceConfig tcfg;
  tcfg.prefixes = trace::default_prefix_pair();
  tcfg.packets_per_second = cfg.packets_per_second;
  tcfg.duration = net::seconds_f(cfg.duration_s);
  // Near-Poisson foreground: the delay variance comes from the congestion
  // scenario's background flows (§7.2), loss from Gilbert-Elliott.
  tcfg.burst_multiplier = 1.2;
  tcfg.burst_fraction = 0.2;
  tcfg.seed = cfg.seed;
  s.trace = trace::generate_trace(tcfg);

  // Delay series for X from the congestion simulator.
  sim::CongestionConfig ccfg;
  ccfg.kind = cfg.congestion;
  ccfg.udp = cfg.udp;
  ccfg.seed = cfg.seed + 101;
  const sim::CongestionResult congestion =
      sim::simulate_congestion(ccfg, s.trace);

  // Loss process inside X.
  static thread_local std::vector<loss::GilbertElliott> loss_keeper;
  loss_keeper.clear();
  loss_keeper.push_back(loss::GilbertElliott::with_target_loss(
      cfg.loss_rate, cfg.mean_loss_burst, cfg.seed + 202));

  sim::PathEnvironment env;
  env.domains.resize(3);
  env.links.resize(2);
  env.seed = cfg.seed + 303;
  env.domains[1].delay_of = [&congestion](sim::PacketIndex i) {
    const sim::DelayOutcome& o = congestion.outcomes[i];
    return o.dropped ? net::milliseconds(1) : o.delay;
  };
  if (cfg.loss_rate > 0.0) {
    env.domains[1].loss = &loss_keeper.back();
  }
  s.run = sim::run_path(s.trace, env);

  const auto truth = sim::true_domain_delays_ms(s.run, env, 1);
  s.true_x_delays_ms.reserve(truth.size());
  for (const auto& [pkt, ms] : truth) s.true_x_delays_ms.push_back(ms);
  return s;
}

core::HopReceipts collect_hop(const XDomainScenario& s, std::size_t hop_pos,
                              net::HopId hop_id, net::HopId prev,
                              net::HopId next,
                              const core::ProtocolParams& protocol,
                              const core::HopTuning& tuning,
                              net::Duration max_diff) {
  core::HopMonitorConfig mc;
  mc.protocol = protocol;
  mc.tuning = tuning;
  mc.path = net::PathId{
      .header_spec_id = protocol.header_spec.id(),
      .prefixes = trace::default_prefix_pair(),
      .previous_hop = prev,
      .next_hop = next,
      .max_diff = max_diff,
  };
  core::HopMonitor monitor(mc);
  for (const sim::Obs& o : s.run.hop_observations[hop_pos]) {
    monitor.observe(s.trace[o.pkt], o.when);
  }
  core::HopReceipts r;
  r.hop = hop_id;
  r.samples = monitor.collect_samples();
  r.aggregates = monitor.collect_aggregates(/*flush_open=*/true);
  return r;
}

// --- machine-readable bench output --------------------------------------

void JsonExportReporter::ReportRuns(const std::vector<Run>& reports) {
  for (const Run& run : reports) {
    // Only base iterations carry rates; aggregates (mean/median/stddev of
    // repeated runs) would double-count, and errored runs have no data.
    if (run.run_type != Run::RT_Iteration || run.error_occurred) continue;
    const auto ips = run.counters.find("items_per_second");
    if (ips == run.counters.end() || ips->second.value <= 0) continue;

    Row row;
    row.name = run.benchmark_name();
    row.mpps = ips->second.value / 1e6;
    row.ns_per_packet = 1e9 / ips->second.value;
    const auto hashes = run.counters.find("hashes/pkt");
    if (hashes != run.counters.end()) {
      row.has_hashes = true;
      row.hashes_per_packet = hashes->second.value;
    }
    rows_.push_back(std::move(row));
  }
  ConsoleReporter::ReportRuns(reports);
}

bool JsonExportReporter::write(const std::string& bench_name,
                               const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  std::fprintf(f, "{\n  \"bench\": \"%s\",\n  \"simd_tier\": \"%s\",\n",
               bench_name.c_str(),
               net::simd::tier_name(net::simd::active_tier()));
  std::fprintf(f, "  \"results\": [");
  for (std::size_t i = 0; i < rows_.size(); ++i) {
    const Row& r = rows_[i];
    std::fprintf(f, "%s\n    {\"name\": \"%s\", ", i == 0 ? "" : ",",
                 r.name.c_str());
    std::fprintf(f, "\"ns_per_packet\": %.4f, \"mpps\": %.4f",
                 r.ns_per_packet, r.mpps);
    if (r.has_hashes) {
      std::fprintf(f, ", \"hashes_per_packet\": %.4f", r.hashes_per_packet);
    }
    std::fprintf(f, "}");
  }
  std::fprintf(f, "\n  ]\n}\n");
  const bool ok = std::ferror(f) == 0;
  std::fclose(f);
  return ok;
}

int run_benchmarks_with_json(int argc, char** argv,
                             const std::string& bench_name,
                             const std::string& json_path) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  JsonExportReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  if (!reporter.write(bench_name, json_path)) {
    std::fprintf(stderr, "failed to write %s\n", json_path.c_str());
    return 1;
  }
  std::printf("wrote %s\n", json_path.c_str());
  benchmark::Shutdown();
  return 0;
}

}  // namespace vpm::bench
