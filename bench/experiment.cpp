#include "experiment.hpp"

namespace vpm::bench {

XDomainScenario make_x_scenario(const XDomainConfig& cfg) {
  XDomainScenario s;
  s.requested_loss = cfg.loss_rate;

  trace::TraceConfig tcfg;
  tcfg.prefixes = trace::default_prefix_pair();
  tcfg.packets_per_second = cfg.packets_per_second;
  tcfg.duration = net::seconds_f(cfg.duration_s);
  // Near-Poisson foreground: the delay variance comes from the congestion
  // scenario's background flows (§7.2), loss from Gilbert-Elliott.
  tcfg.burst_multiplier = 1.2;
  tcfg.burst_fraction = 0.2;
  tcfg.seed = cfg.seed;
  s.trace = trace::generate_trace(tcfg);

  // Delay series for X from the congestion simulator.
  sim::CongestionConfig ccfg;
  ccfg.kind = cfg.congestion;
  ccfg.udp = cfg.udp;
  ccfg.seed = cfg.seed + 101;
  const sim::CongestionResult congestion =
      sim::simulate_congestion(ccfg, s.trace);

  // Loss process inside X.
  static thread_local std::vector<loss::GilbertElliott> loss_keeper;
  loss_keeper.clear();
  loss_keeper.push_back(loss::GilbertElliott::with_target_loss(
      cfg.loss_rate, cfg.mean_loss_burst, cfg.seed + 202));

  sim::PathEnvironment env;
  env.domains.resize(3);
  env.links.resize(2);
  env.seed = cfg.seed + 303;
  env.domains[1].delay_of = [&congestion](sim::PacketIndex i) {
    const sim::DelayOutcome& o = congestion.outcomes[i];
    return o.dropped ? net::milliseconds(1) : o.delay;
  };
  if (cfg.loss_rate > 0.0) {
    env.domains[1].loss = &loss_keeper.back();
  }
  s.run = sim::run_path(s.trace, env);

  const auto truth = sim::true_domain_delays_ms(s.run, env, 1);
  s.true_x_delays_ms.reserve(truth.size());
  for (const auto& [pkt, ms] : truth) s.true_x_delays_ms.push_back(ms);
  return s;
}

core::HopReceipts collect_hop(const XDomainScenario& s, std::size_t hop_pos,
                              net::HopId hop_id, net::HopId prev,
                              net::HopId next,
                              const core::ProtocolParams& protocol,
                              const core::HopTuning& tuning,
                              net::Duration max_diff) {
  core::HopMonitorConfig mc;
  mc.protocol = protocol;
  mc.tuning = tuning;
  mc.path = net::PathId{
      .header_spec_id = protocol.header_spec.id(),
      .prefixes = trace::default_prefix_pair(),
      .previous_hop = prev,
      .next_hop = next,
      .max_diff = max_diff,
  };
  core::HopMonitor monitor(mc);
  for (const sim::Obs& o : s.run.hop_observations[hop_pos]) {
    monitor.observe(s.trace[o.pkt], o.when);
  }
  core::HopReceipts r;
  r.hop = hop_id;
  r.samples = monitor.collect_samples();
  r.aggregates = monitor.collect_aggregates(/*flush_open=*/true);
  return r;
}

}  // namespace vpm::bench
