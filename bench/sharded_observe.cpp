// Scaling curve of the sharded multi-core collector.
//
// Two complementary measurements:
//
//   * BM_ShardedObserve — the threaded end-to-end path (producer routes
//     into SPSC queues, one worker per shard applies batches).  Aggregate
//     throughput scales with shards ONLY when the host grants the process
//     that many cores; on a single-core runner the workers time-slice and
//     the queue hop is pure overhead, so treat single-core numbers as a
//     lower bound, not the scaling curve.
//   * BM_ShardedShardStage — the per-shard work in isolation: one shard's
//     cache observing exactly the slice the router would give it out of N
//     shards (the busiest shard, measured).  Shards share nothing, so N
//     cores run N of these concurrently and the aggregate rate is N x the
//     per-shard rate minus the routing stage; the `implied_agg_pps`
//     counter reports that shared-nothing extrapolation, which is how the
//     curve is measured on constrained CI hosts.
//   * BM_ShardRoute — the routing stage alone (mask, mix, mod), the only
//     per-packet work that does not parallelize.
#include <benchmark/benchmark.h>

#include <vector>

#include "collector/monitoring_cache.hpp"
#include "collector/sharded_collector.hpp"
#include "core/config.hpp"
#include "experiment.hpp"
#include "trace/synthetic_trace.hpp"

namespace {

using namespace vpm;

constexpr std::size_t kPaths = 1024;

const trace::MultiPathTrace& shared_trace() {
  static const trace::MultiPathTrace multi = [] {
    trace::MultiPathConfig cfg;
    cfg.path_count = kPaths;
    cfg.total_packets_per_second = 400'000;
    cfg.duration = net::seconds(1);
    cfg.seed = 7;
    return trace::generate_multi_path(cfg);
  }();
  return multi;
}

collector::ShardedCollector::Config sharded_config(std::size_t shards) {
  collector::ShardedCollector::Config cfg;
  cfg.cache.protocol.marker_rate = 1e-3;
  cfg.cache.tuning = core::HopTuning{.sample_rate = 0.01, .cut_rate = 1e-5};
  cfg.shard_count = shards;
  return cfg;
}

// End-to-end threaded ingest: route + enqueue on this thread, N workers
// consume.  One iteration = one full trace replay, quiesced via
// wait_idle() so every enqueued packet has been applied.
void sharded_observe_body(benchmark::State& state,
                          collector::ShardedCollector::Config cfg) {
  const trace::MultiPathTrace& multi = shared_trace();
  collector::ShardedCollector sharded(std::move(cfg), multi.paths);
  sharded.start(/*producer_count=*/1);

  constexpr std::size_t kSlice = 4096;
  std::vector<net::Timestamp> when(multi.packets.size());
  net::Duration offset{0};
  for (auto _ : state) {
    state.PauseTiming();
    // Keep local time monotone across replays (a backwards jump would
    // freeze the J-window drains, see BM_AggregatorObserve).
    for (std::size_t k = 0; k < multi.packets.size(); ++k) {
      when[k] = multi.packets[k].origin_time + offset;
    }
    offset += net::seconds(1);
    state.ResumeTiming();

    const std::span<const net::Packet> packets(multi.packets);
    const std::span<const net::Timestamp> times(when);
    for (std::size_t i = 0; i < packets.size(); i += kSlice) {
      const std::size_t n = std::min(kSlice, packets.size() - i);
      sharded.feed(0, packets.subspan(i, n), times.subspan(i, n));
    }
    sharded.flush(0);
    sharded.wait_idle();

    state.PauseTiming();
    sharded.stop();
    (void)sharded.drain();  // keep receipt buffers bounded
    sharded.start(1);
    state.ResumeTiming();
  }
  sharded.stop();
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(multi.packets.size()));
  state.counters["shards"] = static_cast<double>(sharded.shard_count());
  state.counters["queue_cap"] = static_cast<double>(sharded.queue_capacity());
  // How many workers actually landed on a pinned CPU (-1 = not pinned).
  double pinned = 0;
  for (const int c : sharded.worker_cpus()) {
    if (c >= 0) pinned += 1;
  }
  state.counters["pinned_workers"] = pinned;
}

/// Baseline placement: fixed-depth queues, unpinned workers,
/// constructor-thread allocation (the historical configuration).
void BM_ShardedObserve(benchmark::State& state) {
  sharded_observe_body(
      state, sharded_config(static_cast<std::size_t>(state.range(0))));
}
BENCHMARK(BM_ShardedObserve)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

/// All placement levers on: pinned workers, L2-auto queue depth, NUMA
/// first-touch shard construction, producer-side handoff coalescing.
/// Compare against BM_ShardedObserve at equal shard counts; on a host with
/// fewer cores than shards pinning just stacks workers onto the granted
/// CPUs, so expect parity there, not a win (the counters record how many
/// workers pinned).
void BM_ShardedObservePlaced(benchmark::State& state) {
  collector::ShardedCollector::Config cfg =
      sharded_config(static_cast<std::size_t>(state.range(0)));
  cfg.queue_capacity = 0;  // L2 auto-size
  cfg.handoff_batch_packets = 1024;
  cfg.placement.pin_workers = true;
  cfg.placement.numa_first_touch = true;
  sharded_observe_body(state, std::move(cfg));
}
BENCHMARK(BM_ShardedObservePlaced)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

// Per-shard stage cost: the busiest shard's cache observing its own slice.
// Shared-nothing extrapolation: implied_agg_pps = per-shard rate x shards.
void BM_ShardedShardStage(benchmark::State& state) {
  const auto shards = static_cast<std::size_t>(state.range(0));
  const trace::MultiPathTrace& multi = shared_trace();

  // Partition paths and packets exactly as the router would.
  std::vector<std::size_t> shard_of_path(multi.paths.size());
  std::vector<std::vector<net::PrefixPair>> shard_paths(shards);
  for (std::size_t i = 0; i < multi.paths.size(); ++i) {
    const std::size_t s = collector::ShardedCollector::shard_of_key(
        collector::PathClassifier::key_of(multi.paths[i]), shards);
    shard_of_path[i] = s;
    shard_paths[s].push_back(multi.paths[i]);
  }
  std::vector<std::vector<net::Packet>> shard_packets(shards);
  for (std::size_t i = 0; i < multi.packets.size(); ++i) {
    shard_packets[shard_of_path[multi.path_of[i]]].push_back(
        multi.packets[i]);
  }
  std::size_t busiest = 0;
  for (std::size_t s = 1; s < shards; ++s) {
    if (shard_packets[s].size() > shard_packets[busiest].size()) busiest = s;
  }
  const std::vector<net::Packet>& slice = shard_packets[busiest];

  collector::MonitoringCache cache(sharded_config(shards).cache,
                                   shard_paths[busiest]);
  std::vector<net::Timestamp> when(slice.size());
  net::Duration offset{0};
  for (auto _ : state) {
    state.PauseTiming();
    for (std::size_t k = 0; k < slice.size(); ++k) {
      when[k] = slice[k].origin_time + offset;
    }
    offset += net::seconds(1);
    state.ResumeTiming();

    cache.observe_batch(slice, when);

    state.PauseTiming();
    (void)cache.drain_all();
    state.ResumeTiming();
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(slice.size()));
  state.counters["shards"] = static_cast<double>(shards);
  state.counters["shard_packets"] = static_cast<double>(slice.size());
  // Shared-nothing extrapolation, imbalance included: with N cores the
  // trace finishes when the BUSIEST shard (measured here) finishes its
  // slice, so aggregate pps = whole trace / busiest-shard time.
  state.counters["implied_agg_pps"] = benchmark::Counter(
      static_cast<double>(state.iterations()) *
          static_cast<double>(multi.packets.size()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ShardedShardStage)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

// The serial routing stage alone: mask the header, mix, mod — what the
// ingest thread pays per packet before any shard touches it.
void BM_ShardRoute(benchmark::State& state) {
  const trace::MultiPathTrace& multi = shared_trace();
  const collector::ShardedCollector sharded(sharded_config(8), multi.paths);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sharded.shard_of(multi.packets[i].header));
    if (++i == multi.packets.size()) i = 0;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ShardRoute);

}  // namespace

int main(int argc, char** argv) {
  return vpm::bench::run_benchmarks_with_json(argc, argv, "sharded",
                                              "BENCH_sharded.json");
}
