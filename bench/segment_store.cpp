// Disk-path costs of the dissemination segment store (ISSUE 9).
//
//   * BM_SegmentAppend — steady-state producer churn: append a batch of
//     sealed envelopes, then GC it (erase_through frees whole segment
//     files), so the directory stays bounded and the number includes the
//     roll/seal/unlink cycle a long-running store actually pays.
//   * BM_SegmentReplay — crash-restart cost: re-open a populated
//     directory (recovery scan CRC-checks every record) and walk every
//     retained payload, the work a store does before serving after a
//     crash.
//   * BM_ConcurrentFetch/{1,4,16} — consumer-side contention on one
//     FederatedStore (4 shards, disk segments): N consumer threads each
//     walk every producer's retained stream through the locked fetch
//     API.  Throughput holds only while reads of different shards don't
//     serialize; items are envelopes fetched across all consumers.
#include <benchmark/benchmark.h>

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "dissem/envelope.hpp"
#include "dissem/federated_store.hpp"
#include "dissem/segment_store.hpp"
#include "experiment.hpp"

namespace {

using namespace vpm;

constexpr dissem::DomainKey kKey = 0xBE7C4;
constexpr std::size_t kPayloadBytes = 256;  // a typical receipt chunk

dissem::Envelope make_env(dissem::DomainId producer, std::uint64_t seq) {
  std::vector<std::byte> payload(kPayloadBytes);
  for (std::size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<std::byte>((seq + i) & 0xFF);
  }
  return dissem::seal(producer, seq, std::move(payload), kKey);
}

// One iteration = append kBatch envelopes, then erase them (whole-file
// unlink at the floor): the steady-state cycle of a producer whose
// consumers keep up.  Items are appended envelopes.
void BM_SegmentAppend(benchmark::State& state) {
  constexpr std::size_t kBatch = 2048;
  bench::ScratchDir scratch("bench-seg-append");
  dissem::SegmentStoreConfig cfg;
  cfg.directory = scratch.path();
  cfg.max_segment_bytes = 64 * 1024;
  dissem::SegmentStore store(cfg);
  std::uint64_t seq = 0;
  for (auto _ : state) {
    for (std::size_t i = 0; i < kBatch; ++i) store.append(make_env(1, ++seq));
    store.erase_through(1, seq);
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * kBatch));
  state.counters["segment_kb"] =
      static_cast<double>(cfg.max_segment_bytes) / 1e3;
}
BENCHMARK(BM_SegmentAppend)->Unit(benchmark::kMillisecond);

// One iteration = open a populated directory (recovery scan: length and
// CRC of every record re-checked) and visit every retained payload.
// Items are replayed envelopes.
void BM_SegmentReplay(benchmark::State& state) {
  constexpr std::size_t kRecords = 16 * 1024;
  bench::ScratchDir scratch("bench-seg-replay");
  dissem::SegmentStoreConfig cfg;
  cfg.directory = scratch.path();
  cfg.max_segment_bytes = 64 * 1024;
  {
    dissem::SegmentStore seed_store(cfg);
    for (std::uint64_t s = 1; s <= kRecords; ++s) {
      seed_store.append(make_env(1, s));
    }
  }
  std::size_t visited = 0;
  for (auto _ : state) {
    dissem::SegmentStore store(cfg);  // recovery-on-open
    store.visit_after(1, 0,
                      [&visited](std::uint64_t, std::span<const std::byte>) {
                        ++visited;
                      });
  }
  if (visited != state.iterations() * kRecords) {
    state.SkipWithError("replay lost records");
    return;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(visited));
}
BENCHMARK(BM_SegmentReplay)->Unit(benchmark::kMillisecond);

// N consumers, each walking every producer's full retained stream through
// the locked fetch API of a 4-shard disk-backed FederatedStore.
void BM_ConcurrentFetch(benchmark::State& state) {
  constexpr std::size_t kProducers = 8;
  constexpr std::uint64_t kSeqs = 1024;
  const std::size_t consumers = static_cast<std::size_t>(state.range(0));

  bench::ScratchDir scratch("bench-seg-fetch");
  dissem::FederatedStoreConfig cfg;
  cfg.shards = 4;
  cfg.directory = scratch.path();
  cfg.max_segment_bytes = 64 * 1024;
  dissem::FederatedStore fed(cfg);
  for (std::size_t p = 1; p <= kProducers; ++p) {
    fed.register_producer(static_cast<dissem::DomainId>(p), kKey);
    for (std::uint64_t s = 1; s <= kSeqs; ++s) {
      fed.ingest(make_env(static_cast<dissem::DomainId>(p), s));
    }
  }
  // Registered but never acking: cursors stay at 0 (every walk reads the
  // full stream) and nothing is garbage-collected mid-bench.
  std::vector<std::string> names;
  for (std::size_t c = 0; c < consumers; ++c) {
    names.push_back("bench-c" + std::to_string(c));
    fed.register_consumer(names.back());
  }

  for (auto _ : state) {
    std::vector<std::thread> workers;
    workers.reserve(consumers);
    std::atomic<std::size_t> fetched{0};
    for (std::size_t c = 0; c < consumers; ++c) {
      workers.emplace_back([&fed, &names, &fetched, c] {
        std::size_t seen = 0;
        std::size_t bytes = 0;
        for (std::size_t p = 1; p <= kProducers; ++p) {
          fed.fetch_from(names[c], static_cast<dissem::DomainId>(p),
                         [&seen, &bytes](std::uint64_t,
                                         std::span<const std::byte> payload) {
                           ++seen;
                           bytes += payload.size();
                         });
        }
        benchmark::DoNotOptimize(bytes);
        fetched.fetch_add(seen, std::memory_order_relaxed);
      });
    }
    for (std::thread& w : workers) w.join();
    if (fetched.load() != consumers * kProducers * kSeqs) {
      state.SkipWithError("fetch lost envelopes");
      return;
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(
      state.iterations() * consumers * kProducers * kSeqs));
  state.counters["consumers"] = static_cast<double>(consumers);
}
BENCHMARK(BM_ConcurrentFetch)
    ->Arg(1)
    ->Arg(4)
    ->Arg(16)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  return vpm::bench::run_benchmarks_with_json(argc, argv, "dissem",
                                              "BENCH_dissem.json");
}
