// FIG2 — reproduces Figure 2: "The accuracy with which domain X's delay
// performance is estimated as a function of X's sampling rate, for
// different levels of loss, when X uses our sampling algorithm.
// Congestion is caused by a bursty, high-rate UDP flow."
//
// Methodology (paper §7.2): a 100 kpps packet sequence is sent through
// congested domain X; loss inside X follows Gilbert-Elliott; X's HOPs run
// the delay sampler; a verifier estimates X's delay quantiles from the
// commonly sampled packets and is scored against the true delay
// distribution.  The y-axis is worst-case quantile error in msec.
#include <array>
#include <cstdio>
#include <vector>

#include "core/verifier.hpp"
#include "experiment.hpp"
#include "stats/delay_accuracy.hpp"
#include "stats/summary.hpp"

namespace {

using namespace vpm;

struct Cell {
  double accuracy_ms = 0.0;
  double ci_ms = 0.0;
  std::size_t samples = 0;
};

// Quantile grid for the Fig.-2 score: the paper's statements are of the
// form "delay below X to 90% of traffic" (§2.2); p99 of this bursty
// distribution sits on a near-vertical CDF segment where value-space
// error is meaningless, so the score covers p50..p95.
constexpr std::array<double, 4> kFig2Quantiles = {0.50, 0.75, 0.90, 0.95};

Cell run_cell(double sample_rate, double loss_rate, std::uint64_t seed) {
  bench::XDomainConfig cfg;
  cfg.loss_rate = loss_rate;
  cfg.seed = seed;
  const bench::XDomainScenario s = bench::make_x_scenario(cfg);

  const auto protocol = bench::bench_protocol();
  core::HopTuning tuning;
  tuning.sample_rate = sample_rate;
  tuning.cut_rate = 1e-5;

  core::PathVerifier verifier;
  verifier.add_hop(bench::collect_hop(s, 1, 2, 1, 3, protocol, tuning));
  verifier.add_hop(bench::collect_hop(s, 2, 3, 2, 4, protocol, tuning));

  const core::DomainDelayReport delay = verifier.domain_delay(2, 3);
  if (!delay.usable()) return Cell{};
  const stats::DelayAccuracyReport report = stats::score_delay_estimate(
      s.true_x_delays_ms, delay.sample_delays_ms, 0.95, kFig2Quantiles);
  return Cell{.accuracy_ms = report.worst_abs_error,
              .ci_ms = report.worst_ci_half_width,
              .samples = report.samples_used};
}

}  // namespace

int main() {
  const std::vector<double> sampling_rates = {0.05, 0.01, 0.005, 0.001};
  const std::vector<double> loss_rates = {0.0, 0.10, 0.25, 0.50};
  constexpr int kTrials = 5;

  std::printf("FIG2: delay-estimation accuracy [msec] vs sampling rate\n");
  std::printf(
      "Setup: 100 kpps x 10 s sequence through congested X (bursty UDP\n"
      "cross-traffic), Gilbert-Elliott loss inside X, %d trials/cell.\n\n",
      kTrials);
  std::printf("Paper (Fig. 2, approximate read-off):\n");
  std::printf("  rate%%   no-loss  10%%loss  25%%loss  50%%loss\n");
  std::printf("  5.0       ~0.1     ~0.3     ~0.5     ~1.0\n");
  std::printf("  1.0       ~0.3     ~0.8     ~2.0     ~2.5\n");
  std::printf("  0.5       ~0.4     ~1.2     ~2.5     ~3.5\n");
  std::printf("  0.1       ~0.9     ~2.0     ~3.5     ~5.5\n\n");

  std::printf("Measured (worst |estimated - true| over quantiles "
              "{.5,.75,.9,.95}):\n");
  std::printf("%7s %10s %10s %10s %10s\n", "rate%", "no-loss", "10%loss",
              "25%loss", "50%loss");
  vpm::bench::rule(52);
  for (const double rate : sampling_rates) {
    std::printf("%7.2f", rate * 100.0);
    for (const double loss : loss_rates) {
      stats::OnlineSummary acc;
      for (int t = 0; t < kTrials; ++t) {
        const Cell c =
            run_cell(rate, loss, 1000 + static_cast<std::uint64_t>(t));
        acc.add(c.accuracy_ms);
      }
      std::printf(" %10.3f", acc.mean());
    }
    std::printf("\n");
  }
  std::printf(
      "\nShape checks: accuracy degrades smoothly as the sampling rate\n"
      "drops and as loss rises; even 0.1%% sampling stays in the low\n"
      "single-digit msec range (sufficient for SLA verification, which\n"
      "promises delays of multiple tens of msec [1]).\n");
  return 0;
}
