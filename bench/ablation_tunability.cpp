// ABL-TUNABILITY — Sections 5.2 and 6.2: each HOP picks its own sampling
// threshold sigma and partition threshold delta, yet commonly sampled
// packets / common cut points are maximal (= the lower-rate HOP's whole
// set).  Also compares DigestMode::kSingle (the paper's single digest for
// all roles) against kIndependent (our default; see DESIGN.md §5).
#include <cstdio>
#include <set>
#include <vector>

#include "core/aggregator.hpp"
#include "core/config.hpp"
#include "core/sampler.hpp"
#include "experiment.hpp"
#include "trace/synthetic_trace.hpp"

namespace {

using namespace vpm;

std::vector<net::Packet> make_trace(std::uint64_t seed) {
  trace::TraceConfig tcfg;
  tcfg.prefixes = trace::default_prefix_pair();
  tcfg.packets_per_second = 50'000;
  tcfg.duration = net::seconds(5);
  tcfg.seed = seed;
  return trace::generate_trace(tcfg);
}

std::set<net::PacketDigest> sample_ids(const std::vector<net::Packet>& trace,
                                       const core::ProtocolParams& protocol,
                                       double rate) {
  const net::DigestEngine engine = protocol.make_engine();
  core::DelaySampler s(engine, protocol.marker_threshold(),
                       core::sample_threshold_for(protocol, rate));
  for (const auto& p : trace) s.observe(p, p.origin_time);
  std::set<net::PacketDigest> ids;
  for (const auto& r : s.take_samples()) ids.insert(r.pkt_id);
  return ids;
}

std::set<net::PacketDigest> cut_ids(const std::vector<net::Packet>& trace,
                                    const core::ProtocolParams& protocol,
                                    double cut_rate) {
  const net::DigestEngine engine = protocol.make_engine();
  core::Aggregator a(engine, core::cut_threshold_for(cut_rate),
                     net::Duration{0});
  for (const auto& p : trace) a.observe(p, p.origin_time);
  auto closed = a.take_closed();
  if (auto last = a.flush_open(); last.has_value()) closed.push_back(*last);
  std::set<net::PacketDigest> ids;
  for (std::size_t i = 1; i < closed.size(); ++i) {
    ids.insert(closed[i].agg.first);
  }
  return ids;
}

double overlap_ratio(const std::set<net::PacketDigest>& small,
                     const std::set<net::PacketDigest>& large) {
  if (small.empty()) return 1.0;
  std::size_t common = 0;
  for (const auto id : small) {
    if (large.contains(id)) ++common;
  }
  return static_cast<double>(common) / static_cast<double>(small.size());
}

}  // namespace

int main() {
  std::printf("ABL-TUNABILITY: independent per-HOP tuning, maximal overlap\n\n");
  const auto trace = make_trace(9000);

  for (const auto mode :
       {net::DigestMode::kIndependent, net::DigestMode::kSingle}) {
    core::ProtocolParams protocol;
    protocol.marker_rate = 1e-3;
    protocol.digest_mode = mode;
    std::printf("Digest mode: %s\n",
                mode == net::DigestMode::kSingle
                    ? "kSingle (paper-faithful: one digest for all roles)"
                    : "kIndependent (default: per-role seeds)");

    std::printf("  %-28s %12s %12s %10s\n", "HOP-pair rates",
                "low-rate set", "high-rate", "overlap");
    for (const auto& [lo, hi] : std::vector<std::pair<double, double>>{
             {0.01, 0.05}, {0.005, 0.01}, {0.01, 0.10}}) {
      const auto a = sample_ids(trace, protocol, lo);
      const auto b = sample_ids(trace, protocol, hi);
      std::printf("  sampling %5.2f%% vs %5.2f%%   %12zu %12zu %9.1f%%\n",
                  lo * 100, hi * 100, a.size(), b.size(),
                  overlap_ratio(a, b) * 100.0);
    }
    for (const auto& [lo, hi] : std::vector<std::pair<double, double>>{
             {1e-4, 1e-3}, {5e-4, 5e-3}}) {
      const auto a = cut_ids(trace, protocol, lo);
      const auto b = cut_ids(trace, protocol, hi);
      std::printf("  cuts     %5.3f%% vs %5.3f%%  %12zu %12zu %9.1f%%\n",
                  lo * 100, hi * 100, a.size(), b.size(),
                  overlap_ratio(a, b) * 100.0);
    }
    std::printf("\n");
  }
  std::printf(
      "Shape checks: overlap is 100%% in every row — the lower-rate HOP's\n"
      "samples/cuts are a strict subset of the higher-rate HOP's, for both\n"
      "digest modes, so independently tuned HOPs never waste receipts on\n"
      "partially overlapping sets (the §5.2/§6.2 guarantee).\n");
  return 0;
}
