// VERIF — reproduces the Section 7.2 "Verifiability" numbers: domain L
// wants to *verify* (not merely read) X's delay performance, using
// receipts from X's neighbours.  The paper's example: X samples at 1% and
// loses 25% of its traffic; if N samples at 1%, L verifies X's delay with
// ~2 ms accuracy, but if N samples at 0.1%, only ~5 ms.
//
// Verification here means estimating X's delay WITHOUT trusting X's own
// receipts: L brackets X between its own egress HOP (3) and N's ingress
// HOP (6); the delay across that bracket equals X's delay plus two
// (bounded, MaxDiff-checked) link crossings, and the common-sample count
// is governed by the lower of the two sampling rates.
#include <array>
#include <cstdio>
#include <vector>

#include "core/verifier.hpp"
#include "experiment.hpp"
#include "loss/gilbert_elliott.hpp"
#include "sim/topology.hpp"
#include "stats/delay_accuracy.hpp"
#include "stats/summary.hpp"
#include "trace/synthetic_trace.hpp"

namespace {

using namespace vpm;

constexpr std::array<double, 4> kVerifQuantiles = {0.50, 0.75, 0.90, 0.95};

struct Outcome {
  double estimation_ms = 0.0;   // from X's own receipts (hops 4,5)
  double verification_ms = 0.0; // from L's + N's receipts (hops 3,6)
  std::size_t verification_samples = 0;
};

Outcome run_trial(double x_rate, double neighbor_rate, double loss,
                  std::uint64_t seed) {
  // Full Figure-1 path so hops 3 and 6 exist.
  trace::TraceConfig tcfg;
  tcfg.prefixes = trace::default_prefix_pair();
  tcfg.packets_per_second = 100'000;
  tcfg.duration = net::seconds(10);
  tcfg.burst_multiplier = 1.2;
  tcfg.burst_fraction = 0.2;
  tcfg.seed = seed;
  const auto trace = trace::generate_trace(tcfg);

  sim::CongestionConfig ccfg;
  // Same congestion scale as the Fig.-2 bench: spikes in the 0-15 ms band.
  ccfg.udp = sim::UdpOnOffFlow::Config{.peak_bps = 400e6,
                                       .packet_bytes = 1400,
                                       .mean_on = net::milliseconds(30),
                                       .mean_off = net::milliseconds(150),
                                       .seed = 1};
  ccfg.seed = seed + 7;
  const sim::CongestionResult congestion =
      sim::simulate_congestion(ccfg, trace);

  const sim::PathTopology topo = sim::PathTopology::figure_one();
  sim::PathEnvironment env = topo.make_environment(seed + 11);
  auto x_loss = loss::GilbertElliott::with_target_loss(loss, 10.0, seed + 13);
  env.domains[2].delay_of = [&congestion](sim::PacketIndex i) {
    return congestion.outcomes[i].delay;
  };
  if (loss > 0) env.domains[2].loss = &x_loss;
  const sim::PathRunResult run = sim::run_path(trace, env);

  const auto truth = sim::true_domain_delays_ms(run, env, 2);
  std::vector<double> truth_ms;
  truth_ms.reserve(truth.size());
  for (const auto& [pkt, ms] : truth) truth_ms.push_back(ms);

  // Monitors: X's HOPs (positions 3,4) at x_rate; L's egress (2) and N's
  // ingress (5) at neighbor_rate.
  const auto protocol = bench::bench_protocol();
  auto collect = [&](std::size_t pos, double rate) {
    core::HopMonitorConfig mc;
    mc.protocol = protocol;
    mc.tuning = core::HopTuning{.sample_rate = rate, .cut_rate = 1e-5};
    mc.path = net::PathId{
        .header_spec_id = protocol.header_spec.id(),
        .prefixes = trace::default_prefix_pair(),
        .previous_hop = static_cast<net::HopId>(pos),
        .next_hop = static_cast<net::HopId>(pos + 2),
        .max_diff = net::milliseconds(5),
    };
    core::HopMonitor m(mc);
    for (const sim::Obs& o : run.hop_observations[pos]) {
      m.observe(trace[o.pkt], o.when);
    }
    core::HopReceipts r;
    r.hop = static_cast<net::HopId>(pos + 1);
    r.samples = m.collect_samples();
    r.aggregates = m.collect_aggregates(true);
    return r;
  };

  core::PathVerifier v;
  v.add_hop(collect(2, neighbor_rate));  // hop 3: L egress
  v.add_hop(collect(3, x_rate));         // hop 4: X ingress
  v.add_hop(collect(4, x_rate));         // hop 5: X egress
  v.add_hop(collect(5, neighbor_rate));  // hop 6: N ingress

  Outcome out;
  {
    const auto d = v.domain_delay(4, 5);
    if (d.usable()) {
      out.estimation_ms =
          stats::score_delay_estimate(truth_ms, d.sample_delays_ms, 0.95,
                                      kVerifQuantiles)
              .worst_abs_error;
    }
  }
  {
    // Bracket 3 -> 6 spans link(3,4) + X + link(5,6); the links add a
    // known fixed 2 x 50 us, subtracted here.
    const auto d = v.domain_delay(3, 6);
    if (d.usable()) {
      std::vector<double> adjusted = d.sample_delays_ms;
      for (double& ms : adjusted) ms -= 0.1;
      out.verification_ms =
          stats::score_delay_estimate(truth_ms, adjusted, 0.95,
                                      kVerifQuantiles)
              .worst_abs_error;
      out.verification_samples = d.common_samples;
    }
  }
  return out;
}

}  // namespace

int main() {
  std::printf("VERIF: verification accuracy vs neighbour sampling rate\n");
  std::printf(
      "Setup: X samples at 1%% and loses 25%% (Gilbert-Elliott); L verifies\n"
      "X's delay using receipts from hops 3 (its own) and 6 (N's).\n\n");
  std::printf(
      "Paper (§7.2): N @1%% -> verification at ~2 ms; N @0.1%% -> ~5 ms.\n\n");

  const std::vector<double> neighbor_rates = {0.01, 0.005, 0.001};
  constexpr int kTrials = 5;

  std::printf("%12s %16s %18s %14s\n", "N-rate%", "estimation[ms]",
              "verification[ms]", "verif-samples");
  vpm::bench::rule(64);
  for (const double nrate : neighbor_rates) {
    stats::OnlineSummary est;
    stats::OnlineSummary ver;
    stats::OnlineSummary n_samples;
    for (int t = 0; t < kTrials; ++t) {
      const Outcome o =
          run_trial(0.01, nrate, 0.25, 3000 + static_cast<std::uint64_t>(t));
      est.add(o.estimation_ms);
      ver.add(o.verification_ms);
      n_samples.add(static_cast<double>(o.verification_samples));
    }
    std::printf("%12.2f %16.3f %18.3f %14.0f\n", nrate * 100.0, est.mean(),
                ver.mean(), n_samples.mean());
  }
  std::printf(
      "\nShape checks: estimation accuracy (X's own receipts, 1%%) is\n"
      "unchanged across rows; verification accuracy degrades as N's rate\n"
      "drops — a domain's tuning bounds how well it can verify OTHERS\n"
      "(the paper's closing point in §7.2).\n");
  return 0;
}
