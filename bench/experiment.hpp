// Shared experiment plumbing for the benchmark harnesses: the paper's
// canonical scenario (a congested domain X bracketed by honest neighbours)
// and receipt-collection helpers.
#ifndef VPM_BENCH_EXPERIMENT_HPP
#define VPM_BENCH_EXPERIMENT_HPP

#include <benchmark/benchmark.h>

#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <string>
#include <system_error>
#include <vector>

#include "core/hop_monitor.hpp"
#include "core/verifier.hpp"
#include "loss/gilbert_elliott.hpp"
#include "sim/congestion.hpp"
#include "sim/path_run.hpp"
#include "trace/synthetic_trace.hpp"

namespace vpm::bench {

/// Protocol parameters used across all benches: marker every ~1000 packets
/// (= every ~10 ms at the paper's 100 kpps), J = 10 ms.
[[nodiscard]] inline core::ProtocolParams bench_protocol() {
  core::ProtocolParams p;
  p.marker_rate = 1e-3;
  p.reorder_window_j = net::milliseconds(10);
  return p;
}

/// RAII scratch directory for benches that hit real files (segment-store
/// measurements).  Shares the `vpm-test-` prefix with the test suite's
/// TempDir so the CI tmpdir-hygiene step catches benches that litter too.
class ScratchDir {
 public:
  explicit ScratchDir(const std::string& tag) {
    static std::atomic<unsigned> counter{0};
    path_ = std::filesystem::temp_directory_path() /
            ("vpm-test-" + tag + "-" + std::to_string(::getpid()) + "-" +
             std::to_string(counter.fetch_add(1)));
    std::filesystem::remove_all(path_);
    std::filesystem::create_directories(path_);
  }
  ScratchDir(const ScratchDir&) = delete;
  ScratchDir& operator=(const ScratchDir&) = delete;
  ~ScratchDir() {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);  // best effort; never throws
  }
  [[nodiscard]] const std::filesystem::path& path() const noexcept {
    return path_;
  }

 private:
  std::filesystem::path path_;
};

/// The §7.2 methodology in one object: a packet sequence, the congestion
/// delay series it would see inside domain X, and the loss model X applies.
struct XDomainScenario {
  std::vector<net::Packet> trace;
  /// 3-domain path (S - X - D): hop 0 = S egress, 1 = X ingress,
  /// 2 = X egress, 3 = D ingress.
  sim::PathRunResult run;
  /// Ground-truth delay (ms) through X for every delivered packet.
  std::vector<double> true_x_delays_ms;
  double requested_loss = 0.0;
};

struct XDomainConfig {
  double packets_per_second = 100'000.0;  ///< the paper's sequence rate
  double duration_s = 10.0;
  double loss_rate = 0.0;                 ///< Gilbert-Elliott inside X
  double mean_loss_burst = 10.0;
  sim::CongestionKind congestion = sim::CongestionKind::kBurstyUdp;
  /// Shorter, sharper UDP bursts than the sim default: the delay spikes
  /// stay in the 0-15 ms band of the paper's Figure 2 instead of filling
  /// the whole buffer.
  sim::UdpOnOffFlow::Config udp = {
      .peak_bps = 400e6,
      .packet_bytes = 1400,
      .mean_on = net::milliseconds(30),
      .mean_off = net::milliseconds(150),
      .seed = 1,
  };
  std::uint64_t seed = 1;
};

[[nodiscard]] XDomainScenario make_x_scenario(const XDomainConfig& cfg);

/// Run a monitor over one HOP's observations and package the receipts.
[[nodiscard]] core::HopReceipts collect_hop(
    const XDomainScenario& s, std::size_t hop_pos, net::HopId hop_id,
    net::HopId prev, net::HopId next, const core::ProtocolParams& protocol,
    const core::HopTuning& tuning,
    net::Duration max_diff = net::milliseconds(5));

/// printf a horizontal rule of the given width.
inline void rule(int width) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

// ------------------------------------------------------------------------
// Machine-readable bench output.
//
// Every data-plane bench binary writes a BENCH_<name>.json next to the
// console table, so CI (and the roadmap's measured-curve entries) can
// consume per-packet numbers without scraping benchmark text:
//
//   {
//     "bench": "fastpath",
//     "simd_tier": "avx2",
//     "results": [
//       {"name": "BM_CacheObservePathSweep/100000",
//        "ns_per_packet": 139.2, "mpps": 7.18, "hashes_per_packet": 1.0},
//       ...
//     ]
//   }
//
// ns_per_packet/mpps derive from SetItemsProcessed (items == packets, the
// convention every bench in this tree follows); hashes_per_packet is
// emitted when the benchmark sets a "hashes/pkt" counter and omitted
// otherwise.  Runs that processed no items (setup failures, pure-ms
// benches without items) are skipped, never written as zeros.

/// Console output plus a JSON export of per-packet rates (see above).
class JsonExportReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& reports) override;

  /// Serialize everything reported so far to `path` (overwrites).
  /// Returns false (and keeps the console output intact) on I/O failure.
  bool write(const std::string& bench_name, const std::string& path) const;

 private:
  struct Row {
    std::string name;
    double ns_per_packet = 0;
    double mpps = 0;
    double hashes_per_packet = 0;
    bool has_hashes = false;
  };
  std::vector<Row> rows_;
};

/// Standard bench main body: run all registered benchmarks with console
/// output and write BENCH JSON to `json_path`.  Returns the process exit
/// code.
int run_benchmarks_with_json(int argc, char** argv,
                             const std::string& bench_name,
                             const std::string& json_path);

}  // namespace vpm::bench

#endif  // VPM_BENCH_EXPERIMENT_HPP
