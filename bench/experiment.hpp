// Shared experiment plumbing for the benchmark harnesses: the paper's
// canonical scenario (a congested domain X bracketed by honest neighbours)
// and receipt-collection helpers.
#ifndef VPM_BENCH_EXPERIMENT_HPP
#define VPM_BENCH_EXPERIMENT_HPP

#include <cstdint>
#include <cstdio>
#include <vector>

#include "core/hop_monitor.hpp"
#include "core/verifier.hpp"
#include "loss/gilbert_elliott.hpp"
#include "sim/congestion.hpp"
#include "sim/path_run.hpp"
#include "trace/synthetic_trace.hpp"

namespace vpm::bench {

/// Protocol parameters used across all benches: marker every ~1000 packets
/// (= every ~10 ms at the paper's 100 kpps), J = 10 ms.
[[nodiscard]] inline core::ProtocolParams bench_protocol() {
  core::ProtocolParams p;
  p.marker_rate = 1e-3;
  p.reorder_window_j = net::milliseconds(10);
  return p;
}

/// The §7.2 methodology in one object: a packet sequence, the congestion
/// delay series it would see inside domain X, and the loss model X applies.
struct XDomainScenario {
  std::vector<net::Packet> trace;
  /// 3-domain path (S - X - D): hop 0 = S egress, 1 = X ingress,
  /// 2 = X egress, 3 = D ingress.
  sim::PathRunResult run;
  /// Ground-truth delay (ms) through X for every delivered packet.
  std::vector<double> true_x_delays_ms;
  double requested_loss = 0.0;
};

struct XDomainConfig {
  double packets_per_second = 100'000.0;  ///< the paper's sequence rate
  double duration_s = 10.0;
  double loss_rate = 0.0;                 ///< Gilbert-Elliott inside X
  double mean_loss_burst = 10.0;
  sim::CongestionKind congestion = sim::CongestionKind::kBurstyUdp;
  /// Shorter, sharper UDP bursts than the sim default: the delay spikes
  /// stay in the 0-15 ms band of the paper's Figure 2 instead of filling
  /// the whole buffer.
  sim::UdpOnOffFlow::Config udp = {
      .peak_bps = 400e6,
      .packet_bytes = 1400,
      .mean_on = net::milliseconds(30),
      .mean_off = net::milliseconds(150),
      .seed = 1,
  };
  std::uint64_t seed = 1;
};

[[nodiscard]] XDomainScenario make_x_scenario(const XDomainConfig& cfg);

/// Run a monitor over one HOP's observations and package the receipts.
[[nodiscard]] core::HopReceipts collect_hop(
    const XDomainScenario& s, std::size_t hop_pos, net::HopId hop_id,
    net::HopId prev, net::HopId next, const core::ProtocolParams& protocol,
    const core::HopTuning& tuning,
    net::Duration max_diff = net::milliseconds(5));

/// printf a horizontal rule of the given width.
inline void rule(int width) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

}  // namespace vpm::bench

#endif  // VPM_BENCH_EXPERIMENT_HPP
