// ABL-MARKER — the marker-rate design constant mu (Section 5.1).  The
// paper fixes markers ~10 ms apart; this ablation shows the trade-off
// that fixes it: more frequent markers shrink the temp buffer (less SRAM,
// §7.1) but raise the floor on the sampling rate and increase the
// always-sampled (and therefore adversary-predictable) marker fraction;
// rarer markers do the opposite and lengthen loss-desync windows (§5.3).
#include <cstdio>
#include <set>
#include <vector>

#include "core/config.hpp"
#include "core/sampler.hpp"
#include "experiment.hpp"
#include "loss/gilbert_elliott.hpp"
#include "trace/synthetic_trace.hpp"

namespace {

using namespace vpm;

struct Row {
  double buffer_peak_ms = 0.0;      ///< peak temp buffer, as ms of traffic
  std::size_t buffer_peak_records = 0;
  double marker_frac_of_samples = 0.0;
  double common_frac_under_loss = 0.0;  ///< samples shared across a 25%-lossy hop
};

Row run_row(double marker_rate, std::uint64_t seed) {
  trace::TraceConfig tcfg;
  tcfg.prefixes = trace::default_prefix_pair();
  tcfg.packets_per_second = 100'000;
  tcfg.duration = net::seconds(5);
  tcfg.seed = seed;
  const auto trace = trace::generate_trace(tcfg);

  core::ProtocolParams protocol;
  protocol.marker_rate = marker_rate;
  const net::DigestEngine engine = protocol.make_engine();
  // Keep 1% of non-marker sampling on top of the markers so the
  // marker share of samples is meaningful at every mu.
  const double sample_rate = marker_rate + 0.01 * (1.0 - marker_rate);
  const std::uint32_t sigma =
      core::sample_threshold_for(protocol, sample_rate);

  core::DelaySampler up(engine, protocol.marker_threshold(), sigma);
  core::DelaySampler down = up;
  auto ge = loss::GilbertElliott::with_target_loss(0.25, 10.0, seed + 9);
  for (const auto& p : trace) {
    up.observe(p, p.origin_time);
    if (!ge.should_drop()) down.observe(p, p.origin_time);
  }
  const auto up_samples = up.take_samples();
  const auto down_samples = down.take_samples();

  std::set<net::PacketDigest> down_ids;
  for (const auto& s : down_samples) down_ids.insert(s.pkt_id);
  std::size_t common = 0;
  std::size_t markers = 0;
  for (const auto& s : up_samples) {
    if (down_ids.contains(s.pkt_id)) ++common;
    if (s.is_marker) ++markers;
  }

  return Row{
      .buffer_peak_ms = static_cast<double>(up.buffer_peak()) / 100.0,
      .buffer_peak_records = up.buffer_peak(),
      .marker_frac_of_samples =
          static_cast<double>(markers) / static_cast<double>(up_samples.size()),
      // Of the samples that survived the 25% loss, how many did the
      // downstream HOP also sample?  Lost markers cost whole rounds.
      .common_frac_under_loss = static_cast<double>(common) /
                                (0.75 * static_cast<double>(up_samples.size())),
  };
}

}  // namespace

int main() {
  std::printf("ABL-MARKER: marker rate mu (system constant) trade-off\n");
  std::printf(
      "Setup: 100 kpps sequence; downstream HOP behind 25%% Gilbert-Elliott\n"
      "loss; sampling rate = marker rate + 1%% non-marker samples.\n\n");

  std::printf("%14s %14s %14s %16s %16s\n", "marker-rate", "buffer[pkts]",
              "buffer[ms]", "markers/samples", "common-after-loss");
  vpm::bench::rule(80);
  for (const double mu : {1.0 / 100, 1.0 / 1000, 1.0 / 10000}) {
    const Row r = run_row(mu, 8000);
    std::printf("%14.5f %14zu %14.1f %15.1f%% %15.1f%%\n", mu,
                r.buffer_peak_records, r.buffer_peak_ms,
                r.marker_frac_of_samples * 100.0,
                r.common_frac_under_loss * 100.0);
  }
  std::printf(
      "\nShape checks: the paper's mu (~1/1000 at 100 kpps = 10 ms between\n"
      "markers) keeps the temp buffer at ~10 ms of traffic (SRAM-sized,\n"
      "§7.1) while markers stay a small share of samples; much rarer\n"
      "markers inflate the buffer an order of magnitude for little gain.\n");
  return 0;
}
