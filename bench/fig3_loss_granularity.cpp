// FIG3 — reproduces Figure 3: "The granularity at which domain X's loss
// performance is computed as a function of the loss rate introduced by X,
// when X uses our aggregation algorithm."
//
// Methodology (paper §7.2): X produces one aggregate per ~N packets tuned
// so an aggregate spans ~1 second of its sequence; loss inside X follows
// Gilbert-Elliott; the verifier joins X's ingress/egress aggregate
// receipts and reports the mean time span of one joined aggregate — the
// granularity at which loss is computable.
//
// Scale note: the paper uses 100 kpps with 100,000-packet aggregates (1 s
// nominal); we preserve the aggregate-duration ratio at 20 kpps with
// 20,000-packet aggregates so multiple trials stay fast.  Granularity in
// *seconds* is the invariant being measured.
#include <cstdio>
#include <vector>

#include "core/verifier.hpp"
#include "experiment.hpp"
#include "stats/summary.hpp"

namespace {

using namespace vpm;

struct Cell {
  double mean_granularity_s = 0.0;
  double max_granularity_s = 0.0;
  double measured_loss = 0.0;
};

Cell run_cell(double loss_rate, std::uint64_t seed) {
  bench::XDomainConfig cfg;
  cfg.packets_per_second = 20'000.0;
  cfg.duration_s = 60.0;
  cfg.loss_rate = loss_rate;
  cfg.congestion = sim::CongestionKind::kNone;  // delay is irrelevant here
  cfg.seed = seed;
  const bench::XDomainScenario s = bench::make_x_scenario(cfg);

  const auto protocol = bench::bench_protocol();
  core::HopTuning tuning;
  tuning.sample_rate = 0.01;
  tuning.cut_rate = 1.0 / 20'000.0;  // one aggregate per second of traffic

  core::PathVerifier verifier;
  verifier.add_hop(bench::collect_hop(s, 1, 2, 1, 3, protocol, tuning));
  verifier.add_hop(bench::collect_hop(s, 2, 3, 2, 4, protocol, tuning));

  const core::DomainLossReport loss = verifier.domain_loss(2, 3);
  return Cell{.mean_granularity_s = loss.mean_granularity_s,
              .max_granularity_s = loss.max_granularity_s,
              .measured_loss = loss.loss_rate()};
}

}  // namespace

int main() {
  const std::vector<double> loss_rates = {0.0,  0.05, 0.10, 0.15, 0.20,
                                          0.25, 0.30, 0.35, 0.40, 0.45,
                                          0.50};
  constexpr int kTrials = 3;

  std::printf("FIG3: loss-computation granularity [sec] vs loss rate\n");
  std::printf(
      "Setup: one aggregate per ~1 s of traffic, Gilbert-Elliott loss\n"
      "inside X, %d x 60 s trials per point.\n\n",
      kTrials);
  std::printf(
      "Paper (Fig. 3, approximate read-off): 1.2 s at 0%% loss, ~1.5 s at\n"
      "25%%, ~2.4-2.6 s at 50%% — a smooth rise, because granularity only\n"
      "coarsens when a cutting packet itself is lost (survival ~ 1/(1-p)).\n\n");

  std::printf("%8s %14s %14s %14s %14s\n", "loss%", "mean-gran[s]",
              "max-gran[s]", "1/(1-p)[s]", "loss-check");
  vpm::bench::rule(70);
  for (const double loss : loss_rates) {
    stats::OnlineSummary mean_g;
    stats::OnlineSummary max_g;
    stats::OnlineSummary measured;
    for (int t = 0; t < kTrials; ++t) {
      const Cell c = run_cell(loss, 2000 + static_cast<std::uint64_t>(t));
      mean_g.add(c.mean_granularity_s);
      max_g.add(c.max_granularity_s);
      measured.add(c.measured_loss);
    }
    std::printf("%8.0f %14.2f %14.2f %14.2f %13.1f%%\n", loss * 100.0,
                mean_g.mean(), max_g.mean(),
                loss < 1.0 ? 1.0 / (1.0 - loss) : 0.0,
                measured.mean() * 100.0);
  }
  std::printf(
      "\nShape checks: granularity rises smoothly with loss and stays\n"
      "within ~2x of the 1 s aggregate duration even at 50%% loss —\n"
      "far finer than monthly SLA loss terms require (§6.3).\n"
      "'loss-check' is the loss the verifier computed from receipts; it\n"
      "must track the injected rate (exactness of the loss computation).\n");
  return 0;
}
