// OVH-P — measures the data-plane cost per packet of the collector module
// with google-benchmark, grounding the §7.1 processing claim ("three
// memory accesses, one hash function, and one timestamp computation per
// packet ... within the capabilities of modern hardware").
#include <benchmark/benchmark.h>

#include <map>
#include <vector>

#include "collector/monitoring_cache.hpp"
#include "core/aggregator.hpp"
#include "core/config.hpp"
#include "core/sampler.hpp"
#include "experiment.hpp"
#include "net/digest.hpp"
#include "net/simd_dispatch.hpp"
#include "trace/synthetic_trace.hpp"

namespace {

using namespace vpm;

const std::vector<net::Packet>& shared_trace() {
  static const std::vector<net::Packet> trace = [] {
    trace::TraceConfig cfg;
    cfg.prefixes = trace::default_prefix_pair();
    cfg.packets_per_second = 100'000;
    cfg.duration = net::seconds(2);
    cfg.seed = 7;
    return trace::generate_trace(cfg);
  }();
  return trace;
}

core::ProtocolParams protocol() {
  core::ProtocolParams p;
  p.marker_rate = 1e-3;
  return p;
}

void BM_Digest(benchmark::State& state) {
  const auto& trace = shared_trace();
  const net::DigestEngine engine;
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.packet_id(trace[i]));
    if (++i == trace.size()) i = 0;  // avoid a division per packet
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Digest);

// One hash pass producing all three role values — the data-plane digest
// step after the single-hash refactor.  Compare against BM_Digest: the
// seeded avalanche finalizers should cost a few cycles, not a re-hash.
void BM_Decide(benchmark::State& state) {
  const auto& trace = shared_trace();
  const net::DigestEngine engine;
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.decide(trace[i]));
    if (++i == trace.size()) i = 0;  // avoid a division per packet
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Decide);

void BM_SamplerObserve(benchmark::State& state) {
  const auto& trace = shared_trace();
  const auto params = protocol();
  const net::DigestEngine engine = params.make_engine();
  core::DelaySampler sampler(
      engine, params.marker_threshold(),
      core::sample_threshold_for(params, 0.01));
  std::size_t i = 0;
  for (auto _ : state) {
    sampler.observe(trace[i], trace[i].origin_time);
    if (++i == trace.size()) i = 0;  // avoid a division per packet
    if (i == 0) (void)sampler.take_samples();  // drain, stay bounded
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SamplerObserve);

void BM_AggregatorObserve(benchmark::State& state) {
  const auto& trace = shared_trace();
  const auto params = protocol();
  const net::DigestEngine engine = params.make_engine();
  core::Aggregator agg(engine, core::cut_threshold_for(1e-5),
                       params.reorder_window_j);
  // Keep observation time monotone across trace replays: a backwards time
  // jump would freeze the J-window drain and grow the recent buffer to the
  // whole trace, measuring an artifact instead of the steady state.
  net::Duration offset{0};
  std::size_t i = 0;
  for (auto _ : state) {
    agg.observe(trace[i], trace[i].origin_time + offset);
    if (++i == trace.size()) i = 0;  // avoid a division per packet
    if (i == 0) {
      (void)agg.take_closed();
      offset += net::seconds(2);
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AggregatorObserve);

void BM_FullCollectorObserve(benchmark::State& state) {
  const auto paths_n = static_cast<std::size_t>(state.range(0));
  trace::MultiPathConfig mcfg;
  mcfg.path_count = paths_n;
  mcfg.total_packets_per_second = 200'000;
  mcfg.duration = net::seconds(1);
  mcfg.seed = 3;
  const auto multi = trace::generate_multi_path(mcfg);

  collector::MonitoringCache::Config ccfg;
  ccfg.protocol = protocol();
  ccfg.tuning = core::HopTuning{.sample_rate = 0.01, .cut_rate = 1e-5};
  collector::MonitoringCache cache(ccfg, multi.paths);

  net::Duration offset{0};
  std::size_t i = 0;
  for (auto _ : state) {
    cache.observe(multi.packets[i], multi.packets[i].origin_time + offset);
    if (++i == multi.packets.size()) i = 0;
    if (i == 0) {
      state.PauseTiming();
      for (std::size_t p = 0; p < multi.paths.size(); ++p) {
        (void)cache.collect_samples(p);
        (void)cache.collect_aggregates(p);
      }
      offset += net::seconds(1);
      state.ResumeTiming();
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FullCollectorObserve)->Arg(1)->Arg(100)->Arg(10000);

// Cache-wide packet rate through the batch entry point: classify, digest
// and dispatch in one tight loop (flat-table classifier, one hash/packet,
// cost counters in registers).
void BM_CacheObserveBatch(benchmark::State& state) {
  const auto paths_n = static_cast<std::size_t>(state.range(0));
  trace::MultiPathConfig mcfg;
  mcfg.path_count = paths_n;
  mcfg.total_packets_per_second = 200'000;
  mcfg.duration = net::seconds(1);
  mcfg.seed = 3;
  const auto multi = trace::generate_multi_path(mcfg);

  collector::MonitoringCache::Config ccfg;
  ccfg.protocol = protocol();
  ccfg.tuning = core::HopTuning{.sample_rate = 0.01, .cut_rate = 1e-5};
  collector::MonitoringCache cache(ccfg, multi.paths);

  // Reused timestamp span, shifted each replay to keep local time monotone
  // (see BM_AggregatorObserve).
  std::vector<net::Timestamp> when(multi.packets.size());
  net::Duration offset{0};
  for (auto _ : state) {
    state.PauseTiming();
    for (std::size_t k = 0; k < multi.packets.size(); ++k) {
      when[k] = multi.packets[k].origin_time + offset;
    }
    offset += net::seconds(1);
    state.ResumeTiming();

    cache.observe_batch(multi.packets, when);

    state.PauseTiming();
    for (std::size_t p = 0; p < multi.paths.size(); ++p) {
      (void)cache.collect_samples(p);
      (void)cache.collect_aggregates(p);
    }
    state.ResumeTiming();
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(multi.packets.size()));
}
BENCHMARK(BM_CacheObserveBatch)->Arg(1)->Arg(100)->Arg(10000);

// Path-count sweep over a uniformly random path mix: the cache-resident
// (1k paths) vs pointer-chase (100k paths) regime of the §7.1 monitoring
// cache.  The workload is synthesized directly (same /24 path enumeration
// as trace::generate_multi_path, splitmix64-mixed headers) so that the
// 100k-path case costs milliseconds to set up, not minutes.  Reports
// ns/packet (items processed) and the modeled hot-state bytes per path.
struct SweepWorkload {
  std::vector<net::PrefixPair> paths;
  std::vector<net::Packet> packets;
  std::vector<net::Timestamp> when;
};

std::uint64_t splitmix64(std::uint64_t& s) {
  std::uint64_t z = (s += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

const SweepWorkload& sweep_workload(std::size_t paths_n) {
  static std::map<std::size_t, SweepWorkload> cache;
  auto it = cache.find(paths_n);
  if (it != cache.end()) return it->second;

  SweepWorkload w;
  w.paths.reserve(paths_n);
  for (std::size_t k = 0; k < paths_n; ++k) {
    const auto a = static_cast<std::uint8_t>((k >> 8) & 0xFF);
    const auto b = static_cast<std::uint8_t>(k & 0xFF);
    const auto c = static_cast<std::uint8_t>(100 + ((k >> 16) & 0x3F));
    w.paths.push_back(net::PrefixPair{
        .source = net::Prefix{net::Ipv4Address{10, a, b, 0}, 24},
        .destination = net::Prefix{net::Ipv4Address{c, a, b, 0}, 24},
    });
  }

  constexpr std::size_t kPackets = 1u << 20;
  w.packets.reserve(kPackets);
  w.when.reserve(kPackets);
  std::uint64_t rng = 0x5EEDBA5Eull + paths_n;
  for (std::size_t i = 0; i < kPackets; ++i) {
    const std::size_t k = splitmix64(rng) % paths_n;  // uniform path mix
    const std::uint64_t r = splitmix64(rng);
    const auto a = static_cast<std::uint8_t>((k >> 8) & 0xFF);
    const auto b = static_cast<std::uint8_t>(k & 0xFF);
    const auto c = static_cast<std::uint8_t>(100 + ((k >> 16) & 0x3F));
    net::Packet p;
    p.header.src = net::Ipv4Address{10, a, b, static_cast<std::uint8_t>(r)};
    p.header.dst =
        net::Ipv4Address{c, a, b, static_cast<std::uint8_t>(r >> 8)};
    p.header.src_port = static_cast<std::uint16_t>(r >> 16);
    p.header.dst_port = static_cast<std::uint16_t>(r >> 32);
    p.header.ip_id = static_cast<std::uint16_t>(r >> 48);
    p.header.total_length = 400;
    p.payload_prefix = splitmix64(rng);
    p.sequence = i;
    // 1 us inter-arrival: ~1 Mpps aggregate, ~1 s span per replay.
    p.origin_time = net::Timestamp{} + net::microseconds(
                                           static_cast<std::int64_t>(i));
    w.packets.push_back(p);
    w.when.push_back(p.origin_time);
  }
  return cache.emplace(paths_n, std::move(w)).first->second;
}

void sweep_body(benchmark::State& state,
                const collector::MonitoringCache::Config& ccfg,
                const SweepWorkload& w) {
  collector::MonitoringCache cache(ccfg, w.paths);

  // Shift the replayed timestamps each iteration to keep local time
  // monotone (see BM_AggregatorObserve).
  std::vector<net::Timestamp> when = w.when;
  net::Duration offset{0};
  for (auto _ : state) {
    cache.observe_batch(w.packets, when);

    state.PauseTiming();
    offset += net::seconds(2);
    for (std::size_t k = 0; k < when.size(); ++k) {
      when[k] = w.packets[k].origin_time + offset;
    }
    for (std::size_t p = 0; p < w.paths.size(); ++p) {
      (void)cache.collect_samples(p);
      (void)cache.collect_aggregates(p);
    }
    state.ResumeTiming();
  }
  const std::int64_t packets =
      state.iterations() * static_cast<std::int64_t>(w.packets.size());
  state.SetItemsProcessed(packets);
  state.counters["B/path"] = static_cast<double>(cache.modeled_cache_bytes()) /
                             static_cast<double>(w.paths.size());
  state.counters["hashes/pkt"] =
      static_cast<double>(cache.ops().hash_computations) /
      static_cast<double>(packets);
  state.counters["buf_peak"] =
      static_cast<double>(cache.temp_buffer_peak_records());
}

// The deployable configuration: the time-keyed marker rule keeps every
// path's temp buffer bounded (one forced sweep per path per trace replay
// at this age), so the steady state measures the protocol, not unbounded
// buffer growth.  This is the headline 100k-path number BENCH_fastpath.json
// records for the roadmap's optimization curve — and it is deliberately
// REGISTERED BEFORE the unbounded variant: that one grows a multi-GB
// arena whose heap wreckage would otherwise pollute whatever runs after
// it in the same process.
void BM_CacheObservePathSweepBounded(benchmark::State& state) {
  collector::MonitoringCache::Config ccfg;
  ccfg.protocol = protocol();
  ccfg.protocol.marker_max_age = net::milliseconds(1500);
  ccfg.tuning = core::HopTuning{.sample_rate = 0.01, .cut_rate = 1e-5};
  sweep_body(state, ccfg,
             sweep_workload(static_cast<std::size_t>(state.range(0))));
}
BENCHMARK(BM_CacheObservePathSweepBounded)
    ->Arg(1'000)
    ->Arg(10'000)
    ->Arg(100'000)
    ->Unit(benchmark::kMillisecond);

// Unbounded variant (marker_max_age off).  NON-STATIONARY at high path
// counts by construction — temp buffers grow for the whole run, so its
// reported ns/pkt depends on how long the benchmark runs.  Kept for the
// growth-pathology contrast (buf_peak counter), not as a perf record.
void BM_CacheObservePathSweep(benchmark::State& state) {
  collector::MonitoringCache::Config ccfg;
  ccfg.protocol = protocol();
  ccfg.tuning = core::HopTuning{.sample_rate = 0.01, .cut_rate = 1e-5};
  sweep_body(state, ccfg,
             sweep_workload(static_cast<std::size_t>(state.range(0))));
}
BENCHMARK(BM_CacheObservePathSweep)
    ->Arg(1'000)
    ->Arg(10'000)
    ->Arg(100'000)
    ->Unit(benchmark::kMillisecond);

// The per-packet classify step in isolation (flat table vs the former
// std::unordered_map lookup).
void BM_Classify(benchmark::State& state) {
  const auto paths_n = static_cast<std::size_t>(state.range(0));
  trace::MultiPathConfig mcfg;
  mcfg.path_count = paths_n;
  mcfg.total_packets_per_second = 200'000;
  mcfg.duration = net::seconds(1);
  mcfg.seed = 3;
  const auto multi = trace::generate_multi_path(mcfg);
  const collector::PathClassifier classifier(multi.paths);

  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(classifier.classify(multi.packets[i].header));
    if (++i == multi.packets.size()) i = 0;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Classify)->Arg(100)->Arg(10000);

// The batch classify under the SIMD dispatch shim (8-wide multiply-hash
// phase A + prefetched probes): compare against BM_Classify for the
// per-packet win of batching alone, and run under VPM_SIMD=scalar for the
// vectorization share.
void BM_ClassifySimd(benchmark::State& state) {
  const auto paths_n = static_cast<std::size_t>(state.range(0));
  trace::MultiPathConfig mcfg;
  mcfg.path_count = paths_n;
  mcfg.total_packets_per_second = 200'000;
  mcfg.duration = net::seconds(1);
  mcfg.seed = 3;
  const auto multi = trace::generate_multi_path(mcfg);
  const collector::PathClassifier classifier(multi.paths);

  std::vector<std::uint32_t> out(multi.packets.size());
  for (auto _ : state) {
    classifier.classify_batch(multi.packets.data(), multi.packets.size(),
                              out.data());
    benchmark::DoNotOptimize(out.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(multi.packets.size()));
}
BENCHMARK(BM_ClassifySimd)->Arg(100)->Arg(10000);

// The batch digest under the dispatch shim (8-wide lookup3): compare
// against BM_Decide (scalar one-at-a-time) for the SIMD win on the pure
// hash stage.
void BM_DigestBatch8(benchmark::State& state) {
  const auto& trace = shared_trace();
  const net::DigestEngine engine;
  std::vector<net::PacketDecisions> out(trace.size());
  for (auto _ : state) {
    engine.decide_batch(trace.data(), nullptr, trace.size(), out.data());
    benchmark::DoNotOptimize(out.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(trace.size()));
}
BENCHMARK(BM_DigestBatch8);

}  // namespace

int main(int argc, char** argv) {
  return vpm::bench::run_benchmarks_with_json(argc, argv, "fastpath",
                                              "BENCH_fastpath.json");
}
