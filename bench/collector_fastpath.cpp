// OVH-P — measures the data-plane cost per packet of the collector module
// with google-benchmark, grounding the §7.1 processing claim ("three
// memory accesses, one hash function, and one timestamp computation per
// packet ... within the capabilities of modern hardware").
#include <benchmark/benchmark.h>

#include <vector>

#include "collector/monitoring_cache.hpp"
#include "core/aggregator.hpp"
#include "core/config.hpp"
#include "core/sampler.hpp"
#include "net/digest.hpp"
#include "trace/synthetic_trace.hpp"

namespace {

using namespace vpm;

const std::vector<net::Packet>& shared_trace() {
  static const std::vector<net::Packet> trace = [] {
    trace::TraceConfig cfg;
    cfg.prefixes = trace::default_prefix_pair();
    cfg.packets_per_second = 100'000;
    cfg.duration = net::seconds(2);
    cfg.seed = 7;
    return trace::generate_trace(cfg);
  }();
  return trace;
}

core::ProtocolParams protocol() {
  core::ProtocolParams p;
  p.marker_rate = 1e-3;
  return p;
}

void BM_Digest(benchmark::State& state) {
  const auto& trace = shared_trace();
  const net::DigestEngine engine;
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.packet_id(trace[i]));
    if (++i == trace.size()) i = 0;  // avoid a division per packet
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Digest);

// One hash pass producing all three role values — the data-plane digest
// step after the single-hash refactor.  Compare against BM_Digest: the
// seeded avalanche finalizers should cost a few cycles, not a re-hash.
void BM_Decide(benchmark::State& state) {
  const auto& trace = shared_trace();
  const net::DigestEngine engine;
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.decide(trace[i]));
    if (++i == trace.size()) i = 0;  // avoid a division per packet
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Decide);

void BM_SamplerObserve(benchmark::State& state) {
  const auto& trace = shared_trace();
  const auto params = protocol();
  const net::DigestEngine engine = params.make_engine();
  core::DelaySampler sampler(
      engine, params.marker_threshold(),
      core::sample_threshold_for(params, 0.01));
  std::size_t i = 0;
  for (auto _ : state) {
    sampler.observe(trace[i], trace[i].origin_time);
    if (++i == trace.size()) i = 0;  // avoid a division per packet
    if (i == 0) (void)sampler.take_samples();  // drain, stay bounded
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SamplerObserve);

void BM_AggregatorObserve(benchmark::State& state) {
  const auto& trace = shared_trace();
  const auto params = protocol();
  const net::DigestEngine engine = params.make_engine();
  core::Aggregator agg(engine, core::cut_threshold_for(1e-5),
                       params.reorder_window_j);
  // Keep observation time monotone across trace replays: a backwards time
  // jump would freeze the J-window drain and grow the recent buffer to the
  // whole trace, measuring an artifact instead of the steady state.
  net::Duration offset{0};
  std::size_t i = 0;
  for (auto _ : state) {
    agg.observe(trace[i], trace[i].origin_time + offset);
    if (++i == trace.size()) i = 0;  // avoid a division per packet
    if (i == 0) {
      (void)agg.take_closed();
      offset += net::seconds(2);
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AggregatorObserve);

void BM_FullCollectorObserve(benchmark::State& state) {
  const auto paths_n = static_cast<std::size_t>(state.range(0));
  trace::MultiPathConfig mcfg;
  mcfg.path_count = paths_n;
  mcfg.total_packets_per_second = 200'000;
  mcfg.duration = net::seconds(1);
  mcfg.seed = 3;
  const auto multi = trace::generate_multi_path(mcfg);

  collector::MonitoringCache::Config ccfg;
  ccfg.protocol = protocol();
  ccfg.tuning = core::HopTuning{.sample_rate = 0.01, .cut_rate = 1e-5};
  collector::MonitoringCache cache(ccfg, multi.paths);

  net::Duration offset{0};
  std::size_t i = 0;
  for (auto _ : state) {
    cache.observe(multi.packets[i], multi.packets[i].origin_time + offset);
    if (++i == multi.packets.size()) i = 0;
    if (i == 0) {
      state.PauseTiming();
      for (std::size_t p = 0; p < multi.paths.size(); ++p) {
        (void)cache.collect_samples(p);
        (void)cache.collect_aggregates(p);
      }
      offset += net::seconds(1);
      state.ResumeTiming();
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FullCollectorObserve)->Arg(1)->Arg(100)->Arg(10000);

// Cache-wide packet rate through the batch entry point: classify, digest
// and dispatch in one tight loop (flat-table classifier, one hash/packet,
// cost counters in registers).
void BM_CacheObserveBatch(benchmark::State& state) {
  const auto paths_n = static_cast<std::size_t>(state.range(0));
  trace::MultiPathConfig mcfg;
  mcfg.path_count = paths_n;
  mcfg.total_packets_per_second = 200'000;
  mcfg.duration = net::seconds(1);
  mcfg.seed = 3;
  const auto multi = trace::generate_multi_path(mcfg);

  collector::MonitoringCache::Config ccfg;
  ccfg.protocol = protocol();
  ccfg.tuning = core::HopTuning{.sample_rate = 0.01, .cut_rate = 1e-5};
  collector::MonitoringCache cache(ccfg, multi.paths);

  // Reused timestamp span, shifted each replay to keep local time monotone
  // (see BM_AggregatorObserve).
  std::vector<net::Timestamp> when(multi.packets.size());
  net::Duration offset{0};
  for (auto _ : state) {
    state.PauseTiming();
    for (std::size_t k = 0; k < multi.packets.size(); ++k) {
      when[k] = multi.packets[k].origin_time + offset;
    }
    offset += net::seconds(1);
    state.ResumeTiming();

    cache.observe_batch(multi.packets, when);

    state.PauseTiming();
    for (std::size_t p = 0; p < multi.paths.size(); ++p) {
      (void)cache.collect_samples(p);
      (void)cache.collect_aggregates(p);
    }
    state.ResumeTiming();
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(multi.packets.size()));
}
BENCHMARK(BM_CacheObserveBatch)->Arg(1)->Arg(100)->Arg(10000);

// The per-packet classify step in isolation (flat table vs the former
// std::unordered_map lookup).
void BM_Classify(benchmark::State& state) {
  const auto paths_n = static_cast<std::size_t>(state.range(0));
  trace::MultiPathConfig mcfg;
  mcfg.path_count = paths_n;
  mcfg.total_packets_per_second = 200'000;
  mcfg.duration = net::seconds(1);
  mcfg.seed = 3;
  const auto multi = trace::generate_multi_path(mcfg);
  const collector::PathClassifier classifier(multi.paths);

  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(classifier.classify(multi.packets[i].header));
    if (++i == multi.packets.size()) i = 0;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Classify)->Arg(100)->Arg(10000);

}  // namespace

BENCHMARK_MAIN();
