// ABL-SKETCH — the §3.5 extension: content sketches on the aggregation
// component detect in-flight traffic *modification*, which counts and
// timestamps cannot see.  Sweeps the modification rate and the sketch
// width, reporting detection and the estimate error, plus the bandwidth
// cost of carrying sketches.
#include <cstdio>
#include <vector>

#include "core/config.hpp"
#include "experiment.hpp"
#include "sketch/sketch_aggregator.hpp"
#include "trace/synthetic_trace.hpp"

namespace {

using namespace vpm;

struct Row {
  std::size_t modified = 0;
  double estimate = 0.0;
  bool detected = false;
};

Row run_row(double modify_rate, std::size_t buckets, std::uint64_t seed) {
  trace::TraceConfig tcfg;
  tcfg.prefixes = trace::default_prefix_pair();
  tcfg.packets_per_second = 50'000;
  tcfg.duration = net::seconds(4);
  tcfg.seed = seed;
  const auto trace = trace::generate_trace(tcfg);

  std::vector<net::Packet> tampered = trace;
  std::size_t modified = 0;
  if (modify_rate > 0) {
    const auto stride = static_cast<std::size_t>(1.0 / modify_rate);
    for (std::size_t i = 1; i < tampered.size(); i += stride) {
      tampered[i].payload_prefix ^= 0xBAD0BEEFull;
      ++modified;
    }
  }

  const net::DigestEngine engine;
  const std::uint32_t threshold = core::cut_threshold_for(5e-4);
  auto run = [&](const std::vector<net::Packet>& pkts) {
    sketch::SketchAggregator agg(engine, threshold, buckets);
    for (const auto& p : pkts) agg.observe(p);
    auto out = agg.take_closed();
    if (auto last = agg.flush_open(); last.has_value()) {
      out.push_back(std::move(*last));
    }
    return out;
  };
  const auto report =
      sketch::check_path_modification(run(trace), run(tampered), 4.0);
  return Row{.modified = modified,
             .estimate = report.total_modified_estimate,
             .detected = !report.clean()};
}

}  // namespace

int main() {
  std::printf("ABL-SKETCH: traffic-modification detection (the §3.5 extension)\n");
  std::printf(
      "Setup: 200k packets; a middlebox rewrites payloads at the given\n"
      "rate; sketches ride on the aggregation component (one per ~2000-\n"
      "packet aggregate).\n\n");

  std::printf("%12s %10s %12s %12s %10s %14s\n", "modify-rate", "buckets",
              "modified", "estimate", "detected", "bytes/agg");
  vpm::bench::rule(76);
  for (const double rate : {0.0, 0.0005, 0.002, 0.01}) {
    for (const std::size_t buckets : {32ul, 128ul}) {
      const Row r = run_row(rate, buckets, 6000);
      std::printf("%11.2f%% %10zu %12zu %12.1f %10s %14zu\n", rate * 100.0,
                  buckets, r.modified, r.estimate,
                  r.detected ? "YES" : "no", buckets * 4);
    }
  }
  std::printf(
      "\nShape checks: zero modification is never flagged; rates from\n"
      "0.05%% up are caught, with the estimate tracking the true count\n"
      "(tighter with wider sketches).  Count- and timestamp-based receipts\n"
      "alone are blind to all of these — the §3.5 argument for building\n"
      "the extension into the aggregation component.\n");
  return 0;
}
