// ABL-BIAS — the design choice at the heart of Section 5: keying sampling
// with *future* traffic.  We mount the §3.2 bias attack (the cheating
// domain gives predictable samples preferential treatment) against
// Trajectory Sampling ++ and against VPM's delay sampler, and report how
// far each protocol's delay estimate is dragged from the truth.
#include <cstdio>
#include <random>
#include <unordered_set>
#include <vector>

#include "adversary/strategies.hpp"
#include "baseline/trajectory_sampling.hpp"
#include "core/config.hpp"
#include "core/sampler.hpp"
#include "experiment.hpp"
#include "stats/quantile.hpp"
#include "trace/synthetic_trace.hpp"

namespace {

using namespace vpm;

struct Row {
  double true_p95 = 0.0;
  double honest_est = 0.0;
  double biased_est = 0.0;
  double predictable_frac = 0.0;
};

}  // namespace

int main() {
  std::printf("ABL-BIAS: sample-bias attack vs sampling design\n");
  std::printf(
      "Attack: the domain serves packets it KNOWS will be sampled from a\n"
      "priority queue (0.1 ms) and everything else normally; 10%% of\n"
      "packets honestly see a 20 ms congestion spike.\n\n");

  trace::TraceConfig tcfg;
  tcfg.prefixes = trace::default_prefix_pair();
  tcfg.packets_per_second = 100'000;
  tcfg.duration = net::seconds(5);
  tcfg.seed = 4;
  const auto trace = trace::generate_trace(tcfg);

  // Honest delays: bimodal, p95 = 20 ms.
  std::vector<net::Duration> honest(trace.size());
  std::mt19937_64 rng(5);
  std::bernoulli_distribution spike(0.10);
  for (auto& d : honest) {
    d = spike(rng) ? net::milliseconds(20) : net::milliseconds(1);
  }

  core::ProtocolParams protocol;
  protocol.marker_rate = 1e-3;
  const net::DigestEngine engine = protocol.make_engine();
  const double rate = 0.01;
  const std::uint32_t ts_threshold = net::rate_to_threshold(rate);

  auto p95_over = [&](const std::vector<net::Duration>& delays,
                      auto&& sampled) {
    stats::QuantileEstimator est;
    for (std::size_t i = 0; i < trace.size(); ++i) {
      if (sampled(trace[i])) est.add(delays[i].milliseconds());
    }
    return est.estimate(0.95).value;
  };
  const double true_p95 = [&] {
    stats::QuantileEstimator est;
    for (const auto& d : honest) est.add(d.milliseconds());
    return est.estimate(0.95).value;
  }();

  // --- Trajectory Sampling ++: fully predictable. ---
  Row ts;
  {
    baseline::TrajectorySampler sampler(engine, ts_threshold);
    auto sampled = [&](const net::Packet& p) {
      return sampler.would_sample(p);
    };
    const auto predictor = adversary::trajectory_predictor(engine,
                                                           ts_threshold);
    const auto biased = adversary::bias_delays(trace, honest, predictor,
                                               net::microseconds(100));
    std::size_t predictable = 0;
    for (const auto& p : trace) {
      if (predictor(p)) ++predictable;
    }
    ts = Row{.true_p95 = true_p95,
             .honest_est = p95_over(honest, sampled),
             .biased_est = p95_over(biased, sampled),
             .predictable_frac = static_cast<double>(predictable) /
                                 static_cast<double>(trace.size())};
  }

  // --- VPM: only markers are predictable. ---
  Row vpm_row;
  {
    core::DelaySampler sampler(engine, protocol.marker_threshold(),
                               core::sample_threshold_for(protocol, rate));
    for (const auto& p : trace) sampler.observe(p, p.origin_time);
    std::unordered_set<net::PacketDigest> ids;
    for (const auto& s : sampler.take_samples()) ids.insert(s.pkt_id);
    auto sampled = [&](const net::Packet& p) {
      return ids.contains(engine.packet_id(p));
    };
    const auto predictor =
        adversary::vpm_marker_predictor(engine, protocol.marker_threshold());
    const auto biased = adversary::bias_delays(trace, honest, predictor,
                                               net::microseconds(100));
    std::size_t predictable = 0;
    for (const auto& p : trace) {
      if (predictor(p)) ++predictable;
    }
    vpm_row = Row{.true_p95 = true_p95,
                  .honest_est = p95_over(honest, sampled),
                  .biased_est = p95_over(biased, sampled),
                  .predictable_frac = static_cast<double>(predictable) /
                                      static_cast<double>(trace.size())};
  }

  std::printf("%-24s %10s %12s %12s %14s\n", "protocol", "true-p95",
              "honest-est", "biased-est", "predictable%");
  vpm::bench::rule(78);
  std::printf("%-24s %9.1f %12.2f %12.2f %13.2f%%\n",
              "TrajectorySampling++", ts.true_p95, ts.honest_est,
              ts.biased_est, ts.predictable_frac * 100.0);
  std::printf("%-24s %9.1f %12.2f %12.2f %13.2f%%\n", "VPM delay-sampling",
              vpm_row.true_p95, vpm_row.honest_est, vpm_row.biased_est,
              vpm_row.predictable_frac * 100.0);
  std::printf(
      "\nShape checks: TS++'s biased estimate collapses to the preferred\n"
      "delay (the §3.2 failure); VPM's stays near truth because the only\n"
      "predictable packets are the markers, a ~0.1%% minority of traffic\n"
      "and ~10%% of samples (§5.1).\n");
  return 0;
}
