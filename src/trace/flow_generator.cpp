#include "trace/flow_generator.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <stdexcept>

namespace vpm::trace {

ZipfSampler::ZipfSampler(std::size_t n, double s) {
  if (n == 0) throw std::invalid_argument("ZipfSampler: n == 0");
  if (s < 0.0) throw std::invalid_argument("ZipfSampler: s < 0");
  cumulative_.reserve(n);
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    acc += 1.0 / std::pow(static_cast<double>(i + 1), s);
    cumulative_.push_back(acc);
  }
}

std::size_t ZipfSampler::index_for(double point) const {
  const auto it =
      std::lower_bound(cumulative_.begin(), cumulative_.end(), point);
  if (it == cumulative_.end()) return cumulative_.size() - 1;
  return static_cast<std::size_t>(it - cumulative_.begin());
}

double ZipfSampler::probability(std::size_t i) const {
  if (i >= cumulative_.size()) {
    throw std::out_of_range("ZipfSampler::probability index");
  }
  const double lo = i == 0 ? 0.0 : cumulative_[i - 1];
  return (cumulative_[i] - lo) / cumulative_.back();
}

namespace {

net::Ipv4Address random_host(const net::Prefix& prefix, std::mt19937_64& rng) {
  const std::uint32_t host_bits = ~prefix.mask();
  std::uniform_int_distribution<std::uint32_t> dist(0, host_bits);
  return net::Ipv4Address{prefix.network().value() | dist(rng)};
}

// A web/dns-flavoured destination port mix; the exact values only matter
// for digest entropy.
constexpr std::array<std::uint16_t, 6> kServicePorts = {80,  443, 53,
                                                        22,  25,  8080};

}  // namespace

FlowGenerator::FlowGenerator(net::PrefixPair prefixes, std::size_t flow_count,
                             double zipf_s, std::uint64_t seed)
    : prefixes_(prefixes),
      popularity_(flow_count == 0 ? 1 : flow_count, zipf_s),
      rng_(seed) {
  if (flow_count == 0) {
    throw std::invalid_argument("FlowGenerator: flow_count == 0");
  }
  flows_.reserve(flow_count);
  std::uniform_int_distribution<std::uint16_t> ephemeral(1024, 65535);
  std::uniform_int_distribution<std::size_t> service(0,
                                                     kServicePorts.size() - 1);
  std::uniform_int_distribution<std::uint16_t> start_id(0, 0xFFFF);
  std::uniform_real_distribution<double> proto_coin(0.0, 1.0);
  for (std::size_t i = 0; i < flow_count; ++i) {
    Flow f;
    f.src = random_host(prefixes.source, rng_);
    f.dst = random_host(prefixes.destination, rng_);
    f.src_port = ephemeral(rng_);
    f.dst_port = kServicePorts[service(rng_)];
    // Roughly the TCP/UDP split observed in backbone traces.
    f.protocol =
        proto_coin(rng_) < 0.85 ? net::IpProto::kTcp : net::IpProto::kUdp;
    f.next_ip_id = start_id(rng_);
    flows_.push_back(f);
  }
}

net::PacketHeader FlowGenerator::next_header(std::uint16_t total_length) {
  Flow& flow = flows_[popularity_.sample(rng_)];
  net::PacketHeader h;
  h.src = flow.src;
  h.dst = flow.dst;
  h.src_port = flow.src_port;
  h.dst_port = flow.dst_port;
  h.protocol = flow.protocol;
  h.ip_id = flow.next_ip_id++;
  h.total_length = total_length;
  return h;
}

}  // namespace vpm::trace
