// Flow-level structure for synthetic traces.
//
// The paper "extracts a packet sequence" from a Tier-1 CAIDA trace: all
// packets sharing one source/destination origin-prefix pair.  Such a
// sequence is a mix of many concurrent five-tuple flows.  What VPM's
// algorithms actually depend on is the *entropy* of the hashed header
// fields (digest uniformity), so the generator reproduces that: many
// flows with distinct addresses/ports, per-flow IP-ID counters, random
// payload prefixes, and a Zipf popularity skew across flows.
#ifndef VPM_TRACE_FLOW_GENERATOR_HPP
#define VPM_TRACE_FLOW_GENERATOR_HPP

#include <cstdint>
#include <random>
#include <vector>

#include "net/packet.hpp"
#include "net/prefix.hpp"

namespace vpm::trace {

/// Draws indices 0..n-1 with P(i) proportional to 1/(i+1)^s.
class ZipfSampler {
 public:
  /// Throws std::invalid_argument if n == 0 or s < 0.
  ZipfSampler(std::size_t n, double s);

  template <typename Rng>
  [[nodiscard]] std::size_t sample(Rng& rng) const {
    std::uniform_real_distribution<double> u(0.0, cumulative_.back());
    return index_for(u(rng));
  }

  [[nodiscard]] std::size_t size() const noexcept {
    return cumulative_.size();
  }
  [[nodiscard]] double probability(std::size_t i) const;

 private:
  [[nodiscard]] std::size_t index_for(double point) const;
  std::vector<double> cumulative_;
};

/// One five-tuple flow inside a path's packet sequence.
struct Flow {
  net::Ipv4Address src;
  net::Ipv4Address dst;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  net::IpProto protocol = net::IpProto::kTcp;
  std::uint16_t next_ip_id = 0;  ///< per-flow IP-ID counter
};

/// Builds and samples the flow population for one origin-prefix pair.
class FlowGenerator {
 public:
  /// Creates `flow_count` flows with hosts inside the prefix pair.  Flow
  /// popularity is Zipf(`zipf_s`).  Throws std::invalid_argument if
  /// flow_count == 0.
  FlowGenerator(net::PrefixPair prefixes, std::size_t flow_count,
                double zipf_s, std::uint64_t seed);

  /// Pick a flow for the next packet and return a header stamped from it
  /// (advances the flow's IP-ID).
  [[nodiscard]] net::PacketHeader next_header(std::uint16_t total_length);

  [[nodiscard]] const net::PrefixPair& prefixes() const noexcept {
    return prefixes_;
  }
  [[nodiscard]] std::size_t flow_count() const noexcept {
    return flows_.size();
  }

 private:
  net::PrefixPair prefixes_;
  std::vector<Flow> flows_;
  ZipfSampler popularity_;
  std::mt19937_64 rng_;
};

}  // namespace vpm::trace

#endif  // VPM_TRACE_FLOW_GENERATOR_HPP
