// Workload characterisation helpers: verify that generated traces have the
// properties the experiments assume (rate, size mix, digest uniformity).
#ifndef VPM_TRACE_TRACE_STATS_HPP
#define VPM_TRACE_TRACE_STATS_HPP

#include <cstddef>
#include <span>

#include "net/digest.hpp"
#include "net/packet.hpp"

namespace vpm::trace {

struct TraceSummary {
  std::size_t packets = 0;
  double duration_s = 0.0;
  double packets_per_second = 0.0;
  double mean_size_bytes = 0.0;
  double bits_per_second = 0.0;
  /// Fraction of distinct packet-id digests (1.0 = no collisions).
  double digest_distinct_fraction = 0.0;
};

[[nodiscard]] TraceSummary summarize(std::span<const net::Packet> trace,
                                     const net::DigestEngine& digests);

/// Chi-squared uniformity statistic of packet-id digests over `bins`
/// equal-width bins; for a uniform hash this is ~ chi2(bins-1), so values
/// near `bins` indicate uniformity.  Used by tests to validate the Bob
/// hash on generated traffic (the paper's reason for choosing it [19]).
[[nodiscard]] double digest_chi_squared(std::span<const net::Packet> trace,
                                        const net::DigestEngine& digests,
                                        std::size_t bins);

}  // namespace vpm::trace

#endif  // VPM_TRACE_TRACE_STATS_HPP
