#include "trace/synthetic_trace.hpp"

#include <random>
#include <stdexcept>
#include <string>

#include "trace/flow_generator.hpp"

namespace vpm::trace {
namespace {

/// Two-state Markov-modulated Poisson arrival process.
class MmppArrivals {
 public:
  MmppArrivals(const TraceConfig& cfg, std::mt19937_64& rng)
      : rng_(rng) {
    const double mean = cfg.packets_per_second;
    if (cfg.burst_multiplier < 1.0) {
      throw std::invalid_argument("burst_multiplier must be >= 1");
    }
    if (cfg.burst_fraction <= 0.0 || cfg.burst_fraction >= 1.0) {
      throw std::invalid_argument("burst_fraction must be in (0,1)");
    }
    if (cfg.burst_multiplier * cfg.burst_fraction >= 1.0) {
      throw std::invalid_argument(
          "infeasible MMPP: burst_multiplier * burst_fraction must be < 1 "
          "so the off-state rate stays positive");
    }
    rate_on_ = mean * cfg.burst_multiplier;
    rate_off_ = mean * (1.0 - cfg.burst_multiplier * cfg.burst_fraction) /
                (1.0 - cfg.burst_fraction);
    mean_on_s_ = cfg.mean_burst_duration.seconds();
    mean_off_s_ =
        mean_on_s_ * (1.0 - cfg.burst_fraction) / cfg.burst_fraction;
    if (mean_on_s_ <= 0.0) {
      throw std::invalid_argument("mean_burst_duration must be positive");
    }
    schedule_state_end();
  }

  /// Seconds until the next packet arrival.
  double next_gap() {
    for (;;) {
      const double rate = on_ ? rate_on_ : rate_off_;
      std::exponential_distribution<double> exp_gap(rate);
      const double gap = exp_gap(rng_);
      if (clock_ + gap < state_end_) {
        clock_ += gap;
        return gap;
      }
      // State flips before the tentative arrival: discard it and redraw in
      // the next state (memorylessness makes this exact).
      clock_ = state_end_;
      on_ = !on_;
      schedule_state_end();
    }
  }

 private:
  void schedule_state_end() {
    std::exponential_distribution<double> exp_hold(
        1.0 / (on_ ? mean_on_s_ : mean_off_s_));
    state_end_ = clock_ + exp_hold(rng_);
  }

  std::mt19937_64& rng_;
  double rate_on_ = 0.0;
  double rate_off_ = 0.0;
  double mean_on_s_ = 0.0;
  double mean_off_s_ = 0.0;
  double clock_ = 0.0;
  double state_end_ = 0.0;
  bool on_ = false;
};

std::uint16_t draw_size(const std::vector<SizeBucket>& sizes,
                        std::mt19937_64& rng) {
  double total = 0.0;
  for (const SizeBucket& b : sizes) total += b.weight;
  std::uniform_real_distribution<double> u(0.0, total);
  double point = u(rng);
  for (const SizeBucket& b : sizes) {
    point -= b.weight;
    if (point <= 0.0) return b.bytes;
  }
  return sizes.back().bytes;
}

void validate(const TraceConfig& cfg) {
  if (cfg.packets_per_second <= 0.0) {
    throw std::invalid_argument("packets_per_second must be positive");
  }
  if (cfg.duration <= net::Duration{0}) {
    throw std::invalid_argument("duration must be positive");
  }
  if (cfg.sizes.empty()) {
    throw std::invalid_argument("size mix must not be empty");
  }
  for (const SizeBucket& b : cfg.sizes) {
    if (b.weight < 0.0) throw std::invalid_argument("negative size weight");
  }
}

}  // namespace

std::vector<net::Packet> generate_trace(const TraceConfig& cfg) {
  validate(cfg);
  std::mt19937_64 rng(cfg.seed);
  FlowGenerator flows(cfg.prefixes, cfg.flow_count, cfg.zipf_s,
                      rng());
  MmppArrivals arrivals(cfg, rng);

  const double horizon_s = cfg.duration.seconds();
  const auto expected =
      static_cast<std::size_t>(cfg.packets_per_second * horizon_s * 1.1);
  std::vector<net::Packet> out;
  out.reserve(expected);

  double clock_s = 0.0;
  std::uint64_t seq = 0;
  for (;;) {
    clock_s += arrivals.next_gap();
    if (clock_s >= horizon_s) break;
    net::Packet p;
    p.header = flows.next_header(draw_size(cfg.sizes, rng));
    p.payload_prefix = rng();
    p.sequence = seq++;
    p.origin_time = net::Timestamp{} + net::seconds_f(clock_s);
    out.push_back(p);
  }
  return out;
}

net::PrefixPair default_prefix_pair() {
  return net::PrefixPair{
      .source = net::Prefix{net::Ipv4Address{10, 1, 0, 0}, 16},
      .destination = net::Prefix{net::Ipv4Address{172, 16, 0, 0}, 16},
  };
}

MultiPathTrace generate_multi_path(const MultiPathConfig& cfg) {
  if (cfg.path_count == 0) {
    throw std::invalid_argument("path_count must be positive");
  }
  if (cfg.total_packets_per_second <= 0.0) {
    throw std::invalid_argument("total rate must be positive");
  }
  std::mt19937_64 rng(cfg.seed);

  MultiPathTrace trace;
  trace.paths.reserve(cfg.path_count);
  std::vector<FlowGenerator> generators;
  generators.reserve(cfg.path_count);
  for (std::size_t k = 0; k < cfg.path_count; ++k) {
    // Deterministic, collision-free /24 pair for path k: source prefixes
    // enumerate 10.0.0.0/8, destinations walk a second /8 block per 64 Ki
    // paths.
    const auto a = static_cast<std::uint8_t>((k >> 8) & 0xFF);
    const auto b = static_cast<std::uint8_t>(k & 0xFF);
    const auto c = static_cast<std::uint8_t>(100 + ((k >> 16) & 0x3F));
    const net::PrefixPair pair{
        .source = net::Prefix{net::Ipv4Address{10, a, b, 0}, 24},
        .destination = net::Prefix{net::Ipv4Address{c, a, b, 0}, 24},
    };
    trace.paths.push_back(pair);
    generators.emplace_back(pair, cfg.flows_per_path, 1.0, rng());
  }

  ZipfSampler path_popularity(cfg.path_count, cfg.zipf_s);
  std::exponential_distribution<double> gap(cfg.total_packets_per_second);
  std::vector<SizeBucket> sizes = {{40, 0.50}, {400, 0.30}, {1500, 0.20}};

  const double horizon_s = cfg.duration.seconds();
  double clock_s = 0.0;
  std::uint64_t seq = 0;
  for (;;) {
    clock_s += gap(rng);
    if (clock_s >= horizon_s) break;
    const std::size_t path = path_popularity.sample(rng);
    net::Packet p;
    p.header = generators[path].next_header(draw_size(sizes, rng));
    p.payload_prefix = rng();
    p.sequence = seq++;
    p.origin_time = net::Timestamp{} + net::seconds_f(clock_s);
    trace.packets.push_back(p);
    trace.path_of.push_back(static_cast<std::uint32_t>(path));
  }
  return trace;
}

}  // namespace vpm::trace
