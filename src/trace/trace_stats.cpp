#include "trace/trace_stats.hpp"

#include <unordered_set>
#include <vector>

namespace vpm::trace {

TraceSummary summarize(std::span<const net::Packet> trace,
                       const net::DigestEngine& digests) {
  TraceSummary s;
  s.packets = trace.size();
  if (trace.empty()) return s;

  double bytes = 0.0;
  std::unordered_set<std::uint32_t> distinct;
  distinct.reserve(trace.size() * 2);
  for (const net::Packet& p : trace) {
    bytes += p.header.total_length;
    distinct.insert(digests.packet_id(p));
  }
  s.duration_s =
      (trace.back().origin_time - trace.front().origin_time).seconds();
  if (s.duration_s > 0.0) {
    s.packets_per_second = static_cast<double>(s.packets) / s.duration_s;
    s.bits_per_second = bytes * 8.0 / s.duration_s;
  }
  s.mean_size_bytes = bytes / static_cast<double>(s.packets);
  s.digest_distinct_fraction =
      static_cast<double>(distinct.size()) / static_cast<double>(s.packets);
  return s;
}

double digest_chi_squared(std::span<const net::Packet> trace,
                          const net::DigestEngine& digests,
                          std::size_t bins) {
  if (bins == 0 || trace.empty()) return 0.0;
  std::vector<std::size_t> counts(bins, 0);
  const double width = 4294967296.0 / static_cast<double>(bins);
  for (const net::Packet& p : trace) {
    auto bin = static_cast<std::size_t>(
        static_cast<double>(digests.packet_id(p)) / width);
    if (bin >= bins) bin = bins - 1;
    ++counts[bin];
  }
  const double expected =
      static_cast<double>(trace.size()) / static_cast<double>(bins);
  double chi2 = 0.0;
  for (const std::size_t c : counts) {
    const double diff = static_cast<double>(c) - expected;
    chi2 += diff * diff / expected;
  }
  return chi2;
}

}  // namespace vpm::trace
