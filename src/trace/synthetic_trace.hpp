// Synthetic packet-sequence generation: the CAIDA-trace stand-in.
//
// Substitution note (DESIGN.md §2): the paper replays 2008 Tier-1 CAIDA
// traces; we have no access to those, so we synthesise sequences with the
// properties the experiments exercise: a configurable mean rate (the paper
// uses a 100 kpps sequence), bursty arrivals (two-state MMPP), a tri-modal
// packet-size mix with backbone-like mean (~400 B, the figure the paper's
// overhead arithmetic assumes), and high header entropy via the flow model.
#ifndef VPM_TRACE_SYNTHETIC_TRACE_HPP
#define VPM_TRACE_SYNTHETIC_TRACE_HPP

#include <cstdint>
#include <vector>

#include "net/packet.hpp"
#include "net/prefix.hpp"
#include "net/time.hpp"

namespace vpm::trace {

/// Packet-size mixture point.
struct SizeBucket {
  std::uint16_t bytes = 0;
  double weight = 0.0;
};

struct TraceConfig {
  net::PrefixPair prefixes;
  double packets_per_second = 100'000.0;  ///< paper's sequence rate (§7.2)
  net::Duration duration = net::seconds(10);
  std::size_t flow_count = 1000;
  double zipf_s = 1.1;  ///< flow popularity skew

  /// Two-state MMPP burstiness: the ON state runs at `burst_multiplier` x
  /// the mean rate for `burst_fraction` of the time; the OFF state rate is
  /// derived so the long-run mean matches packets_per_second.  Set
  /// burst_multiplier = 1 for a plain Poisson process.
  double burst_multiplier = 3.0;
  double burst_fraction = 0.2;
  net::Duration mean_burst_duration = net::milliseconds(100);

  /// Tri-modal size mix, mean ~= 440 B (close to the 400 B the paper's
  /// §7.1 arithmetic assumes).
  std::vector<SizeBucket> sizes = {
      {40, 0.50}, {400, 0.30}, {1500, 0.20}};

  std::uint64_t seed = 1;
};

/// Generate the full packet sequence for one path.  Packets carry ground
/// truth `sequence` (0..n-1) and `origin_time`.  Throws
/// std::invalid_argument on non-positive rate/duration, empty size mix, or
/// infeasible burst parameters (burst_multiplier * burst_fraction >= 1 is
/// required to keep the OFF-state rate positive... see .cpp).
[[nodiscard]] std::vector<net::Packet> generate_trace(const TraceConfig& cfg);

/// A multi-path workload for collector-scaling experiments: `path_count`
/// origin-prefix pairs with Zipf path popularity, interleaved arrivals at
/// `total_packets_per_second`.
struct MultiPathConfig {
  std::size_t path_count = 1000;
  double zipf_s = 1.0;
  double total_packets_per_second = 1'000'000.0;
  net::Duration duration = net::seconds(1);
  std::size_t flows_per_path = 16;
  std::uint64_t seed = 1;
};

struct MultiPathTrace {
  std::vector<net::PrefixPair> paths;
  /// Packets in arrival order; `path_of[i]` gives the path index of
  /// packets[i].
  std::vector<net::Packet> packets;
  std::vector<std::uint32_t> path_of;
};

[[nodiscard]] MultiPathTrace generate_multi_path(const MultiPathConfig& cfg);

/// The default origin-prefix pair used across tests/examples (an arbitrary
/// pair of /16s, standing in for two BGP origin prefixes).
[[nodiscard]] net::PrefixPair default_prefix_pair();

}  // namespace vpm::trace

#endif  // VPM_TRACE_SYNTHETIC_TRACE_HPP
