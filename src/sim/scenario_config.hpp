// Declarative scenario description for the config-driven engine
// (sim/scenario_engine): one struct composing the traffic mix, the loss
// model, topology events, dissemination faults, and the adversary
// strategy matrix — everything the §6 evaluation grid varies.
//
// A scenario is expressible as a one-line `key=value` string (or a text
// file of them under tests/scenarios/), so a failing grid cell prints a
// self-contained repro: paste the line into `example_scenario_run` (or
// parse_scenario in a test) and the exact run re-executes.  to_string()
// emits only the keys that differ from a default-constructed config plus
// name and seed, and parse(to_string(c)) reproduces c's behaviour
// exactly — the round-trip suite pins `to_string` equality.
#ifndef VPM_SIM_SCENARIO_CONFIG_HPP
#define VPM_SIM_SCENARIO_CONFIG_HPP

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/config.hpp"
#include "dissem/faulty_transport.hpp"
#include "net/digest.hpp"
#include "net/time.hpp"

namespace vpm::sim {

/// Which loss process runs inside `loss_domain`.
enum class LossKind : std::uint8_t {
  kNone,
  kBernoulli,       ///< iid at `loss_rate`
  kGilbertElliott,  ///< bursty at `loss_rate`, mean burst `loss_burst`
  kCongestion,      ///< bottleneck-link queueing: delays always, drops on
                    ///<   overflow (size the bottleneck down to get loss)
};

/// What one domain does to its receipts before publishing
/// (adversary/strategies.hpp transformers).
enum class AdversaryKind : std::uint8_t {
  kHonest,
  kHideLoss,         ///< egress claims delivery of dropped packets
  kUnderstateDelay,  ///< egress sample times shifted earlier by `shave`
  kCoverUpstream,    ///< ingress covers the upstream neighbour's claims
                     ///<   (assign to the liar's downstream neighbour for
                     ///<   the §3.1 collusion pair)
};

struct ScenarioAdversary {
  std::string domain;
  AdversaryKind kind = AdversaryKind::kHonest;
  friend bool operator==(const ScenarioAdversary&,
                         const ScenarioAdversary&) = default;
};

/// A timed inter-domain link failure: link `link` (0 = between domains 0
/// and 1) drops every packet crossing during rounds
/// [round, round + duration_rounds).  duration_rounds == 0 disables.
struct LinkDownEvent {
  std::size_t link = 0;
  std::size_t round = 0;
  std::size_t duration_rounds = 0;
  friend bool operator==(const LinkDownEvent&, const LinkDownEvent&) = default;
};

/// A mid-epoch route flap: the `paths` highest-index paths are withdrawn
/// for rounds [round, round + duration_rounds) — their traffic stops and
/// every HOP's path table is rebuilt without them (open receipts drain
/// first), then rebuilt again with the full table when the routes return.
/// duration_rounds == 0 disables.
struct RouteFlapEvent {
  std::size_t paths = 0;
  std::size_t round = 0;
  std::size_t duration_rounds = 0;
  friend bool operator==(const RouteFlapEvent&, const RouteFlapEvent&) = default;
};

struct ScenarioConfig {
  std::string name = "scenario";
  std::uint64_t seed = 1;

  /// The domain chain (Fig. 1 shape): first domain exposes only an egress
  /// HOP, the last only an ingress HOP, transit domains both.  HOP ids are
  /// 1..2*(N-1) in path order.
  std::vector<std::string> domains = {"S", "X", "D"};

  // Traffic.
  std::size_t paths = 3;
  std::size_t rounds = 6;
  net::Duration round_length = net::milliseconds(50);
  double packets_per_second = 12'000.0;
  double zipf_s = 0.8;

  // Collector shape.
  net::DigestMode digest_mode = net::DigestMode::kIndependent;
  double marker_rate = 1.0 / 64.0;
  /// Time-keyed marker rule (`marker_max_age_us`; 0 = off).  See
  /// core::ProtocolParams::marker_max_age.
  net::Duration marker_max_age{0};
  core::HopTuning tuning{.sample_rate = 0.05, .cut_rate = 2e-3};
  std::size_t shards = 1;
  net::Duration max_diff = net::milliseconds(5);

  // Propagation.
  net::Duration domain_delay = net::microseconds(500);
  net::Duration link_delay = net::microseconds(50);
  std::string jitter_domain;  ///< empty = no jitter anywhere
  net::Duration jitter;

  // Loss.
  LossKind loss = LossKind::kNone;
  std::string loss_domain;  ///< empty = first transit domain
  double loss_rate = 0.02;
  double loss_burst = 4.0;  ///< GE mean burst length, packets
  double congestion_bps = 40e6;
  std::size_t congestion_buffer = 64 * 1024;  ///< bytes

  // Adversaries (one entry per lying domain; absent = honest).
  std::vector<ScenarioAdversary> adversaries;
  net::Duration shave = net::milliseconds(10);
  net::Duration fake_delay = net::milliseconds(2);

  // Topology events.
  LinkDownEvent link_down;
  RouteFlapEvent route_flap;
  /// Lifecycle: evict a path idle for this many rounds (0 = lifecycle
  /// machinery off).  Route flaps run the PR-5 eviction/compaction pass
  /// either way; this knob adds TTL eviction between flaps.
  std::size_t ttl_rounds = 0;

  // Dissemination.
  std::size_t max_chunk_bytes = 4 * 1024;
  dissem::FaultPlan faults;  ///< all-zero = perfect wire
  std::uint64_t fault_seed = 1;
  std::size_t crash_every_rounds = 0;  ///< FetchClient crash-restart cadence
  std::uint64_t gap_patience_polls = 3;

  // Federation (sim/federation_scenario): a ring of fed_domains domains,
  // each simultaneously producer and consumer against a shared
  // FederatedStore.  fed_domains == 0 leaves the classic chain engine in
  // charge; >= 3 enables the fleet (each flow spans 3 consecutive
  // domains).
  std::size_t fed_domains = 0;
  std::size_t fed_store_shards = 1;
  /// false: volatile memory backend.  true: disk segment backend — the
  /// run directory is chosen by the driver (a path is runtime state, not
  /// scenario identity, so it never appears in the repro line).
  bool fed_segment_backend = false;
  std::size_t fed_segment_bytes = 16 * 1024;  ///< segment roll threshold
  /// Kill the STORE process (and the fleet's sessions with it) every Nth
  /// round and reopen from disk segments (0 = never; segment backend
  /// only).
  std::size_t fed_crash_every = 0;
  /// Tear a few bytes off the last segment file at each crash (a torn
  /// tail write the recovery scan must truncate).
  bool fed_torn_tail = false;
  /// Round at which the LAST domain's verifier clients join (0 = from the
  /// start); late joiners start at the GC floor.
  std::size_t fed_join_round = 0;
  /// One domain's clients poll only every Nth round (0 = every round) —
  /// the lagging-consumer case that stretches retention.
  std::size_t fed_lag_every = 0;

  /// The one-line repro string: `key=value` pairs, space separated, only
  /// keys differing from the defaults (name and seed always included).
  [[nodiscard]] std::string to_string() const;
};

/// Parse the `key=value` text format: tokens separated by any whitespace
/// (so one line and a multi-line file are the same grammar), `#` starts a
/// comment to end of line.  Unknown keys, malformed values, and malformed
/// compound values (domains=, adversary.*=, link_down=, route_flap=)
/// throw std::invalid_argument naming the offending token.
[[nodiscard]] ScenarioConfig parse_scenario(std::string_view text);

}  // namespace vpm::sim

#endif  // VPM_SIM_SCENARIO_CONFIG_HPP
