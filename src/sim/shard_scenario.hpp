// Multi-shard collector scenario driver.
//
// One call builds a multi-path workload, runs it through BOTH collectors —
// a single-threaded MonitoringCache (the reference) and a ShardedCollector
// with the requested shard/producer counts — and returns the two drained
// receipt streams plus their wire encodings.  The sharded ingest replays
// the trace in observe_batch() slices whose boundaries are drawn from a
// seeded RNG, so every scenario also fuzzes batch slicing; with
// producer_count > 0 the driver spawns that many producer threads, each
// owning the paths with global index ≡ producer (mod P) so per-path FIFO
// order (the determinism precondition) holds by construction.
//
// This is the workhorse of the sharded-vs-single equivalence suite and
// the TSan stress tests; it lives in sim/ so examples and future
// scenarios can reuse it.
#ifndef VPM_SIM_SHARD_SCENARIO_HPP
#define VPM_SIM_SHARD_SCENARIO_HPP

#include <cstddef>
#include <cstdint>
#include <vector>

#include "collector/monitoring_cache.hpp"
#include "core/config.hpp"
#include "core/receipt_merge.hpp"
#include "net/digest.hpp"
#include "net/time.hpp"

namespace vpm::sim {

struct ShardScenarioConfig {
  // Workload shape (the "topology": path count + popularity skew).
  std::size_t path_count = 64;
  double zipf_s = 1.0;
  double total_packets_per_second = 60'000.0;
  net::Duration duration = net::milliseconds(300);
  std::uint64_t seed = 1;

  // Collector shape.
  std::size_t shard_count = 4;
  net::DigestMode digest_mode = net::DigestMode::kIndependent;
  double marker_rate = 1.0 / 500.0;
  core::HopTuning tuning{.sample_rate = 0.01, .cut_rate = 1e-3};

  // Ingest shape.  Batch sizes are uniform in [min_batch, max_batch],
  // drawn per slice from a generator seeded off `seed`.
  std::size_t min_batch = 1;
  std::size_t max_batch = 2048;
  /// 0 = synchronous ingest on the driver thread; N > 0 = start N
  /// producer threads feeding the collector's SPSC queues.
  std::size_t producer_count = 0;
  /// Per (producer, shard) queue bound — small values exercise
  /// backpressure (producers spin on full rings).
  std::size_t queue_capacity = 256;
};

struct ShardScenarioResult {
  /// Reference: the single-threaded cache's drain, ascending path index.
  std::vector<core::IndexedPathDrain> single;
  /// The sharded collector's merged drain, same order contract.
  std::vector<core::IndexedPathDrain> sharded;
  /// Wire encodings of the two streams (the equivalence identity).
  std::vector<std::byte> single_bytes;
  std::vector<std::byte> sharded_bytes;
  bool byte_identical = false;

  /// Cost/ground-truth cross-checks.
  collector::DataPlaneOps single_ops;
  collector::DataPlaneOps sharded_ops;
  std::uint64_t single_unknown = 0;
  std::uint64_t sharded_unknown = 0;
  /// Ground truth: packets generated per path (for loss/duplication
  /// assertions against drained aggregate counts).
  std::vector<std::uint64_t> path_packets;
  std::uint64_t total_packets = 0;
};

/// Run one scenario.  Throws on infeasible configs (propagated from the
/// collector/trace layers).
[[nodiscard]] ShardScenarioResult run_shard_scenario(
    const ShardScenarioConfig& cfg);

/// Wire-encode a merged drain stream (helper shared by tests).
[[nodiscard]] std::vector<std::byte> encode_drain_stream(
    const std::vector<core::IndexedPathDrain>& stream);

}  // namespace vpm::sim

#endif  // VPM_SIM_SHARD_SCENARIO_HPP
