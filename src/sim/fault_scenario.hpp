// Crash-restart fleet soak over a faulty dissemination wire (ISSUE 6).
//
// The churn scenario (sim/churn_scenario) exercises the epoch lifecycle on
// a PERFECT wire: every sealed envelope reaches the store, in order,
// exactly once.  This scenario drives the same three-hop pipeline
//
//   collector -> WireExporter -> FaultyTransport -> ReceiptStore
//             -> FetchClient fleet -> IncrementalPathVerifier
//
// through a declarative FaultPlan: envelopes drop, duplicate, reorder,
// arrive late, or arrive bit-damaged — and, on top, the consumer fleet is
// periodically KILLED between polls and rebuilt from its acked cursors.
//
// What makes the result checkable is determinism on both sides:
//
//   * the transport keeps per-producer ground truth of the sequences it
//     destroyed (dropped or corrupted), so the soak can assert that
//     reported RoundGaps cover exactly the induced losses;
//   * a reporting round either survives in full (no gap range touches its
//     sealed sequence range) or is gapped; the scenario re-feeds a
//     REFERENCE verifier from the fault-free store with exactly the
//     delivered-round subset, so delivered rounds must yield findings
//     IDENTICAL to a fault-free run over the same rounds;
//   * the run ends with one clean (fault-free) closing round — tail losses
//     are invisible to a cursor consumer until something arrives behind
//     them, so the closing round is what lets every gap surface.
//
// Consumer patience is set strictly above the transport's worst-case
// delay (in polls), so reordering and delay alone NEVER degrade to a
// reported gap: gaps == destroyed sequences, exactly.
#ifndef VPM_SIM_FAULT_SCENARIO_HPP
#define VPM_SIM_FAULT_SCENARIO_HPP

#include <cstdint>
#include <vector>

#include "core/config.hpp"
#include "core/verifier.hpp"
#include "dissem/faulty_transport.hpp"
#include "dissem/fetch_client.hpp"
#include "net/digest.hpp"
#include "net/time.hpp"

namespace vpm::sim {

struct FaultScenarioConfig {
  // Traffic (lighter than the churn soak: the interesting work is on the
  // wire, not in the collector).
  std::size_t path_count = 6;
  double zipf_s = 1.1;
  double total_packets_per_second = 15'000.0;
  std::size_t rounds = 30;  ///< faulty rounds; a clean closing round follows
  net::Duration round_length = net::milliseconds(50);
  std::uint64_t seed = 1;

  // Collector shape.
  net::DigestMode digest_mode = net::DigestMode::kIndependent;
  double marker_rate = 1.0 / 64.0;
  core::HopTuning tuning{.sample_rate = 0.05, .cut_rate = 2e-3};

  // The wire.
  dissem::FaultPlan plan;        ///< all-zero == perfect (control runs)
  std::uint64_t fault_seed = 1;  ///< transport schedule seed
  /// Small chunks -> several envelopes per round -> more fault surface.
  std::size_t max_chunk_bytes = 2 * 1024;

  // The fleet.
  /// Destroy every FetchClient and rebuild it from its acked cursor at
  /// the start of every Nth round (0 = never crash).  Rebuilding mid-gap
  /// and mid-resync is the point.
  std::size_t crash_every_rounds = 0;
  /// Must stay strictly above plan.max_delay_ticks (one poll per round)
  /// or delays degrade into spurious gaps.
  std::uint64_t gap_patience_polls = 3;

  // Verifier retention: sized so nothing expires within the run — the
  // delivered-subset equality below is exact, not modulo expiry.
  std::size_t margin_boundaries = 2;

  // Per-hop observation delay (µs-aligned), as in the churn scenario.
  net::Duration hop_delay = net::microseconds(400);
  std::size_t delay_spread_us = 32;
};

struct FaultScenarioResult {
  core::PathLayout layout;
  std::uint64_t total_packets = 0;

  // Per hop: transport ground truth and consumer outcome.
  std::vector<dissem::FaultStats> transport;
  std::vector<std::vector<std::uint64_t>> lost_sequences;  ///< ascending
  /// Reported gaps, deduplicated across crash re-declarations (same
  /// first_sequence -> widest range, union of affected paths).
  std::vector<std::vector<core::RoundGap>> gaps;
  /// Last sealed envelope sequence per round (index rounds == the clean
  /// closing round).
  std::vector<std::vector<std::uint64_t>> sealed_by_round;
  /// round_delivered[h][r]: no gap range intersects round r's sealed
  /// sequence range.
  std::vector<std::vector<char>> round_delivered;
  /// FetchClient stats summed across crash incarnations.
  std::vector<dissem::FetchClient::Stats> client_stats;
  std::size_t client_rebuilds = 0;

  // Per path: the faulty run's analysis (gaps attributed per path) vs the
  // reference verifier fed the identical delivered-round subset from the
  // fault-free store.  Domains/links must match exactly; only the gaps
  // vector differs (reference has none).
  std::vector<core::PathAnalysis> fault_analysis;
  std::vector<core::PathAnalysis> ref_analysis;
  std::uint64_t fault_expired_unmatched = 0;
  std::uint64_t ref_expired_unmatched = 0;

  // Store end state: nothing stuck.
  std::vector<std::size_t> consumer_lag_end;  ///< per hop, must be 0
  std::size_t store_envelopes_end = 0;
  std::size_t gc_erased = 0;
  /// Rejected ingests: corrupted MACs plus duplicate/stale copies.
  std::size_t store_rejected = 0;
};

/// Run the scenario.  Deterministic per (cfg.seed, cfg.fault_seed).
/// Throws std::invalid_argument on a config whose patience cannot cover
/// the plan's delays (the run would report phantom gaps by construction).
FaultScenarioResult run_fault_scenario(const FaultScenarioConfig& cfg);

}  // namespace vpm::sim

#endif  // VPM_SIM_FAULT_SCENARIO_HPP
