// Bursty on/off UDP source: the background flow behind the paper's
// highest-variance congestion scenario ("Congestion is caused by a bursty,
// high-rate UDP flow" — Figure 2 caption).
#ifndef VPM_SIM_UDP_FLOW_HPP
#define VPM_SIM_UDP_FLOW_HPP

#include <cstdint>
#include <random>

#include "sim/bottleneck_link.hpp"
#include "sim/event_queue.hpp"

namespace vpm::sim {

class UdpOnOffFlow {
 public:
  struct Config {
    double peak_bps = 300e6;  ///< send rate while ON
    std::size_t packet_bytes = 1400;
    net::Duration mean_on = net::milliseconds(100);
    net::Duration mean_off = net::milliseconds(400);
    std::uint64_t seed = 1;
  };

  /// Throws std::invalid_argument on non-positive rate/size/periods.
  UdpOnOffFlow(EventQueue& events, BottleneckLink& link, Config cfg);

  /// Begin the on/off cycle at `at` (starts in OFF state).
  void start(net::Timestamp at);

  [[nodiscard]] std::uint64_t sent() const noexcept { return sent_; }
  [[nodiscard]] std::uint64_t dropped() const noexcept { return dropped_; }

 private:
  void enter_on();
  void enter_off();
  void send_next();

  EventQueue& events_;
  BottleneckLink& link_;
  Config cfg_;
  std::mt19937_64 rng_;
  net::Timestamp on_until_;
  std::uint64_t sent_ = 0;
  std::uint64_t dropped_ = 0;
};

}  // namespace vpm::sim

#endif  // VPM_SIM_UDP_FLOW_HPP
