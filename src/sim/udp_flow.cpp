#include "sim/udp_flow.hpp"

#include <stdexcept>

namespace vpm::sim {

UdpOnOffFlow::UdpOnOffFlow(EventQueue& events, BottleneckLink& link,
                           Config cfg)
    : events_(events), link_(link), cfg_(cfg), rng_(cfg.seed) {
  if (cfg.peak_bps <= 0.0) {
    throw std::invalid_argument("peak_bps must be positive");
  }
  if (cfg.packet_bytes == 0) {
    throw std::invalid_argument("packet_bytes must be positive");
  }
  if (cfg.mean_on <= net::Duration{0} || cfg.mean_off <= net::Duration{0}) {
    throw std::invalid_argument("on/off periods must be positive");
  }
}

void UdpOnOffFlow::start(net::Timestamp at) {
  std::exponential_distribution<double> off_len(1.0 /
                                                cfg_.mean_off.seconds());
  events_.schedule(at + net::seconds_f(off_len(rng_)),
                   [this] { enter_on(); });
}

void UdpOnOffFlow::enter_on() {
  std::exponential_distribution<double> on_len(1.0 / cfg_.mean_on.seconds());
  on_until_ = events_.now() + net::seconds_f(on_len(rng_));
  send_next();
}

void UdpOnOffFlow::enter_off() {
  std::exponential_distribution<double> off_len(1.0 /
                                                cfg_.mean_off.seconds());
  events_.schedule_in(net::seconds_f(off_len(rng_)), [this] { enter_on(); });
}

void UdpOnOffFlow::send_next() {
  if (events_.now() >= on_until_) {
    enter_off();
    return;
  }
  ++sent_;
  if (!link_.offer(cfg_.packet_bytes, nullptr)) {
    ++dropped_;
  }
  const auto gap_ns = static_cast<std::int64_t>(
      static_cast<double>(cfg_.packet_bytes) * 8.0 / cfg_.peak_bps * 1e9);
  events_.schedule_in(net::Duration{gap_ns}, [this] { send_next(); });
}

}  // namespace vpm::sim
