// Congestion scenario runner: generates the intra-domain delay series the
// Figure-2 experiments feed into domain X.
//
// Paper §7.2: "we use the NS simulator to create realistic congestion
// scenarios, and generate the sequence of delay values that our packet
// sequence would encounter in each case.  We consider different congestion
// scenarios, where long-lived TCP or UDP flows compete for/saturate the
// bandwidth of a bottleneck link" — results shown are for the scenario
// with the highest delay variance at the shortest time scale (bursty UDP).
//
// The foreground sequence shares a DropTail bottleneck with background
// flows; each foreground packet's delay = queueing + transmission +
// propagation.  Loss is *not* modelled here: the paper injects loss
// separately with Gilbert-Elliott, and so do we (the bottleneck buffer is
// sized so foreground drops are impossible; we assert on that).
#ifndef VPM_SIM_CONGESTION_HPP
#define VPM_SIM_CONGESTION_HPP

#include <cstdint>
#include <span>
#include <vector>

#include "net/packet.hpp"
#include "net/time.hpp"
#include "sim/tcp_flow.hpp"
#include "sim/udp_flow.hpp"

namespace vpm::sim {

enum class CongestionKind : std::uint8_t {
  kBurstyUdp,    ///< the paper's headline scenario (Fig. 2 caption)
  kLongLivedTcp, ///< TCP-only saturation
  kMixed,        ///< TCP + bursty UDP
  kNone,         ///< baseline: propagation + transmission only
};

struct CongestionConfig {
  CongestionKind kind = CongestionKind::kBurstyUdp;
  double bottleneck_bps = 500e6;
  /// Buffer sized for ~64 ms of drain at the default rate: delay spikes in
  /// the tens of milliseconds, like the paper's congested domain, while
  /// absorbing the foreground entirely (loss is injected separately with
  /// Gilbert-Elliott, exactly as in §7.2).
  std::size_t buffer_bytes = 4'000'000;
  net::Duration propagation = net::microseconds(200);
  int tcp_flow_count = 4;
  UdpOnOffFlow::Config udp = {};
  std::uint64_t seed = 1;
};

/// Per-foreground-packet outcome.
struct DelayOutcome {
  bool dropped = false;        ///< queue overflow (should not happen; see above)
  net::Duration delay;         ///< domain traversal delay
};

struct CongestionResult {
  std::vector<DelayOutcome> outcomes;  ///< indexed like the foreground trace
  std::uint64_t foreground_drops = 0;
  std::uint64_t background_sent = 0;
  std::uint64_t background_drops = 0;
  net::Duration max_delay;
};

/// Run the scenario over the foreground packets (arrival times are their
/// `origin_time`).  Throws std::invalid_argument on empty foreground.
[[nodiscard]] CongestionResult simulate_congestion(
    const CongestionConfig& cfg, std::span<const net::Packet> foreground);

/// Convenience: just the delay series in milliseconds (drops -> -1).
[[nodiscard]] std::vector<double> delay_series_ms(const CongestionResult& r);

}  // namespace vpm::sim

#endif  // VPM_SIM_CONGESTION_HPP
