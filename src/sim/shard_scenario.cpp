#include "sim/shard_scenario.hpp"

#include <algorithm>
#include <random>
#include <span>
#include <thread>
#include <utility>

#include "collector/sharded_collector.hpp"
#include "net/wire.hpp"
#include "sim/scenario_common.hpp"
#include "trace/synthetic_trace.hpp"

namespace vpm::sim {

std::vector<std::byte> encode_drain_stream(
    const std::vector<core::IndexedPathDrain>& stream) {
  net::ByteWriter w;
  core::encode_stream(stream, w);
  return std::move(w).take();
}

namespace {

std::vector<core::IndexedPathDrain> index_drains(
    std::vector<core::PathDrain> drains) {
  std::vector<core::IndexedPathDrain> out;
  out.reserve(drains.size());
  for (std::size_t i = 0; i < drains.size(); ++i) {
    out.push_back(
        core::IndexedPathDrain{.path = i, .drain = std::move(drains[i])});
  }
  return out;
}

/// Replay `packets` as observe_batch slices with RNG-drawn boundaries.
template <typename Feed>
void replay_slices(std::span<const net::Packet> packets, std::size_t min_batch,
                   std::size_t max_batch, std::mt19937_64& rng, Feed&& feed) {
  std::uniform_int_distribution<std::size_t> size_dist(
      std::max<std::size_t>(min_batch, 1), std::max(max_batch, min_batch));
  std::size_t i = 0;
  while (i < packets.size()) {
    const std::size_t n = std::min(size_dist(rng), packets.size() - i);
    feed(packets.subspan(i, n));
    i += n;
  }
}

}  // namespace

ShardScenarioResult run_shard_scenario(const ShardScenarioConfig& cfg) {
  const trace::MultiPathTrace multi = trace::generate_multi_path(
      scenario::multi_path_config(cfg.path_count, cfg.zipf_s,
                                  cfg.total_packets_per_second, cfg.duration,
                                  cfg.seed));

  collector::MonitoringCache::Config ccfg;
  ccfg.protocol.digest_mode = cfg.digest_mode;
  ccfg.protocol.marker_rate = cfg.marker_rate;
  ccfg.tuning = cfg.tuning;

  ShardScenarioResult r;
  r.total_packets = multi.packets.size();
  r.path_packets.assign(multi.paths.size(), 0);
  for (const std::uint32_t p : multi.path_of) ++r.path_packets[p];

  // --- reference: one cache, one thread, whole trace in one batch.
  collector::MonitoringCache single(ccfg, multi.paths);
  single.observe_batch(multi.packets);
  r.single = index_drains(single.drain_all(/*flush_open=*/true));
  r.single_ops = single.ops();
  r.single_unknown = single.unknown_path_packets();

  // --- sharded run over the same trace.
  collector::ShardedCollector::Config scfg;
  scfg.cache = ccfg;
  scfg.shard_count = cfg.shard_count;
  scfg.queue_capacity = cfg.queue_capacity;
  collector::ShardedCollector sharded(scfg, multi.paths);

  if (cfg.producer_count == 0) {
    std::mt19937_64 rng(cfg.seed * 0x9E3779B97F4A7C15ull + 1);
    replay_slices(multi.packets, cfg.min_batch, cfg.max_batch, rng,
                  [&](std::span<const net::Packet> slice) {
                    sharded.observe_batch(slice);
                  });
  } else {
    sharded.start(cfg.producer_count);
    std::vector<std::thread> producers;
    producers.reserve(cfg.producer_count);
    for (std::size_t p = 0; p < cfg.producer_count; ++p) {
      producers.emplace_back([&, p] {
        // Producer p owns the paths with global index ≡ p (mod P), so a
        // path's packets all traverse one FIFO queue (the determinism
        // precondition).  Its subsequence keeps the trace's arrival order.
        std::vector<net::Packet> mine;
        for (std::size_t i = 0; i < multi.packets.size(); ++i) {
          if (multi.path_of[i] % cfg.producer_count == p) {
            mine.push_back(multi.packets[i]);
          }
        }
        std::mt19937_64 rng(cfg.seed * 0x9E3779B97F4A7C15ull + 1 + p);
        replay_slices(mine, cfg.min_batch, cfg.max_batch, rng,
                      [&](std::span<const net::Packet> slice) {
                        sharded.feed(p, slice);
                      });
      });
    }
    for (std::thread& t : producers) t.join();
    sharded.stop();
  }

  r.sharded = sharded.drain(/*flush_open=*/true);
  r.sharded_ops = sharded.ops();
  r.sharded_unknown = sharded.unknown_path_packets();

  r.single_bytes = encode_drain_stream(r.single);
  r.sharded_bytes = encode_drain_stream(r.sharded);
  r.byte_identical = r.single_bytes == r.sharded_bytes;
  return r;
}

}  // namespace vpm::sim
