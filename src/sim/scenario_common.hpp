// Shared plumbing for the scenario drivers (churn, fault, shard, and the
// config-driven ScenarioEngine): deterministic per-path delay spreads,
// PathId table construction, drain concatenation, gap deduplication, and
// fetch-client stat accumulation.  Every helper here was extracted
// verbatim from `sim/churn_scenario` / `sim/fault_scenario`, whose soak
// suites pin the refactor byte-for-byte — change semantics here and the
// pins fail, by design.
#ifndef VPM_SIM_SCENARIO_COMMON_HPP
#define VPM_SIM_SCENARIO_COMMON_HPP

#include <cstddef>
#include <cstdint>
#include <vector>

#include "collector/monitoring_cache.hpp"
#include "core/receipt.hpp"
#include "core/verifier.hpp"
#include "dissem/fetch_client.hpp"
#include "net/path_id.hpp"
#include "net/prefix.hpp"
#include "net/time.hpp"
#include "trace/synthetic_trace.hpp"

namespace vpm::sim::scenario {

/// splitmix64 finalizer — deterministic per-path delay offsets.
[[nodiscard]] std::uint64_t mix(std::uint64_t x);

/// The consumer-side PathId table for one HOP's receipts: same header
/// spec, neighbor hops, and MaxDiff the producer's collector stamps.
[[nodiscard]] std::vector<net::PathId> path_table(
    const collector::MonitoringCache::Config& cfg,
    const std::vector<net::PrefixPair>& paths);

/// Concatenate periodic rounds into the one-shot stream (the collector's
/// drain-order invariant — what the equality assertions compare).
void append_drain(core::PathDrain& acc, char& have, const core::PathDrain& d);

/// Merge crash re-declarations: a client killed after reporting a gap but
/// before acking past it re-fetches and re-declares the same gap (same
/// first missing sequence) — keep the widest range and the union of
/// attributed paths.
[[nodiscard]] std::vector<core::RoundGap> dedupe_gaps(
    std::vector<core::RoundGap> raw);

/// Sum one FetchClient incarnation's stats into an accumulator (crash
/// rebuilds retire several incarnations per hop).
void add_stats(dissem::FetchClient::Stats& acc,
               const dissem::FetchClient::Stats& s);

/// The three-HOP segment layout the churn and fault soaks run on
/// (A,B in domain "alpha"; C in domain "beta").
[[nodiscard]] core::PathLayout three_hop_layout();

/// Per-path, per-hop observation delay: base per hop plus a small
/// deterministic per-path offset (µs-aligned, constant per path so
/// per-path observation order is preserved and the 1 µs wire time
/// quantisation is exact).
[[nodiscard]] net::Duration spread_hop_delay(std::uint64_t seed,
                                             std::size_t path,
                                             std::size_t hop,
                                             net::Duration hop_delay,
                                             std::size_t delay_spread_us);

/// The traffic config every scenario driver builds the same way: a
/// multi-path Zipf mix over a fixed duration.
[[nodiscard]] trace::MultiPathConfig multi_path_config(
    std::size_t path_count, double zipf_s, double total_packets_per_second,
    net::Duration duration, std::uint64_t seed);

/// Round-based convenience form: duration = round_length * rounds.
[[nodiscard]] trace::MultiPathConfig multi_path_config(
    std::size_t path_count, double zipf_s, double total_packets_per_second,
    net::Duration round_length, std::size_t rounds, std::uint64_t seed);

/// Quantise a timestamp to the wire's 1 µs resolution (floor), so drains
/// round-trip `==`-equal through export/import.
[[nodiscard]] net::Timestamp quantize_us(net::Timestamp t);

/// The reporting round an origin time falls in, clamped to the last round
/// (trailing packets emitted exactly at the duration boundary).
[[nodiscard]] std::size_t round_of(net::Timestamp origin,
                                   std::int64_t round_ns, std::size_t rounds);

}  // namespace vpm::sim::scenario

#endif  // VPM_SIM_SCENARIO_COMMON_HPP
