#include "sim/fault_scenario.hpp"

#include <algorithm>
#include <array>
#include <memory>
#include <optional>
#include <stdexcept>
#include <unordered_map>
#include <utility>

#include "collector/monitoring_cache.hpp"
#include "core/incremental_verifier.hpp"
#include "core/receipt_sink.hpp"
#include "dissem/receipt_store.hpp"
#include "dissem/wire_exporter.hpp"
#include "dissem/wire_importer.hpp"
#include "sim/scenario_common.hpp"
#include "trace/synthetic_trace.hpp"

namespace vpm::sim {
namespace {

using scenario::add_stats;
using scenario::dedupe_gaps;
using scenario::path_table;

constexpr std::size_t kHops = 3;
constexpr dissem::DomainKey kKey = 0xFA117C0DE;

}  // namespace

FaultScenarioResult run_fault_scenario(const FaultScenarioConfig& cfg) {
  if (cfg.rounds == 0 || cfg.path_count == 0) {
    throw std::invalid_argument("fault scenario: empty run");
  }
  // One poll per round and the transport ticking once per round means an
  // envelope delayed d ticks is invisible for d-1 polls; patience must
  // cover that or the run reports phantom gaps by construction.
  if (cfg.plan.delay_rate > 0.0 &&
      cfg.gap_patience_polls < cfg.plan.max_delay_ticks) {
    throw std::invalid_argument(
        "fault scenario: gap patience below the plan's max delay");
  }

  // --- traffic ------------------------------------------------------------
  const trace::MultiPathTrace multi = trace::generate_multi_path(
      scenario::multi_path_config(cfg.path_count, cfg.zipf_s,
                                  cfg.total_packets_per_second,
                                  cfg.round_length, cfg.rounds, cfg.seed));

  const auto hop_delay = [&](std::size_t path, std::size_t hop) {
    return scenario::spread_hop_delay(cfg.seed, path, hop, cfg.hop_delay,
                                      cfg.delay_spread_us);
  };

  const std::int64_t round_ns = cfg.round_length.nanoseconds();
  std::vector<std::vector<net::Packet>> round_packets(cfg.rounds);
  std::array<std::vector<std::vector<net::Timestamp>>, kHops> round_when;
  for (auto& w : round_when) w.resize(cfg.rounds);
  FaultScenarioResult result;
  for (std::size_t i = 0; i < multi.packets.size(); ++i) {
    net::Packet p = multi.packets[i];
    p.origin_time = scenario::quantize_us(p.origin_time);
    const std::size_t r =
        scenario::round_of(p.origin_time, round_ns, cfg.rounds);
    const std::size_t path = multi.path_of[i];
    round_packets[r].push_back(p);
    for (std::size_t h = 0; h < kHops; ++h) {
      round_when[h][r].push_back(p.origin_time + hop_delay(path, h));
    }
    ++result.total_packets;
  }

  // --- collectors ---------------------------------------------------------
  result.layout = scenario::three_hop_layout();

  std::array<collector::MonitoringCache::Config, kHops> hop_cfg;
  std::array<std::optional<collector::MonitoringCache>, kHops> caches;
  for (std::size_t h = 0; h < kHops; ++h) {
    collector::MonitoringCache::Config c;
    c.protocol.digest_mode = cfg.digest_mode;
    c.protocol.marker_rate = cfg.marker_rate;
    c.tuning = cfg.tuning;
    c.self = result.layout.hops[h];
    c.previous_hop = h == 0 ? net::kNoHop : result.layout.hops[h - 1];
    c.next_hop = h + 1 == kHops ? net::kNoHop : result.layout.hops[h + 1];
    hop_cfg[h] = c;
    caches[h].emplace(c, multi.paths);
  }

  // --- the wire: exporters -> faulty transports -> store ------------------
  // `ref_store` archives the pre-fault copy of every envelope — the
  // fault-free wire the delivered-round reference is re-fed from.
  dissem::ReceiptStore store;
  dissem::ReceiptStore ref_store;
  for (std::size_t h = 0; h < kHops; ++h) {
    store.register_producer(result.layout.hops[h], kKey);
    ref_store.register_producer(result.layout.hops[h], kKey);
  }
  store.register_consumer("fleet");
  ref_store.register_consumer("ref");

  std::array<std::optional<dissem::FaultyTransport>, kHops> transports;
  for (std::size_t h = 0; h < kHops; ++h) {
    transports[h].emplace(cfg.plan, cfg.fault_seed + h,
                          [&store](dissem::Envelope&& e) {
                            (void)store.ingest(std::move(e));
                          });
  }

  bool faults_on = true;  // the closing round ships on a clean wire
  std::array<std::optional<dissem::WireExporter>, kHops> exporters;
  for (std::size_t h = 0; h < kHops; ++h) {
    exporters[h].emplace(
        dissem::WireExporter::Config{.producer = result.layout.hops[h],
                                     .key = kKey,
                                     .max_chunk_bytes = cfg.max_chunk_bytes},
        [&ref_store, &transports, &store, &faults_on,
         h](dissem::Envelope&& e) {
          (void)ref_store.ingest(e);
          if (faults_on) {
            transports[h]->send(std::move(e));
          } else {
            (void)store.ingest(std::move(e));
          }
        });
  }

  // --- verifiers ----------------------------------------------------------
  // Retention covers the whole run: the delivered-subset equality below is
  // exact, not modulo retention expiry (the churn soak covers expiry).
  const core::IncrementalPathVerifier::Config vcfg{
      .layout = result.layout,
      .retain_rounds = cfg.rounds + 8,
      .margin_boundaries = cfg.margin_boundaries,
  };
  std::vector<core::IncrementalPathVerifier> fault_verifiers;
  std::vector<core::IncrementalPathVerifier> ref_verifiers;
  fault_verifiers.reserve(cfg.path_count);
  ref_verifiers.reserve(cfg.path_count);
  for (std::size_t p = 0; p < cfg.path_count; ++p) {
    fault_verifiers.emplace_back(vcfg);
    ref_verifiers.emplace_back(vcfg);
  }

  // --- the consumer fleet -------------------------------------------------
  std::array<std::optional<dissem::WireImporter>, kHops> importers;
  for (std::size_t h = 0; h < kHops; ++h) {
    importers[h].emplace(path_table(hop_cfg[h], multi.paths));
  }

  result.gaps.assign(kHops, {});
  result.client_stats.assign(kHops, {});
  std::array<std::vector<core::RoundGap>, kHops> raw_gaps;
  std::array<std::unique_ptr<dissem::FetchClient>, kHops> clients;
  const auto build_client = [&](std::size_t h) {
    dissem::FetchClient::Config ccfg;
    ccfg.consumer = "fleet";
    ccfg.producer = result.layout.hops[h];
    ccfg.producer_name = result.layout.domain_of[h];
    ccfg.hop = result.layout.hops[h];
    ccfg.gap_patience_polls = cfg.gap_patience_polls;
    ccfg.seed = cfg.seed ^ (0xC11E57ull + h);
    clients[h] = std::make_unique<dissem::FetchClient>(
        *importers[h], store, ccfg,
        [&fault_verifiers, &result,
         h](std::vector<core::IndexedPathDrain>&& groups) {
          for (core::IndexedPathDrain& g : groups) {
            fault_verifiers[g.path].add_round(result.layout.hops[h],
                                              std::move(g.drain));
          }
        },
        [&raw_gaps, h](core::RoundGap&& gap) {
          raw_gaps[h].push_back(std::move(gap));
        });
  };
  const auto retire_client = [&](std::size_t h) {
    add_stats(result.client_stats[h], clients[h]->stats());
    clients[h].reset();
  };
  for (std::size_t h = 0; h < kHops; ++h) build_client(h);

  // --- the rounds ---------------------------------------------------------
  result.sealed_by_round.assign(kHops, {});
  for (std::size_t r = 0; r < cfg.rounds; ++r) {
    if (cfg.crash_every_rounds != 0 && r != 0 &&
        r % cfg.crash_every_rounds == 0) {
      // Kill the fleet between polls — mid-gap, mid-resync, wherever it
      // happens to stand — and rebuild from the acked cursors alone.
      for (std::size_t h = 0; h < kHops; ++h) {
        retire_client(h);
        build_client(h);
        ++result.client_rebuilds;
      }
    }
    for (std::size_t h = 0; h < kHops; ++h) {
      caches[h]->observe_batch(round_packets[r], round_when[h][r]);
      caches[h]->drain_all(*exporters[h], /*flush_open=*/false);
      exporters[h]->end_round();
      exporters[h]->flush();
      result.sealed_by_round[h].push_back(exporters[h]->next_sequence() - 1);
      transports[h]->tick();
    }
    for (std::size_t h = 0; h < kHops; ++h) clients[h]->poll();
  }

  // --- the clean closing round --------------------------------------------
  // Tail losses are invisible until something arrives behind them: flush
  // the transports, then ship the final flush_open drain on a perfect
  // wire so every induced gap has a clean round to resync against.
  for (std::size_t h = 0; h < kHops; ++h) transports[h]->flush();
  faults_on = false;
  for (std::size_t h = 0; h < kHops; ++h) {
    caches[h]->drain_all(*exporters[h], /*flush_open=*/true);
    exporters[h]->finish();
    result.sealed_by_round[h].push_back(exporters[h]->next_sequence() - 1);
  }
  // Settle: enough polls for every patience window and backoff to drain.
  const std::size_t settle = cfg.gap_patience_polls + 16;
  for (std::size_t i = 0; i < settle; ++i) {
    for (std::size_t h = 0; h < kHops; ++h) clients[h]->poll();
  }
  for (std::size_t h = 0; h < kHops; ++h) {
    clients[h]->finalize();
    retire_client(h);
  }

  // --- gap bookkeeping -----------------------------------------------------
  std::unordered_map<std::uint64_t, std::size_t> index_of_key;
  for (std::size_t p = 0; p < cfg.path_count; ++p) {
    index_of_key[importers[0]->path_at(p).path_key()] = p;
  }
  result.round_delivered.assign(kHops, {});
  result.transport.clear();
  result.lost_sequences.assign(kHops, {});
  for (std::size_t h = 0; h < kHops; ++h) {
    result.transport.push_back(transports[h]->stats());
    result.lost_sequences[h] =
        transports[h]->lost_sequences(result.layout.hops[h]);
    result.gaps[h] = dedupe_gaps(std::move(raw_gaps[h]));
    // Feed the deduplicated gaps to the affected paths' verifiers (the
    // raw stream may re-declare across crashes).
    for (const core::RoundGap& g : result.gaps[h]) {
      for (std::uint64_t key : g.affected_paths) {
        const auto it = index_of_key.find(key);
        if (it != index_of_key.end()) {
          fault_verifiers[it->second].report_gap(g);
        }
      }
    }
    // Round r delivered <=> no gap range intersects its sealed sequence
    // range (sealed_by_round is cumulative; an empty range is trivially
    // delivered).
    const std::vector<std::uint64_t>& sealed = result.sealed_by_round[h];
    result.round_delivered[h].assign(sealed.size(), 1);
    for (std::size_t r = 0; r < sealed.size(); ++r) {
      const std::uint64_t lo = r == 0 ? 1 : sealed[r - 1] + 1;
      const std::uint64_t hi = sealed[r];
      for (const core::RoundGap& g : result.gaps[h]) {
        if (g.first_sequence <= hi && g.last_sequence >= lo) {
          result.round_delivered[h][r] = 0;
          break;
        }
      }
    }
  }

  // --- the delivered-round reference --------------------------------------
  // Replay the fault-free archive, feeding ONLY the rounds the faulty run
  // delivered: identical inputs per hop, so the analyses must agree.
  for (std::size_t h = 0; h < kHops; ++h) {
    const net::HopId hop = result.layout.hops[h];
    core::DrainRoundSink sink(
        [&ref_verifiers, hop](std::size_t index, const net::PathId&,
                              core::PathDrain&& drain) {
          ref_verifiers[index].add_round(hop, std::move(drain));
        });
    dissem::WireImporter::Session session(*importers[h], sink);
    const std::vector<std::uint64_t>& sealed = result.sealed_by_round[h];
    ref_store.fetch_from(
        "ref", hop, [&](std::uint64_t seq, std::span<const std::byte> p) {
          const auto it =
              std::lower_bound(sealed.begin(), sealed.end(), seq);
          const auto r = static_cast<std::size_t>(it - sealed.begin());
          if (r < sealed.size() && result.round_delivered[h][r] != 0) {
            session.feed(p);
          }
        });
    session.finish();
  }

  // --- analyses and end state ---------------------------------------------
  result.fault_analysis.reserve(cfg.path_count);
  result.ref_analysis.reserve(cfg.path_count);
  for (std::size_t p = 0; p < cfg.path_count; ++p) {
    result.fault_analysis.push_back(fault_verifiers[p].analyze());
    result.ref_analysis.push_back(ref_verifiers[p].analyze());
    result.fault_expired_unmatched +=
        fault_verifiers[p].resident_stats().expired_unmatched;
    result.ref_expired_unmatched +=
        ref_verifiers[p].resident_stats().expired_unmatched;
  }
  result.consumer_lag_end.clear();
  for (std::size_t h = 0; h < kHops; ++h) {
    result.consumer_lag_end.push_back(
        store.consumer_lag("fleet", result.layout.hops[h]));
  }
  result.store_envelopes_end = store.stored_envelopes();
  result.gc_erased = store.gc_erased_count();
  result.store_rejected = store.rejected_count();
  return result;
}

}  // namespace vpm::sim
