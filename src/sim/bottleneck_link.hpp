// A fixed-rate link with a DropTail FIFO buffer — the congestion mechanism
// behind the paper's Figure 2 delay series ("long-lived TCP or UDP flows
// compete for/saturate the bandwidth of a bottleneck link", §7.2).
#ifndef VPM_SIM_BOTTLENECK_LINK_HPP
#define VPM_SIM_BOTTLENECK_LINK_HPP

#include <cstdint>
#include <functional>

#include "sim/event_queue.hpp"

namespace vpm::sim {

class BottleneckLink {
 public:
  /// Called when a packet fully arrives at the far end (after transmission
  /// and propagation).
  using DeliveryFn = std::function<void(net::Timestamp delivered_at)>;

  /// Throws std::invalid_argument on non-positive bandwidth or buffer.
  BottleneckLink(EventQueue& events, double bandwidth_bps,
                 std::size_t buffer_bytes, net::Duration propagation);

  /// Offer a packet of `bytes` to the queue at the current simulation
  /// time.  Returns false (and drops) if the buffer cannot hold it.
  bool offer(std::size_t bytes, DeliveryFn on_delivered);

  [[nodiscard]] std::size_t queued_bytes() const noexcept {
    return queued_bytes_;
  }
  [[nodiscard]] std::uint64_t drops() const noexcept { return drops_; }
  [[nodiscard]] std::uint64_t delivered() const noexcept {
    return delivered_;
  }
  [[nodiscard]] double bandwidth_bps() const noexcept {
    return bandwidth_bps_;
  }

  /// Current queueing delay a newly arriving byte would see (excludes
  /// propagation).
  [[nodiscard]] net::Duration current_backlog_delay() const noexcept;

 private:
  EventQueue& events_;
  double bandwidth_bps_;
  std::size_t buffer_bytes_;
  net::Duration propagation_;
  std::size_t queued_bytes_ = 0;
  net::Timestamp busy_until_;  // when the transmitter frees up
  std::uint64_t drops_ = 0;
  std::uint64_t delivered_ = 0;
};

}  // namespace vpm::sim

#endif  // VPM_SIM_BOTTLENECK_LINK_HPP
