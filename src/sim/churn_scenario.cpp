#include "sim/churn_scenario.hpp"

#include <array>
#include <optional>
#include <stdexcept>
#include <utility>

#include "collector/sharded_collector.hpp"
#include "core/incremental_verifier.hpp"
#include "core/receipt_sink.hpp"
#include "dissem/receipt_store.hpp"
#include "dissem/wire_exporter.hpp"
#include "dissem/wire_importer.hpp"
#include "sim/scenario_common.hpp"
#include "trace/synthetic_trace.hpp"

namespace vpm::sim {
namespace {

using scenario::append_drain;
using scenario::path_table;

constexpr std::size_t kHops = 3;
constexpr dissem::DomainKey kKey = 0xFEEDC0DE;

}  // namespace

ChurnScenarioResult run_churn_scenario(const ChurnScenarioConfig& cfg) {
  if (cfg.stable_paths >= cfg.path_count) {
    throw std::invalid_argument("churn scenario: no churn pool");
  }
  if (cfg.churn_live == 0 || cfg.churn_lifetime_rounds == 0) {
    throw std::invalid_argument("churn scenario: empty churn schedule");
  }
  const std::size_t pool = cfg.path_count - cfg.stable_paths;

  // --- the live-path schedule --------------------------------------------
  // Slot s hosts one churning path for `churn_lifetime_rounds` rounds,
  // staggered across slots, then rotates to the next pool member — paths
  // arrive, live, expire, and (once the pool wraps) revive long after
  // their eviction.
  const auto live_at = [&](std::size_t path, std::size_t round) {
    if (path < cfg.stable_paths) return true;
    for (std::size_t s = 0; s < cfg.churn_live; ++s) {
      const std::size_t phase =
          s * cfg.churn_lifetime_rounds / cfg.churn_live;
      const std::size_t gen = (round + phase) / cfg.churn_lifetime_rounds;
      const std::size_t active =
          cfg.stable_paths + (gen * cfg.churn_live + s) % pool;
      if (active == path) return true;
    }
    return false;
  };

  // --- traffic ------------------------------------------------------------
  const trace::MultiPathTrace multi = trace::generate_multi_path(
      scenario::multi_path_config(cfg.path_count, cfg.zipf_s,
                                  cfg.total_packets_per_second,
                                  cfg.round_length, cfg.rounds, cfg.seed));

  // Per-path, per-hop observation delay (µs-aligned, constant per path so
  // per-path observation order is preserved and the 1 µs wire time
  // quantisation is exact).
  const auto hop_delay = [&](std::size_t path, std::size_t hop) {
    return scenario::spread_hop_delay(cfg.seed, path, hop, cfg.hop_delay,
                                      cfg.delay_spread_us);
  };

  const std::int64_t round_ns = cfg.round_length.nanoseconds();
  std::vector<std::vector<net::Packet>> round_packets(cfg.rounds);
  std::array<std::vector<std::vector<net::Timestamp>>, kHops> round_when;
  for (auto& w : round_when) w.resize(cfg.rounds);
  std::uint64_t total_packets = 0;
  for (std::size_t i = 0; i < multi.packets.size(); ++i) {
    net::Packet p = multi.packets[i];
    p.origin_time = scenario::quantize_us(p.origin_time);
    const std::size_t r =
        scenario::round_of(p.origin_time, round_ns, cfg.rounds);
    const std::size_t path = multi.path_of[i];
    if (!live_at(path, r)) continue;
    round_packets[r].push_back(p);
    for (std::size_t h = 0; h < kHops; ++h) {
      round_when[h][r].push_back(p.origin_time + hop_delay(path, h));
    }
    ++total_packets;
  }

  // --- the two deployments ------------------------------------------------
  ChurnScenarioResult result;
  result.total_packets = total_packets;
  result.stable_paths = cfg.stable_paths;
  result.layout = scenario::three_hop_layout();

  std::array<collector::MonitoringCache::Config, kHops> hop_cfg;
  for (std::size_t h = 0; h < kHops; ++h) {
    collector::MonitoringCache::Config c;
    c.protocol.digest_mode = cfg.digest_mode;
    c.protocol.marker_rate = cfg.marker_rate;
    c.tuning = cfg.tuning;
    c.self = result.layout.hops[h];
    c.previous_hop = h == 0 ? net::kNoHop : result.layout.hops[h - 1];
    c.next_hop = h + 1 == kHops ? net::kNoHop : result.layout.hops[h + 1];
    hop_cfg[h] = c;
  }

  std::array<std::optional<collector::ShardedCollector>, kHops> churn;
  std::array<std::optional<collector::MonitoringCache>, kHops> ref;
  for (std::size_t h = 0; h < kHops; ++h) {
    collector::ShardedCollector::Config scfg;
    scfg.cache = hop_cfg[h];
    scfg.cache.lifecycle = collector::LifecycleConfig{
        .evict_idle = true,
        .idle_ttl =
            cfg.round_length * static_cast<std::int64_t>(cfg.ttl_rounds),
        .compact_garbage_fraction = cfg.compact_garbage_fraction,
        .decay_low_occupancy_drains = cfg.decay_low_occupancy_drains,
    };
    scfg.shard_count = cfg.shard_count;
    churn[h].emplace(scfg, multi.paths);
    ref[h].emplace(hop_cfg[h], multi.paths);
  }

  // --- dissemination: exporters -> stores (churn GC'd, reference not) ----
  dissem::ReceiptStore store;      // churn: cursors + GC
  dissem::ReceiptStore ref_store;  // same stream, nobody acks
  for (std::size_t h = 0; h < kHops; ++h) {
    store.register_producer(result.layout.hops[h], kKey);
    ref_store.register_producer(result.layout.hops[h], kKey);
  }
  store.register_consumer("verifier");
  store.register_consumer("archiver");

  std::array<std::optional<dissem::WireExporter>, kHops> exporters;
  for (std::size_t h = 0; h < kHops; ++h) {
    exporters[h].emplace(
        dissem::WireExporter::Config{.producer = result.layout.hops[h],
                                     .key = kKey,
                                     .max_chunk_bytes = 16 * 1024},
        [&store, &ref_store](dissem::Envelope&& e) {
          ref_store.ingest(e);
          store.ingest(std::move(e));
        });
  }

  // --- verification: importer sessions -> per-path verifiers -------------
  std::vector<core::IncrementalPathVerifier> churn_verifiers;
  churn_verifiers.reserve(cfg.path_count);
  for (std::size_t p = 0; p < cfg.path_count; ++p) {
    churn_verifiers.emplace_back(core::IncrementalPathVerifier::Config{
        .layout = result.layout,
        .retain_rounds = cfg.retain_rounds,
        .margin_boundaries = cfg.margin_boundaries,
    });
  }
  std::vector<core::PathVerifier> ref_verifiers(cfg.path_count);

  result.churn_concat.assign(
      kHops, std::vector<core::PathDrain>(cfg.path_count));
  result.ref_concat.assign(kHops,
                           std::vector<core::PathDrain>(cfg.path_count));
  std::array<std::vector<char>, kHops> churn_have;
  std::array<std::vector<char>, kHops> ref_have;
  for (std::size_t h = 0; h < kHops; ++h) {
    churn_have[h].assign(cfg.path_count, 0);
    ref_have[h].assign(cfg.path_count, 0);
  }

  std::array<std::optional<dissem::WireImporter>, kHops> importers;
  std::array<std::optional<core::DrainRoundSink>, kHops> round_sinks;
  std::array<std::optional<dissem::WireImporter::Session>, kHops> sessions;
  for (std::size_t h = 0; h < kHops; ++h) {
    importers[h].emplace(path_table(hop_cfg[h], multi.paths));
    const net::HopId hop = result.layout.hops[h];
    round_sinks[h].emplace([&result, &churn_have, &churn_verifiers, h, hop](
                               std::size_t index, const net::PathId&,
                               core::PathDrain&& drain) {
      append_drain(result.churn_concat[h][index], churn_have[h][index],
                   drain);
      churn_verifiers[index].add_round(hop, std::move(drain));
    });
    sessions[h].emplace(*importers[h], *round_sinks[h]);
  }

  // --- the rounds ---------------------------------------------------------
  std::array<std::vector<std::uint64_t>, kHops> sealed_by_round;
  const auto consume_round = [&] {
    // The "verifier" consumer polls every producer each round, feeding
    // new envelopes through its importer session, then acks.
    for (std::size_t h = 0; h < kHops; ++h) {
      std::uint64_t last = 0;
      store.fetch_from("verifier", result.layout.hops[h],
                       [&](std::uint64_t seq,
                           std::span<const std::byte> payload) {
                         sessions[h]->feed(payload);
                         last = seq;
                       });
      if (last != 0) {
        store.ack("verifier", result.layout.hops[h], last);
      }
    }
  };

  for (std::size_t r = 0; r < cfg.rounds; ++r) {
    for (std::size_t h = 0; h < kHops; ++h) {
      churn[h]->observe_batch(round_packets[r], round_when[h][r]);
      ref[h]->observe_batch(round_packets[r], round_when[h][r]);

      // Periodic drain, then the lifecycle pass (evictions drain through
      // the same exporter — no receipt is lost), then ship the round.
      churn[h]->drain(*exporters[h], /*flush_open=*/false);
      const net::Timestamp now =
          net::Timestamp{static_cast<std::int64_t>(r + 1) * round_ns} +
          cfg.hop_delay * static_cast<std::int64_t>(h);
      result.lifecycle_totals +=
          churn[h]->run_lifecycle(now, *exporters[h]);
      exporters[h]->end_round();
      exporters[h]->flush();
      sealed_by_round[h].push_back(exporters[h]->next_sequence() - 1);

      std::vector<core::PathDrain> drains =
          ref[h]->drain_all(/*flush_open=*/false);
      for (std::size_t p = 0; p < drains.size(); ++p) {
        append_drain(result.ref_concat[h][p], ref_have[h][p], drains[p]);
        ref_verifiers[p].add_round(result.layout.hops[h],
                                   std::move(drains[p]));
      }
    }

    consume_round();
    // The lagging archiver acks what it saw `archiver_lag_rounds` ago —
    // the slowest-consumer bound on retained envelopes.
    if (r >= cfg.archiver_lag_rounds) {
      for (std::size_t h = 0; h < kHops; ++h) {
        const std::uint64_t seq =
            sealed_by_round[h][r - cfg.archiver_lag_rounds];
        if (seq != 0) store.ack("archiver", result.layout.hops[h], seq);
      }
    }

    ChurnRoundMetrics m;
    for (std::size_t h = 0; h < kHops; ++h) {
      m.churn_arena_bytes += churn[h]->arena_bytes();
      m.churn_arena_live_bytes += churn[h]->arena_live_bytes();
      m.ref_arena_bytes += ref[h]->state().arena_bytes();
    }
    m.store_envelopes = store.stored_envelopes();
    m.store_payload_bytes = store.stored_payload_bytes();
    m.ref_store_payload_bytes = ref_store.stored_payload_bytes();
    for (const core::IncrementalPathVerifier& v : churn_verifiers) {
      const auto stats = v.resident_stats();
      m.verifier_tail_receipts += stats.tail_aggregate_receipts;
      m.verifier_pending +=
          stats.pending_ingress_samples + stats.pending_sample_rounds;
    }
    m.evicted_cumulative = result.lifecycle_totals.evicted_paths;
    result.per_round.push_back(m);
  }

  // --- end of run: flush open aggregates, final fetch, analyses -----------
  for (std::size_t h = 0; h < kHops; ++h) {
    churn[h]->drain(*exporters[h], /*flush_open=*/true);
    exporters[h]->finish();

    std::vector<core::PathDrain> drains =
        ref[h]->drain_all(/*flush_open=*/true);
    for (std::size_t p = 0; p < drains.size(); ++p) {
      append_drain(result.ref_concat[h][p], ref_have[h][p], drains[p]);
      ref_verifiers[p].add_round(result.layout.hops[h],
                                 std::move(drains[p]));
    }
  }
  consume_round();
  for (std::size_t h = 0; h < kHops; ++h) sessions[h]->finish();

  result.churn_analysis.reserve(cfg.path_count);
  result.ref_analysis.reserve(cfg.path_count);
  for (std::size_t p = 0; p < cfg.path_count; ++p) {
    result.churn_analysis.push_back(churn_verifiers[p].analyze());
    result.ref_analysis.push_back(ref_verifiers[p].analyze(result.layout));
    result.verifier_expired_unmatched +=
        churn_verifiers[p].resident_stats().expired_unmatched;
  }
  result.store_accepted = store.accepted_count();
  result.store_gc_erased = store.gc_erased_count();
  return result;
}

}  // namespace vpm::sim
