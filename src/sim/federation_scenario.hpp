// Multi-domain fleet simulation over the federated dissemination service
// (ISSUE 9): every domain is simultaneously PRODUCER of its own receipt
// streams and CONSUMER of its neighbours'.
//
// Topology: cfg.fed_domains domains in a ring; flow f runs over the three
// consecutive domains (f, f+1, f+2 mod D) as its own three-HOP pipeline
// (globally unique HOP ids double as producer DomainIds, the fault-soak
// convention).  Each domain therefore owns three producer streams — one
// per flow that crosses it — published through WireExporter over
// FaultyTransport into one shared dissem::FederatedStore (producer-sharded
// per cfg.fed_store_shards; memory or disk-segment backend per
// cfg.fed_segment_backend).  Consumption is two-tier:
//
//   * each domain runs a tick-driven AUDITOR over its own streams —
//     subscribe()d, so it gates GC of exactly those producers — acking
//     the contiguous prefix with bounded hole patience.  Auditors keep
//     the GC floor moving even when a flow's verifier has not joined yet,
//     and, crucially for the crash-identity assertion, they are pure
//     functions of store content: no RNG, no state lost at a store crash
//     (the auditor daemon is a separate process from the store);
//   * each flow's observer domain runs three FetchClients (one per hop)
//     feeding per-path IncrementalPathVerifiers — the PR-6 consumer loop,
//     crash-resumed from acked cursors.
//
// Fleet dynamics driven by the fed_* ScenarioConfig fields: the last
// flow's clients can JOIN LATE (subscribing at the current GC floor), one
// flow's clients can LAG (polling every Nth round), and — segment backend
// only — the STORE PROCESS is killed every fed_crash_every rounds: the
// FederatedStore object is destroyed, optionally a torn tail is cut into
// the last segment file, and the store is re-opened from disk.  Producers
// then re-send their archive of store-ACCEPTED envelopes (restoring
// exactly the pre-crash retained set: torn-away records re-accept, GC'd
// ones bounce off the recovered floor, retained ones dedupe) and the
// fleet's clients rebuild from their recovered cursors.
//
// The whole run is deterministic in cfg: a segment-backed run with
// crashes must produce delivered feeds, per-path analyses, and deduped
// gap reports BYTE-IDENTICAL to the memory-backed run that never crashed
// (federation_soak_test pins the matrix).
#ifndef VPM_SIM_FEDERATION_SCENARIO_HPP
#define VPM_SIM_FEDERATION_SCENARIO_HPP

#include <cstdint>
#include <filesystem>
#include <utility>
#include <vector>

#include "core/verifier.hpp"
#include "dissem/fetch_client.hpp"
#include "dissem/storage.hpp"
#include "sim/scenario_config.hpp"

namespace vpm::sim {

struct FederationScenarioResult {
  std::size_t domains = 0;
  std::size_t flows = 0;
  std::uint64_t total_packets = 0;

  // The identity payload: everything here must match between a crashed
  // segment-backed run and the uninterrupted memory reference.
  /// feeds[flow][hop]: delivered drain groups in delivery order.
  std::vector<std::vector<std::vector<core::IndexedPathDrain>>> feeds;
  /// analyses[flow][path].
  std::vector<std::vector<core::PathAnalysis>> analyses;
  /// gaps[flow][hop], deduplicated across crash re-declarations.
  std::vector<std::vector<std::vector<core::RoundGap>>> gaps;

  // Durability bookkeeping (segment backend).
  std::size_t store_crashes = 0;
  std::size_t torn_tails = 0;       ///< crashes that also tore a segment
  std::size_t client_rebuilds = 0;
  /// Producer re-sends after recovery: accepted == envelopes a torn tail
  /// destroyed (0 for every clean shutdown), rejected == duplicates and
  /// floor-stale copies the store correctly refused.
  std::size_t reingest_accepted = 0;
  std::size_t reingest_rejected = 0;

  // Store end state.
  dissem::StorageStats storage_end;
  /// (producer, stats) per producer stream at end of run.
  std::vector<std::pair<dissem::DomainId, dissem::StorageStats>>
      producer_storage_end;
  std::size_t store_accepted = 0;
  std::size_t store_rejected = 0;
  /// Peak live segment-file count observed at round boundaries — the
  /// bounded-directory assertion (GC unlinks must keep up with append).
  std::size_t segments_live_peak = 0;
  std::size_t max_consumer_lag_end = 0;  ///< verifier consumers, post-settle

  /// FetchClient stats summed across incarnations, [flow][hop].
  std::vector<std::vector<dissem::FetchClient::Stats>> client_stats;
};

/// Run the fleet.  `directory` roots the segment store when
/// cfg.fed_segment_backend (ignored otherwise); the caller owns cleanup.
/// Deterministic per cfg.  Throws std::invalid_argument for
/// fed_domains < 3, a patience that cannot cover the fault plan's delays,
/// or crash/torn settings without the segment backend.
FederationScenarioResult run_federation_scenario(
    const ScenarioConfig& cfg, const std::filesystem::path& directory);

}  // namespace vpm::sim

#endif  // VPM_SIM_FEDERATION_SCENARIO_HPP
