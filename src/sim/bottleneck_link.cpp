#include "sim/bottleneck_link.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace vpm::sim {

BottleneckLink::BottleneckLink(EventQueue& events, double bandwidth_bps,
                               std::size_t buffer_bytes,
                               net::Duration propagation)
    : events_(events),
      bandwidth_bps_(bandwidth_bps),
      buffer_bytes_(buffer_bytes),
      propagation_(propagation) {
  if (bandwidth_bps <= 0.0) {
    throw std::invalid_argument("bandwidth must be positive");
  }
  if (buffer_bytes == 0) {
    throw std::invalid_argument("buffer must be positive");
  }
}

bool BottleneckLink::offer(std::size_t bytes, DeliveryFn on_delivered) {
  if (queued_bytes_ + bytes > buffer_bytes_) {
    ++drops_;
    return false;
  }
  queued_bytes_ += bytes;

  const net::Timestamp now = events_.now();
  const net::Timestamp start = std::max(now, busy_until_);
  const auto tx_ns = static_cast<std::int64_t>(
      static_cast<double>(bytes) * 8.0 / bandwidth_bps_ * 1e9);
  const net::Timestamp done = start + net::Duration{tx_ns};
  busy_until_ = done;

  events_.schedule(done, [this, bytes, done,
                          cb = std::move(on_delivered)]() mutable {
    queued_bytes_ -= bytes;
    ++delivered_;
    if (cb) cb(done + propagation_);
  });
  return true;
}

net::Duration BottleneckLink::current_backlog_delay() const noexcept {
  const net::Timestamp now = events_.now();
  if (busy_until_ <= now) return net::Duration{0};
  return busy_until_ - now;
}

}  // namespace vpm::sim
