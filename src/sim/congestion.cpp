#include "sim/congestion.hpp"

#include <memory>
#include <stdexcept>

#include "sim/bottleneck_link.hpp"
#include "sim/event_queue.hpp"

namespace vpm::sim {

CongestionResult simulate_congestion(const CongestionConfig& cfg,
                                     std::span<const net::Packet> foreground) {
  if (foreground.empty()) {
    throw std::invalid_argument("simulate_congestion: empty foreground");
  }

  EventQueue events;
  BottleneckLink link(events, cfg.bottleneck_bps, cfg.buffer_bytes,
                      cfg.propagation);

  // Background load.
  std::vector<std::unique_ptr<TcpFlow>> tcp_flows;
  std::unique_ptr<UdpOnOffFlow> udp;
  const bool want_tcp = cfg.kind == CongestionKind::kLongLivedTcp ||
                        cfg.kind == CongestionKind::kMixed;
  const bool want_udp = cfg.kind == CongestionKind::kBurstyUdp ||
                        cfg.kind == CongestionKind::kMixed;
  if (want_tcp) {
    for (int i = 0; i < cfg.tcp_flow_count; ++i) {
      TcpFlow::Config tc;
      tc.base_rtt = net::milliseconds(10 + 5 * i);  // staggered RTTs
      tcp_flows.push_back(std::make_unique<TcpFlow>(events, link, tc));
      tcp_flows.back()->start(net::Timestamp{0});
    }
  }
  if (want_udp) {
    UdpOnOffFlow::Config uc = cfg.udp;
    uc.seed = cfg.seed * 7919 + 17;
    udp = std::make_unique<UdpOnOffFlow>(events, link, uc);
    udp->start(net::Timestamp{0});
  }

  CongestionResult result;
  result.outcomes.resize(foreground.size());

  // Inject every foreground packet at its origin time.
  for (std::size_t i = 0; i < foreground.size(); ++i) {
    const net::Packet& p = foreground[i];
    events.schedule(p.origin_time, [&, i] {
      const net::Timestamp arrival = events.now();
      const std::size_t bytes = foreground[i].header.total_length;
      const bool accepted =
          link.offer(bytes, [&, i, arrival](net::Timestamp delivered) {
            const net::Duration d = delivered - arrival;
            result.outcomes[i].delay = d;
            if (d > result.max_delay) result.max_delay = d;
          });
      if (!accepted) {
        result.outcomes[i].dropped = true;
        ++result.foreground_drops;
      }
    });
  }

  // Run long enough for the last foreground packet to drain.
  const net::Timestamp horizon =
      foreground.back().origin_time + net::seconds(2);
  events.run_until(horizon);

  if (udp) {
    result.background_sent += udp->sent();
    result.background_drops += udp->dropped();
  }
  for (const auto& f : tcp_flows) {
    result.background_sent += f->packets_acked() + f->packets_lost();
    result.background_drops += f->packets_lost();
  }
  return result;
}

std::vector<double> delay_series_ms(const CongestionResult& r) {
  std::vector<double> out;
  out.reserve(r.outcomes.size());
  for (const DelayOutcome& o : r.outcomes) {
    out.push_back(o.dropped ? -1.0 : o.delay.milliseconds());
  }
  return out;
}

}  // namespace vpm::sim
