// HOP-path propagation: runs a packet sequence through a chain of domains
// and inter-domain links (the black arrow of Figure 1), producing the
// observation sequence each HOP sees.
//
// Domains and links can drop (pluggable LossModel), delay (per-packet
// delay function, e.g. a congestion-simulator series), and jitter
// (uniform, which reorders packets observed close together — the paper's
// §6.3 reordering model: "packets are reordered only when they are
// transmitted close to one another").  Each HOP has a clock offset so
// experiments can exercise the MaxDiff consistency rules under
// de-synchronised clocks (§4, "(No) Clock Synchronization").
#ifndef VPM_SIM_PATH_RUN_HPP
#define VPM_SIM_PATH_RUN_HPP

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "loss/loss_model.hpp"
#include "net/packet.hpp"
#include "net/time.hpp"

namespace vpm::sim {

/// Index of a packet within the foreground trace.
using PacketIndex = std::uint32_t;

/// One packet observation at a HOP (references the trace by index).
struct Obs {
  PacketIndex pkt = 0;
  net::Timestamp when;  ///< local clock (true time + HOP clock offset)
};
using ObsSeq = std::vector<Obs>;

/// Behaviour of one domain on the path.
struct DomainSegment {
  /// Intra-domain delay for trace packet `i`; defaults to a constant
  /// 500 us when empty.
  std::function<net::Duration(PacketIndex)> delay_of;
  /// Loss introduced inside the domain (between its ingress and egress
  /// HOPs); nullptr = lossless.
  loss::LossModel* loss = nullptr;
  /// Content-targeted drops (e.g. an adversary discarding marker packets,
  /// Section 5.3); applied in addition to `loss`.
  std::function<bool(const net::Packet&)> targeted_drop;
  /// Index-keyed drops: a precomputed drop schedule over the trace (e.g.
  /// the congestion simulator's per-packet DelayOutcome.dropped series,
  /// which pairs with a delay_of over the same indices).  Applied in
  /// addition to `loss` and `targeted_drop`.
  std::function<bool(PacketIndex)> drop_by_index;
  /// Uniform extra delay in [0, jitter]: packets closer together than this
  /// can be reordered inside the domain.
  net::Duration jitter;
};

/// Behaviour of one inter-domain link.
struct LinkSegment {
  net::Duration delay = net::microseconds(50);
  net::Duration jitter;
  /// A faulty link drops packets (Section 3.1's "inconsistency can be due
  /// either to a lie or to a faulty inter-domain link").
  loss::LossModel* loss = nullptr;
  /// Content-targeted drops: a timed link failure kills every packet that
  /// would cross while it is down (keyed off the packet's ground-truth
  /// origin_time).  Applied in addition to `loss`.
  std::function<bool(const net::Packet&)> targeted_drop;
};

/// A path of N domains: the first exposes only an egress HOP, the last
/// only an ingress HOP, transit domains both (Fig. 1: S has HOP 1, L has
/// 2-3, X has 4-5, N has 6-7, D has 8).
struct PathEnvironment {
  std::vector<DomainSegment> domains;
  std::vector<LinkSegment> links;  ///< size must be domains.size() - 1
  /// Per-HOP clock offsets (local = true + offset); empty = all zero.
  std::vector<net::Duration> clock_offsets;
  std::uint64_t seed = 1;

  [[nodiscard]] std::size_t domain_count() const noexcept {
    return domains.size();
  }
  /// Total HOPs on the path: 2*(N-1) for N >= 2 domains.
  [[nodiscard]] std::size_t hop_count() const noexcept {
    return domains.size() < 2 ? 0 : 2 * (domains.size() - 1);
  }
  /// Hop position of domain d's ingress HOP (d >= 1).
  [[nodiscard]] static std::size_t ingress_hop(std::size_t d) noexcept {
    return 2 * d - 1;
  }
  /// Hop position of domain d's egress HOP (d <= N-2).
  [[nodiscard]] static std::size_t egress_hop(std::size_t d) noexcept {
    return 2 * d;
  }
};

struct PathRunResult {
  /// Per HOP, packets in local observation order.
  std::vector<ObsSeq> hop_observations;
  /// Per trace packet: how many HOPs observed it (0 = lost on first link).
  std::vector<std::uint8_t> hops_reached;
  std::uint64_t delivered = 0;  ///< packets that reached the last HOP
};

/// Propagate the trace through the environment.  Throws
/// std::invalid_argument if the environment is malformed (fewer than two
/// domains, link/offset counts inconsistent).
[[nodiscard]] PathRunResult run_path(std::span<const net::Packet> trace,
                                     const PathEnvironment& env);

/// Ground truth: the true delay (ms) through domain `d` (clock offsets
/// removed) for every packet that traversed it, keyed by packet index.
/// `d` must be a transit domain (has both HOPs).
[[nodiscard]] std::vector<std::pair<PacketIndex, double>> true_domain_delays_ms(
    const PathRunResult& result, const PathEnvironment& env, std::size_t d);

}  // namespace vpm::sim

#endif  // VPM_SIM_PATH_RUN_HPP
