// Discrete-event simulation core.
//
// Substitution note (DESIGN.md §2): the paper generates congestion delay
// series with the NS simulator; we reproduce the same mechanism (a
// bottleneck queue shared with background flows) on this small DES engine.
#ifndef VPM_SIM_EVENT_QUEUE_HPP
#define VPM_SIM_EVENT_QUEUE_HPP

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "net/time.hpp"

namespace vpm::sim {

/// A time-ordered event executor.  Events scheduled for the same instant
/// run in scheduling order (stable FIFO tie-break).
class EventQueue {
 public:
  using Handler = std::function<void()>;

  /// Schedule `fn` at absolute time `t`.  Throws std::invalid_argument if
  /// `t` is before the current simulation time.
  void schedule(net::Timestamp t, Handler fn);

  /// Schedule `fn` after `delay` from now.
  void schedule_in(net::Duration delay, Handler fn) {
    schedule(now_ + delay, std::move(fn));
  }

  /// Run events until the queue is empty or simulated time passes `end`.
  void run_until(net::Timestamp end);

  /// Run until no events remain.
  void run();

  [[nodiscard]] net::Timestamp now() const noexcept { return now_; }
  [[nodiscard]] std::size_t pending() const noexcept { return heap_.size(); }
  [[nodiscard]] std::uint64_t executed() const noexcept { return executed_; }

 private:
  struct Event {
    net::Timestamp at;
    std::uint64_t seq;  // FIFO tie-break
    Handler fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> heap_;
  net::Timestamp now_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
};

}  // namespace vpm::sim

#endif  // VPM_SIM_EVENT_QUEUE_HPP
