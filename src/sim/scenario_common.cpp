#include "sim/scenario_common.hpp"

#include <algorithm>
#include <map>
#include <utility>

namespace vpm::sim::scenario {

std::uint64_t mix(std::uint64_t x) {
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ull;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBull;
  x ^= x >> 31;
  return x;
}

std::vector<net::PathId> path_table(
    const collector::MonitoringCache::Config& cfg,
    const std::vector<net::PrefixPair>& paths) {
  std::vector<net::PathId> out;
  out.reserve(paths.size());
  for (const net::PrefixPair& pair : paths) {
    out.push_back(net::PathId{
        .header_spec_id = cfg.protocol.header_spec.id(),
        .prefixes = pair,
        .previous_hop = cfg.previous_hop,
        .next_hop = cfg.next_hop,
        .max_diff = cfg.max_diff,
    });
  }
  return out;
}

void append_drain(core::PathDrain& acc, char& have, const core::PathDrain& d) {
  if (!have) {
    acc = d;
    have = 1;
    return;
  }
  acc.samples.samples.insert(acc.samples.samples.end(),
                             d.samples.samples.begin(),
                             d.samples.samples.end());
  acc.aggregates.insert(acc.aggregates.end(), d.aggregates.begin(),
                        d.aggregates.end());
}

std::vector<core::RoundGap> dedupe_gaps(std::vector<core::RoundGap> raw) {
  std::map<std::uint64_t, core::RoundGap> by_first;
  for (core::RoundGap& g : raw) {
    auto [it, inserted] = by_first.try_emplace(g.first_sequence, g);
    if (inserted) continue;
    core::RoundGap& kept = it->second;
    kept.last_sequence = std::max(kept.last_sequence, g.last_sequence);
    kept.affected_paths.insert(kept.affected_paths.end(),
                               g.affected_paths.begin(),
                               g.affected_paths.end());
    std::sort(kept.affected_paths.begin(), kept.affected_paths.end());
    kept.affected_paths.erase(std::unique(kept.affected_paths.begin(),
                                          kept.affected_paths.end()),
                              kept.affected_paths.end());
  }
  std::vector<core::RoundGap> out;
  out.reserve(by_first.size());
  for (auto& [first, g] : by_first) out.push_back(std::move(g));
  return out;
}

void add_stats(dissem::FetchClient::Stats& acc,
               const dissem::FetchClient::Stats& s) {
  acc.polls += s.polls;
  acc.backoff_skips += s.backoff_skips;
  acc.envelopes_fed += s.envelopes_fed;
  acc.refetch_skips += s.refetch_skips;
  acc.deliveries += s.deliveries;
  acc.groups_delivered += s.groups_delivered;
  acc.gaps_reported += s.gaps_reported;
  acc.transient_retries += s.transient_retries;
  acc.fatal_errors += s.fatal_errors;
  acc.acks += s.acks;
  acc.ack_rejections += s.ack_rejections;
  acc.gap_wait_polls += s.gap_wait_polls;
}

core::PathLayout three_hop_layout() {
  return core::PathLayout{.hops = {1, 2, 3},
                          .domain_of = {"alpha", "alpha", "beta"}};
}

net::Duration spread_hop_delay(std::uint64_t seed, std::size_t path,
                               std::size_t hop, net::Duration hop_delay,
                               std::size_t delay_spread_us) {
  const auto spread = static_cast<std::int64_t>(
      mix(seed ^ (path * 2654435761u)) % (delay_spread_us + 1));
  return (hop_delay + net::microseconds(spread)) *
         static_cast<std::int64_t>(hop);
}

trace::MultiPathConfig multi_path_config(std::size_t path_count, double zipf_s,
                                         double total_packets_per_second,
                                         net::Duration duration,
                                         std::uint64_t seed) {
  trace::MultiPathConfig mcfg;
  mcfg.path_count = path_count;
  mcfg.zipf_s = zipf_s;
  mcfg.total_packets_per_second = total_packets_per_second;
  mcfg.duration = duration;
  mcfg.seed = seed;
  return mcfg;
}

trace::MultiPathConfig multi_path_config(std::size_t path_count, double zipf_s,
                                         double total_packets_per_second,
                                         net::Duration round_length,
                                         std::size_t rounds,
                                         std::uint64_t seed) {
  return multi_path_config(path_count, zipf_s, total_packets_per_second,
                           round_length * static_cast<std::int64_t>(rounds),
                           seed);
}

net::Timestamp quantize_us(net::Timestamp t) {
  return net::Timestamp{t.nanoseconds() / 1000 * 1000};
}

std::size_t round_of(net::Timestamp origin, std::int64_t round_ns,
                     std::size_t rounds) {
  auto r = static_cast<std::size_t>(origin.nanoseconds() / round_ns);
  if (r >= rounds) r = rounds - 1;
  return r;
}

}  // namespace vpm::sim::scenario
