#include "sim/topology.hpp"

#include <stdexcept>

namespace vpm::sim {

PathTopology::PathTopology(std::vector<std::string> domain_names)
    : names_(std::move(domain_names)) {
  if (names_.size() < 2) {
    throw std::invalid_argument("a path needs at least two domains");
  }
}

PathTopology PathTopology::figure_one() {
  return PathTopology{{"S", "L", "X", "N", "D"}};
}

net::HopId PathTopology::hop_id(std::size_t hop_pos) const {
  if (hop_pos >= hop_count()) {
    throw std::out_of_range("hop position " + std::to_string(hop_pos) +
                            " out of range");
  }
  return hop_number(hop_pos);
}

DomainIndex PathTopology::domain_of_hop(std::size_t hop_pos) const {
  if (hop_pos >= hop_count()) {
    throw std::out_of_range("hop position " + std::to_string(hop_pos) +
                            " out of range");
  }
  // Hop 0 is domain 0's egress; then pairs (ingress, egress) per transit
  // domain; the final hop is the last domain's ingress.
  return (hop_pos + 1) / 2;
}

PathEnvironment PathTopology::make_environment(std::uint64_t seed) const {
  PathEnvironment env;
  env.domains.resize(domain_count());
  env.links.resize(domain_count() - 1);
  env.clock_offsets.assign(hop_count(), net::Duration{0});
  env.seed = seed;
  return env;
}

}  // namespace vpm::sim
