// The config-driven scenario engine: one declarative ScenarioConfig in,
// one typed ScenarioOutcome out, the full stack in between.
//
// For every reporting round the engine
//
//   1. propagates the round's traffic through the configured domain chain
//      (sim/path_run: per-domain delay/jitter, the configured loss model,
//      timed link failures),
//   2. feeds each HOP's observations to its sharded collector,
//   3. drains the round, applies the configured adversary transforms
//      (adversary/strategies — the drains a lying domain PUBLISHES differ
//      from what it observed), and ships the published drains through
//      WireExporter -> FaultyTransport -> ReceiptStore,
//   4. polls a per-HOP FetchClient fleet that feeds per-path
//      IncrementalPathVerifiers (gap reports and all).
//
// Route flaps rebuild every HOP's path table mid-run under the PR-5
// lifecycle machinery (open receipts drain first, so nothing is
// orphaned); FetchClient crash-restarts rebuild consumers from their
// acked cursors mid-stream.  The outcome carries the verifier's findings
// NEXT TO the simulator's ground truth, so the scenario-grid suite can
// assert the §6 detection envelope per scenario class: honest runs stay
// clean, every lying domain's link is implicated, loss estimates track
// true loss.
//
// Determinism: identical config (including seed) => identical
// ScenarioOutcome, bit for bit — outcomes compare with == and every grid
// failure message carries ScenarioOutcome::repro, the one-line config
// string that reproduces the cell.
//
// Known modelling caveats (accepted, asserted around):
//   * adversary transforms run per reporting round, so a lie about a
//     packet whose truthful twin lands in the next round can surface as
//     an extra violation — detection assertions are presence-based, not
//     count-exact;
//   * lifecycle-eviction drains ship untransformed (an evicted path's
//     tail is truthful even at a lying domain);
//   * a colluding cover-up is invisible at the covered link by
//     construction (§3.1) — the grid asserts the blame DISPLACEMENT
//     (the covering domain absorbs the upstream liar's loss) instead.
#ifndef VPM_SIM_SCENARIO_ENGINE_HPP
#define VPM_SIM_SCENARIO_ENGINE_HPP

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "core/verifier.hpp"
#include "sim/scenario_config.hpp"

namespace vpm::sim {

/// Simulator ground truth for one path through one transit domain.
struct DomainTruth {
  std::uint64_t offered = 0;    ///< packets that entered (ingress HOP saw)
  std::uint64_t delivered = 0;  ///< packets that left (egress HOP saw)

  [[nodiscard]] double loss_rate() const noexcept {
    return offered == 0
               ? 0.0
               : 1.0 - static_cast<double>(delivered) /
                           static_cast<double>(offered);
  }
  friend bool operator==(const DomainTruth&, const DomainTruth&) = default;
};

struct ScenarioOutcome {
  core::PathLayout layout;
  std::vector<std::string> transit_domains;  ///< domains[1..N-2], in order
  /// The one-line repro string (cfg.to_string()) — every grid assertion
  /// appends it so a failing cell reproduces with a single command.
  std::string repro;

  std::uint64_t total_packets = 0;      ///< packets injected (post-flap)
  std::uint64_t delivered_packets = 0;  ///< packets reaching the last HOP

  /// Per path: the verifier's findings, fed off the wire.
  std::vector<core::PathAnalysis> analysis;
  /// Per hop: deduplicated dissemination gaps the fleet reported.
  std::vector<std::vector<core::RoundGap>> gaps;
  /// truth[path][t]: ground truth through transit_domains[t].
  std::vector<std::vector<DomainTruth>> truth;
  /// Per [hop][path]: packets the HOP observed vs packets its receipts
  /// counted on the wire (receipt conservation — equal on honest,
  /// fault-free runs even across route flaps and evictions).
  std::vector<std::vector<std::uint64_t>> observed_packets;
  std::vector<std::vector<std::uint64_t>> wire_packets;

  // End state: nothing stuck, nothing silently lost.
  std::vector<std::size_t> consumer_lag_end;  ///< per hop
  std::size_t store_envelopes_end = 0;
  std::size_t store_rejected = 0;
  std::size_t store_gc_erased = 0;
  std::size_t client_rebuilds = 0;
  std::uint64_t envelopes_destroyed = 0;  ///< transport drops + corruptions
  std::uint64_t envelopes_duplicated = 0;
  std::uint64_t expired_unmatched = 0;  ///< verifier retention casualties
  std::uint64_t ack_rejections = 0;
  std::uint64_t gaps_reported = 0;   ///< raw, before deduplication
  std::uint64_t groups_delivered = 0;
  std::size_t evicted_paths = 0;     ///< lifecycle evictions, all hops

  friend bool operator==(const ScenarioOutcome&,
                         const ScenarioOutcome&) = default;

  /// The false-positive bound: every path's links consistent and every
  /// reporting round delivered.
  [[nodiscard]] bool honest_clean() const;

  /// (upstream domain, downstream domain) pairs implicated by any path's
  /// link findings — sorted, deduplicated.
  [[nodiscard]] std::vector<std::pair<std::string, std::string>>
  implicated_links() const;

  /// Receipt-derived loss rate through `domain`, aggregated over paths.
  [[nodiscard]] double estimated_loss(const std::string& domain) const;
  /// Ground-truth loss rate through `domain`, aggregated over paths.
  [[nodiscard]] double true_loss(const std::string& domain) const;
};

/// Run one scenario.  Deterministic per config.  Throws
/// std::invalid_argument on malformed configs: fewer than three domains,
/// unknown loss/jitter/adversary domain names, an adversary domain that is
/// not a transit domain, two adversary entries for one domain, a route
/// flap withdrawing every path, a link_down index out of range, or fault
/// delays the gap patience cannot cover.
[[nodiscard]] ScenarioOutcome run_scenario(const ScenarioConfig& cfg);

}  // namespace vpm::sim

#endif  // VPM_SIM_SCENARIO_ENGINE_HPP
