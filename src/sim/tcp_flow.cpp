#include "sim/tcp_flow.hpp"

#include <algorithm>
#include <stdexcept>

namespace vpm::sim {

TcpFlow::TcpFlow(EventQueue& events, BottleneckLink& link, Config cfg)
    : events_(events),
      link_(link),
      cfg_(cfg),
      cwnd_(cfg.initial_cwnd),
      ssthresh_(cfg.initial_ssthresh) {
  if (cfg.mss_bytes == 0) {
    throw std::invalid_argument("mss must be positive");
  }
  if (cfg.base_rtt <= net::Duration{0}) {
    throw std::invalid_argument("base_rtt must be positive");
  }
}

void TcpFlow::start(net::Timestamp at) {
  events_.schedule(at, [this] { try_send(); });
}

void TcpFlow::try_send() {
  while (static_cast<double>(inflight_) < cwnd_ &&
         inflight_ < cfg_.max_inflight) {
    ++inflight_;
    const bool accepted = link_.offer(
        cfg_.mss_bytes, [this](net::Timestamp /*delivered*/) {
          // Data reached the receiver; the ACK returns after the reverse
          // path (uncongested): half the base RTT.
          events_.schedule_in(cfg_.base_rtt / 2, [this] { on_ack(); });
        });
    if (!accepted) {
      --inflight_;  // never entered the network
      ++lost_;
      // The sender notices roughly one RTT later.
      events_.schedule_in(cfg_.base_rtt, [this] { on_loss_detected(); });
      // Stop pushing this window; on_ack/on_loss will restart us.
      return;
    }
  }
}

void TcpFlow::on_ack() {
  if (inflight_ > 0) --inflight_;
  ++acked_;
  if (cwnd_ < ssthresh_) {
    cwnd_ += 1.0;  // slow start
  } else {
    cwnd_ += 1.0 / cwnd_;  // congestion avoidance
  }
  try_send();
}

void TcpFlow::on_loss_detected() {
  if (events_.now() < recovery_until_) {
    try_send();
    return;  // already reacted to this loss burst
  }
  ssthresh_ = std::max(2.0, cwnd_ / 2.0);
  cwnd_ = ssthresh_;
  recovery_until_ = events_.now() + cfg_.base_rtt;
  try_send();
}

}  // namespace vpm::sim
