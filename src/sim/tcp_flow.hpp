// A simplified long-lived TCP Reno source for background congestion.
//
// The paper's NS scenarios include "long-lived TCP ... flows compet[ing]
// for ... a bottleneck link" (§7.2).  We model the load-shaping essentials
// only: slow start, congestion avoidance (AIMD), and multiplicative
// decrease on loss — enough to produce the characteristic sawtooth
// occupancy at the shared queue.  Loss detection is "genie-aided": the
// source learns of a queue drop one RTT later, standing in for triple
// duplicate ACKs; this changes no queue dynamics that matter here.
#ifndef VPM_SIM_TCP_FLOW_HPP
#define VPM_SIM_TCP_FLOW_HPP

#include <cstdint>

#include "sim/bottleneck_link.hpp"
#include "sim/event_queue.hpp"

namespace vpm::sim {

class TcpFlow {
 public:
  struct Config {
    std::size_t mss_bytes = 1460;
    net::Duration base_rtt = net::milliseconds(20);  ///< excluding queueing
    double initial_cwnd = 2.0;
    double initial_ssthresh = 64.0;
    std::uint64_t max_inflight = 1024;  ///< receiver window (packets)
  };

  /// Throws std::invalid_argument on zero mss or non-positive RTT.
  TcpFlow(EventQueue& events, BottleneckLink& link, Config cfg);

  void start(net::Timestamp at);

  [[nodiscard]] double cwnd() const noexcept { return cwnd_; }
  [[nodiscard]] std::uint64_t packets_acked() const noexcept {
    return acked_;
  }
  [[nodiscard]] std::uint64_t packets_lost() const noexcept { return lost_; }

 private:
  void try_send();
  void on_ack();
  void on_loss_detected();

  EventQueue& events_;
  BottleneckLink& link_;
  Config cfg_;
  double cwnd_;
  double ssthresh_;
  std::uint64_t inflight_ = 0;
  std::uint64_t acked_ = 0;
  std::uint64_t lost_ = 0;
  /// Ignore further decreases until this time: one reaction per RTT, as in
  /// Reno's fast recovery.
  net::Timestamp recovery_until_;
};

}  // namespace vpm::sim

#endif  // VPM_SIM_TCP_FLOW_HPP
