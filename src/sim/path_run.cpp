#include "sim/path_run.hpp"

#include <algorithm>
#include <random>
#include <stdexcept>
#include <unordered_map>

namespace vpm::sim {
namespace {

constexpr net::Duration kDefaultDomainDelay = net::microseconds(500);

void validate(const PathEnvironment& env) {
  if (env.domains.size() < 2) {
    throw std::invalid_argument("path needs at least two domains");
  }
  if (env.links.size() != env.domains.size() - 1) {
    throw std::invalid_argument("need exactly domains-1 links, have " +
                                std::to_string(env.links.size()));
  }
  if (!env.clock_offsets.empty() &&
      env.clock_offsets.size() != env.hop_count()) {
    throw std::invalid_argument("clock_offsets must be empty or one per HOP");
  }
}

}  // namespace

PathRunResult run_path(std::span<const net::Packet> trace,
                       const PathEnvironment& env) {
  validate(env);
  const std::size_t n_domains = env.domains.size();
  const std::size_t n_hops = env.hop_count();

  std::mt19937_64 rng(env.seed);
  auto jitter_of = [&rng](net::Duration max) -> net::Duration {
    if (max <= net::Duration{0}) return net::Duration{0};
    std::uniform_int_distribution<std::int64_t> dist(0, max.nanoseconds());
    return net::Duration{dist(rng)};
  };
  auto offset_of = [&env](std::size_t hop) -> net::Duration {
    return env.clock_offsets.empty() ? net::Duration{0}
                                     : env.clock_offsets[hop];
  };

  PathRunResult result;
  result.hop_observations.resize(n_hops);
  result.hops_reached.assign(trace.size(), 0);
  for (ObsSeq& seq : result.hop_observations) seq.reserve(trace.size());

  for (std::size_t i = 0; i < trace.size(); ++i) {
    const auto pkt = static_cast<PacketIndex>(i);
    net::Timestamp t = trace[i].origin_time;  // at first domain's egress
    std::uint8_t hops_seen = 0;

    // First domain's egress HOP observes the packet as it leaves.
    result.hop_observations[0].push_back(Obs{pkt, t + offset_of(0)});
    ++hops_seen;

    bool alive = true;
    for (std::size_t d = 1; d < n_domains && alive; ++d) {
      // Cross the inter-domain link from domain d-1 to domain d.
      const LinkSegment& link = env.links[d - 1];
      if (link.loss != nullptr && link.loss->should_drop()) {
        alive = false;
        break;
      }
      if (link.targeted_drop && link.targeted_drop(trace[i])) {
        alive = false;
        break;
      }
      t += link.delay + jitter_of(link.jitter);

      // Domain d's ingress HOP.
      const std::size_t in_hop = PathEnvironment::ingress_hop(d);
      result.hop_observations[in_hop].push_back(Obs{pkt, t + offset_of(in_hop)});
      ++hops_seen;

      if (d == n_domains - 1) break;  // destination domain: done

      // Traverse domain d.
      const DomainSegment& dom = env.domains[d];
      if (dom.loss != nullptr && dom.loss->should_drop()) {
        alive = false;
        break;
      }
      if (dom.targeted_drop && dom.targeted_drop(trace[i])) {
        alive = false;
        break;
      }
      if (dom.drop_by_index && dom.drop_by_index(pkt)) {
        alive = false;
        break;
      }
      const net::Duration base =
          dom.delay_of ? dom.delay_of(pkt) : kDefaultDomainDelay;
      t += base + jitter_of(dom.jitter);

      const std::size_t out_hop = PathEnvironment::egress_hop(d);
      result.hop_observations[out_hop].push_back(
          Obs{pkt, t + offset_of(out_hop)});
      ++hops_seen;
    }

    result.hops_reached[i] = hops_seen;
    if (alive && hops_seen == n_hops) ++result.delivered;
  }

  // A HOP observes packets in local arrival order: jitter may have
  // reordered nearby packets relative to trace order.
  for (ObsSeq& seq : result.hop_observations) {
    std::stable_sort(seq.begin(), seq.end(),
                     [](const Obs& a, const Obs& b) { return a.when < b.when; });
  }
  return result;
}

std::vector<std::pair<PacketIndex, double>> true_domain_delays_ms(
    const PathRunResult& result, const PathEnvironment& env, std::size_t d) {
  if (d == 0 || d + 1 >= env.domains.size()) {
    throw std::invalid_argument("domain has no ingress/egress HOP pair");
  }
  const std::size_t in_hop = PathEnvironment::ingress_hop(d);
  const std::size_t out_hop = PathEnvironment::egress_hop(d);
  const net::Duration in_off =
      env.clock_offsets.empty() ? net::Duration{0} : env.clock_offsets[in_hop];
  const net::Duration out_off = env.clock_offsets.empty()
                                    ? net::Duration{0}
                                    : env.clock_offsets[out_hop];

  std::unordered_map<PacketIndex, net::Timestamp> ingress_time;
  ingress_time.reserve(result.hop_observations[in_hop].size() * 2);
  for (const Obs& o : result.hop_observations[in_hop]) {
    ingress_time.emplace(o.pkt, o.when - in_off);
  }

  std::vector<std::pair<PacketIndex, double>> out;
  out.reserve(result.hop_observations[out_hop].size());
  for (const Obs& o : result.hop_observations[out_hop]) {
    const auto it = ingress_time.find(o.pkt);
    if (it == ingress_time.end()) continue;
    const net::Duration delay = (o.when - out_off) - it->second;
    out.emplace_back(o.pkt, delay.milliseconds());
  }
  return out;
}

}  // namespace vpm::sim
