#include "sim/federation_scenario.hpp"

#include <algorithm>
#include <array>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <utility>

#include "collector/monitoring_cache.hpp"
#include "core/incremental_verifier.hpp"
#include "core/receipt_sink.hpp"
#include "dissem/faulty_transport.hpp"
#include "dissem/federated_store.hpp"
#include "dissem/segment_store.hpp"
#include "dissem/wire_exporter.hpp"
#include "dissem/wire_importer.hpp"
#include "sim/scenario_common.hpp"
#include "trace/synthetic_trace.hpp"

namespace vpm::sim {
namespace {

using scenario::add_stats;
using scenario::dedupe_gaps;
using scenario::path_table;

constexpr std::size_t kHops = 3;
constexpr dissem::DomainKey kKey = 0xFEDC0DE;

/// Cut `1 + rnd % 40`-ish bytes off the lexicographically last segment
/// file under `root` — a torn tail write for recovery to truncate.  The
/// choice of file is deterministic (the run is deterministic up to the
/// crash, so its directory listing is too).  Returns false when no
/// segment file has bytes to spare past its header.
bool tear_segment_tail(const std::filesystem::path& root, std::uint64_t rnd) {
  std::filesystem::path victim;
  for (const auto& entry :
       std::filesystem::recursive_directory_iterator(root)) {
    if (!entry.is_regular_file() || entry.path().extension() != ".seg") {
      continue;
    }
    if (victim.empty() || entry.path().generic_string() >
                              victim.generic_string()) {
      victim = entry.path();
    }
  }
  if (victim.empty()) return false;
  const std::uintmax_t size = std::filesystem::file_size(victim);
  if (size <= dissem::kSegmentHeaderBytes + 8) return false;
  const std::uintmax_t spare = size - dissem::kSegmentHeaderBytes;
  const std::uintmax_t cut =
      1 + rnd % std::min<std::uintmax_t>(spare, 40);
  std::filesystem::resize_file(victim, size - cut);
  return true;
}

/// One domain's tick-driven auditor stream: acks the contiguous prefix,
/// skipping a hole only after `patience` consecutive stalled rounds.
/// Deliberately RNG-free and never reset at a store crash (the auditor
/// daemon outlives the store process), so its ack schedule — and through
/// it every GC floor — is identical between the crashed run and the
/// memory reference.
struct AuditorStream {
  dissem::DomainId producer = 0;
  std::uint64_t cursor = 0;
  std::set<std::uint64_t> seen;  ///< retained sequences above the cursor
  std::uint64_t hole_age = 0;
};

}  // namespace

FederationScenarioResult run_federation_scenario(
    const ScenarioConfig& cfg, const std::filesystem::path& directory) {
  const std::size_t domains = cfg.fed_domains;
  if (domains < 3) {
    throw std::invalid_argument("federation: fed_domains must be >= 3");
  }
  if (cfg.rounds == 0 || cfg.paths == 0) {
    throw std::invalid_argument("federation: empty run");
  }
  if (cfg.faults.delay_rate > 0.0 &&
      cfg.gap_patience_polls < cfg.faults.max_delay_ticks) {
    throw std::invalid_argument(
        "federation: gap patience below the plan's max delay");
  }
  const bool segment = cfg.fed_segment_backend;
  if (segment && directory.empty()) {
    throw std::invalid_argument("federation: segment backend needs a directory");
  }
  if (!segment && (cfg.fed_crash_every != 0 || cfg.fed_torn_tail)) {
    throw std::invalid_argument(
        "federation: crash-restart requires the segment backend");
  }
  if (cfg.fed_torn_tail && cfg.fed_crash_every == 0) {
    throw std::invalid_argument(
        "federation: fed_torn_tail without fed_crash_every never fires");
  }
  if (cfg.fed_join_round >= cfg.rounds) {
    throw std::invalid_argument("federation: join round past the run");
  }
  // A late joiner reads the GC floor at its join instant.  Before the
  // first crash that floor is bit-identical between the crashed run and
  // the reference; after a crash a rebuilt client's resync can trail the
  // reference by up to a patience window, so a join there could read a
  // different floor and legitimately diverge.  Refuse the combination
  // instead of producing a flaky identity assertion.
  if (cfg.fed_crash_every != 0 && cfg.fed_join_round >= cfg.fed_crash_every) {
    throw std::invalid_argument(
        "federation: join round must precede the first crash");
  }

  const std::size_t flows = domains;  // ring: one flow per starting domain
  const auto hid = [](std::size_t flow, std::size_t k) {
    return static_cast<net::HopId>(1 + flow * kHops + k);
  };
  const auto vname = [](std::size_t flow) {
    return "v-f" + std::to_string(flow);
  };

  FederationScenarioResult result;
  result.domains = domains;
  result.flows = flows;
  result.feeds.assign(flows, std::vector<std::vector<core::IndexedPathDrain>>(
                                 kHops));
  result.gaps.assign(flows, std::vector<std::vector<core::RoundGap>>(kHops));
  result.client_stats.assign(
      flows, std::vector<dissem::FetchClient::Stats>(kHops));

  // --- per-flow layout and traffic ----------------------------------------
  std::vector<core::PathLayout> layouts(flows);
  for (std::size_t f = 0; f < flows; ++f) {
    for (std::size_t k = 0; k < kHops; ++k) {
      layouts[f].hops.push_back(hid(f, k));
      layouts[f].domain_of.push_back("d" + std::to_string((f + k) % domains));
    }
  }

  const std::int64_t round_ns = cfg.round_length.nanoseconds();
  std::vector<trace::MultiPathTrace> traces;
  traces.reserve(flows);
  // [flow][round] packets; [flow][hop][round] observation times.
  std::vector<std::vector<std::vector<net::Packet>>> round_packets(flows);
  std::vector<std::array<std::vector<std::vector<net::Timestamp>>, kHops>>
      round_when(flows);
  for (std::size_t f = 0; f < flows; ++f) {
    traces.push_back(trace::generate_multi_path(scenario::multi_path_config(
        cfg.paths, cfg.zipf_s, cfg.packets_per_second, cfg.round_length,
        cfg.rounds, cfg.seed + 7919 * f)));
    const trace::MultiPathTrace& multi = traces.back();
    round_packets[f].resize(cfg.rounds);
    for (auto& w : round_when[f]) w.resize(cfg.rounds);
    for (std::size_t i = 0; i < multi.packets.size(); ++i) {
      net::Packet p = multi.packets[i];
      p.origin_time = scenario::quantize_us(p.origin_time);
      const std::size_t r =
          scenario::round_of(p.origin_time, round_ns, cfg.rounds);
      const std::size_t path = multi.path_of[i];
      round_packets[f][r].push_back(p);
      for (std::size_t k = 0; k < kHops; ++k) {
        round_when[f][k][r].push_back(
            p.origin_time + scenario::spread_hop_delay(
                                cfg.seed ^ (f * 131), path, k,
                                net::microseconds(400), 32));
      }
      ++result.total_packets;
    }
  }

  // --- collectors ---------------------------------------------------------
  std::vector<std::array<collector::MonitoringCache::Config, kHops>> hop_cfg(
      flows);
  std::vector<std::array<std::optional<collector::MonitoringCache>, kHops>>
      caches(flows);
  for (std::size_t f = 0; f < flows; ++f) {
    for (std::size_t k = 0; k < kHops; ++k) {
      collector::MonitoringCache::Config c;
      c.protocol.digest_mode = cfg.digest_mode;
      c.protocol.marker_rate = cfg.marker_rate;
      c.tuning = cfg.tuning;
      c.self = layouts[f].hops[k];
      c.previous_hop = k == 0 ? net::kNoHop : layouts[f].hops[k - 1];
      c.next_hop = k + 1 == kHops ? net::kNoHop : layouts[f].hops[k + 1];
      hop_cfg[f][k] = c;
      caches[f][k].emplace(c, traces[f].paths);
    }
  }

  // --- the store (a process we can kill) ----------------------------------
  const auto make_store = [&] {
    dissem::FederatedStoreConfig scfg;
    scfg.shards = cfg.fed_store_shards;
    if (segment) scfg.directory = directory;
    scfg.max_segment_bytes = cfg.fed_segment_bytes;
    scfg.cursor_snapshot_every = 512;  // small: the sim exercises compaction
    return std::make_unique<dissem::FederatedStore>(std::move(scfg));
  };
  std::unique_ptr<dissem::FederatedStore> fed = make_store();

  const auto register_producers = [&] {
    for (std::size_t f = 0; f < flows; ++f) {
      for (std::size_t k = 0; k < kHops; ++k) {
        fed->register_producer(hid(f, k), kKey);
      }
    }
  };
  register_producers();

  // Producer-side archive of every envelope the store ACCEPTED — what a
  // real producer keeps un-garbage-collected until the store acks
  // durability.  After a crash the fleet re-sends it: the store's recovered
  // floor and retained set reject everything except what a torn tail
  // destroyed, restoring the exact pre-crash state.
  std::map<dissem::DomainId, std::map<std::uint64_t, dissem::Envelope>>
      archives;
  const auto ingest_arrival = [&](dissem::Envelope&& e) {
    const dissem::DomainId p = e.producer;
    const std::uint64_t seq = e.sequence;
    dissem::Envelope copy = e;
    if (fed->ingest(std::move(e)) == dissem::IngestResult::kAccepted) {
      archives[p].emplace(seq, std::move(copy));
    }
  };

  // --- the wire: exporters -> faulty transports -> store ------------------
  bool faults_on = true;  // the closing round ships on a clean wire
  std::vector<std::array<std::optional<dissem::FaultyTransport>, kHops>>
      transports(flows);
  std::vector<std::array<std::optional<dissem::WireExporter>, kHops>>
      exporters(flows);
  for (std::size_t f = 0; f < flows; ++f) {
    for (std::size_t k = 0; k < kHops; ++k) {
      transports[f][k].emplace(cfg.faults,
                               cfg.fault_seed + f * kHops + k,
                               [&ingest_arrival](dissem::Envelope&& e) {
                                 ingest_arrival(std::move(e));
                               });
      auto* transport = &*transports[f][k];
      exporters[f][k].emplace(
          dissem::WireExporter::Config{.producer = hid(f, k),
                                       .key = kKey,
                                       .max_chunk_bytes = cfg.max_chunk_bytes},
          [transport, &ingest_arrival, &faults_on](dissem::Envelope&& e) {
            if (faults_on) {
              transport->send(std::move(e));
            } else {
              ingest_arrival(std::move(e));
            }
          });
    }
  }

  // --- auditors: every domain gates GC of its own streams -----------------
  const std::uint64_t patience = cfg.gap_patience_polls;
  std::vector<std::vector<AuditorStream>> auditors(domains);
  const auto aname = [](std::size_t d) {
    return "audit-d" + std::to_string(d);
  };
  for (std::size_t f = 0; f < flows; ++f) {
    for (std::size_t k = 0; k < kHops; ++k) {
      AuditorStream s;
      s.producer = hid(f, k);
      auditors[(f + k) % domains].push_back(std::move(s));
    }
  }
  const auto subscribe_auditors = [&] {
    for (std::size_t d = 0; d < domains; ++d) {
      for (const AuditorStream& s : auditors[d]) {
        fed->subscribe(aname(d), s.producer);
      }
    }
  };
  subscribe_auditors();

  const auto tick_auditors = [&] {
    for (std::size_t d = 0; d < domains; ++d) {
      for (AuditorStream& s : auditors[d]) {
        fed->fetch_from(aname(d), s.producer,
                        [&s](std::uint64_t seq, std::span<const std::byte>) {
                          s.seen.insert(seq);
                        });
        std::uint64_t target = s.cursor;
        while (s.seen.contains(target + 1)) {
          s.seen.erase(target + 1);
          ++target;
        }
        if (target == s.cursor && !s.seen.empty()) {
          // Stalled below a hole.  Wait out the transport's reorder window,
          // then ack past the missing sequences to the next retained run —
          // the floor must not be hostage to a dropped envelope forever.
          if (++s.hole_age > patience) {
            target = *s.seen.begin();
            s.seen.erase(s.seen.begin());
            while (s.seen.contains(target + 1)) {
              s.seen.erase(target + 1);
              ++target;
            }
            s.hole_age = 0;
          }
        } else if (target != s.cursor) {
          s.hole_age = 0;
        }
        if (target > s.cursor) {
          (void)fed->ack(aname(d), s.producer, target);
          s.cursor = target;
        }
      }
    }
  };

  // --- verifier fleets ----------------------------------------------------
  std::vector<std::vector<core::IncrementalPathVerifier>> verifiers(flows);
  for (std::size_t f = 0; f < flows; ++f) {
    const core::IncrementalPathVerifier::Config vcfg{
        .layout = layouts[f],
        .retain_rounds = cfg.rounds + 8,
        .margin_boundaries = 2,
    };
    verifiers[f].reserve(cfg.paths);
    for (std::size_t p = 0; p < cfg.paths; ++p) verifiers[f].emplace_back(vcfg);
  }

  std::vector<std::array<std::optional<dissem::WireImporter>, kHops>>
      importers(flows);
  for (std::size_t f = 0; f < flows; ++f) {
    for (std::size_t k = 0; k < kHops; ++k) {
      importers[f][k].emplace(path_table(hop_cfg[f][k], traces[f].paths));
    }
  }

  std::vector<std::vector<std::vector<core::RoundGap>>> raw_gaps(
      flows, std::vector<std::vector<core::RoundGap>>(kHops));
  std::vector<std::array<std::unique_ptr<dissem::FetchClient>, kHops>>
      clients(flows);
  std::vector<char> joined(flows, 0);

  const auto build_client = [&](std::size_t f, std::size_t k) {
    dissem::FetchClient::Config ccfg;
    ccfg.consumer = vname(f);
    ccfg.producer = hid(f, k);
    ccfg.producer_name = layouts[f].domain_of[k];
    ccfg.hop = hid(f, k);
    ccfg.gap_patience_polls = cfg.gap_patience_polls;
    ccfg.seed = cfg.seed ^ (0xC11E57ull + hid(f, k));
    clients[f][k] = std::make_unique<dissem::FetchClient>(
        *importers[f][k], fed->shard_for(hid(f, k)), ccfg,
        [&result, &verifiers, &layouts, f,
         k](std::vector<core::IndexedPathDrain>&& groups) {
          for (core::IndexedPathDrain& g : groups) {
            result.feeds[f][k].push_back(g);
            verifiers[f][g.path].add_round(layouts[f].hops[k],
                                           std::move(g.drain));
          }
        },
        [&raw_gaps, f, k](core::RoundGap&& gap) {
          raw_gaps[f][k].push_back(std::move(gap));
        });
  };
  const auto retire_client = [&](std::size_t f, std::size_t k) {
    add_stats(result.client_stats[f][k], clients[f][k]->stats());
    clients[f][k].reset();
  };
  const auto subscribe_flow = [&](std::size_t f) {
    for (std::size_t k = 0; k < kHops; ++k) {
      fed->subscribe(vname(f), hid(f, k));
    }
  };
  const auto join_flow = [&](std::size_t f) {
    subscribe_flow(f);
    for (std::size_t k = 0; k < kHops; ++k) build_client(f, k);
    joined[f] = 1;
  };
  // The last flow joins late when configured; everyone else from round 0.
  const std::size_t late_flow = flows - 1;
  for (std::size_t f = 0; f < flows; ++f) {
    if (cfg.fed_join_round != 0 && f == late_flow) continue;
    join_flow(f);
  }
  const std::size_t lag_flow = cfg.fed_lag_every != 0 ? 1 : flows;

  // --- the crash ----------------------------------------------------------
  const auto crash_restart = [&](std::size_t round) {
    for (std::size_t f = 0; f < flows; ++f) {
      if (!joined[f]) continue;
      for (std::size_t k = 0; k < kHops; ++k) retire_client(f, k);
    }
    fed.reset();  // the store process dies; files close
    if (cfg.fed_torn_tail &&
        tear_segment_tail(directory,
                          scenario::mix(cfg.seed ^ (0x7EA5ull * round)))) {
      ++result.torn_tails;
    }
    fed = make_store();  // reopen: segment + cursor-log recovery
    ++result.store_crashes;
    register_producers();  // keys are in-memory only
    subscribe_auditors();  // idempotent over the recovered registrations
    for (std::size_t f = 0; f < flows; ++f) {
      if (joined[f]) subscribe_flow(f);
    }
    // Producers re-send their archives: only torn-away envelopes accept.
    for (auto& [producer, by_seq] : archives) {
      for (auto& [seq, env] : by_seq) {
        dissem::Envelope copy = env;
        if (fed->ingest(std::move(copy)) == dissem::IngestResult::kAccepted) {
          ++result.reingest_accepted;
        } else {
          ++result.reingest_rejected;
        }
      }
    }
    for (std::size_t f = 0; f < flows; ++f) {
      if (!joined[f]) continue;
      for (std::size_t k = 0; k < kHops; ++k) {
        build_client(f, k);
        ++result.client_rebuilds;
      }
    }
  };

  // --- the rounds ---------------------------------------------------------
  for (std::size_t r = 0; r < cfg.rounds; ++r) {
    if (segment && cfg.fed_crash_every != 0 && r != 0 &&
        r % cfg.fed_crash_every == 0) {
      crash_restart(r);
    }
    if (cfg.fed_join_round != 0 && r == cfg.fed_join_round) {
      join_flow(late_flow);
    }
    for (std::size_t f = 0; f < flows; ++f) {
      for (std::size_t k = 0; k < kHops; ++k) {
        caches[f][k]->observe_batch(round_packets[f][r], round_when[f][k][r]);
        caches[f][k]->drain_all(*exporters[f][k], /*flush_open=*/false);
        exporters[f][k]->end_round();
        exporters[f][k]->flush();
        transports[f][k]->tick();
      }
    }
    tick_auditors();
    for (std::size_t f = 0; f < flows; ++f) {
      if (!joined[f]) continue;
      if (f == lag_flow && r % cfg.fed_lag_every != 0) continue;
      for (std::size_t k = 0; k < kHops; ++k) clients[f][k]->poll();
    }
    if (segment) {
      result.segments_live_peak = std::max(
          result.segments_live_peak, fed->storage_stats().segments_live);
    }
  }

  // --- the clean closing round --------------------------------------------
  for (std::size_t f = 0; f < flows; ++f) {
    for (std::size_t k = 0; k < kHops; ++k) transports[f][k]->flush();
  }
  faults_on = false;
  for (std::size_t f = 0; f < flows; ++f) {
    for (std::size_t k = 0; k < kHops; ++k) {
      caches[f][k]->drain_all(*exporters[f][k], /*flush_open=*/true);
      exporters[f][k]->finish();
    }
  }
  const std::size_t settle = cfg.gap_patience_polls + 16;
  for (std::size_t i = 0; i < settle; ++i) {
    tick_auditors();
    for (std::size_t f = 0; f < flows; ++f) {
      if (!joined[f]) continue;
      for (std::size_t k = 0; k < kHops; ++k) clients[f][k]->poll();
    }
  }
  for (std::size_t f = 0; f < flows; ++f) {
    if (!joined[f]) continue;
    for (std::size_t k = 0; k < kHops; ++k) {
      clients[f][k]->finalize();
      retire_client(f, k);
    }
  }

  // --- gap bookkeeping and analyses ---------------------------------------
  for (std::size_t f = 0; f < flows; ++f) {
    std::unordered_map<std::uint64_t, std::size_t> index_of_key;
    for (std::size_t p = 0; p < cfg.paths; ++p) {
      index_of_key[importers[f][0]->path_at(p).path_key()] = p;
    }
    for (std::size_t k = 0; k < kHops; ++k) {
      result.gaps[f][k] = dedupe_gaps(std::move(raw_gaps[f][k]));
      for (const core::RoundGap& g : result.gaps[f][k]) {
        for (std::uint64_t key : g.affected_paths) {
          const auto it = index_of_key.find(key);
          if (it != index_of_key.end()) {
            verifiers[f][it->second].report_gap(g);
          }
        }
      }
    }
  }
  result.analyses.resize(flows);
  for (std::size_t f = 0; f < flows; ++f) {
    result.analyses[f].reserve(cfg.paths);
    for (std::size_t p = 0; p < cfg.paths; ++p) {
      result.analyses[f].push_back(verifiers[f][p].analyze());
    }
  }

  // --- store end state ----------------------------------------------------
  for (std::size_t f = 0; f < flows; ++f) {
    if (!joined[f]) continue;
    for (std::size_t k = 0; k < kHops; ++k) {
      result.max_consumer_lag_end =
          std::max(result.max_consumer_lag_end,
                   fed->consumer_lag(vname(f), hid(f, k)));
    }
  }
  result.storage_end = fed->storage_stats();
  if (segment) {
    result.segments_live_peak = std::max(result.segments_live_peak,
                                         result.storage_end.segments_live);
  }
  for (std::size_t f = 0; f < flows; ++f) {
    for (std::size_t k = 0; k < kHops; ++k) {
      result.producer_storage_end.emplace_back(
          hid(f, k), fed->producer_storage_stats(hid(f, k)));
    }
  }
  result.store_accepted = fed->accepted_count();
  result.store_rejected = fed->rejected_count();
  return result;
}

}  // namespace vpm::sim
