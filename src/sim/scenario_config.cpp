#include "sim/scenario_config.hpp"

#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace vpm::sim {
namespace {

std::string fmt_double(double v) {
  std::ostringstream os;
  os << std::setprecision(15) << v;
  return os.str();
}

std::string join_domains(const std::vector<std::string>& domains) {
  std::string out;
  for (const std::string& d : domains) {
    if (!out.empty()) out += ',';
    out += d;
  }
  return out;
}

std::vector<std::string> split(std::string_view v, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= v.size()) {
    const std::size_t end = v.find(sep, start);
    if (end == std::string_view::npos) {
      out.emplace_back(v.substr(start));
      break;
    }
    out.emplace_back(v.substr(start, end - start));
    start = end + 1;
  }
  return out;
}

std::int64_t to_us(net::Duration d) { return d.nanoseconds() / 1000; }

const char* loss_name(LossKind k) {
  switch (k) {
    case LossKind::kNone: return "none";
    case LossKind::kBernoulli: return "bernoulli";
    case LossKind::kGilbertElliott: return "ge";
    case LossKind::kCongestion: return "congestion";
  }
  return "none";
}

const char* adversary_name(AdversaryKind k) {
  switch (k) {
    case AdversaryKind::kHonest: return "honest";
    case AdversaryKind::kHideLoss: return "hide_loss";
    case AdversaryKind::kUnderstateDelay: return "understate_delay";
    case AdversaryKind::kCoverUpstream: return "cover";
  }
  return "honest";
}

[[noreturn]] void bad_token(const std::string& token, const char* why) {
  throw std::invalid_argument("scenario config: " + std::string(why) + ": '" +
                              token + "'");
}

double parse_double(const std::string& token, const std::string& value) {
  try {
    std::size_t used = 0;
    const double v = std::stod(value, &used);
    if (used != value.size()) bad_token(token, "trailing junk in number");
    return v;
  } catch (const std::invalid_argument&) {
    bad_token(token, "malformed number");
  } catch (const std::out_of_range&) {
    bad_token(token, "number out of range");
  }
}

std::uint64_t parse_u64(const std::string& token, const std::string& value) {
  try {
    std::size_t used = 0;
    const std::uint64_t v = std::stoull(value, &used);
    if (used != value.size()) bad_token(token, "trailing junk in integer");
    return v;
  } catch (const std::invalid_argument&) {
    bad_token(token, "malformed integer");
  } catch (const std::out_of_range&) {
    bad_token(token, "integer out of range");
  }
}

net::Duration parse_us(const std::string& token, const std::string& value) {
  return net::microseconds(static_cast<std::int64_t>(parse_u64(token, value)));
}

/// Parse "a:b:c" into three integers (link_down / route_flap events).
void parse_triple(const std::string& token, const std::string& value,
                  std::size_t& a, std::size_t& b, std::size_t& c) {
  const std::vector<std::string> parts = split(value, ':');
  if (parts.size() != 3) bad_token(token, "expected <a>:<b>:<c>");
  a = static_cast<std::size_t>(parse_u64(token, parts[0]));
  b = static_cast<std::size_t>(parse_u64(token, parts[1]));
  c = static_cast<std::size_t>(parse_u64(token, parts[2]));
}

}  // namespace

std::string ScenarioConfig::to_string() const {
  const ScenarioConfig def;
  std::string out;
  const auto put = [&out](const std::string& key, const std::string& value) {
    if (!out.empty()) out += ' ';
    out += key;
    out += '=';
    out += value;
  };

  put("name", name);
  put("seed", std::to_string(seed));
  if (domains != def.domains) put("domains", join_domains(domains));
  if (paths != def.paths) put("paths", std::to_string(paths));
  if (rounds != def.rounds) put("rounds", std::to_string(rounds));
  if (round_length != def.round_length) {
    put("round_us", std::to_string(to_us(round_length)));
  }
  if (packets_per_second != def.packets_per_second) {
    put("pps", fmt_double(packets_per_second));
  }
  if (zipf_s != def.zipf_s) put("zipf", fmt_double(zipf_s));
  if (digest_mode != def.digest_mode) {
    put("digest", digest_mode == net::DigestMode::kSingle ? "single"
                                                          : "independent");
  }
  if (marker_rate != def.marker_rate) {
    put("marker_rate", fmt_double(marker_rate));
  }
  if (marker_max_age != def.marker_max_age) {
    put("marker_max_age_us", std::to_string(to_us(marker_max_age)));
  }
  if (tuning.sample_rate != def.tuning.sample_rate) {
    put("sample_rate", fmt_double(tuning.sample_rate));
  }
  if (tuning.cut_rate != def.tuning.cut_rate) {
    put("cut_rate", fmt_double(tuning.cut_rate));
  }
  if (shards != def.shards) put("shards", std::to_string(shards));
  if (max_diff != def.max_diff) {
    put("max_diff_us", std::to_string(to_us(max_diff)));
  }
  if (domain_delay != def.domain_delay) {
    put("domain_delay_us", std::to_string(to_us(domain_delay)));
  }
  if (link_delay != def.link_delay) {
    put("link_delay_us", std::to_string(to_us(link_delay)));
  }
  if (!jitter_domain.empty()) put("jitter_domain", jitter_domain);
  if (jitter != def.jitter) put("jitter_us", std::to_string(to_us(jitter)));
  if (loss != def.loss) put("loss", loss_name(loss));
  if (!loss_domain.empty()) put("loss_domain", loss_domain);
  if (loss_rate != def.loss_rate) put("loss_rate", fmt_double(loss_rate));
  if (loss_burst != def.loss_burst) put("loss_burst", fmt_double(loss_burst));
  if (congestion_bps != def.congestion_bps) {
    put("congestion_bps", fmt_double(congestion_bps));
  }
  if (congestion_buffer != def.congestion_buffer) {
    put("congestion_buffer", std::to_string(congestion_buffer));
  }
  for (const ScenarioAdversary& a : adversaries) {
    put("adversary." + a.domain, adversary_name(a.kind));
  }
  if (shave != def.shave) put("shave_us", std::to_string(to_us(shave)));
  if (fake_delay != def.fake_delay) {
    put("fake_delay_us", std::to_string(to_us(fake_delay)));
  }
  if (link_down.duration_rounds != 0) {
    put("link_down", std::to_string(link_down.link) + ':' +
                         std::to_string(link_down.round) + ':' +
                         std::to_string(link_down.duration_rounds));
  }
  if (route_flap.duration_rounds != 0) {
    put("route_flap", std::to_string(route_flap.paths) + ':' +
                          std::to_string(route_flap.round) + ':' +
                          std::to_string(route_flap.duration_rounds));
  }
  if (ttl_rounds != def.ttl_rounds) {
    put("ttl_rounds", std::to_string(ttl_rounds));
  }
  if (max_chunk_bytes != def.max_chunk_bytes) {
    put("chunk_bytes", std::to_string(max_chunk_bytes));
  }
  if (faults.drop_rate != 0.0) put("fault_drop", fmt_double(faults.drop_rate));
  if (faults.corrupt_rate != 0.0) {
    put("fault_corrupt", fmt_double(faults.corrupt_rate));
  }
  if (faults.duplicate_rate != 0.0) {
    put("fault_duplicate", fmt_double(faults.duplicate_rate));
  }
  if (faults.reorder_rate != 0.0) {
    put("fault_reorder", fmt_double(faults.reorder_rate));
  }
  if (faults.delay_rate != 0.0) {
    put("fault_delay", fmt_double(faults.delay_rate));
  }
  if (faults.max_delay_ticks != def.faults.max_delay_ticks) {
    put("fault_max_delay_ticks", std::to_string(faults.max_delay_ticks));
  }
  if (fault_seed != def.fault_seed) {
    put("fault_seed", std::to_string(fault_seed));
  }
  if (crash_every_rounds != def.crash_every_rounds) {
    put("crash_every", std::to_string(crash_every_rounds));
  }
  if (gap_patience_polls != def.gap_patience_polls) {
    put("gap_patience", std::to_string(gap_patience_polls));
  }
  if (fed_domains != def.fed_domains) {
    put("fed_domains", std::to_string(fed_domains));
  }
  if (fed_store_shards != def.fed_store_shards) {
    put("fed_shards", std::to_string(fed_store_shards));
  }
  if (fed_segment_backend) put("fed_backend", "segment");
  if (fed_segment_bytes != def.fed_segment_bytes) {
    put("fed_segment_bytes", std::to_string(fed_segment_bytes));
  }
  if (fed_crash_every != def.fed_crash_every) {
    put("fed_crash_every", std::to_string(fed_crash_every));
  }
  if (fed_torn_tail) put("fed_torn_tail", "1");
  if (fed_join_round != def.fed_join_round) {
    put("fed_join_round", std::to_string(fed_join_round));
  }
  if (fed_lag_every != def.fed_lag_every) {
    put("fed_lag_every", std::to_string(fed_lag_every));
  }
  return out;
}

ScenarioConfig parse_scenario(std::string_view text) {
  // Strip comments, then tokenize on whitespace.
  std::string clean;
  clean.reserve(text.size());
  bool in_comment = false;
  for (const char c : text) {
    if (c == '#') in_comment = true;
    if (c == '\n') in_comment = false;
    clean += in_comment ? ' ' : c;
  }

  ScenarioConfig cfg;
  std::istringstream stream(clean);
  std::string token;
  while (stream >> token) {
    const std::size_t eq = token.find('=');
    if (eq == std::string::npos || eq == 0) {
      bad_token(token, "expected key=value");
    }
    const std::string key = token.substr(0, eq);
    const std::string value = token.substr(eq + 1);

    if (key == "name") {
      cfg.name = value;
    } else if (key == "seed") {
      cfg.seed = parse_u64(token, value);
    } else if (key == "domains") {
      cfg.domains = split(value, ',');
      for (const std::string& d : cfg.domains) {
        if (d.empty()) bad_token(token, "empty domain name");
      }
    } else if (key == "paths") {
      cfg.paths = static_cast<std::size_t>(parse_u64(token, value));
    } else if (key == "rounds") {
      cfg.rounds = static_cast<std::size_t>(parse_u64(token, value));
    } else if (key == "round_us") {
      cfg.round_length = parse_us(token, value);
    } else if (key == "pps") {
      cfg.packets_per_second = parse_double(token, value);
    } else if (key == "zipf") {
      cfg.zipf_s = parse_double(token, value);
    } else if (key == "digest") {
      if (value == "single") {
        cfg.digest_mode = net::DigestMode::kSingle;
      } else if (value == "independent") {
        cfg.digest_mode = net::DigestMode::kIndependent;
      } else {
        bad_token(token, "unknown digest mode");
      }
    } else if (key == "marker_rate") {
      cfg.marker_rate = parse_double(token, value);
    } else if (key == "marker_max_age_us") {
      cfg.marker_max_age = parse_us(token, value);
    } else if (key == "sample_rate") {
      cfg.tuning.sample_rate = parse_double(token, value);
    } else if (key == "cut_rate") {
      cfg.tuning.cut_rate = parse_double(token, value);
    } else if (key == "shards") {
      cfg.shards = static_cast<std::size_t>(parse_u64(token, value));
    } else if (key == "max_diff_us") {
      cfg.max_diff = parse_us(token, value);
    } else if (key == "domain_delay_us") {
      cfg.domain_delay = parse_us(token, value);
    } else if (key == "link_delay_us") {
      cfg.link_delay = parse_us(token, value);
    } else if (key == "jitter_domain") {
      cfg.jitter_domain = value;
    } else if (key == "jitter_us") {
      cfg.jitter = parse_us(token, value);
    } else if (key == "loss") {
      if (value == "none") {
        cfg.loss = LossKind::kNone;
      } else if (value == "bernoulli") {
        cfg.loss = LossKind::kBernoulli;
      } else if (value == "ge") {
        cfg.loss = LossKind::kGilbertElliott;
      } else if (value == "congestion") {
        cfg.loss = LossKind::kCongestion;
      } else {
        bad_token(token, "unknown loss kind");
      }
    } else if (key == "loss_domain") {
      cfg.loss_domain = value;
    } else if (key == "loss_rate") {
      cfg.loss_rate = parse_double(token, value);
    } else if (key == "loss_burst") {
      cfg.loss_burst = parse_double(token, value);
    } else if (key == "congestion_bps") {
      cfg.congestion_bps = parse_double(token, value);
    } else if (key == "congestion_buffer") {
      cfg.congestion_buffer = static_cast<std::size_t>(parse_u64(token, value));
    } else if (key.rfind("adversary.", 0) == 0) {
      ScenarioAdversary a;
      a.domain = key.substr(10);
      if (a.domain.empty()) bad_token(token, "empty adversary domain");
      if (value == "honest") {
        a.kind = AdversaryKind::kHonest;
      } else if (value == "hide_loss") {
        a.kind = AdversaryKind::kHideLoss;
      } else if (value == "understate_delay") {
        a.kind = AdversaryKind::kUnderstateDelay;
      } else if (value == "cover") {
        a.kind = AdversaryKind::kCoverUpstream;
      } else {
        bad_token(token, "unknown adversary kind");
      }
      cfg.adversaries.push_back(std::move(a));
    } else if (key == "shave_us") {
      cfg.shave = parse_us(token, value);
    } else if (key == "fake_delay_us") {
      cfg.fake_delay = parse_us(token, value);
    } else if (key == "link_down") {
      parse_triple(token, value, cfg.link_down.link, cfg.link_down.round,
                   cfg.link_down.duration_rounds);
    } else if (key == "route_flap") {
      parse_triple(token, value, cfg.route_flap.paths, cfg.route_flap.round,
                   cfg.route_flap.duration_rounds);
    } else if (key == "ttl_rounds") {
      cfg.ttl_rounds = static_cast<std::size_t>(parse_u64(token, value));
    } else if (key == "chunk_bytes") {
      cfg.max_chunk_bytes = static_cast<std::size_t>(parse_u64(token, value));
    } else if (key == "fault_drop") {
      cfg.faults.drop_rate = parse_double(token, value);
    } else if (key == "fault_corrupt") {
      cfg.faults.corrupt_rate = parse_double(token, value);
    } else if (key == "fault_duplicate") {
      cfg.faults.duplicate_rate = parse_double(token, value);
    } else if (key == "fault_reorder") {
      cfg.faults.reorder_rate = parse_double(token, value);
    } else if (key == "fault_delay") {
      cfg.faults.delay_rate = parse_double(token, value);
    } else if (key == "fault_max_delay_ticks") {
      cfg.faults.max_delay_ticks =
          static_cast<std::size_t>(parse_u64(token, value));
    } else if (key == "fault_seed") {
      cfg.fault_seed = parse_u64(token, value);
    } else if (key == "crash_every") {
      cfg.crash_every_rounds = static_cast<std::size_t>(parse_u64(token, value));
    } else if (key == "gap_patience") {
      cfg.gap_patience_polls = parse_u64(token, value);
    } else if (key == "fed_domains") {
      cfg.fed_domains = static_cast<std::size_t>(parse_u64(token, value));
    } else if (key == "fed_shards") {
      cfg.fed_store_shards = static_cast<std::size_t>(parse_u64(token, value));
    } else if (key == "fed_backend") {
      if (value == "memory") {
        cfg.fed_segment_backend = false;
      } else if (value == "segment") {
        cfg.fed_segment_backend = true;
      } else {
        bad_token(token, "unknown federation backend");
      }
    } else if (key == "fed_segment_bytes") {
      cfg.fed_segment_bytes = static_cast<std::size_t>(parse_u64(token, value));
    } else if (key == "fed_crash_every") {
      cfg.fed_crash_every = static_cast<std::size_t>(parse_u64(token, value));
    } else if (key == "fed_torn_tail") {
      cfg.fed_torn_tail = parse_u64(token, value) != 0;
    } else if (key == "fed_join_round") {
      cfg.fed_join_round = static_cast<std::size_t>(parse_u64(token, value));
    } else if (key == "fed_lag_every") {
      cfg.fed_lag_every = static_cast<std::size_t>(parse_u64(token, value));
    } else {
      bad_token(token, "unknown key");
    }
  }
  return cfg;
}

}  // namespace vpm::sim
