#include "sim/scenario_engine.hpp"

#include <algorithm>
#include <memory>
#include <optional>
#include <stdexcept>
#include <unordered_map>
#include <utility>

#include "adversary/strategies.hpp"
#include "collector/sharded_collector.hpp"
#include "core/incremental_verifier.hpp"
#include "core/receipt_sink.hpp"
#include "dissem/faulty_transport.hpp"
#include "dissem/fetch_client.hpp"
#include "dissem/receipt_store.hpp"
#include "dissem/wire_exporter.hpp"
#include "dissem/wire_importer.hpp"
#include "loss/bernoulli.hpp"
#include "loss/gilbert_elliott.hpp"
#include "sim/congestion.hpp"
#include "sim/path_run.hpp"
#include "sim/scenario_common.hpp"
#include "trace/synthetic_trace.hpp"

namespace vpm::sim {
namespace {

constexpr dissem::DomainKey kKey = 0x5CE7A110;

/// Transit-domain index of `name` in the chain (throws unless it names a
/// domain with both an ingress and an egress HOP).
std::size_t transit_index(const ScenarioConfig& cfg, const std::string& name,
                          const char* what) {
  for (std::size_t d = 1; d + 1 < cfg.domains.size(); ++d) {
    if (cfg.domains[d] == name) return d;
  }
  throw std::invalid_argument(std::string("scenario: ") + what + " '" + name +
                              "' is not a transit domain");
}

void validate(const ScenarioConfig& cfg) {
  if (cfg.domains.size() < 3) {
    throw std::invalid_argument(
        "scenario: need at least three domains (one transit)");
  }
  for (std::size_t i = 0; i < cfg.domains.size(); ++i) {
    for (std::size_t j = i + 1; j < cfg.domains.size(); ++j) {
      if (cfg.domains[i] == cfg.domains[j]) {
        throw std::invalid_argument("scenario: duplicate domain '" +
                                    cfg.domains[i] + "'");
      }
    }
  }
  if (cfg.paths == 0 || cfg.rounds == 0) {
    throw std::invalid_argument("scenario: empty run");
  }
  if (cfg.round_length <= net::Duration{0}) {
    throw std::invalid_argument("scenario: non-positive round length");
  }
  if (cfg.route_flap.duration_rounds != 0 &&
      cfg.route_flap.paths >= cfg.paths) {
    throw std::invalid_argument(
        "scenario: route flap would withdraw every path");
  }
  if (cfg.link_down.duration_rounds != 0 &&
      cfg.link_down.link + 1 >= cfg.domains.size()) {
    throw std::invalid_argument("scenario: link_down index out of range");
  }
  if (cfg.faults.delay_rate > 0.0 &&
      cfg.gap_patience_polls < cfg.faults.max_delay_ticks) {
    throw std::invalid_argument(
        "scenario: gap patience below the fault plan's max delay");
  }
  for (std::size_t i = 0; i < cfg.adversaries.size(); ++i) {
    (void)transit_index(cfg, cfg.adversaries[i].domain, "adversary domain");
    for (std::size_t j = i + 1; j < cfg.adversaries.size(); ++j) {
      if (cfg.adversaries[i].domain == cfg.adversaries[j].domain) {
        throw std::invalid_argument("scenario: duplicate adversary for '" +
                                    cfg.adversaries[i].domain + "'");
      }
    }
  }
  if (!cfg.loss_domain.empty()) {
    (void)transit_index(cfg, cfg.loss_domain, "loss domain");
  }
  if (!cfg.jitter_domain.empty()) {
    (void)transit_index(cfg, cfg.jitter_domain, "jitter domain");
  }
}

/// One merged observation, pre-sorted per hop/round before collector feed.
struct MergedObs {
  net::Packet packet;
  net::Timestamp when;
};

}  // namespace

bool ScenarioOutcome::honest_clean() const {
  for (const core::PathAnalysis& a : analysis) {
    if (!a.all_links_consistent() || !a.complete()) return false;
  }
  return true;
}

std::vector<std::pair<std::string, std::string>>
ScenarioOutcome::implicated_links() const {
  std::vector<std::pair<std::string, std::string>> out;
  for (const core::PathAnalysis& a : analysis) {
    for (const core::LinkFinding& l : a.links) {
      if (l.implicates_pair()) {
        out.emplace_back(l.upstream_domain, l.downstream_domain);
      }
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

double ScenarioOutcome::estimated_loss(const std::string& domain) const {
  std::uint64_t offered = 0;
  std::uint64_t delivered = 0;
  for (const core::PathAnalysis& a : analysis) {
    for (const core::DomainFinding& d : a.domains) {
      if (d.domain != domain) continue;
      offered += d.loss.offered;
      delivered += d.loss.delivered;
    }
  }
  return offered == 0 ? 0.0
                      : 1.0 - static_cast<double>(delivered) /
                                  static_cast<double>(offered);
}

double ScenarioOutcome::true_loss(const std::string& domain) const {
  std::size_t t = transit_domains.size();
  for (std::size_t i = 0; i < transit_domains.size(); ++i) {
    if (transit_domains[i] == domain) t = i;
  }
  if (t == transit_domains.size()) return 0.0;
  std::uint64_t offered = 0;
  std::uint64_t delivered = 0;
  for (const std::vector<DomainTruth>& per_path : truth) {
    offered += per_path[t].offered;
    delivered += per_path[t].delivered;
  }
  return offered == 0 ? 0.0
                      : 1.0 - static_cast<double>(delivered) /
                                  static_cast<double>(offered);
}

ScenarioOutcome run_scenario(const ScenarioConfig& cfg) {
  validate(cfg);

  const std::size_t n_domains = cfg.domains.size();
  const std::size_t n_hops = 2 * (n_domains - 1);
  const std::int64_t round_ns = cfg.round_length.nanoseconds();

  ScenarioOutcome out;
  out.repro = cfg.to_string();
  out.layout.hops.resize(n_hops);
  out.layout.domain_of.resize(n_hops);
  for (std::size_t pos = 0; pos < n_hops; ++pos) {
    out.layout.hops[pos] = static_cast<net::HopId>(pos + 1);
    out.layout.domain_of[pos] = cfg.domains[(pos + 1) / 2];
  }
  out.transit_domains.assign(cfg.domains.begin() + 1, cfg.domains.end() - 1);

  const std::size_t loss_d =
      cfg.loss == LossKind::kNone
          ? 0
          : (cfg.loss_domain.empty()
                 ? 1
                 : transit_index(cfg, cfg.loss_domain, "loss domain"));
  const std::size_t jitter_d =
      cfg.jitter_domain.empty()
          ? 0
          : transit_index(cfg, cfg.jitter_domain, "jitter domain");

  // --- traffic, filtered by the route-flap window -------------------------
  const trace::MultiPathTrace multi = trace::generate_multi_path(
      scenario::multi_path_config(cfg.paths, cfg.zipf_s,
                                  cfg.packets_per_second, cfg.round_length,
                                  cfg.rounds, cfg.seed));
  const std::size_t flap_first =
      cfg.route_flap.duration_rounds == 0 ? cfg.paths
                                          : cfg.paths - cfg.route_flap.paths;
  const std::size_t flap_start = cfg.route_flap.round;
  const std::size_t flap_end =
      cfg.route_flap.round + cfg.route_flap.duration_rounds;

  std::vector<net::Packet> fg_packets;   // merged, arrival order
  std::vector<std::size_t> fg_path;      // path of fg_packets[i]
  fg_packets.reserve(multi.packets.size());
  for (std::size_t i = 0; i < multi.packets.size(); ++i) {
    net::Packet p = multi.packets[i];
    p.origin_time = scenario::quantize_us(p.origin_time);
    const std::size_t r =
        scenario::round_of(p.origin_time, round_ns, cfg.rounds);
    const std::size_t path = multi.path_of[i];
    if (path >= flap_first && r >= flap_start && r < flap_end) continue;
    fg_packets.push_back(p);
    fg_path.push_back(path);
  }
  if (fg_packets.empty()) {
    throw std::invalid_argument("scenario: no traffic survives the config");
  }
  out.total_packets = fg_packets.size();

  // --- congestion delay/drop series (over the merged foreground) ----------
  CongestionResult congestion;
  if (cfg.loss == LossKind::kCongestion) {
    CongestionConfig ccfg;
    ccfg.bottleneck_bps = cfg.congestion_bps;
    ccfg.buffer_bytes = cfg.congestion_buffer;
    ccfg.seed = scenario::mix(cfg.seed ^ 0xC0963710ull);
    congestion = simulate_congestion(ccfg, fg_packets);
  }

  // --- propagate every path through the chain -----------------------------
  out.truth.assign(cfg.paths,
                   std::vector<DomainTruth>(out.transit_domains.size()));
  out.observed_packets.assign(n_hops,
                              std::vector<std::uint64_t>(cfg.paths, 0));
  out.wire_packets.assign(n_hops, std::vector<std::uint64_t>(cfg.paths, 0));

  // obs_by_round[pos][r]: merged observations, sorted by local time.
  std::vector<std::vector<std::vector<MergedObs>>> obs_by_round(
      n_hops, std::vector<std::vector<MergedObs>>(cfg.rounds));

  for (std::size_t p = 0; p < cfg.paths; ++p) {
    std::vector<net::Packet> path_trace;
    std::vector<std::size_t> to_fg;  // local packet index -> fg index
    for (std::size_t i = 0; i < fg_packets.size(); ++i) {
      if (fg_path[i] != p) continue;
      path_trace.push_back(fg_packets[i]);
      to_fg.push_back(i);
    }

    PathEnvironment env;
    env.seed = scenario::mix(cfg.seed ^ (0x9E3779B97F4A7C15ull + p));
    env.domains.resize(n_domains);
    env.links.resize(n_domains - 1);
    std::unique_ptr<loss::LossModel> loss_model;
    for (std::size_t d = 1; d + 1 < n_domains; ++d) {
      env.domains[d].delay_of = [delay = cfg.domain_delay](PacketIndex) {
        return delay;
      };
    }
    if (jitter_d != 0) env.domains[jitter_d].jitter = cfg.jitter;
    switch (cfg.loss) {
      case LossKind::kNone:
        break;
      case LossKind::kBernoulli:
        loss_model = std::make_unique<loss::BernoulliLoss>(
            cfg.loss_rate, scenario::mix(cfg.seed ^ (0xB10Bull + p)));
        env.domains[loss_d].loss = loss_model.get();
        break;
      case LossKind::kGilbertElliott:
        loss_model = std::make_unique<loss::GilbertElliott>(
            loss::GilbertElliott::with_target_loss(
                cfg.loss_rate, cfg.loss_burst,
                scenario::mix(cfg.seed ^ (0x6EB0ull + p))));
        env.domains[loss_d].loss = loss_model.get();
        break;
      case LossKind::kCongestion:
        env.domains[loss_d].delay_of = [&congestion, &to_fg](PacketIndex i) {
          return congestion.outcomes[to_fg[i]].delay;
        };
        env.domains[loss_d].drop_by_index = [&congestion,
                                             &to_fg](PacketIndex i) {
          return congestion.outcomes[to_fg[i]].dropped;
        };
        break;
    }
    for (std::size_t l = 0; l + 1 < n_domains; ++l) {
      env.links[l].delay = cfg.link_delay;
    }
    if (cfg.link_down.duration_rounds != 0) {
      const net::Timestamp t0{static_cast<std::int64_t>(cfg.link_down.round) *
                              round_ns};
      const net::Timestamp t1{
          static_cast<std::int64_t>(cfg.link_down.round +
                                    cfg.link_down.duration_rounds) *
          round_ns};
      env.links[cfg.link_down.link].targeted_drop =
          [t0, t1](const net::Packet& pkt) {
            return pkt.origin_time >= t0 && pkt.origin_time < t1;
          };
    }

    PathRunResult run = run_path(path_trace, env);
    out.delivered_packets += run.delivered;
    for (std::size_t d = 1; d + 1 < n_domains; ++d) {
      out.truth[p][d - 1].offered =
          run.hop_observations[PathEnvironment::ingress_hop(d)].size();
      out.truth[p][d - 1].delivered =
          run.hop_observations[PathEnvironment::egress_hop(d)].size();
    }
    for (std::size_t pos = 0; pos < n_hops; ++pos) {
      out.observed_packets[pos][p] = run.hop_observations[pos].size();
      for (const Obs& o : run.hop_observations[pos]) {
        // Bucket by OBSERVATION time, not origin round: a hop observes in
        // local-clock order, and feeding it anything else (origin-round
        // buckets overlap in `when` once jitter or queueing delay exceeds
        // the inter-packet gap) produces receipts with backward time steps
        // that the wire codec rightly rejects.  Stragglers past the last
        // boundary fold into the final round.
        const net::Timestamp when = scenario::quantize_us(o.when);
        const std::size_t r_obs = std::min<std::size_t>(
            cfg.rounds - 1,
            static_cast<std::size_t>(when.nanoseconds() / round_ns));
        obs_by_round[pos][r_obs].push_back(MergedObs{
            .packet = path_trace[o.pkt],
            .when = when,
        });
      }
    }
  }
  for (auto& per_hop : obs_by_round) {
    for (std::vector<MergedObs>& bucket : per_hop) {
      std::sort(bucket.begin(), bucket.end(),
                [](const MergedObs& a, const MergedObs& b) {
                  if (a.when != b.when) return a.when < b.when;
                  return a.packet.sequence < b.packet.sequence;
                });
    }
  }

  // --- collectors (rebuilt on route-flap transitions) ---------------------
  std::vector<collector::MonitoringCache::Config> hop_cfg(n_hops);
  for (std::size_t pos = 0; pos < n_hops; ++pos) {
    collector::MonitoringCache::Config c;
    c.protocol.digest_mode = cfg.digest_mode;
    c.protocol.marker_rate = cfg.marker_rate;
    c.protocol.marker_max_age = cfg.marker_max_age;
    c.tuning = cfg.tuning;
    c.self = out.layout.hops[pos];
    c.previous_hop = pos == 0 ? net::kNoHop : out.layout.hops[pos - 1];
    c.next_hop = pos + 1 == n_hops ? net::kNoHop : out.layout.hops[pos + 1];
    c.max_diff = cfg.max_diff;
    if (cfg.ttl_rounds != 0) {
      c.lifecycle = collector::LifecycleConfig{
          .evict_idle = true,
          .idle_ttl = cfg.round_length *
                      static_cast<std::int64_t>(cfg.ttl_rounds),
          .compact_garbage_fraction = 0.25,
          .decay_low_occupancy_drains = 2,
      };
    }
    hop_cfg[pos] = c;
  }

  std::vector<std::optional<collector::ShardedCollector>> collectors(n_hops);
  const auto build_collectors = [&](const std::vector<net::PrefixPair>& table) {
    for (std::size_t pos = 0; pos < n_hops; ++pos) {
      collector::ShardedCollector::Config scfg;
      scfg.cache = hop_cfg[pos];
      scfg.shard_count = cfg.shards;
      collectors[pos].emplace(scfg, table);
    }
  };
  const std::vector<net::PrefixPair> flap_table(
      multi.paths.begin(),
      multi.paths.begin() + static_cast<std::ptrdiff_t>(flap_first));
  build_collectors(multi.paths);

  // --- the wire: exporters -> faulty transports -> store ------------------
  dissem::ReceiptStore store;
  for (std::size_t pos = 0; pos < n_hops; ++pos) {
    store.register_producer(out.layout.hops[pos], kKey);
  }
  store.register_consumer("fleet");

  std::vector<std::optional<dissem::FaultyTransport>> transports(n_hops);
  for (std::size_t pos = 0; pos < n_hops; ++pos) {
    transports[pos].emplace(cfg.faults, cfg.fault_seed + pos,
                            [&store](dissem::Envelope&& e) {
                              (void)store.ingest(std::move(e));
                            });
  }

  bool faults_on = true;  // the closing drain ships on a clean wire
  std::vector<std::optional<dissem::WireExporter>> exporters(n_hops);
  for (std::size_t pos = 0; pos < n_hops; ++pos) {
    exporters[pos].emplace(
        dissem::WireExporter::Config{.producer = out.layout.hops[pos],
                                     .key = kKey,
                                     .max_chunk_bytes = cfg.max_chunk_bytes},
        [&transports, &store, &faults_on, pos](dissem::Envelope&& e) {
          if (faults_on) {
            transports[pos]->send(std::move(e));
          } else {
            (void)store.ingest(std::move(e));
          }
        });
  }

  // --- verifiers and the consumer fleet -----------------------------------
  const core::IncrementalPathVerifier::Config vcfg{
      .layout = out.layout,
      .retain_rounds = cfg.rounds + 16,
      .margin_boundaries = 2,
  };
  std::vector<core::IncrementalPathVerifier> verifiers;
  verifiers.reserve(cfg.paths);
  for (std::size_t p = 0; p < cfg.paths; ++p) verifiers.emplace_back(vcfg);

  std::vector<std::optional<dissem::WireImporter>> importers(n_hops);
  for (std::size_t pos = 0; pos < n_hops; ++pos) {
    importers[pos].emplace(scenario::path_table(hop_cfg[pos], multi.paths));
  }

  std::vector<std::vector<core::RoundGap>> raw_gaps(n_hops);
  std::vector<std::unique_ptr<dissem::FetchClient>> clients(n_hops);
  dissem::FetchClient::Stats fleet_stats;
  const auto build_client = [&](std::size_t pos) {
    dissem::FetchClient::Config ccfg;
    ccfg.consumer = "fleet";
    ccfg.producer = out.layout.hops[pos];
    ccfg.producer_name = out.layout.domain_of[pos];
    ccfg.hop = out.layout.hops[pos];
    ccfg.gap_patience_polls = cfg.gap_patience_polls;
    ccfg.seed = cfg.seed ^ (0xC11E57ull + pos);
    clients[pos] = std::make_unique<dissem::FetchClient>(
        *importers[pos], store, ccfg,
        [&verifiers, &out, pos](std::vector<core::IndexedPathDrain>&& groups) {
          for (core::IndexedPathDrain& g : groups) {
            for (const core::AggregateReceipt& a : g.drain.aggregates) {
              out.wire_packets[pos][g.path] += a.packet_count;
            }
            verifiers[g.path].add_round(out.layout.hops[pos],
                                        std::move(g.drain));
          }
        },
        [&raw_gaps, pos](core::RoundGap&& gap) {
          raw_gaps[pos].push_back(std::move(gap));
        });
  };
  const auto retire_client = [&](std::size_t pos) {
    scenario::add_stats(fleet_stats, clients[pos]->stats());
    clients[pos].reset();
  };
  for (std::size_t pos = 0; pos < n_hops; ++pos) build_client(pos);

  // --- adversary transform plumbing ---------------------------------------
  // adv_at[pos]: what the owning domain does to the drains this HOP
  // publishes.  Lies about traversal live at the egress HOP; a colluding
  // cover-up fabricates at the ingress HOP from the upstream neighbour's
  // PUBLISHED egress (one hop position earlier either way).
  std::vector<AdversaryKind> adv_at(n_hops, AdversaryKind::kHonest);
  for (const ScenarioAdversary& a : cfg.adversaries) {
    const std::size_t d = transit_index(cfg, a.domain, "adversary domain");
    const std::size_t pos = a.kind == AdversaryKind::kCoverUpstream
                                ? PathEnvironment::ingress_hop(d)
                                : PathEnvironment::egress_hop(d);
    adv_at[pos] = a.kind;
  }

  using Stream = std::vector<core::IndexedPathDrain>;
  const auto find_group = [](const Stream& s,
                             std::size_t path) -> const core::PathDrain* {
    for (const core::IndexedPathDrain& g : s) {
      if (g.path == path) return &g.drain;
    }
    return nullptr;
  };
  // A competent liar publishes a WELL-FORMED receipt: fabricated times
  // interleaved with real ones (hide-loss under variable delay) can step
  // backwards, and the wire codec rejects non-monotone sample times
  // outright — a self-incriminating lie the engine does not model.  Clamp
  // the published stream monotone; counts (and hence the aggregate-side
  // detection) are unchanged.
  const auto clamp_monotone = [](core::SampleReceipt& r) {
    for (std::size_t i = 1; i < r.samples.size(); ++i) {
      if (r.samples[i].time < r.samples[i - 1].time) {
        r.samples[i].time = r.samples[i - 1].time;
      }
    }
  };
  // Transform hop positions in ascending order, so a cover-up reads the
  // upstream liar's already-transformed (published) stream.
  const auto apply_adversaries = [&](std::vector<Stream>& streams) {
    for (std::size_t pos = 0; pos < n_hops; ++pos) {
      if (adv_at[pos] == AdversaryKind::kHonest) continue;
      for (core::IndexedPathDrain& g : streams[pos]) {
        switch (adv_at[pos]) {
          case AdversaryKind::kHideLoss: {
            const core::PathDrain* ingress =
                find_group(streams[pos - 1], g.path);
            if (ingress == nullptr) break;
            g.drain.samples = adversary::hide_loss_samples(
                g.drain.samples, ingress->samples, cfg.fake_delay);
            clamp_monotone(g.drain.samples);
            g.drain.aggregates = adversary::hide_loss_aggregates(
                g.drain.aggregates, ingress->aggregates);
            break;
          }
          case AdversaryKind::kUnderstateDelay:
            g.drain.samples =
                adversary::understate_delay(g.drain.samples, cfg.shave);
            break;
          case AdversaryKind::kCoverUpstream: {
            const core::PathDrain* upstream =
                find_group(streams[pos - 1], g.path);
            if (upstream == nullptr) break;
            g.drain.samples = adversary::cover_neighbor_samples(
                g.drain.samples, upstream->samples, cfg.link_delay);
            clamp_monotone(g.drain.samples);
            g.drain.aggregates = adversary::cover_neighbor_aggregates(
                g.drain.aggregates, upstream->aggregates, cfg.link_delay);
            break;
          }
          case AdversaryKind::kHonest:
            break;
        }
      }
    }
  };
  const auto publish = [&](std::vector<Stream>&& streams) {
    apply_adversaries(streams);
    for (std::size_t pos = 0; pos < n_hops; ++pos) {
      core::emit_stream(*exporters[pos], std::move(streams[pos]));
      exporters[pos]->end_round();
      exporters[pos]->flush();
      transports[pos]->tick();
    }
  };
  // Drain every HOP (flush_open): the route-flap rebuild boundary — open
  // receipts ship before the table changes, so nothing is orphaned.
  const auto flush_all = [&] {
    std::vector<Stream> streams(n_hops);
    for (std::size_t pos = 0; pos < n_hops; ++pos) {
      core::VectorSink sink;
      collectors[pos]->drain(sink, /*flush_open=*/true);
      streams[pos] = std::move(sink).take();
    }
    publish(std::move(streams));
  };

  // --- the rounds ---------------------------------------------------------
  for (std::size_t r = 0; r < cfg.rounds; ++r) {
    if (cfg.crash_every_rounds != 0 && r != 0 &&
        r % cfg.crash_every_rounds == 0) {
      for (std::size_t pos = 0; pos < n_hops; ++pos) {
        retire_client(pos);
        build_client(pos);
        ++out.client_rebuilds;
      }
    }
    if (cfg.route_flap.duration_rounds != 0) {
      // Withdraw one round AFTER the traffic stops: observations are
      // bucketed by local time, so packets in flight across the withdraw
      // boundary land in bucket flap_start and must still hit the old
      // table.  The restore needs no such grace — returning traffic is
      // observed strictly after its origin, never before the rebuild.
      if (r == flap_start + 1 && r < flap_end) {
        flush_all();
        build_collectors(flap_table);
      } else if (r == flap_end && flap_end > flap_start + 1) {
        flush_all();
        build_collectors(multi.paths);
      }
    }

    std::vector<Stream> streams(n_hops);
    for (std::size_t pos = 0; pos < n_hops; ++pos) {
      const std::vector<MergedObs>& bucket = obs_by_round[pos][r];
      std::vector<net::Packet> packets;
      std::vector<net::Timestamp> when;
      packets.reserve(bucket.size());
      when.reserve(bucket.size());
      for (const MergedObs& o : bucket) {
        packets.push_back(o.packet);
        when.push_back(o.when);
      }
      collectors[pos]->observe_batch(packets, when);

      core::VectorSink sink;
      collectors[pos]->drain(sink, /*flush_open=*/false);
      if (cfg.ttl_rounds != 0) {
        const net::Timestamp now{static_cast<std::int64_t>(r + 1) * round_ns};
        const collector::LifecycleReport report =
            collectors[pos]->run_lifecycle(now, sink);
        out.evicted_paths += report.evicted_paths;
      }
      streams[pos] = std::move(sink).take();
    }
    publish(std::move(streams));
    for (std::size_t pos = 0; pos < n_hops; ++pos) clients[pos]->poll();
  }

  // --- the clean closing drain --------------------------------------------
  // Tail losses are invisible until something arrives behind them: flush
  // the transports, then ship the final flush_open drain on a perfect
  // wire so every induced gap has a clean round to resync against.
  for (std::size_t pos = 0; pos < n_hops; ++pos) transports[pos]->flush();
  faults_on = false;
  {
    std::vector<Stream> streams(n_hops);
    for (std::size_t pos = 0; pos < n_hops; ++pos) {
      core::VectorSink sink;
      collectors[pos]->drain(sink, /*flush_open=*/true);
      streams[pos] = std::move(sink).take();
    }
    apply_adversaries(streams);
    for (std::size_t pos = 0; pos < n_hops; ++pos) {
      core::emit_stream(*exporters[pos], std::move(streams[pos]));
      exporters[pos]->finish();
    }
  }
  const std::size_t settle = cfg.gap_patience_polls + 16;
  for (std::size_t i = 0; i < settle; ++i) {
    for (std::size_t pos = 0; pos < n_hops; ++pos) clients[pos]->poll();
  }
  for (std::size_t pos = 0; pos < n_hops; ++pos) {
    clients[pos]->finalize();
    retire_client(pos);
  }

  // --- gap bookkeeping -----------------------------------------------------
  // Wire path keys are hop-agnostic (prefix pair + header spec), so one
  // importer's table attributes every hop's gaps.
  std::unordered_map<std::uint64_t, std::size_t> index_of_key;
  for (std::size_t p = 0; p < cfg.paths; ++p) {
    index_of_key[importers[0]->path_at(p).path_key()] = p;
  }
  out.gaps.assign(n_hops, {});
  for (std::size_t pos = 0; pos < n_hops; ++pos) {
    out.gaps[pos] = scenario::dedupe_gaps(std::move(raw_gaps[pos]));
    for (const core::RoundGap& g : out.gaps[pos]) {
      for (std::uint64_t key : g.affected_paths) {
        const auto it = index_of_key.find(key);
        if (it != index_of_key.end()) verifiers[it->second].report_gap(g);
      }
    }
  }

  // --- analyses and end state ---------------------------------------------
  out.analysis.reserve(cfg.paths);
  for (std::size_t p = 0; p < cfg.paths; ++p) {
    out.analysis.push_back(verifiers[p].analyze());
    out.expired_unmatched += verifiers[p].resident_stats().expired_unmatched;
  }
  for (std::size_t pos = 0; pos < n_hops; ++pos) {
    out.consumer_lag_end.push_back(
        store.consumer_lag("fleet", out.layout.hops[pos]));
    const dissem::FaultStats ts = transports[pos]->stats();
    out.envelopes_destroyed += ts.dropped + ts.corrupted;
    out.envelopes_duplicated += ts.duplicated;
  }
  out.store_envelopes_end = store.stored_envelopes();
  out.store_rejected = store.rejected_count();
  out.store_gc_erased = store.gc_erased_count();
  out.ack_rejections = fleet_stats.ack_rejections;
  out.gaps_reported = fleet_stats.gaps_reported;
  out.groups_delivered = fleet_stats.groups_delivered;
  return out;
}

}  // namespace vpm::sim
