// The Figure-1 topology: named domains S, L, X, N, D with HOPs 1..8, and a
// builder for the corresponding PathEnvironment.
//
// This gives tests/examples the paper's running example: "domain S sends
// to domain D a packet set via HOPs 1 to 8", where L, X, N are transit
// domains and X is the one under scrutiny.
#ifndef VPM_SIM_TOPOLOGY_HPP
#define VPM_SIM_TOPOLOGY_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "net/path_id.hpp"
#include "sim/path_run.hpp"

namespace vpm::sim {

using DomainIndex = std::size_t;

struct DomainInfo {
  std::string name;
  DomainIndex index = 0;
};

/// Static description of a linear domain-level path.
class PathTopology {
 public:
  /// Throws std::invalid_argument with fewer than two domain names.
  explicit PathTopology(std::vector<std::string> domain_names);

  /// The paper's example: S -> L -> X -> N -> D (HOPs 1..8).
  [[nodiscard]] static PathTopology figure_one();

  [[nodiscard]] std::size_t domain_count() const noexcept {
    return names_.size();
  }
  [[nodiscard]] std::size_t hop_count() const noexcept {
    return 2 * (names_.size() - 1);
  }
  [[nodiscard]] const std::string& domain_name(DomainIndex d) const {
    return names_.at(d);
  }
  /// Paper-style 1-based HOP number for a hop position (0-based).
  [[nodiscard]] static std::uint32_t hop_number(std::size_t hop_pos) noexcept {
    return static_cast<std::uint32_t>(hop_pos + 1);
  }
  /// Globally unique HopId for a hop position.
  [[nodiscard]] net::HopId hop_id(std::size_t hop_pos) const;
  /// Which domain owns the HOP at `hop_pos`.
  [[nodiscard]] DomainIndex domain_of_hop(std::size_t hop_pos) const;
  /// True if `hop_pos` is an ingress HOP of its domain (on this path).
  [[nodiscard]] static bool is_ingress(std::size_t hop_pos) noexcept {
    return hop_pos % 2 == 1;
  }

  /// A PathEnvironment skeleton with this many domains/links, default
  /// (lossless, constant-delay) behaviour, and zero clock offsets.
  [[nodiscard]] PathEnvironment make_environment(std::uint64_t seed) const;

 private:
  std::vector<std::string> names_;
};

}  // namespace vpm::sim

#endif  // VPM_SIM_TOPOLOGY_HPP
