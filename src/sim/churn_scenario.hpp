// Long-run churn scenario: the epoch lifecycle driven end-to-end.
//
// One call simulates `rounds` reporting rounds of a three-HOP path segment
// (A,B in domain "alpha"; C in domain "beta") under a CHURNING path
// population: a stable core of paths sends traffic every round, while a
// rotating set of churn paths arrives, lives for a few rounds, expires and
// is later replaced (≥30% of the live set at any time).  The same traffic
// runs through two parallel deployments:
//
//   churn run    ShardedCollector per HOP with TTL eviction + arena
//                compaction at every round's lifecycle pass, drained
//                through WireExporter -> ReceiptStore (named consumers,
//                per-consumer cursors, GC by slowest consumer) ->
//                WireImporter::Session -> DrainRoundSink ->
//                IncrementalPathVerifier per path;
//
//   reference    plain MonitoringCache per HOP, nothing evicted, store
//                never GC'd (no consumers), materialized PathVerifier fed
//                the same rounds.
//
// The churn-soak suite asserts on the result: receipts and PathAnalysis
// findings of CONTINUOUSLY-LIVE paths identical between the runs, and the
// churn run's resident bytes (arenas, store, verifier tails) reaching a
// plateau while the reference grows with history.
#ifndef VPM_SIM_CHURN_SCENARIO_HPP
#define VPM_SIM_CHURN_SCENARIO_HPP

#include <cstddef>
#include <cstdint>
#include <vector>

#include "collector/monitoring_cache.hpp"
#include "core/config.hpp"
#include "core/receipt.hpp"
#include "core/verifier.hpp"
#include "net/digest.hpp"
#include "net/time.hpp"

namespace vpm::sim {

struct ChurnScenarioConfig {
  // Path population.  The routing table holds every path that will ever
  // exist (paths are learned from routing, not data); the schedule below
  // decides who sends traffic each round.
  std::size_t path_count = 36;      ///< routing-table size (all paths ever)
  std::size_t stable_paths = 12;    ///< continuously-live core
  std::size_t churn_live = 6;       ///< concurrently-live churning paths
  std::size_t churn_lifetime_rounds = 6;  ///< rounds a churning path lives

  // Reporting cadence and traffic shape.
  std::size_t rounds = 52;
  net::Duration round_length = net::milliseconds(40);
  double total_packets_per_second = 50'000.0;
  double zipf_s = 0.6;
  std::uint64_t seed = 1;

  // Collector shape.
  net::DigestMode digest_mode = net::DigestMode::kIndependent;
  double marker_rate = 1.0 / 100.0;
  core::HopTuning tuning{.sample_rate = 0.05, .cut_rate = 2e-3};
  std::size_t shard_count = 1;

  // Lifecycle knobs (the churn run only).
  std::size_t ttl_rounds = 3;  ///< evict after this many idle rounds
  double compact_garbage_fraction = 0.25;
  /// Live-capacity decay: halve a live path's slice once it has sat below
  /// a quarter occupancy for this many consecutive lifecycle passes —
  /// pins the long-run memory plateau flat instead of at the burst peak.
  /// 0 disables.
  std::uint32_t decay_low_occupancy_drains = 2;

  // Store consumers: "verifier" fetches+acks every round; "archiver"
  // lags, bounding retained envelopes by its cursor.
  std::size_t archiver_lag_rounds = 5;

  // Incremental verifier retention.
  std::uint64_t retain_rounds = 4;
  std::size_t margin_boundaries = 2;

  // Per-hop observation delay: base per hop plus a small constant
  // per-path offset (µs-aligned so wire time quantisation is exact).
  net::Duration hop_delay = net::microseconds(400);
  std::size_t delay_spread_us = 32;
};

struct ChurnRoundMetrics {
  // Resident bytes after the round's drain + lifecycle pass.
  std::size_t churn_arena_bytes = 0;  ///< summed over the 3 churn HOPs
  std::size_t churn_arena_live_bytes = 0;
  std::size_t ref_arena_bytes = 0;    ///< summed over the 3 reference HOPs
  std::size_t store_envelopes = 0;
  std::size_t store_payload_bytes = 0;
  std::size_t ref_store_payload_bytes = 0;  ///< no-GC store, same stream
  std::size_t verifier_tail_receipts = 0;   ///< summed over path verifiers
  std::size_t verifier_pending = 0;  ///< ingress entries + pending rounds
  std::size_t evicted_cumulative = 0;
};

struct ChurnScenarioResult {
  core::PathLayout layout;
  std::size_t stable_paths = 0;
  std::vector<ChurnRoundMetrics> per_round;

  /// Per [hop][path]: the recovered wire stream of the churn run and the
  /// reference run's direct drains, each concatenated across rounds.
  std::vector<std::vector<core::PathDrain>> churn_concat;
  std::vector<std::vector<core::PathDrain>> ref_concat;

  /// Per path: IncrementalPathVerifier (churn, round-fed off the wire)
  /// vs materialized PathVerifier (reference) findings.
  std::vector<core::PathAnalysis> churn_analysis;
  std::vector<core::PathAnalysis> ref_analysis;

  collector::LifecycleReport lifecycle_totals;  ///< summed over churn HOPs
  std::size_t store_accepted = 0;
  std::size_t store_gc_erased = 0;
  std::uint64_t verifier_expired_unmatched = 0;
  std::uint64_t total_packets = 0;

  /// True for paths that sent traffic every round (the equality set).
  [[nodiscard]] bool continuously_live(std::size_t path) const {
    return path < stable_paths;
  }
};

/// Run one churn scenario.  Throws on infeasible configs (propagated from
/// the collector/trace/lifecycle layers).
[[nodiscard]] ChurnScenarioResult run_churn_scenario(
    const ChurnScenarioConfig& cfg);

}  // namespace vpm::sim

#endif  // VPM_SIM_CHURN_SCENARIO_HPP
