#include "sim/event_queue.hpp"

#include <stdexcept>
#include <string>

namespace vpm::sim {

void EventQueue::schedule(net::Timestamp t, Handler fn) {
  if (t < now_) {
    throw std::invalid_argument(
        "EventQueue::schedule into the past: t=" +
        std::to_string(t.nanoseconds()) +
        "ns, now=" + std::to_string(now_.nanoseconds()) + "ns");
  }
  heap_.push(Event{t, next_seq_++, std::move(fn)});
}

void EventQueue::run_until(net::Timestamp end) {
  while (!heap_.empty() && heap_.top().at <= end) {
    // Copy out before pop: the handler may schedule new events.
    Event ev = heap_.top();
    heap_.pop();
    now_ = ev.at;
    ++executed_;
    ev.fn();
  }
  if (now_ < end) now_ = end;
}

void EventQueue::run() {
  while (!heap_.empty()) {
    Event ev = heap_.top();
    heap_.pop();
    now_ = ev.at;
    ++executed_;
    ev.fn();
  }
}

}  // namespace vpm::sim
