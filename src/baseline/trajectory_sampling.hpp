// Trajectory Sampling ++ (Section 3.2): real-time hash-range sampling.
//
// Each HOP samples packet p iff Digest(p) > threshold — decidable the
// moment p is observed.  That immediacy is exactly the vulnerability the
// paper identifies: "if domain X treats the sampled packets preferentially
// ... X's estimated performance will be higher than its actual
// performance", and colluding neighbours can bias the same set so their
// receipts stay consistent.  The predictability predicate is exposed so
// the adversary library can mount the bias attack the ablation bench
// quantifies against VPM's sampler.
#ifndef VPM_BASELINE_TRAJECTORY_SAMPLING_HPP
#define VPM_BASELINE_TRAJECTORY_SAMPLING_HPP

#include <cstdint>
#include <vector>

#include "core/receipt.hpp"
#include "net/digest.hpp"
#include "net/packet.hpp"
#include "net/time.hpp"

namespace vpm::baseline {

class TrajectorySampler {
 public:
  /// `threshold` plays the role of the TS hash-range bound; use
  /// net::rate_to_threshold(rate).
  TrajectorySampler(const net::DigestEngine& engine,
                    std::uint32_t threshold) noexcept
      : engine_(engine), threshold_(threshold) {}

  /// The real-time sampling decision — computable by anyone holding the
  /// packet, including a cheating forwarder.
  [[nodiscard]] bool would_sample(const net::Packet& p) const noexcept {
    return engine_.packet_id(p) > threshold_;
  }

  void observe(const net::Packet& p, net::Timestamp when) {
    ++observed_;
    if (would_sample(p)) {
      records_.push_back(core::SampleRecord{
          .pkt_id = engine_.packet_id(p), .time = when, .is_marker = false});
    }
  }

  [[nodiscard]] std::vector<core::SampleRecord> take_records() {
    std::vector<core::SampleRecord> out;
    out.swap(records_);
    return out;
  }
  [[nodiscard]] std::uint64_t observed_packets() const noexcept {
    return observed_;
  }

 private:
  net::DigestEngine engine_;
  std::uint32_t threshold_;
  std::vector<core::SampleRecord> records_;
  std::uint64_t observed_ = 0;
};

}  // namespace vpm::baseline

#endif  // VPM_BASELINE_TRAJECTORY_SAMPLING_HPP
