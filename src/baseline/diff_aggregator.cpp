#include "baseline/diff_aggregator.hpp"

#include <unordered_map>

namespace vpm::baseline {

void DiffAggregator::observe(const net::Packet& p, net::Timestamp when) {
  const net::PacketDigest id = engine_.packet_id(p);
  if (open_.has_value() && engine_.cut_value(p) > cut_threshold_) {
    closed_.push_back(*open_);
    open_.reset();
  }
  if (!open_) {
    open_ = LdaAggregate{.first = id, .count = 0, .time_sum_ns = 0};
  }
  ++open_->count;
  open_->time_sum_ns += when.nanoseconds();
}

std::vector<LdaAggregate> DiffAggregator::take_closed() {
  std::vector<LdaAggregate> out;
  out.swap(closed_);
  return out;
}

std::optional<LdaAggregate> DiffAggregator::flush_open() {
  std::optional<LdaAggregate> out;
  out.swap(open_);
  return out;
}

LdaDomainStats lda_domain_stats(const std::vector<LdaAggregate>& ingress,
                                const std::vector<LdaAggregate>& egress) {
  LdaDomainStats stats;
  std::unordered_map<net::PacketDigest, const LdaAggregate*> by_cut;
  by_cut.reserve(egress.size() * 2);
  for (const LdaAggregate& a : egress) by_cut.emplace(a.first, &a);

  double delay_sum_ms = 0.0;
  std::uint64_t delay_packets = 0;
  for (const LdaAggregate& in : ingress) {
    stats.offered += in.count;
    const auto it = by_cut.find(in.first);
    if (it == by_cut.end()) {
      ++stats.unusable_aggregates;
      continue;
    }
    const LdaAggregate& out = *it->second;
    stats.delivered += out.count;
    if (in.count == out.count && in.count > 0) {
      // LDA identity: sum(out times) - sum(in times) = sum of delays.
      ++stats.usable_aggregates;
      const double total_delay_ms =
          static_cast<double>(out.time_sum_ns - in.time_sum_ns) / 1e6;
      delay_sum_ms += total_delay_ms;
      delay_packets += in.count;
    } else {
      // Loss (or reorder-shifted membership) poisons the sums: no delay
      // information from this aggregate (Kompella et al.'s core caveat).
      ++stats.unusable_aggregates;
    }
  }
  if (delay_packets > 0) {
    stats.avg_delay_ms = delay_sum_ms / static_cast<double>(delay_packets);
  }
  return stats;
}

}  // namespace vpm::baseline
