// Difference Aggregator ++ (Section 3.3): Lossy-Difference-Aggregator-style
// per-aggregate counters with hash-chosen cutting points.
//
// Each HOP keeps, per aggregate, a packet count and a *sum of timestamps*
// (LDA's trick: if two HOPs count the same packets, the difference of
// their timestamp sums divided by the count is the exact average delay).
// Aggregates are cut exactly like VPM's (digest > threshold), but there is
// no AggTrans window — so reordering across a cut silently corrupts both
// the counts and the sums, and delay *quantiles* are unobtainable: only
// the average survives.  Both failure modes (the paper's two
// computability complaints) are demonstrated by tests and the reorder
// ablation bench.
#ifndef VPM_BASELINE_DIFF_AGGREGATOR_HPP
#define VPM_BASELINE_DIFF_AGGREGATOR_HPP

#include <cstdint>
#include <optional>
#include <vector>

#include "net/digest.hpp"
#include "net/packet.hpp"
#include "net/time.hpp"

namespace vpm::baseline {

struct LdaAggregate {
  net::PacketDigest first = 0;  ///< cutting packet that opened it
  std::uint64_t count = 0;
  /// Sum of observation timestamps, nanoseconds.
  std::int64_t time_sum_ns = 0;
};

class DiffAggregator {
 public:
  DiffAggregator(const net::DigestEngine& engine,
                 std::uint32_t cut_threshold) noexcept
      : engine_(engine), cut_threshold_(cut_threshold) {}

  void observe(const net::Packet& p, net::Timestamp when);

  /// Closed aggregates so far.
  [[nodiscard]] std::vector<LdaAggregate> take_closed();
  /// Close and return the open aggregate.
  [[nodiscard]] std::optional<LdaAggregate> flush_open();

 private:
  net::DigestEngine engine_;
  std::uint32_t cut_threshold_;
  std::optional<LdaAggregate> open_;
  std::vector<LdaAggregate> closed_;
};

/// Average-delay / loss extraction from two aligned aggregate streams.
struct LdaDomainStats {
  std::uint64_t offered = 0;
  std::uint64_t delivered = 0;
  /// Aggregates whose counts matched (only those yield delay info).
  std::size_t usable_aggregates = 0;
  std::size_t unusable_aggregates = 0;
  /// Mean delay over usable aggregates, ms (nullopt if none usable).
  std::optional<double> avg_delay_ms;

  [[nodiscard]] double loss_rate() const noexcept {
    return offered == 0
               ? 0.0
               : 1.0 - static_cast<double>(delivered) /
                           static_cast<double>(offered);
  }
};

/// Pairs aggregates by their opening cut id (no join, no patch-up — that
/// is the point of the baseline) and extracts loss + average delay.
[[nodiscard]] LdaDomainStats lda_domain_stats(
    const std::vector<LdaAggregate>& ingress,
    const std::vector<LdaAggregate>& egress);

}  // namespace vpm::baseline

#endif  // VPM_BASELINE_DIFF_AGGREGATOR_HPP
