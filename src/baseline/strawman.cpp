#include "baseline/strawman.hpp"

#include <unordered_map>

namespace vpm::baseline {

StrawmanDomainStats strawman_domain_stats(
    const std::vector<core::SampleRecord>& ingress,
    const std::vector<core::SampleRecord>& egress) {
  StrawmanDomainStats stats;
  stats.offered = ingress.size();
  std::unordered_map<net::PacketDigest, net::Timestamp> in_time;
  in_time.reserve(ingress.size() * 2);
  for (const core::SampleRecord& r : ingress) {
    in_time.emplace(r.pkt_id, r.time);
  }
  stats.delays_ms.reserve(egress.size());
  for (const core::SampleRecord& r : egress) {
    const auto it = in_time.find(r.pkt_id);
    if (it == in_time.end()) continue;
    ++stats.delivered;
    stats.delays_ms.push_back((r.time - it->second).milliseconds());
  }
  return stats;
}

}  // namespace vpm::baseline
