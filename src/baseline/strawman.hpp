// The strawman protocol (Section 3.1): a receipt for every single packet.
//
// Packet Obituaries-style: each HOP records <PktID, Time> for *all*
// observed packets.  Computability and verifiability are perfect; the
// point of implementing it is (a) as ground-truth-grade reference for
// tests, and (b) to quantify the per-packet state cost that motivates VPM
// (Section 3.1, "Tunability: this is where the strawman fails").
#ifndef VPM_BASELINE_STRAWMAN_HPP
#define VPM_BASELINE_STRAWMAN_HPP

#include <cstdint>
#include <vector>

#include "core/receipt.hpp"
#include "net/digest.hpp"
#include "net/packet.hpp"
#include "net/time.hpp"

namespace vpm::baseline {

/// One HOP's strawman monitor: remembers every packet.
class StrawmanMonitor {
 public:
  explicit StrawmanMonitor(const net::DigestEngine& engine) noexcept
      : engine_(engine) {}

  void observe(const net::Packet& p, net::Timestamp when) {
    records_.push_back(core::SampleRecord{
        .pkt_id = engine_.packet_id(p), .time = when, .is_marker = false});
  }

  [[nodiscard]] const std::vector<core::SampleRecord>& records()
      const noexcept {
    return records_;
  }
  /// State bytes a router would need (7 B per record, like the temp
  /// buffer) — but for the *whole reporting period*, not a 2J window.
  [[nodiscard]] std::size_t state_bytes() const noexcept {
    return records_.size() * 7;
  }

 private:
  net::DigestEngine engine_;
  std::vector<core::SampleRecord> records_;
};

/// Exact per-domain statistics from two strawman record streams.
struct StrawmanDomainStats {
  std::uint64_t offered = 0;
  std::uint64_t delivered = 0;
  std::vector<double> delays_ms;  ///< every delivered packet's delay

  [[nodiscard]] double loss_rate() const noexcept {
    return offered == 0
               ? 0.0
               : 1.0 - static_cast<double>(delivered) /
                           static_cast<double>(offered);
  }
};

[[nodiscard]] StrawmanDomainStats strawman_domain_stats(
    const std::vector<core::SampleRecord>& ingress,
    const std::vector<core::SampleRecord>& egress);

}  // namespace vpm::baseline

#endif  // VPM_BASELINE_STRAWMAN_HPP
