// Delay-quantile estimation from samples, after Sommers et al. [20].
//
// Section 2.2 (Computability): VPM must support statements like "domain X
// introduced delay below 5 msec to 90% of the traffic with probability
// pi".  Given the delays of the commonly-sampled packets, we estimate the
// q-quantile as an order statistic and attach a binomial confidence
// interval; the interval half-width is the "accuracy" that Figure 2 plots.
#ifndef VPM_STATS_QUANTILE_HPP
#define VPM_STATS_QUANTILE_HPP

#include <cstddef>
#include <span>
#include <vector>

namespace vpm::stats {

/// A quantile estimate with its confidence interval.
struct QuantileEstimate {
  double quantile = 0.0;    ///< which quantile (e.g. 0.9)
  double value = 0.0;       ///< estimated quantile value
  double lower = 0.0;       ///< confidence interval lower bound
  double upper = 0.0;       ///< confidence interval upper bound
  std::size_t samples = 0;  ///< number of samples the estimate used

  /// Half-width of the confidence interval: the estimation "accuracy".
  [[nodiscard]] double accuracy() const { return (upper - lower) / 2.0; }

  friend bool operator==(const QuantileEstimate&,
                         const QuantileEstimate&) = default;
};

/// Accumulates sample values (delays) and answers quantile queries.
class QuantileEstimator {
 public:
  void add(double value) { values_.push_back(value); }
  void add_all(std::span<const double> values) {
    values_.insert(values_.end(), values.begin(), values.end());
  }

  [[nodiscard]] std::size_t count() const noexcept { return values_.size(); }
  [[nodiscard]] bool empty() const noexcept { return values_.empty(); }

  /// Estimate the q-quantile at the given confidence level.  Throws
  /// std::logic_error if no samples were added.
  [[nodiscard]] QuantileEstimate estimate(double q,
                                          double confidence = 0.95) const;

  /// Estimate several quantiles at once (single sort).
  [[nodiscard]] std::vector<QuantileEstimate> estimate_many(
      std::span<const double> quantiles, double confidence = 0.95) const;

 private:
  // Sorted lazily on query; mutable cache keeps add() O(1).
  void ensure_sorted() const;
  std::vector<double> values_;
  mutable std::vector<double> sorted_;
  mutable bool sorted_valid_ = false;
};

/// Exact empirical quantile of a *sorted* array (nearest-rank definition).
/// Throws std::logic_error on empty input, std::invalid_argument on q
/// outside [0,1] or unsorted detection is the caller's responsibility.
[[nodiscard]] double sorted_quantile(std::span<const double> sorted, double q);

/// Exact empirical quantile of an unsorted array (copies and sorts).
[[nodiscard]] double quantile_of(std::span<const double> values, double q);

}  // namespace vpm::stats

#endif  // VPM_STATS_QUANTILE_HPP
