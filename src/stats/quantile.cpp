#include "stats/quantile.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

#include "stats/binomial.hpp"

namespace vpm::stats {

double sorted_quantile(std::span<const double> sorted, double q) {
  if (sorted.empty()) {
    throw std::logic_error("quantile of empty sample set");
  }
  if (q < 0.0 || q > 1.0) {
    throw std::invalid_argument("quantile " + std::to_string(q) +
                                " outside [0,1]");
  }
  // Nearest-rank: the smallest value with empirical CDF >= q.
  const double nd = static_cast<double>(sorted.size());
  std::size_t rank = static_cast<std::size_t>(std::ceil(q * nd));
  if (rank > 0) --rank;  // 1-based rank -> 0-based index
  if (rank >= sorted.size()) rank = sorted.size() - 1;
  return sorted[rank];
}

double quantile_of(std::span<const double> values, double q) {
  std::vector<double> copy(values.begin(), values.end());
  std::sort(copy.begin(), copy.end());
  return sorted_quantile(copy, q);
}

void QuantileEstimator::ensure_sorted() const {
  if (sorted_valid_ && sorted_.size() == values_.size()) return;
  sorted_ = values_;
  std::sort(sorted_.begin(), sorted_.end());
  sorted_valid_ = true;
}

QuantileEstimate QuantileEstimator::estimate(double q,
                                             double confidence) const {
  if (values_.empty()) {
    throw std::logic_error("QuantileEstimator::estimate with no samples");
  }
  ensure_sorted();
  const IndexInterval idx =
      quantile_index_interval(sorted_.size(), q, confidence);
  return QuantileEstimate{
      .quantile = q,
      .value = sorted_quantile(sorted_, q),
      .lower = sorted_[idx.lo],
      .upper = sorted_[idx.hi],
      .samples = sorted_.size(),
  };
}

std::vector<QuantileEstimate> QuantileEstimator::estimate_many(
    std::span<const double> quantiles, double confidence) const {
  std::vector<QuantileEstimate> out;
  out.reserve(quantiles.size());
  for (const double q : quantiles) {
    out.push_back(estimate(q, confidence));
  }
  return out;
}

}  // namespace vpm::stats
