// The Figure-2 scoring metric: how accurately a verifier's sample-based
// delay-quantile estimates match the ground-truth delay distribution.
//
// The paper reports a single "Delay Accuracy [msec]" number per
// configuration.  We score it as the worst-case disagreement between the
// estimated and true quantile values over a fixed quantile grid — the
// natural reading of "delay performance is estimated with an accuracy of
// 2 msec" — and also expose per-quantile errors and confidence half-widths
// for EXPERIMENTS.md.
#ifndef VPM_STATS_DELAY_ACCURACY_HPP
#define VPM_STATS_DELAY_ACCURACY_HPP

#include <array>
#include <span>
#include <vector>

namespace vpm::stats {

/// Quantile grid used for delay scoring throughout the reproduction.
inline constexpr std::array<double, 5> kDelayQuantiles = {0.50, 0.75, 0.90,
                                                          0.95, 0.99};

struct QuantileError {
  double quantile = 0.0;
  double true_value = 0.0;
  double estimated = 0.0;
  double abs_error = 0.0;
  double ci_half_width = 0.0;
};

struct DelayAccuracyReport {
  /// max over the quantile grid of |estimate - truth| (the Fig. 2 y-axis).
  double worst_abs_error = 0.0;
  /// mean over the quantile grid of |estimate - truth|.
  double mean_abs_error = 0.0;
  /// max CI half-width (the [20]-style reported confidence bound).
  double worst_ci_half_width = 0.0;
  std::size_t samples_used = 0;
  std::vector<QuantileError> per_quantile;
};

/// Score sampled delays against ground-truth delays (both in the same
/// unit, conventionally milliseconds).  `true_delays` is the delay of
/// every delivered packet; `sampled_delays` the subset the verifier saw.
/// `quantiles` defaults to the kDelayQuantiles grid.  Throws
/// std::invalid_argument if either input is empty.
[[nodiscard]] DelayAccuracyReport score_delay_estimate(
    std::span<const double> true_delays, std::span<const double> sampled_delays,
    double confidence = 0.95,
    std::span<const double> quantiles = kDelayQuantiles);

}  // namespace vpm::stats

#endif  // VPM_STATS_DELAY_ACCURACY_HPP
