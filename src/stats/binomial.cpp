#include "stats/binomial.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

namespace vpm::stats {
namespace {

// Inverse of the standard normal CDF (Acklam's rational approximation,
// |relative error| < 1.15e-9 — far below anything these experiments need).
double inverse_normal_cdf(double p) {
  if (p <= 0.0 || p >= 1.0) {
    throw std::invalid_argument("inverse_normal_cdf: p outside (0,1)");
  }
  static constexpr double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                                 -2.759285104469687e+02, 1.383577518672690e+02,
                                 -3.066479806614716e+01, 2.506628277459239e+00};
  static constexpr double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                                 -1.556989798598866e+02, 6.680131188771972e+01,
                                 -1.328068155288572e+01};
  static constexpr double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                                 -2.400758277161838e+00, -2.549732539343734e+00,
                                 4.374664141464968e+00,  2.938163982698783e+00};
  static constexpr double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                                 2.445134137142996e+00, 3.754408661907416e+00};
  constexpr double p_low = 0.02425;
  constexpr double p_high = 1.0 - p_low;

  if (p < p_low) {
    const double q = std::sqrt(-2.0 * std::log(p));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
            c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  if (p <= p_high) {
    const double q = p - 0.5;
    const double r = q * q;
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r +
            a[5]) *
           q /
           (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r +
            1.0);
  }
  const double q = std::sqrt(-2.0 * std::log(1.0 - p));
  return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
           c[5]) /
         ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
}

}  // namespace

double z_value(double confidence) {
  if (confidence <= 0.0 || confidence >= 1.0) {
    throw std::invalid_argument("confidence " + std::to_string(confidence) +
                                " outside (0,1)");
  }
  return inverse_normal_cdf(0.5 + confidence / 2.0);
}

IndexInterval quantile_index_interval(std::size_t n, double q,
                                      double confidence) {
  if (q < 0.0 || q > 1.0) {
    throw std::invalid_argument("quantile " + std::to_string(q) +
                                " outside [0,1]");
  }
  if (n == 0) return IndexInterval{0, 0};
  const double z = z_value(confidence);
  const double nd = static_cast<double>(n);
  const double center = q * nd;
  const double half = z * std::sqrt(nd * q * (1.0 - q));
  const double lo = std::floor(center - half);
  const double hi = std::ceil(center + half);
  const auto clamp_idx = [n](double v) {
    if (v < 0.0) return std::size_t{0};
    if (v >= static_cast<double>(n)) return n - 1;
    return static_cast<std::size_t>(v);
  };
  return IndexInterval{clamp_idx(lo), clamp_idx(hi)};
}

ProportionInterval wilson_interval(std::size_t successes, std::size_t trials,
                                   double confidence) {
  if (trials == 0) return ProportionInterval{0.0, 0.0, 1.0};
  if (successes > trials) {
    throw std::invalid_argument("successes > trials");
  }
  const double z = z_value(confidence);
  const double n = static_cast<double>(trials);
  const double phat = static_cast<double>(successes) / n;
  const double z2 = z * z;
  const double denom = 1.0 + z2 / n;
  const double center = (phat + z2 / (2.0 * n)) / denom;
  const double half =
      z * std::sqrt(phat * (1.0 - phat) / n + z2 / (4.0 * n * n)) / denom;
  return ProportionInterval{phat, std::max(0.0, center - half),
                            std::min(1.0, center + half)};
}

}  // namespace vpm::stats
