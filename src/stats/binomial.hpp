// Binomial / normal-approximation confidence machinery.
//
// The delay-quantile estimation technique VPM borrows from Sommers et
// al. [20] reports a quantile estimate with a confidence interval derived
// from order statistics of the sampled delays; the interval endpoints are
// binomial quantiles.  This header provides the z-values and interval
// index computations, plus a Wilson score interval for loss proportions.
#ifndef VPM_STATS_BINOMIAL_HPP
#define VPM_STATS_BINOMIAL_HPP

#include <cstddef>

namespace vpm::stats {

/// Two-sided standard-normal critical value for the given confidence level
/// (e.g. 0.95 -> 1.96).  Throws std::invalid_argument outside (0,1).
[[nodiscard]] double z_value(double confidence);

/// Order-statistic index bounds for a q-quantile confidence interval over n
/// samples: [lo, hi] are 0-based indices into the *sorted* sample array
/// such that P(x_(lo) <= Q_q <= x_(hi)) >= confidence under the binomial
/// model.  Indices are clamped to [0, n-1].
struct IndexInterval {
  std::size_t lo = 0;
  std::size_t hi = 0;
};
[[nodiscard]] IndexInterval quantile_index_interval(std::size_t n, double q,
                                                    double confidence);

/// Wilson score interval for a proportion (successes / trials).
struct ProportionInterval {
  double estimate = 0.0;
  double lower = 0.0;
  double upper = 0.0;
};
[[nodiscard]] ProportionInterval wilson_interval(std::size_t successes,
                                                 std::size_t trials,
                                                 double confidence);

}  // namespace vpm::stats

#endif  // VPM_STATS_BINOMIAL_HPP
