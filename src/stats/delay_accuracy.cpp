#include "stats/delay_accuracy.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "stats/quantile.hpp"

namespace vpm::stats {

DelayAccuracyReport score_delay_estimate(std::span<const double> true_delays,
                                         std::span<const double> sampled_delays,
                                         double confidence,
                                         std::span<const double> quantiles) {
  if (true_delays.empty()) {
    throw std::invalid_argument("score_delay_estimate: no ground truth");
  }
  if (sampled_delays.empty()) {
    throw std::invalid_argument("score_delay_estimate: no samples");
  }

  std::vector<double> truth(true_delays.begin(), true_delays.end());
  std::sort(truth.begin(), truth.end());

  QuantileEstimator estimator;
  estimator.add_all(sampled_delays);

  DelayAccuracyReport report;
  report.samples_used = sampled_delays.size();
  report.per_quantile.reserve(quantiles.size());

  double err_sum = 0.0;
  for (const double q : quantiles) {
    const double truth_q = sorted_quantile(truth, q);
    const QuantileEstimate est = estimator.estimate(q, confidence);
    const double abs_err = std::abs(est.value - truth_q);
    report.per_quantile.push_back(QuantileError{
        .quantile = q,
        .true_value = truth_q,
        .estimated = est.value,
        .abs_error = abs_err,
        .ci_half_width = est.accuracy(),
    });
    report.worst_abs_error = std::max(report.worst_abs_error, abs_err);
    report.worst_ci_half_width =
        std::max(report.worst_ci_half_width, est.accuracy());
    err_sum += abs_err;
  }
  report.mean_abs_error =
      err_sum / static_cast<double>(quantiles.size());
  return report;
}

}  // namespace vpm::stats
