// Streaming summary statistics (Welford) and small helpers shared by the
// experiment harnesses.
#ifndef VPM_STATS_SUMMARY_HPP
#define VPM_STATS_SUMMARY_HPP

#include <cmath>
#include <cstddef>
#include <limits>
#include <span>

namespace vpm::stats {

/// Single-pass count/mean/variance/min/max accumulator.
class OnlineSummary {
 public:
  void add(double x) noexcept {
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
  }

  [[nodiscard]] std::size_t count() const noexcept { return count_; }
  [[nodiscard]] double mean() const noexcept { return mean_; }
  [[nodiscard]] double variance() const noexcept {
    return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_ - 1);
  }
  [[nodiscard]] double stddev() const noexcept {
    return std::sqrt(variance());
  }
  [[nodiscard]] double min() const noexcept {
    return count_ == 0 ? 0.0 : min_;
  }
  [[nodiscard]] double max() const noexcept {
    return count_ == 0 ? 0.0 : max_;
  }
  [[nodiscard]] double sum() const noexcept {
    return mean_ * static_cast<double>(count_);
  }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Mean of a span (0.0 for empty input).
[[nodiscard]] inline double mean_of(std::span<const double> xs) noexcept {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (const double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

}  // namespace vpm::stats

#endif  // VPM_STATS_SUMMARY_HPP
