#include "adversary/strategies.hpp"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

namespace vpm::adversary {

core::SampleReceipt hide_loss_samples(const core::SampleReceipt& truthful_egress,
                                      const core::SampleReceipt& own_ingress,
                                      net::Duration fake_delay) {
  // Rebuild the egress receipt in ingress order: every packet the domain
  // sampled on entry is claimed to have left; truly observed egress
  // records keep their real times, dropped ones get fabricated times.
  std::unordered_map<net::PacketDigest, const core::SampleRecord*> egress_by_id;
  egress_by_id.reserve(truthful_egress.samples.size() * 2);
  for (const core::SampleRecord& r : truthful_egress.samples) {
    egress_by_id.emplace(r.pkt_id, &r);
  }

  core::SampleReceipt lie;
  lie.path = truthful_egress.path;
  lie.sample_threshold = truthful_egress.sample_threshold;
  lie.marker_threshold = truthful_egress.marker_threshold;
  lie.samples.reserve(own_ingress.samples.size());
  for (const core::SampleRecord& in : own_ingress.samples) {
    const auto it = egress_by_id.find(in.pkt_id);
    if (it != egress_by_id.end()) {
      lie.samples.push_back(*it->second);
    } else {
      lie.samples.push_back(core::SampleRecord{
          .pkt_id = in.pkt_id,
          .time = in.time + fake_delay,
          .is_marker = in.is_marker,
      });
    }
  }
  return lie;
}

std::vector<core::AggregateReceipt> hide_loss_aggregates(
    std::span<const core::AggregateReceipt> truthful_egress,
    std::span<const core::AggregateReceipt> own_ingress) {
  // The strongest count lie available: republish the ingress partition as
  // the egress one ("everything that entered, left").  Times are shifted
  // to look egress-like so the receipt is not trivially absurd.
  net::Duration shift{0};
  if (!truthful_egress.empty() && !own_ingress.empty()) {
    shift = truthful_egress.front().opened_at - own_ingress.front().opened_at;
  }
  std::vector<core::AggregateReceipt> lie(own_ingress.begin(),
                                          own_ingress.end());
  for (core::AggregateReceipt& r : lie) {
    if (!truthful_egress.empty()) r.path = truthful_egress.front().path;
    r.opened_at += shift;
    r.closed_at += shift;
  }
  return lie;
}

core::SampleReceipt understate_delay(const core::SampleReceipt& truthful_egress,
                                     net::Duration shave) {
  core::SampleReceipt lie = truthful_egress;
  for (core::SampleRecord& r : lie.samples) {
    r.time = r.time - shave;
  }
  return lie;
}

core::SampleReceipt cover_neighbor_samples(
    const core::SampleReceipt& own_truthful_ingress,
    const core::SampleReceipt& neighbors_published_egress,
    net::Duration link_delay) {
  std::unordered_map<net::PacketDigest, const core::SampleRecord*> own_by_id;
  own_by_id.reserve(own_truthful_ingress.samples.size() * 2);
  for (const core::SampleRecord& r : own_truthful_ingress.samples) {
    own_by_id.emplace(r.pkt_id, &r);
  }

  core::SampleReceipt cover;
  cover.path = own_truthful_ingress.path;
  cover.sample_threshold = own_truthful_ingress.sample_threshold;
  cover.marker_threshold = own_truthful_ingress.marker_threshold;
  cover.samples.reserve(neighbors_published_egress.samples.size());
  for (const core::SampleRecord& claimed : neighbors_published_egress.samples) {
    const auto it = own_by_id.find(claimed.pkt_id);
    if (it != own_by_id.end()) {
      cover.samples.push_back(*it->second);
    } else {
      // Pretend the packet arrived: the neighbour's claimed egress time
      // plus the nominal link delay.
      cover.samples.push_back(core::SampleRecord{
          .pkt_id = claimed.pkt_id,
          .time = claimed.time + link_delay,
          .is_marker = claimed.is_marker,
      });
    }
  }
  return cover;
}

std::vector<core::AggregateReceipt> cover_neighbor_aggregates(
    std::span<const core::AggregateReceipt> own_truthful_ingress,
    std::span<const core::AggregateReceipt> neighbors_published_egress,
    net::Duration link_delay) {
  std::vector<core::AggregateReceipt> cover(
      neighbors_published_egress.begin(), neighbors_published_egress.end());
  for (core::AggregateReceipt& r : cover) {
    if (!own_truthful_ingress.empty()) {
      r.path = own_truthful_ingress.front().path;
    }
    r.opened_at += link_delay;
    r.closed_at += link_delay;
  }
  return cover;
}

SamplePredictor trajectory_predictor(net::DigestEngine engine,
                                     std::uint32_t threshold) {
  return [engine, threshold](const net::Packet& p) {
    return engine.packet_id(p) > threshold;
  };
}

SamplePredictor vpm_marker_predictor(net::DigestEngine engine,
                                     std::uint32_t marker_threshold) {
  return [engine, marker_threshold](const net::Packet& p) {
    return engine.marker_value(p) > marker_threshold;
  };
}

std::vector<net::Duration> bias_delays(
    std::span<const net::Packet> trace,
    std::span<const net::Duration> honest_delays,
    const SamplePredictor& predictable, net::Duration preferred_delay) {
  std::vector<net::Duration> out(honest_delays.begin(), honest_delays.end());
  const std::size_t n = std::min(trace.size(), out.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (predictable(trace[i])) {
      out[i] = std::min(out[i], preferred_delay);
    }
  }
  return out;
}

}  // namespace vpm::adversary
