// Lying-domain strategies (threat model, Section 2.1).
//
// A lying domain constructs receipts from incomplete or fabricated
// information, possibly colluding with neighbours.  Each strategy here is
// a pure receipt transformer: it takes truthful receipts (what the domain
// really observed) and returns what the liar publishes.  The verifier
// never sees which is which — detection must come from consistency
// checking, and the tests/benches measure exactly that.
//
// Traffic-level cheating (treating would-be samples preferentially) is a
// delay-assignment transform used by the bias ablation; see bias_delays().
#ifndef VPM_ADVERSARY_STRATEGIES_HPP
#define VPM_ADVERSARY_STRATEGIES_HPP

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "core/receipt.hpp"
#include "net/digest.hpp"
#include "net/packet.hpp"
#include "net/time.hpp"

namespace vpm::adversary {

/// "Claim delivered what you dropped" (the paper's running example: X
/// drops p but reports having delivered it to N).  Fabricates egress
/// sample records for every packet the domain sampled at ingress but not
/// at egress, with a plausible fake traversal delay.  Markers included:
/// the liar must fake those too, or their absence is immediately caught.
[[nodiscard]] core::SampleReceipt hide_loss_samples(
    const core::SampleReceipt& truthful_egress,
    const core::SampleReceipt& own_ingress, net::Duration fake_delay);

/// Aggregate-side of the same lie: report egress PktCnt equal to the
/// ingress count for every aggregate (nothing was lost, honest!).
/// AggTrans and AggIDs stay as observed — fabricating ids of packets the
/// egress never saw requires the ingress receipts, which the liar has.
[[nodiscard]] std::vector<core::AggregateReceipt> hide_loss_aggregates(
    std::span<const core::AggregateReceipt> truthful_egress,
    std::span<const core::AggregateReceipt> own_ingress);

/// "We are faster than we are": shift every egress sample time earlier by
/// `shave`.  Exposed by Eq. 2 once the cross-link timestamp difference
/// exceeds MaxDiff.
[[nodiscard]] core::SampleReceipt understate_delay(
    const core::SampleReceipt& truthful_egress, net::Duration shave);

/// Collusion (Section 3.1): neighbour N covers X's false delivery claims
/// by fabricating *ingress* records for packets it never received (copied
/// from X's published egress receipt, plus link delay).  N's problem — the
/// packets now have to disappear somewhere inside N or be pushed onto the
/// next link — is exactly what the liar-exposure cascade detects.
[[nodiscard]] core::SampleReceipt cover_neighbor_samples(
    const core::SampleReceipt& own_truthful_ingress,
    const core::SampleReceipt& neighbors_published_egress,
    net::Duration link_delay);

/// Aggregate-side of the cover-up: N republishes the neighbour's claimed
/// egress partition (counts and all) as its own ingress, shifted by the
/// link delay, so the cross-link count check passes.  The phantom packets
/// now sit on N's own books.
[[nodiscard]] std::vector<core::AggregateReceipt> cover_neighbor_aggregates(
    std::span<const core::AggregateReceipt> own_truthful_ingress,
    std::span<const core::AggregateReceipt> neighbors_published_egress,
    net::Duration link_delay);

/// Predicate for packets an adversary can *predict* will be sampled:
///   - under Trajectory Sampling ++, every sample is predictable;
///   - under VPM delay-sampling, only markers are (Algorithm 1 defers all
///     other decisions to future traffic).
using SamplePredictor = std::function<bool(const net::Packet&)>;

[[nodiscard]] SamplePredictor trajectory_predictor(net::DigestEngine engine,
                                                   std::uint32_t threshold);
[[nodiscard]] SamplePredictor vpm_marker_predictor(net::DigestEngine engine,
                                                   std::uint32_t marker_threshold);

/// The bias attack: give predictable samples the preferential delay and
/// leave everything else on the congested path.  Returns the per-packet
/// delay the cheating domain actually imposes.
[[nodiscard]] std::vector<net::Duration> bias_delays(
    std::span<const net::Packet> trace,
    std::span<const net::Duration> honest_delays,
    const SamplePredictor& predictable, net::Duration preferred_delay);

}  // namespace vpm::adversary

#endif  // VPM_ADVERSARY_STRATEGIES_HPP
