// Abstract per-packet loss process.
//
// Section 7.2, step 2: "To introduce loss, we discard a subset of the
// packets, chosen using the Gilbert-Elliot loss model [9]."  Experiments
// drive one of these models over a packet sequence; each call to
// should_drop() advances the process by one packet.
#ifndef VPM_LOSS_LOSS_MODEL_HPP
#define VPM_LOSS_LOSS_MODEL_HPP

namespace vpm::loss {

class LossModel {
 public:
  virtual ~LossModel() = default;

  /// Advance one packet; true means the packet is dropped.
  virtual bool should_drop() = 0;

  /// Restart the process (fresh state, same parameters and seed sequence).
  virtual void reset() = 0;

  /// Long-run fraction of packets dropped.
  [[nodiscard]] virtual double expected_loss_rate() const = 0;
};

}  // namespace vpm::loss

#endif  // VPM_LOSS_LOSS_MODEL_HPP
