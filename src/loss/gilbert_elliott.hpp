// Gilbert-Elliott two-state Markov loss model (Ebert & Willig, TKN-99-002).
//
// State GOOD drops packets with probability `loss_good` (classically 0),
// state BAD with probability `loss_bad` (classically 1).  Transitions
// GOOD->BAD with probability p and BAD->GOOD with probability r per packet,
// giving bursty losses with mean burst length 1/r and stationary BAD
// probability p/(p+r).
#ifndef VPM_LOSS_GILBERT_ELLIOTT_HPP
#define VPM_LOSS_GILBERT_ELLIOTT_HPP

#include <cstdint>
#include <random>

#include "loss/loss_model.hpp"

namespace vpm::loss {

class GilbertElliott final : public LossModel {
 public:
  struct Params {
    double p_good_to_bad = 0.0;
    double p_bad_to_good = 1.0;
    double loss_good = 0.0;
    double loss_bad = 1.0;
  };

  /// Throws std::invalid_argument if any probability is outside [0,1] or
  /// both transition probabilities are zero while states differ in loss.
  GilbertElliott(Params params, std::uint64_t seed);

  /// Convenience: parameters hitting `target_loss` overall with bursts of
  /// mean length `mean_burst_packets` (GOOD is loss-free, BAD always
  /// drops).  Throws std::invalid_argument if target_loss is not in [0,1)
  /// or mean_burst_packets < 1.
  static GilbertElliott with_target_loss(double target_loss,
                                         double mean_burst_packets,
                                         std::uint64_t seed);

  bool should_drop() override;
  void reset() override;
  [[nodiscard]] double expected_loss_rate() const override;

  [[nodiscard]] const Params& params() const noexcept { return params_; }
  [[nodiscard]] bool in_bad_state() const noexcept { return bad_; }

 private:
  Params params_;
  std::uint64_t seed_;
  std::mt19937_64 rng_;
  std::uniform_real_distribution<double> uniform_{0.0, 1.0};
  bool bad_ = false;
};

}  // namespace vpm::loss

#endif  // VPM_LOSS_GILBERT_ELLIOTT_HPP
