#include "loss/gilbert_elliott.hpp"

#include <stdexcept>
#include <string>

namespace vpm::loss {
namespace {

void check_probability(double v, const char* name) {
  if (v < 0.0 || v > 1.0) {
    throw std::invalid_argument(std::string{name} + " = " +
                                std::to_string(v) + " outside [0,1]");
  }
}

}  // namespace

GilbertElliott::GilbertElliott(Params params, std::uint64_t seed)
    : params_(params), seed_(seed), rng_(seed) {
  check_probability(params.p_good_to_bad, "p_good_to_bad");
  check_probability(params.p_bad_to_good, "p_bad_to_good");
  check_probability(params.loss_good, "loss_good");
  check_probability(params.loss_bad, "loss_bad");
  if (params.p_good_to_bad > 0.0 && params.p_bad_to_good == 0.0) {
    throw std::invalid_argument(
        "absorbing BAD state: p_bad_to_good must be > 0 when "
        "p_good_to_bad > 0");
  }
}

GilbertElliott GilbertElliott::with_target_loss(double target_loss,
                                                double mean_burst_packets,
                                                std::uint64_t seed) {
  if (target_loss < 0.0 || target_loss >= 1.0) {
    throw std::invalid_argument("target_loss " + std::to_string(target_loss) +
                                " outside [0,1)");
  }
  if (mean_burst_packets < 1.0) {
    throw std::invalid_argument("mean_burst_packets must be >= 1");
  }
  if (target_loss == 0.0) {
    return GilbertElliott{Params{.p_good_to_bad = 0.0,
                                 .p_bad_to_good = 1.0,
                                 .loss_good = 0.0,
                                 .loss_bad = 1.0},
                          seed};
  }
  // BAD always drops, GOOD never: stationary BAD probability must equal
  // target_loss.  pi_B = p/(p+r) = target  =>  p = r * target / (1-target).
  const double r = 1.0 / mean_burst_packets;
  const double p = r * target_loss / (1.0 - target_loss);
  if (p > 1.0) {
    throw std::invalid_argument(
        "target_loss too high for requested burst length");
  }
  return GilbertElliott{Params{.p_good_to_bad = p,
                               .p_bad_to_good = r,
                               .loss_good = 0.0,
                               .loss_bad = 1.0},
                        seed};
}

bool GilbertElliott::should_drop() {
  // Transition first, then emit: burst lengths then follow the geometric
  // distribution of BAD-state sojourns exactly.
  const double t = uniform_(rng_);
  if (bad_) {
    if (t < params_.p_bad_to_good) bad_ = false;
  } else {
    if (t < params_.p_good_to_bad) bad_ = true;
  }
  const double d = uniform_(rng_);
  return d < (bad_ ? params_.loss_bad : params_.loss_good);
}

void GilbertElliott::reset() {
  rng_.seed(seed_);
  bad_ = false;
}

double GilbertElliott::expected_loss_rate() const {
  const double p = params_.p_good_to_bad;
  const double r = params_.p_bad_to_good;
  if (p == 0.0) return params_.loss_good;
  const double pi_bad = p / (p + r);
  return pi_bad * params_.loss_bad + (1.0 - pi_bad) * params_.loss_good;
}

}  // namespace vpm::loss
