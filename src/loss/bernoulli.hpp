// Independent (Bernoulli) per-packet loss: the memoryless baseline against
// which the bursty Gilbert-Elliott results are compared in ablations.
#ifndef VPM_LOSS_BERNOULLI_HPP
#define VPM_LOSS_BERNOULLI_HPP

#include <cstdint>
#include <random>
#include <stdexcept>
#include <string>

#include "loss/loss_model.hpp"

namespace vpm::loss {

class BernoulliLoss final : public LossModel {
 public:
  /// Throws std::invalid_argument if rate outside [0,1].
  BernoulliLoss(double rate, std::uint64_t seed)
      : rate_(rate), seed_(seed), rng_(seed) {
    if (rate < 0.0 || rate > 1.0) {
      throw std::invalid_argument("loss rate " + std::to_string(rate) +
                                  " outside [0,1]");
    }
  }

  bool should_drop() override { return uniform_(rng_) < rate_; }
  void reset() override { rng_.seed(seed_); }
  [[nodiscard]] double expected_loss_rate() const override { return rate_; }

 private:
  double rate_;
  std::uint64_t seed_;
  std::mt19937_64 rng_;
  std::uniform_real_distribution<double> uniform_{0.0, 1.0};
};

/// No loss at all; useful as a default in experiment configs.
class NoLoss final : public LossModel {
 public:
  bool should_drop() override { return false; }
  void reset() override {}
  [[nodiscard]] double expected_loss_rate() const override { return 0.0; }
};

}  // namespace vpm::loss

#endif  // VPM_LOSS_BERNOULLI_HPP
