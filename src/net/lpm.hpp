// Longest-prefix-match over IPv4 prefixes: a binary trie, as a router FIB
// would use.  Shared by the pipeline's route lookup and the
// variable-length path classifier.
#ifndef VPM_NET_LPM_HPP
#define VPM_NET_LPM_HPP

#include <cstdint>
#include <memory>
#include <optional>

#include "net/prefix.hpp"

namespace vpm::net {

/// Maps prefixes to 32-bit values with longest-match lookup.
class LpmTable {
 public:
  LpmTable();
  ~LpmTable();
  LpmTable(LpmTable&&) noexcept;
  LpmTable& operator=(LpmTable&&) noexcept;
  LpmTable(const LpmTable&) = delete;
  LpmTable& operator=(const LpmTable&) = delete;

  /// Insert or overwrite the value at `prefix`.
  void insert(const Prefix& prefix, std::uint32_t value);

  /// Value of the longest prefix containing `addr`, if any.
  [[nodiscard]] std::optional<std::uint32_t> lookup(Ipv4Address addr) const;

  /// Exact-prefix fetch (no LPM semantics).
  [[nodiscard]] std::optional<std::uint32_t> exact(const Prefix& p) const;

  [[nodiscard]] std::size_t size() const noexcept { return entries_; }

 private:
  struct Node;
  std::unique_ptr<Node> root_;
  std::size_t entries_ = 0;
};

}  // namespace vpm::net

#endif  // VPM_NET_LPM_HPP
