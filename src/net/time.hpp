// Strong nanosecond time types used throughout libvpm.
//
// The paper's receipts carry packet observation timestamps (Section 4) and
// the consistency rules (Eq. 1-2) compare timestamp differences against a
// per-link MaxDiff.  We keep all times as signed 64-bit nanosecond counts:
// wide enough for any experiment, cheap to copy, and strongly typed so a
// Duration cannot be mistaken for a Timestamp.
#ifndef VPM_NET_TIME_HPP
#define VPM_NET_TIME_HPP

#include <compare>
#include <cstdint>

namespace vpm::net {

/// A span of time in nanoseconds (signed: clock skew can be negative).
class Duration {
 public:
  constexpr Duration() = default;
  constexpr explicit Duration(std::int64_t ns) : ns_(ns) {}

  [[nodiscard]] constexpr std::int64_t nanoseconds() const { return ns_; }
  [[nodiscard]] constexpr double microseconds() const {
    return static_cast<double>(ns_) / 1e3;
  }
  [[nodiscard]] constexpr double milliseconds() const {
    return static_cast<double>(ns_) / 1e6;
  }
  [[nodiscard]] constexpr double seconds() const {
    return static_cast<double>(ns_) / 1e9;
  }

  constexpr auto operator<=>(const Duration&) const = default;

  constexpr Duration operator+(Duration o) const {
    return Duration{ns_ + o.ns_};
  }
  constexpr Duration operator-(Duration o) const {
    return Duration{ns_ - o.ns_};
  }
  constexpr Duration operator-() const { return Duration{-ns_}; }
  constexpr Duration operator*(std::int64_t k) const {
    return Duration{ns_ * k};
  }
  constexpr Duration operator/(std::int64_t k) const {
    return Duration{ns_ / k};
  }
  constexpr Duration& operator+=(Duration o) {
    ns_ += o.ns_;
    return *this;
  }
  constexpr Duration& operator-=(Duration o) {
    ns_ -= o.ns_;
    return *this;
  }

 private:
  std::int64_t ns_ = 0;
};

/// An absolute point in time, nanoseconds since an arbitrary epoch.
class Timestamp {
 public:
  constexpr Timestamp() = default;
  constexpr explicit Timestamp(std::int64_t ns) : ns_(ns) {}

  [[nodiscard]] constexpr std::int64_t nanoseconds() const { return ns_; }
  [[nodiscard]] constexpr double seconds() const {
    return static_cast<double>(ns_) / 1e9;
  }

  constexpr auto operator<=>(const Timestamp&) const = default;

  constexpr Timestamp operator+(Duration d) const {
    return Timestamp{ns_ + d.nanoseconds()};
  }
  constexpr Timestamp operator-(Duration d) const {
    return Timestamp{ns_ - d.nanoseconds()};
  }
  constexpr Duration operator-(Timestamp o) const {
    return Duration{ns_ - o.ns_};
  }
  constexpr Timestamp& operator+=(Duration d) {
    ns_ += d.nanoseconds();
    return *this;
  }

 private:
  std::int64_t ns_ = 0;
};

// Convenience literal-style constructors.
[[nodiscard]] constexpr Duration nanoseconds(std::int64_t v) {
  return Duration{v};
}
[[nodiscard]] constexpr Duration microseconds(std::int64_t v) {
  return Duration{v * 1'000};
}
[[nodiscard]] constexpr Duration milliseconds(std::int64_t v) {
  return Duration{v * 1'000'000};
}
[[nodiscard]] constexpr Duration seconds(std::int64_t v) {
  return Duration{v * 1'000'000'000};
}
/// Fractional seconds, for rate math (truncates toward zero).
[[nodiscard]] constexpr Duration seconds_f(double v) {
  return Duration{static_cast<std::int64_t>(v * 1e9)};
}

}  // namespace vpm::net

#endif  // VPM_NET_TIME_HPP
