// The packet model.
//
// VPM's data plane only ever looks at a packet's IP + transport headers and
// a small payload portion (Assumption #3, Section 2.3), so that is all we
// model.  The `sequence` and `origin_time` fields are *experiment ground
// truth*: the protocol code never reads them; they exist so benchmarks can
// score estimates against reality.
#ifndef VPM_NET_PACKET_HPP
#define VPM_NET_PACKET_HPP

#include <cstdint>

#include "net/prefix.hpp"
#include "net/time.hpp"

namespace vpm::net {

/// IP protocol numbers we generate.
enum class IpProto : std::uint8_t {
  kTcp = 6,
  kUdp = 17,
  kIcmp = 1,
};

/// The header fields a HOP can see and hash (IP + transport).
struct PacketHeader {
  Ipv4Address src;
  Ipv4Address dst;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint16_t ip_id = 0;        ///< IP identification field
  std::uint16_t total_length = 0; ///< bytes, including headers
  IpProto protocol = IpProto::kUdp;
  std::uint8_t tos = 0;
};

/// A packet as carried through the simulator and observed by HOPs.
struct Packet {
  PacketHeader header;
  /// First 8 payload bytes; part of the digest input so that two packets
  /// with identical headers still (usually) hash differently.
  std::uint64_t payload_prefix = 0;

  // --- ground truth, invisible to the protocol ---
  std::uint64_t sequence = 0;  ///< generation order at the source
  Timestamp origin_time;       ///< send time at the source domain
};

/// A packet observation at a HOP: what the monitoring hardware sees.
struct Observation {
  Packet packet;
  Timestamp when;  ///< local clock at the observing HOP
};

}  // namespace vpm::net

#endif  // VPM_NET_PACKET_HPP
