// Portable scalar J-window kernels (the dispatch fallbacks).  Both are
// branchless in the same style as sweep_select_scalar: unconditional
// writes with a cursor/bit advance derived from the compare, so the cost
// is flat in the keep density.
#include "net/window_batch.hpp"

#include <cstring>

namespace vpm::net::detail {

namespace {

inline std::int64_t time_at(const std::byte* records, std::size_t stride,
                            std::size_t time_off, std::size_t i) noexcept {
  std::int64_t t;
  std::memcpy(&t, records + i * stride + time_off, sizeof(t));
  return t;
}

}  // namespace

std::size_t window_collect_scalar(const std::byte* records, std::size_t stride,
                                  std::size_t time_off, std::size_t n,
                                  std::int64_t cutoff_ns,
                                  std::uint32_t* out_ids) noexcept {
  std::size_t m = 0;
  for (std::size_t i = 0; i < n; ++i) {
    std::uint32_t id;
    std::memcpy(&id, records + i * stride, sizeof(id));
    out_ids[m] = id;
    m += static_cast<std::size_t>(time_at(records, stride, time_off, i) >=
                                  cutoff_ns);
  }
  return m;
}

void time_ge_mask_scalar(const std::byte* records, std::size_t stride,
                         std::size_t time_off, std::size_t n,
                         std::int64_t cutoff_ns,
                         std::uint64_t* mask_words) noexcept {
  for (std::size_t w = 0; w < (n + 63) / 64; ++w) mask_words[w] = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t keep = static_cast<std::uint64_t>(
        time_at(records, stride, time_off, i) >= cutoff_ns);
    mask_words[i >> 6] |= keep << (i & 63);
  }
}

}  // namespace vpm::net::detail
