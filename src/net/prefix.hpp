// IPv4 addresses and routing prefixes.
//
// VPM names HOP paths by their source and destination *origin prefixes* as
// advertised in BGP (Section 2): all packets whose src/dst fall into the
// same origin-prefix pair are assumed to follow the same HOP path
// (Assumption #1).  This module provides the address/prefix types the
// classifier uses.
#ifndef VPM_NET_PREFIX_HPP
#define VPM_NET_PREFIX_HPP

#include <compare>
#include <cstdint>
#include <functional>
#include <stdexcept>
#include <string>

namespace vpm::net {

/// An IPv4 address in host byte order.
class Ipv4Address {
 public:
  constexpr Ipv4Address() = default;
  constexpr explicit Ipv4Address(std::uint32_t value) : value_(value) {}
  /// Build from dotted-quad octets.
  constexpr Ipv4Address(std::uint8_t a, std::uint8_t b, std::uint8_t c,
                        std::uint8_t d)
      : value_((static_cast<std::uint32_t>(a) << 24) |
               (static_cast<std::uint32_t>(b) << 16) |
               (static_cast<std::uint32_t>(c) << 8) |
               static_cast<std::uint32_t>(d)) {}

  /// Parse "a.b.c.d"; throws std::invalid_argument on malformed input.
  static Ipv4Address parse(const std::string& text);

  [[nodiscard]] constexpr std::uint32_t value() const { return value_; }
  [[nodiscard]] std::string to_string() const;

  constexpr auto operator<=>(const Ipv4Address&) const = default;

 private:
  std::uint32_t value_ = 0;
};

/// An IPv4 routing prefix (address + mask length).
class Prefix {
 public:
  constexpr Prefix() = default;
  /// Throws std::invalid_argument if `length > 32` or the address has bits
  /// set outside the mask.
  Prefix(Ipv4Address network, std::uint8_t length);

  /// Parse "a.b.c.d/len"; throws std::invalid_argument on malformed input.
  static Prefix parse(const std::string& text);

  [[nodiscard]] constexpr Ipv4Address network() const { return network_; }
  [[nodiscard]] constexpr std::uint8_t length() const { return length_; }
  [[nodiscard]] constexpr std::uint32_t mask() const {
    return length_ == 0 ? 0u : ~std::uint32_t{0} << (32 - length_);
  }

  [[nodiscard]] constexpr bool contains(Ipv4Address addr) const {
    return (addr.value() & mask()) == network_.value();
  }
  [[nodiscard]] constexpr bool contains(const Prefix& other) const {
    return other.length_ >= length_ && contains(other.network_);
  }

  [[nodiscard]] std::string to_string() const;

  constexpr auto operator<=>(const Prefix&) const = default;

 private:
  Ipv4Address network_;
  std::uint8_t length_ = 0;
};

/// A (source origin prefix, destination origin prefix) pair: the name of a
/// HOP path per Section 2's definition.
struct PrefixPair {
  Prefix source;
  Prefix destination;

  constexpr auto operator<=>(const PrefixPair&) const = default;
  [[nodiscard]] std::string to_string() const;
};

}  // namespace vpm::net

template <>
struct std::hash<vpm::net::Ipv4Address> {
  std::size_t operator()(const vpm::net::Ipv4Address& a) const noexcept {
    return std::hash<std::uint32_t>{}(a.value());
  }
};

template <>
struct std::hash<vpm::net::Prefix> {
  std::size_t operator()(const vpm::net::Prefix& p) const noexcept {
    return std::hash<std::uint64_t>{}(
        (static_cast<std::uint64_t>(p.network().value()) << 8) | p.length());
  }
};

template <>
struct std::hash<vpm::net::PrefixPair> {
  std::size_t operator()(const vpm::net::PrefixPair& pp) const noexcept {
    const std::size_t h1 = std::hash<vpm::net::Prefix>{}(pp.source);
    const std::size_t h2 = std::hash<vpm::net::Prefix>{}(pp.destination);
    return h1 ^ (h2 + 0x9e3779b97f4a7c15ull + (h1 << 6) + (h1 >> 2));
  }
};

#endif  // VPM_NET_PREFIX_HPP
