#include "net/digest_batch.hpp"

namespace vpm::net::detail {

void decide_batch_scalar(const Packet* pkts, const std::uint32_t* idx,
                         std::size_t n, DigestMode mode,
                         PacketDecisions* out) noexcept {
  for (std::size_t i = 0; i < n; ++i) {
    const Packet& p = pkts[idx != nullptr ? idx[i] : i];
    out[i] = decisions_of(digest23(p, kIdSeed), mode);
  }
}

}  // namespace vpm::net::detail
