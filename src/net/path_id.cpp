#include "net/path_id.hpp"

#include "net/bob_hash.hpp"

namespace vpm::net {

std::uint64_t PathId::path_key() const noexcept {
  const std::uint32_t words[6] = {
      prefixes.source.network().value(),
      prefixes.destination.network().value(),
      static_cast<std::uint32_t>(prefixes.source.length()) << 8 |
          prefixes.destination.length(),
      header_spec_id,
      0u,
      0u,
  };
  const std::uint32_t lo = bob_hash_words({words, 6}, 0x50415448u);  // "PATH"
  const std::uint32_t hi = bob_hash_words({words, 6}, lo);
  return (static_cast<std::uint64_t>(hi) << 32) | lo;
}

std::string PathId::to_string() const {
  auto hop_str = [](HopId h) {
    return h == kNoHop ? std::string{"-"} : std::to_string(h);
  };
  return "[" + prefixes.to_string() + " prev=" + hop_str(previous_hop) +
         " next=" + hop_str(next_hop) +
         " maxdiff=" + std::to_string(max_diff.milliseconds()) + "ms]";
}

}  // namespace vpm::net
