#include "net/digest.hpp"

#include <bit>
#include <cstddef>
#include <cstring>
#include <stdexcept>

#include "net/bob_hash.hpp"

namespace vpm::net {
namespace {

// Role seeds: arbitrary distinct constants fixed at protocol design time
// (system-wide, like the marker threshold mu in Section 5.1).
constexpr std::uint32_t kIdSeed = 0x56504d31u;      // "VPM1"
constexpr std::uint32_t kMarkerSeed = 0x4d41524bu;  // "MARK"
constexpr std::uint32_t kCutSeed = 0x43555421u;     // "CUT!"
constexpr std::uint32_t kSampleSeed = 0x53414d50u;  // "SAMP"

// Seeded avalanche finalizer: a 32-bit bijection per seed (xor, then
// multiply by an odd constant, then fold the high bits down), so role
// values stay uniform whenever the base digest is.  This is how
// kIndependent derives marker/cut values from the single per-packet hash
// instead of re-hashing the full header.  One multiply (vs murmur3's
// two-multiply fmix32) keeps the §7.1 per-packet budget at "one hash plus
// a few cycles"; the marker/cut decisions only compare against a
// threshold, for which the multiplicative scramble of the high bits is
// ample.
constexpr std::uint32_t role_mix(std::uint32_t x, std::uint32_t seed) noexcept {
  x = (x ^ seed) * 0x9E3779B1u;  // odd multiplier: bijective mod 2^32
  x ^= x >> 16;
  return x;
}

}  // namespace

std::uint32_t DigestEngine::hash_fields(const Packet& p,
                                        std::uint32_t seed) const noexcept {
  // Serialize the selected fields into a fixed on-stack buffer.  Layout is
  // part of the protocol: every HOP must produce identical bytes.
  //
  // The default spec (everything but length) is the hot path: stream its
  // 23 bytes straight into the lookup3 state as assembled words, skipping
  // the stack buffer (and its store-to-load-forwarding stalls).  The word
  // values below are exactly what bob_hash's little-endian loads would
  // read from the serialized layout — the pinned-digest test guards this.
  // Little-endian only: the buffer path memcpy's native bytes, so on a
  // big-endian target the assembled words would disagree with it.
  if (std::endian::native == std::endian::little && default_spec_) {
    const PacketHeader& h = p.header;
    std::uint32_t a = lookup3::init(23, seed);
    std::uint32_t b = a;
    std::uint32_t c = a;
    // Bytes 0..11: src, dst, src_port | dst_port.
    a += h.src.value();
    b += h.dst.value();
    c += static_cast<std::uint32_t>(h.src_port) |
         (static_cast<std::uint32_t>(h.dst_port) << 16);
    lookup3::mix(a, b, c);
    // Tail bytes 12..22: protocol, ip_id, payload_prefix.
    a += static_cast<std::uint32_t>(h.protocol) |
         (static_cast<std::uint32_t>(h.ip_id) << 8) |
         (static_cast<std::uint32_t>(p.payload_prefix & 0xFFu) << 24);
    b += static_cast<std::uint32_t>((p.payload_prefix >> 8) & 0xFFFFFFFFu);
    c += static_cast<std::uint32_t>((p.payload_prefix >> 40) & 0xFFFFFFu);
    lookup3::final_mix(a, b, c);
    return c;
  }

  std::byte buf[32];
  std::size_t n = 0;
  auto put32 = [&](std::uint32_t v) {
    std::memcpy(buf + n, &v, 4);
    n += 4;
  };
  auto put16 = [&](std::uint16_t v) {
    std::memcpy(buf + n, &v, 2);
    n += 2;
  };
  auto put64 = [&](std::uint64_t v) {
    std::memcpy(buf + n, &v, 8);
    n += 8;
  };

  const PacketHeader& h = p.header;
  if (spec_.addresses) {
    put32(h.src.value());
    put32(h.dst.value());
  }
  if (spec_.ports) {
    put16(h.src_port);
    put16(h.dst_port);
  }
  if (spec_.protocol) {
    buf[n++] = static_cast<std::byte>(h.protocol);
  }
  if (spec_.ip_id) {
    put16(h.ip_id);
  }
  if (spec_.payload_prefix) {
    put64(p.payload_prefix);
  }
  if (spec_.length) {
    put16(h.total_length);
  }
  return bob_hash({buf, n}, seed);
}

PacketDecisions DigestEngine::decide(const Packet& p) const noexcept {
  const PacketDigest base = hash_fields(p, kIdSeed);
  if (mode_ == DigestMode::kSingle) {
    return PacketDecisions{.id = base, .marker_value = base, .cut_value = base};
  }
  return PacketDecisions{.id = base,
                         .marker_value = role_mix(base, kMarkerSeed),
                         .cut_value = role_mix(base, kCutSeed)};
}

PacketDigest DigestEngine::packet_id(const Packet& p) const noexcept {
  return hash_fields(p, kIdSeed);
}

std::uint32_t DigestEngine::marker_value(const Packet& p) const noexcept {
  const PacketDigest base = hash_fields(p, kIdSeed);
  if (mode_ == DigestMode::kSingle) return base;
  return role_mix(base, kMarkerSeed);
}

std::uint32_t DigestEngine::cut_value(const Packet& p) const noexcept {
  const PacketDigest base = hash_fields(p, kIdSeed);
  if (mode_ == DigestMode::kSingle) return base;
  return role_mix(base, kCutSeed);
}

std::uint32_t DigestEngine::sample_value(PacketDigest q_id,
                                         PacketDigest marker_id) noexcept {
  return bob_hash_pair(q_id, marker_id, kSampleSeed);
}

std::uint32_t rate_to_threshold(double rate) {
  if (rate < 0.0 || rate > 1.0) {
    throw std::invalid_argument("rate " + std::to_string(rate) +
                                " outside [0,1]");
  }
  // P(U > t) = (2^32 - 1 - t) / 2^32 for U uniform over [0, 2^32).
  const double kRange = 4294967296.0;  // 2^32
  const double cutoff = kRange * (1.0 - rate) - 1.0;
  if (cutoff <= 0.0) return 0;
  if (cutoff >= kRange - 1.0) return 0xFFFFFFFFu;
  return static_cast<std::uint32_t>(cutoff);
}

double threshold_to_rate(std::uint32_t threshold) noexcept {
  const double kRange = 4294967296.0;
  return (kRange - 1.0 - static_cast<double>(threshold)) / kRange;
}

}  // namespace vpm::net
