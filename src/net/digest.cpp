#include "net/digest.hpp"

#include <cstddef>
#include <cstring>
#include <stdexcept>

#include "net/bob_hash.hpp"

namespace vpm::net {
namespace {

// Role seeds: arbitrary distinct constants fixed at protocol design time
// (system-wide, like the marker threshold mu in Section 5.1).
constexpr std::uint32_t kIdSeed = 0x56504d31u;      // "VPM1"
constexpr std::uint32_t kMarkerSeed = 0x4d41524bu;  // "MARK"
constexpr std::uint32_t kCutSeed = 0x43555421u;     // "CUT!"
constexpr std::uint32_t kSampleSeed = 0x53414d50u;  // "SAMP"

}  // namespace

std::uint32_t DigestEngine::hash_fields(const Packet& p,
                                        std::uint32_t seed) const noexcept {
  // Serialize the selected fields into a fixed on-stack buffer.  Layout is
  // part of the protocol: every HOP must produce identical bytes.
  std::byte buf[32];
  std::size_t n = 0;
  auto put32 = [&](std::uint32_t v) {
    std::memcpy(buf + n, &v, 4);
    n += 4;
  };
  auto put16 = [&](std::uint16_t v) {
    std::memcpy(buf + n, &v, 2);
    n += 2;
  };
  auto put64 = [&](std::uint64_t v) {
    std::memcpy(buf + n, &v, 8);
    n += 8;
  };

  const PacketHeader& h = p.header;
  if (spec_.addresses) {
    put32(h.src.value());
    put32(h.dst.value());
  }
  if (spec_.ports) {
    put16(h.src_port);
    put16(h.dst_port);
  }
  if (spec_.protocol) {
    buf[n++] = static_cast<std::byte>(h.protocol);
  }
  if (spec_.ip_id) {
    put16(h.ip_id);
  }
  if (spec_.payload_prefix) {
    put64(p.payload_prefix);
  }
  if (spec_.length) {
    put16(h.total_length);
  }
  return bob_hash({buf, n}, seed);
}

PacketDigest DigestEngine::packet_id(const Packet& p) const noexcept {
  return hash_fields(p, kIdSeed);
}

std::uint32_t DigestEngine::marker_value(const Packet& p) const noexcept {
  if (mode_ == DigestMode::kSingle) return packet_id(p);
  return hash_fields(p, kMarkerSeed);
}

std::uint32_t DigestEngine::cut_value(const Packet& p) const noexcept {
  if (mode_ == DigestMode::kSingle) return packet_id(p);
  return hash_fields(p, kCutSeed);
}

std::uint32_t DigestEngine::sample_value(PacketDigest q_id,
                                         PacketDigest marker_id) noexcept {
  return bob_hash_pair(q_id, marker_id, kSampleSeed);
}

std::uint32_t rate_to_threshold(double rate) {
  if (rate < 0.0 || rate > 1.0) {
    throw std::invalid_argument("rate " + std::to_string(rate) +
                                " outside [0,1]");
  }
  // P(U > t) = (2^32 - 1 - t) / 2^32 for U uniform over [0, 2^32).
  const double kRange = 4294967296.0;  // 2^32
  const double cutoff = kRange * (1.0 - rate) - 1.0;
  if (cutoff <= 0.0) return 0;
  if (cutoff >= kRange - 1.0) return 0xFFFFFFFFu;
  return static_cast<std::uint32_t>(cutoff);
}

double threshold_to_rate(std::uint32_t threshold) noexcept {
  const double kRange = 4294967296.0;
  return (kRange - 1.0 - static_cast<double>(threshold)) / kRange;
}

}  // namespace vpm::net
