#include "net/digest.hpp"

#include <bit>
#include <cstddef>
#include <cstring>
#include <stdexcept>

#include "net/bob_hash.hpp"
#include "net/digest_batch.hpp"
#include "net/simd_dispatch.hpp"

namespace vpm::net {

// Role seeds, role_mix and the default-spec word-streaming digest moved to
// net/digest_batch.hpp so the batch kernels (scalar and AVX2) share the one
// definition with this scalar engine.
using detail::kIdSeed;
using detail::kSampleSeed;

std::uint32_t DigestEngine::hash_fields(const Packet& p,
                                        std::uint32_t seed) const noexcept {
  // Serialize the selected fields into a fixed on-stack buffer.  Layout is
  // part of the protocol: every HOP must produce identical bytes.
  //
  // The default spec (everything but length) is the hot path: stream its
  // 23 bytes straight into the lookup3 state as assembled words, skipping
  // the stack buffer (and its store-to-load-forwarding stalls).  The word
  // values are exactly what bob_hash's little-endian loads would read from
  // the serialized layout — the pinned-digest test guards this.
  // Little-endian only: the buffer path memcpy's native bytes, so on a
  // big-endian target the assembled words would disagree with it.
  if (std::endian::native == std::endian::little && default_spec_) {
    return detail::digest23(p, seed);
  }

  std::byte buf[32];
  std::size_t n = 0;
  auto put32 = [&](std::uint32_t v) {
    std::memcpy(buf + n, &v, 4);
    n += 4;
  };
  auto put16 = [&](std::uint16_t v) {
    std::memcpy(buf + n, &v, 2);
    n += 2;
  };
  auto put64 = [&](std::uint64_t v) {
    std::memcpy(buf + n, &v, 8);
    n += 8;
  };

  const PacketHeader& h = p.header;
  if (spec_.addresses) {
    put32(h.src.value());
    put32(h.dst.value());
  }
  if (spec_.ports) {
    put16(h.src_port);
    put16(h.dst_port);
  }
  if (spec_.protocol) {
    buf[n++] = static_cast<std::byte>(h.protocol);
  }
  if (spec_.ip_id) {
    put16(h.ip_id);
  }
  if (spec_.payload_prefix) {
    put64(p.payload_prefix);
  }
  if (spec_.length) {
    put16(h.total_length);
  }
  return bob_hash({buf, n}, seed);
}

PacketDecisions DigestEngine::decide(const Packet& p) const noexcept {
  return detail::decisions_of(hash_fields(p, kIdSeed), mode_);
}

void DigestEngine::decide_batch(const Packet* pkts, const std::uint32_t* idx,
                                std::size_t n,
                                PacketDecisions* out) const noexcept {
  // The vector kernel only knows the default-spec 23-byte layout; custom
  // specs (and big-endian targets) take the scalar engine per packet.
  if (default_spec_ && std::endian::native == std::endian::little) {
    static const detail::DecideBatchFn avx2 = detail::decide_batch_avx2();
    if (avx2 != nullptr && n >= 8 &&
        simd::active_tier() == simd::Tier::kAvx2) {
      avx2(pkts, idx, n, mode_, out);
      return;
    }
    detail::decide_batch_scalar(pkts, idx, n, mode_, out);
    return;
  }
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = decide(pkts[idx != nullptr ? idx[i] : i]);
  }
}

PacketDigest DigestEngine::packet_id(const Packet& p) const noexcept {
  return hash_fields(p, kIdSeed);
}

std::uint32_t DigestEngine::marker_value(const Packet& p) const noexcept {
  const PacketDigest base = hash_fields(p, kIdSeed);
  if (mode_ == DigestMode::kSingle) return base;
  return detail::role_mix(base, detail::kMarkerSeed);
}

std::uint32_t DigestEngine::cut_value(const Packet& p) const noexcept {
  const PacketDigest base = hash_fields(p, kIdSeed);
  if (mode_ == DigestMode::kSingle) return base;
  return detail::role_mix(base, detail::kCutSeed);
}

std::uint32_t DigestEngine::sample_value(PacketDigest q_id,
                                         PacketDigest marker_id) noexcept {
  return bob_hash_pair(q_id, marker_id, kSampleSeed);
}

std::uint32_t rate_to_threshold(double rate) {
  if (rate < 0.0 || rate > 1.0) {
    throw std::invalid_argument("rate " + std::to_string(rate) +
                                " outside [0,1]");
  }
  // P(U > t) = (2^32 - 1 - t) / 2^32 for U uniform over [0, 2^32).
  const double kRange = 4294967296.0;  // 2^32
  const double cutoff = kRange * (1.0 - rate) - 1.0;
  if (cutoff <= 0.0) return 0;
  if (cutoff >= kRange - 1.0) return 0xFFFFFFFFu;
  return static_cast<std::uint32_t>(cutoff);
}

double threshold_to_rate(std::uint32_t threshold) noexcept {
  const double kRange = 4294967296.0;
  return (kRange - 1.0 - static_cast<double>(threshold)) / kRange;
}

}  // namespace vpm::net
