// Bob Jenkins' lookup3 hash ("Bob" hash), implemented from the public-domain
// specification (lookup3.c, May 2006).
//
// The paper computes packet digests with the "Bob" hash because Molina,
// Niccolini and Duffield showed it behaves close to uniform on real packet
// headers [19].  VPM's marker rule (digest > mu), cut rule (digest > delta)
// and SampleFcn all rely on this uniformity, so we reproduce the exact
// algorithm rather than substituting std::hash.
#ifndef VPM_NET_BOB_HASH_HPP
#define VPM_NET_BOB_HASH_HPP

#include <cstdint>
#include <cstddef>
#include <span>

namespace vpm::net {

/// Hash a byte string.  `initval` seeds the hash; different seeds give
/// independent hash functions over the same input.
[[nodiscard]] std::uint32_t bob_hash(std::span<const std::byte> key,
                                     std::uint32_t initval) noexcept;

/// Hash an array of 32-bit words (lookup3's hashword); used for digest
/// pairs such as SampleFcn(digest_q, digest_marker).
[[nodiscard]] std::uint32_t bob_hash_words(std::span<const std::uint32_t> key,
                                           std::uint32_t initval) noexcept;

/// Convenience: hash two words (the SampleFcn shape from Algorithm 1).
[[nodiscard]] std::uint32_t bob_hash_pair(std::uint32_t a, std::uint32_t b,
                                          std::uint32_t initval) noexcept;

}  // namespace vpm::net

#endif  // VPM_NET_BOB_HASH_HPP
