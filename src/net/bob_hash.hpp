// Bob Jenkins' lookup3 hash ("Bob" hash), implemented from the public-domain
// specification (lookup3.c, May 2006).
//
// The paper computes packet digests with the "Bob" hash because Molina,
// Niccolini and Duffield showed it behaves close to uniform on real packet
// headers [19].  VPM's marker rule (digest > mu), cut rule (digest > delta)
// and SampleFcn all rely on this uniformity, so we reproduce the exact
// algorithm rather than substituting std::hash.
#ifndef VPM_NET_BOB_HASH_HPP
#define VPM_NET_BOB_HASH_HPP

#include <cstdint>
#include <cstddef>
#include <span>

namespace vpm::net {

namespace lookup3 {

// The lookup3 mixing primitives, exposed inline for callers that stream
// already-assembled words straight into the (a,b,c) state instead of going
// through a byte buffer (the digest hot path does this to avoid the
// store-then-reload of a stack buffer).  Streaming words this way is
// output-identical to bob_hash() over the equivalent little-endian bytes.

constexpr std::uint32_t rot(std::uint32_t x, unsigned k) noexcept {
  return (x << k) | (x >> (32u - k));
}

/// lookup3 mix(): reversible mixing of three 32-bit states.
constexpr void mix(std::uint32_t& a, std::uint32_t& b,
                   std::uint32_t& c) noexcept {
  a -= c;
  a ^= rot(c, 4);
  c += b;
  b -= a;
  b ^= rot(a, 6);
  a += c;
  c -= b;
  c ^= rot(b, 8);
  b += a;
  a -= c;
  a ^= rot(c, 16);
  c += b;
  b -= a;
  b ^= rot(a, 19);
  a += c;
  c -= b;
  c ^= rot(b, 4);
  b += a;
}

/// lookup3 final(): irreversible finalisation of three 32-bit states.
constexpr void final_mix(std::uint32_t& a, std::uint32_t& b,
                         std::uint32_t& c) noexcept {
  c ^= b;
  c -= rot(b, 14);
  a ^= c;
  a -= rot(c, 11);
  b ^= a;
  b -= rot(a, 25);
  c ^= b;
  c -= rot(b, 16);
  a ^= c;
  a -= rot(c, 4);
  b ^= a;
  b -= rot(a, 14);
  c ^= b;
  c -= rot(b, 24);
}

/// The hashlittle() initial state for a message of `length` bytes.
constexpr std::uint32_t init(std::size_t length, std::uint32_t seed) noexcept {
  return 0xdeadbeefu + static_cast<std::uint32_t>(length) + seed;
}

}  // namespace lookup3

/// Hash a byte string.  `initval` seeds the hash; different seeds give
/// independent hash functions over the same input.
[[nodiscard]] std::uint32_t bob_hash(std::span<const std::byte> key,
                                     std::uint32_t initval) noexcept;

/// Hash an array of 32-bit words (lookup3's hashword); used for digest
/// pairs such as SampleFcn(digest_q, digest_marker).
[[nodiscard]] std::uint32_t bob_hash_words(std::span<const std::uint32_t> key,
                                           std::uint32_t initval) noexcept;

/// Convenience: hash two words (the SampleFcn shape from Algorithm 1).
[[nodiscard]] std::uint32_t bob_hash_pair(std::uint32_t a, std::uint32_t b,
                                          std::uint32_t initval) noexcept;

}  // namespace vpm::net

#endif  // VPM_NET_BOB_HASH_HPP
