// Runtime SIMD dispatch for the data-plane batch kernels.
//
// The hot kernels (8-wide lookup3 digests, 8-wide classifier multiply-hash)
// exist in two implementations: portable scalar code that is ALWAYS built,
// and AVX2 intrinsics compiled into dedicated translation units with
// -mavx2.  One binary serves every host: the tier is picked once at
// startup from cpuid, so CI runners, ASan/TSan jobs and non-AVX2 machines
// run the same executable down the scalar path while AVX2 hosts take the
// vector path — and the two must be byte-identical (pinned by
// tests/simd_dispatch_test.cpp, the fastpath/soa/sharded golden suites are
// the outer safety net).
//
// Selection order:
//   1. force_tier() — programmatic override, used by tests to run BOTH
//      paths in one process regardless of host;
//   2. the VPM_SIMD environment variable ("scalar", "avx2", "auto") —
//      lets any CI job or operator force the scalar path without a
//      rebuild; requesting "avx2" on a host without it falls back to
//      scalar (never executes unsupported instructions);
//   3. cpuid (kAvx2 when the CPU and OS support AVX2, else kScalar).
#ifndef VPM_NET_SIMD_DISPATCH_HPP
#define VPM_NET_SIMD_DISPATCH_HPP

namespace vpm::net::simd {

enum class Tier {
  kScalar,  ///< portable code, always available
  kAvx2,    ///< 8-wide 32-bit integer kernels (x86-64-v3)
};

/// What the hardware supports (cpuid; computed once, cached).
[[nodiscard]] Tier detected_tier() noexcept;

/// What the kernels actually use: force_tier() override, else VPM_SIMD,
/// else detected_tier().  Never exceeds detected_tier().
[[nodiscard]] Tier active_tier() noexcept;

/// Was the AVX2 translation unit compiled into this binary?  (False on
/// non-x86 targets or compilers without -mavx2; detected_tier() is then
/// kScalar regardless of cpuid.)
[[nodiscard]] bool avx2_compiled() noexcept;

/// Test hook: force the active tier for the rest of the process (clamped
/// to detected_tier(), so forcing kAvx2 on a scalar-only host is a no-op).
/// The equivalence suite uses this to run both paths in one binary.
void force_tier(Tier t) noexcept;
/// Drop the force_tier() override (back to VPM_SIMD / cpuid selection).
void clear_forced_tier() noexcept;

/// Human-readable tier name ("scalar", "avx2") for bench output.
[[nodiscard]] const char* tier_name(Tier t) noexcept;

}  // namespace vpm::net::simd

#endif  // VPM_NET_SIMD_DISPATCH_HPP
