// Left-packing ("compress store") of selected 32-bit lanes under AVX2.
//
// AVX2 has no vpcompressd (that is AVX-512), so survivor selection packs
// lanes through a 256-entry permutation table indexed by the 8-bit
// selection mask: entry m lists the set-bit lane numbers of m in ascending
// order, so one vpermd moves every selected lane to the register front and
// a single unaligned store writes them.  The store always writes eight
// lanes; callers guarantee the destination has room for a full group's
// worth of slack (see the kernel contracts in sample_batch.hpp /
// window_batch.hpp for why survivors-so-far <= group base makes that safe
// without over-allocating).
//
// Include only from -mavx2 translation units (empty otherwise, like
// lookup3_avx2.hpp).
#ifndef VPM_NET_COMPRESS_STORE_AVX2_HPP
#define VPM_NET_COMPRESS_STORE_AVX2_HPP

#if defined(__AVX2__)

#include <immintrin.h>

#include <cstdint>

namespace vpm::net::detail {

struct CompressTable {
  alignas(32) std::uint32_t perm[256][8];
};

consteval CompressTable make_compress_table() {
  CompressTable t{};
  for (unsigned m = 0; m < 256; ++m) {
    unsigned k = 0;
    for (unsigned lane = 0; lane < 8; ++lane) {
      if ((m >> lane) & 1u) t.perm[m][k++] = lane;
    }
    // Unused tail lanes replicate lane 0 — they are stored into the slack
    // region and overwritten by the next group (or sit past the returned
    // count, which the contract leaves unspecified).
  }
  return t;
}

inline constexpr CompressTable kCompressTable = make_compress_table();

/// Store the lanes of `v` selected by `mask` (bit i -> lane i) to `out`,
/// left-packed in ascending lane order.  Writes eight lanes regardless;
/// returns the number of selected lanes.
inline unsigned compress_store_u32(std::uint32_t* out, __m256i v,
                                   unsigned mask) noexcept {
  const __m256i perm = _mm256_load_si256(
      reinterpret_cast<const __m256i*>(kCompressTable.perm[mask]));
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(out),
                      _mm256_permutevar8x32_epi32(v, perm));
  return static_cast<unsigned>(__builtin_popcount(mask));
}

/// Exact-width variant for a kernel's final partial group: same left-pack,
/// but a vpmaskmovd store that writes only the selected-lane count, so the
/// destination needs no slack past `out + popcount(mask)` (the out[n]
/// poison-sentinel contract holds even when the group straddles the end).
inline unsigned compress_maskstore_u32(std::uint32_t* out, __m256i v,
                                       unsigned mask) noexcept {
  const __m256i perm = _mm256_load_si256(
      reinterpret_cast<const __m256i*>(kCompressTable.perm[mask]));
  const int k = __builtin_popcount(mask);
  const __m256i keep = _mm256_cmpgt_epi32(
      _mm256_set1_epi32(k), _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7));
  _mm256_maskstore_epi32(reinterpret_cast<int*>(out), keep,
                         _mm256_permutevar8x32_epi32(v, perm));
  return static_cast<unsigned>(k);
}

}  // namespace vpm::net::detail

#endif  // defined(__AVX2__)

#endif  // VPM_NET_COMPRESS_STORE_AVX2_HPP
