// Batch J-window time-compare kernels behind the SIMD dispatch shim.
//
// Algorithm 2's reorder-tolerance machinery repeatedly asks one question
// of a run of timestamped records: "is this record still within the J
// window?" — the cut-time `trans.before` walk over the J-ring and the
// pending-aggregate finalization partition both reduce to a strided
// 64-bit `time >= cutoff` compare.  These kernels do that compare eight
// records per iteration: one compress-stores the ids of in-window records
// (the ring walk), the other materializes the raw keep-mask so the caller
// can drive any order-preserving partition off it (finalize_due's stable
// partition).  Both take cutoff = now - J, which is exactly the scalar
// `t + J >= now` predicate rearranged (timestamps are nanosecond int64s
// nowhere near the edges, and both tiers share the rearranged form, so
// tier identity is exact).
//
// Byte-identity with the scalar walks is pinned by
// tests/simd_dispatch_test.cpp.
#ifndef VPM_NET_WINDOW_BATCH_HPP
#define VPM_NET_WINDOW_BATCH_HPP

#include <cstddef>
#include <cstdint>

namespace vpm::net::detail {

/// Window-collect kernel: scan `n` records of `stride` bytes at `records`
/// — little-endian uint32 id in the first four bytes, int64 nanosecond
/// timestamp at byte offset `time_off` — and write the ids of records
/// with time >= cutoff_ns to `out_ids` in record order, returning how
/// many.  Contract mirrors SweepSelectFn: `out_ids` must hold `n`
/// entries, entries past the returned count are unspecified scratch,
/// `out_ids[n]` is never written.  The AVX2 kernel requires
/// stride % 8 == 0 and time_off % 8 == 0 (qword gather) on top of the
/// stride % 4, n * stride < 2^31 dword-gather bounds.
using WindowCollectFn = std::size_t (*)(const std::byte* records,
                                        std::size_t stride,
                                        std::size_t time_off, std::size_t n,
                                        std::int64_t cutoff_ns,
                                        std::uint32_t* out_ids);

std::size_t window_collect_scalar(const std::byte* records, std::size_t stride,
                                  std::size_t time_off, std::size_t n,
                                  std::int64_t cutoff_ns,
                                  std::uint32_t* out_ids) noexcept;

[[nodiscard]] WindowCollectFn window_collect_avx2() noexcept;

/// Time-mask kernel: set bit i of `mask_words` (little-endian bit order:
/// word i/64, bit i%64) when the record-i timestamp (int64 at byte offset
/// `time_off` of the i-th `stride`-byte record) satisfies
/// time >= cutoff_ns.  The kernel zero-fills all (n+63)/64 words first;
/// bits at and beyond `n` in the last word are zero; later words are
/// never touched.  Same stride/offset alignment contract as
/// WindowCollectFn for the AVX2 kernel.
using TimeGeMaskFn = void (*)(const std::byte* records, std::size_t stride,
                              std::size_t time_off, std::size_t n,
                              std::int64_t cutoff_ns,
                              std::uint64_t* mask_words);

void time_ge_mask_scalar(const std::byte* records, std::size_t stride,
                         std::size_t time_off, std::size_t n,
                         std::int64_t cutoff_ns,
                         std::uint64_t* mask_words) noexcept;

[[nodiscard]] TimeGeMaskFn time_ge_mask_avx2() noexcept;

}  // namespace vpm::net::detail

#endif  // VPM_NET_WINDOW_BATCH_HPP
