#include "net/bob_hash.hpp"

#include <bit>
#include <cstring>

namespace vpm::net {
namespace {

using lookup3::final_mix;
using lookup3::mix;

// Read up to 4 little-endian bytes from `p` (length `n` in [1,4]).  The
// full-word case takes a single unaligned load on little-endian targets —
// output-identical to the byte loop, and the dominant case on the hot
// path (a default-spec digest issues five of these per packet).
std::uint32_t load_le(const std::byte* p, std::size_t n) noexcept {
  if constexpr (std::endian::native == std::endian::little) {
    if (n == 4) {
      std::uint32_t v;
      std::memcpy(&v, p, 4);
      return v;
    }
  }
  std::uint32_t v = 0;
  for (std::size_t i = 0; i < n; ++i) {
    v |= static_cast<std::uint32_t>(std::to_integer<std::uint8_t>(p[i]))
         << (8u * i);
  }
  return v;
}

}  // namespace

std::uint32_t bob_hash(std::span<const std::byte> key,
                       std::uint32_t initval) noexcept {
  // hashlittle() from lookup3.c, byte-at-a-time variant: identical output
  // on all architectures (the original switches on alignment only as an
  // optimisation; results agree).
  const std::size_t length = key.size();
  std::uint32_t a = lookup3::init(length, initval);
  std::uint32_t b = a;
  std::uint32_t c = a;

  const std::byte* k = key.data();
  std::size_t len = length;
  while (len > 12) {
    a += load_le(k, 4);
    b += load_le(k + 4, 4);
    c += load_le(k + 8, 4);
    mix(a, b, c);
    len -= 12;
    k += 12;
  }

  // Last block: affect all of (a,b,c).
  if (len == 0) return c;  // zero-length tail: skip final mix per lookup3
  if (len <= 4) {
    a += load_le(k, len);
  } else if (len <= 8) {
    a += load_le(k, 4);
    b += load_le(k + 4, len - 4);
  } else {
    a += load_le(k, 4);
    b += load_le(k + 4, 4);
    c += load_le(k + 8, len - 8);
  }
  final_mix(a, b, c);
  return c;
}

std::uint32_t bob_hash_words(std::span<const std::uint32_t> key,
                             std::uint32_t initval) noexcept {
  // hashword() from lookup3.c.
  std::size_t length = key.size();
  std::uint32_t a =
      0xdeadbeefu + (static_cast<std::uint32_t>(length) << 2) + initval;
  std::uint32_t b = a;
  std::uint32_t c = a;

  const std::uint32_t* k = key.data();
  while (length > 3) {
    a += k[0];
    b += k[1];
    c += k[2];
    mix(a, b, c);
    length -= 3;
    k += 3;
  }
  switch (length) {
    case 3:
      c += k[2];
      [[fallthrough]];
    case 2:
      b += k[1];
      [[fallthrough]];
    case 1:
      a += k[0];
      final_mix(a, b, c);
      break;
    case 0:
      break;
  }
  return c;
}

std::uint32_t bob_hash_pair(std::uint32_t a, std::uint32_t b,
                            std::uint32_t initval) noexcept {
  const std::uint32_t words[2] = {a, b};
  return bob_hash_words(words, initval);
}

}  // namespace vpm::net
