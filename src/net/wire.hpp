// Bounds-checked binary serialization primitives for the receipt wire
// format (little-endian, fixed-width fields).
//
// Receipts cross trust boundaries — a verifier parses receipts produced by
// *other domains* (Section 4), so the reader must treat input as hostile:
// every read is bounds-checked and malformed input raises WireError rather
// than corrupting state.
#ifndef VPM_NET_WIRE_HPP
#define VPM_NET_WIRE_HPP

#include <cstddef>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace vpm::net {

/// Raised on truncated or malformed wire input.
///
/// Two severities, because the two failure modes demand opposite consumer
/// reactions (ISSUE 6): a TRANSIENT error means the bytes so far are a
/// well-formed prefix that simply ends early — a truncated fetch the
/// consumer should retry with the complete payload, leaving decoder state
/// untouched.  A FATAL error means the bytes are structurally wrong
/// (hostile or corrupt); retrying the same stream cannot help and the
/// decoder must resynchronize at the next self-delimiting boundary.
class WireError : public std::runtime_error {
 public:
  enum class Severity : std::uint8_t {
    kFatal,      ///< malformed content: retry cannot succeed
    kTransient,  ///< incomplete input: retry with the full payload
  };

  explicit WireError(const std::string& what,
                     Severity severity = Severity::kFatal)
      : std::runtime_error(what), severity_(severity) {}

  [[nodiscard]] Severity severity() const noexcept { return severity_; }
  [[nodiscard]] bool transient() const noexcept {
    return severity_ == Severity::kTransient;
  }

 private:
  Severity severity_ = Severity::kFatal;
};

/// Append-only little-endian byte sink.
class ByteWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(static_cast<std::byte>(v)); }
  void u16(std::uint16_t v) { put_le(v, 2); }
  /// 24-bit field: the paper's 3-byte timestamps (Section 7.1).
  void u24(std::uint32_t v) { put_le(v & 0xFFFFFFu, 3); }
  void u32(std::uint32_t v) { put_le(v, 4); }
  void u64(std::uint64_t v) { put_le(v, 8); }
  void i64(std::int64_t v) { put_le(static_cast<std::uint64_t>(v), 8); }
  void bytes(std::span<const std::byte> data) {
    buf_.insert(buf_.end(), data.begin(), data.end());
  }

  [[nodiscard]] std::span<const std::byte> view() const noexcept {
    return buf_;
  }
  [[nodiscard]] std::vector<std::byte> take() && { return std::move(buf_); }
  [[nodiscard]] std::size_t size() const noexcept { return buf_.size(); }

 private:
  void put_le(std::uint64_t v, unsigned nbytes) {
    for (unsigned i = 0; i < nbytes; ++i) {
      buf_.push_back(static_cast<std::byte>((v >> (8 * i)) & 0xFFu));
    }
  }
  std::vector<std::byte> buf_;
};

/// Sequential bounds-checked little-endian reader over a byte view.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::byte> data) noexcept
      : data_(data) {}

  [[nodiscard]] std::uint8_t u8() {
    return static_cast<std::uint8_t>(get_le(1));
  }
  [[nodiscard]] std::uint16_t u16() {
    return static_cast<std::uint16_t>(get_le(2));
  }
  [[nodiscard]] std::uint32_t u24() {
    return static_cast<std::uint32_t>(get_le(3));
  }
  [[nodiscard]] std::uint32_t u32() {
    return static_cast<std::uint32_t>(get_le(4));
  }
  [[nodiscard]] std::uint64_t u64() { return get_le(8); }
  [[nodiscard]] std::int64_t i64() {
    return static_cast<std::int64_t>(get_le(8));
  }

  /// Advance past `n` bytes without decoding them (bounds-checked) — for
  /// structural scans and resync walks over self-framing sections.
  void skip(std::size_t n) {
    expect_at_least(n);
    pos_ += n;
  }

  [[nodiscard]] std::size_t remaining() const noexcept {
    return data_.size() - pos_;
  }
  [[nodiscard]] bool done() const noexcept { return pos_ == data_.size(); }

  /// Require exactly `n` more bytes (for validating counted sections).
  /// Throws TRANSIENT: running out of bytes means the input is (at most) a
  /// prefix of a valid stream — the retryable failure mode.  Callers that
  /// can prove the full payload is present (a sealed envelope) wrap it
  /// into a fatal error at their boundary.
  void expect_at_least(std::size_t n) const {
    if (remaining() < n) {
      throw WireError("truncated input: need " + std::to_string(n) +
                          " bytes, have " + std::to_string(remaining()),
                      WireError::Severity::kTransient);
    }
  }

 private:
  std::uint64_t get_le(unsigned nbytes) {
    expect_at_least(nbytes);
    std::uint64_t v = 0;
    for (unsigned i = 0; i < nbytes; ++i) {
      v |= static_cast<std::uint64_t>(
               std::to_integer<std::uint8_t>(data_[pos_ + i]))
           << (8 * i);
    }
    pos_ += nbytes;
    return v;
  }

  std::span<const std::byte> data_;
  std::size_t pos_ = 0;
};

}  // namespace vpm::net

#endif  // VPM_NET_WIRE_HPP
