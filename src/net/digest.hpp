// Packet digests and the decision values derived from them.
//
// Section 4: "The packet identifier PktID is a digest of the packet's
// headers"; Section 7: the implementation uses the "Bob" hash over each
// packet's IP and transport headers plus a small payload portion.
//
// VPM derives three per-packet decisions from digests:
//   * packet id   -- the PktID reported in receipts,
//   * marker rule -- Digest(p) > mu starts a sampling round (Algorithm 1),
//   * cut rule    -- Digest(p) > delta starts a new aggregate (Algorithm 2),
// plus SampleFcn(Digest(q), Digest(marker)) > sigma for sample selection.
//
// One hash per packet (§7.1).  The paper's feasibility argument budgets
// "three memory accesses, ONE hash function, and one timestamp computation
// per packet", so the data plane computes the Bob hash over the packet
// bytes exactly once and derives every role value from it:
//   * DigestMode::kSingle (paper-faithful): the single digest IS the
//     PktID, marker value and cut value, byte-identical to hashing per
//     role with the id seed.
//   * DigestMode::kIndependent (default): the PktID is the single digest;
//     marker and cut values are obtained by passing it through cheap
//     seeded avalanche finalizers (distinct 32-bit bijections), so marker
//     packets are not automatically cut points.  The role values are
//     deterministic functions of the PktID — every HOP still computes the
//     same value for the same packet, which is all the subset properties
//     (Sections 5.2, 6.2) need — at the cost of pairwise information-
//     theoretic independence, the same trade the paper's single-digest
//     design makes outright.
//
// decide() returns all three values from the one hash pass; the scalar
// accessors (packet_id / marker_value / cut_value) are views of the same
// definition for callers that need a single role.  The ablation bench
// compares the modes.
#ifndef VPM_NET_DIGEST_HPP
#define VPM_NET_DIGEST_HPP

#include <cstddef>
#include <cstdint>

#include "net/packet.hpp"

namespace vpm::net {

/// Which packet fields the digest covers.  Receipts carry the spec id so a
/// verifier knows two HOPs hashed the same bytes (PathID.HeaderSpec, §4).
struct HeaderSpec {
  bool addresses = true;
  bool ports = true;
  bool protocol = true;
  bool ip_id = true;
  bool payload_prefix = true;
  bool length = false;  ///< excluded by default: some links alter framing

  /// Compact identifier for the wire format.
  [[nodiscard]] std::uint8_t id() const noexcept {
    return static_cast<std::uint8_t>(
        (addresses ? 1u : 0u) | (ports ? 2u : 0u) | (protocol ? 4u : 0u) |
        (ip_id ? 8u : 0u) | (payload_prefix ? 16u : 0u) | (length ? 32u : 0u));
  }
  [[nodiscard]] static HeaderSpec from_id(std::uint8_t id) noexcept {
    return HeaderSpec{.addresses = (id & 1u) != 0,
                      .ports = (id & 2u) != 0,
                      .protocol = (id & 4u) != 0,
                      .ip_id = (id & 8u) != 0,
                      .payload_prefix = (id & 16u) != 0,
                      .length = (id & 32u) != 0};
  }
  friend bool operator==(const HeaderSpec&, const HeaderSpec&) = default;
};

enum class DigestMode : std::uint8_t {
  kSingle,       ///< paper-faithful: one digest value for id/marker/cut
  kIndependent,  ///< independently seeded hashes per role (default)
};

/// A 32-bit packet digest (the paper's 4-byte PktID).
using PacketDigest = std::uint32_t;

/// Every digest-derived decision value for one packet, computed with a
/// single hash pass over the packet bytes (the §7.1 "one hash function per
/// packet" budget).  This is what the data-plane fast path threads through
/// DelaySampler::observe / Aggregator::observe / HopMonitor::observe.
struct PacketDecisions {
  PacketDigest id = 0;            ///< the PktID reported in receipts
  std::uint32_t marker_value = 0; ///< compared against mu (Alg. 1, line 1)
  std::uint32_t cut_value = 0;    ///< compared against delta (Alg. 2, line 1)

  friend bool operator==(const PacketDecisions&,
                         const PacketDecisions&) = default;
};

/// Computes all digest-derived values for packets.  Every HOP in a
/// deployment must construct this with identical parameters — it is part of
/// the protocol definition, not a local tuning knob.
class DigestEngine {
 public:
  explicit DigestEngine(HeaderSpec spec = HeaderSpec{},
                        DigestMode mode = DigestMode::kIndependent) noexcept
      : spec_(spec), mode_(mode), default_spec_(spec == HeaderSpec{}) {}

  [[nodiscard]] const HeaderSpec& spec() const noexcept { return spec_; }
  [[nodiscard]] DigestMode mode() const noexcept { return mode_; }

  /// All role values from one hash pass — the data-plane entry point.
  /// In kSingle mode id == marker_value == cut_value; in kIndependent mode
  /// marker/cut are seeded avalanche mixes of the id (see header comment).
  [[nodiscard]] PacketDecisions decide(const Packet& p) const noexcept;

  /// Batch decide: out[i] = decide(pkts[idx[i]]) for i in [0, n), or
  /// decide(pkts[i]) when idx == nullptr.  For the default spec this runs
  /// the 8-wide lookup3 kernel selected by simd::active_tier() (AVX2 hosts
  /// hash eight packets in parallel); any other spec falls back to the
  /// scalar engine.  Byte-identical to calling decide() per packet — the
  /// dispatch equivalence suite pins this.  The idx form lets the
  /// monitoring cache hash only known-path packets, preserving the "one
  /// hash per *observed* packet" accounting.
  void decide_batch(const Packet* pkts, const std::uint32_t* idx,
                    std::size_t n, PacketDecisions* out) const noexcept;

  /// The PktID reported in receipts.
  [[nodiscard]] PacketDigest packet_id(const Packet& p) const noexcept;
  /// Value compared against the marker threshold mu (Algorithm 1, line 1).
  /// Equals decide(p).marker_value; costs a full hash pass — prefer
  /// decide() when more than one role value is needed.
  [[nodiscard]] std::uint32_t marker_value(const Packet& p) const noexcept;
  /// Value compared against the partition threshold delta (Alg. 2, line 1).
  /// Equals decide(p).cut_value.
  [[nodiscard]] std::uint32_t cut_value(const Packet& p) const noexcept;

  /// SampleFcn(Digest(q), Digest(marker)) from Algorithm 1, line 3.  Static:
  /// it must be the same function at every HOP for the subset property.
  [[nodiscard]] static std::uint32_t sample_value(
      PacketDigest q_id, PacketDigest marker_id) noexcept;

 private:
  [[nodiscard]] std::uint32_t hash_fields(const Packet& p,
                                          std::uint32_t seed) const noexcept;

  HeaderSpec spec_;
  DigestMode mode_;
  /// Cached `spec_ == HeaderSpec{}` so the per-packet hash dispatch is one
  /// predictable branch, not a six-member struct compare.
  bool default_spec_;
};

/// Convert a target rate in [0,1] to a `value > threshold` cutoff over the
/// uniform 32-bit digest range: P(value > threshold) == rate (up to 2^-32).
[[nodiscard]] std::uint32_t rate_to_threshold(double rate);
/// Inverse of rate_to_threshold.
[[nodiscard]] double threshold_to_rate(std::uint32_t threshold) noexcept;

}  // namespace vpm::net

#endif  // VPM_NET_DIGEST_HPP
