// Packet digests and the decision values derived from them.
//
// Section 4: "The packet identifier PktID is a digest of the packet's
// headers"; Section 7: the implementation uses the "Bob" hash over each
// packet's IP and transport headers plus a small payload portion.
//
// VPM derives three per-packet decisions from digests:
//   * packet id   -- the PktID reported in receipts,
//   * marker rule -- Digest(p) > mu starts a sampling round (Algorithm 1),
//   * cut rule    -- Digest(p) > delta starts a new aggregate (Algorithm 2),
// plus SampleFcn(Digest(q), Digest(marker)) > sigma for sample selection.
//
// The paper uses a single digest value for all roles.  We support that
// (DigestMode::kSingle) and an independent-seeds variant (kIndependent,
// default) where marker/cut/sample decisions come from independently seeded
// hashes, so e.g. marker packets are not automatically cut points.  Both
// preserve the determinism that the subset properties (Sections 5.2, 6.2)
// rely on; the ablation bench compares them.
#ifndef VPM_NET_DIGEST_HPP
#define VPM_NET_DIGEST_HPP

#include <cstdint>

#include "net/packet.hpp"

namespace vpm::net {

/// Which packet fields the digest covers.  Receipts carry the spec id so a
/// verifier knows two HOPs hashed the same bytes (PathID.HeaderSpec, §4).
struct HeaderSpec {
  bool addresses = true;
  bool ports = true;
  bool protocol = true;
  bool ip_id = true;
  bool payload_prefix = true;
  bool length = false;  ///< excluded by default: some links alter framing

  /// Compact identifier for the wire format.
  [[nodiscard]] std::uint8_t id() const noexcept {
    return static_cast<std::uint8_t>(
        (addresses ? 1u : 0u) | (ports ? 2u : 0u) | (protocol ? 4u : 0u) |
        (ip_id ? 8u : 0u) | (payload_prefix ? 16u : 0u) | (length ? 32u : 0u));
  }
  [[nodiscard]] static HeaderSpec from_id(std::uint8_t id) noexcept {
    return HeaderSpec{.addresses = (id & 1u) != 0,
                      .ports = (id & 2u) != 0,
                      .protocol = (id & 4u) != 0,
                      .ip_id = (id & 8u) != 0,
                      .payload_prefix = (id & 16u) != 0,
                      .length = (id & 32u) != 0};
  }
  friend bool operator==(const HeaderSpec&, const HeaderSpec&) = default;
};

enum class DigestMode : std::uint8_t {
  kSingle,       ///< paper-faithful: one digest value for id/marker/cut
  kIndependent,  ///< independently seeded hashes per role (default)
};

/// A 32-bit packet digest (the paper's 4-byte PktID).
using PacketDigest = std::uint32_t;

/// Computes all digest-derived values for packets.  Every HOP in a
/// deployment must construct this with identical parameters — it is part of
/// the protocol definition, not a local tuning knob.
class DigestEngine {
 public:
  explicit DigestEngine(HeaderSpec spec = HeaderSpec{},
                        DigestMode mode = DigestMode::kIndependent) noexcept
      : spec_(spec), mode_(mode) {}

  [[nodiscard]] const HeaderSpec& spec() const noexcept { return spec_; }
  [[nodiscard]] DigestMode mode() const noexcept { return mode_; }

  /// The PktID reported in receipts.
  [[nodiscard]] PacketDigest packet_id(const Packet& p) const noexcept;
  /// Value compared against the marker threshold mu (Algorithm 1, line 1).
  [[nodiscard]] std::uint32_t marker_value(const Packet& p) const noexcept;
  /// Value compared against the partition threshold delta (Alg. 2, line 1).
  [[nodiscard]] std::uint32_t cut_value(const Packet& p) const noexcept;

  /// SampleFcn(Digest(q), Digest(marker)) from Algorithm 1, line 3.  Static:
  /// it must be the same function at every HOP for the subset property.
  [[nodiscard]] static std::uint32_t sample_value(
      PacketDigest q_id, PacketDigest marker_id) noexcept;

 private:
  [[nodiscard]] std::uint32_t hash_fields(const Packet& p,
                                          std::uint32_t seed) const noexcept;

  HeaderSpec spec_;
  DigestMode mode_;
};

/// Convert a target rate in [0,1] to a `value > threshold` cutoff over the
/// uniform 32-bit digest range: P(value > threshold) == rate (up to 2^-32).
[[nodiscard]] std::uint32_t rate_to_threshold(double rate);
/// Inverse of rate_to_threshold.
[[nodiscard]] double threshold_to_rate(std::uint32_t threshold) noexcept;

}  // namespace vpm::net

#endif  // VPM_NET_DIGEST_HPP
