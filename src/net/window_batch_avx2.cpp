// AVX2 J-window kernels: eight strided records per iteration.
//
// Timestamps are 64-bit, so each group takes two four-lane qword gathers
// and two vpcmpgtq compares; `time >= cutoff` is computed as
// NOT (cutoff > time) — exact at every int64 value, no bias or cutoff-1
// edge case.  The two four-bit movemask nibbles concatenate into the same
// eight-bit group mask the 32-bit kernels use, feeding the shared
// compress-store table (window_collect) or a word accumulator
// (time_ge_mask).
//
// Compiled with -mavx2 (see CMakeLists); null stubs without __AVX2__.
// The kernels require stride % 8 == 0 and time_off % 8 == 0 (qword
// gather indices must land exactly); callers falling outside that
// contract must take the scalar kernels instead.
#include "net/window_batch.hpp"

#if defined(__AVX2__)

#include <immintrin.h>

#include "net/compress_store_avx2.hpp"

namespace vpm::net::detail {
namespace {

inline __m256i lane8() noexcept {
  return _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7);
}

/// Keep-mask (bit l = lane l) for the records named by `rows` (eight
/// record indices as dword lanes; duplicates are allowed, which is what
/// lets the final partial group clamp to the last record).
inline unsigned keep8_rows(const std::byte* records, std::size_t stride,
                           std::size_t time_off, __m256i rows,
                           __m256i vcut) noexcept {
  const __m256i q = _mm256_add_epi32(
      _mm256_mullo_epi32(rows, _mm256_set1_epi32(static_cast<int>(stride / 8))),
      _mm256_set1_epi32(static_cast<int>(time_off / 8)));
  const auto* qbase = reinterpret_cast<const long long*>(records);
  const __m256i t_lo =
      _mm256_i32gather_epi64(qbase, _mm256_castsi256_si128(q), 8);
  const __m256i t_hi =
      _mm256_i32gather_epi64(qbase, _mm256_extracti128_si256(q, 1), 8);
  // keep = NOT (cutoff > t)  <=>  t >= cutoff.
  const unsigned lo = static_cast<unsigned>(_mm256_movemask_pd(
      _mm256_castsi256_pd(_mm256_cmpgt_epi64(vcut, t_lo))));
  const unsigned hi = static_cast<unsigned>(_mm256_movemask_pd(
      _mm256_castsi256_pd(_mm256_cmpgt_epi64(vcut, t_hi))));
  return (~(lo | (hi << 4))) & 0xFFu;
}

/// Rows i..i+7, clamped to the last record so a partial group's spare
/// lanes re-read in-bounds data (their mask bits are dropped by callers).
inline __m256i rows_clamped(std::size_t i, std::size_t n) noexcept {
  return _mm256_min_epi32(
      _mm256_add_epi32(lane8(), _mm256_set1_epi32(static_cast<int>(i))),
      _mm256_set1_epi32(static_cast<int>(n - 1)));
}

std::size_t window_collect_avx2_impl(const std::byte* records,
                                     std::size_t stride, std::size_t time_off,
                                     std::size_t n, std::int64_t cutoff_ns,
                                     std::uint32_t* out_ids) noexcept {
  const __m256i vcut = _mm256_set1_epi64x(cutoff_ns);
  const __m256i vsd = _mm256_set1_epi32(static_cast<int>(stride / 4));
  std::size_t m = 0;
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i rows =
        _mm256_add_epi32(lane8(), _mm256_set1_epi32(static_cast<int>(i)));
    const unsigned mask = keep8_rows(records, stride, time_off, rows, vcut);
    const __m256i ids = _mm256_i32gather_epi32(
        reinterpret_cast<const int*>(records), _mm256_mullo_epi32(rows, vsd),
        4);
    // Safe 8-lane store: m <= i, so the slack stays inside out_ids[0..n).
    m += compress_store_u32(out_ids + m, ids, mask);
  }
  if (i < n) {
    const __m256i rows = rows_clamped(i, n);
    const unsigned mask = keep8_rows(records, stride, time_off, rows, vcut) &
                          ((1u << (n - i)) - 1u);
    const __m256i ids = _mm256_i32gather_epi32(
        reinterpret_cast<const int*>(records), _mm256_mullo_epi32(rows, vsd),
        4);
    m += compress_maskstore_u32(out_ids + m, ids, mask);
  }
  return m;
}

void time_ge_mask_avx2_impl(const std::byte* records, std::size_t stride,
                            std::size_t time_off, std::size_t n,
                            std::int64_t cutoff_ns,
                            std::uint64_t* mask_words) noexcept {
  for (std::size_t w = 0; w < (n + 63) / 64; ++w) mask_words[w] = 0;
  const __m256i vcut = _mm256_set1_epi64x(cutoff_ns);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i rows =
        _mm256_add_epi32(lane8(), _mm256_set1_epi32(static_cast<int>(i)));
    const std::uint64_t mask =
        keep8_rows(records, stride, time_off, rows, vcut);
    // i is a multiple of 8, so the group's bits never straddle a word.
    mask_words[i >> 6] |= mask << (i & 63);
  }
  if (i < n) {
    const std::uint64_t mask =
        keep8_rows(records, stride, time_off, rows_clamped(i, n), vcut) &
        ((1u << (n - i)) - 1u);
    mask_words[i >> 6] |= mask << (i & 63);
  }
}

}  // namespace

WindowCollectFn window_collect_avx2() noexcept {
  return &window_collect_avx2_impl;
}

TimeGeMaskFn time_ge_mask_avx2() noexcept { return &time_ge_mask_avx2_impl; }

}  // namespace vpm::net::detail

#else  // !defined(__AVX2__)

namespace vpm::net::detail {

WindowCollectFn window_collect_avx2() noexcept { return nullptr; }

TimeGeMaskFn time_ge_mask_avx2() noexcept { return nullptr; }

}  // namespace vpm::net::detail

#endif  // defined(__AVX2__)
