// Batch digest kernels behind the SIMD dispatch shim (net/simd_dispatch).
//
// The data-plane batch loop digests packets in chunks; for the default
// header spec the digest is a FIXED 23-byte lookup3 message, so eight
// packets can run the mix/final_mix lattice in parallel as 8 lanes of
// 32-bit adds/xors/rotates (AVX2).  This header holds everything both
// implementations share — the role seeds, the seeded avalanche finalizer,
// and the scalar 23-byte digest (the single source of truth the scalar
// engine path, the scalar batch kernel and the AVX2 tail all call) — plus
// the kernel function-pointer types the dispatcher binds at startup.
//
// Byte-identity is the contract: every kernel must produce exactly
// bob_hash() over the serialized default-spec layout (pinned by the
// digest tests and tests/simd_dispatch_test.cpp).
#ifndef VPM_NET_DIGEST_BATCH_HPP
#define VPM_NET_DIGEST_BATCH_HPP

#include <cstddef>
#include <cstdint>

#include "net/bob_hash.hpp"
#include "net/digest.hpp"
#include "net/packet.hpp"

namespace vpm::net::detail {

// Role seeds: arbitrary distinct constants fixed at protocol design time
// (system-wide, like the marker threshold mu in Section 5.1).
inline constexpr std::uint32_t kIdSeed = 0x56504d31u;      // "VPM1"
inline constexpr std::uint32_t kMarkerSeed = 0x4d41524bu;  // "MARK"
inline constexpr std::uint32_t kCutSeed = 0x43555421u;     // "CUT!"
inline constexpr std::uint32_t kSampleSeed = 0x53414d50u;  // "SAMP"

// Seeded avalanche finalizer: a 32-bit bijection per seed (xor, then
// multiply by an odd constant, then fold the high bits down), so role
// values stay uniform whenever the base digest is.  This is how
// kIndependent derives marker/cut values from the single per-packet hash
// instead of re-hashing the full header.  One multiply (vs murmur3's
// two-multiply fmix32) keeps the §7.1 per-packet budget at "one hash plus
// a few cycles"; the marker/cut decisions only compare against a
// threshold, for which the multiplicative scramble of the high bits is
// ample.
constexpr std::uint32_t role_mix(std::uint32_t x, std::uint32_t seed) noexcept {
  x = (x ^ seed) * 0x9E3779B1u;  // odd multiplier: bijective mod 2^32
  x ^= x >> 16;
  return x;
}

/// The default-spec digest: all header fields but length, 23 bytes,
/// streamed into the lookup3 state as assembled little-endian words
/// (output-identical to bob_hash over the serialized layout; see
/// DigestEngine::hash_fields for the buffer path it mirrors).
inline std::uint32_t digest23(const Packet& p, std::uint32_t seed) noexcept {
  const PacketHeader& h = p.header;
  std::uint32_t a = lookup3::init(23, seed);
  std::uint32_t b = a;
  std::uint32_t c = a;
  // Bytes 0..11: src, dst, src_port | dst_port.
  a += h.src.value();
  b += h.dst.value();
  c += static_cast<std::uint32_t>(h.src_port) |
       (static_cast<std::uint32_t>(h.dst_port) << 16);
  lookup3::mix(a, b, c);
  // Tail bytes 12..22: protocol, ip_id, payload_prefix.
  a += static_cast<std::uint32_t>(h.protocol) |
       (static_cast<std::uint32_t>(h.ip_id) << 8) |
       (static_cast<std::uint32_t>(p.payload_prefix & 0xFFu) << 24);
  b += static_cast<std::uint32_t>((p.payload_prefix >> 8) & 0xFFFFFFFFu);
  c += static_cast<std::uint32_t>((p.payload_prefix >> 40) & 0xFFFFFFu);
  lookup3::final_mix(a, b, c);
  return c;
}

/// Derive all role values from a base digest under `mode` (the one
/// definition decide(), the scalar batch path and the AVX2 tail share).
inline PacketDecisions decisions_of(std::uint32_t base,
                                    DigestMode mode) noexcept {
  if (mode == DigestMode::kSingle) {
    return PacketDecisions{.id = base, .marker_value = base, .cut_value = base};
  }
  return PacketDecisions{.id = base,
                         .marker_value = role_mix(base, kMarkerSeed),
                         .cut_value = role_mix(base, kCutSeed)};
}

/// Batch kernel: decisions for default-spec packets pkts[idx[i]]
/// (idx == nullptr means pkts[i]), i in [0, n).  The idx indirection lets
/// the monitoring cache digest only the packets that classified to a
/// known path without compacting 48-byte Packet structs first.
using DecideBatchFn = void (*)(const Packet* pkts, const std::uint32_t* idx,
                               std::size_t n, DigestMode mode,
                               PacketDecisions* out);

/// Portable scalar kernel (always available; the dispatch fallback).
void decide_batch_scalar(const Packet* pkts, const std::uint32_t* idx,
                         std::size_t n, DigestMode mode,
                         PacketDecisions* out) noexcept;

/// The AVX2 kernel, or nullptr when the AVX2 translation unit was built
/// without -mavx2 (non-x86 target or unsupported compiler).  Callers must
/// additionally check simd::active_tier() before invoking.
[[nodiscard]] DecideBatchFn decide_batch_avx2() noexcept;

/// True when the AVX2 translation units were compiled with -mavx2 (the
/// simd_dispatch detection clamps to scalar otherwise).
[[nodiscard]] bool avx2_kernels_compiled() noexcept;

}  // namespace vpm::net::detail

#endif  // VPM_NET_DIGEST_BATCH_HPP
