// Portable scalar sweep-select kernel (the dispatch fallback).
#include "net/sample_batch.hpp"

#include <cstring>

#include "net/bob_hash.hpp"
#include "net/digest_batch.hpp"

namespace vpm::net::detail {

std::size_t sweep_select_scalar(const std::byte* records, std::size_t stride,
                                std::size_t n, std::uint32_t marker_id,
                                std::uint32_t threshold,
                                std::uint32_t* out_idx) noexcept {
  // Inlined bob_hash_pair(id, marker_id, kSampleSeed): a two-word hashword
  // message skips mix() entirely — init the three-word state, add the two
  // words, one final_mix.  Same value as DigestEngine::sample_value (the
  // static_assert-equivalent is pinned by tests/simd_dispatch_test.cpp).
  const std::uint32_t base = 0xdeadbeefu + (2u << 2) + kSampleSeed;
  const std::uint32_t bm = base + marker_id;
  std::size_t m = 0;
  for (std::size_t i = 0; i < n; ++i) {
    std::uint32_t id;
    std::memcpy(&id, records + i * stride, sizeof(id));
    std::uint32_t a = base + id;
    std::uint32_t b = bm;
    std::uint32_t c = base;
    lookup3::final_mix(a, b, c);
    out_idx[m] = static_cast<std::uint32_t>(i);
    m += static_cast<std::size_t>(c > threshold);
  }
  return m;
}

}  // namespace vpm::net::detail
