// AVX2 implementation of the batch digest kernel: eight packets per
// iteration, one lookup3 lane each.
//
// lookup3 over the default-spec 23-byte message is a fixed lattice of
// 32-bit adds/subs/xors/rotates on a three-word state — no data-dependent
// control flow — so eight packets map onto the eight 32-bit lanes of a ymm
// register directly: three registers hold (a, b, c) for eight packets and
// the scalar mix()/final_mix() schedules transliterate one-to-one into
// vector ops (rotate = shift-left | shift-right-complement).  The only
// scalar work left is gathering the six input words per packet out of the
// 48-byte Packet structs into stack SoA staging; the hash itself runs at
// one-eighth the scalar op count.
//
// This file is compiled with -mavx2 (see CMakeLists); everything is inside
// an __AVX2__ guard with null stubs otherwise, so the TU is always listed
// in the build and the dispatcher discovers availability at runtime via
// avx2_kernels_compiled().  Nothing here may be called unless
// simd::active_tier() == kAvx2.
#include "net/digest_batch.hpp"

#if defined(__AVX2__)

#include <immintrin.h>

#include <cstddef>

#include "net/lookup3_avx2.hpp"

namespace vpm::net::detail {
namespace {

// The input stage loads each packet's first 32 bytes as one ymm row and
// transposes 8 rows in-register (scalar staging stores would defeat
// store-to-load forwarding: eight 4-byte stores cannot forward into one
// 32-byte load).  That ties the kernel to the exact field offsets below;
// a Packet layout change must update the word extraction to match.
static_assert(sizeof(Packet) >= 32, "row loads read 32 bytes per packet");
static_assert(offsetof(Packet, header) == 0);
static_assert(offsetof(PacketHeader, src) == 0);
static_assert(offsetof(PacketHeader, dst) == 4);
static_assert(offsetof(PacketHeader, src_port) == 8);
static_assert(offsetof(PacketHeader, dst_port) == 10);
static_assert(offsetof(PacketHeader, ip_id) == 12);
static_assert(offsetof(PacketHeader, protocol) == 16);
static_assert(offsetof(Packet, payload_prefix) == 24);

// The eight-lane lookup3 schedules (rot8 / mix8 / final_mix8 / role_mix8)
// live in net/lookup3_avx2.hpp, shared with the sweep kernel.

void decide_batch_avx2_impl(const Packet* pkts, const std::uint32_t* idx,
                            std::size_t n, DigestMode mode,
                            PacketDecisions* out) noexcept {
  const __m256i init = _mm256_set1_epi32(
      static_cast<int>(lookup3::init(23, kIdSeed)));

  std::size_t g = 0;
  for (; g + 8 <= n; g += 8) {
    // Row loads: r[l] = dwords 0..7 of packet l (src, dst, ports,
    // ip_id|len, proto|tos|pad, pad, pp_lo, pp_hi).
    __m256i r0, r1, r2, r3, r4, r5, r6, r7;
    {
      auto row = [&](int l) {
        const Packet* p = &pkts[idx != nullptr ? idx[g + l] : g + l];
        return _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
      };
      r0 = row(0);
      r1 = row(1);
      r2 = row(2);
      r3 = row(3);
      r4 = row(4);
      r5 = row(5);
      r6 = row(6);
      r7 = row(7);
    }
    // 8x8 dword transpose: d[w] = word w of packets 0..7.  (d5 — padding
    // between header and payload_prefix — is never formed.)
    const __m256i t0 = _mm256_unpacklo_epi32(r0, r1);
    const __m256i t1 = _mm256_unpackhi_epi32(r0, r1);
    const __m256i t2 = _mm256_unpacklo_epi32(r2, r3);
    const __m256i t3 = _mm256_unpackhi_epi32(r2, r3);
    const __m256i t4 = _mm256_unpacklo_epi32(r4, r5);
    const __m256i t5 = _mm256_unpackhi_epi32(r4, r5);
    const __m256i t6 = _mm256_unpacklo_epi32(r6, r7);
    const __m256i t7 = _mm256_unpackhi_epi32(r6, r7);
    const __m256i u0 = _mm256_unpacklo_epi64(t0, t2);
    const __m256i u1 = _mm256_unpackhi_epi64(t0, t2);
    const __m256i u2 = _mm256_unpacklo_epi64(t1, t3);
    const __m256i u3 = _mm256_unpackhi_epi64(t1, t3);
    const __m256i u4 = _mm256_unpacklo_epi64(t4, t6);
    const __m256i u5 = _mm256_unpackhi_epi64(t4, t6);
    const __m256i u6 = _mm256_unpacklo_epi64(t5, t7);
    const __m256i u7 = _mm256_unpackhi_epi64(t5, t7);
    const __m256i d0 = _mm256_permute2x128_si256(u0, u4, 0x20);  // src
    const __m256i d1 = _mm256_permute2x128_si256(u1, u5, 0x20);  // dst
    const __m256i d2 = _mm256_permute2x128_si256(u2, u6, 0x20);  // ports
    const __m256i d3 = _mm256_permute2x128_si256(u3, u7, 0x20);  // ipid|len
    const __m256i d4 = _mm256_permute2x128_si256(u0, u4, 0x31);  // proto|tos
    const __m256i d6 = _mm256_permute2x128_si256(u2, u6, 0x31);  // pp 0..3
    const __m256i d7 = _mm256_permute2x128_si256(u3, u7, 0x31);  // pp 4..7

    // Message words (exactly what DigestEngine::hash_fields streams):
    //   w3 = proto | ip_id<<8 | pp[0]<<24,  w4 = pp bytes 1..4,
    //   w5 = pp bytes 5..7.
    const __m256i ff = _mm256_set1_epi32(0xFF);
    const __m256i w3 = _mm256_or_si256(
        _mm256_and_si256(d4, ff),
        _mm256_or_si256(
            _mm256_slli_epi32(_mm256_and_si256(d3, _mm256_set1_epi32(0xFFFF)),
                              8),
            _mm256_slli_epi32(_mm256_and_si256(d6, ff), 24)));
    const __m256i w4 = _mm256_or_si256(
        _mm256_srli_epi32(d6, 8),
        _mm256_slli_epi32(_mm256_and_si256(d7, ff), 24));
    const __m256i w5 = _mm256_srli_epi32(d7, 8);

    __m256i a = _mm256_add_epi32(init, d0);
    __m256i b = _mm256_add_epi32(init, d1);
    __m256i c = _mm256_add_epi32(init, d2);
    mix8(a, b, c);
    a = _mm256_add_epi32(a, w3);
    b = _mm256_add_epi32(b, w4);
    c = _mm256_add_epi32(c, w5);
    final_mix8(a, b, c);
    // c is the digest (base id) for all eight lanes.

    alignas(32) std::uint32_t id[8];
    alignas(32) std::uint32_t mk[8];
    alignas(32) std::uint32_t ct[8];
    _mm256_store_si256(reinterpret_cast<__m256i*>(id), c);
    if (mode == DigestMode::kSingle) {
      for (int l = 0; l < 8; ++l) {
        out[g + l] = PacketDecisions{
            .id = id[l], .marker_value = id[l], .cut_value = id[l]};
      }
    } else {
      _mm256_store_si256(reinterpret_cast<__m256i*>(mk),
                         role_mix8(c, kMarkerSeed));
      _mm256_store_si256(reinterpret_cast<__m256i*>(ct),
                         role_mix8(c, kCutSeed));
      for (int l = 0; l < 8; ++l) {
        out[g + l] = PacketDecisions{
            .id = id[l], .marker_value = mk[l], .cut_value = ct[l]};
      }
    }
  }

  // Remainder lanes (n % 8): the shared scalar digest.
  for (; g < n; ++g) {
    const Packet& p = pkts[idx != nullptr ? idx[g] : g];
    out[g] = decisions_of(digest23(p, kIdSeed), mode);
  }
}

}  // namespace

DecideBatchFn decide_batch_avx2() noexcept { return &decide_batch_avx2_impl; }

bool avx2_kernels_compiled() noexcept { return true; }

}  // namespace vpm::net::detail

#else  // !defined(__AVX2__)

namespace vpm::net::detail {

DecideBatchFn decide_batch_avx2() noexcept { return nullptr; }

bool avx2_kernels_compiled() noexcept { return false; }

}  // namespace vpm::net::detail

#endif  // defined(__AVX2__)
