// Eight-lane AVX2 transliteration of the lookup3 mixing primitives.
//
// The scalar schedules in net/bob_hash.hpp are fixed lattices of 32-bit
// adds/subs/xors/rotates with no data-dependent control flow, so they map
// one-to-one onto the eight 32-bit lanes of a ymm register (rotate =
// shift-left | shift-right-complement).  Every AVX2 kernel that runs a
// lookup3 hash — the 23-byte packet digest, the marker-sweep sample_value
// pairs — shares this ONE transliteration, so a schedule fix lands in all
// of them at once.  Byte-identity with the scalar primitives is pinned by
// tests/simd_dispatch_test.cpp.
//
// Include only from translation units compiled with -mavx2 (the
// *_avx2.cpp kernel TUs); the header is empty otherwise so an accidental
// include from portable code fails loud at the call site rather than
// emitting AVX2 instructions into a TU that must stay scalar.
#ifndef VPM_NET_LOOKUP3_AVX2_HPP
#define VPM_NET_LOOKUP3_AVX2_HPP

#if defined(__AVX2__)

#include <immintrin.h>

#include <cstdint>

namespace vpm::net::detail {

inline __m256i rot8(__m256i x, int k) noexcept {
  return _mm256_or_si256(_mm256_slli_epi32(x, k),
                         _mm256_srli_epi32(x, 32 - k));
}

// lookup3 mix() — same schedule as lookup3::mix, eight lanes wide.
inline void mix8(__m256i& a, __m256i& b, __m256i& c) noexcept {
  a = _mm256_sub_epi32(a, c);
  a = _mm256_xor_si256(a, rot8(c, 4));
  c = _mm256_add_epi32(c, b);
  b = _mm256_sub_epi32(b, a);
  b = _mm256_xor_si256(b, rot8(a, 6));
  a = _mm256_add_epi32(a, c);
  c = _mm256_sub_epi32(c, b);
  c = _mm256_xor_si256(c, rot8(b, 8));
  b = _mm256_add_epi32(b, a);
  a = _mm256_sub_epi32(a, c);
  a = _mm256_xor_si256(a, rot8(c, 16));
  c = _mm256_add_epi32(c, b);
  b = _mm256_sub_epi32(b, a);
  b = _mm256_xor_si256(b, rot8(a, 19));
  a = _mm256_add_epi32(a, c);
  c = _mm256_sub_epi32(c, b);
  c = _mm256_xor_si256(c, rot8(b, 4));
  b = _mm256_add_epi32(b, a);
}

// lookup3 final() — same schedule as lookup3::final_mix, eight lanes wide.
inline void final_mix8(__m256i& a, __m256i& b, __m256i& c) noexcept {
  c = _mm256_xor_si256(c, b);
  c = _mm256_sub_epi32(c, rot8(b, 14));
  a = _mm256_xor_si256(a, c);
  a = _mm256_sub_epi32(a, rot8(c, 11));
  b = _mm256_xor_si256(b, a);
  b = _mm256_sub_epi32(b, rot8(a, 25));
  c = _mm256_xor_si256(c, b);
  c = _mm256_sub_epi32(c, rot8(b, 16));
  a = _mm256_xor_si256(a, c);
  a = _mm256_sub_epi32(a, rot8(c, 4));
  b = _mm256_xor_si256(b, a);
  b = _mm256_sub_epi32(b, rot8(a, 14));
  c = _mm256_xor_si256(c, b);
  c = _mm256_sub_epi32(c, rot8(b, 24));
}

// role_mix(), eight lanes wide: (x ^ seed) * 0x9E3779B1; x ^= x >> 16.
inline __m256i role_mix8(__m256i x, std::uint32_t seed) noexcept {
  x = _mm256_xor_si256(x, _mm256_set1_epi32(static_cast<int>(seed)));
  x = _mm256_mullo_epi32(x, _mm256_set1_epi32(static_cast<int>(0x9E3779B1u)));
  return _mm256_xor_si256(x, _mm256_srli_epi32(x, 16));
}

}  // namespace vpm::net::detail

#endif  // defined(__AVX2__)

#endif  // VPM_NET_LOOKUP3_AVX2_HPP
