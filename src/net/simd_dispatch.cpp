#include "net/simd_dispatch.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>

#include "net/digest_batch.hpp"

namespace vpm::net::simd {
namespace {

Tier detect() noexcept {
  // The AVX2 TUs report whether they were built with -mavx2 (see
  // digest_batch_avx2.cpp); a binary without them clamps to scalar.
  if (!detail::avx2_kernels_compiled()) return Tier::kScalar;
#if defined(__x86_64__) || defined(_M_X64)
  // __builtin_cpu_supports folds in the xgetbv OS-support check, so a
  // kernel that does not save YMM state reports "no avx2" here.
  if (__builtin_cpu_supports("avx2")) return Tier::kAvx2;
#endif
  return Tier::kScalar;
}

Tier env_tier(Tier detected) noexcept {
  const char* v = std::getenv("VPM_SIMD");
  if (v == nullptr || std::strcmp(v, "auto") == 0) return detected;
  if (std::strcmp(v, "scalar") == 0) return Tier::kScalar;
  // "avx2" (or anything else): never exceed what the host supports.
  return detected;
}

// -1 == no override; otherwise the forced tier.  Relaxed atomics: the
// selection is a hint read on the hot path, and tests that force a tier
// do so from the thread that then runs the kernels.
std::atomic<int> g_forced{-1};

}  // namespace

Tier detected_tier() noexcept {
  static const Tier t = detect();
  return t;
}

Tier active_tier() noexcept {
  const int forced = g_forced.load(std::memory_order_relaxed);
  if (forced >= 0) {
    const Tier t = static_cast<Tier>(forced);
    return t == Tier::kAvx2 ? detected_tier() : t;
  }
  static const Tier from_env = env_tier(detected_tier());
  return from_env;
}

bool avx2_compiled() noexcept { return detail::avx2_kernels_compiled(); }

void force_tier(Tier t) noexcept {
  g_forced.store(static_cast<int>(t), std::memory_order_relaxed);
}

void clear_forced_tier() noexcept {
  g_forced.store(-1, std::memory_order_relaxed);
}

const char* tier_name(Tier t) noexcept {
  switch (t) {
    case Tier::kAvx2:
      return "avx2";
    case Tier::kScalar:
      break;
  }
  return "scalar";
}

}  // namespace vpm::net::simd
