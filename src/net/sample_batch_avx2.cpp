// AVX2 sweep-select kernel: eight buffered records per iteration, one
// two-word lookup3 (sample_value) lane each.
//
// The record ids arrive via a dword gather (the records are strided
// TimedDigest-shaped structs, not packed words, so a row-load transpose
// would drag the timestamp halves along for nothing); the marker id and
// the init constant broadcast once per sweep.  A two-word hashword message
// needs no mix() round — just final_mix8 — then an unsigned threshold
// compare and a compress-store of the surviving indices.
//
// This file is compiled with -mavx2 (see CMakeLists); everything is inside
// an __AVX2__ guard with null stubs otherwise.  Nothing here may be called
// unless simd::active_tier() == kAvx2.
#include "net/sample_batch.hpp"

#if defined(__AVX2__)

#include <immintrin.h>

#include "net/compress_store_avx2.hpp"
#include "net/digest_batch.hpp"
#include "net/lookup3_avx2.hpp"

namespace vpm::net::detail {
namespace {

std::size_t sweep_select_avx2_impl(const std::byte* records,
                                   std::size_t stride, std::size_t n,
                                   std::uint32_t marker_id,
                                   std::uint32_t threshold,
                                   std::uint32_t* out_idx) noexcept {
  const std::uint32_t base = 0xdeadbeefu + (2u << 2) + kSampleSeed;
  const __m256i vbase = _mm256_set1_epi32(static_cast<int>(base));
  const __m256i vb = _mm256_set1_epi32(static_cast<int>(base + marker_id));
  const __m256i sign = _mm256_set1_epi32(static_cast<int>(0x80000000u));
  // cmpgt is signed; biasing both sides by 2^31 makes it the unsigned
  // c > threshold the scalar walk performs.
  const __m256i vthr =
      _mm256_xor_si256(_mm256_set1_epi32(static_cast<int>(threshold)), sign);
  const __m256i lane = _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7);
  const int sd = static_cast<int>(stride / 4);  // contract: stride % 4 == 0
  const __m256i lane_dwords =
      _mm256_mullo_epi32(lane, _mm256_set1_epi32(sd));

  std::size_t m = 0;
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i vidx = _mm256_add_epi32(
        lane_dwords, _mm256_set1_epi32(static_cast<int>(i) * sd));
    const __m256i ids = _mm256_i32gather_epi32(
        reinterpret_cast<const int*>(records), vidx, 4);
    __m256i a = _mm256_add_epi32(vbase, ids);
    __m256i b = vb;
    __m256i c = vbase;
    final_mix8(a, b, c);
    const unsigned mask = static_cast<unsigned>(_mm256_movemask_ps(
        _mm256_castsi256_ps(_mm256_cmpgt_epi32(_mm256_xor_si256(c, sign),
                                               vthr))));
    // Safe 8-lane store: m <= i here, so out_idx[m .. m+7] stays within
    // the n-entry array while a full group remains.
    const __m256i cur =
        _mm256_add_epi32(lane, _mm256_set1_epi32(static_cast<int>(i)));
    m += compress_store_u32(out_idx + m, cur, mask);
  }
  // Remainder lanes (n % 8): one masked group.  Gather indices clamp to
  // the last record — duplicate in-bounds reads are harmless — and the
  // lane mask drops both the spare lanes' verdicts and the slack store
  // (bounded sweeps are mostly sub-group-sized, so keeping the remainder
  // on the vector path matters more than it looks).
  if (i < n) {
    const unsigned lanemask = (1u << (n - i)) - 1u;
    const __m256i rows = _mm256_min_epi32(
        _mm256_add_epi32(lane, _mm256_set1_epi32(static_cast<int>(i))),
        _mm256_set1_epi32(static_cast<int>(n - 1)));
    const __m256i ids = _mm256_i32gather_epi32(
        reinterpret_cast<const int*>(records),
        _mm256_mullo_epi32(rows, _mm256_set1_epi32(sd)), 4);
    __m256i a = _mm256_add_epi32(vbase, ids);
    __m256i b = vb;
    __m256i c = vbase;
    final_mix8(a, b, c);
    const unsigned mask =
        static_cast<unsigned>(_mm256_movemask_ps(_mm256_castsi256_ps(
            _mm256_cmpgt_epi32(_mm256_xor_si256(c, sign), vthr)))) &
        lanemask;
    m += compress_maskstore_u32(out_idx + m, rows, mask);
  }
  return m;
}

}  // namespace

SweepSelectFn sweep_select_avx2() noexcept { return &sweep_select_avx2_impl; }

}  // namespace vpm::net::detail

#else  // !defined(__AVX2__)

namespace vpm::net::detail {

SweepSelectFn sweep_select_avx2() noexcept { return nullptr; }

}  // namespace vpm::net::detail

#endif  // defined(__AVX2__)
