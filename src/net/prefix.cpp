#include "net/prefix.hpp"

#include <charconv>
#include <cstdio>

namespace vpm::net {
namespace {

// Parse an integer in [0, max]; advances `pos` past the digits.
std::uint32_t parse_component(const std::string& text, std::size_t& pos,
                              std::uint32_t max, const char* what) {
  const char* begin = text.data() + pos;
  const char* end = text.data() + text.size();
  std::uint32_t value = 0;
  auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc{} || ptr == begin || value > max) {
    throw std::invalid_argument(std::string{"bad "} + what + " in '" + text +
                                "'");
  }
  pos += static_cast<std::size_t>(ptr - begin);
  return value;
}

void expect_char(const std::string& text, std::size_t& pos, char c) {
  if (pos >= text.size() || text[pos] != c) {
    throw std::invalid_argument("expected '" + std::string{c} + "' in '" +
                                text + "'");
  }
  ++pos;
}

}  // namespace

Ipv4Address Ipv4Address::parse(const std::string& text) {
  std::size_t pos = 0;
  std::uint32_t value = 0;
  for (int i = 0; i < 4; ++i) {
    if (i > 0) expect_char(text, pos, '.');
    value = (value << 8) | parse_component(text, pos, 255, "octet");
  }
  if (pos != text.size()) {
    throw std::invalid_argument("trailing characters in '" + text + "'");
  }
  return Ipv4Address{value};
}

std::string Ipv4Address::to_string() const {
  char buf[16];
  std::snprintf(buf, sizeof buf, "%u.%u.%u.%u", (value_ >> 24) & 0xffu,
                (value_ >> 16) & 0xffu, (value_ >> 8) & 0xffu, value_ & 0xffu);
  return buf;
}

Prefix::Prefix(Ipv4Address network, std::uint8_t length)
    : network_(network), length_(length) {
  if (length > 32) {
    throw std::invalid_argument("prefix length " + std::to_string(length) +
                                " > 32");
  }
  if ((network.value() & ~mask()) != 0) {
    throw std::invalid_argument("prefix " + network.to_string() + "/" +
                                std::to_string(length) +
                                " has host bits set");
  }
}

Prefix Prefix::parse(const std::string& text) {
  const std::size_t slash = text.find('/');
  if (slash == std::string::npos) {
    throw std::invalid_argument("missing '/' in prefix '" + text + "'");
  }
  const Ipv4Address addr = Ipv4Address::parse(text.substr(0, slash));
  std::size_t pos = slash + 1;
  const std::uint32_t len = parse_component(text, pos, 32, "prefix length");
  if (pos != text.size()) {
    throw std::invalid_argument("trailing characters in '" + text + "'");
  }
  return Prefix{addr, static_cast<std::uint8_t>(len)};
}

std::string Prefix::to_string() const {
  return network_.to_string() + "/" + std::to_string(length_);
}

std::string PrefixPair::to_string() const {
  return source.to_string() + " -> " + destination.to_string();
}

}  // namespace vpm::net
