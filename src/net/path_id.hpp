// HOP identifiers and PathID: the per-path context carried in receipts.
//
// Section 4: PathID = <HeaderSpec, PreviousHOP, NextHOP, MaxDiff>, where
// MaxDiff is the agreed upper bound on timestamp differences across the
// reporting HOP's inter-domain link (consistency rule Eq. 2).  We also keep
// the origin-prefix pair that names the HOP path (Section 2), since the
// HeaderSpec "includes at least a source and destination origin-prefix
// pair".
#ifndef VPM_NET_PATH_ID_HPP
#define VPM_NET_PATH_ID_HPP

#include <cstdint>
#include <functional>
#include <string>

#include "net/digest.hpp"
#include "net/prefix.hpp"
#include "net/time.hpp"

namespace vpm::net {

/// Globally unique hand-off point identifier (the numbered boxes of Fig. 1).
using HopId = std::uint32_t;

/// Sentinel for "no HOP here" (path source before the first HOP, or path
/// destination after the last).
inline constexpr HopId kNoHop = 0xFFFFFFFFu;

/// The path context a HOP stamps on every receipt it produces.
struct PathId {
  std::uint8_t header_spec_id = HeaderSpec{}.id();
  PrefixPair prefixes;
  HopId previous_hop = kNoHop;
  HopId next_hop = kNoHop;
  /// Upper bound on cross-link timestamp difference, agreed with the HOP at
  /// the other end of this HOP's inter-domain link on this path.
  Duration max_diff;

  friend bool operator==(const PathId&, const PathId&) = default;

  /// Key identifying the HOP path itself (prefix pair + header spec),
  /// ignoring the reporter-specific fields.  Receipts about the same
  /// traffic from different HOPs share this key.
  [[nodiscard]] std::uint64_t path_key() const noexcept;

  [[nodiscard]] std::string to_string() const;
};

}  // namespace vpm::net

template <>
struct std::hash<vpm::net::PathId> {
  std::size_t operator()(const vpm::net::PathId& p) const noexcept {
    std::size_t h = std::hash<std::uint64_t>{}(p.path_key());
    h ^= std::hash<std::uint64_t>{}(
        (static_cast<std::uint64_t>(p.previous_hop) << 32) | p.next_hop);
    h ^= std::hash<std::int64_t>{}(p.max_diff.nanoseconds()) << 1;
    return h;
  }
};

#endif  // VPM_NET_PATH_ID_HPP
