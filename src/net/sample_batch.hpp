// Batch marker-sweep kernel behind the SIMD dispatch shim.
//
// Algorithm 1's marker sweep evaluates SampleFcn(q, marker) = lookup3 over
// the two digests for EVERY buffered record — the dominant per-packet cost
// of the data plane once classify + digest are vectorized (every packet is
// buffered once and swept once, so the sweep amortizes to one sample_value
// per packet).  The two-word hashword message means no mix() round at all:
// load the record ids, run one eight-lane final_mix against the broadcast
// marker id, compare against the sample threshold and compress-store the
// survivor indices.  The kernel selects; the caller (core/path_state.cpp)
// bulk-writes the survivors' SampleRecords from the returned index list.
//
// Byte-identity is the contract: survivors and their order must equal the
// scalar DigestEngine::sample_value(...) > threshold walk exactly, in both
// digest modes and for every remainder (pinned by
// tests/simd_dispatch_test.cpp).
#ifndef VPM_NET_SAMPLE_BATCH_HPP
#define VPM_NET_SAMPLE_BATCH_HPP

#include <cstddef>
#include <cstdint>

namespace vpm::net::detail {

/// Sweep-select kernel: scan `n` records of `stride` bytes starting at
/// `records`, whose first four bytes are the little-endian packet digest.
/// Writes the ascending indices i with
/// sample_value(id(i), marker_id) > threshold into `out_idx` and returns
/// how many.  Contract:
///   * `out_idx` must have room for `n` entries; entries at and beyond the
///     returned count are unspecified scratch, but `out_idx[n]` and beyond
///     are never written (survivors-so-far <= group base bounds the AVX2
///     compress store's 8-lane slack inside the array);
///   * `stride` must be a multiple of 4 and `n * stride` below 2^31 (the
///     AVX2 gather indexes dwords with signed 32-bit lanes).
using SweepSelectFn = std::size_t (*)(const std::byte* records,
                                      std::size_t stride, std::size_t n,
                                      std::uint32_t marker_id,
                                      std::uint32_t threshold,
                                      std::uint32_t* out_idx);

/// Portable scalar kernel (always available; the dispatch fallback).
/// Branchless: the index write is unconditional and the cursor advances by
/// the comparison result, so sweep cost does not depend on survivor
/// density.
std::size_t sweep_select_scalar(const std::byte* records, std::size_t stride,
                                std::size_t n, std::uint32_t marker_id,
                                std::uint32_t threshold,
                                std::uint32_t* out_idx) noexcept;

/// The AVX2 kernel, or nullptr when the AVX2 translation unit was built
/// without -mavx2.  Callers must additionally check simd::active_tier().
[[nodiscard]] SweepSelectFn sweep_select_avx2() noexcept;

}  // namespace vpm::net::detail

#endif  // VPM_NET_SAMPLE_BATCH_HPP
