#include "net/lpm.hpp"

namespace vpm::net {

struct LpmTable::Node {
  std::optional<std::uint32_t> value;
  std::unique_ptr<Node> child[2];
};

LpmTable::LpmTable() : root_(std::make_unique<Node>()) {}
LpmTable::~LpmTable() = default;
LpmTable::LpmTable(LpmTable&&) noexcept = default;
LpmTable& LpmTable::operator=(LpmTable&&) noexcept = default;

namespace {

/// Bit `i` of the address, counting from the most significant.
unsigned bit_at(std::uint32_t addr, unsigned i) {
  return (addr >> (31u - i)) & 1u;
}

}  // namespace

void LpmTable::insert(const Prefix& prefix, std::uint32_t value) {
  Node* node = root_.get();
  const std::uint32_t addr = prefix.network().value();
  for (unsigned i = 0; i < prefix.length(); ++i) {
    const unsigned b = bit_at(addr, i);
    if (!node->child[b]) node->child[b] = std::make_unique<Node>();
    node = node->child[b].get();
  }
  if (!node->value.has_value()) ++entries_;
  node->value = value;
}

std::optional<std::uint32_t> LpmTable::lookup(Ipv4Address addr) const {
  std::optional<std::uint32_t> best = root_->value;
  const Node* node = root_.get();
  const std::uint32_t a = addr.value();
  for (unsigned i = 0; i < 32; ++i) {
    const Node* next = node->child[bit_at(a, i)].get();
    if (next == nullptr) break;
    node = next;
    if (node->value.has_value()) best = node->value;
  }
  return best;
}

std::optional<std::uint32_t> LpmTable::exact(const Prefix& p) const {
  const Node* node = root_.get();
  const std::uint32_t addr = p.network().value();
  for (unsigned i = 0; i < p.length(); ++i) {
    const Node* next = node->child[bit_at(addr, i)].get();
    if (next == nullptr) return std::nullopt;
    node = next;
  }
  return node->value;
}

}  // namespace vpm::net
