#include "core/alignment.hpp"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

namespace vpm::core {
namespace {

/// The cutting-packet id of the boundary that closed receipt `i` (the next
/// aggregate's first packet), or 0 if unknown/final.
net::PacketDigest boundary_of(std::span<const AggregateReceipt> seq,
                              std::size_t i) {
  if (!seq[i].trans.after.empty()) return seq[i].trans.after.front();
  if (i + 1 < seq.size()) return seq[i + 1].agg.first;
  return 0;
}

/// Each side's boundary-id membership plus the "inverted" subset: common
/// cutting-point ids whose neighbourhood order differs between the two
/// sequences.  Two cutting points that land within the reorder window of
/// each other can swap across a link; both the pairwise migration
/// arithmetic and the 1:1 boundary match assume a shared boundary order,
/// so inverted boundaries must be treated as unmatchable — patch-up skips
/// them and the join coarsens across them on both sides.  Detection:
/// restrict each side's boundary sequence to the ids present on both
/// sides; an id whose predecessor differs between the restricted
/// sequences sits in an order-swapped neighbourhood.  (Loss-merged
/// boundaries are absent from one side, hence excluded, so plain loss
/// never marks a boundary inverted.)
///
/// Deliberately conservative: the first well-ordered boundary AFTER a
/// swapped pair is also flagged (its predecessor differs between the
/// sides).  That is intentional — swaps only happen between cuts closer
/// than the reorder window, so that boundary's AggTrans windows can
/// straddle the swapped region and its pairwise migrations would act on
/// mismatched aggregate pairs.  Coarsening one extra aggregate pair per
/// (rare) swap region costs granularity, never correctness.
struct BoundarySets {
  std::unordered_set<net::PacketDigest> up_ids;
  std::unordered_set<net::PacketDigest> down_ids;
  std::unordered_set<net::PacketDigest> inverted;
};

BoundarySets boundary_sets(std::span<const AggregateReceipt> up,
                           std::span<const AggregateReceipt> down) {
  BoundarySets s;
  s.up_ids.reserve(up.size() * 2);
  for (std::size_t i = 1; i < up.size(); ++i) s.up_ids.insert(up[i].agg.first);
  s.down_ids.reserve(down.size() * 2);
  for (std::size_t j = 1; j < down.size(); ++j) {
    s.down_ids.insert(down[j].agg.first);
  }

  std::unordered_map<net::PacketDigest, net::PacketDigest> up_prev;
  net::PacketDigest prev = 0;
  for (std::size_t i = 1; i < up.size(); ++i) {
    const net::PacketDigest id = up[i].agg.first;
    if (!s.down_ids.contains(id)) continue;
    up_prev.emplace(id, prev);
    prev = id;
  }
  prev = 0;
  for (std::size_t j = 1; j < down.size(); ++j) {
    const net::PacketDigest id = down[j].agg.first;
    if (!s.up_ids.contains(id)) continue;
    const auto it = up_prev.find(id);
    if (it == up_prev.end() || it->second != prev) s.inverted.insert(id);
    prev = id;
  }
  return s;
}

}  // namespace

namespace {

/// patch_up with the inverted-boundary set precomputed (align_aggregates
/// shares one computation between patch-up and the join; patching only
/// rewrites packet counts, never boundary ids, so the set is valid for
/// both), decomposed per boundary so the incremental consumer can
/// attribute migrations to a consumed prefix and carry the seam shift
/// forward.  `down_carry` seeds down[0]'s delta (the shift owed by a
/// previously consumed seam boundary).
struct PatchupDecomposed {
  std::vector<AggregateReceipt> down;  ///< counts adjusted (carry included)
  /// Per down receipt j: migrations counted at the boundary CLOSING j,
  /// and the signed packet shift INTO j at that boundary (the matching
  /// -shift lands on j+1).  Zero for the final receipt.
  std::vector<std::size_t> mig_at;
  std::vector<std::int64_t> shift_at;
  std::size_t migrations = 0;
};

PatchupDecomposed patch_up_decomposed(
    std::span<const AggregateReceipt> up,
    std::span<const AggregateReceipt> down,
    const std::unordered_set<net::PacketDigest>& inverted,
    std::int64_t down_carry) {
  PatchupDecomposed result;
  result.down.assign(down.begin(), down.end());
  result.mig_at.assign(down.size(), 0);
  result.shift_at.assign(down.size(), 0);

  // Index upstream boundaries by cutting-packet id.  Boundaries whose
  // order swapped across the link ("inverted") are skipped: the
  // (down[j], down[j+1]) pair no longer faces the matching upstream
  // pair, so the migration arithmetic below would shift counts between
  // the wrong neighbours.  The join coarsens across these instead.
  std::unordered_map<net::PacketDigest, std::size_t> up_boundary;
  up_boundary.reserve(up.size() * 2);
  for (std::size_t i = 0; i < up.size(); ++i) {
    const net::PacketDigest b = boundary_of(up, i);
    if (b != 0) up_boundary.emplace(b, i);
  }

  for (std::size_t j = 0; j + 1 < result.down.size(); ++j) {
    const net::PacketDigest b = boundary_of(down, j);
    if (b == 0 || inverted.contains(b)) continue;
    const auto it = up_boundary.find(b);
    if (it == up_boundary.end()) continue;  // unmatched: join will merge
    const AggregateReceipt& u = up[it->second];

    std::unordered_set<net::PacketDigest> up_before(u.trans.before.begin(),
                                                    u.trans.before.end());
    std::unordered_set<net::PacketDigest> up_after(u.trans.after.begin(),
                                                   u.trans.after.end());

    // Section 6.3: a packet the upstream HOP saw before the cut but the
    // downstream HOP saw after it migrates into the earlier aggregate
    // (and vice versa), so both HOPs' receipts describe the same
    // membership.
    for (const net::PacketDigest id : down[j].trans.after) {
      if (id == b) continue;  // the cutting packet itself defines the cut
      if (up_before.contains(id)) {
        ++result.shift_at[j];
        ++result.mig_at[j];
        ++result.migrations;
      }
    }
    for (const net::PacketDigest id : down[j].trans.before) {
      if (up_after.contains(id)) {
        --result.shift_at[j];
        ++result.mig_at[j];
        ++result.migrations;
      }
    }
  }
  // Migrations accumulate as signed deltas and apply once at the end: a
  // packet reordered across several nearby boundaries migrates at each of
  // them (chained +1/-1 on the aggregate between), and applying eagerly
  // could drive a small aggregate's unsigned count through zero mid-pass,
  // silently dropping the rest of its migrations.  delta[j] is the shift
  // in at j's closing boundary minus the shift out at its opening one.
  for (std::size_t j = 0; j < result.down.size(); ++j) {
    const std::int64_t delta =
        result.shift_at[j] - (j == 0 ? -down_carry : result.shift_at[j - 1]);
    const auto count = static_cast<std::int64_t>(result.down[j].packet_count);
    // Honest receipts never go negative (the final count is a membership
    // count); clamp defensively against inconsistent/hostile input.
    result.down[j].packet_count =
        static_cast<std::uint32_t>(std::max<std::int64_t>(0, count + delta));
  }
  return result;
}

/// align_aggregates plus the per-boundary patch-up decomposition and a
/// down-side carry — the shared body of the batch and incremental entry
/// points.
struct AlignDecomposed {
  AlignmentResult result;
  std::vector<std::size_t> mig_at;
  std::vector<std::int64_t> shift_at;
};

AlignDecomposed align_decomposed(std::span<const AggregateReceipt> up,
                                 std::span<const AggregateReceipt> down,
                                 bool apply_patchup,
                                 std::int64_t down_carry) {
  AlignDecomposed out;
  AlignmentResult& result = out.result;
  if (up.empty() || down.empty()) return out;

  // Computed once, shared by patch-up and the boundary-match loop below
  // (patching rewrites packet counts only, never boundary ids): each
  // side's boundary-id membership decides which side merges; the inverted
  // subset is treated as unmatchable.
  const BoundarySets sets = boundary_sets(up, down);
  const std::unordered_set<net::PacketDigest>& up_cuts = sets.up_ids;
  const std::unordered_set<net::PacketDigest>& down_cuts = sets.down_ids;
  const std::unordered_set<net::PacketDigest>& inverted = sets.inverted;

  PatchupDecomposed patched;
  if (apply_patchup) {
    patched = patch_up_decomposed(up, down, inverted, down_carry);
    result.migrations = patched.migrations;
    out.mig_at = std::move(patched.mig_at);
    out.shift_at = std::move(patched.shift_at);
  } else {
    // Only the batch align_aggregates wrapper disables patch-up, and it
    // never carries a seam shift (the incremental entry points always
    // patch): a carry without the shift bookkeeping would break the
    // consumed-prefix invariant.
    (void)down_carry;
    patched.down.assign(down.begin(), down.end());
    out.mig_at.assign(down.size(), 0);
    out.shift_at.assign(down.size(), 0);
  }
  const std::vector<AggregateReceipt>& d = patched.down;

  std::size_t i = 0;
  std::size_t j = 0;
  AlignedAggregate acc;
  auto start_acc = [&](std::size_t ui, std::size_t dj) {
    acc = AlignedAggregate{};
    acc.up_count = up[ui].packet_count;
    acc.down_count = d[dj].packet_count;
    acc.up_receipts = 1;
    acc.down_receipts = 1;
    acc.up_opened = up[ui].opened_at;
    acc.up_closed = up[ui].closed_at;
  };
  auto absorb_up = [&](std::size_t ui) {
    acc.up_count += up[ui].packet_count;
    ++acc.up_receipts;
    acc.up_closed = up[ui].closed_at;
  };
  auto absorb_down = [&](std::size_t dj) {
    acc.down_count += d[dj].packet_count;
    ++acc.down_receipts;
  };
  start_acc(0, 0);

  while (i + 1 < up.size() || j + 1 < d.size()) {
    const bool up_has = i + 1 < up.size();
    const bool down_has = j + 1 < d.size();
    const net::PacketDigest up_cut = up_has ? up[i + 1].agg.first : 0;
    const net::PacketDigest down_cut = down_has ? d[j + 1].agg.first : 0;

    if (up_has && down_has && up_cut == down_cut &&
        !inverted.contains(up_cut)) {
      // Matched boundary: emit the joined aggregate.
      acc.boundary_id = up_cut;
      result.aligned.push_back(acc);
      ++result.boundaries_matched;
      ++i;
      ++j;
      start_acc(i, j);
      continue;
    }
    if (up_has && (!down_has || !down_cuts.contains(up_cut))) {
      // Upstream boundary invisible downstream (cut packet lost, or
      // downstream coarser): combine across it.
      ++i;
      absorb_up(i);
      ++result.boundaries_merged_up;
      continue;
    }
    if (down_has && (!up_has || !up_cuts.contains(down_cut))) {
      ++j;
      absorb_down(j);
      ++result.boundaries_merged_down;
      continue;
    }
    // Cutting points whose order swapped across the link (both cuts exist
    // on the other side, but their neighbourhoods disagree): no 1:1 match
    // exists, so coarsen across the region on BOTH sides in lockstep —
    // membership stays inside the combined aggregate and the counts stay
    // conserved.  (Advancing only one side here can run away past
    // perfectly good boundaries.)
    ++i;
    absorb_up(i);
    ++result.boundaries_merged_up;
    ++j;
    absorb_down(j);
    ++result.boundaries_merged_down;
  }
  acc.boundary_id = 0;
  result.aligned.push_back(acc);
  return out;
}

}  // namespace

PatchupResult patch_up(std::span<const AggregateReceipt> up,
                       std::span<const AggregateReceipt> down) {
  PatchupDecomposed d = patch_up_decomposed(
      up, down, boundary_sets(up, down).inverted, /*down_carry=*/0);
  return PatchupResult{.down = std::move(d.down),
                       .migrations = d.migrations};
}

AlignmentResult align_aggregates(std::span<const AggregateReceipt> up,
                                 std::span<const AggregateReceipt> down,
                                 bool apply_patchup) {
  return align_decomposed(up, down, apply_patchup, /*down_carry=*/0).result;
}

AlignmentResult align_tail(const AggregateTail& tail) {
  return align_decomposed(tail.up, tail.down, /*apply_patchup=*/true,
                          tail.down_carry)
      .result;
}

TailConsumeStats consume_aligned_prefix(AggregateTail& tail,
                                        std::size_t margin_boundaries,
                                        std::vector<AlignedAggregate>& out) {
  TailConsumeStats stats;
  if (tail.up.empty() || tail.down.empty()) return stats;

  AlignDecomposed aligned = align_decomposed(
      tail.up, tail.down, /*apply_patchup=*/true, tail.down_carry);
  // Every group but the final (unbounded) one is closed by a matched
  // boundary — the join emits groups only there.
  const std::size_t matched = aligned.result.aligned.size() - 1;
  if (matched <= margin_boundaries) return stats;
  const std::size_t consume = matched - margin_boundaries;

  std::size_t up_n = 0;
  std::size_t down_n = 0;
  for (std::size_t g = 0; g < consume; ++g) {
    const AlignedAggregate& a = aligned.result.aligned[g];
    up_n += a.up_receipts;
    down_n += a.down_receipts;
    out.push_back(a);
  }
  stats.groups = consume;
  for (std::size_t j = 0; j < down_n; ++j) {
    stats.migrations += aligned.mig_at[j];
  }
  // The seam boundary's migration shift was applied to the consumed
  // neighbour in THIS run; its mirror image lands on the next tail
  // alignment's first receipt.
  tail.down_carry = -aligned.shift_at[down_n - 1];
  tail.up.erase(tail.up.begin(),
                tail.up.begin() + static_cast<std::ptrdiff_t>(up_n));
  tail.down.erase(tail.down.begin(),
                  tail.down.begin() + static_cast<std::ptrdiff_t>(down_n));
  return stats;
}

}  // namespace vpm::core
