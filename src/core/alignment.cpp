#include "core/alignment.hpp"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

namespace vpm::core {
namespace {

/// The cutting-packet id of the boundary that closed receipt `i` (the next
/// aggregate's first packet), or 0 if unknown/final.
net::PacketDigest boundary_of(std::span<const AggregateReceipt> seq,
                              std::size_t i) {
  if (!seq[i].trans.after.empty()) return seq[i].trans.after.front();
  if (i + 1 < seq.size()) return seq[i + 1].agg.first;
  return 0;
}

}  // namespace

PatchupResult patch_up(std::span<const AggregateReceipt> up,
                       std::span<const AggregateReceipt> down) {
  PatchupResult result;
  result.down.assign(down.begin(), down.end());

  // Index upstream boundaries by cutting-packet id.
  std::unordered_map<net::PacketDigest, std::size_t> up_boundary;
  up_boundary.reserve(up.size() * 2);
  for (std::size_t i = 0; i < up.size(); ++i) {
    const net::PacketDigest b = boundary_of(up, i);
    if (b != 0) up_boundary.emplace(b, i);
  }

  for (std::size_t j = 0; j + 1 < result.down.size(); ++j) {
    const net::PacketDigest b = boundary_of(down, j);
    if (b == 0) continue;
    const auto it = up_boundary.find(b);
    if (it == up_boundary.end()) continue;  // unmatched: join will merge
    const AggregateReceipt& u = up[it->second];

    std::unordered_set<net::PacketDigest> up_before(u.trans.before.begin(),
                                                    u.trans.before.end());
    std::unordered_set<net::PacketDigest> up_after(u.trans.after.begin(),
                                                   u.trans.after.end());

    AggregateReceipt& left = result.down[j];
    AggregateReceipt& right = result.down[j + 1];

    // Section 6.3: a packet the upstream HOP saw before the cut but the
    // downstream HOP saw after it migrates into the earlier aggregate
    // (and vice versa), so both HOPs' receipts describe the same
    // membership.
    for (const net::PacketDigest id : down[j].trans.after) {
      if (id == b) continue;  // the cutting packet itself defines the cut
      if (up_before.contains(id) && right.packet_count > 0) {
        ++left.packet_count;
        --right.packet_count;
        ++result.migrations;
      }
    }
    for (const net::PacketDigest id : down[j].trans.before) {
      if (up_after.contains(id) && left.packet_count > 0) {
        --left.packet_count;
        ++right.packet_count;
        ++result.migrations;
      }
    }
  }
  return result;
}

AlignmentResult align_aggregates(std::span<const AggregateReceipt> up,
                                 std::span<const AggregateReceipt> down,
                                 bool apply_patchup) {
  AlignmentResult result;
  if (up.empty() || down.empty()) return result;

  PatchupResult patched;
  if (apply_patchup) {
    patched = patch_up(up, down);
    result.migrations = patched.migrations;
  } else {
    patched.down.assign(down.begin(), down.end());
  }
  const std::vector<AggregateReceipt>& d = patched.down;

  // Global boundary-id membership, for deciding which side merges.
  std::unordered_set<net::PacketDigest> up_cuts;
  up_cuts.reserve(up.size() * 2);
  for (std::size_t i = 1; i < up.size(); ++i) up_cuts.insert(up[i].agg.first);
  std::unordered_set<net::PacketDigest> down_cuts;
  down_cuts.reserve(d.size() * 2);
  for (std::size_t j = 1; j < d.size(); ++j) down_cuts.insert(d[j].agg.first);

  std::size_t i = 0;
  std::size_t j = 0;
  AlignedAggregate acc;
  auto start_acc = [&](std::size_t ui, std::size_t dj) {
    acc = AlignedAggregate{};
    acc.up_count = up[ui].packet_count;
    acc.down_count = d[dj].packet_count;
    acc.up_receipts = 1;
    acc.down_receipts = 1;
    acc.up_opened = up[ui].opened_at;
    acc.up_closed = up[ui].closed_at;
  };
  auto absorb_up = [&](std::size_t ui) {
    acc.up_count += up[ui].packet_count;
    ++acc.up_receipts;
    acc.up_closed = up[ui].closed_at;
  };
  auto absorb_down = [&](std::size_t dj) {
    acc.down_count += d[dj].packet_count;
    ++acc.down_receipts;
  };
  start_acc(0, 0);

  while (i + 1 < up.size() || j + 1 < d.size()) {
    const bool up_has = i + 1 < up.size();
    const bool down_has = j + 1 < d.size();
    const net::PacketDigest up_cut = up_has ? up[i + 1].agg.first : 0;
    const net::PacketDigest down_cut = down_has ? d[j + 1].agg.first : 0;

    if (up_has && down_has && up_cut == down_cut) {
      // Matched boundary: emit the joined aggregate.
      acc.boundary_id = up_cut;
      result.aligned.push_back(acc);
      ++result.boundaries_matched;
      ++i;
      ++j;
      start_acc(i, j);
      continue;
    }
    if (up_has && (!down_has || !down_cuts.contains(up_cut))) {
      // Upstream boundary invisible downstream (cut packet lost, or
      // downstream coarser): combine across it.
      ++i;
      absorb_up(i);
      ++result.boundaries_merged_up;
      continue;
    }
    if (down_has && (!up_has || !up_cuts.contains(down_cut))) {
      ++j;
      absorb_down(j);
      ++result.boundaries_merged_down;
      continue;
    }
    // Both boundaries exist on the other side but disagree on order —
    // digest collision or cross-boundary reordering.  Merge downstream to
    // guarantee progress; the counts stay conserved.
    ++j;
    absorb_down(j);
    ++result.boundaries_merged_down;
  }
  acc.boundary_id = 0;
  result.aligned.push_back(acc);
  return result;
}

}  // namespace vpm::core
