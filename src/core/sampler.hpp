// Bias-resistant, tunable delay sampling — Algorithm 1 (DelaySample).
//
// The HOP buffers <digest, time> for every observed packet.  When a
// *marker* packet arrives (marker digest > mu), the marker's digest keys
// which buffered packets become samples: q is sampled iff
// SampleFcn(Digest(q), Digest(marker)) > sigma.  The buffer is then
// emptied and the marker itself is sampled.
//
// Properties this implementation preserves (and tests verify):
//   * Bias resistance (§5.1): whether a packet is a sample is unknowable
//     until the *next marker* arrives — after the packet was forwarded.
//   * Subset/tunability (§5.2): sigma2 < sigma1 implies HOP2's samples are
//     a superset of HOP1's, for any traffic, because both evaluate the
//     same SampleFcn value against their thresholds.
//   * Loss behaviour (§5.3): a lost marker desynchronises sampling only
//     until the next marker arrives.
//
// This class is a single-path facade over the SoA kernels in
// core/path_state.hpp (the per-packet step lives there, shared with
// Aggregator / HopMonitor / MonitoringCache).  It does NOT copy the
// digest engine: the caller's engine must outlive the sampler (it is the
// protocol-wide engine, shared by every monitor of a deployment).
#ifndef VPM_CORE_SAMPLER_HPP
#define VPM_CORE_SAMPLER_HPP

#include <cstdint>
#include <vector>

#include "core/path_state.hpp"
#include "core/receipt.hpp"
#include "net/digest.hpp"
#include "net/packet.hpp"
#include "net/time.hpp"

namespace vpm::core {

class DelaySampler {
 public:
  /// `engine` must be the protocol-wide digest engine (held by reference —
  /// it must outlive the sampler); `marker_threshold` is mu (system-wide);
  /// `sample_threshold` is sigma (local tuning).
  DelaySampler(const net::DigestEngine& engine, std::uint32_t marker_threshold,
               std::uint32_t sample_threshold)
      : engine_(&engine),
        state_(PathParams{.marker_threshold = marker_threshold,
                          .sample_threshold = sample_threshold},
               1) {}
  /// The engine is held by reference; a temporary would dangle.
  DelaySampler(net::DigestEngine&&, std::uint32_t, std::uint32_t) = delete;

  /// Feed one packet observation (Algorithm 1's per-packet step).
  /// Computes the packet's decision values itself — one hash pass.
  /// Returns the number of buffered records swept (0 unless p is a
  /// marker), which drives the §7.1 marker-sweep accounting.
  std::size_t observe(const net::Packet& p, net::Timestamp when) {
    return observe(engine_->decide(p), when);
  }

  /// Fast path: decisions were already computed upstream (one hash per
  /// packet, shared with the aggregator — see HopMonitor::observe).
  std::size_t observe(const net::PacketDecisions& d, net::Timestamp when) {
    ++observed_;
    return path_observe_sampler(state_, 0, d, when);
  }

  /// Drain the samples emitted so far (observation order).  Packets still
  /// in the temp buffer stay buffered — their fate is not yet decided.
  [[nodiscard]] std::vector<SampleRecord> take_samples() {
    return path_take_samples(state_, 0);
  }

  /// Number of packets currently awaiting a marker.
  [[nodiscard]] std::size_t buffered() const noexcept {
    return state_.slots[0].hot.buf_size;
  }
  /// High-water mark of the temp buffer (drives the §7.1 memory numbers).
  [[nodiscard]] std::size_t buffer_peak() const noexcept {
    return state_.path_buffer_peak(0);
  }
  [[nodiscard]] std::uint64_t observed_packets() const noexcept {
    return observed_;
  }
  [[nodiscard]] std::uint64_t markers_seen() const noexcept {
    return state_.stats[0].markers;
  }
  /// Cumulative buffered records evaluated at marker sweeps (the "+1
  /// memory access per packet at marker time" in the §7.1 cost model).
  [[nodiscard]] std::uint64_t swept_records() const noexcept {
    return state_.stats[0].swept;
  }
  [[nodiscard]] std::uint32_t sample_threshold() const noexcept {
    return state_.params.sample_threshold;
  }
  [[nodiscard]] std::uint32_t marker_threshold() const noexcept {
    return state_.params.marker_threshold;
  }

 private:
  const net::DigestEngine* engine_;
  std::uint64_t observed_ = 0;
  /// One-path SoA block (see core/path_state.hpp).
  PathStateSoA state_;
};

}  // namespace vpm::core

#endif  // VPM_CORE_SAMPLER_HPP
