// Batched dissemination wire format.
//
// The processor module ships receipts in per-path batches (Section 7.1's
// bandwidth arithmetic assumes this): the batch header carries the path
// key and a shared epoch once, so the marginal cost is 7 bytes per sample
// record (4 B PktID + 3 B time, exactly the paper's temp-buffer record
// size) and 22 bytes per aggregate receipt (the paper's quoted receipt
// size) plus 4 B per AggTrans id.
//
// Marker records carry no flag on the wire: the batch groups each sampling
// round as [follower records..., marker record] with an explicit follower
// count, so marker-ness is positional.  The 3-byte times are microsecond
// offsets from the batch epoch, so one batch spans at most ~16.7 s — the
// processor flushes well before that (the default reporting period is 1 s).
#ifndef VPM_CORE_RECEIPT_BATCH_HPP
#define VPM_CORE_RECEIPT_BATCH_HPP

#include <span>
#include <vector>

#include "core/receipt.hpp"

namespace vpm::core {

/// Encode one HOP's sample receipt as a batch.  Throws
/// std::invalid_argument if the samples span more than the 3-byte epoch
/// range, are not in time order, or a round has a non-trailing marker.
void encode_sample_batch(const SampleReceipt& r, net::ByteWriter& out);

/// Encode consecutive aggregate receipts from one HOP as a batch.  All
/// receipts must share the sample receipt's path.  Throws
/// std::invalid_argument on mixed paths or an over-long time span.
void encode_aggregate_batch(std::span<const AggregateReceipt> rs,
                            net::ByteWriter& out);

[[nodiscard]] SampleReceipt decode_sample_batch(net::ByteReader& in,
                                                const net::PathId& path);
[[nodiscard]] std::vector<AggregateReceipt> decode_aggregate_batch(
    net::ByteReader& in, const net::PathId& path);

/// Batch wire sizes, for the §7.1 bandwidth accounting.
[[nodiscard]] std::size_t sample_batch_size(const SampleReceipt& r);
[[nodiscard]] std::size_t aggregate_batch_size(
    std::span<const AggregateReceipt> rs);

/// The marginal per-record / per-receipt costs implied by the format
/// (compile-time constants used in the overhead report).
inline constexpr std::size_t kSampleRecordBytes = 7;
inline constexpr std::size_t kAggregateRecordBytes = 22;

}  // namespace vpm::core

#endif  // VPM_CORE_RECEIPT_BATCH_HPP
