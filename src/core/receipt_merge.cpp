#include "core/receipt_merge.hpp"

#include <limits>
#include <stdexcept>
#include <string>

namespace vpm::core {

std::vector<IndexedPathDrain> merge_path_drains(
    std::vector<std::vector<IndexedPathDrain>> shards) {
  std::size_t total = 0;
  for (const auto& s : shards) {
    for (std::size_t i = 1; i < s.size(); ++i) {
      if (s[i - 1].path >= s[i].path) {
        throw std::invalid_argument(
            "merge_path_drains: shard stream not ascending by path index");
      }
    }
    total += s.size();
  }

  std::vector<IndexedPathDrain> out;
  out.reserve(total);
  std::vector<std::size_t> cursor(shards.size(), 0);
  constexpr std::size_t kNone = std::numeric_limits<std::size_t>::max();
  while (out.size() < total) {
    std::size_t best = kNone;
    std::size_t best_path = kNone;
    for (std::size_t s = 0; s < shards.size(); ++s) {
      if (cursor[s] == shards[s].size()) continue;
      const std::size_t p = shards[s][cursor[s]].path;
      if (best == kNone || p < best_path) {
        best = s;
        best_path = p;
      } else if (p == best_path) {
        throw std::invalid_argument(
            "merge_path_drains: path index claimed by two shards");
      }
    }
    out.push_back(std::move(shards[best][cursor[best]]));
    ++cursor[best];
  }
  return out;
}

StreamingDrainMerge::StreamingDrainMerge(std::vector<DrainSource> sources)
    : sources_(std::move(sources)), heads_(sources_.size()) {}

void StreamingDrainMerge::prime() {
  if (primed_) return;
  primed_ = true;
  for (std::size_t s = 0; s < sources_.size(); ++s) refill(s);
}

StreamingDrainMerge StreamingDrainMerge::over(
    std::vector<std::vector<IndexedPathDrain>> shards) {
  std::vector<DrainSource> sources;
  sources.reserve(shards.size());
  for (std::vector<IndexedPathDrain>& shard : shards) {
    // Each source owns its stream and walks it by cursor; the vector is
    // kept alive by the closure.
    sources.push_back(
        [stream = std::move(shard),
         cursor = std::size_t{0}]() mutable -> std::optional<IndexedPathDrain> {
          if (cursor == stream.size()) return std::nullopt;
          return std::move(stream[cursor++]);
        });
  }
  return StreamingDrainMerge(std::move(sources));
}

void StreamingDrainMerge::refill(std::size_t s) {
  heads_[s].value = sources_[s]();
  if (!heads_[s].value.has_value()) return;
  if (heads_[s].seen_any && heads_[s].value->path <= heads_[s].last_path) {
    throw std::invalid_argument(
        "StreamingDrainMerge: shard stream not ascending by path index");
  }
  heads_[s].seen_any = true;
  heads_[s].last_path = heads_[s].value->path;
}

bool StreamingDrainMerge::done() {
  prime();
  for (const Head& h : heads_) {
    if (h.value.has_value()) return false;
  }
  return true;
}

std::optional<IndexedPathDrain> StreamingDrainMerge::next() {
  prime();
  constexpr std::size_t kNone = std::numeric_limits<std::size_t>::max();
  std::size_t best = kNone;
  std::size_t best_path = kNone;
  for (std::size_t s = 0; s < heads_.size(); ++s) {
    if (!heads_[s].value.has_value()) continue;
    const std::size_t p = heads_[s].value->path;
    if (best == kNone || p < best_path) {
      best = s;
      best_path = p;
    } else if (p == best_path) {
      throw std::invalid_argument(
          "StreamingDrainMerge: path index claimed by two shards");
    }
  }
  if (best == kNone) return std::nullopt;
  std::optional<IndexedPathDrain> out = std::move(heads_[best].value);
  refill(best);
  return out;
}

namespace {

/// Shared stable k-way merge: `key(record)` must be non-decreasing within
/// each stream; ties resolve to the lower stream index.
template <typename T, typename Key>
std::vector<T> merge_streams(std::span<const std::vector<T>> streams,
                             Key key, const char* what) {
  std::size_t total = 0;
  for (const auto& s : streams) {
    for (std::size_t i = 1; i < s.size(); ++i) {
      if (key(s[i]) < key(s[i - 1])) {
        throw std::invalid_argument(std::string(what) +
                                    ": input stream not time-ordered");
      }
    }
    total += s.size();
  }

  std::vector<T> out;
  out.reserve(total);
  std::vector<std::size_t> cursor(streams.size(), 0);
  while (out.size() < total) {
    std::size_t best = std::numeric_limits<std::size_t>::max();
    for (std::size_t s = 0; s < streams.size(); ++s) {
      if (cursor[s] == streams[s].size()) continue;
      if (best == std::numeric_limits<std::size_t>::max() ||
          key(streams[s][cursor[s]]) < key(streams[best][cursor[best]])) {
        best = s;
      }
    }
    out.push_back(streams[best][cursor[best]]);
    ++cursor[best];
  }
  return out;
}

}  // namespace

std::vector<AggregateReceipt> merge_aggregate_streams(
    std::span<const std::vector<AggregateReceipt>> streams) {
  return merge_streams(
      streams, [](const AggregateReceipt& r) { return r.opened_at; },
      "merge_aggregate_streams");
}

std::vector<SampleRecord> merge_sample_records(
    std::span<const std::vector<SampleRecord>> streams) {
  return merge_streams(
      streams, [](const SampleRecord& r) { return r.time; },
      "merge_sample_records");
}

void encode_stream(std::span<const IndexedPathDrain> stream,
                   net::ByteWriter& out) {
  for (const IndexedPathDrain& d : stream) {
    encode(d.drain.samples, out);
    for (const AggregateReceipt& r : d.drain.aggregates) encode(r, out);
  }
}

}  // namespace vpm::core
