// Control-plane receipt-stream merging.
//
// A sharded collector partitions paths across workers, so receipts arrive
// as per-shard streams.  Downstream consumers (alignment, the verifier,
// the dissemination encoder) want ONE stream in a deterministic global
// order, regardless of how many shards produced it.  Two orders matter:
//
//   * path order — each path's drain keyed by its global path index.
//     Merging per-shard drains by index reproduces exactly what a
//     single-threaded MonitoringCache drain over the same path table
//     yields; this is the order the sharded-vs-single equivalence suite
//     compares byte-for-byte.
//   * time order — receipts from *different* monitors interleaved by
//     observation time (stable on ties), the order a dissemination batch
//     would ship them in.  Groundwork for the wire-format ROADMAP item.
#ifndef VPM_CORE_RECEIPT_MERGE_HPP
#define VPM_CORE_RECEIPT_MERGE_HPP

#include <cstddef>
#include <functional>
#include <optional>
#include <span>
#include <vector>

#include "core/receipt.hpp"

namespace vpm::core {

/// One path's drain tagged with its global path index (the index the
/// single-threaded collector would use; shard-local indices never leak).
struct IndexedPathDrain {
  std::size_t path = 0;
  PathDrain drain;

  friend bool operator==(const IndexedPathDrain&,
                         const IndexedPathDrain&) = default;
};

/// Merge per-shard drain streams into one stream ascending by global path
/// index.  Each input stream must itself be ascending by path index (a
/// shard drains its paths in order).  Throws std::invalid_argument if a
/// stream is out of order or two streams claim the same path index (a
/// path must live on exactly one shard).
[[nodiscard]] std::vector<IndexedPathDrain> merge_path_drains(
    std::vector<std::vector<IndexedPathDrain>> shards);

/// Pull source for one shard's drain stream: yields drains ascending by
/// global path index, std::nullopt at end-of-stream.  A source is pulled
/// lazily — one drain at a time, as the merge consumes it.
using DrainSource = std::function<std::optional<IndexedPathDrain>()>;

/// Iterator-style k-way merge of per-shard drain streams — the streaming
/// counterpart of merge_path_drains.  Holds at most ONE drain per source
/// (constant memory in the stream length), so the processor module can
/// ship dissemination batches while shards are still draining instead of
/// materializing every shard's full drain first.
///
/// Same contract as merge_path_drains, enforced lazily: each source must
/// be strictly ascending by path index (std::invalid_argument on the
/// offending pull otherwise) and no two sources may claim the same path
/// index (std::invalid_argument when the tie reaches the merge front).
class StreamingDrainMerge {
 public:
  /// Stores the sources without pulling from them: constructing the merge
  /// consumes nothing, so an abandoned merge leaves every source's state
  /// untouched.  The frontier (one drain per source) is pulled on the
  /// first next()/done() call.
  explicit StreamingDrainMerge(std::vector<DrainSource> sources);

  /// Adapt materialized per-shard streams (the merge takes ownership).
  [[nodiscard]] static StreamingDrainMerge over(
      std::vector<std::vector<IndexedPathDrain>> shards);

  /// The next drain in ascending global-path-index order, or std::nullopt
  /// once every source is exhausted.
  [[nodiscard]] std::optional<IndexedPathDrain> next();

  /// True once every source is exhausted (next() would return nullopt).
  [[nodiscard]] bool done();

 private:
  void prime();
  void refill(std::size_t s);

  struct Head {
    std::optional<IndexedPathDrain> value;
    std::size_t last_path = 0;  ///< valid once `seen_any`
    bool seen_any = false;
  };
  std::vector<DrainSource> sources_;
  std::vector<Head> heads_;
  bool primed_ = false;
};

/// Stable k-way merge of aggregate-receipt streams by opened_at: the
/// earliest-opened receipt wins; on ties the lower stream index goes
/// first.  Each input stream must be non-decreasing in opened_at (the
/// drain order a single monitor produces) — throws std::invalid_argument
/// otherwise, because a silent misordered merge would corrupt the
/// dissemination stream.
[[nodiscard]] std::vector<AggregateReceipt> merge_aggregate_streams(
    std::span<const std::vector<AggregateReceipt>> streams);

/// Stable k-way merge of sample records by observation time (ties keep
/// stream order).  Same monotonicity requirement as above.
[[nodiscard]] std::vector<SampleRecord> merge_sample_records(
    std::span<const std::vector<SampleRecord>> streams);

/// Wire-encode a merged drain stream: per path, the sample receipt then
/// each aggregate receipt, in stream order.  Byte-comparing two encodings
/// is the equivalence suite's identity check.
void encode_stream(std::span<const IndexedPathDrain> stream,
                   net::ByteWriter& out);

}  // namespace vpm::core

#endif  // VPM_CORE_RECEIPT_MERGE_HPP
