// Receipt-level join and reorder patch-up (Sections 6.1-6.3).
//
// Two HOPs observing the same path report aggregate sequences that are
// nested when nothing goes wrong (subset property of cut points), but can
// misalign when a cutting packet is lost (boundary disappears downstream)
// or packets reorder across a boundary (counts shift by a packet or two).
//
// align_aggregates() walks both receipt sequences, matching boundaries by
// their cutting-packet id, accumulating (combining, in the Section 4
// sense) receipts between matched boundaries — the receipt-level
// realisation of Join.  With patch-up enabled it first migrates packets
// across matched boundaries using the AggTrans windows, exactly as the
// Section 6.3 example migrates p4 between HOP 4's aggregates.
//
// Boundary-order inversions: when two cutting points land within the
// reorder window of each other, they can swap across a link.  The §6.3
// pairwise migration assumes each boundary separates the same two
// aggregates at both HOPs, which no longer holds in a swapped
// neighbourhood — so patch-up skips migrations at inverted boundaries and
// the join coarsens across them on both sides (counts stay conserved; the
// affected region just reports at one-coarser granularity).
#ifndef VPM_CORE_ALIGNMENT_HPP
#define VPM_CORE_ALIGNMENT_HPP

#include <cstdint>
#include <span>
#include <vector>

#include "core/receipt.hpp"

namespace vpm::core {

/// One joined aggregate with both HOPs' (possibly combined) counts.
struct AlignedAggregate {
  std::uint64_t up_count = 0;
  std::uint64_t down_count = 0;
  std::size_t up_receipts = 0;    ///< raw receipts combined on the up side
  std::size_t down_receipts = 0;  ///< ... and on the down side
  net::Timestamp up_opened;
  net::Timestamp up_closed;
  /// Cutting-packet id of the boundary that closed this joined aggregate
  /// (0 for the final, unbounded one).
  net::PacketDigest boundary_id = 0;

  /// Duration covered, by the upstream HOP's clock.
  [[nodiscard]] double duration_s() const {
    return (up_closed - up_opened).seconds();
  }
  /// Packets lost between the HOPs within this joined aggregate (negative
  /// means downstream counted MORE than upstream — an inconsistency).
  [[nodiscard]] std::int64_t lost() const {
    return static_cast<std::int64_t>(up_count) -
           static_cast<std::int64_t>(down_count);
  }
  friend bool operator==(const AlignedAggregate&,
                         const AlignedAggregate&) = default;
};

struct AlignmentResult {
  std::vector<AlignedAggregate> aligned;
  /// Boundaries present upstream but not downstream (e.g. cutting packet
  /// lost) and vice versa — these forced combining.
  std::size_t boundaries_merged_up = 0;
  std::size_t boundaries_merged_down = 0;
  std::size_t boundaries_matched = 0;
  /// Packets migrated across boundaries by patch-up.
  std::size_t migrations = 0;
};

/// Join two aggregate-receipt sequences (observation order).  If
/// `apply_patchup`, AggTrans windows repair reorder-shifted counts first.
/// Either sequence may be empty (result has no aligned aggregates).
[[nodiscard]] AlignmentResult align_aggregates(
    std::span<const AggregateReceipt> up,
    std::span<const AggregateReceipt> down, bool apply_patchup = true);

/// Patch-up alone (exposed for tests and the reorder ablation): returns
/// `down` with counts adjusted to match `up`'s boundary assignments, plus
/// the number of migrations performed.
struct PatchupResult {
  std::vector<AggregateReceipt> down;
  std::size_t migrations = 0;
};
[[nodiscard]] PatchupResult patch_up(std::span<const AggregateReceipt> up,
                                     std::span<const AggregateReceipt> down);

// --- Incremental alignment (round-fed verifier support) -------------------
//
// A verifier ingesting reporting rounds for months cannot hold both HOPs'
// full aggregate sequences.  It holds an AggregateTail instead: the raw
// receipts not yet absorbed into finalized aligned output.  After each
// round, consume_aligned_prefix() aligns the tails and consumes every
// aligned group up to a stability margin of matched boundaries — the
// alignment decisions in that prefix are final because align_aggregates'
// scan is forward and its merge/inversion tests only consult boundary ids
// in the consumed neighbourhood (receipts an honest peer ships within a
// round or two; the margin absorbs the in-flight lag).  Consumed receipts
// leave the tail, so resident state is O(retained window), not O(history),
// and the concatenation  consumed groups ++ align_tail(tail).aligned  is
// the alignment of the full sequences.

struct AggregateTail {
  std::vector<AggregateReceipt> up;
  std::vector<AggregateReceipt> down;
  /// Patch-up packets owed to down.front() by the migration at the last
  /// consumed seam boundary (its matching shift was already applied to
  /// the consumed neighbour).  Applied before every tail alignment.
  std::int64_t down_carry = 0;

  [[nodiscard]] std::size_t receipt_count() const noexcept {
    return up.size() + down.size();
  }
};

struct TailConsumeStats {
  std::size_t groups = 0;      ///< aligned groups consumed
  std::size_t migrations = 0;  ///< patch-up migrations attributed to them
};

/// Align `tail` and consume the stable prefix: every aligned group except
/// the final (unbounded) one and the last `margin_boundaries`
/// matched-boundary groups.  Consumed groups append to `out`; consumed
/// receipts leave the tail and the seam migration shift rolls into
/// `tail.down_carry`.  No-op while either side is empty or the matched
/// count is within the margin.
TailConsumeStats consume_aligned_prefix(AggregateTail& tail,
                                        std::size_t margin_boundaries,
                                        std::vector<AlignedAggregate>& out);

/// Align the tail to completion WITHOUT consuming — the analyze-time view.
/// `.migrations` counts only migrations at tail boundaries (add the
/// consumed stats for the full-history figure).
[[nodiscard]] AlignmentResult align_tail(const AggregateTail& tail);

}  // namespace vpm::core

#endif  // VPM_CORE_ALIGNMENT_HPP
