#include "core/sampler.hpp"

#include <algorithm>

namespace vpm::core {
namespace {

// Upfront reservation for the temp buffer: two mean marker gaps, capped
// low because a monitoring cache holds one sampler per path (100k paths x
// a generous reserve would burn gigabytes before any traffic arrives).
// The arena grows on demand past this and then keeps its capacity — the
// steady state never allocates either way.
std::size_t buffer_reserve_for(std::uint32_t marker_threshold) noexcept {
  const double rate = net::threshold_to_rate(marker_threshold);
  const double gap = rate > 0.0 ? 1.0 / rate : 256.0;
  return static_cast<std::size_t>(std::clamp(2.0 * gap, 16.0, 256.0));
}

}  // namespace

DelaySampler::DelaySampler(const net::DigestEngine& engine,
                           std::uint32_t marker_threshold,
                           std::uint32_t sample_threshold)
    : engine_(engine),
      marker_threshold_(marker_threshold),
      sample_threshold_(sample_threshold) {
  buffer_.reserve(buffer_reserve_for(marker_threshold));
  emitted_.reserve(64);
}

std::size_t DelaySampler::observe(const net::PacketDecisions& d,
                                  net::Timestamp when) {
  ++observed_;

  if (d.marker_value > marker_threshold_) {
    // Algorithm 1, lines 1-6: the marker decides the fate of everything
    // buffered since the previous marker.
    ++markers_;
    const std::size_t swept = buffer_.size();
    swept_ += swept;
    for (const Buffered& q : buffer_) {
      if (net::DigestEngine::sample_value(q.id, d.id) > sample_threshold_) {
        emitted_.push_back(
            SampleRecord{.pkt_id = q.id, .time = q.time, .is_marker = false});
      }
    }
    buffer_.clear();
    emitted_.push_back(
        SampleRecord{.pkt_id = d.id, .time = when, .is_marker = true});
    return swept;
  }

  // Algorithm 1, line 8: remember the packet until the next marker.
  buffer_.push_back(Buffered{d.id, when});
  buffer_peak_ = std::max(buffer_peak_, buffer_.size());
  return 0;
}

std::vector<SampleRecord> DelaySampler::take_samples() {
  std::vector<SampleRecord> out;
  out.swap(emitted_);
  emitted_.reserve(64);  // the drained vector took the old capacity along
  return out;
}

}  // namespace vpm::core
