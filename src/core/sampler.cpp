#include "core/sampler.hpp"

#include <algorithm>

namespace vpm::core {

void DelaySampler::observe(const net::Packet& p, net::Timestamp when) {
  ++observed_;
  const net::PacketDigest id = engine_.packet_id(p);

  if (engine_.marker_value(p) > marker_threshold_) {
    // Algorithm 1, lines 1-6: the marker decides the fate of everything
    // buffered since the previous marker.
    ++markers_;
    for (const Buffered& q : buffer_) {
      if (net::DigestEngine::sample_value(q.id, id) > sample_threshold_) {
        emitted_.push_back(
            SampleRecord{.pkt_id = q.id, .time = q.time, .is_marker = false});
      }
    }
    buffer_.clear();
    emitted_.push_back(
        SampleRecord{.pkt_id = id, .time = when, .is_marker = true});
    return;
  }

  // Algorithm 1, line 8: remember the packet until the next marker.
  buffer_.push_back(Buffered{id, when});
  buffer_peak_ = std::max(buffer_peak_, buffer_.size());
}

std::vector<SampleRecord> DelaySampler::take_samples() {
  std::vector<SampleRecord> out;
  out.swap(emitted_);
  return out;
}

}  // namespace vpm::core
