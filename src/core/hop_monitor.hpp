// The per-HOP, per-path monitoring state: Algorithm 1 + Algorithm 2 over
// one path, stamping receipts with this HOP's PathId.
//
// This is the "collector module" view of one path at one HOP (Section 7):
// the data plane calls observe() per packet; the control-plane "processor
// module" periodically drains receipts with collect_*().  Since the SoA
// refactor this is a thin facade over a 1-path core::PathStateSoA block —
// the multi-path monitoring cache (src/collector) runs the SAME kernels
// over an N-path block, so a HopMonitor is exactly "one row" of the cache.
//
// sampler()/aggregator() return value-type statistics views (the pre-SoA
// API returned references to the component objects; the statistics
// surface is unchanged).
#ifndef VPM_CORE_HOP_MONITOR_HPP
#define VPM_CORE_HOP_MONITOR_HPP

#include <vector>

#include "core/config.hpp"
#include "core/path_state.hpp"
#include "core/receipt.hpp"
#include "net/path_id.hpp"

namespace vpm::core {

struct HopMonitorConfig {
  ProtocolParams protocol;  ///< system-wide parameters
  HopTuning tuning;         ///< this HOP's local resource choice
  net::PathId path;         ///< stamped on every receipt
};

/// Read-only snapshot of one path's sampler-side statistics (mirrors the
/// DelaySampler accessor surface).
struct SamplerStatsView {
  std::size_t buffered_records = 0;
  std::size_t peak = 0;
  std::uint64_t observed = 0;
  std::uint64_t markers = 0;
  std::uint64_t swept = 0;
  std::uint32_t sigma = 0;
  std::uint32_t mu = 0;

  [[nodiscard]] std::size_t buffered() const noexcept {
    return buffered_records;
  }
  [[nodiscard]] std::size_t buffer_peak() const noexcept { return peak; }
  [[nodiscard]] std::uint64_t observed_packets() const noexcept {
    return observed;
  }
  [[nodiscard]] std::uint64_t markers_seen() const noexcept { return markers; }
  [[nodiscard]] std::uint64_t swept_records() const noexcept { return swept; }
  [[nodiscard]] std::uint32_t sample_threshold() const noexcept {
    return sigma;
  }
  [[nodiscard]] std::uint32_t marker_threshold() const noexcept { return mu; }
};

/// Read-only snapshot of one path's aggregator-side statistics (mirrors
/// the Aggregator accessor surface).
struct AggregatorStatsView {
  std::uint64_t observed = 0;
  std::uint64_t cuts = 0;
  std::uint32_t delta = 0;
  std::size_t window_peak = 0;

  [[nodiscard]] std::uint64_t observed_packets() const noexcept {
    return observed;
  }
  [[nodiscard]] std::uint64_t cuts_seen() const noexcept { return cuts; }
  [[nodiscard]] std::uint32_t cut_threshold() const noexcept { return delta; }
  [[nodiscard]] std::size_t window_buffer_peak() const noexcept {
    return window_peak;
  }
};

class HopMonitor {
 public:
  /// Throws std::invalid_argument if the tuning is infeasible (see
  /// sample_threshold_for).
  explicit HopMonitor(const HopMonitorConfig& cfg)
      : path_(cfg.path),
        engine_(cfg.protocol.make_engine()),
        state_(PathParams{
                   .marker_threshold = cfg.protocol.marker_threshold(),
                   .sample_threshold = sample_threshold_for(
                       cfg.protocol, cfg.tuning.sample_rate),
                   .cut_threshold = cut_threshold_for(cfg.tuning.cut_rate),
                   .j_window = cfg.protocol.reorder_window_j,
                   .marker_max_age = cfg.protocol.marker_max_age},
               1) {}

  /// Data-plane per-packet step (classification into this path has already
  /// happened).  Hashes the packet exactly once: the digest engine's
  /// decide() feeds both the sampler and the aggregator kernels.  Returns
  /// the number of temp-buffer records swept if the packet was a marker.
  std::size_t observe(const net::Packet& p, net::Timestamp local_time) {
    return observe(engine_.decide(p), local_time);
  }

  /// Fast path for callers that already computed the packet's decisions
  /// (the monitoring cache's batch loop).
  std::size_t observe(const net::PacketDecisions& d,
                      net::Timestamp local_time) {
    return path_observe(state_, 0, d, local_time);
  }

  /// Drain sampled measurements into a receipt.
  [[nodiscard]] SampleReceipt collect_samples() {
    return path_collect_samples(state_, 0, path_);
  }

  /// Drain closed aggregates; with `flush_open`, also closes the current
  /// aggregate (end of measurement run).
  [[nodiscard]] std::vector<AggregateReceipt> collect_aggregates(
      bool flush_open = false) {
    return path_collect_aggregates(state_, 0, path_, flush_open);
  }

  /// Control-plane drain hook: samples plus closed aggregates in one unit
  /// (what the processor module ships per reporting period; the sharded
  /// collector's merge step consumes these).
  [[nodiscard]] PathDrain drain(bool flush_open = false) {
    return PathDrain{.samples = collect_samples(),
                     .aggregates = collect_aggregates(flush_open)};
  }

  [[nodiscard]] const net::PathId& path() const noexcept { return path_; }
  [[nodiscard]] const net::DigestEngine& engine() const noexcept {
    return engine_;
  }
  [[nodiscard]] SamplerStatsView sampler() const noexcept {
    const PathStats& st = state_.stats[0];
    return SamplerStatsView{.buffered_records = state_.slots[0].hot.buf_size,
                            .peak = state_.path_buffer_peak(0),
                            .observed = state_.path_observed_packets(0),
                            .markers = st.markers,
                            .swept = st.swept,
                            .sigma = state_.params.sample_threshold,
                            .mu = state_.params.marker_threshold};
  }
  [[nodiscard]] AggregatorStatsView aggregator() const noexcept {
    const PathStats& st = state_.stats[0];
    return AggregatorStatsView{.observed = state_.path_observed_packets(0),
                               .cuts = st.cuts,
                               .delta = state_.params.cut_threshold,
                               .window_peak = state_.slots[0].warm.window_peak};
  }

 private:
  net::PathId path_;
  net::DigestEngine engine_;
  /// One-path SoA block (see core/path_state.hpp).
  PathStateSoA state_;
};

}  // namespace vpm::core

#endif  // VPM_CORE_HOP_MONITOR_HPP
