// The per-HOP, per-path monitoring state: one DelaySampler plus one
// Aggregator, stamping receipts with this HOP's PathId.
//
// This is the "collector module" view of one path at one HOP (Section 7):
// the data plane calls observe() per packet; the control-plane "processor
// module" periodically drains receipts with collect_*().  The multi-path
// monitoring cache that scales this to 100k paths lives in
// src/collector (the per-path state here is what that cache stores).
#ifndef VPM_CORE_HOP_MONITOR_HPP
#define VPM_CORE_HOP_MONITOR_HPP

#include <vector>

#include "core/aggregator.hpp"
#include "core/config.hpp"
#include "core/receipt.hpp"
#include "core/sampler.hpp"
#include "net/path_id.hpp"

namespace vpm::core {

struct HopMonitorConfig {
  ProtocolParams protocol;  ///< system-wide parameters
  HopTuning tuning;         ///< this HOP's local resource choice
  net::PathId path;         ///< stamped on every receipt
};

class HopMonitor {
 public:
  /// Throws std::invalid_argument if the tuning is infeasible (see
  /// sample_threshold_for).
  explicit HopMonitor(const HopMonitorConfig& cfg)
      : path_(cfg.path),
        engine_(cfg.protocol.make_engine()),
        marker_threshold_(cfg.protocol.marker_threshold()),
        sample_threshold_(
            sample_threshold_for(cfg.protocol, cfg.tuning.sample_rate)),
        sampler_(engine_, marker_threshold_, sample_threshold_),
        aggregator_(engine_, cut_threshold_for(cfg.tuning.cut_rate),
                    cfg.protocol.reorder_window_j) {}

  /// Data-plane per-packet step (classification into this path has already
  /// happened).  Hashes the packet exactly once: the digest engine's
  /// decide() feeds both the sampler and the aggregator.  Returns the
  /// number of temp-buffer records swept if the packet was a marker.
  std::size_t observe(const net::Packet& p, net::Timestamp local_time) {
    return observe(engine_.decide(p), local_time);
  }

  /// Fast path for callers that already computed the packet's decisions
  /// (the monitoring cache's batch loop).
  std::size_t observe(const net::PacketDecisions& d,
                      net::Timestamp local_time) {
    const std::size_t swept = sampler_.observe(d, local_time);
    aggregator_.observe(d, local_time);
    return swept;
  }

  /// Drain sampled measurements into a receipt.
  [[nodiscard]] SampleReceipt collect_samples() {
    SampleReceipt r;
    r.path = path_;
    r.sample_threshold = sample_threshold_;
    r.marker_threshold = marker_threshold_;
    r.samples = sampler_.take_samples();
    return r;
  }

  /// Drain closed aggregates; with `flush_open`, also closes the current
  /// aggregate (end of measurement run).
  [[nodiscard]] std::vector<AggregateReceipt> collect_aggregates(
      bool flush_open = false) {
    if (flush_open) {
      auto last = aggregator_.flush_open();
      std::vector<AggregateReceipt> out = stamp(aggregator_.take_closed());
      if (last.has_value()) out.push_back(stamp_one(*last));
      return out;
    }
    return stamp(aggregator_.take_closed());
  }

  /// Control-plane drain hook: samples plus closed aggregates in one unit
  /// (what the processor module ships per reporting period; the sharded
  /// collector's merge step consumes these).
  [[nodiscard]] PathDrain drain(bool flush_open = false) {
    return PathDrain{.samples = collect_samples(),
                     .aggregates = collect_aggregates(flush_open)};
  }

  [[nodiscard]] const net::PathId& path() const noexcept { return path_; }
  [[nodiscard]] const net::DigestEngine& engine() const noexcept {
    return engine_;
  }
  [[nodiscard]] const DelaySampler& sampler() const noexcept {
    return sampler_;
  }
  [[nodiscard]] const Aggregator& aggregator() const noexcept {
    return aggregator_;
  }

 private:
  [[nodiscard]] AggregateReceipt stamp_one(const AggregateData& d) const {
    return AggregateReceipt{.path = path_,
                            .agg = d.agg,
                            .packet_count = d.packet_count,
                            .trans = d.trans,
                            .opened_at = d.opened_at,
                            .closed_at = d.closed_at};
  }
  [[nodiscard]] std::vector<AggregateReceipt> stamp(
      std::vector<AggregateData> ds) const {
    std::vector<AggregateReceipt> out;
    out.reserve(ds.size());
    for (AggregateData& d : ds) out.push_back(stamp_one(d));
    return out;
  }

  net::PathId path_;
  net::DigestEngine engine_;
  std::uint32_t marker_threshold_;
  std::uint32_t sample_threshold_;
  DelaySampler sampler_;
  Aggregator aggregator_;
};

}  // namespace vpm::core

#endif  // VPM_CORE_HOP_MONITOR_HPP
