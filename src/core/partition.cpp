#include "core/partition.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace vpm::core {

Partition::Partition(std::size_t n, std::vector<std::size_t> cuts)
    : n_(n), cuts_(std::move(cuts)) {
  if (n == 0) {
    throw std::invalid_argument("partition of an empty sequence");
  }
  if (cuts_.empty() || cuts_.front() != 0) {
    throw std::invalid_argument("cut set must contain index 0");
  }
  if (!std::is_sorted(cuts_.begin(), cuts_.end())) {
    throw std::invalid_argument("cut set must be sorted");
  }
  if (std::adjacent_find(cuts_.begin(), cuts_.end()) != cuts_.end()) {
    throw std::invalid_argument("cut set must be duplicate-free");
  }
  if (cuts_.back() >= n) {
    throw std::invalid_argument("cut index " + std::to_string(cuts_.back()) +
                                " beyond sequence of size " +
                                std::to_string(n));
  }
}

Partition Partition::trivial(std::size_t n) { return Partition{n, {0}}; }

Partition Partition::finest(std::size_t n) {
  std::vector<std::size_t> cuts(n);
  for (std::size_t i = 0; i < n; ++i) cuts[i] = i;
  return Partition{n, std::move(cuts)};
}

std::vector<std::pair<std::size_t, std::size_t>> Partition::aggregates()
    const {
  std::vector<std::pair<std::size_t, std::size_t>> out;
  out.reserve(cuts_.size());
  for (std::size_t i = 0; i < cuts_.size(); ++i) {
    const std::size_t begin = cuts_[i];
    const std::size_t end = i + 1 < cuts_.size() ? cuts_[i + 1] : n_;
    out.emplace_back(begin, end);
  }
  return out;
}

bool Partition::coarser_or_equal(const Partition& other) const {
  if (n_ != other.n_) {
    throw std::invalid_argument(
        "comparing partitions of different sequences");
  }
  // *this is coarser iff every aggregate here is a union of other's
  // aggregates, i.e. our cuts are a subset of theirs.
  return std::includes(other.cuts_.begin(), other.cuts_.end(), cuts_.begin(),
                       cuts_.end());
}

Partition Partition::join(std::span<const Partition> parts) {
  if (parts.empty()) {
    throw std::invalid_argument("join of no partitions");
  }
  std::vector<std::size_t> common = parts.front().cuts_;
  for (const Partition& p : parts.subspan(1)) {
    if (p.n_ != parts.front().n_) {
      throw std::invalid_argument("joining partitions of different sequences");
    }
    std::vector<std::size_t> next;
    std::set_intersection(common.begin(), common.end(), p.cuts_.begin(),
                          p.cuts_.end(), std::back_inserter(next));
    common = std::move(next);
  }
  return Partition{parts.front().n_, std::move(common)};
}

}  // namespace vpm::core
