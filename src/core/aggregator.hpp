// Tunable aggregation — Algorithm 2 (Partition) plus the Section 6.3
// AggTrans extension.
//
// A packet whose cut digest exceeds delta becomes a *cutting point*: it
// closes the current aggregate and opens a new one (and becomes the new
// aggregate's first packet).  delta is local; because every HOP compares
// the same per-packet cut value against its own threshold, cut points are
// nested across HOPs (Section 6.2's subset property), so partitions from
// different HOPs always have a computable, fine join.
//
// For reorder robustness, each closed aggregate's receipt carries the
// AggTrans window: the ids of packets observed within J of the cutting
// point, split into those the HOP assigned before the cut and after it.
// The window extends J *past* the cut, so a closed aggregate is emitted
// only once its trailing window is complete ("pending" until then).
#ifndef VPM_CORE_AGGREGATOR_HPP
#define VPM_CORE_AGGREGATOR_HPP

#include <cstdint>
#include <optional>
#include <vector>

#include "core/receipt.hpp"
#include "net/digest.hpp"
#include "net/packet.hpp"
#include "net/time.hpp"

namespace vpm::core {

/// A closed aggregate before PathId stamping (the HopMonitor adds that).
struct AggregateData {
  AggId agg;
  std::uint32_t packet_count = 0;
  TransWindow trans;
  net::Timestamp opened_at;
  net::Timestamp closed_at;
};

class Aggregator {
 public:
  /// `cut_threshold` is delta (local tuning); `j_window` is the
  /// system-wide reorder safety threshold J.  If `j_window` is zero no
  /// AggTrans state is kept (the §6.2 "basic solution").
  Aggregator(const net::DigestEngine& engine, std::uint32_t cut_threshold,
             net::Duration j_window);

  /// Feed one packet observation (Algorithm 2's per-packet step).
  /// Computes the packet's decision values itself — one hash pass.
  void observe(const net::Packet& p, net::Timestamp when) {
    observe(engine_.decide(p), when);
  }

  /// Fast path: decisions were already computed upstream (one hash per
  /// packet, shared with the sampler — see HopMonitor::observe).
  void observe(const net::PacketDecisions& d, net::Timestamp when);

  /// Drain aggregates whose trailing AggTrans window is complete.
  [[nodiscard]] std::vector<AggregateData> take_closed();

  /// Close and return the still-open aggregate (end of a measurement run).
  /// Its AggTrans is whatever has been observed; pending aggregates are
  /// finalised first — call take_closed() afterwards to drain everything.
  [[nodiscard]] std::optional<AggregateData> flush_open();

  [[nodiscard]] std::uint64_t observed_packets() const noexcept {
    return observed_;
  }
  [[nodiscard]] std::uint64_t cuts_seen() const noexcept { return cuts_; }
  [[nodiscard]] std::uint32_t cut_threshold() const noexcept {
    return cut_threshold_;
  }
  /// Peak size of the recent-window buffer (drives §7.1 memory numbers).
  [[nodiscard]] std::size_t window_buffer_peak() const noexcept {
    return window_peak_;
  }

 private:
  struct Recent {
    net::PacketDigest id;
    net::Timestamp time;
  };
  struct Open {
    AggId agg;
    std::uint32_t count = 0;
    net::Timestamp opened_at;
    net::Timestamp last_at;
  };
  struct Pending {
    AggregateData data;
    net::Timestamp boundary;  ///< cut time; window completes at boundary+J
  };

  void finalize_due(net::Timestamp now);
  void ring_push(const Recent& r);
  void ring_grow();

  net::DigestEngine engine_;
  std::uint32_t cut_threshold_;
  net::Duration j_window_;

  std::optional<Open> open_;
  /// Observations within the last J, as a preallocated power-of-two ring
  /// (head_ + size_, linear probing-free): a sliding window that never
  /// allocates in steady state, unlike the deque it replaces.
  std::vector<Recent> ring_;
  std::size_t ring_head_ = 0;
  std::size_t ring_size_ = 0;
  std::vector<Pending> pending_;
  std::vector<AggregateData> closed_;
  std::size_t window_peak_ = 0;
  std::uint64_t observed_ = 0;
  std::uint64_t cuts_ = 0;
};

}  // namespace vpm::core

#endif  // VPM_CORE_AGGREGATOR_HPP
