// Tunable aggregation — Algorithm 2 (Partition) plus the Section 6.3
// AggTrans extension.
//
// A packet whose cut digest exceeds delta becomes a *cutting point*: it
// closes the current aggregate and opens a new one (and becomes the new
// aggregate's first packet).  delta is local; because every HOP compares
// the same per-packet cut value against its own threshold, cut points are
// nested across HOPs (Section 6.2's subset property), so partitions from
// different HOPs always have a computable, fine join.
//
// For reorder robustness, each closed aggregate's receipt carries the
// AggTrans window: the ids of packets observed within J of the cutting
// point, split into those the HOP assigned before the cut and after it.
// The window extends J *past* the cut, so a closed aggregate is emitted
// only once its trailing window is complete ("pending" until then).
//
// This class is a single-path facade over the SoA kernels in
// core/path_state.hpp (the per-packet step lives there, shared with
// DelaySampler / HopMonitor / MonitoringCache).  It does NOT copy the
// digest engine: the caller's engine must outlive the aggregator.
#ifndef VPM_CORE_AGGREGATOR_HPP
#define VPM_CORE_AGGREGATOR_HPP

#include <cstdint>
#include <optional>
#include <vector>

#include "core/path_state.hpp"
#include "core/receipt.hpp"
#include "net/digest.hpp"
#include "net/packet.hpp"
#include "net/time.hpp"

namespace vpm::core {

class Aggregator {
 public:
  /// `cut_threshold` is delta (local tuning); `j_window` is the
  /// system-wide reorder safety threshold J.  If `j_window` is zero no
  /// AggTrans state is kept (the §6.2 "basic solution").
  Aggregator(const net::DigestEngine& engine, std::uint32_t cut_threshold,
             net::Duration j_window)
      : engine_(&engine),
        state_(PathParams{.cut_threshold = cut_threshold,
                          .j_window = j_window},
               1) {}
  /// The engine is held by reference; a temporary would dangle.
  Aggregator(net::DigestEngine&&, std::uint32_t, net::Duration) = delete;

  /// Feed one packet observation (Algorithm 2's per-packet step).
  /// Computes the packet's decision values itself — one hash pass.
  void observe(const net::Packet& p, net::Timestamp when) {
    observe(engine_->decide(p), when);
  }

  /// Fast path: decisions were already computed upstream (one hash per
  /// packet, shared with the sampler — see HopMonitor::observe).
  void observe(const net::PacketDecisions& d, net::Timestamp when) {
    ++observed_;
    path_observe_aggregator(state_, 0, d, when);
  }

  /// Drain aggregates whose trailing AggTrans window is complete.
  [[nodiscard]] std::vector<AggregateData> take_closed() {
    return path_take_closed(state_, 0);
  }

  /// Close and return the still-open aggregate (end of a measurement run).
  /// Its AggTrans is whatever has been observed; pending aggregates are
  /// finalised first — call take_closed() afterwards to drain everything.
  [[nodiscard]] std::optional<AggregateData> flush_open() {
    return path_flush_open(state_, 0);
  }

  [[nodiscard]] std::uint64_t observed_packets() const noexcept {
    return observed_;
  }
  [[nodiscard]] std::uint64_t cuts_seen() const noexcept {
    return state_.stats[0].cuts;
  }
  [[nodiscard]] std::uint32_t cut_threshold() const noexcept {
    return state_.params.cut_threshold;
  }
  /// Peak size of the recent-window buffer (drives §7.1 memory numbers).
  [[nodiscard]] std::size_t window_buffer_peak() const noexcept {
    return state_.slots[0].warm.window_peak;
  }

 private:
  const net::DigestEngine* engine_;
  std::uint64_t observed_ = 0;
  /// One-path SoA block (see core/path_state.hpp).
  PathStateSoA state_;
};

}  // namespace vpm::core

#endif  // VPM_CORE_AGGREGATOR_HPP
